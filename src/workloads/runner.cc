#include "workloads/runner.h"

#include "base/logging.h"

namespace hpmp
{

Runner::Runner(Kernel &kernel, AddressSpace &as, CoreModel &model)
    : kernel_(kernel),
      as_(&as),
      model_(model)
{
}

AccessOutcome
Runner::accessChecked(Addr va, AccessType type)
{
    if (trace_)
        trace_->append(va, type);
    Machine &m = kernel_.machine();
    AccessOutcome out = m.access(va, type);
    if (out.ok()) {
        model_.addAccess(out);
        return out;
    }

    // Page fault: let the OS model populate the page, charge the
    // kernel path, retry once.
    model_.addAccess(out); // cycles burned discovering the fault
    if (!as_->handleFault(va, type))
        panic("unhandled fault (%s) at va %#lx", toString(out.fault), va);
    ++faults_;
    model_.addInstructions(kFaultKernelInstrs);

    out = m.access(va, type);
    panic_if(!out.ok(), "fault persists at va %#lx: %s", va,
             toString(out.fault));
    model_.addAccess(out);
    return out;
}

void
Runner::load(Addr va)
{
    accessChecked(va, AccessType::Load);
}

void
Runner::store(Addr va)
{
    accessChecked(va, AccessType::Store);
}

void
Runner::fetch(Addr va)
{
    accessChecked(va, AccessType::Fetch);
}

uint64_t
Runner::load64(Addr va)
{
    accessChecked(va, AccessType::Load);
    auto pa = as_->pageTable().translate(va);
    return pa ? kernel_.machine().mem().read64(alignDown(*pa, 8)) : 0;
}

void
Runner::store64(Addr va, uint64_t value)
{
    accessChecked(va, AccessType::Store);
    auto pa = as_->pageTable().translate(va);
    if (pa)
        kernel_.machine().mem().write64(alignDown(*pa, 8), value);
}

void
Runner::runBatch(std::span<const AccessRequest> reqs)
{
    if (trace_) {
        for (const AccessRequest &req : reqs)
            trace_->append(req.va, req.type);
    }

    Machine &m = kernel_.machine();
    std::span<const AccessRequest> rest = reqs;
    while (!rest.empty()) {
        const BatchOutcome out =
            m.accessBatch(rest, &model_, /*stop_on_fault=*/true);
        if (out.firstFault == Fault::None)
            break;

        // The faulting request is the last one the batch consumed:
        // service it, charge the kernel path, retry once, resume.
        const AccessRequest &req = rest[out.completed - 1];
        if (!as_->handleFault(req.va, req.type)) {
            panic("unhandled fault (%s) at va %#lx",
                  toString(out.firstFault), req.va);
        }
        ++faults_;
        model_.addInstructions(kFaultKernelInstrs);

        const AccessOutcome retry = m.access(req.va, req.type);
        panic_if(!retry.ok(), "fault persists at va %#lx: %s", req.va,
                 toString(retry.fault));
        model_.addAccess(retry);
        rest = rest.subspan(out.completed);
    }
}

namespace
{

std::vector<AccessRequest>
streamRequests(Addr va, uint64_t len, AccessType type)
{
    std::vector<AccessRequest> reqs;
    const Addr start = alignDown(va, 64);
    reqs.reserve((va + len - start + 63) / 64);
    for (Addr a = start; a < va + len; a += 64)
        reqs.push_back({a, type});
    return reqs;
}

} // namespace

void
Runner::streamRead(Addr va, uint64_t len)
{
    runBatch(streamRequests(va, len, AccessType::Load));
}

void
Runner::streamWrite(Addr va, uint64_t len)
{
    runBatch(streamRequests(va, len, AccessType::Store));
}

} // namespace hpmp
