#include "workloads/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hpmp
{

namespace
{

char
typeChar(AccessType type)
{
    switch (type) {
      case AccessType::Load: return 'L';
      case AccessType::Store: return 'S';
      case AccessType::Fetch: return 'F';
    }
    return '?';
}

} // namespace

std::string
Trace::toText() const
{
    std::ostringstream os;
    for (const TraceRecord &rec : records_) {
        char line[32];
        std::snprintf(line, sizeof(line), "%c 0x%lx\n",
                      typeChar(rec.type), (unsigned long)rec.va);
        os << line;
    }
    return os.str();
}

bool
Trace::fromText(const std::string &text)
{
    records_.clear();
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        AccessType type;
        switch (line[0]) {
          case 'L': type = AccessType::Load; break;
          case 'S': type = AccessType::Store; break;
          case 'F': type = AccessType::Fetch; break;
          default: return false;
        }
        char *end = nullptr;
        const Addr va = std::strtoull(line.c_str() + 1, &end, 16);
        if (end == line.c_str() + 1)
            return false;
        records_.push_back({va, type});
    }
    return true;
}

bool
Trace::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toText();
    return bool(out);
}

bool
Trace::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream buf;
    buf << in.rdbuf();
    return fromText(buf.str());
}

ReplayResult
replayTrace(Machine &machine, CoreModel &model, const Trace &trace)
{
    const BatchOutcome out = machine.accessBatch(trace.records(), &model);
    ReplayResult result;
    result.accesses = out.accesses;
    result.faults = out.faults;
    result.cycles = out.cycles;
    result.totalRefs = out.totalRefs();
    result.pmptRefs = out.pmptRefs;
    return result;
}

} // namespace hpmp
