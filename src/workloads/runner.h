/**
 * @file
 * Workload execution helpers.
 *
 * Runner binds a Machine, a CoreModel and an AddressSpace: every
 * load/store goes through the full timing path, demand-paging faults
 * are serviced by the OS model (with a kernel-cost charge), and
 * SimArray provides typed arrays living in simulated memory so that
 * real algorithms (graph kernels, the KV store) can run on top.
 */

#ifndef HPMP_WORKLOADS_RUNNER_H
#define HPMP_WORKLOADS_RUNNER_H

#include <span>

#include "core/core_model.h"
#include "os/address_space.h"
#include "os/kernel.h"
#include "workloads/trace.h"

namespace hpmp
{

/** Executes one thread of work against an address space. */
class Runner
{
  public:
    /** Instruction charge for servicing one demand-paging fault. */
    static constexpr uint64_t kFaultKernelInstrs = 900;

    Runner(Kernel &kernel, AddressSpace &as, CoreModel &model);

    /** Timed load/store/fetch; transparently services page faults. */
    void load(Addr va);
    void store(Addr va);
    void fetch(Addr va);

    /** Timed 64-bit load returning the value (for real algorithms). */
    uint64_t load64(Addr va);

    /** Timed 64-bit store of a value. */
    void store64(Addr va, uint64_t value);

    /** Non-memory work. */
    void compute(uint64_t instrs) { model_.addInstructions(instrs); }

    /** Stream over [va, va+len) at cache-line granularity. */
    void streamRead(Addr va, uint64_t len);
    void streamWrite(Addr va, uint64_t len);

    /**
     * Timed batched replay: one Machine::accessBatch dispatch per
     * fault-free run of requests, with demand-paging faults serviced
     * in between exactly as in the per-access path.
     */
    void runBatch(std::span<const AccessRequest> reqs);

    CoreModel &model() { return model_; }
    AddressSpace &as() { return *as_; }
    Kernel &kernel() { return kernel_; }

    /** Retarget the runner at another address space. */
    void setAddressSpace(AddressSpace &as) { as_ = &as; }

    /** Record every access into `trace` (nullptr stops recording). */
    void setTrace(Trace *trace) { trace_ = trace; }

    uint64_t faultsServiced() const { return faults_; }

  private:
    /** One access with fault handling; returns the final outcome. */
    AccessOutcome accessChecked(Addr va, AccessType type);

    Kernel &kernel_;
    AddressSpace *as_;
    CoreModel &model_;
    Trace *trace_ = nullptr;
    uint64_t faults_ = 0;
};

/**
 * A typed array in simulated memory. Element loads/stores are timed
 * through the runner (the full TLB/walk/check/cache path); the values
 * themselves are kept in a host-side mirror so that reading one back
 * does not require a second, functional translation — only this
 * array's accessors touch its contents, so the mirror is exact.
 */
template <typename T>
class SimArray
{
  public:
    SimArray(Runner &runner, uint64_t count, Perm perm = Perm::rw())
        : runner_(&runner),
          count_(count),
          mirror_(count)
    {
        base_ = runner.as().mmap(count * sizeof(T), perm, true, true);
    }

    Addr addrOf(uint64_t idx) const { return base_ + idx * sizeof(T); }
    uint64_t size() const { return count_; }
    Addr base() const { return base_; }

    /** Timed element read. */
    T
    get(uint64_t idx)
    {
        runner_->load(addrOf(idx));
        return mirror_[idx];
    }

    /** Timed element write. */
    void
    set(uint64_t idx, T value)
    {
        runner_->store(addrOf(idx));
        mirror_[idx] = value;
    }

    /** Functional (untimed) initialization. */
    void init(uint64_t idx, T value) { mirror_[idx] = value; }

  private:
    Runner *runner_;
    Addr base_ = 0;
    uint64_t count_;
    std::vector<T> mirror_;
};

} // namespace hpmp

#endif // HPMP_WORKLOADS_RUNNER_H
