/**
 * @file
 * Serverless workloads (paper §8.4): FunctionBench models and the
 * four-stage image-processing chain.
 *
 * Serverless functions are fine-grained and short-lived: every
 * invocation pays enclave creation, cold-start demand paging (page
 * faults build fresh page tables), a short compute phase, and
 * teardown — precisely the regime where extra-dimensional walk costs
 * are not amortized by warm TLBs.
 */

#ifndef HPMP_WORKLOADS_SERVERLESS_H
#define HPMP_WORKLOADS_SERVERLESS_H

#include <string>
#include <vector>

#include "workloads/env.h"
#include "workloads/rv8.h" // MemPattern

namespace hpmp
{

/** Model of one FunctionBench function. */
struct FunctionModel
{
    std::string name;
    unsigned coldPages;     //!< pages faulted in at start-up
    uint64_t instructions;  //!< total dynamic instructions
    double memRatio;        //!< memory ops per instruction
    uint64_t workingSet;    //!< bytes
    MemPattern pattern;
};

/** The seven workloads of Fig. 12-a/b. */
const std::vector<FunctionModel> &functionBenchApps();

/**
 * Invoke a function once in a fresh enclave (create, cold start, run,
 * destroy) and return the end-to-end latency in seconds.
 */
double invokeFunction(TeeEnv &env, const FunctionModel &fn,
                      uint64_t sample_accesses = 60000);

/**
 * Run the 4-function image-processing chain on an image of
 * `side` x `side` pixels; @return end-to-end seconds.
 */
double runImageChain(TeeEnv &env, unsigned side);

} // namespace hpmp

#endif // HPMP_WORKLOADS_SERVERLESS_H
