#include "workloads/env.h"

#include <algorithm>

#include "base/bitfield.h"
#include "base/logging.h"

namespace hpmp
{

namespace
{

MachineParams
buildParams(const EnvConfig &config)
{
    MachineParams p = machineParams(config.core);
    p.pwcEntries = config.pwcEntries;
    p.pmptwEntries = config.pmptwEntries;
    p.hpmpEntries = config.hpmpEntries;
    return p;
}

KernelConfig
hostKernelConfig(const EnvConfig &config)
{
    KernelConfig kc;
    // The contiguous PT pool is the HPMP OS extension; the baselines
    // allocate PT pages like any other page.
    kc.contiguousPtPool = config.scheme == IsolationScheme::Hpmp;
    kc.scatterData = config.scatterData;
    return kc;
}

} // namespace

TeeEnv::TeeEnv(const EnvConfig &config)
    : config_(config),
      params_(buildParams(config))
{
    machine_ = std::make_unique<Machine>(params_);

    MonitorConfig mc;
    mc.scheme = config.scheme;
    mc.monitorBase = kMonitorBase;
    mc.monitorSize = kMonitorSize;
    mc.pmptLevels = config.pmptLevels;
    monitor_ = std::make_unique<SecureMonitor>(*machine_, mc);

    hostKernel_ = std::make_unique<Kernel>(*monitor_, DomainId{0},
                                           kHostBase, kHostSize,
                                           hostKernelConfig(config));
    arena_ = std::make_unique<PageAllocator>(kArenaBase, kArenaSize);

    // Make the host layout live.
    auto res = monitor_->switchTo(0);
    fatal_if(!res.ok, "host layout failed: %s", res.error.c_str());
}

TeeEnv::~TeeEnv() = default;

std::unique_ptr<Enclave>
TeeEnv::createEnclave(uint64_t mem_bytes, uint64_t *create_cycles)
{
    // Round up to a NAPOT size, with room for the PT pool carve-out.
    uint64_t size = 256_KiB;
    while (size < mem_bytes)
        size <<= 1;

    auto enclave = std::make_unique<Enclave>();
    auto base = arena_->allocNapot(size);
    fatal_if(!base, "enclave arena exhausted");
    enclave->memBase = *base;
    enclave->memSize = size;
    enclave->domain = monitor_->createDomain();

    KernelConfig kc;
    kc.contiguousPtPool = config_.scheme == IsolationScheme::Hpmp;
    // Scale the PT pool with the enclave: a quarter of memory capped
    // at 16 MiB, at least 64 KiB.
    kc.ptPoolBytes = std::min<uint64_t>(16_MiB,
                                        std::max<uint64_t>(64_KiB,
                                                           size / 4));
    kc.scatterData = config_.scatterData;
    enclave->kernel = std::make_unique<Kernel>(*monitor_, enclave->domain,
                                               enclave->memBase,
                                               enclave->memSize, kc);
    enclave->as = enclave->kernel->createAddressSpace();

    if (config_.measureEnclaves) {
        const auto measure = monitor_->measureDomain(enclave->domain);
        panic_if(!measure.ok, "measureDomain failed: %s",
                 measure.error.c_str());
        enclave->initialMeasurement = measure.value;
    }

    if (create_cycles) {
        // Creation cost: domain bookkeeping + the GMS registrations
        // (dominated by table writes); modelled by replaying the two
        // registrations' costs through a scratch query.
        *create_cycles = 2 * 380; // trap in/out per monitor call
    }
    return enclave;
}

void
TeeEnv::destroyEnclave(std::unique_ptr<Enclave> enclave,
                       uint64_t *destroy_cycles)
{
    panic_if(!enclave, "destroyEnclave(nullptr)");
    if (monitor_->currentDomain() == enclave->domain)
        exitToHost();
    enclave->as.reset();
    enclave->kernel.reset();
    auto res = monitor_->destroyDomain(enclave->domain);
    panic_if(!res.ok, "destroyDomain failed: %s", res.error.c_str());
    arena_->free(enclave->memBase,
                 unsigned(enclave->memSize / kPageSize));
    if (destroy_cycles)
        *destroy_cycles = res.cycles;
}

AttestationReport
TeeEnv::attestEnclave(const Enclave &enclave, uint64_t nonce) const
{
    const auto report = monitor_->attestDomain(enclave.domain, nonce);
    // The env always attests enclaves it created, so a typed failure
    // here is a harness bug, not OS input.
    panic_if(!report.ok, "attestDomain failed: %s", report.error.c_str());
    return report.value;
}

uint64_t
TeeEnv::enterEnclave(Enclave &enclave, PrivMode priv)
{
    auto res = monitor_->switchTo(enclave.domain);
    fatal_if(!res.ok, "enterEnclave: %s", res.error.c_str());
    enclave.kernel->activate(*enclave.as, priv);
    return res.cycles;
}

AddressSpace &
TeeEnv::hostGatewayAs()
{
    if (!gatewayAs_) {
        gatewayAs_ = hostKernel_->createAddressSpace();
        gatewayHeap_ = gatewayAs_->mmap(kGatewayHeapBytes, Perm::rw(),
                                        false, true);
    }
    return *gatewayAs_;
}

uint64_t
TeeEnv::exitToHost()
{
    auto res = monitor_->switchTo(0);
    fatal_if(!res.ok, "exitToHost: %s", res.error.c_str());
    machine_->setPriv(PrivMode::Supervisor);
    return res.cycles;
}

} // namespace hpmp
