/**
 * @file
 * Ready-made TEE environments for experiments.
 *
 * A TeeEnv assembles the full stack — Machine (Rocket or BOOM),
 * secure monitor with one of the three isolation schemes, and a host
 * kernel — using the paper's memory layout conventions, and can mint
 * enclaves out of a dedicated arena the way Penglai's host driver
 * donates memory to new domains.
 */

#ifndef HPMP_WORKLOADS_ENV_H
#define HPMP_WORKLOADS_ENV_H

#include <memory>

#include "core/core_model.h"
#include "monitor/secure_monitor.h"
#include "os/address_space.h"
#include "os/kernel.h"

namespace hpmp
{

/** Experiment-level configuration. */
struct EnvConfig
{
    CoreKind core = CoreKind::Rocket;
    IsolationScheme scheme = IsolationScheme::Hpmp;
    unsigned pwcEntries = 8;
    unsigned pmptwEntries = 0; //!< PMPTW-Cache disabled by default (§7)
    unsigned hpmpEntries = 16;
    bool scatterData = false;  //!< fragment physical placement (§8.8)
    unsigned pmptLevels = 2;
    /**
     * Measure enclave memory at creation (Merkle root) so it can be
     * attested later. Off by default: hashing large enclaves is
     * expensive and most benches do not attest.
     */
    bool measureEnclaves = false;
};

/** One enclave: its domain, kernel and initial address space. */
struct Enclave
{
    DomainId domain = 0;
    Addr memBase = 0;
    uint64_t memSize = 0;
    std::unique_ptr<Kernel> kernel;
    std::unique_ptr<AddressSpace> as;
    /** Creation-time measurement (0 unless measureEnclaves). */
    MerkleHash initialMeasurement = 0;
};

/** The assembled simulation environment. */
class TeeEnv
{
  public:
    explicit TeeEnv(const EnvConfig &config);
    ~TeeEnv();

    const EnvConfig &config() const { return config_; }
    Machine &machine() { return *machine_; }
    SecureMonitor &monitor() { return *monitor_; }
    Kernel &hostKernel() { return *hostKernel_; }

    /** A CoreModel configured for this machine. */
    CoreModel makeCoreModel() const { return CoreModel(params_); }
    const MachineParams &params() const { return params_; }

    /**
     * Create an enclave with a NAPOT memory region from the enclave
     * arena, a kernel (runtime) and an empty address space, and
     * record the monitor-call cycles in create_cycles if given.
     */
    std::unique_ptr<Enclave> createEnclave(uint64_t mem_bytes,
                                           uint64_t *create_cycles = nullptr);

    /** Destroy the enclave's domain and return its memory. */
    void destroyEnclave(std::unique_ptr<Enclave> enclave,
                        uint64_t *destroy_cycles = nullptr);

    /** Attest an enclave against a verifier-supplied nonce. */
    AttestationReport attestEnclave(const Enclave &enclave,
                                    uint64_t nonce) const;

    /** Enter an enclave: switch domain + activate its address space. */
    uint64_t enterEnclave(Enclave &enclave, PrivMode priv);

    /** Return to the host domain. */
    uint64_t exitToHost();

    /**
     * Lazily-created host-side context (address space + kernel heap)
     * for gateway/IPC work between enclave invocations: serverless
     * chains spend much of their end-to-end time here, paying the
     * host kernel's translation costs.
     */
    AddressSpace &hostGatewayAs();
    Addr hostGatewayHeap() const { return gatewayHeap_; }
    static constexpr uint64_t kGatewayHeapBytes = 24_MiB;

    /** Host memory layout constants. */
    static constexpr Addr kMonitorBase = 0;
    static constexpr uint64_t kMonitorSize = 128_MiB;
    static constexpr Addr kHostBase = 2_GiB;
    static constexpr uint64_t kHostSize = 2_GiB;
    static constexpr Addr kArenaBase = 4_GiB;
    static constexpr uint64_t kArenaSize = 4_GiB;

  private:
    EnvConfig config_;
    MachineParams params_;
    std::unique_ptr<Machine> machine_;
    std::unique_ptr<SecureMonitor> monitor_;
    std::unique_ptr<Kernel> hostKernel_;
    std::unique_ptr<PageAllocator> arena_;
    std::unique_ptr<AddressSpace> gatewayAs_;
    Addr gatewayHeap_ = 0;
};

} // namespace hpmp

#endif // HPMP_WORKLOADS_ENV_H
