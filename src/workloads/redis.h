/**
 * @file
 * Redis model (paper §8.5): a real in-memory key-value store running
 * inside an enclave, driven by a redis-benchmark-like client.
 *
 * The store implements the actual data structures — an open-addressed
 * hash index, linked lists (LPUSH/LRANGE walk real node pointers
 * scattered across the heap), sets and hashes — with every element
 * access timed through the machine. Long-running and memory-intensive:
 * the regime where the paper reports the largest table-mode slowdowns
 * (LRANGE_100 worst, MSET best).
 */

#ifndef HPMP_WORKLOADS_REDIS_H
#define HPMP_WORKLOADS_REDIS_H

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "workloads/env.h"
#include "workloads/runner.h"

namespace hpmp
{

/** Command set of Fig. 12-d/e, in the paper's order. */
std::vector<std::string> redisCommands();

/** The in-enclave store plus its benchmark driver. */
class RedisBench
{
  public:
    /** Builds the store in a fresh enclave of env and preloads keys. */
    explicit RedisBench(TeeEnv &env, unsigned keyspace = 4096,
                        unsigned value_bytes = 3);
    ~RedisBench();

    /**
     * Run `requests` requests of one command and return the achieved
     * requests-per-second.
     */
    double run(const std::string &command, unsigned requests = 3000);

  private:
    struct Store;

    /** Per-request server-side work excluding the data structures. */
    void requestOverhead(Runner &r);

    void execute(Runner &r, const std::string &command);

    /** Append one node to a list (benchmark preload and LPUSH/RPUSH). */
    void pushNode(unsigned list_key, bool front);

    TeeEnv &env_;
    std::unique_ptr<Enclave> enclave_;
    std::unique_ptr<CoreModel> model_;
    std::unique_ptr<Runner> runner_;
    std::unique_ptr<Store> store_;
    Rng rng_;
    unsigned keyspace_;
    unsigned valueBytes_;
};

} // namespace hpmp

#endif // HPMP_WORKLOADS_REDIS_H
