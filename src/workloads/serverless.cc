#include "workloads/serverless.h"

#include <algorithm>
#include <functional>

#include "base/rng.h"
#include "workloads/runner.h"

namespace hpmp
{

const std::vector<FunctionModel> &
functionBenchApps()
{
    // Instruction volumes put the Rocket latencies near Fig. 12-a's
    // annotations (222 / 619 / 2586 / 1753 / 7 / 397 / 197 ms).
    static const std::vector<FunctionModel> apps = {
        {"Chameleon", 1500, 150000000ULL, 0.32, 12_MiB,
         MemPattern::Mixed},
        {"DD", 800, 380000000ULL, 0.45, 48_MiB, MemPattern::Sequential},
        {"GZip", 1200, 1800000000ULL, 0.33, 24_MiB, MemPattern::Mixed},
        {"Linpack", 900, 1250000000ULL, 0.40, 8_MiB,
         MemPattern::Sequential},
        {"Matmul", 200, 4000000ULL, 0.35, 256_KiB,
         MemPattern::Sequential},
        {"PyAES", 900, 270000000ULL, 0.30, 4_MiB, MemPattern::Mixed},
        {"Image", 1100, 120000000ULL, 0.36, 16_MiB, MemPattern::Mixed},
    };
    return apps;
}

namespace
{

/** Cold start: demand-fault `pages` pages of a fresh mapping. */
Addr
coldStart(Runner &r, AddressSpace &as, unsigned pages)
{
    const Addr base = as.mmap(uint64_t(pages) * kPageSize, Perm::rw(),
                              true, false);
    for (unsigned i = 0; i < pages; ++i) {
        const Addr page = base + uint64_t(i) * kPageSize;
        r.store(page); // demand fault
        // The runtime zeroes/initializes the fresh page.
        r.streamWrite(page, kPageSize);
        r.compute(300);
    }
    return base;
}

/** The hot phase shared by functions: sampled pattern execution. */
void
hotPhase(Runner &r, Addr buf, const FunctionModel &fn,
         uint64_t sample_accesses, double *scale_out)
{
    Rng rng(0xf00d ^ std::hash<std::string>{}(fn.name));
    const double total_accesses = fn.instructions * fn.memRatio;
    const uint64_t sample =
        std::min<uint64_t>(sample_accesses, uint64_t(total_accesses));
    const double instr_per_access = 1.0 / fn.memRatio;

    Addr seq = buf;
    for (uint64_t i = 0; i < sample; ++i) {
        Addr va;
        switch (fn.pattern) {
          case MemPattern::Sequential:
            seq += 8;
            if (seq >= buf + fn.workingSet)
                seq = buf;
            va = seq;
            break;
          case MemPattern::Random:
            va = buf + alignDown(rng.below(fn.workingSet - 8), 8);
            break;
          case MemPattern::Mixed:
          default:
            if (rng.chance(0.65)) {
                seq += 8;
                if (seq >= buf + fn.workingSet)
                    seq = buf;
                va = seq;
            } else {
                va = buf + alignDown(rng.below(fn.workingSet - 8), 8);
            }
            break;
        }
        if (rng.chance(0.35))
            r.store(va);
        else
            r.load(va);
        r.compute(uint64_t(instr_per_access));
    }
    *scale_out = total_accesses / double(sample);
}

} // namespace

double
invokeFunction(TeeEnv &env, const FunctionModel &fn,
               uint64_t sample_accesses)
{
    uint64_t mgmt_cycles = 0;
    auto enclave =
        env.createEnclave(std::max<uint64_t>(2 * fn.workingSet, 16_MiB),
                          &mgmt_cycles);
    mgmt_cycles += env.enterEnclave(*enclave, PrivMode::User);

    CoreModel model = env.makeCoreModel();
    Runner r(*enclave->kernel, *enclave->as, model);

    // Cold start: fault in runtime + code + initial heap.
    coldStart(r, *enclave->as, fn.coldPages);
    const uint64_t cold_cycles = model.cycles();

    // Working set for the compute phase (populated: the runtime
    // already touched it during initialization).
    const Addr buf = enclave->as->mmap(fn.workingSet, Perm::rw(), true,
                                       true);
    model.reset();
    double scale = 1.0;
    hotPhase(r, buf, fn, sample_accesses, &scale);
    const double hot_cycles = double(model.cycles()) * scale;

    mgmt_cycles += env.exitToHost();
    uint64_t destroy_cycles = 0;
    env.destroyEnclave(std::move(enclave), &destroy_cycles);
    mgmt_cycles += destroy_cycles;

    const double freq_hz = env.params().timing.freqGHz * 1e9;
    return (double(mgmt_cycles) + double(cold_cycles) + hot_cycles) /
           freq_hz;
}

namespace
{

/**
 * Host-side gateway work between chained invocations: receive the
 * image over the network path, route it, copy it into the next
 * function's buffer. Runs in the host kernel's address space, where
 * every TLB miss pays the active isolation scheme's walk cost.
 */
double
gatewayTransfer(TeeEnv &env, uint64_t payload_bytes)
{
    env.exitToHost();
    AddressSpace &as = env.hostGatewayAs();
    env.hostKernel().activate(as, PrivMode::Supervisor);

    CoreModel model = env.makeCoreModel();
    Runner r(env.hostKernel(), as, model);
    Rng rng(0x9a7e ^ payload_bytes);

    // Socket/RPC handling: scattered kernel-structure touches.
    for (unsigned i = 0; i < 2200; ++i) {
        const Addr va = env.hostGatewayHeap() +
            alignDown(rng.below(TeeEnv::kGatewayHeapBytes - 64), 8);
        r.load(va);
        if (i % 4 == 0)
            r.store(va);
    }
    // Payload copy in and out of the shared buffer.
    r.streamRead(env.hostGatewayHeap(), payload_bytes);
    r.streamWrite(env.hostGatewayHeap() + 8_MiB, payload_bytes);
    r.compute(30000 + payload_bytes / 8);
    return model.seconds();
}

} // namespace

double
runImageChain(TeeEnv &env, unsigned side)
{
    // Four functions: decode -> resize -> filter -> encode. Data is
    // handed between stages through the host gateway.
    const uint64_t pixels = uint64_t(side) * side;
    const uint64_t raw_bytes = std::max<uint64_t>(pixels * 3, kPageSize);

    double total_seconds = 0.0;
    const char *stages[4] = {"decode", "resize", "filter", "encode"};
    for (unsigned stage = 0; stage < 4; ++stage) {
        total_seconds += gatewayTransfer(env, raw_bytes);
        FunctionModel fn;
        fn.name = std::string("img-") + stages[stage];
        fn.coldPages = 250;
        // Per-stage instruction cost scales with pixel count; encode
        // and decode are heavier per pixel than the filters. The
        // fixed part (runtime + protocol handling) dominates small
        // images, which is why the paper's overhead decays with size.
        const double per_pixel = (stage == 0 || stage == 3) ? 420.0
                                                            : 180.0;
        fn.instructions =
            uint64_t(per_pixel * double(pixels)) + 300000ULL;
        fn.memRatio = 0.38;
        fn.workingSet = std::max<uint64_t>(3 * raw_bytes, 64_KiB);
        fn.pattern = stage == 1 ? MemPattern::Mixed
                                : MemPattern::Sequential;
        total_seconds += invokeFunction(env, fn, 40000);
    }
    return total_seconds;
}

} // namespace hpmp
