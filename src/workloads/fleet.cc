#include "workloads/fleet.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace hpmp
{

FleetWorkload::FleetWorkload(const FleetConfig &config)
    : cfg_(config), rng_(config.seed)
{
    fatal_if(cfg_.domains == 0, "a fleet needs at least one tenant");
    SmpParams sp;
    sp.harts = cfg_.harts;
    sp.schedSeed = cfg_.seed;
    smp_ = std::make_unique<SmpSystem>(rocketParams(), sp);
    for (unsigned h = 0; h < smp_->numHarts(); ++h) {
        smp_->hart(h).setPriv(PrivMode::Supervisor);
        smp_->hart(h).setBare();
    }

    MonitorConfig mc;
    mc.scheme = cfg_.scheme;
    mc.monitorSize = cfg_.monitorSize;
    monitor_ = std::make_unique<SecureMonitor>(*smp_, mc);

    // Zipf popularity over tenant slots: slot i has weight (i+1)^-s.
    // A cumulative table + binary search keeps sampling O(log N) and
    // the popularity of a *slot* stable across churn, the way a hot
    // tenant stays hot when its enclave is recycled.
    zipfCdf_.resize(cfg_.domains);
    double sum = 0.0;
    for (unsigned i = 0; i < cfg_.domains; ++i) {
        sum += 1.0 / std::pow(double(i + 1), cfg_.zipfS);
        zipfCdf_[i] = sum;
    }
    for (double &c : zipfCdf_)
        c /= sum;
}

FleetWorkload::~FleetWorkload() = default;

Addr
FleetWorkload::slotBase(unsigned slot) const
{
    return kArenaBase + Addr(slot) * cfg_.gmsBytes;
}

unsigned
FleetWorkload::sampleSlot()
{
    const double u = rng_.real();
    const auto it =
        std::upper_bound(zipfCdf_.begin(), zipfCdf_.end(), u);
    return unsigned(std::min<size_t>(it - zipfCdf_.begin(),
                                     cfg_.domains - 1));
}

void
FleetWorkload::provision()
{
    if (!tenants_.empty())
        return;
    tenants_.reserve(cfg_.domains);
    for (unsigned slot = 0; slot < cfg_.domains; ++slot) {
        const DomainId id = monitor_->createDomain();
        const MonitorResult r = monitor_->addGms(
            id, {slotBase(slot), cfg_.gmsBytes, Perm::rwx(),
                 GmsLabel::Fast});
        panic_if(!r.ok, "fleet provision slot %u: %s", slot,
                 r.error.c_str());
        tenants_.push_back(id);
    }
}

void
FleetWorkload::churnSlot(unsigned slot)
{
    const DomainId old = tenants_[slot];
    const MonitorResult destroy = monitor_->destroyDomain(old);
    panic_if(!destroy.ok, "fleet churn destroy slot %u: %s", slot,
             destroy.error.c_str());
    retired_.push_back(old);

    const DomainId fresh = monitor_->createDomain();
    const MonitorResult add = monitor_->addGms(
        fresh, {slotBase(slot), cfg_.gmsBytes, Perm::rwx(),
                GmsLabel::Fast});
    panic_if(!add.ok, "fleet churn re-create slot %u: %s", slot,
             add.error.c_str());
    tenants_[slot] = fresh;
    ++churns_;

    if (cfg_.staleProbes) {
        // The recycled slot may hand out the same index under a new
        // generation; the *retired* id must be a typed denial, never
        // an alias of the new tenant.
        const MonitorResult probe = monitor_->switchTo(old);
        panic_if(probe.ok, "retired domain id %u was honoured", old);
        panic_if(probe.code != MonitorError::StaleHandle &&
                     probe.code != MonitorError::NoSuchDomain,
                 "retired id %u denied with the wrong error: %s", old,
                 toString(probe.code));
        ++staleProbes_;
    }
}

FleetResult
FleetWorkload::run()
{
    provision();

    const bool coalesce =
        cfg_.coalesceEvery > 0 && smp_->numHarts() > 1;
    FleetResult res;
    std::vector<uint64_t> switchCycles;
    switchCycles.reserve(cfg_.requests);
    std::vector<unsigned> pendingChurn;

    uint64_t done = 0;
    while (done < cfg_.requests) {
        const uint64_t epoch =
            coalesce ? std::min<uint64_t>(cfg_.coalesceEvery,
                                          cfg_.requests - done)
                     : 1;
        if (coalesce)
            monitor_->beginCoalescedWindow();
        for (uint64_t i = 0; i < epoch; ++i) {
            smp_->setCurrentHart(
                unsigned((done + i) % smp_->numHarts()));
            const unsigned slot = sampleSlot();
            const MonitorResult r =
                monitor_->switchTo(tenants_[slot]);
            panic_if(!r.ok, "fleet switch to slot %u: %s", slot,
                     r.error.c_str());
            switchCycles.push_back(r.cycles);
            res.totalCycles += r.cycles;
            ++res.switches;

            if (rng_.chance(cfg_.attestProb)) {
                const auto report = monitor_->attestDomain(
                    tenants_[slot], rng_.next());
                panic_if(!report.ok, "fleet attest slot %u: %s", slot,
                         report.error.c_str());
                ++attests_;
            }
            // Churn commits its own layouts (destroy of the running
            // tenant switches back to the host); defer it past the
            // window flush so the epoch's deferred shootdown covers
            // exactly the batched switches.
            if (rng_.chance(cfg_.churnProb))
                pendingChurn.push_back(slot);
        }
        if (coalesce)
            res.totalCycles += monitor_->endCoalescedWindow();
        done += epoch;

        for (const unsigned slot : pendingChurn)
            churnSlot(slot);
        pendingChurn.clear();

        if (sampler_)
            sampler_->advanceTo(res.totalCycles);
    }

    if (sampler_)
        sampler_->sample(res.totalCycles);

    res.churns = churns_;
    res.attests = attests_;
    res.staleProbes = staleProbes_;
    if (!switchCycles.empty()) {
        std::vector<uint64_t> sorted = switchCycles;
        std::sort(sorted.begin(), sorted.end());
        res.p50SwitchCycles = sorted[sorted.size() / 2];
        res.p99SwitchCycles =
            sorted[std::min(sorted.size() - 1,
                            (sorted.size() * 99) / 100)];
        res.p999SwitchCycles =
            sorted[std::min(sorted.size() - 1,
                            (sorted.size() * 999) / 1000)];
    }
    if (res.totalCycles > 0) {
        const double secs =
            double(res.totalCycles) /
            (smp_->hart(0).params().timing.freqGHz * 1e9);
        res.switchesPerSec = double(res.switches) / secs;
    }
    res.coalescedWindows = monitor_->stats().get("coalesced_windows");
    if (const Distribution *d =
            monitor_->stats().getDist("commits_per_window"))
        res.commitsPerWindow = d->mean();
    return res;
}

} // namespace hpmp
