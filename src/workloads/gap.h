/**
 * @file
 * GAP benchmark suite (paper §8.3, Fig. 11-b/c): real graph kernels
 * over a synthetic Kronecker (RMAT) graph held in simulated memory.
 *
 * The six kernels — bc, bfs, cc, pr, sssp, tc — run their actual
 * algorithms on a CSR graph whose every element access is a timed
 * load/store through the machine, so the irregular access patterns
 * (and hence the TLB-miss-driven isolation costs) are genuine.
 */

#ifndef HPMP_WORKLOADS_GAP_H
#define HPMP_WORKLOADS_GAP_H

#include <memory>
#include <string>
#include <vector>

#include "workloads/env.h"
#include "workloads/runner.h"

namespace hpmp
{

/** Kernel names in the paper's order. */
std::vector<std::string> gapKernels();

/** Kron (RMAT) graph in CSR form, resident in simulated memory. */
class KronGraph
{
  public:
    /**
     * Build a Kron graph with 2^scale vertices and about
     * 2^scale * degree directed edges (paper: graph500 parameters,
     * scaled down for simulation).
     */
    KronGraph(Runner &runner, unsigned scale, unsigned degree,
              uint64_t seed = 0x9a9);

    uint64_t numVertices() const { return numVertices_; }
    uint64_t numEdges() const { return numEdges_; }

    /** Timed CSR reads. */
    uint64_t offset(uint64_t v) { return offsets_->get(v); }
    uint32_t neighbor(uint64_t e) { return neighbors_->get(e); }

    /** Untimed (host-side) reads for verification. */
    uint64_t degreeOf(uint64_t v) const { return degreeHost_[v]; }

  private:
    uint64_t numVertices_;
    uint64_t numEdges_;
    std::unique_ptr<SimArray<uint64_t>> offsets_;
    std::unique_ptr<SimArray<uint32_t>> neighbors_;
    std::vector<uint64_t> degreeHost_;
};

/** GAP suite bound to an environment. */
class GapSuite
{
  public:
    /** Builds the graph inside a fresh enclave of env. */
    explicit GapSuite(TeeEnv &env, unsigned scale = 18,
                      unsigned degree = 8);
    ~GapSuite();

    /** Run one kernel; @return modelled seconds. */
    double run(const std::string &kernel);

    KronGraph &graph() { return *graph_; }

  private:
    uint64_t runBfs(Runner &r, uint64_t source);
    void runPr(Runner &r, unsigned iters);
    void runCc(Runner &r, unsigned max_rounds);
    void runSssp(Runner &r, uint64_t source, unsigned rounds);
    void runBc(Runner &r, uint64_t source);
    uint64_t runTc(Runner &r, uint64_t edge_budget);

    TeeEnv &env_;
    std::unique_ptr<Enclave> enclave_;
    std::unique_ptr<CoreModel> model_;
    std::unique_ptr<Runner> runner_;
    std::unique_ptr<KronGraph> graph_;
};

} // namespace hpmp

#endif // HPMP_WORKLOADS_GAP_H
