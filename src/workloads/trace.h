/**
 * @file
 * Address-trace capture and replay.
 *
 * Research workflows often want to decouple workload generation from
 * timing: capture the (va, type) stream of one run, then replay it
 * against differently configured machines (other isolation schemes,
 * cache/TLB geometries) with identical access sequences. The Runner
 * can record transparently; traces round-trip through a simple text
 * format (one `L|S|F <hex-va>` line per access) that is easy to
 * produce from external tools as well.
 */

#ifndef HPMP_WORKLOADS_TRACE_H
#define HPMP_WORKLOADS_TRACE_H

#include <string>
#include <vector>

#include "core/core_model.h"

namespace hpmp
{

/** One trace entry: exactly one batched-replay request. */
using TraceRecord = AccessRequest;

/** An in-memory access trace. */
class Trace
{
  public:
    void
    append(Addr va, AccessType type)
    {
        records_.push_back({va, type});
    }

    size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const std::vector<TraceRecord> &records() const { return records_; }
    void clear() { records_.clear(); }

    /** Serialize as text ("L 0x... / S 0x... / F 0x..." lines). */
    std::string toText() const;

    /**
     * Parse the text format. @return false on malformed input (the
     * trace is left with the records parsed so far).
     */
    bool fromText(const std::string &text);

    /** Write/read the text format to/from a file. */
    bool save(const std::string &path) const;
    bool load(const std::string &path);

  private:
    std::vector<TraceRecord> records_;
};

/** Aggregate result of a trace replay. */
struct ReplayResult
{
    uint64_t accesses = 0;
    uint64_t faults = 0;
    uint64_t cycles = 0;
    uint64_t totalRefs = 0;
    uint64_t pmptRefs = 0;
};

/**
 * Replay a trace against a machine. Faulting accesses are counted and
 * skipped (replay has no OS to service them); cycles accumulate in
 * the given core model.
 */
ReplayResult replayTrace(Machine &machine, CoreModel &model,
                         const Trace &trace);

} // namespace hpmp

#endif // HPMP_WORKLOADS_TRACE_H
