#include "workloads/redis.h"

#include <algorithm>

#include "base/logging.h"

namespace hpmp
{

std::vector<std::string>
redisCommands()
{
    return {"PING_INLINE", "PING_BULK", "SET", "GET", "INCR", "LPUSH",
            "RPUSH", "LPOP", "RPOP", "SADD", "HSET", "SPOP",
            "LRANGE_100", "LRANGE_300", "LRANGE_500", "LRANGE_600",
            "MSET"};
}

/**
 * The actual data structures, all resident in simulated memory.
 * Layout: a hash index of (key, value-slot) pairs, a node heap for
 * list/set/hash nodes (allocation order pre-shuffled so long-running
 * heap fragmentation — and thus pointer-chase TLB pressure — is
 * realistic), and per-key list head/tail tables.
 */
struct RedisBench::Store
{
    static constexpr uint64_t kNoNode = UINT64_MAX;

    /**
     * One list/set node. Real Redis quicklist/ziplist nodes plus
     * allocator headers occupy at least a cache line; padding to 64 B
     * makes the pointer chase span realistic amounts of memory.
     */
    struct Node
    {
        uint64_t next;
        uint64_t value;
        uint8_t pad[48];
    };
    static_assert(sizeof(Node) == 64);

    Store(Runner &r, unsigned keyspace, uint64_t seed)
        : netBuf(r, 1024),
          // The command mix inserts up to three distinct key families
          // (plain, set members, hash fields): size the open-addressed
          // index for <= 50% load so probing stays short.
          index(r, 8 * keyspace),
          values(r, 8 * keyspace),
          listHead(r, keyspace),
          listTail(r, keyspace),
          listLen(r, keyspace),
          nodes(r, kHeapNodes),
          connState(r, 16384),
          sockBuf(r, 65536)
    {
        Rng shuffle_rng(seed);
        for (uint64_t i = 0; i < index.size(); ++i) {
            index.init(i, UINT64_MAX);
            values.init(i, kNoNode);
        }
        for (uint64_t i = 0; i < listHead.size(); ++i) {
            listHead.init(i, kNoNode);
            listTail.init(i, kNoNode);
            listLen.init(i, 0);
        }
        // Shuffled free list of heap nodes.
        freeNodes.resize(kHeapNodes);
        for (uint64_t i = 0; i < kHeapNodes; ++i)
            freeNodes[i] = i;
        for (uint64_t i = kHeapNodes - 1; i > 0; --i)
            std::swap(freeNodes[i], freeNodes[shuffle_rng.below(i + 1)]);
    }

    uint64_t
    allocNode()
    {
        fatal_if(freeNodes.empty(), "redis node heap exhausted");
        const uint64_t n = freeNodes.back();
        freeNodes.pop_back();
        return n;
    }

    void freeNode(uint64_t n) { freeNodes.push_back(n); }

    /** Timed hash-index probe; returns the slot for the key. */
    uint64_t
    slotFor(Runner &r, uint64_t key)
    {
        const uint64_t cap = index.size();
        uint64_t h = (key * 0x9e3779b97f4a7c15ULL) % cap;
        for (uint64_t probe = 0; probe < cap; ++probe) {
            const uint64_t stored = index.get(h);
            if (stored == key || stored == UINT64_MAX) {
                if (stored == UINT64_MAX)
                    index.set(h, key);
                return h;
            }
            h = (h + 1) % cap;
            r.compute(3);
        }
        fatal("redis hash index full");
    }

    /**
     * Value objects live as heap nodes (real Redis stores robj/SDS
     * allocations scattered across the heap, not inline in the dict).
     * @return the node holding the key's value, allocating on first
     * use.
     */
    uint64_t
    valueNode(Runner &r, uint64_t slot)
    {
        uint64_t node = values.get(slot);
        if (node == kNoNode) {
            node = allocNode();
            values.set(slot, node);
            Node fresh{};
            fresh.next = kNoNode;
            nodes.set(node, fresh);
            r.compute(40); // allocator path
        }
        return node;
    }

    static constexpr uint64_t kHeapNodes = 1 << 17;

    SimArray<uint64_t> netBuf;    //!< request/reply buffers
    SimArray<uint64_t> index;     //!< open-addressed key slots
    SimArray<uint64_t> values;    //!< per-key value-node handle
    SimArray<uint64_t> listHead;  //!< per-key list head node
    SimArray<uint64_t> listTail;
    SimArray<uint64_t> listLen;
    SimArray<Node> nodes;         //!< the node heap
    SimArray<Node> connState;     //!< per-client connection state
    SimArray<Node> sockBuf;       //!< kernel socket-buffer pool
    std::vector<uint64_t> freeNodes;
};

RedisBench::RedisBench(TeeEnv &env, unsigned keyspace,
                       unsigned value_bytes)
    : env_(env),
      rng_(0x4ed15),
      keyspace_(keyspace),
      valueBytes_(value_bytes)
{
    enclave_ = env_.createEnclave(128_MiB);
    env_.enterEnclave(*enclave_, PrivMode::User);
    model_ = std::make_unique<CoreModel>(env_.makeCoreModel());
    runner_ = std::make_unique<Runner>(*enclave_->kernel, *enclave_->as,
                                       *model_);
    store_ = std::make_unique<Store>(*runner_, keyspace_, 0x5eed);

    // Preload: every key exists; every list has ~120 elements so the
    // LRANGE variants have data to walk.
    Runner &r = *runner_;
    for (unsigned k = 0; k < keyspace_; ++k) {
        const uint64_t slot = store_->slotFor(r, k);
        (void)store_->valueNode(r, slot);
    }
    for (unsigned k = 0; k < keyspace_ / 8; ++k) {
        for (unsigned i = 0; i < 120; ++i)
            pushNode(k, true);
    }
    env_.exitToHost();
}

RedisBench::~RedisBench()
{
    if (enclave_) {
        runner_.reset();
        store_.reset();
        env_.destroyEnclave(std::move(enclave_));
    }
}

void
RedisBench::requestOverhead(Runner &r)
{
    // Network receive, RESP parse, reply serialize: branchy code with
    // a few buffer touches.
    r.compute(1800);
    r.load(store_->netBuf.addrOf(rng_.below(1024)));
    // 50 concurrent clients: each request traverses that connection's
    // state and a handful of kernel socket buffers (sk_buff-style
    // allocations scattered across a pool).
    const uint64_t conn = rng_.below(store_->connState.size());
    auto state = store_->connState.get(conn);
    state.value += 1;
    store_->connState.set(conn, state);
    for (int i = 0; i < 3; ++i) {
        const uint64_t buf = rng_.below(store_->sockBuf.size());
        auto skb = store_->sockBuf.get(buf);
        skb.value ^= rng_.next();
        store_->sockBuf.set(buf, skb);
    }
}

void
RedisBench::execute(Runner &r, const std::string &cmd)
{
    Store &s = *store_;
    const uint64_t key = rng_.below(keyspace_);
    const uint64_t list_key = rng_.below(keyspace_ / 8);

    auto push = [&](bool front) {
        const uint64_t slot = s.slotFor(r, list_key);
        (void)slot;
        pushNode(unsigned(list_key), front);
    };
    auto pop = [&](bool front) {
        const uint64_t head = s.listHead.get(list_key);
        if (head == Store::kNoNode) {
            pushNode(unsigned(list_key), true); // keep lists non-empty
            return;
        }
        if (front) {
            const uint64_t next = s.nodes.get(head).next;
            s.listHead.set(list_key, next);
            if (next == Store::kNoNode)
                s.listTail.set(list_key, Store::kNoNode);
            s.freeNode(head);
        } else {
            // Singly linked: walk to the tail (bounded walk).
            uint64_t prev = Store::kNoNode;
            uint64_t cur = head;
            unsigned steps = 0;
            while (s.nodes.get(cur).next != Store::kNoNode &&
                   steps++ < 160) {
                prev = cur;
                cur = s.nodes.get(cur).next;
            }
            if (prev == Store::kNoNode) {
                s.listHead.set(list_key, Store::kNoNode);
                s.listTail.set(list_key, Store::kNoNode);
            } else {
                auto prev_node = s.nodes.get(prev);
                prev_node.next = Store::kNoNode;
                s.nodes.set(prev, prev_node);
                s.listTail.set(list_key, prev);
            }
            s.freeNode(cur);
        }
        s.listLen.set(list_key,
                      std::max<uint64_t>(1, s.listLen.get(list_key)) - 1);
    };
    auto lrange = [&](unsigned n) {
        uint64_t cur = s.listHead.get(list_key);
        unsigned walked = 0;
        while (cur != Store::kNoNode && walked < n) {
            cur = s.nodes.get(cur).next; // value read shares the line
            ++walked;
            r.compute(6); // reply append per element
        }
        // redis-benchmark walks the full requested range; short lists
        // wrap to other lists to keep the walk length honest. Advance
        // the list cursor even when a list is drained so the loop
        // always terminates.
        uint64_t next_list = list_key;
        while (walked < n) {
            next_list = (next_list + 1) % (keyspace_ / 8);
            if (next_list == list_key)
                break; // every list drained: nothing left to walk
            cur = s.listHead.get(next_list);
            while (cur != Store::kNoNode && walked < n) {
                cur = s.nodes.get(cur).next;
                ++walked;
                r.compute(6);
            }
        }
    };

    auto write_value = [&](uint64_t k) {
        const uint64_t slot = s.slotFor(r, k);
        const uint64_t node = s.valueNode(r, slot);
        auto obj = s.nodes.get(node);
        obj.value = rng_.next() >> (64 - 8 * valueBytes_);
        s.nodes.set(node, obj);
    };
    auto read_value = [&](uint64_t k) {
        const uint64_t slot = s.slotFor(r, k);
        const uint64_t node = s.valueNode(r, slot);
        return s.nodes.get(node).value;
    };

    if (cmd == "PING_INLINE") {
        r.compute(300);
    } else if (cmd == "PING_BULK") {
        r.compute(400);
    } else if (cmd == "SET") {
        write_value(key);
    } else if (cmd == "GET") {
        (void)read_value(key);
    } else if (cmd == "INCR") {
        write_value(key);
    } else if (cmd == "LPUSH") {
        push(true);
    } else if (cmd == "RPUSH") {
        push(false);
    } else if (cmd == "LPOP") {
        pop(true);
    } else if (cmd == "RPOP") {
        pop(false);
    } else if (cmd == "SADD") {
        // Set member: its own key family plus a member node.
        write_value(key ^ 0xabcdef);
    } else if (cmd == "HSET") {
        write_value(key ^ 0x123457);
    } else if (cmd == "SPOP") {
        (void)read_value(key ^ 0xabcdef);
    } else if (cmd == "LRANGE_100") {
        lrange(100);
    } else if (cmd == "LRANGE_300") {
        lrange(300);
    } else if (cmd == "LRANGE_500") {
        lrange(450);
    } else if (cmd == "LRANGE_600") {
        lrange(600);
    } else if (cmd == "MSET") {
        // Ten keys per request.
        for (unsigned i = 0; i < 10; ++i)
            write_value((key + i) % keyspace_);
        r.compute(2000);
    } else {
        fatal("unknown redis command '%s'", cmd.c_str());
    }
}

void
RedisBench::pushNode(unsigned list_key, bool front)
{
    Store &s = *store_;
    Runner &r = *runner_;
    const uint64_t node = s.allocNode();
    Store::Node fresh{};
    fresh.value = rng_.next();
    if (front) {
        const uint64_t head = s.listHead.get(list_key);
        fresh.next = head;
        s.nodes.set(node, fresh);
        s.listHead.set(list_key, node);
        if (head == Store::kNoNode)
            s.listTail.set(list_key, node);
    } else {
        fresh.next = Store::kNoNode;
        s.nodes.set(node, fresh);
        const uint64_t tail = s.listTail.get(list_key);
        if (tail == Store::kNoNode) {
            s.listHead.set(list_key, node);
        } else {
            auto tail_node = s.nodes.get(tail);
            tail_node.next = node;
            s.nodes.set(tail, tail_node);
        }
        s.listTail.set(list_key, node);
    }
    s.listLen.set(list_key, s.listLen.get(list_key) + 1);
    r.compute(12);
}

double
RedisBench::run(const std::string &command, unsigned requests)
{
    env_.enterEnclave(*enclave_, PrivMode::User);
    Runner &r = *runner_;

    // Warm up with a slice of requests, then measure.
    for (unsigned i = 0; i < requests / 10; ++i) {
        requestOverhead(r);
        execute(r, command);
    }
    model_->reset();
    for (unsigned i = 0; i < requests; ++i) {
        requestOverhead(r);
        execute(r, command);
    }
    const double seconds = model_->seconds();
    env_.exitToHost();
    return requests / seconds;
}

} // namespace hpmp
