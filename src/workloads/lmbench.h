/**
 * @file
 * LMBench-style OS-operation microbenchmarks (paper §8.2, Table 3).
 *
 * Each syscall is modelled as the memory behaviour of its Linux
 * implementation: a burst of scattered touches over kernel data
 * structures (fd tables, dentries, page cache), user copies, and —
 * for fork — real page-table construction: child PT frames are
 * allocated from the kernel's PT allocator (the contiguous pool under
 * HPMP, scattered frames otherwise) and written through timed stores,
 * so the isolation scheme's cost on PT pages shows up exactly where
 * the paper says it does.
 */

#ifndef HPMP_WORKLOADS_LMBENCH_H
#define HPMP_WORKLOADS_LMBENCH_H

#include <string>
#include <vector>

#include "base/rng.h"
#include "workloads/env.h"
#include "workloads/runner.h"

namespace hpmp
{

/** The syscalls of Table 3, in the paper's order. */
std::vector<std::string> lmbenchSyscalls();

/**
 * Additional LMBench operations beyond the paper's table: the
 * VM-centric ones (mmap/munmap, page-fault service, context switch)
 * stress exactly the paths the isolation schemes differ on.
 */
std::vector<std::string> lmbenchExtendedSyscalls();

/** The LMBench-like suite bound to one environment. */
class LmbenchSuite
{
  public:
    explicit LmbenchSuite(TeeEnv &env);
    ~LmbenchSuite();

    /**
     * Run `iters` calls of the named syscall and return the average
     * latency in microseconds.
     */
    double run(const std::string &name, unsigned iters = 200);

  private:
    void doNull(Runner &r);
    void doRead(Runner &r);
    void doWrite(Runner &r);
    void doStat(Runner &r);
    void doFstat(Runner &r);
    void doOpenClose(Runner &r);
    void doPipe(Runner &r);
    void doForkExit(Runner &r);
    void doForkExec(Runner &r);
    void doMmap(Runner &r);
    void doPageFault(Runner &r);
    void doCtxSwitch(Runner &r);

    /** n scattered kernel-structure touches (loads). */
    void kernelTouches(Runner &r, unsigned n);

    /** Copy len bytes kernel <-> user. */
    void userCopy(Runner &r, uint64_t len, bool to_user);

    /** fork: duplicate mm state + child page tables. */
    void forkBody(Runner &r, bool exec_after);

    TeeEnv &env_;
    std::unique_ptr<AddressSpace> as_;
    Addr kernelHeap_ = 0;   //!< scattered kernel structures
    Addr pageCache_ = 0;    //!< file data
    Addr userBuf_ = 0;      //!< user-side buffer
    Addr ptWindow_ = 0;     //!< kernel window onto child PT frames
    Addr faultArena_ = 0;   //!< demand-paged region for doPageFault
    Addr faultCursor_ = 0;
    std::unique_ptr<AddressSpace> otherAs_; //!< peer for ctx switches
    Rng rng_;

    static constexpr uint64_t kKernelHeapBytes = 128_MiB;
    static constexpr uint64_t kPageCacheBytes = 8_MiB;
    static constexpr uint64_t kUserBytes = 1_MiB;
};

} // namespace hpmp

#endif // HPMP_WORKLOADS_LMBENCH_H
