/**
 * @file
 * Fleet-scale multi-tenant serving workload: thousands of enclave
 * domains (tenants) driven by Zipf-skewed switch traffic across every
 * hart of an SmpSystem, with tenant churn (destroy + create under id
 * recycling), attestation sampling, and optional coalesced shootdown
 * windows batching back-to-back switches into one IPI round.
 *
 * This is the serving regime the O(1) domain registry and the
 * coalescing path exist for: a host scheduler bouncing between
 * thousands of enclaves must pay per-switch costs that depend on the
 * *switched* domain's footprint, never on the fleet size, and a batch
 * of switches inside one monitor epoch must fence sibling harts once,
 * not once per switch. The workload asserts the lifecycle contract as
 * it runs: every retired DomainId must be denied (StaleHandle or
 * NoSuchDomain) after its slot is recycled — honouring one would hand
 * a stale tenant handle the new tenant's memory.
 */

#ifndef HPMP_WORKLOADS_FLEET_H
#define HPMP_WORKLOADS_FLEET_H

#include <memory>
#include <vector>

#include "base/rng.h"
#include "base/stats.h"
#include "core/smp.h"
#include "monitor/secure_monitor.h"

namespace hpmp
{

/** Knobs of one fleet-serving run. */
struct FleetConfig
{
    IsolationScheme scheme = IsolationScheme::Hpmp;
    unsigned domains = 1000;    //!< tenant count (fleet size)
    uint64_t requests = 20000;  //!< switch requests to serve
    unsigned harts = 4;
    double zipfS = 0.99;        //!< Zipf skew (the YCSB default)
    double churnProb = 0.02;    //!< per-request tenant destroy+create
    double attestProb = 0.05;   //!< per-request attestation
    /**
     * Switches batched into one coalesced shootdown window (0 turns
     * coalescing off; it is also off on a single hart, where there is
     * nothing to fence).
     */
    unsigned coalesceEvery = 8;
    /**
     * After every churn, probe the retired DomainId and panic unless
     * the monitor denies it — the id-recycling security contract.
     */
    bool staleProbes = true;
    uint64_t seed = 1;
    uint64_t gmsBytes = 16_KiB;     //!< per-tenant NAPOT region
    uint64_t monitorSize = 512_MiB; //!< monitor + PMP-table frames
};

/** What one run() measured. */
struct FleetResult
{
    uint64_t switches = 0;
    uint64_t churns = 0;
    uint64_t attests = 0;
    uint64_t staleProbes = 0;   //!< retired-id probes, all denied
    uint64_t totalCycles = 0;   //!< every monitor call + window flush
    uint64_t p50SwitchCycles = 0;
    uint64_t p99SwitchCycles = 0;
    uint64_t p999SwitchCycles = 0; //!< p99.9 — the tail the SLO quotes
    double switchesPerSec = 0.0;
    uint64_t coalescedWindows = 0;
    double commitsPerWindow = 0.0;
};

class FleetWorkload
{
  public:
    explicit FleetWorkload(const FleetConfig &config);
    ~FleetWorkload();

    /** Create one domain + NAPOT GMS per tenant slot. */
    void provision();

    /** Serve cfg.requests requests (provisions first if needed). */
    FleetResult run();

    SmpSystem &smp() { return *smp_; }
    SecureMonitor &monitor() { return *monitor_; }
    const FleetConfig &config() const { return cfg_; }

    /**
     * Attach a telemetry sampler: run() advances it on the workload's
     * simulated-cycle clock (accumulated monitor-call cycles) after
     * every epoch, and takes a final sample before returning. The
     * caller owns the sampler and its registry.
     */
    void setSampler(StatSampler *sampler) { sampler_ = sampler; }

    /** Live domain id of a tenant slot. */
    DomainId tenant(unsigned slot) const { return tenants_.at(slot); }

    /** DomainIds retired by churn so far (for external stale probes). */
    const std::vector<DomainId> &retired() const { return retired_; }

    /** Tenant memory layout: slot regions start here. */
    static constexpr Addr kArenaBase = 4_GiB;

  private:
    Addr slotBase(unsigned slot) const;
    unsigned sampleSlot();
    void churnSlot(unsigned slot);

    FleetConfig cfg_;
    std::unique_ptr<SmpSystem> smp_;
    std::unique_ptr<SecureMonitor> monitor_;
    Rng rng_;
    std::vector<DomainId> tenants_; //!< slot -> live domain id
    std::vector<DomainId> retired_; //!< churned-out ids (must stay dead)
    std::vector<double> zipfCdf_;   //!< slot popularity, cumulative
    uint64_t churns_ = 0;
    uint64_t attests_ = 0;
    uint64_t staleProbes_ = 0;
    StatSampler *sampler_ = nullptr; //!< optional, not owned
};

} // namespace hpmp

#endif // HPMP_WORKLOADS_FLEET_H
