#include "workloads/gap.h"

#include <algorithm>
#include <deque>

#include "base/logging.h"
#include "base/rng.h"

namespace hpmp
{

std::vector<std::string>
gapKernels()
{
    return {"bc-kron", "bfs-kron", "cc-kron", "pr-kron", "sssp-kron",
            "tc-kron"};
}

KronGraph::KronGraph(Runner &runner, unsigned scale, unsigned degree,
                     uint64_t seed)
{
    numVertices_ = 1ULL << scale;
    const uint64_t target_edges = numVertices_ * degree;

    // RMAT edge generator (A=0.57, B=0.19, C=0.19), as in graph500.
    Rng rng(seed);
    std::vector<std::vector<uint32_t>> adj(numVertices_);
    for (uint64_t e = 0; e < target_edges; ++e) {
        uint64_t u = 0, v = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            const double p = rng.real();
            unsigned quad;
            if (p < 0.57) quad = 0;
            else if (p < 0.76) quad = 1;
            else if (p < 0.95) quad = 2;
            else quad = 3;
            u = (u << 1) | (quad >> 1);
            v = (v << 1) | (quad & 1);
        }
        if (u == v)
            continue;
        adj[u].push_back(uint32_t(v));
    }
    // Sort and dedup neighbour lists (needed by tc).
    numEdges_ = 0;
    for (auto &list : adj) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
        numEdges_ += list.size();
    }

    offsets_ = std::make_unique<SimArray<uint64_t>>(runner,
                                                    numVertices_ + 1);
    neighbors_ = std::make_unique<SimArray<uint32_t>>(runner, numEdges_);
    degreeHost_.resize(numVertices_);

    uint64_t pos = 0;
    for (uint64_t v = 0; v < numVertices_; ++v) {
        offsets_->init(v, pos);
        degreeHost_[v] = adj[v].size();
        for (uint32_t n : adj[v])
            neighbors_->init(pos++, n);
    }
    offsets_->init(numVertices_, pos);
}

GapSuite::GapSuite(TeeEnv &env, unsigned scale, unsigned degree)
    : env_(env)
{
    enclave_ = env_.createEnclave(96_MiB);
    env_.enterEnclave(*enclave_, PrivMode::User);
    model_ = std::make_unique<CoreModel>(env_.makeCoreModel());
    runner_ = std::make_unique<Runner>(*enclave_->kernel, *enclave_->as,
                                       *model_);
    graph_ = std::make_unique<KronGraph>(*runner_, scale, degree);
    env_.exitToHost();
}

GapSuite::~GapSuite()
{
    if (enclave_) {
        runner_.reset();
        graph_.reset();
        env_.destroyEnclave(std::move(enclave_));
    }
}

uint64_t
GapSuite::runBfs(Runner &r, uint64_t source)
{
    const uint64_t n = graph_->numVertices();
    SimArray<uint32_t> parent(r, n);
    for (uint64_t v = 0; v < n; ++v)
        parent.init(v, UINT32_MAX);

    uint64_t visited = 1;
    std::deque<uint64_t> frontier{source};
    parent.init(source, uint32_t(source));
    while (!frontier.empty()) {
        const uint64_t u = frontier.front();
        frontier.pop_front();
        const uint64_t begin = graph_->offset(u);
        const uint64_t end = graph_->offset(u + 1);
        for (uint64_t e = begin; e < end; ++e) {
            const uint32_t v = graph_->neighbor(e);
            if (parent.get(v) == UINT32_MAX) {
                parent.set(v, uint32_t(u));
                frontier.push_back(v);
                ++visited;
            }
            r.compute(4);
        }
    }
    return visited;
}

void
GapSuite::runPr(Runner &r, unsigned iters)
{
    const uint64_t n = graph_->numVertices();
    SimArray<uint64_t> rank(r, n);
    SimArray<uint64_t> next(r, n);
    for (uint64_t v = 0; v < n; ++v)
        rank.init(v, 1000);

    for (unsigned it = 0; it < iters; ++it) {
        for (uint64_t v = 0; v < n; ++v)
            next.init(v, 150); // base rank, untimed zeroing pass
        for (uint64_t u = 0; u < n; ++u) {
            const uint64_t begin = graph_->offset(u);
            const uint64_t end = graph_->offset(u + 1);
            if (begin == end)
                continue;
            const uint64_t share = rank.get(u) / (end - begin);
            for (uint64_t e = begin; e < end; ++e) {
                const uint32_t v = graph_->neighbor(e);
                next.set(v, next.get(v) + share);
                r.compute(3);
            }
        }
        std::swap(rank, next);
    }
}

void
GapSuite::runCc(Runner &r, unsigned max_rounds)
{
    const uint64_t n = graph_->numVertices();
    SimArray<uint32_t> comp(r, n);
    for (uint64_t v = 0; v < n; ++v)
        comp.init(v, uint32_t(v));

    for (unsigned round = 0; round < max_rounds; ++round) {
        bool changed = false;
        for (uint64_t u = 0; u < n; ++u) {
            const uint64_t begin = graph_->offset(u);
            const uint64_t end = graph_->offset(u + 1);
            uint32_t cu = comp.get(u);
            for (uint64_t e = begin; e < end; ++e) {
                const uint32_t v = graph_->neighbor(e);
                const uint32_t cv = comp.get(v);
                if (cv < cu) {
                    cu = cv;
                    changed = true;
                }
                r.compute(3);
            }
            comp.set(u, cu);
        }
        if (!changed)
            break;
    }
}

void
GapSuite::runSssp(Runner &r, uint64_t source, unsigned rounds)
{
    const uint64_t n = graph_->numVertices();
    SimArray<uint64_t> dist(r, n);
    for (uint64_t v = 0; v < n; ++v)
        dist.init(v, UINT64_MAX / 2);
    dist.init(source, 0);

    // Bounded Bellman-Ford rounds (weights derived from vertex ids).
    for (unsigned round = 0; round < rounds; ++round) {
        bool relaxed = false;
        for (uint64_t u = 0; u < n; ++u) {
            const uint64_t du = dist.get(u);
            if (du >= UINT64_MAX / 2)
                continue;
            const uint64_t begin = graph_->offset(u);
            const uint64_t end = graph_->offset(u + 1);
            for (uint64_t e = begin; e < end; ++e) {
                const uint32_t v = graph_->neighbor(e);
                const uint64_t w = 1 + (v & 7);
                if (du + w < dist.get(v)) {
                    dist.set(v, du + w);
                    relaxed = true;
                }
                r.compute(5);
            }
        }
        if (!relaxed)
            break;
    }
}

void
GapSuite::runBc(Runner &r, uint64_t source)
{
    // Brandes-like: forward BFS recording depths, then a backward
    // accumulation sweep.
    const uint64_t n = graph_->numVertices();
    SimArray<uint32_t> depth(r, n);
    SimArray<uint64_t> sigma(r, n);
    for (uint64_t v = 0; v < n; ++v) {
        depth.init(v, UINT32_MAX);
        sigma.init(v, 0);
    }
    depth.init(source, 0);
    sigma.init(source, 1);

    std::vector<uint64_t> order;
    std::deque<uint64_t> frontier{source};
    while (!frontier.empty()) {
        const uint64_t u = frontier.front();
        frontier.pop_front();
        order.push_back(u);
        const uint32_t du = depth.get(u);
        const uint64_t su = sigma.get(u);
        const uint64_t begin = graph_->offset(u);
        const uint64_t end = graph_->offset(u + 1);
        for (uint64_t e = begin; e < end; ++e) {
            const uint32_t v = graph_->neighbor(e);
            const uint32_t dv = depth.get(v);
            if (dv == UINT32_MAX) {
                depth.set(v, du + 1);
                sigma.set(v, su);
                frontier.push_back(v);
            } else if (dv == du + 1) {
                sigma.set(v, sigma.get(v) + su);
            }
            r.compute(5);
        }
    }

    SimArray<uint64_t> delta(r, n);
    for (uint64_t v = 0; v < n; ++v)
        delta.init(v, 0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const uint64_t u = *it;
        const uint32_t du = depth.get(u);
        const uint64_t begin = graph_->offset(u);
        const uint64_t end = graph_->offset(u + 1);
        for (uint64_t e = begin; e < end; ++e) {
            const uint32_t v = graph_->neighbor(e);
            if (depth.get(v) == du + 1)
                delta.set(u, delta.get(u) + delta.get(v) + 1);
            r.compute(6);
        }
    }
}

uint64_t
GapSuite::runTc(Runner &r, uint64_t edge_budget)
{
    // Triangle counting by sorted-list intersection over a bounded
    // number of edges (the full O(m * d) pass is sampled).
    uint64_t triangles = 0;
    uint64_t edges_done = 0;
    const uint64_t n = graph_->numVertices();
    for (uint64_t u = 0; u < n && edges_done < edge_budget; ++u) {
        const uint64_t ub = graph_->offset(u);
        const uint64_t ue = graph_->offset(u + 1);
        for (uint64_t e = ub; e < ue && edges_done < edge_budget; ++e) {
            const uint32_t v = graph_->neighbor(e);
            if (v <= u)
                continue;
            ++edges_done;
            // Intersect adj(u) and adj(v).
            const uint64_t vb = graph_->offset(v);
            const uint64_t ve = graph_->offset(v + 1);
            uint64_t i = ub, j = vb;
            uint32_t a = i < ue ? graph_->neighbor(i) : UINT32_MAX;
            uint32_t b = j < ve ? graph_->neighbor(j) : UINT32_MAX;
            while (i < ue && j < ve) {
                if (a == b) {
                    ++triangles;
                    a = ++i < ue ? graph_->neighbor(i) : UINT32_MAX;
                    b = ++j < ve ? graph_->neighbor(j) : UINT32_MAX;
                } else if (a < b) {
                    a = ++i < ue ? graph_->neighbor(i) : UINT32_MAX;
                } else {
                    b = ++j < ve ? graph_->neighbor(j) : UINT32_MAX;
                }
                r.compute(3);
            }
        }
    }
    return triangles;
}

double
GapSuite::run(const std::string &kernel)
{
    env_.enterEnclave(*enclave_, PrivMode::User);
    model_->reset();
    Runner &r = *runner_;

    if (kernel == "bfs-kron") {
        runBfs(r, 1);
    } else if (kernel == "pr-kron") {
        runPr(r, 1);
    } else if (kernel == "cc-kron") {
        runCc(r, 2);
    } else if (kernel == "sssp-kron") {
        runSssp(r, 1, 2);
    } else if (kernel == "bc-kron") {
        runBc(r, 1);
    } else if (kernel == "tc-kron") {
        runTc(r, graph_->numEdges() / 8);
    } else {
        fatal("unknown GAP kernel '%s'", kernel.c_str());
    }

    const double seconds = model_->seconds();
    env_.exitToHost();
    return seconds;
}

} // namespace hpmp
