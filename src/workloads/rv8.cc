#include "workloads/rv8.h"

#include "base/rng.h"
#include "workloads/runner.h"

namespace hpmp
{

const std::vector<Rv8App> &
rv8Apps()
{
    // Instruction volumes chosen to land near Fig. 11-a's absolute
    // run times on the 1 GHz Rocket; patterns reflect each kernel's
    // locality class (norx streams over a larger state and shows the
    // largest table overhead in the paper; bigint is register-bound).
    static const std::vector<Rv8App> apps = {
        {"aes",       2800000000ULL, 0.30, 4_MiB,   MemPattern::Mixed,
         0.02},
        {"norx",      1700000000ULL, 0.34, 6_MiB,   MemPattern::Mixed,
         0.10},
        {"primes",    7700000000ULL, 0.05, 64_KiB,
         MemPattern::Sequential},
        {"sha512",    1400000000ULL, 0.33, 128_KiB,
         MemPattern::Sequential},
        {"qsort",     3400000000ULL, 0.35, 5_MiB,   MemPattern::Mixed,
         0.05},
        {"dhrystone", 3900000000ULL, 0.25, 64_KiB,
         MemPattern::Sequential},
        {"miniz",     5600000000ULL, 0.30, 5_MiB,   MemPattern::Mixed,
         0.04},
        {"bigint",    7700000000ULL, 0.18, 64_KiB,
         MemPattern::Sequential},
    };
    return apps;
}

double
runRv8App(TeeEnv &env, const Rv8App &app, uint64_t sample_accesses)
{
    auto enclave = env.createEnclave(std::max<uint64_t>(app.workingSet * 2,
                                                        8_MiB));
    env.enterEnclave(*enclave, PrivMode::User);

    CoreModel model = env.makeCoreModel();
    Runner r(*enclave->kernel, *enclave->as, model);

    const Addr buf = enclave->as->mmap(app.workingSet, Perm::rw(), true,
                                       true);
    Rng rng(0x8e5 ^ std::hash<std::string>{}(app.name));

    // Warm-up pass so the sampled region reflects steady state.
    for (Addr a = buf; a < buf + app.workingSet; a += 4096)
        r.load(a);
    model.reset();

    const double instr_per_access = 1.0 / app.memRatio;
    Addr seq = buf;
    for (uint64_t i = 0; i < sample_accesses; ++i) {
        Addr va;
        switch (app.pattern) {
          case MemPattern::Sequential:
            seq += 8;
            if (seq >= buf + app.workingSet)
                seq = buf;
            va = seq;
            break;
          case MemPattern::Random:
            va = buf + alignDown(rng.below(app.workingSet - 8), 8);
            break;
          case MemPattern::Mixed:
          default:
            if (!rng.chance(app.randomFrac)) {
                seq += 8;
                if (seq >= buf + app.workingSet)
                    seq = buf;
                va = seq;
            } else {
                va = buf + alignDown(rng.below(app.workingSet - 8), 8);
            }
            break;
        }
        if (rng.chance(0.3))
            r.store(va);
        else
            r.load(va);
        r.compute(uint64_t(instr_per_access));
    }

    // Extrapolate: the sample's cycles represent sample_accesses of
    // the app's total memory operations.
    const double total_accesses = app.instructions * app.memRatio;
    const double scale = total_accesses / double(sample_accesses);
    const double seconds = model.seconds() * scale;

    env.exitToHost();
    env.destroyEnclave(std::move(enclave));
    return seconds;
}

} // namespace hpmp
