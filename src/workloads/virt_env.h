/**
 * @file
 * Virtualized test environment (paper §6 / §8.6, Figures 8 and 13).
 *
 * Builds a guest with an Sv39 guest page table and an Sv39x4 nested
 * page table, placing NPT pages in one contiguous pool and guest-PT
 * pages in another so the four compared methods can be programmed:
 *
 *   PMP      — all regions in segment mode (non-scalable baseline)
 *   PMPT     — everything through the permission table
 *   HPMP     — NPT pool in a segment, the rest in the table
 *   HPMP-GPT — NPT and guest-PT pools in segments (guest cooperates)
 *
 * The guest-physical layout is identity-mapped (gpa == spa) so guest
 * tables can be built directly in simulated memory, while every
 * access still performs the real three-dimensional walk.
 */

#ifndef HPMP_WORKLOADS_VIRT_ENV_H
#define HPMP_WORKLOADS_VIRT_ENV_H

#include <memory>

#include "core/virt_machine.h"
#include "pmpt/pmp_table.h"
#include "pt/page_table.h"

namespace hpmp
{

/** The four methods of Fig. 13. */
enum class VirtScheme { Pmp, Pmpt, Hpmp, HpmpGpt };

const char *toString(VirtScheme scheme);

/** Assembled virtualized environment. */
class VirtEnv
{
  public:
    VirtEnv(CoreKind core, VirtScheme scheme);

    VirtMachine &vm() { return *vm_; }
    VirtScheme scheme() const { return scheme_; }

    /**
     * Map `npages` guest pages starting at guestVaBase() and return
     * the base gva. Data pages are taken linearly from the data
     * region; `va_stride_pages` > 1 spreads the virtual addresses.
     * `user` and `npt_perm` set the VS-stage U bit and the G-stage
     * leaf permission (rwx/user by default).
     */
    Addr mapGuestPages(unsigned npages, uint64_t va_stride_pages = 1,
                       bool user = true, Perm npt_perm = Perm::rwx());

    static constexpr Addr kGuestVaBase = 0x40000000;

    /** Memory layout. */
    static constexpr Addr kMonitorBase = 0;
    static constexpr uint64_t kMonitorSize = 128_MiB;
    static constexpr Addr kNptPool = 128_MiB;
    static constexpr uint64_t kNptPoolSize = 32_MiB;
    static constexpr Addr kGptPool = 160_MiB;
    static constexpr uint64_t kGptPoolSize = 32_MiB;
    static constexpr Addr kDataBase = 1_GiB;
    static constexpr uint64_t kDataSize = 1_GiB;

  private:
    void programScheme();

    VirtScheme scheme_;
    std::unique_ptr<VirtMachine> vm_;
    std::unique_ptr<PageTable> npt_;  //!< Sv39x4 nested table
    std::unique_ptr<PageTable> gpt_;  //!< Sv39 guest table
    std::unique_ptr<PmpTable> table_; //!< permission table
    Addr nextDataPage_ = kDataBase;
    Addr nextGva_ = kGuestVaBase;
};

} // namespace hpmp

#endif // HPMP_WORKLOADS_VIRT_ENV_H
