/**
 * @file
 * RV8 benchmark-suite model (paper §8.3, Fig. 11-a).
 *
 * The RV8 applications are computation-bound with modest working
 * sets; their cost under the isolation schemes is dominated by how
 * often they miss the TLB. Each app is modelled by its instruction
 * volume, memory-operation ratio, working-set size and access
 * pattern; a sampled run through the full machine is extrapolated to
 * the app's instruction volume.
 */

#ifndef HPMP_WORKLOADS_RV8_H
#define HPMP_WORKLOADS_RV8_H

#include <string>
#include <vector>

#include "workloads/env.h"

namespace hpmp
{

/** Access-pattern classes used by the workload models. */
enum class MemPattern { Sequential, Random, Mixed };

/** Model of one RV8 application. */
struct Rv8App
{
    std::string name;
    uint64_t instructions;  //!< total dynamic instructions
    double memRatio;        //!< memory ops per instruction
    uint64_t workingSet;    //!< bytes
    MemPattern pattern;
    /** Fraction of accesses that jump randomly (Mixed pattern). */
    double randomFrac = 0.05;
};

/** The eight apps of Fig. 11-a. */
const std::vector<Rv8App> &rv8Apps();

/**
 * Run one app in an enclave of `env` and return the modelled
 * execution time in seconds.
 */
double runRv8App(TeeEnv &env, const Rv8App &app,
                 uint64_t sample_accesses = 120000);

} // namespace hpmp

#endif // HPMP_WORKLOADS_RV8_H
