#include "workloads/lmbench.h"

#include "base/logging.h"

namespace hpmp
{

std::vector<std::string>
lmbenchSyscalls()
{
    return {"null", "read", "write", "stat", "fstat", "open/close",
            "pipe", "fork+exit", "fork+exec"};
}

LmbenchSuite::LmbenchSuite(TeeEnv &env)
    : env_(env),
      rng_(0x1abe1)
{
    // A long-running system's physical memory is fragmented: kernel
    // structures spread across the whole region, so permission-table
    // lines do not coalesce (§8.8 is the dedicated study).
    env_.hostKernel().dataAllocator().setScatter(true, 0x05ca7);
    as_ = env_.hostKernel().createAddressSpace();
    CoreModel setup_model = env_.makeCoreModel();
    Runner setup(env_.hostKernel(), *as_, setup_model);

    kernelHeap_ = as_->mmap(kKernelHeapBytes, Perm::rw(), false, true);
    pageCache_ = as_->mmap(kPageCacheBytes, Perm::rw(), false, true);
    userBuf_ = as_->mmap(kUserBytes, Perm::rw(), true, true);
    // A window of 8 pages for child page-table frames (remapped per
    // fork).
    ptWindow_ = 0x70000000;
}

std::vector<std::string>
lmbenchExtendedSyscalls()
{
    return {"mmap", "pagefault", "ctxsw"};
}

LmbenchSuite::~LmbenchSuite() = default;

void
LmbenchSuite::kernelTouches(Runner &r, unsigned n)
{
    // fd tables, task structs, dentries... scattered across the
    // kernel heap with mild locality (two touches per line pair).
    for (unsigned i = 0; i < n; ++i) {
        const Addr va = kernelHeap_ +
            alignDown(rng_.below(kKernelHeapBytes - 64), 8);
        r.load(va);
        if (i % 4 == 0)
            r.store(va);
    }
}

void
LmbenchSuite::userCopy(Runner &r, uint64_t len, bool to_user)
{
    const Addr src = to_user ? pageCache_ + pageAddr(rng_.below(
                                   kPageCacheBytes / kPageSize))
                             : userBuf_;
    const Addr dst = to_user ? userBuf_ : pageCache_;
    r.streamRead(src, len);
    r.streamWrite(dst, len);
    r.compute(len / 8);
}

void
LmbenchSuite::doNull(Runner &r)
{
    r.compute(80);
    kernelTouches(r, 2);
}

void
LmbenchSuite::doRead(Runner &r)
{
    r.compute(500);
    kernelTouches(r, 8);
    userCopy(r, 512, true);
}

void
LmbenchSuite::doWrite(Runner &r)
{
    r.compute(420);
    kernelTouches(r, 6);
    userCopy(r, 512, false);
}

void
LmbenchSuite::doStat(Runner &r)
{
    // Path walk: many dentry/inode touches.
    r.compute(2200);
    kernelTouches(r, 34);
}

void
LmbenchSuite::doFstat(Runner &r)
{
    r.compute(460);
    kernelTouches(r, 7);
}

void
LmbenchSuite::doOpenClose(Runner &r)
{
    r.compute(4800);
    kernelTouches(r, 70);
}

void
LmbenchSuite::doPipe(Runner &r)
{
    // Two context switches plus buffer copies. RISC-V Linux flushes
    // the TLB on context switch (no ASIDs on these cores).
    env_.machine().sfenceVma();
    r.compute(11000);
    kernelTouches(r, 150);
    env_.machine().sfenceVma();
    userCopy(r, 512, false);
    userCopy(r, 512, true);
}

void
LmbenchSuite::forkBody(Runner &r, bool exec_after)
{
    Machine &m = env_.machine();
    Kernel &kernel = env_.hostKernel();

    // The fork path context-switches into the child and back: the TLB
    // and PWC are flushed (RISC-V Linux without ASIDs).
    m.sfenceVma();

    // Duplicate task/mm structures.
    r.compute(exec_after ? 240000 : 220000);
    kernelTouches(r, 700);

    // Child page-table construction: allocate real PT frames from the
    // kernel's PT allocator and write them through timed stores. The
    // frames' physical placement (contiguous pool vs. scattered) is
    // exactly what distinguishes HPMP from the baselines here.
    constexpr unsigned kChildPtPages = 6;
    Addr frames[kChildPtPages];
    for (unsigned i = 0; i < kChildPtPages; ++i) {
        frames[i] = kernel.allocPtFrames(1);
        const Addr va = ptWindow_ + i * kPageSize;
        as_->mapFrameAt(va, frames[i], Perm::rw(), false);
        // Zero the page, then copy parent PTEs into it: one pass of
        // stores plus a read-modify pattern over the used entries.
        r.streamWrite(va, kPageSize);
        for (unsigned e = 0; e < 48; ++e)
            r.store(va + e * 8 * 8);
    }
    m.sfenceVma();

    if (exec_after) {
        // exec: map fresh text/data and fault them in.
        const Addr img = as_->mmap(64 * kPageSize, Perm::rwx(), true,
                                   false);
        for (unsigned i = 0; i < 64; ++i)
            r.load(img + i * kPageSize);
        r.compute(60000);
        as_->munmap(img, 64 * kPageSize);
    }

    // exit: tear the child down again (another switch pair).
    m.sfenceVma();
    r.compute(40000);
    kernelTouches(r, 250);
    for (unsigned i = 0; i < kChildPtPages; ++i) {
        const Addr va = ptWindow_ + i * kPageSize;
        as_->pageTable().unmap(va);
        kernel.freePtFrame(frames[i]);
    }
    m.sfenceVma();
}

void
LmbenchSuite::doMmap(Runner &r)
{
    // mmap + munmap of 64 pages: VMA bookkeeping plus PTE stores into
    // a real PT frame (placement decided by the kernel policy).
    Machine &m = env_.machine();
    Kernel &kernel = env_.hostKernel();
    r.compute(2600);
    kernelTouches(r, 12);

    const Addr frame = kernel.allocPtFrames(1);
    const Addr va = ptWindow_ + 7 * kPageSize;
    as_->mapFrameAt(va, frame, Perm::rw(), false);
    for (unsigned e = 0; e < 64; ++e)
        r.store(va + e * 8);
    // munmap: clear them again and flush the TLB for the range.
    for (unsigned e = 0; e < 64; ++e)
        r.store(va + e * 8);
    as_->pageTable().unmap(va);
    kernel.freePtFrame(frame);
    m.sfenceVma();
    r.compute(1800);
}

void
LmbenchSuite::doPageFault(Runner &r)
{
    // Touch a never-populated page: trap + allocation + PTE install +
    // zeroing, all through the Runner's fault path.
    if (faultArena_ == 0 || faultCursor_ >= faultArena_ + 8_MiB) {
        faultArena_ = as_->mmap(8_MiB, Perm::rw(), true, false);
        faultCursor_ = faultArena_;
    }
    r.store(faultCursor_);
    r.streamWrite(faultCursor_, kPageSize); // zero the fresh page
    faultCursor_ += kPageSize;
    r.compute(400);
}

void
LmbenchSuite::doCtxSwitch(Runner &r)
{
    // Two processes ping-ponging: scheduler work plus satp switch and
    // the TLB flush that RISC-V without ASIDs implies.
    Machine &m = env_.machine();
    if (!otherAs_) {
        otherAs_ = env_.hostKernel().createAddressSpace();
        otherAs_->mmap(64 * kPageSize, Perm::rw(), true, true);
    }
    r.compute(1900);
    kernelTouches(r, 24);
    m.setSatp(otherAs_->rootPa(),
              env_.hostKernel().config().pagingMode);
    m.setSatp(as_->rootPa(), env_.hostKernel().config().pagingMode);
    kernelTouches(r, 24);
}

void
LmbenchSuite::doForkExit(Runner &r)
{
    forkBody(r, false);
}

void
LmbenchSuite::doForkExec(Runner &r)
{
    forkBody(r, true);
}

double
LmbenchSuite::run(const std::string &name, unsigned iters)
{
    env_.exitToHost();
    env_.hostKernel().activate(*as_, PrivMode::Supervisor);

    CoreModel model = env_.makeCoreModel();
    Runner r(env_.hostKernel(), *as_, model);

    auto dispatch = [&](Runner &runner) {
        if (name == "null") doNull(runner);
        else if (name == "read") doRead(runner);
        else if (name == "write") doWrite(runner);
        else if (name == "stat") doStat(runner);
        else if (name == "fstat") doFstat(runner);
        else if (name == "open/close") doOpenClose(runner);
        else if (name == "pipe") doPipe(runner);
        else if (name == "fork+exit") doForkExit(runner);
        else if (name == "fork+exec") doForkExec(runner);
        else if (name == "mmap") doMmap(runner);
        else if (name == "pagefault") doPageFault(runner);
        else if (name == "ctxsw") doCtxSwitch(runner);
        else fatal("unknown syscall model '%s'", name.c_str());
    };

    // Warm up once, then measure.
    dispatch(r);
    model.reset();
    const unsigned effective = name.rfind("fork", 0) == 0
                                   ? std::max(1u, iters / 20)
                                   : iters;
    for (unsigned i = 0; i < effective; ++i)
        dispatch(r);
    return model.seconds() * 1e6 / effective;
}

} // namespace hpmp
