#include "workloads/virt_env.h"

#include "base/logging.h"

namespace hpmp
{

const char *
toString(VirtScheme scheme)
{
    switch (scheme) {
      case VirtScheme::Pmp: return "PMP";
      case VirtScheme::Pmpt: return "PMPT";
      case VirtScheme::Hpmp: return "HPMP";
      case VirtScheme::HpmpGpt: return "HPMP-GPT";
    }
    return "?";
}

VirtEnv::VirtEnv(CoreKind core, VirtScheme scheme)
    : scheme_(scheme)
{
    vm_ = std::make_unique<VirtMachine>(machineParams(core));
    PhysMem &mem = vm_->mem();

    // Nested table: Sv39x4 (root is four pages wide), frames from the
    // NPT pool — the hypervisor-side HPMP policy (paper §6).
    npt_ = std::make_unique<PageTable>(mem, bumpAllocator(kNptPool),
                                       PagingMode::Sv39, 2);
    // Guest table: frames from the guest-PT pool; guest-physical
    // addresses are identity-mapped so the builder can write directly.
    gpt_ = std::make_unique<PageTable>(mem, bumpAllocator(kGptPool),
                                       PagingMode::Sv39, 0);

    // G-stage identity mappings for the regions the guest can reach:
    // its page-table pool and its data region. U=1 as required for
    // G-stage leaves.
    for (Addr gpa = kGptPool; gpa < kGptPool + kGptPoolSize;
         gpa += kPageSize) {
        npt_->map(gpa, gpa, Perm::rw(), true);
    }
    // Data region mapped lazily in mapGuestPages (it is large).

    vm_->setHgatp(npt_->rootPa());
    vm_->setVsatp(gpt_->rootPa());

    programScheme();
}

void
VirtEnv::programScheme()
{
    HpmpUnit &unit = vm_->hpmp();
    PhysMem &mem = vm_->mem();

    // Entry 0: the monitor region, inaccessible to S/U.
    unit.programSegment(0, kMonitorBase, kMonitorSize, Perm::none());

    auto make_table = [&]() {
        table_ = std::make_unique<PmpTable>(
            mem, bumpAllocator(kMonitorBase + kMonitorSize / 2), 2);
        table_->setPerm(kNptPool, kNptPoolSize, Perm::rw());
        table_->setPerm(kGptPool, kGptPoolSize, Perm::rw());
        table_->setPerm(kDataBase, kDataSize, Perm::rwx());
    };

    switch (scheme_) {
      case VirtScheme::Pmp:
        unit.programSegment(1, kNptPool, kNptPoolSize, Perm::rw());
        unit.programSegment(2, kGptPool, kGptPoolSize, Perm::rw());
        unit.programSegment(3, kDataBase, kDataSize, Perm::rwx());
        break;
      case VirtScheme::Pmpt:
        make_table();
        unit.programTable(1, 0, 16_GiB, table_->rootPa());
        break;
      case VirtScheme::Hpmp:
        unit.programSegment(1, kNptPool, kNptPoolSize, Perm::rw());
        make_table();
        unit.programTable(2, 0, 16_GiB, table_->rootPa());
        break;
      case VirtScheme::HpmpGpt:
        unit.programSegment(1, kNptPool, kNptPoolSize, Perm::rw());
        unit.programSegment(2, kGptPool, kGptPoolSize, Perm::rw());
        make_table();
        unit.programTable(3, 0, 16_GiB, table_->rootPa());
        break;
    }
}

Addr
VirtEnv::mapGuestPages(unsigned npages, uint64_t va_stride_pages,
                       bool user, Perm npt_perm)
{
    const Addr base = nextGva_;
    for (unsigned i = 0; i < npages; ++i) {
        const Addr gva = base + pageAddr(uint64_t(i) * va_stride_pages);
        const Addr gpa = nextDataPage_;
        nextDataPage_ += kPageSize;
        fatal_if(nextDataPage_ > kDataBase + kDataSize,
                 "guest data region exhausted");
        const bool mapped_g = gpt_->map(gva, gpa, Perm::rwx(), user);
        panic_if(!mapped_g, "guest map collision at %#lx", gva);
        const bool mapped_n = npt_->map(gpa, gpa, npt_perm, true);
        panic_if(!mapped_n, "nested map collision at %#lx", gpa);
    }
    nextGva_ = base + pageAddr(uint64_t(npages) * va_stride_pages + 16);
    vm_->hfenceGvma();
    return base;
}

} // namespace hpmp
