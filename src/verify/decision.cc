#include "verify/decision.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace hpmp::verify
{

const char *
toString(DecisionKind kind)
{
    switch (kind) {
      case DecisionKind::Sched: return "sched";
      case DecisionKind::Fault: return "fault";
      case DecisionKind::Inject: return "inject";
    }
    return "?";
}

namespace
{

bool
kindFromString(const std::string &s, DecisionKind &out)
{
    if (s == "sched") {
        out = DecisionKind::Sched;
    } else if (s == "fault") {
        out = DecisionKind::Fault;
    } else if (s == "inject") {
        out = DecisionKind::Inject;
    } else {
        return false;
    }
    return true;
}

/** The description travels on one line; fold newlines away. */
std::string
oneLine(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(c == '\n' ? ';' : c);
    return out;
}

} // namespace

std::string
serializeTrace(const DecisionTrace &trace)
{
    std::ostringstream os;
    os << "# hpmp model_check counterexample v1\n";
    for (const std::string &line : trace.configLines)
        os << "config " << line << "\n";
    if (trace.violated) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "0x%016" PRIx64,
                      trace.violation.stateDigest);
        os << "violation kind=" << trace.violation.kind
           << " op=" << trace.violation.opIndex << " digest=" << buf
           << "\n";
        os << "violation_desc " << oneLine(trace.violation.description)
           << "\n";
    }
    for (const Decision &d : trace.decisions) {
        os << "d " << toString(d.kind) << " " << d.altIndex << "/"
           << d.numAlts;
        if (d.kind == DecisionKind::Sched)
            os << " h" << d.value;
        else if (!d.label.empty())
            os << " " << d.label;
        os << "\n";
    }
    return os.str();
}

bool
parseTrace(const std::string &text, DecisionTrace &out, std::string &error)
{
    out = DecisionTrace{};
    std::istringstream is(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "config") {
            std::string rest;
            std::getline(ls, rest);
            if (!rest.empty() && rest[0] == ' ')
                rest.erase(0, 1);
            out.configLines.push_back(rest);
        } else if (tag == "violation") {
            out.violated = true;
            std::string field;
            while (ls >> field) {
                const auto eq = field.find('=');
                if (eq == std::string::npos)
                    continue;
                const std::string key = field.substr(0, eq);
                const std::string val = field.substr(eq + 1);
                if (key == "kind") {
                    out.violation.kind = val;
                } else if (key == "op") {
                    out.violation.opIndex =
                        unsigned(std::strtoul(val.c_str(), nullptr, 0));
                } else if (key == "digest") {
                    out.violation.stateDigest =
                        std::strtoull(val.c_str(), nullptr, 0);
                }
            }
        } else if (tag == "violation_desc") {
            std::string rest;
            std::getline(ls, rest);
            if (!rest.empty() && rest[0] == ' ')
                rest.erase(0, 1);
            out.violation.description = rest;
        } else if (tag == "d") {
            Decision d;
            std::string kind, alt;
            if (!(ls >> kind >> alt) || !kindFromString(kind, d.kind)) {
                error = "line " + std::to_string(lineno) +
                        ": bad decision";
                return false;
            }
            const auto slash = alt.find('/');
            if (slash == std::string::npos) {
                error = "line " + std::to_string(lineno) +
                        ": bad alt index '" + alt + "'";
                return false;
            }
            d.altIndex = unsigned(
                std::strtoul(alt.substr(0, slash).c_str(), nullptr, 10));
            d.numAlts = unsigned(
                std::strtoul(alt.substr(slash + 1).c_str(), nullptr, 10));
            std::string label;
            if (ls >> label) {
                if (d.kind == DecisionKind::Sched && label.size() > 1 &&
                    label[0] == 'h') {
                    d.value = unsigned(
                        std::strtoul(label.c_str() + 1, nullptr, 10));
                } else {
                    d.label = label;
                }
            }
            if (d.numAlts < 2 || d.altIndex >= d.numAlts) {
                error = "line " + std::to_string(lineno) +
                        ": alt out of range";
                return false;
            }
            out.decisions.push_back(std::move(d));
        } else {
            error = "line " + std::to_string(lineno) +
                    ": unknown tag '" + tag + "'";
            return false;
        }
    }
    return true;
}

} // namespace hpmp::verify
