/**
 * @file
 * DFS enumerator over the bounded model's decision tree.
 *
 * Stateless search: each path is a fresh run of the bounded scenario
 * (verify/harness.h) under a forced decision prefix. Backtracking is
 * textbook — take the completed path's decision vector, find the
 * deepest decision with an unexplored alternative, advance it and
 * drop everything after; rerun. The search is exhaustive (up to the
 * depth bound) because a run records *every* multi-alternative point
 * it passes.
 *
 * Two reductions keep the tree tractable, both justified in
 * DESIGN.md §14:
 *
 *  - explicit-state dedup: a run that re-enters a previously visited
 *    canonical state (monitor digest + per-hart digests + script
 *    positions + branch budgets) stops — the subtree beyond it was
 *    already explored from the first visit;
 *  - a sleep-set-style merge of scheduling alternatives whose next op
 *    is a state-invisible access (they commute with everything).
 *
 * Violating paths are minimized (flip non-default decisions back to
 * default, keep only flips the violation survives; trim trailing
 * defaults) and can be replayed bit-exactly — reproduction means the
 * same violation kind at the same canonical state digest.
 */

#ifndef HPMP_VERIFY_ENUMERATOR_H
#define HPMP_VERIFY_ENUMERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "verify/harness.h"

namespace hpmp::verify
{

/** Search counters, reported by the CLI and asserted on by tests. */
struct CheckStats
{
    uint64_t paths = 0;          //!< complete runs executed
    uint64_t states = 0;         //!< distinct canonical states seen
    uint64_t transitions = 0;    //!< script ops executed past prefixes
    uint64_t violations = 0;     //!< violating paths found
    uint64_t truncatedPaths = 0; //!< paths cut by the depth bound
    uint64_t dedupStops = 0;     //!< runs stopped on a visited state
    uint64_t sleepMergedAlts = 0; //!< sched alternatives merged (POR)
    uint64_t minimizeRuns = 0;    //!< extra runs spent minimizing
};

/** Outcome of a whole search. */
struct CheckResult
{
    CheckStats stats;
    /** Minimized counterexamples, in discovery order. */
    std::vector<DecisionTrace> counterexamples;
    /**
     * True iff the search covered the entire bounded tree: no path
     * hit the depth bound and no stop-early limit triggered.
     */
    bool exhaustive = false;
};

/** Verdict of re-running a counterexample trace. */
struct ReplayReport
{
    bool reproduced = false; //!< violated with the same violation kind
    bool bitExact = false;   //!< ...at the same canonical state digest
    std::string detail;      //!< what differed, when not bit-exact
    RunOutcome outcome;
};

class ModelChecker
{
  public:
    explicit ModelChecker(ModelConfig config) : config_(std::move(config))
    {}

    /**
     * Exhaustively enumerate the decision tree. Stops early once
     * `maxViolations` violating paths were found (0 = never), or
     * after `maxPaths` runs (0 = unlimited; a safety valve for CI
     * time budgets — trips `exhaustive = false`).
     */
    CheckResult run(unsigned maxViolations = 0, uint64_t maxPaths = 0);

    /**
     * Shrink a violating trace: flip each non-default decision back
     * to its default (falling back to truncating the path there) and
     * keep any change under which the same violation kind still
     * trips; trim trailing default decisions. Iterates to a fixpoint
     * (bounded). The result replays the *same violation kind*; its
     * digest is re-stamped from the minimized run.
     */
    DecisionTrace minimize(const DecisionTrace &trace);

    /** Re-run a trace and compare against its recorded violation. */
    ReplayReport replay(const DecisionTrace &trace);

    /**
     * replay(), with the trace ring capturing Monitor/Fault spans and
     * the retained window written to `jsonPath` as chrome://tracing
     * JSON. Tracer flag state is restored afterwards.
     */
    ReplayReport replayWithChromeDump(const DecisionTrace &trace,
                                      const std::string &jsonPath);

    const ModelConfig &config() const { return config_; }
    /** Runs spent inside minimize() (for stats reporting). */
    uint64_t minimizeRuns() const { return minimizeRuns_; }

  private:
    DecisionTrace makeTrace(const RunOutcome &outcome) const;

    ModelConfig config_;
    uint64_t minimizeRuns_ = 0;
};

} // namespace hpmp::verify

#endif // HPMP_VERIFY_ENUMERATOR_H
