#include "verify/enumerator.h"

#include <cstdio>
#include <utility>

#include "base/logging.h"
#include "base/trace.h"

namespace hpmp::verify
{

DecisionTrace
ModelChecker::makeTrace(const RunOutcome &outcome) const
{
    DecisionTrace trace;
    trace.decisions = outcome.decisions;
    trace.violated = outcome.violated;
    trace.violation = outcome.violation;
    trace.configLines = config_.configLines();
    return trace;
}

CheckResult
ModelChecker::run(unsigned maxViolations, uint64_t maxPaths)
{
    CheckResult result;
    StateSet visited;
    std::vector<Decision> prefix;
    bool stoppedEarly = false;

    while (true) {
        const RunOutcome out = runPath(config_, &prefix, &visited);
        ++result.stats.paths;
        result.stats.transitions += out.newTransitions;
        result.stats.sleepMergedAlts += out.sleepMergedAlts;
        if (out.truncated)
            ++result.stats.truncatedPaths;
        if (out.deduped)
            ++result.stats.dedupStops;
        // The forced prefix is this run's own earlier decisions; a
        // misalignment means the model leaked nondeterminism past the
        // three taps — the search would silently skip subtrees.
        panic_if(out.divergence, "DFS replay diverged: %s",
                 out.divergenceWhy.c_str());

        if (out.violated) {
            ++result.stats.violations;
            DecisionTrace ce = minimize(makeTrace(out));
            result.counterexamples.push_back(std::move(ce));
            if (maxViolations != 0 &&
                result.stats.violations >= maxViolations) {
                stoppedEarly = true;
                break;
            }
        }
        if (maxPaths != 0 && result.stats.paths >= maxPaths) {
            stoppedEarly = true;
            break;
        }

        // Backtrack: deepest decision with an unexplored alternative.
        size_t j = out.decisions.size();
        while (j > 0 &&
               out.decisions[j - 1].altIndex + 1 >=
                   out.decisions[j - 1].numAlts)
            --j;
        if (j == 0)
            break; // tree exhausted
        prefix.assign(out.decisions.begin(),
                      out.decisions.begin() + j);
        ++prefix[j - 1].altIndex;
    }

    result.stats.states = visited.size();
    result.stats.minimizeRuns = minimizeRuns_;
    result.exhaustive =
        !stoppedEarly && result.stats.truncatedPaths == 0;
    return result;
}

DecisionTrace
ModelChecker::minimize(const DecisionTrace &trace)
{
    if (!trace.violated)
        return trace;
    DecisionTrace cur = trace;

    auto accept = [&](const std::vector<Decision> &forced,
                      DecisionTrace &into) {
        ++minimizeRuns_;
        const RunOutcome out = runPath(config_, &forced, nullptr);
        if (!out.violated || out.violation.kind != cur.violation.kind)
            return false;
        into.decisions = out.decisions;
        into.violation = out.violation;
        return true;
    };

    for (unsigned round = 0; round < 8; ++round) {
        bool changed = false;
        for (size_t i = 0; i < cur.decisions.size(); ++i) {
            if (cur.decisions[i].altIndex == 0)
                continue;
            // First try flipping just this decision to its default,
            // keeping the suffix (later decisions may still line up).
            std::vector<Decision> cand = cur.decisions;
            cand[i].altIndex = 0;
            if (accept(cand, cur)) {
                changed = true;
                continue;
            }
            // Fallback: cut the path right after the flip and let
            // defaults carry the rest of the run.
            cand.resize(i + 1);
            if (accept(cand, cur))
                changed = true;
        }
        // Trailing defaults need no rerun to drop: a shorter forced
        // prefix continues with defaults, which is the same path.
        while (!cur.decisions.empty() &&
               cur.decisions.back().altIndex == 0)
            cur.decisions.pop_back();
        if (!changed)
            break;
    }
    return cur;
}

ReplayReport
ModelChecker::replay(const DecisionTrace &trace)
{
    ReplayReport report;
    report.outcome = runPath(config_, &trace.decisions, nullptr);
    const RunOutcome &out = report.outcome;
    if (out.divergence) {
        report.detail = "trace diverged from the run: " +
                        out.divergenceWhy;
        return report;
    }
    if (!out.violated) {
        report.detail = "replay found no violation";
        return report;
    }
    if (out.violation.kind != trace.violation.kind) {
        report.detail = "replay violated '" + out.violation.kind +
                        "', trace recorded '" + trace.violation.kind +
                        "'";
        return report;
    }
    report.reproduced = true;
    if (trace.violation.stateDigest != 0 &&
        out.violation.stateDigest != trace.violation.stateDigest) {
        report.detail = "violation kind matches but the state digest "
                        "differs (not bit-exact)";
        return report;
    }
    report.bitExact = true;
    return report;
}

ReplayReport
ModelChecker::replayWithChromeDump(const DecisionTrace &trace,
                                   const std::string &jsonPath)
{
    Tracer &tracer = Tracer::instance();
    tracer.setOutput(nullptr); // spans only; no DPRINTF spew
    tracer.enable(TraceFlag::Monitor);
    tracer.enable(TraceFlag::Fault);
    tracer.ring().setCapacity(16384);
    tracer.ring().clear();

    ReplayReport report = replay(trace);

    if (!tracer.ring().writeChromeJson(jsonPath)) {
        // Tracing-off builds stub writeChromeJson out; still leave a
        // well-formed (empty) chrome://tracing file behind.
        const std::string json = tracer.ring().dumpChromeJson();
        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (f) {
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
        } else if (report.detail.empty()) {
            report.detail = "chrome trace dump failed";
        } else {
            report.detail += "; chrome trace dump failed";
        }
    }
    tracer.disable(TraceFlag::Monitor);
    tracer.disable(TraceFlag::Fault);
    tracer.ring().setCapacity(0);
    tracer.setOutput(stderr);
    return report;
}

} // namespace hpmp::verify
