/**
 * @file
 * Decision traces: the model checker's path representation.
 *
 * An explicit-state run of the bounded model (verify/harness.h) is a
 * sequence of *decisions* — points where the execution could have gone
 * more than one way:
 *
 *  - Sched:  which hart executes its next script op (pickHart-level);
 *  - Fault:  whether a registered FAULT_POINT site fires at this hit;
 *  - Inject: whether the interleave hook drives a victim-hart nested
 *            monitor call at this Posted/Delivered protocol step.
 *
 * A Decision records the alternative taken *and* how many alternatives
 * existed, so the DFS enumerator can backtrack (advance the deepest
 * decision with unexplored alternatives) and a violating path can be
 * serialized, minimized and replayed bit-exactly: re-running the same
 * bounded config under the same forced decisions is deterministic by
 * construction — there is no other nondeterminism source left.
 *
 * The on-disk format is line-oriented text (one `config` line per
 * knob, one `violation` header, one `d` line per decision) so CI can
 * archive counterexamples as readable artifacts.
 */

#ifndef HPMP_VERIFY_DECISION_H
#define HPMP_VERIFY_DECISION_H

#include <cstdint>
#include <string>
#include <vector>

namespace hpmp::verify
{

enum class DecisionKind : uint8_t { Sched, Fault, Inject };

const char *toString(DecisionKind kind);

/** One branch point of a run, with the alternative taken. */
struct Decision
{
    DecisionKind kind = DecisionKind::Sched;
    unsigned altIndex = 0; //!< index of the alternative taken
    unsigned numAlts = 1;  //!< alternatives available at this point
    /** Resolved choice: Sched = hart id, Fault/Inject = 0/1. */
    unsigned value = 0;
    /** Fault: site name; Inject: "<Phase>@h<dst>"; Sched: empty. */
    std::string label;
};

/** What a violating path tripped over. */
struct Violation
{
    std::string kind;        //!< stable id ("stale_checker", ...)
    std::string description; //!< human-readable account
    unsigned opIndex = 0;    //!< script op during which it tripped
    /**
     * Canonical state key at detection (monitor digest + per-hart
     * digests + script positions). A replay reproduces the violation
     * bit-exactly iff its key equals this one.
     */
    uint64_t stateDigest = 0;
};

/** A complete decision path plus its outcome, serializable. */
struct DecisionTrace
{
    std::vector<Decision> decisions;
    bool violated = false;
    Violation violation;
    /** "key=value" echo of the ModelConfig that produced the path. */
    std::vector<std::string> configLines;
};

/** Serialize to the line-oriented counterexample format. */
std::string serializeTrace(const DecisionTrace &trace);

/** Parse a serialized trace. @return false (and set error) on junk. */
bool parseTrace(const std::string &text, DecisionTrace &out,
                std::string &error);

} // namespace hpmp::verify

#endif // HPMP_VERIFY_DECISION_H
