#include "verify/harness.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>

#include "base/addr.h"
#include "base/fault_inject.h"
#include "base/hash.h"
#include "base/logging.h"
#include "core/params.h"
#include "core/smp.h"
#include "migrate/migration.h"
#include "monitor/invariants.h"
#include "monitor/secure_monitor.h"
#include "monitor/stale_checker.h"

namespace hpmp::verify
{

namespace
{

// ---- bounded-scenario geometry ------------------------------------
// Enclave regions live well above the monitor-private region (first
// 128 MiB) and are NAPOT so fast GMSs can use segment entries.
constexpr Addr kRegionBase = 256_MiB;
constexpr Addr kRegionStride = 64_MiB;

Addr
regionOf(unsigned enclave) // 1-based
{
    return kRegionBase + Addr(enclave - 1) * kRegionStride;
}

Addr
extraRegionOf(unsigned enclave)
{
    return regionOf(enclave) + 32_MiB;
}

uint64_t
napotPages(unsigned pages)
{
    uint64_t p = 1;
    while (p < pages)
        p <<= 1;
    return p;
}

// ---- the decision tap shared by all three nondeterminism sources --

struct PathController
{
    const std::vector<Decision> *forced = nullptr;
    std::vector<Decision> made;
    unsigned depthLimit = 0;
    unsigned faultBudget = 0;
    unsigned injectBudget = 0;
    unsigned faultsFired = 0;
    unsigned injectsDone = 0;
    bool truncated = false;
    bool divergence = false;
    std::string divergenceWhy;

    bool pastPrefix() const
    {
        return !forced || made.size() >= forced->size();
    }

    /**
     * Record one branch point and return the alternative to take:
     * the forced prefix's choice while replaying, the default
     * (alts[0]) beyond it. Single-alternative points are not
     * decisions and are not recorded.
     */
    unsigned
    choose(DecisionKind kind, const std::vector<unsigned> &alts,
           const std::string &label)
    {
        panic_if(alts.empty(), "decision point with no alternatives");
        if (alts.size() == 1)
            return alts[0];
        if (truncated)
            return alts[0];
        if (depthLimit != 0 && made.size() >= depthLimit) {
            truncated = true;
            return alts[0];
        }
        Decision d;
        d.kind = kind;
        d.numAlts = unsigned(alts.size());
        d.label = label;
        if (!pastPrefix() && !divergence) {
            const Decision &f = (*forced)[made.size()];
            if (f.kind != kind || f.numAlts != d.numAlts ||
                f.altIndex >= d.numAlts) {
                divergence = true;
                divergenceWhy =
                    "decision #" + std::to_string(made.size()) +
                    ": trace has " + std::string(toString(f.kind)) +
                    " " + std::to_string(f.altIndex) + "/" +
                    std::to_string(f.numAlts) + ", run offers " +
                    std::string(toString(kind)) + " ?/" +
                    std::to_string(d.numAlts);
                d.altIndex = 0;
            } else {
                d.altIndex = f.altIndex;
            }
        } else {
            d.altIndex = 0;
        }
        d.value = alts[d.altIndex];
        made.push_back(d);
        return d.value;
    }
};

/** RAII: the injector is process-global; never leak a controller. */
struct InjectorGuard
{
    ~InjectorGuard() { FaultInjector::instance().disable(); }
};

const std::vector<unsigned> kBinaryAlts{0, 1};

// ---- interleave hook: stale checker + nested-call injection -------

class VerifyHook : public InterleaveHook
{
  public:
    VerifyHook(SmpSystem &smp, SecureMonitor &monitor,
               StaleChecker &checker, PathController &ctl)
        : smp_(smp), monitor_(monitor), checker_(checker), ctl_(ctl)
    {
    }

    void
    onIpiStep(const IpiEvent &event) override
    {
        checker_.onIpiStep(event);
        switch (event.phase) {
          case IpiPhase::WindowBegin:
            ++openWindows_;
            break;
          case IpiPhase::WindowEnd:
            --openWindows_;
            break;
          case IpiPhase::Posted:
          case IpiPhase::Delivered:
            maybeInject(event);
            break;
          default:
            break;
        }
    }

    int openWindows() const { return openWindows_; }
    const std::string &violation() const { return violation_; }

  private:
    /**
     * Decision point: drive a nested monitor call from the victim
     * hart mid-window. The global lock is held by the initiator, so
     * the nested call must bounce with LockContended before touching
     * any state — anything else is a violation.
     */
    void
    maybeInject(const IpiEvent &event)
    {
        if (ctl_.injectsDone >= ctl_.injectBudget)
            return;
        if (event.dstHart == event.srcHart)
            return;
        const std::string label = std::string(toString(event.phase)) +
                                  "@h" + std::to_string(event.dstHart);
        if (ctl_.choose(DecisionKind::Inject, kBinaryAlts, label) != 1)
            return;
        ++ctl_.injectsDone;
        const unsigned saved = smp_.currentHart();
        smp_.setCurrentHart(event.dstHart);
        const MonitorResult r = monitor_.switchTo(monitor_.currentDomain());
        smp_.setCurrentHart(saved);
        if (r.ok || r.code != MonitorError::LockContended) {
            violation_ = "nested switchTo from hart " +
                         std::to_string(event.dstHart) + " at " +
                         toString(event.phase) +
                         " did not bounce LockContended (got " +
                         std::string(r.ok ? "ok" : toString(r.code)) +
                         ")";
        }
    }

    SmpSystem &smp_;
    SecureMonitor &monitor_;
    StaleChecker &checker_;
    PathController &ctl_;
    int openWindows_ = 0;
    std::string violation_;
};

// ---- the monitor-call script --------------------------------------

enum class OpKind : uint8_t
{
    Switch,
    SetPerm,
    AddGms,
    RemoveGms,
    SetLabel,
    Share,
    Access,
};

struct ScriptOp
{
    OpKind kind = OpKind::Access;
    unsigned dom = 0;  //!< domain index (0 = host, 1.. = enclaves)
    unsigned peer = 0; //!< Share: receiving domain index
    Addr addr = 0;
    uint64_t size = 0;
    Perm perm;
    GmsLabel label = GmsLabel::Slow;
    AccessType type = AccessType::Load;
    const char *name = "?";
    /** State-invisible op (pure access on a bare hart): eligible for
     *  the sleep-set-style scheduling merge. */
    bool local = false;
};

std::vector<std::vector<ScriptOp>>
buildCoreScript(const ModelConfig &cfg)
{
    const uint64_t gmsBytes = napotPages(cfg.pages) * kPageSize;
    const Addr pageA = regionOf(1);
    const unsigned last = cfg.domains;
    const Addr pageLast = regionOf(last);

    std::vector<std::vector<ScriptOp>> script(cfg.harts);

    auto access = [](Addr a, AccessType t, const char *n) {
        ScriptOp op;
        op.kind = OpKind::Access;
        op.addr = a;
        op.type = t;
        op.name = n;
        op.local = true;
        return op;
    };

    // Hart 0: the initiator-heavy path — switch in, revoke a
    // permission (the stale-grant workhorse), share + unshare.
    {
        auto &s = script[0];
        ScriptOp sw;
        sw.kind = OpKind::Switch;
        sw.dom = 1;
        sw.name = "switch_d1";
        s.push_back(sw);

        ScriptOp sp;
        sp.kind = OpKind::SetPerm;
        sp.dom = 1;
        sp.addr = pageA;
        sp.perm = Perm::ro();
        sp.name = "revoke_w_A";
        s.push_back(sp);

        s.push_back(access(pageA, AccessType::Store, "store_A"));

        if (cfg.domains >= 2) {
            ScriptOp sh;
            sh.kind = OpKind::Share;
            sh.dom = 1;
            sh.peer = 2;
            sh.addr = pageA;
            sh.perm = Perm::ro();
            sh.name = "share_A_d2";
            s.push_back(sh);

            ScriptOp rm;
            rm.kind = OpKind::RemoveGms;
            rm.dom = 2;
            rm.addr = pageA;
            rm.name = "unshare_A_d2";
            s.push_back(rm);
        } else {
            ScriptOp ad;
            ad.kind = OpKind::AddGms;
            ad.dom = 1;
            ad.addr = extraRegionOf(1);
            ad.size = gmsBytes;
            ad.perm = Perm::rw();
            ad.name = "add_extra";
            s.push_back(ad);

            ScriptOp rm;
            rm.kind = OpKind::RemoveGms;
            rm.dom = 1;
            rm.addr = extraRegionOf(1);
            rm.name = "remove_extra";
            s.push_back(rm);
        }
    }

    // Hart 1: a victim that also initiates — reads the revoked page,
    // switches domains, relabels.
    if (cfg.harts >= 2) {
        auto &s = script[1];
        s.push_back(access(pageA, AccessType::Load, "load_A"));

        ScriptOp sw;
        sw.kind = OpKind::Switch;
        sw.dom = last;
        sw.name = "switch_last";
        s.push_back(sw);

        s.push_back(access(pageLast, AccessType::Store, "store_last"));

        ScriptOp sl;
        sl.kind = OpKind::SetLabel;
        sl.dom = last;
        sl.addr = pageLast;
        sl.label = GmsLabel::Slow;
        sl.name = "relabel_last";
        s.push_back(sl);
    }

    // Further harts: light probes + a switch, to scale interleavings.
    for (unsigned h = 2; h < cfg.harts; ++h) {
        auto &s = script[h];
        s.push_back(access(pageA, AccessType::Load, "load_A"));
        ScriptOp sw;
        sw.kind = OpKind::Switch;
        sw.dom = (h % cfg.domains) + 1;
        sw.name = "switch_mod";
        s.push_back(sw);
        s.push_back(access(pageLast, AccessType::Load, "load_last"));
    }
    return script;
}

const std::vector<std::string> &
defaultCoreSites()
{
    static const std::vector<std::string> sites = {
        "monitor.add_gms", "monitor.remove_gms", "monitor.set_label",
        "monitor.set_perm", "monitor.share_gms", "monitor.switch",
        "smp.ipi_ack",     "smp.ipi_deliver",
    };
    return sites;
}

const std::vector<std::string> &
defaultMigrateSites()
{
    static const std::vector<std::string> sites = {
        "migrate.ack_lost",      "migrate.checkpoint_torn",
        "migrate.commit_crash",  "migrate.dest_attest",
        "migrate.frame_corrupt", "migrate.frame_drop",
        "migrate.frame_dup",
    };
    return sites;
}

const std::vector<std::string> &
defaultRasSites()
{
    // The two containment workhorses handleMachineCheck() delegates
    // to: branching them enumerates every failed-containment path, and
    // the harness then demands a bit-identical rollback.
    static const std::vector<std::string> sites = {
        "monitor.destroy_domain",
        "monitor.heal_table",
    };
    return sites;
}

} // namespace

std::vector<std::string>
ModelConfig::effectiveSites() const
{
    if (!faultSites.empty())
        return faultSites;
    if (script == "migrate")
        return defaultMigrateSites();
    if (script == "ras")
        return defaultRasSites();
    return defaultCoreSites();
}

std::vector<std::string>
ModelConfig::configLines() const
{
    std::vector<std::string> lines;
    lines.push_back("harts=" + std::to_string(harts));
    lines.push_back("domains=" + std::to_string(domains));
    lines.push_back("pages=" + std::to_string(pages));
    lines.push_back(std::string("scheme=") +
                    (scheme == IsolationScheme::Hpmp       ? "hpmp"
                     : scheme == IsolationScheme::PmpTable ? "pmpt"
                                                           : "pmp"));
    lines.push_back("script=" + script);
    lines.push_back("depth=" + std::to_string(depthLimit));
    lines.push_back("fault_branch=" + std::to_string(faultBranch ? 1 : 0));
    lines.push_back("max_faults=" + std::to_string(maxFaults));
    lines.push_back("max_injects=" + std::to_string(maxInjects));
    std::string sites;
    for (const std::string &s : effectiveSites()) {
        if (!sites.empty())
            sites += ",";
        sites += s;
    }
    lines.push_back("sites=" + sites);
    lines.push_back("mutate_skip_fence=" +
                    std::to_string(mutateSkipFenceNth));
    return lines;
}

bool
ModelConfig::applyConfigLine(const std::string &line, std::string &error)
{
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
        error = "config line without '=': " + line;
        return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    auto toU = [&](unsigned &out) {
        out = unsigned(std::strtoul(val.c_str(), nullptr, 0));
        return true;
    };
    if (key == "harts")
        return toU(harts);
    if (key == "domains")
        return toU(domains);
    if (key == "pages")
        return toU(pages);
    if (key == "depth")
        return toU(depthLimit);
    if (key == "max_faults")
        return toU(maxFaults);
    if (key == "max_injects")
        return toU(maxInjects);
    if (key == "fault_branch") {
        faultBranch = val != "0";
        return true;
    }
    if (key == "mutate_skip_fence") {
        mutateSkipFenceNth = std::strtoull(val.c_str(), nullptr, 0);
        return true;
    }
    if (key == "script") {
        script = val;
        return true;
    }
    if (key == "scheme") {
        if (val == "hpmp") {
            scheme = IsolationScheme::Hpmp;
        } else if (val == "pmpt") {
            scheme = IsolationScheme::PmpTable;
        } else if (val == "pmp") {
            scheme = IsolationScheme::Pmp;
        } else {
            error = "unknown scheme '" + val + "'";
            return false;
        }
        return true;
    }
    if (key == "sites") {
        faultSites.clear();
        std::istringstream ss(val);
        std::string site;
        while (std::getline(ss, site, ','))
            if (!site.empty())
                faultSites.push_back(site);
        return true;
    }
    error = "unknown config key '" + key + "'";
    return false;
}

RunOutcome
runCorePath(const ModelConfig &cfg, const std::vector<Decision> *forced,
            StateSet *visited)
{
    panic_if(cfg.harts < 2, "core scenario wants >= 2 harts");
    panic_if(cfg.domains < 1, "core scenario wants >= 1 domain");
    RunOutcome out;

    // Bare harts, PMPTW cache off: the per-hart digest captures the
    // complete modelled hart state (see the header comment — this is
    // the dedup-soundness requirement, not an optimization).
    MachineParams mp = rocketParams();
    mp.pmptwEntries = 0;
    SmpParams sp;
    sp.harts = cfg.harts;
    sp.schedSeed = 1;
    SmpSystem smp(mp, sp);
    MonitorConfig mc;
    mc.scheme = cfg.scheme;
    SecureMonitor monitor(smp, mc);
    for (unsigned h = 0; h < cfg.harts; ++h) {
        smp.hart(h).setPriv(PrivMode::Supervisor);
        smp.hart(h).setBare();
    }

    // ---- deterministic setup, outside the decision space ----------
    FaultInjector &inj = FaultInjector::instance();
    inj.disable();
    const uint64_t gmsBytes = napotPages(cfg.pages) * kPageSize;
    std::vector<DomainId> dom(cfg.domains + 1, 0);
    for (unsigned i = 1; i <= cfg.domains; ++i) {
        dom[i] = monitor.createDomain();
        const MonitorResult r = monitor.addGms(
            dom[i],
            {regionOf(i), gmsBytes, Perm::rw(), GmsLabel::Fast});
        panic_if(!r.ok, "model setup addGms failed: %s",
                 r.error.c_str());
    }
    if (cfg.mutateSkipFenceNth != 0)
        monitor.testSkipFenceNth(cfg.mutateSkipFenceNth);

    StaleChecker checker(smp, monitor);
    for (unsigned h = 0; h < cfg.harts; ++h) {
        checker.addWatch({h, regionOf(1), regionOf(1),
                          AccessType::Store, true});
        checker.addWatch({h, regionOf(1), regionOf(1),
                          AccessType::Load, true});
        if (cfg.domains >= 2) {
            checker.addWatch({h, regionOf(cfg.domains),
                              regionOf(cfg.domains), AccessType::Load,
                              true});
        }
    }

    PathController ctl;
    ctl.forced = forced;
    ctl.depthLimit = cfg.depthLimit;
    ctl.faultBudget = cfg.faultBranch ? cfg.maxFaults : 0;
    ctl.injectBudget = cfg.maxInjects;

    VerifyHook hook(smp, monitor, checker, ctl);
    smp.setInterleaveHook(&hook);

    const std::vector<std::string> siteList = cfg.effectiveSites();
    const std::set<std::string> branchSites(siteList.begin(),
                                            siteList.end());
    InjectorGuard injectorGuard;
    bool faultFiredThisOp = false;
    inj.enable(1);
    inj.setDecisionController([&](const char *site) {
        if (ctl.faultsFired >= ctl.faultBudget)
            return false;
        if (branchSites.find(site) == branchSites.end())
            return false;
        if (ctl.choose(DecisionKind::Fault, kBinaryAlts, site) != 1)
            return false;
        ++ctl.faultsFired;
        faultFiredThisOp = true;
        return true;
    });

    // ---- the interleaved script, driven through pickHart ----------
    const auto script = buildCoreScript(cfg);
    std::vector<size_t> pc(cfg.harts, 0);

    std::vector<unsigned> alts;
    smp.setSchedHook([&](unsigned) -> unsigned {
        return ctl.choose(DecisionKind::Sched, alts, "");
    });

    auto stateKey = [&]() {
        uint64_t key = monitor.stateDigest(true);
        for (unsigned h = 0; h < cfg.harts; ++h)
            key = fnvFold(key, monitor.hartStateDigest(h, true, false,
                                                       true));
        for (size_t p : pc)
            key = fnvFold(key, p);
        key = fnvFold(key, ctl.faultsFired);
        key = fnvFold(key, ctl.injectsDone);
        return key;
    };

    unsigned opIndex = 0;
    std::vector<uint64_t> preDigests(cfg.harts);
    auto violate = [&](const std::string &kind,
                       const std::string &desc) {
        out.violated = true;
        out.violation.kind = kind;
        out.violation.description = desc;
        out.violation.opIndex = opIndex;
        out.violation.stateDigest = stateKey();
        out.finalDigest = out.violation.stateDigest;
    };

    while (!out.violated && !ctl.truncated) {
        // Scheduling alternatives, with the sleep-set-style merge:
        // among pending harts whose next op is a state-invisible
        // Access, only the lowest id is explorable — local ops
        // commute with everything the state tracks (DESIGN.md §14).
        alts.clear();
        bool tookLocal = false;
        for (unsigned h = 0; h < cfg.harts; ++h) {
            if (pc[h] >= script[h].size())
                continue;
            if (script[h][pc[h]].local) {
                if (tookLocal) {
                    ++out.sleepMergedAlts;
                    continue;
                }
                tookLocal = true;
            }
            alts.push_back(h);
        }
        if (alts.empty())
            break;
        const unsigned hart = smp.pickHart();
        const ScriptOp &op = script[hart][pc[hart]++];
        ++opIndex;
        ++out.opsExecuted;
        smp.setCurrentHart(hart);
        faultFiredThisOp = false;

        const bool monitorOp = op.kind != OpKind::Access;
        if (monitorOp) {
            for (unsigned h = 0; h < cfg.harts; ++h)
                preDigests[h] =
                    monitor.hartStateDigest(h, true, false, true);
        }

        MonitorResult r;
        switch (op.kind) {
          case OpKind::Switch:
            r = monitor.switchTo(dom[op.dom]);
            break;
          case OpKind::SetPerm:
            r = monitor.setPerm(dom[op.dom], op.addr, op.perm);
            break;
          case OpKind::AddGms:
            r = monitor.addGms(dom[op.dom],
                               {op.addr, op.size, op.perm, op.label});
            break;
          case OpKind::RemoveGms:
            r = monitor.removeGms(dom[op.dom], op.addr);
            break;
          case OpKind::SetLabel:
            r = monitor.setLabel(dom[op.dom], op.addr, op.label);
            break;
          case OpKind::Share:
            r = monitor.shareGms(dom[op.dom], op.addr, dom[op.peer],
                                 op.perm);
            break;
          case OpKind::Access:
            // Outcome deliberately unjudged: fail-closed denials are
            // legal at any point; stale *grants* are the checker's
            // job, judged against its canonical oracle.
            smp.hart(hart).access(op.addr, op.type);
            break;
        }

        const std::string where = "h" + std::to_string(hart) + ":" +
                                  op.name + " (op #" +
                                  std::to_string(opIndex) + ")";

        // ---- per-state checks -------------------------------------
        if (!hook.violation().empty()) {
            violate("nested_call", hook.violation() + " during " + where);
            break;
        }
        if (hook.openWindows() != 0) {
            violate("unclosed_window",
                    "shootdown window still open after " + where);
            break;
        }
        if (monitorOp && !r.ok) {
            for (unsigned h = 0; h < cfg.harts; ++h) {
                const uint64_t now =
                    monitor.hartStateDigest(h, true, false, true);
                if (now != preDigests[h]) {
                    violate("rollback_divergence",
                            "failed call (" + std::string(toString(r.code)) +
                                ") left hart " + std::to_string(h) +
                                " digest changed after " + where);
                    break;
                }
            }
            if (out.violated)
                break;
        }
        if (monitorOp && r.ok) {
            if (faultFiredThisOp) {
                violate("fault_swallowed",
                        "an injected fault fired but the call "
                        "committed ok after " +
                            where);
                break;
            }
            const uint64_t ref =
                monitor.hartStateDigest(0, true, false, false);
            for (unsigned h = 1; h < cfg.harts; ++h) {
                if (monitor.hartStateDigest(h, true, false, false) !=
                    ref) {
                    violate("convergence_divergence",
                            "hart " + std::to_string(h) +
                                " digest disagrees with hart 0 after "
                                "committed " +
                                where);
                    break;
                }
            }
            if (out.violated)
                break;
        }
        if (checker.failed()) {
            violate("stale_checker", checker.failure());
            break;
        }
        if (!checker.checkQuiescent()) {
            violate("stale_checker", checker.failure());
            break;
        }
        const std::string inv = checkIsolationInvariants(monitor);
        if (!inv.empty()) {
            violate("invariant", inv + " after " + where);
            break;
        }

        // ---- explicit-state dedup (new territory only) ------------
        if (ctl.pastPrefix() && !ctl.divergence) {
            ++out.newTransitions;
            if (visited != nullptr &&
                !visited->insert(stateKey()).second) {
                out.deduped = true;
                break;
            }
        }
    }

    out.decisions = std::move(ctl.made);
    out.truncated = ctl.truncated;
    out.divergence = ctl.divergence;
    out.divergenceWhy = ctl.divergenceWhy;
    if (!out.violated)
        out.finalDigest = stateKey();
    smp.setInterleaveHook(nullptr);
    smp.setSchedHook(nullptr);
    return out;
}

RunOutcome
runMigratePath(const ModelConfig &cfg,
               const std::vector<Decision> *forced)
{
    RunOutcome out;

    MachineParams mp = rocketParams();
    mp.pmptwEntries = 0;
    SmpParams sp;
    sp.harts = 1;
    SmpSystem srcSys(mp, sp), dstSys(mp, sp);
    MonitorConfig mc;
    mc.scheme = cfg.scheme;
    SecureMonitor src(srcSys, mc), dst(dstSys, mc);
    for (SmpSystem *sys : {&srcSys, &dstSys}) {
        sys->hart(0).setPriv(PrivMode::Supervisor);
        sys->hart(0).setBare();
    }

    FaultInjector &inj = FaultInjector::instance();
    inj.disable();

    const uint64_t gmsBytes = napotPages(cfg.pages) * kPageSize;
    const DomainId d = src.createDomain();
    MonitorResult r = src.addGms(
        d, {regionOf(1), gmsBytes, Perm::rw(), GmsLabel::Fast});
    panic_if(!r.ok, "migrate setup addGms failed: %s", r.error.c_str());
    // A recognizable memory image so checkpoint verification bites.
    for (Addr a = regionOf(1); a < regionOf(1) + gmsBytes; a += 512)
        srcSys.mem().write64(a, a ^ 0x5a5a5a5a5a5a5a5aULL);

    CrossSystemOracle oracle(src, dst);
    MigrateConfig mcfg;
    mcfg.maxRetries = 2;
    mcfg.backoffCycles = 50;
    mcfg.frameBytes = 16384;
    MigrationEngine engine(src, dst, mcfg, "migrate_verify");
    engine.setOracle(&oracle);

    PathController ctl;
    ctl.forced = forced;
    ctl.depthLimit = cfg.depthLimit;
    ctl.faultBudget = cfg.faultBranch ? cfg.maxFaults : 0;
    ctl.injectBudget = 0;

    const std::vector<std::string> siteList = cfg.effectiveSites();
    const std::set<std::string> branchSites(siteList.begin(),
                                            siteList.end());
    InjectorGuard injectorGuard;
    inj.enable(1);
    inj.setDecisionController([&](const char *site) {
        if (ctl.faultsFired >= ctl.faultBudget)
            return false;
        if (branchSites.find(site) == branchSites.end())
            return false;
        if (ctl.choose(DecisionKind::Fault, kBinaryAlts, site) != 1)
            return false;
        ++ctl.faultsFired;
        return true;
    });

    const MigrateResult res = engine.migrate(d, /*nonce=*/1);
    ++out.opsExecuted;

    auto violate = [&](const std::string &kind,
                       const std::string &desc) {
        out.violated = true;
        out.violation.kind = kind;
        out.violation.description = desc;
        out.violation.opIndex = 0;
        uint64_t key = fnvFold(src.stateDigest(true),
                               dst.stateDigest(true));
        key = fnvFold(key, ctl.faultsFired);
        out.violation.stateDigest = key;
    };

    if (oracle.failed()) {
        violate("dual_grant", oracle.failure());
    } else if (res.ok) {
        if (src.domainGrantable(d)) {
            violate("commit_state",
                    "committed migration left the source granting");
        } else if (!dst.domainGrantable(res.destId)) {
            violate("commit_state",
                    "committed migration left the destination not "
                    "granting");
        }
    } else if (res.committed || res.stranded) {
        if (src.domainGrantable(d) ||
            (res.destId != 0 && dst.domainGrantable(res.destId))) {
            violate("stranded_grant",
                    "stranded migration has a live grant (phase " +
                        std::string(toString(res.failedPhase)) + ")");
        }
    } else {
        if (res.sourcePostDigest != res.sourcePreDigest) {
            violate("abort_digest",
                    "aborted migration (phase " +
                        std::string(toString(res.failedPhase)) +
                        ") did not restore the source digest");
        } else if (!src.domainGrantable(d)) {
            violate("abort_grantable",
                    "aborted migration left the domain not grantable "
                    "on the source (phase " +
                        std::string(toString(res.failedPhase)) + ")");
        }
    }

    out.decisions = std::move(ctl.made);
    out.truncated = ctl.truncated;
    out.divergence = ctl.divergence;
    out.divergenceWhy = ctl.divergenceWhy;
    out.newTransitions = ctl.pastPrefix()
                             ? out.decisions.size() -
                                   (forced ? forced->size() : 0)
                             : 0;
    uint64_t key =
        fnvFold(src.stateDigest(true), dst.stateDigest(true));
    out.finalDigest = fnvFold(key, ctl.faultsFired);
    if (out.violated)
        out.violation.stateDigest = out.finalDigest;
    return out;
}

RunOutcome
runRasPath(const ModelConfig &cfg, const std::vector<Decision> *forced)
{
    panic_if(cfg.domains < 1, "ras scenario wants >= 1 domain");
    RunOutcome out;

    MachineParams mp = rocketParams();
    mp.pmptwEntries = 0;
    SmpParams sp;
    sp.harts = cfg.harts > 0 ? cfg.harts : 1;
    sp.schedSeed = 1;
    SmpSystem smp(mp, sp);
    MonitorConfig mc;
    mc.scheme = cfg.scheme;
    SecureMonitor monitor(smp, mc);
    for (unsigned h = 0; h < sp.harts; ++h) {
        smp.hart(h).setPriv(PrivMode::Supervisor);
        smp.hart(h).setBare();
    }

    FaultInjector &inj = FaultInjector::instance();
    inj.disable();
    const uint64_t gmsBytes = napotPages(cfg.pages) * kPageSize;
    std::vector<DomainId> dom(cfg.domains + 1, 0);
    for (unsigned i = 1; i <= cfg.domains; ++i) {
        dom[i] = monitor.createDomain();
        // Slow label: slow GMSs live in the PMP Table under both the
        // pmpt and hpmp schemes, so the pmpte-frame blast-radius class
        // exists everywhere tables exist.
        const MonitorResult r = monitor.addGms(
            dom[i],
            {regionOf(i), gmsBytes, Perm::rw(), GmsLabel::Slow});
        panic_if(!r.ok, "ras setup addGms failed: %s", r.error.c_str());
    }

    PathController ctl;
    ctl.forced = forced;
    ctl.depthLimit = cfg.depthLimit;
    ctl.faultBudget = cfg.faultBranch ? cfg.maxFaults : 0;
    ctl.injectBudget = 0;

    const std::vector<std::string> siteList = cfg.effectiveSites();
    const std::set<std::string> branchSites(siteList.begin(),
                                            siteList.end());
    InjectorGuard injectorGuard;
    inj.enable(1);
    inj.setDecisionController([&](const char *site) {
        if (ctl.faultsFired >= ctl.faultBudget)
            return false;
        if (branchSites.find(site) == branchSites.end())
            return false;
        if (ctl.choose(DecisionKind::Fault, kBinaryAlts, site) != 1)
            return false;
        ++ctl.faultsFired;
        return true;
    });

    auto stateKey = [&]() {
        uint64_t key = monitor.stateDigest(true);
        key = fnvFold(key, monitor.quarantinedPages());
        key = fnvFold(key, monitor.rasFatal() ? 1 : 0);
        key = fnvFold(key, ctl.faultsFired);
        return key;
    };

    unsigned opIndex = 0;
    auto violate = [&](const std::string &kind,
                       const std::string &desc) {
        out.violated = true;
        out.violation.kind = kind;
        out.violation.description = desc;
        out.violation.opIndex = opIndex;
        out.violation.stateDigest = stateKey();
        out.finalDigest = out.violation.stateDigest;
    };

    // Two poison/report rounds so the post-containment state (healed
    // table, contained victim, degraded host) is itself poked again.
    bool rasFatalExpected = false;
    for (unsigned round = 0; round < 2 && !out.violated && !ctl.truncated;
         ++round) {
        ++opIndex;
        const std::string rtag = "#r" + std::to_string(round);

        // The placement decision: which blast-radius class this
        // round's poison lands in. Alternatives derive from the live
        // state (a contained victim removes its data-page class).
        std::vector<unsigned> live, tabled;
        for (unsigned i = 1; i <= cfg.domains; ++i) {
            if (!monitor.domainExists(dom[i]))
                continue;
            live.push_back(i);
            const PmpTable *t = monitor.tablePeek(dom[i]);
            if (t != nullptr && !t->tablePages().empty())
                tabled.push_back(i);
        }
        std::vector<unsigned> classes;
        if (!live.empty())
            classes.push_back(0); // enclave data page
        if (!tabled.empty())
            classes.push_back(1); // pmpte frame of a live table
        classes.push_back(2);     // unowned free frame
        classes.push_back(3);     // monitor-private page
        const unsigned cls = ctl.choose(DecisionKind::Inject, classes,
                                        "ras_place" + rtag);

        Addr target = 0;
        unsigned victim = 0;
        Addr oldRoot = 0;
        MonitorValue<AttestationReport> preAttest;
        switch (cls) {
          case 0: {
            victim = ctl.choose(DecisionKind::Inject, live,
                                "ras_victim" + rtag);
            target = regionOf(victim) + 0x40;
            smp.mem().poisonLine(target);
            // Consume through a real access first when the victim can
            // run: the poisoned line must surface as a MachineCheck
            // naming the line, never as data.
            if (!monitor.rasFatal()) {
                const MonitorResult sw = monitor.switchTo(dom[victim]);
                if (sw.ok) {
                    const AccessOutcome acc =
                        smp.hart(0).access(target, AccessType::Load);
                    if (acc.fault != Fault::MachineCheck) {
                        violate("machine_check",
                                "load of a poisoned line returned " +
                                    std::string(toString(acc.fault)) +
                                    ", not MachineCheck");
                    } else if ((acc.poisonAddr & ~Addr(63)) !=
                               (target & ~Addr(63))) {
                        violate("machine_check",
                                "machine check blamed the wrong line");
                    }
                }
            }
            break;
          }
          case 1: {
            victim = ctl.choose(DecisionKind::Inject, tabled,
                                "ras_victim" + rtag);
            const std::vector<Addr> &frames =
                monitor.tablePeek(dom[victim])->tablePages();
            std::vector<unsigned> frameAlts{0};
            if (frames.size() > 1)
                frameAlts.push_back(unsigned(frames.size() - 1));
            const unsigned fi = ctl.choose(
                DecisionKind::Inject, frameAlts, "ras_frame" + rtag);
            target = frames[fi] + 0x80;
            oldRoot = monitor.tablePeek(dom[victim])->rootPa();
            preAttest = monitor.attestDomain(dom[victim], 7);
            smp.mem().poisonLine(target);
            break;
          }
          case 2:
            // The same unowned frame every round, so a round-2 repeat
            // exercises cross-round AlreadyQuarantined idempotency.
            target = regionOf(cfg.domains + 1) + 0x200;
            smp.mem().poisonLine(target);
            break;
          default: {
            // Highest non-table, non-quarantined monitor-private page
            // (pmpte frames bump-allocate from the low end).
            Addr page = monitor.config().monitorBase +
                        monitor.config().monitorSize;
            while (page > monitor.config().monitorBase) {
                page -= kPageSize;
                if (monitor.pageQuarantined(page))
                    continue;
                bool isTable = false;
                for (unsigned i : live) {
                    const PmpTable *t = monitor.tablePeek(dom[i]);
                    if (t != nullptr && t->isTablePage(page)) {
                        isTable = true;
                        break;
                    }
                }
                if (!isTable)
                    break;
            }
            target = page + 0x100;
            smp.mem().poisonLine(target);
            break;
          }
        }
        if (out.violated)
            break;

        const Addr targetPage = target & ~Addr(kPageSize - 1);
        const bool fatalBefore = monitor.rasFatal();
        const bool quarBefore = monitor.pageQuarantined(targetPage);
        const uint64_t preDigest = monitor.stateDigest(true);

        ++out.opsExecuted;
        const MonitorValue<RasOutcome> mcv =
            monitor.handleMachineCheck(target);

        const std::string where =
            "ras class " + std::to_string(cls) + " (op #" +
            std::to_string(opIndex) + ")";
        if (quarBefore) {
            // Repeat report of a retired frame: an ok no-op always,
            // even after the host degraded.
            if (!mcv.ok || mcv.value != RasOutcome::AlreadyQuarantined) {
                violate("quarantine",
                        "repeat report of a retired frame was not an "
                        "ok no-op after " + where);
            } else if (monitor.stateDigest(true) != preDigest) {
                violate("quarantine",
                        "no-op repeat report changed the digest after " +
                            where);
            }
        } else if (fatalBefore) {
            // New reports after the whole-host degrade: typed RasFatal
            // denial, nothing mutated.
            if (mcv.ok || mcv.code != MonitorError::RasFatal) {
                violate("ras_fatal",
                        "report after host degrade was not a typed "
                        "RasFatal denial after " + where);
            } else if (monitor.stateDigest(true) != preDigest) {
                violate("ras_rollback",
                        "denied report changed the digest after " +
                            where);
            }
        } else if (!mcv.ok) {
            // An injected fault aborted containment: bit-identical
            // rollback, victim intact, frame not retired.
            if (monitor.stateDigest(true) != preDigest) {
                violate("ras_rollback",
                        "failed containment (" +
                            std::string(toString(mcv.code)) +
                            ") left the digest changed after " + where);
            } else if (monitor.pageQuarantined(targetPage)) {
                violate("ras_rollback",
                        "failed containment still retired the frame "
                        "after " + where);
            } else if ((cls == 0 || cls == 1) &&
                       !monitor.domainExists(dom[victim])) {
                violate("ras_rollback",
                        "failed containment destroyed the victim "
                        "anyway after " + where);
            } else if (cls == 1 &&
                       monitor.tablePeek(dom[victim])->rootPa() !=
                           oldRoot) {
                violate("ras_rollback",
                        "failed heal re-pointed the table root after " +
                            where);
            }
        } else {
            switch (cls) {
              case 0:
                if (mcv.value != RasOutcome::ContainedDomain) {
                    violate("blast_radius",
                            "data-page poison resolved as " +
                                std::string(toString(mcv.value)) +
                                " after " + where);
                } else if (monitor.domainExists(dom[victim])) {
                    violate("blast_radius",
                            "victim survived its own containment "
                            "after " + where);
                } else if (!monitor.pageQuarantined(targetPage)) {
                    violate("quarantine",
                            "contained frame was not retired after " +
                                where);
                }
                break;
              case 1:
                if (mcv.value == RasOutcome::HostFatal) {
                    // Legal escalation: out of fresh table frames.
                    rasFatalExpected = true;
                    break;
                }
                if (mcv.value != RasOutcome::HealedTable) {
                    violate("heal",
                            "pmpte poison resolved as " +
                                std::string(toString(mcv.value)) +
                                " after " + where);
                    break;
                }
                if (!monitor.domainExists(dom[victim]) ||
                    monitor.tablePeek(dom[victim]) == nullptr) {
                    violate("heal",
                            "self-heal lost the domain after " + where);
                } else if (monitor.tablePeek(dom[victim])->rootPa() ==
                           oldRoot) {
                    violate("heal",
                            "healed table still points at the old "
                            "root after " + where);
                } else if (!monitor.pageQuarantined(targetPage)) {
                    violate("quarantine",
                            "healed frame was not retired after " +
                                where);
                } else {
                    const MonitorValue<AttestationReport> post =
                        monitor.attestDomain(dom[victim], 7);
                    if (!preAttest.ok || !post.ok ||
                        post.value.measurement !=
                            preAttest.value.measurement) {
                        violate("heal",
                                "self-heal changed the measurement "
                                "after " + where);
                    } else if (!monitor.attestor().verify(post.value,
                                                          7)) {
                        violate("heal",
                                "post-heal report does not verify "
                                "after " + where);
                    }
                }
                break;
              case 2:
                if (mcv.value != RasOutcome::QuarantinedFree) {
                    violate("blast_radius",
                            "free-frame poison resolved as " +
                                std::string(toString(mcv.value)) +
                                " after " + where);
                } else if (!monitor.pageQuarantined(targetPage)) {
                    violate("quarantine",
                            "free frame was not retired after " +
                                where);
                } else {
                    // Immediate idempotency probe.
                    const uint64_t qd = monitor.stateDigest(true);
                    const MonitorValue<RasOutcome> again =
                        monitor.handleMachineCheck(target);
                    if (!again.ok ||
                        again.value != RasOutcome::AlreadyQuarantined) {
                        violate("quarantine",
                                "re-report of a retired frame was not "
                                "an ok no-op after " + where);
                    } else if (monitor.stateDigest(true) != qd) {
                        violate("quarantine",
                                "no-op re-report changed the digest "
                                "after " + where);
                    }
                }
                break;
              default:
                if (mcv.value != RasOutcome::HostFatal) {
                    violate("ras_fatal",
                            "monitor-page poison resolved as " +
                                std::string(toString(mcv.value)) +
                                " after " + where);
                    break;
                }
                rasFatalExpected = true;
                if (!monitor.rasFatal()) {
                    violate("ras_fatal",
                            "HostFatal did not latch rasFatal after " +
                                where);
                } else {
                    const MonitorResult probe =
                        monitor.switchTo(dom[1]);
                    if (probe.ok ||
                        probe.code != MonitorError::RasFatal) {
                        violate("ras_fatal",
                                "mutating call after host degrade was "
                                "not a typed RasFatal denial after " +
                                    where);
                    }
                }
                break;
            }
            // Blast-radius audit: every domain live before the report
            // survives, except a data-page containment's own victim.
            if (!out.violated) {
                for (unsigned i : live) {
                    if (cls == 0 && i == victim)
                        continue;
                    if (!monitor.domainExists(dom[i])) {
                        violate("blast_radius",
                                "containment killed bystander domain "
                                "index " + std::to_string(i) +
                                    " after " + where);
                        break;
                    }
                }
            }
        }
        if (!out.violated) {
            const std::string inv = checkIsolationInvariants(monitor);
            if (!inv.empty())
                violate("invariant", inv + " after " + where);
        }
    }

    if (!out.violated && monitor.rasFatal() && !rasFatalExpected) {
        violate("ras_fatal",
                "host degraded without a monitor-region poison event");
    }

    out.decisions = std::move(ctl.made);
    out.truncated = ctl.truncated;
    out.divergence = ctl.divergence;
    out.divergenceWhy = ctl.divergenceWhy;
    out.newTransitions = ctl.pastPrefix()
                             ? out.decisions.size() -
                                   (forced ? forced->size() : 0)
                             : 0;
    if (!out.violated)
        out.finalDigest = stateKey();
    return out;
}

RunOutcome
runPath(const ModelConfig &cfg, const std::vector<Decision> *forced,
        StateSet *visited)
{
    if (cfg.script == "migrate")
        return runMigratePath(cfg, forced);
    if (cfg.script == "ras")
        return runRasPath(cfg, forced);
    return runCorePath(cfg, forced, visited);
}

} // namespace hpmp::verify
