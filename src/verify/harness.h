/**
 * @file
 * Bounded-model execution harness (one path = one run).
 *
 * The model checker is *stateless-search* style (CHESS/VeriSoft): the
 * simulated system (SmpSystem + SecureMonitor + StaleChecker) is too
 * heavyweight to snapshot per state, so the enumerator explores the
 * decision tree by re-executing the whole bounded scenario from its
 * initial state along each path. runCorePath()/runMigratePath() build
 * a fresh system, install the three decision taps —
 *
 *  - SmpSystem::setSchedHook        (which hart runs its next op),
 *  - FaultInjector decision controller (FAULT_POINT fire/no-fire),
 *  - an InterleaveHook that may drive a victim-hart nested call at
 *    Posted/Delivered steps (must bounce LockContended),
 *
 * — replay the forced decision prefix, continue with defaults while
 * recording every further branch point, and check after *every* script
 * op:
 *
 *  1. isolation invariants (monitor/invariants.h);
 *  2. StaleChecker: no post-ack stale grant, strict quiescent sweep;
 *  3. digest-exact rollback of failed calls and cross-hart digest
 *     convergence of successful ones;
 *  4. every opened shootdown window closed (bounded-retry termination).
 *
 * The model configuration deliberately runs harts bare with the PMPTW
 * cache disabled, so a hart's complete modelled state is its HPMP
 * register file — exactly what hartStateDigest hashes. That makes the
 * visited-state dedup sound (two equal keys really are the same
 * state) and makes script Access ops state-invisible probes, which is
 * what the sleep-set-style reduction in the enumerator relies on
 * (DESIGN.md §14).
 */

#ifndef HPMP_VERIFY_HARNESS_H
#define HPMP_VERIFY_HARNESS_H

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "hpmp/isolation.h"
#include "verify/decision.h"

namespace hpmp::verify
{

/** Bounded-configuration knobs (the CLI mirrors these 1:1). */
struct ModelConfig
{
    unsigned harts = 2;
    unsigned domains = 2; //!< enclave domains beyond the host
    /** 4 KiB pages per enclave GMS (kept NAPOT internally). */
    unsigned pages = 16;
    IsolationScheme scheme = IsolationScheme::Hpmp;
    /** Scenario: "core" (monitor-call script) | "migrate" (two-host
     *  two-phase handoff, fault branching only) | "ras" (poison
     *  placement across the blast-radius classes, fault branching on
     *  the containment paths). */
    std::string script = "core";
    /** Max recorded decisions per path; deeper paths are truncated
     *  (counted, never silently dropped). */
    unsigned depthLimit = 4096;
    bool faultBranch = true; //!< branch on FAULT_POINT sites at all
    unsigned maxFaults = 1;  //!< fault fires per path (branch budget)
    unsigned maxInjects = 1; //!< nested-call probes per path
    /** Branchable fault sites; empty = the script's default set. */
    std::vector<std::string> faultSites;
    /** Mutation: sabotage the Nth shootdown (skip sibling fences).
     *  0 = off. Used by the CI smoke test that must find a bug. */
    uint64_t mutateSkipFenceNth = 0;

    /** "key=value" lines for trace headers. */
    std::vector<std::string> configLines() const;
    /** Apply one "key=value" line (parsing a trace). @return false on
     *  an unknown key or bad value. */
    bool applyConfigLine(const std::string &line, std::string &error);
    /** The effective branchable-site set for this config. */
    std::vector<std::string> effectiveSites() const;
};

/** Outcome of executing one decision path. */
struct RunOutcome
{
    std::vector<Decision> decisions; //!< all branch points, in order
    bool violated = false;
    Violation violation;
    bool truncated = false;  //!< hit depthLimit; not exhaustive
    bool deduped = false;    //!< stopped early on a visited state
    bool divergence = false; //!< forced prefix failed to align
    std::string divergenceWhy;
    uint64_t opsExecuted = 0;    //!< script ops run this path
    uint64_t newTransitions = 0; //!< ops executed past the forced prefix
    uint64_t sleepMergedAlts = 0; //!< sched alternatives merged (POR)
    uint64_t finalDigest = 0;     //!< state key at end (or violation)
};

/** Visited-state store shared across a search. */
using StateSet = std::unordered_set<uint64_t>;

/**
 * Execute one path of the monitor-call scenario. `forced` is the
 * decision prefix to replay (nullptr = all defaults); `visited` turns
 * on explicit-state dedup (nullptr during replay/minimization).
 */
RunOutcome runCorePath(const ModelConfig &config,
                       const std::vector<Decision> *forced,
                       StateSet *visited);

/**
 * Execute one path of the two-host live-migration scenario: a single
 * migration attempt with every migrate.* FAULT_POINT hit enumerated
 * as a binary branch. Checks the cross-system no-dual-grant oracle,
 * digest-exact abort restore, and commit/stranded grant placement.
 */
RunOutcome runMigratePath(const ModelConfig &config,
                          const std::vector<Decision> *forced);

/**
 * Execute one path of the RAS containment scenario: two poison/report
 * rounds whose placement (a victim enclave's data page, a pmpte frame
 * of a live PMP Table, an unowned free frame, a monitor-private page)
 * is enumerated as a decision, with monitor.destroy_domain /
 * monitor.heal_table FAULT_POINT hits branched to cover every failed
 * containment. Checks the blast-radius contract (only the owning
 * domain dies, self-heals keep the measurement and re-point the root,
 * monitor poison degrades exactly the whole host), digest-exact
 * rollback of failed containments, and quarantine idempotency.
 */
RunOutcome runRasPath(const ModelConfig &config,
                      const std::vector<Decision> *forced);

/** Dispatch on config.script. */
RunOutcome runPath(const ModelConfig &config,
                   const std::vector<Decision> *forced, StateSet *visited);

} // namespace hpmp::verify

#endif // HPMP_VERIFY_HARNESS_H
