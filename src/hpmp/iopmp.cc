#include "hpmp/iopmp.h"

#include "base/fault_inject.h"
#include "base/logging.h"
#include "base/trace.h"

namespace hpmp
{

IopmpUnit::IopmpUnit(PhysMem &mem, unsigned num_masters,
                     unsigned entries_per_master)
    : mem_(mem)
{
    fatal_if(num_masters == 0, "IOPMP needs at least one master");
    stats_.add("checks", &checks_);
    stats_.add("denials", &denials_);
    for (unsigned i = 0; i < num_masters; ++i) {
        masters_.push_back(
            std::make_unique<HpmpUnit>(mem, entries_per_master, 0));
        // Per-master groups: each source ID gets the full HpmpUnit
        // counter set plus its PMPTW-cache as a child group.
        const std::string prefix = "iopmp.master" + std::to_string(i);
        masterStats_.push_back(std::make_unique<StatGroup>(prefix));
        masters_.back()->registerStats(*masterStats_.back());
        masterStats_.push_back(
            std::make_unique<StatGroup>(prefix + ".pmptw_cache"));
        masters_.back()->pmptwCache().registerStats(
            *masterStats_.back());
    }
}

HpmpUnit &
IopmpUnit::master(MasterId id)
{
    panic_if(id >= masters_.size(), "unknown DMA master %u", id);
    return *masters_[id];
}

HpmpCheckResult
IopmpUnit::check(MasterId id, Addr pa, uint64_t size, AccessType type)
{
    ++checks_;
    // A glitched IOPMP lookup fails closed: the beat is denied as an
    // access fault, never silently let through.
    if (FAULT_POINT("iopmp.check")) {
        HpmpCheckResult denied;
        denied.fault = type == AccessType::Store
                           ? Fault::StoreAccessFault
                           : Fault::LoadAccessFault;
        ++denials_;
        DPRINTF(Fault, "iopmp.check injected deny master=%u pa=%#lx\n",
                id, pa);
        return denied;
    }
    HpmpCheckResult result =
        master(id).check(pa, size, type, PrivMode::User);
    if (!result.ok()) {
        ++denials_;
        DPRINTF(Hpmp, "iopmp deny master=%u pa=%#lx type=%u\n", id, pa,
                unsigned(type));
    }
    return result;
}

void
IopmpUnit::flushCaches()
{
    for (auto &m : masters_)
        m->flushCache();
}

void
IopmpUnit::registerStats(StatRegistry &registry)
{
    registry.add(&stats_);
    for (auto &g : masterStats_)
        registry.add(g.get());
}

DmaEngine::TransferResult
DmaEngine::transfer(Addr src, Addr dst, uint64_t bytes)
{
    TransferResult result;
    PhysMem &mem = iopmp_.mem();
    // A poisoned pmpte consumed by a master's table walk poisons the
    // check, not just the beat: drop the PMPTW-cache state derived
    // from the bad read before failing the transfer (fail closed).
    auto refsPoisoned = [&](const HpmpCheckResult &check) {
        for (const PmptRef &ref : check.pmptRefs) {
            if (mem.isPoisoned(ref.pa, 8)) {
                iopmp_.flushCaches();
                return true;
            }
        }
        return false;
    };
    for (uint64_t off = 0; off < bytes; off += 64) {
        const uint64_t beat = std::min<uint64_t>(64, bytes - off);
        uint64_t beatCycles = 0;
        bool beatOk = true;

        HpmpCheckResult read_check =
            iopmp_.check(id_, src + off, beat, AccessType::Load);
        result.pmptRefs += unsigned(read_check.pmptRefs.size());
        for (const PmptRef &ref : read_check.pmptRefs)
            beatCycles += hier_.access(ref.pa, false).cycles;
        if (!read_check.ok() || refsPoisoned(read_check)) {
            result.ok = false;
            result.machineCheck = read_check.ok();
            result.faultAddr = src + off;
            beatOk = false;
        }

        if (beatOk) {
            HpmpCheckResult write_check =
                iopmp_.check(id_, dst + off, beat, AccessType::Store);
            result.pmptRefs += unsigned(write_check.pmptRefs.size());
            for (const PmptRef &ref : write_check.pmptRefs)
                beatCycles += hier_.access(ref.pa, false).cycles;
            if (!write_check.ok() || refsPoisoned(write_check)) {
                result.ok = false;
                result.machineCheck = write_check.ok();
                result.faultAddr = dst + off;
                beatOk = false;
            }
        }

        // The device read consumes poison on the source line: the
        // beat fails with a machine check instead of moving corrupt
        // data into the destination domain.
        if (beatOk && mem.isPoisoned(src + off, beat)) {
            result.ok = false;
            result.machineCheck = true;
            result.faultAddr = src + off;
            beatOk = false;
        }

        if (beatOk) {
            beatCycles += hier_.access(src + off, false).cycles;
            beatCycles += hier_.access(dst + off, true).cycles;
        }

        // One bus transaction per beat: the IOPMP's table references
        // ride the same grant as the data, so check latency inflates
        // the channel-busy time other masters wait behind. A denied
        // beat still occupied the channel for its check refs.
        if (bus_ != nullptr) {
            const uint64_t wait =
                bus_->acquire(id_, now_, beatCycles);
            result.busWaitCycles += wait;
            result.cycles += wait;
            now_ += wait;
        }
        result.cycles += beatCycles;
        now_ += beatCycles;
        if (!beatOk)
            return result;
        ++result.beats;
    }
    return result;
}

} // namespace hpmp
