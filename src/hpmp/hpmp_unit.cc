#include "hpmp/hpmp_unit.h"

#include "base/fault_inject.h"
#include "base/logging.h"
#include "base/trace.h"

namespace hpmp
{

HpmpUnit::HpmpUnit(PhysMem &mem, unsigned num_entries,
                   unsigned pmptw_entries)
    : mem_(mem),
      regs_(num_entries),
      pmptwCache_(pmptw_entries)
{
}

void
LayoutImage::segment(unsigned idx, Addr base, uint64_t size, Perm perm)
{
    addr.at(idx) = PmpUnit::encodeNapot(base, size);
    cfg.at(idx) = PmpCfg::make(perm, PmpAddrMode::Napot);
}

void
LayoutImage::table(unsigned idx, Addr base, uint64_t size, Addr table_root,
                   unsigned levels)
{
    fatal_if(idx + 1 >= entries(),
             "the last HPMP entry cannot be in table mode (no successor "
             "to hold the table base)");
    fatal_if(size > pmpt_geom::coverage(levels),
             "region %#lx larger than table coverage %#lx",
             size, pmpt_geom::coverage(levels));
    addr.at(idx) = PmpUnit::encodeNapot(base, size);
    cfg.at(idx) = PmpCfg::make(Perm::none(), PmpAddrMode::Napot,
                               /*lock=*/false, /*t=*/true);
    cfg.at(idx + 1) = PmpCfg::make(Perm::none(), PmpAddrMode::Off);
    addr.at(idx + 1) = PmptBaseReg::make(table_root, levels).raw;
}

unsigned
HpmpUnit::applyImage(const LayoutImage &img)
{
    fatal_if(img.entries() != regs_.numEntries(),
             "layout image has %u entries, unit has %u", img.entries(),
             regs_.numEntries());

    // Pass 1: fire the per-entry programming fault sites for every
    // entry that will change, before the first CSR write — an injected
    // fault must never leave a half-applied image (the transactional
    // fail-before-mutation contract).
    for (unsigned i = 0; i < img.entries(); ++i) {
        if (img.addr[i] == regs_.addr(i) && img.cfg[i] == regs_.cfg(i).raw)
            continue;
        const PmpCfg want{img.cfg[i]};
        if (want.reservedT() ||
            (want.a() == PmpAddrMode::Off && img.addr[i] != 0)) {
            // Table head or the successor base register it consumes.
            if (FAULT_POINT("hpmp.program_table"))
                throw InjectedFault{"hpmp.program_table"};
        } else if (want.a() == PmpAddrMode::Off) {
            if (FAULT_POINT("hpmp.disable"))
                throw InjectedFault{"hpmp.disable"};
        } else {
            if (FAULT_POINT("hpmp.program_segment"))
                throw InjectedFault{"hpmp.program_segment"};
        }
    }

    unsigned writes = 0;
    for (unsigned i = 0; i < img.entries(); ++i) {
        if (img.addr[i] != regs_.addr(i)) {
            regs_.setAddr(i, img.addr[i]);
            ++writes;
        }
        if (img.cfg[i] != regs_.cfg(i).raw) {
            regs_.setCfg(i, img.cfg[i]);
            ++writes;
        }
    }
    if (writes > 0) {
        DPRINTF(Hpmp, "applyImage: %u CSR writes\n", writes);
        csrWrites_ += writes;
        pmptwCache_.flush();
    }
    return writes;
}

unsigned
HpmpUnit::syncRegsFrom(const HpmpUnit &src)
{
    LayoutImage img(regs_.numEntries());
    fatal_if(src.regs_.numEntries() != regs_.numEntries(),
             "syncRegsFrom across differently sized register files");
    for (unsigned i = 0; i < img.entries(); ++i) {
        img.addr[i] = src.regs_.addr(i);
        img.cfg[i] = src.regs_.cfg(i).raw;
    }
    return applyImage(img);
}

void
HpmpUnit::programSegment(unsigned idx, Addr base, uint64_t size, Perm perm)
{
    // All programming sites fire before the first CSR write: a fault
    // mid-sequence would leave a half-programmed entry, which is
    // exactly the state the monitor's transactions must never expose.
    if (FAULT_POINT("hpmp.program_segment"))
        throw InjectedFault{"hpmp.program_segment"};
    DPRINTF(Hpmp, "programSegment idx=%u base=%#lx size=%#lx perm=%c%c%c\n",
            idx, base, size, perm.r ? 'r' : '-', perm.w ? 'w' : '-',
            perm.x ? 'x' : '-');
    regs_.setAddr(idx, PmpUnit::encodeNapot(base, size));
    regs_.setCfg(idx, PmpCfg::make(perm, PmpAddrMode::Napot));
    csrWrites_ += 2;
    pmptwCache_.flush();
}

void
HpmpUnit::programTable(unsigned idx, Addr base, uint64_t size,
                       Addr table_root, unsigned levels)
{
    fatal_if(idx + 1 >= regs_.numEntries(),
             "the last HPMP entry cannot be in table mode (no successor "
             "to hold the table base)");
    fatal_if(size > pmpt_geom::coverage(levels),
             "region %#lx larger than table coverage %#lx",
             size, pmpt_geom::coverage(levels));
    if (FAULT_POINT("hpmp.program_table"))
        throw InjectedFault{"hpmp.program_table"};
    DPRINTF(Hpmp,
            "programTable idx=%u base=%#lx size=%#lx root=%#lx levels=%u\n",
            idx, base, size, table_root, levels);
    regs_.setAddr(idx, PmpUnit::encodeNapot(base, size));
    regs_.setCfg(idx, PmpCfg::make(Perm::none(), PmpAddrMode::Napot,
                                   /*lock=*/false, /*t=*/true));
    // The successor entry's address register holds the table base; its
    // own config must be OFF so it never matches.
    regs_.setCfg(idx + 1, PmpCfg::make(Perm::none(), PmpAddrMode::Off));
    regs_.setAddr(idx + 1, PmptBaseReg::make(table_root, levels).raw);
    csrWrites_ += 4;
    pmptwCache_.flush();
}

void
HpmpUnit::disable(unsigned idx)
{
    if (FAULT_POINT("hpmp.disable"))
        throw InjectedFault{"hpmp.disable"};
    DPRINTF(Hpmp, "disable idx=%u\n", idx);
    regs_.disable(idx);
    csrWrites_ += 2;
    pmptwCache_.flush();
}

HpmpCheckResult
HpmpUnit::check(Addr pa, uint64_t size, AccessType type, PrivMode priv)
{
    HpmpCheckResult result;

    // The monitor itself (M-mode) is unconstrained: no lock bits are
    // used in this model, matching Penglai's deployment.
    if (priv == PrivMode::Machine)
        return result;

    ++checks_;
    const int idx = regs_.findMatch(pa, size);
    result.entry = idx;
    if (idx < 0) {
        result.fault = accessFaultFor(type);
        ++denials_;
        DPRINTF(Hpmp, "deny pa=%#lx: no matching entry\n", pa);
        return result;
    }
    if (!regs_.coversAll(unsigned(idx), pa, size)) {
        result.fault = accessFaultFor(type);
        ++denials_;
        DPRINTF(Hpmp, "deny pa=%#lx: partial match at entry %d\n", pa, idx);
        return result;
    }

    const PmpCfg cfg = regs_.cfg(unsigned(idx));

    // WARL legalization: a T bit on the last entry reads as zero.
    const bool table_mode =
        cfg.reservedT() && unsigned(idx) + 1 < regs_.numEntries();

    if (!table_mode) {
        ++segmentChecks_;
        if (!cfg.perm().allows(type)) {
            result.fault = accessFaultFor(type);
            ++denials_;
        }
        return result;
    }

    result.viaTable = true;
    const auto region = regs_.region(unsigned(idx));
    panic_if(!region, "matching entry has no region");
    const uint64_t offset = pa - region->base;
    const PmptBaseReg base_reg{regs_.addr(unsigned(idx) + 1)};

    if (auto cached = pmptwCache_.lookupLeaf(base_reg.tablePa(), offset)) {
        result.viaCache = true;
        ++cacheResolved_;
        const unsigned page = unsigned(pmpt_geom::pageIndex(offset));
        // A reserved nibble bit must deny on a hit exactly as the
        // walker does on a miss.
        if (cached->reservedSet(page) || !cached->perm(page).allows(type)) {
            result.fault = accessFaultFor(type);
            ++denials_;
        }
        return result;
    }

    PmptWalkResult walk = walkPmpTable(mem_, base_reg.tablePa(),
                                       base_reg.levels(), offset);
    ++tableWalks_;
    DPRINTF(Pmpt, "walk root=%#lx offset=%#lx refs=%u valid=%d\n",
            base_reg.tablePa(), offset, unsigned(walk.refs.size()),
            int(walk.valid));
    result.pmptRefs = walk.refs;
    if (!walk.valid || !walk.perm.allows(type)) {
        result.fault = accessFaultFor(type);
        ++denials_;
        return result;
    }

    // Fill the PMPTW-Cache with the (possibly synthesized) leaf pmpte.
    if (pmptwCache_.enabled()) {
        if (walk.hugeHit) {
            pmptwCache_.fill(base_reg.tablePa(), offset,
                             LeafPmpte::uniform(walk.perm));
        } else {
            const Addr leaf_slot = walk.refs.back().pa;
            pmptwCache_.fill(base_reg.tablePa(), offset,
                             LeafPmpte{mem_.read64(leaf_slot)});
        }
    }
    return result;
}

Perm
HpmpUnit::probe(Addr pa) const
{
    const int idx = regs_.findMatch(pa, 8);
    if (idx < 0 || !regs_.coversAll(unsigned(idx), pa, 8))
        return Perm::none();

    const PmpCfg cfg = regs_.cfg(unsigned(idx));
    const bool table_mode =
        cfg.reservedT() && unsigned(idx) + 1 < regs_.numEntries();
    if (!table_mode)
        return cfg.perm();

    const auto region = regs_.region(unsigned(idx));
    panic_if(!region, "matching entry has no region");
    const PmptBaseReg base_reg{regs_.addr(unsigned(idx) + 1)};
    const PmptWalkResult walk = walkPmpTable(
        mem_, base_reg.tablePa(), base_reg.levels(), pa - region->base);
    return walk.valid ? walk.perm : Perm::none();
}

void
HpmpUnit::registerStats(StatGroup &group)
{
    group.add("csr_writes", &csrWrites_);
    group.add("checks", &checks_);
    group.add("segment_checks", &segmentChecks_);
    group.add("table_walks", &tableWalks_);
    group.add("cache_resolved", &cacheResolved_);
    group.add("denials", &denials_);
    segmentShare_ = Formula::ratio(segmentChecks_, checks_);
    cacheShare_ = Formula::ratio(cacheResolved_, checks_);
    group.add("segment_share", &segmentShare_);
    group.add("cache_share", &cacheShare_);
}

HpmpUnit::Snapshot
HpmpUnit::takeSnapshot() const
{
    return {regs_.snapshot(), csrWrites_.value()};
}

void
HpmpUnit::restoreSnapshot(const Snapshot &snap)
{
    regs_.restore(snap.regs);
    csrWrites_.reset();
    csrWrites_ += snap.csrWrites;
    pmptwCache_.flush();
}

} // namespace hpmp
