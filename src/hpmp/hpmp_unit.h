/**
 * @file
 * HPMP — Hybrid Physical Memory Protection (paper §4).
 *
 * Extends the PMP register file with the Table-mode bit (T, the
 * previously reserved bit 5 of pmpcfg). A segment-mode entry checks
 * with its inline permission, zero extra references. A table-mode
 * entry borrows the *next* entry's address register as the base of a
 * PMP Table (PmptBaseReg, Fig. 6-b) and fetches the permission from
 * DRAM through the PMPTW, optionally short-circuited by the
 * PMPTW-Cache. Matching and priority are unchanged from PMP: the
 * lowest-numbered entry covering the access decides, which is what
 * lets Penglai-HPMP treat segments as a cache of the tables (§5).
 */

#ifndef HPMP_HPMP_HPMP_UNIT_H
#define HPMP_HPMP_HPMP_UNIT_H

#include "base/stats.h"
#include "mem/phys_mem.h"
#include "pmp/pmp.h"
#include "pmpt/pmp_table.h"
#include "pmpt/pmpt_walker.h"
#include "pmpt/pmptw_cache.h"

namespace hpmp
{

/**
 * A complete desired register-file image, built entry by entry with
 * the same encodings programSegment/programTable use. The monitor
 * composes one per applyLayout and HpmpUnit::applyImage diffs it
 * against the live registers, writing only the CSRs that changed —
 * the paper's incremental reprogramming path (steady-state domain
 * switches touch ~2 CSRs instead of all 32).
 */
struct LayoutImage
{
    std::vector<uint64_t> addr;
    std::vector<uint8_t> cfg;

    /** All entries start OFF/zero, i.e. "disabled" is the default. */
    explicit LayoutImage(unsigned entries)
        : addr(entries, 0), cfg(entries, 0)
    {
    }

    unsigned entries() const { return unsigned(addr.size()); }

    /** Entry idx as a NAPOT segment region (see programSegment). */
    void segment(unsigned idx, Addr base, uint64_t size, Perm perm);

    /**
     * Entry idx as a NAPOT table-mode region; consumes entry idx+1 for
     * the PmptBaseReg exactly like programTable.
     */
    void table(unsigned idx, Addr base, uint64_t size, Addr table_root,
               unsigned levels = 2);
};

/** Outcome of one HPMP permission check. */
struct HpmpCheckResult
{
    Fault fault = Fault::None;
    int entry = -1;        //!< matching entry, -1 = none
    bool viaTable = false; //!< resolved through a PMP Table walk
    bool viaCache = false; //!< resolved by the PMPTW-Cache
    SmallVec<PmptRef, 4> pmptRefs; //!< pmpte references performed

    bool ok() const { return fault == Fault::None; }
};

/** The HPMP register file and permission checker. */
class HpmpUnit
{
  public:
    /**
     * @param mem           simulated physical memory holding the tables
     * @param num_entries   16 by default; 64 models the ePMP direction
     * @param pmptw_entries PMPTW-Cache size; 0 disables (paper default)
     */
    explicit HpmpUnit(PhysMem &mem, unsigned num_entries = 16,
                      unsigned pmptw_entries = 0);

    PmpUnit &regs() { return regs_; }
    const PmpUnit &regs() const { return regs_; }

    /**
     * Program entry idx as a NAPOT segment-mode region.
     *
     * Reprogramming (this, programTable and disable) flushes the
     * PMPTW-Cache so stale table permissions can never satisfy a later
     * check. The monitor must still sfence.vma / hfence.gvma on harts
     * whose TLBs may hold the old permission inlined (§7): the TLB's
     * physPerm copy is not visible to this unit.
     */
    void programSegment(unsigned idx, Addr base, uint64_t size, Perm perm);

    /**
     * Program entry idx as a NAPOT table-mode region whose permissions
     * come from the PMP Table rooted at table_root. Consumes entry
     * idx+1's address register for the base (Fig. 6-b); idx+1's config
     * is forced OFF. idx must not be the last entry (§4.3).
     */
    void programTable(unsigned idx, Addr base, uint64_t size,
                      Addr table_root, unsigned levels = 2);

    /** Turn entry idx off. */
    void disable(unsigned idx);

    /**
     * Diff `img` against the live registers and write only the CSRs
     * that differ. Fault-injection sites fire per *changed* entry
     * (hpmp.program_segment / hpmp.program_table / hpmp.disable by the
     * entry's desired kind) before the first write, so an injected
     * fault can never leave a half-applied image. Flushes the
     * PMPTW-Cache iff anything changed; callers that mutated table
     * *contents* must still flush explicitly.
     *
     * @return CSR writes performed (also added to csrWrites()).
     */
    unsigned applyImage(const LayoutImage &img);

    /**
     * Make this unit's registers identical to `src`'s, paying one CSR
     * write per differing register (the modelled cost of the IPI
     * handler re-programming its hart during a remote shootdown).
     * @return CSR writes performed.
     */
    unsigned syncRegsFrom(const HpmpUnit &src);

    /**
     * Check one physical access. Machine-mode accesses bypass the
     * check (entries are not locked in this model, matching the
     * monitor's own use); S/U accesses require a covering entry.
     */
    HpmpCheckResult check(Addr pa, uint64_t size, AccessType type,
                          PrivMode priv);

    /**
     * Functional S/U-view permission resolution for one page: same
     * matching and table walk as check(), but with no statistics, no
     * PMPTW-Cache access and no pmpte-reference accounting. Used for
     * TLB permission inlining and by the invariant checker.
     */
    Perm probe(Addr pa) const;

    /** Register-file + CSR-counter snapshot for monitor rollback. */
    struct Snapshot
    {
        PmpUnit::Snapshot regs;
        uint64_t csrWrites = 0;
    };

    Snapshot takeSnapshot() const;

    /** Restore a snapshot taken from this unit; flushes the PMPTW-Cache. */
    void restoreSnapshot(const Snapshot &snap);

    PmptwCache &pmptwCache() { return pmptwCache_; }

    /** Flush the PMPTW-Cache (entry/table update, domain switch). */
    void flushCache() { pmptwCache_.flush(); }

    /** Number of register (CSR) writes performed via the helpers. */
    uint64_t csrWrites() const { return csrWrites_.value(); }
    void resetCsrWrites() { csrWrites_.reset(); }

    /**
     * Register this unit's counters (checks, segment/table/cache
     * resolution split, denials, csr_writes) and derived rates into
     * `group`. The PMPTW-Cache registers separately
     * (pmptwCache().registerStats) so it can live in a child group.
     */
    void registerStats(StatGroup &group);

  private:
    PhysMem &mem_;
    PmpUnit regs_;
    PmptwCache pmptwCache_;
    Counter csrWrites_;
    Counter checks_;          //!< S/U checks performed (M-mode bypasses)
    Counter segmentChecks_;   //!< resolved by a segment entry, zero refs
    Counter tableWalks_;      //!< resolved by a full PMPTW walk
    Counter cacheResolved_;   //!< resolved by the PMPTW-Cache
    Counter denials_;         //!< checks that faulted
    Formula segmentShare_;
    Formula cacheShare_;
};

} // namespace hpmp

#endif // HPMP_HPMP_HPMP_UNIT_H
