/**
 * @file
 * The physical-memory isolation schemes compared throughout the paper.
 */

#ifndef HPMP_HPMP_ISOLATION_H
#define HPMP_HPMP_ISOLATION_H

namespace hpmp
{

/**
 * How the secure monitor programs the (H)PMP entries. The checking
 * hardware is the same HpmpUnit in all cases; the scheme is a software
 * policy:
 *  - None:     isolation disabled (Fig. 2-a).
 *  - Pmp:      segment mode only — fast but <16 regions (Fig. 2-b).
 *  - PmpTable: table mode for everything — scalable but 2 extra
 *              references per checked access (Fig. 2-c).
 *  - Hpmp:     PT pages in segment mode, data in table mode (Fig. 4).
 */
enum class IsolationScheme { None, Pmp, PmpTable, Hpmp };

inline const char *
toString(IsolationScheme scheme)
{
    switch (scheme) {
      case IsolationScheme::None: return "none";
      case IsolationScheme::Pmp: return "PMP";
      case IsolationScheme::PmpTable: return "PMPT";
      case IsolationScheme::Hpmp: return "HPMP";
    }
    return "?";
}

} // namespace hpmp

#endif // HPMP_HPMP_ISOLATION_H
