/**
 * @file
 * IOPMP-style DMA protection (paper §9: "I/O protection using
 * table-based physical memory isolation").
 *
 * Device masters do not translate through the MMU, so their accesses
 * bypass the CPU-side checker; IOPMP places the same segment/table
 * hybrid in front of the bus masters. Each master (source ID) gets
 * its own HPMP-style entry file — typically a couple of segment
 * entries for its MMIO/DMA windows, or a table-mode pair sharing the
 * domain's PMP Table for page-granular windows.
 */

#ifndef HPMP_HPMP_IOPMP_H
#define HPMP_HPMP_IOPMP_H

#include <memory>
#include <vector>

#include "hpmp/hpmp_unit.h"
#include "mem/hierarchy.h"
#include "mem/shared_bus.h"

namespace hpmp
{

/** Identifier of a bus master (DMA source ID). */
using MasterId = uint32_t;

/** Per-master hybrid protection in front of the interconnect. */
class IopmpUnit
{
  public:
    /**
     * @param num_masters devices with distinct source IDs
     * @param entries_per_master entry-file depth per device
     */
    IopmpUnit(PhysMem &mem, unsigned num_masters,
              unsigned entries_per_master = 4);

    unsigned numMasters() const { return unsigned(masters_.size()); }

    /** The backing store the masters check against (poison lookups). */
    PhysMem &mem() { return mem_; }

    /** The entry file of one master (to program windows). */
    HpmpUnit &master(MasterId id);

    /**
     * Check one DMA beat. Devices have no privilege levels: any
     * uncovered access is denied (checked as user privilege).
     */
    HpmpCheckResult check(MasterId id, Addr pa, uint64_t size,
                          AccessType type);

    /** Drop all masters' PMPTW-cache state (table update). */
    void flushCaches();

    uint64_t denials() const { return denials_.value(); }
    uint64_t checks() const { return checks_.value(); }

    /** "iopmp" aggregate group (checks, denials). */
    StatGroup &stats() { return stats_; }

    /**
     * Register the aggregate "iopmp" group plus one group per master
     * ("iopmp.master<N>" with the full HpmpUnit counter set and its
     * "iopmp.master<N>.pmptw_cache" child) with a registry.
     */
    void registerStats(StatRegistry &registry);

  private:
    PhysMem &mem_;
    std::vector<std::unique_ptr<HpmpUnit>> masters_;
    Counter checks_;  //!< DMA beats checked (all masters)
    Counter denials_;

    StatGroup stats_{"iopmp"};
    std::vector<std::unique_ptr<StatGroup>> masterStats_;
};

/**
 * A DMA engine model: performs timed transfers through the memory
 * hierarchy, each 64-byte beat checked by the IOPMP.
 */
class DmaEngine
{
  public:
    DmaEngine(IopmpUnit &iopmp, MemoryHierarchy &hier, MasterId id)
        : iopmp_(iopmp),
          hier_(hier),
          id_(id)
    {
    }

    /**
     * Attach (or detach, nullptr) a shared interconnect. When
     * attached, every beat — IOPMP table references plus the data
     * read and write — must win the bus before it runs, and the
     * arbitration stall is added to the transfer's cycles. The
     * engine keeps a local clock across transfers so masters that
     * start "at the same time" genuinely contend.
     */
    void attachBus(SharedBus *bus) { bus_ = bus; }

    /** The engine's local clock (advances with transfers). */
    uint64_t now() const { return now_; }

    /** Result of one transfer. */
    struct TransferResult
    {
        bool ok = true;
        /** The failing beat consumed poison (uncorrectable error)
         *  rather than being denied by the IOPMP. */
        bool machineCheck = false;
        Addr faultAddr = 0;
        uint64_t cycles = 0; //!< total, including bus stalls
        /** Cycles stalled waiting for the shared bus (0 unattached). */
        uint64_t busWaitCycles = 0;
        unsigned beats = 0;
        unsigned pmptRefs = 0;
    };

    /** Copy-like transfer: read src, write dst, 64 B beats. */
    TransferResult transfer(Addr src, Addr dst, uint64_t bytes);

  private:
    IopmpUnit &iopmp_;
    MemoryHierarchy &hier_;
    MasterId id_;
    SharedBus *bus_ = nullptr;
    uint64_t now_ = 0;
};

} // namespace hpmp

#endif // HPMP_HPMP_IOPMP_H
