/**
 * @file
 * Background patrol scrubber (DESIGN.md §15).
 *
 * Real memory controllers walk DRAM in the background so latent
 * uncorrectable errors surface as patrol machine checks instead of
 * waiting inside cold pages until a consumer reads them. The model
 * does the same: step() scans a bounded window of physical pages per
 * invocation (cyclically), reports any poisoned frame to a handler —
 * typically SecureMonitor::handleMachineCheck — and moves on. The
 * interleaver (chaos campaigns, fleet loops) steps it between
 * operations, so detection latency is measured in ops, not laps.
 */

#ifndef HPMP_MEM_SCRUBBER_H
#define HPMP_MEM_SCRUBBER_H

#include <functional>
#include <optional>

#include "base/stats.h"
#include "mem/phys_mem.h"

namespace hpmp
{

/** Cyclic patrol scrubber over one PhysMem. */
class Scrubber
{
  public:
    /**
     * @param base start of the scanned physical range (page-aligned)
     * @param phys_bytes size of the scanned physical range
     * @param pages_per_step frames examined per step() call
     */
    Scrubber(PhysMem &mem, Addr base, uint64_t phys_bytes,
             unsigned pages_per_step = 16);

    /** Called once per newly detected poisoned frame (page base). */
    using Handler = std::function<void(Addr)>;
    void setHandler(Handler handler) { handler_ = std::move(handler); }

    /**
     * Frames the patrol skips without reading — already-retired
     * (quarantined) pages whose poison is known and contained; without
     * this the patrol would re-report them every lap.
     */
    using SkipFn = std::function<bool(Addr)>;
    void setSkip(SkipFn skip) { skip_ = std::move(skip); }

    /**
     * Scan the next batch of frames. Returns the first poisoned page
     * base found in the batch (after invoking the handler on it), or
     * nullopt when the batch was clean. A FAULT_POINT_NAMED
     * "ras.poison_scrub" site models poison landing under the patrol
     * head mid-scan.
     */
    std::optional<Addr> step();

    /** The patrol position (next frame to be scanned). */
    Addr cursor() const { return cursor_; }

    /** Full laps completed over the physical range. */
    uint64_t laps() const { return laps_.value(); }

    uint64_t pagesScanned() const { return pagesScanned_.value(); }
    uint64_t detections() const { return detections_.value(); }

    /** "scrubber" group (pages_scanned, detections, laps). */
    StatGroup &stats() { return stats_; }
    void registerStats(StatRegistry &registry) { registry.add(&stats_); }

  private:
    PhysMem &mem_;
    const Addr base_;
    const uint64_t physBytes_;
    const unsigned pagesPerStep_;
    Addr cursor_;
    Handler handler_;
    SkipFn skip_;

    StatGroup stats_{"scrubber"};
    Counter pagesScanned_;
    Counter detections_;
    Counter laps_;
};

} // namespace hpmp

#endif // HPMP_MEM_SCRUBBER_H
