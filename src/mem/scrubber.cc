#include "mem/scrubber.h"

#include "base/fault_inject.h"
#include "base/logging.h"

namespace hpmp
{

Scrubber::Scrubber(PhysMem &mem, Addr base, uint64_t phys_bytes,
                   unsigned pages_per_step)
    : mem_(mem),
      base_(base),
      physBytes_(phys_bytes & ~uint64_t(kPageSize - 1)),
      pagesPerStep_(pages_per_step),
      cursor_(base)
{
    fatal_if(base_ % kPageSize != 0, "scrubber base must be page-aligned");
    fatal_if(physBytes_ == 0, "scrubber needs at least one page");
    fatal_if(pages_per_step == 0, "scrubber needs a nonzero batch");
}

std::optional<Addr>
Scrubber::step()
{
    std::optional<Addr> found;
    for (unsigned i = 0; i < pagesPerStep_; ++i) {
        const Addr page = cursor_;
        cursor_ += kPageSize;
        if (cursor_ >= base_ + physBytes_) {
            cursor_ = base_;
            ++laps_;
        }
        if (skip_ && skip_(page))
            continue;
        ++pagesScanned_;
        // Poison landing under the patrol head mid-scan (armed by
        // name only — the site creates the damage it then detects).
        if (FAULT_POINT_NAMED("ras.poison_scrub"))
            mem_.poisonLine(page);
        if (!mem_.isPoisoned(page, kPageSize))
            continue;
        ++detections_;
        if (!found)
            found = page;
        if (handler_)
            handler_(page);
    }
    return found;
}

} // namespace hpmp
