/**
 * @file
 * Open-page DRAM timing model.
 *
 * Approximates the FR-FCFS DDR3 configuration of Table 1 with a
 * per-bank row-buffer: a reference to the open row pays CAS only; a
 * different row pays precharge + activate + CAS. Latencies are given
 * in core cycles by the enclosing core model (1 GHz Rocket vs. 3.2 GHz
 * BOOM see different cycle counts for the same wall-clock DRAM).
 */

#ifndef HPMP_MEM_DRAM_H
#define HPMP_MEM_DRAM_H

#include <cstdint>
#include <vector>

#include "base/addr.h"
#include "base/stats.h"

namespace hpmp
{

/** Timing/geometry parameters of the DRAM model. */
struct DramParams
{
    unsigned numBanks = 8 * 4;       //!< 8 banks x quad rank (Table 1)
    unsigned rowBytes = 8192;        //!< row-buffer size per bank
    unsigned rowHitCycles = 42;      //!< CAS-limited access
    unsigned rowMissCycles = 84;     //!< precharge + activate + CAS
};

/** Per-bank open-row DRAM latency model. */
class Dram
{
  public:
    explicit Dram(const DramParams &params);

    /** Latency in core cycles for a line fill at pa. */
    unsigned access(Addr pa);

    /** Close all row buffers (cold state). */
    void precharge();

    uint64_t rowHits() const { return rowHits_.value(); }
    uint64_t rowMisses() const { return rowMisses_.value(); }
    void resetStats() { rowHits_.reset(); rowMisses_.reset(); }

    const DramParams &params() const { return params_; }

  private:
    DramParams params_;
    std::vector<int64_t> openRow_; //!< -1 = closed

    Counter rowHits_;
    Counter rowMisses_;
};

} // namespace hpmp

#endif // HPMP_MEM_DRAM_H
