/**
 * @file
 * Tag-only set-associative cache timing model.
 *
 * The data itself lives in PhysMem (functional state); this model only
 * tracks which lines are resident to attribute hit/miss latency, like
 * the timing side of gem5's classic caches. LRU replacement, write-back
 * write-allocate. Geometry follows Table 1 of the paper.
 */

#ifndef HPMP_MEM_CACHE_H
#define HPMP_MEM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/addr.h"
#include "base/stats.h"

namespace hpmp
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name;       //!< for stats output
    uint64_t sizeBytes;     //!< total capacity
    unsigned assoc;         //!< ways per set
    unsigned lineBytes = 64;
    unsigned latency;       //!< hit latency contribution, core cycles
};

/** One level of tag-only cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up (and on miss, fill) the line containing pa.
     * @return true on hit.
     */
    bool access(Addr pa, bool is_write);

    /** Look up without filling or LRU update (for tests / probes). */
    bool probe(Addr pa) const;

    /** Insert the line containing pa without counting a miss (warm-up). */
    void touch(Addr pa);

    /** Invalidate everything (cold state for TC1-style experiments). */
    void flushAll();

    /** Invalidate only the line containing pa, if resident. */
    void flushLine(Addr pa);

    /**
     * Cache-line locking (Penglai's side-channel/latency defence,
     * paper Fig. 7): pin the line containing pa so replacement never
     * evicts it. @return false if every way of its set is already
     * locked (at least one way must stay evictable).
     */
    bool lockLine(Addr pa);

    /** Release a pinned line. */
    void unlockLine(Addr pa);

    /** Number of currently locked lines. */
    uint64_t lockedLines() const { return lockedLines_; }

    unsigned latency() const { return params_.latency; }
    const CacheParams &params() const { return params_; }

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }
    void resetStats() { hits_.reset(); misses_.reset(); }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        bool locked = false; //!< never chosen as a victim
        uint64_t lru = 0;    //!< larger = more recently used
    };

    uint64_t lineNumber(Addr pa) const { return pa >> lineShift_; }
    uint64_t setIndex(Addr pa) const { return lineNumber(pa) % numSets_; }
    uint64_t tagOf(Addr pa) const { return lineNumber(pa) / numSets_; }

    CacheParams params_;
    unsigned lineShift_;
    uint64_t numSets_;
    std::vector<Line> lines_; //!< numSets_ x assoc, row-major
    uint64_t lruClock_ = 0;
    uint64_t lockedLines_ = 0;

    Counter hits_;
    Counter misses_;
};

} // namespace hpmp

#endif // HPMP_MEM_CACHE_H
