/**
 * @file
 * Tag-only set-associative cache timing model.
 *
 * The data itself lives in PhysMem (functional state); this model only
 * tracks which lines are resident to attribute hit/miss latency, like
 * the timing side of gem5's classic caches. LRU replacement, write-back
 * write-allocate. Geometry follows Table 1 of the paper.
 */

#ifndef HPMP_MEM_CACHE_H
#define HPMP_MEM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/addr.h"
#include "base/stats.h"

namespace hpmp
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name;       //!< for stats output
    uint64_t sizeBytes;     //!< total capacity
    unsigned assoc;         //!< ways per set
    unsigned lineBytes = 64;
    unsigned latency;       //!< hit latency contribution, core cycles
};

/** One level of tag-only cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up (and on miss, fill) the line containing pa.
     * @return true on hit.
     */
    bool
    access(Addr pa, bool is_write)
    {
        const uint64_t set = setIndex(pa);
        const uint64_t tag = tagOf(pa);
        Line *base = &lines_[set * params_.assoc];

        // Hit scan first; victim selection only runs on a miss,
        // keeping the (far more common) hit path tight.
        for (unsigned way = 0; way < params_.assoc; ++way) {
            Line &line = base[way];
            if (line.valid && line.tag == tag) {
                line.lru = ++lruClock_;
                line.dirty |= is_write;
                ++hits_;
                return true;
            }
        }
        fillVictim(base, tag, is_write);
        return false;
    }

    /** Look up without filling or LRU update (for tests / probes). */
    bool probe(Addr pa) const;

    /** Insert the line containing pa without counting a miss (warm-up). */
    void touch(Addr pa);

    /** Invalidate everything (cold state for TC1-style experiments). */
    void flushAll();

    /** Invalidate only the line containing pa, if resident. */
    void flushLine(Addr pa);

    /**
     * Cache-line locking (Penglai's side-channel/latency defence,
     * paper Fig. 7): pin the line containing pa so replacement never
     * evicts it. @return false if every way of its set is already
     * locked (at least one way must stay evictable).
     */
    bool lockLine(Addr pa);

    /** Release a pinned line. */
    void unlockLine(Addr pa);

    /** Number of currently locked lines. */
    uint64_t lockedLines() const { return lockedLines_; }

    unsigned latency() const { return params_.latency; }
    const CacheParams &params() const { return params_; }

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }
    void resetStats() { hits_.reset(); misses_.reset(); }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        bool locked = false; //!< never chosen as a victim
        uint64_t lru = 0;    //!< larger = more recently used
    };

    uint64_t lineNumber(Addr pa) const { return pa >> lineShift_; }

    /** Miss path of access(): pick a victim way and refill it. */
    void fillVictim(Line *base, uint64_t tag, bool is_write);

    // Set/tag split avoids a hardware division per lookup when the
    // set count is a power of two (every Table 1 geometry is).
    uint64_t
    setIndex(Addr pa) const
    {
        return setsPow2_ ? (lineNumber(pa) & setMask_)
                         : lineNumber(pa) % numSets_;
    }

    uint64_t
    tagOf(Addr pa) const
    {
        return setsPow2_ ? (lineNumber(pa) >> setShift_)
                         : lineNumber(pa) / numSets_;
    }

    CacheParams params_;
    unsigned lineShift_;
    uint64_t numSets_;
    bool setsPow2_ = false;
    unsigned setShift_ = 0;
    uint64_t setMask_ = 0;
    std::vector<Line> lines_; //!< numSets_ x assoc, row-major
    uint64_t lruClock_ = 0;
    uint64_t lockedLines_ = 0;

    Counter hits_;
    Counter misses_;
};

} // namespace hpmp

#endif // HPMP_MEM_CACHE_H
