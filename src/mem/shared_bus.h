/**
 * @file
 * A single-channel shared interconnect with first-come arbitration.
 *
 * DMA masters and the CPU-side hierarchy nominally share one memory
 * bus; modelling the channel as a scalar "busy until cycle N" is
 * enough to surface the effect the per-master IOPMP timing cares
 * about: a master's transfer cycles grow with *other* masters' load,
 * because every beat (IOPMP table refs + data) must win the bus
 * before it can run. Arbitration is in arrival order — a requester
 * whose local clock is behind the channel's free time simply waits
 * out the difference, and the wait is attributed to that master.
 */

#ifndef HPMP_MEM_SHARED_BUS_H
#define HPMP_MEM_SHARED_BUS_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/stats.h"

namespace hpmp
{

class SharedBus
{
  public:
    explicit SharedBus(unsigned num_masters = 2)
        : masterWaits_(num_masters, 0)
    {
        stats_.add("grants", &grants_);
        stats_.add("wait_cycles", &waitCycles_);
        stats_.add("busy_cycles", &busyCycles_);
    }

    /**
     * Claim the channel at local time `now` for `busyCycles` cycles.
     * @return cycles the master stalls before its grant starts.
     */
    uint64_t
    acquire(unsigned master, uint64_t now, uint64_t busyCycles)
    {
        const uint64_t start = std::max(now, freeAt_);
        const uint64_t wait = start - now;
        freeAt_ = start + busyCycles;
        ++grants_;
        waitCycles_ += wait;
        busyCycles_ += busyCycles;
        if (master < masterWaits_.size())
            masterWaits_[master] += wait;
        return wait;
    }

    /** First cycle at which the channel is idle again. */
    uint64_t freeAt() const { return freeAt_; }

    /** Total stall cycles attributed to one master. */
    uint64_t
    masterWaitCycles(unsigned master) const
    {
        return master < masterWaits_.size() ? masterWaits_[master] : 0;
    }

    uint64_t grants() const { return grants_.value(); }
    uint64_t waitCycles() const { return waitCycles_.value(); }

    /** "shared_bus" group (grants, wait_cycles, busy_cycles). */
    StatGroup &stats() { return stats_; }

  private:
    uint64_t freeAt_ = 0;
    std::vector<uint64_t> masterWaits_;
    Counter grants_;     //!< channel grants handed out
    Counter waitCycles_; //!< total arbitration stalls, all masters
    Counter busyCycles_; //!< cycles the channel spent occupied
    StatGroup stats_{"shared_bus"};
};

} // namespace hpmp

#endif // HPMP_MEM_SHARED_BUS_H
