/**
 * @file
 * Three-level cache + DRAM memory hierarchy.
 *
 * Mirrors Table 1: split L1 I/D, unified L2, shared LLC, DRAM. Every
 * physical reference made by the machine model (data, page-table page,
 * PMP-table entry) is routed through here so that the locality of
 * extra-dimensional walks is what actually produces the results.
 */

#ifndef HPMP_MEM_HIERARCHY_H
#define HPMP_MEM_HIERARCHY_H

#include <memory>

#include "mem/cache.h"
#include "mem/dram.h"

namespace hpmp
{

/** Where a reference was serviced. */
enum class MemLevel { L1, L2, LLC, Dram };

/** Outcome of one physical reference. */
struct MemAccessResult
{
    unsigned cycles = 0;
    MemLevel servicedBy = MemLevel::L1;
};

/** Configuration for the whole hierarchy. */
struct HierarchyParams
{
    CacheParams l1i;
    CacheParams l1d;
    CacheParams l2;
    CacheParams llc;
    DramParams dram;
};

/** Split-L1 / unified-L2 / LLC / DRAM chain with inclusive fills. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params);

    /** Timing access: looks up each level in turn, fills on the way. */
    MemAccessResult
    access(Addr pa, bool is_write, bool is_fetch = false)
    {
        MemAccessResult result;
        Cache &l1 = is_fetch ? *l1i_ : *l1d_;

        result.cycles += l1.latency();
        if (l1.access(pa, is_write)) {
            result.servicedBy = MemLevel::L1;
            return result;
        }
        return accessBelowL1(pa, is_write, result);
    }

    /** Make the line containing pa resident down to `deepest`. */
    void warmLine(Addr pa, MemLevel deepest = MemLevel::L1,
                  bool fetch_side = false);

    /** Evict the line containing pa from every level. */
    void flushLine(Addr pa);

    /** Invalidate all caches and close DRAM rows (cold machine). */
    void flushAll();

    Cache &l1d() { return *l1d_; }
    Cache &l1i() { return *l1i_; }
    Cache &l2() { return *l2_; }
    Cache &llc() { return *llc_; }
    Dram &dram() { return *dram_; }

    void resetStats();

  private:
    /** L1-miss continuation of access(). */
    MemAccessResult accessBelowL1(Addr pa, bool is_write,
                                  MemAccessResult result);

    std::unique_ptr<Cache> l1i_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> llc_;
    std::unique_ptr<Dram> dram_;
};

} // namespace hpmp

#endif // HPMP_MEM_HIERARCHY_H
