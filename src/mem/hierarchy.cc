#include "mem/hierarchy.h"

namespace hpmp
{

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : l1i_(std::make_unique<Cache>(params.l1i)),
      l1d_(std::make_unique<Cache>(params.l1d)),
      l2_(std::make_unique<Cache>(params.l2)),
      llc_(std::make_unique<Cache>(params.llc)),
      dram_(std::make_unique<Dram>(params.dram))
{
}

MemAccessResult
MemoryHierarchy::accessBelowL1(Addr pa, bool is_write,
                               MemAccessResult result)
{
    result.cycles += l2_->latency();
    if (l2_->access(pa, is_write)) {
        result.servicedBy = MemLevel::L2;
        return result;
    }
    result.cycles += llc_->latency();
    if (llc_->access(pa, is_write)) {
        result.servicedBy = MemLevel::LLC;
        return result;
    }
    result.cycles += dram_->access(pa);
    result.servicedBy = MemLevel::Dram;
    return result;
}

void
MemoryHierarchy::warmLine(Addr pa, MemLevel deepest, bool fetch_side)
{
    // Insert from the outside in so "deepest" is the closest level the
    // line is resident in (warming only the LLC leaves L1/L2 cold).
    switch (deepest) {
      case MemLevel::L1:
        (fetch_side ? *l1i_ : *l1d_).touch(pa);
        [[fallthrough]];
      case MemLevel::L2:
        l2_->touch(pa);
        [[fallthrough]];
      case MemLevel::LLC:
        llc_->touch(pa);
        break;
      case MemLevel::Dram:
        break;
    }
}

void
MemoryHierarchy::flushLine(Addr pa)
{
    l1i_->flushLine(pa);
    l1d_->flushLine(pa);
    l2_->flushLine(pa);
    llc_->flushLine(pa);
}

void
MemoryHierarchy::flushAll()
{
    l1i_->flushAll();
    l1d_->flushAll();
    l2_->flushAll();
    llc_->flushAll();
    dram_->precharge();
}

void
MemoryHierarchy::resetStats()
{
    l1i_->resetStats();
    l1d_->resetStats();
    l2_->resetStats();
    llc_->resetStats();
    dram_->resetStats();
}

} // namespace hpmp
