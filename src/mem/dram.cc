#include "mem/dram.h"

namespace hpmp
{

Dram::Dram(const DramParams &params)
    : params_(params),
      openRow_(params.numBanks, -1)
{
}

unsigned
Dram::access(Addr pa)
{
    // Row index within the whole device, bank-interleaved at row
    // granularity so that adjacent rows map to different banks.
    const uint64_t row_global = pa / params_.rowBytes;
    const unsigned bank = row_global % params_.numBanks;
    const int64_t row = static_cast<int64_t>(row_global / params_.numBanks);

    if (openRow_[bank] == row) {
        ++rowHits_;
        return params_.rowHitCycles;
    }
    openRow_[bank] = row;
    ++rowMisses_;
    return params_.rowMissCycles;
}

void
Dram::precharge()
{
    for (auto &row : openRow_)
        row = -1;
}

} // namespace hpmp
