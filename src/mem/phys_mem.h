/**
 * @file
 * Sparse functional physical-memory backing store.
 *
 * Pages are allocated lazily on first touch and zero-filled, so the
 * simulator can model a 16 GiB machine (Table 1) without committing
 * host memory. Page tables, PMP tables and workload data all live in
 * here and are read back bit-exactly by the walkers.
 */

#ifndef HPMP_MEM_PHYS_MEM_H
#define HPMP_MEM_PHYS_MEM_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "base/addr.h"

namespace hpmp
{

/** Byte-addressable sparse physical memory. */
class PhysMem
{
  public:
    /** @param size total physical address space in bytes. */
    explicit PhysMem(uint64_t size) : size_(size) {}

    uint64_t size() const { return size_; }

    /** Aligned 64-bit load; addr must be 8-byte aligned and in range. */
    uint64_t read64(Addr addr) const;

    /** Aligned 64-bit store; addr must be 8-byte aligned and in range. */
    void write64(Addr addr, uint64_t value);

    uint8_t read8(Addr addr) const;
    void write8(Addr addr, uint8_t value);

    /** Bulk helpers for workload data. */
    void readBytes(Addr addr, void *buf, uint64_t len) const;
    void writeBytes(Addr addr, const void *buf, uint64_t len);

    /** Zero an entire naturally aligned 4 KiB page. */
    void zeroPage(Addr page_base);

    /**
     * Drop the host backing for one naturally aligned 4 KiB page: the
     * next read sees zeros (the lazy-allocation initial state) and
     * backedPages() shrinks. Poison on the page is NOT cleared — an
     * uncorrectable error marks the physical frame, not its contents,
     * and survives until the frame is explicitly retired or scrubbed.
     */
    void releasePage(Addr page_base);

    /** Number of host-backed pages (for tests / footprint checks). */
    size_t backedPages() const { return pages_.size(); }

    // ---- poison (RAS): uncorrectable-error marks ------------------
    //
    // Poison is tracked per 64-byte granule (the modelled DRAM ECC
    // word / cache-line size): one uint64_t bitmap covers a 4 KiB
    // page exactly. PhysMem itself never faults — readers consult
    // isPoisoned() and convert a hit into a typed MachineCheck at
    // the consumption point (fail closed, never corrupt data).

    /** Granule size of one poison mark. */
    static constexpr uint64_t kPoisonGranule = 64;

    /** Poison every granule of a naturally aligned 4 KiB page. */
    void poisonPage(Addr page_base);

    /** Poison the single 64 B granule containing addr. */
    void poisonLine(Addr addr);

    /** Clear all poison on the page containing addr. */
    void clearPoison(Addr page_base);

    /** Clear poison on the single 64 B granule containing addr. */
    void clearPoisonLine(Addr addr);

    /** Whether [addr, addr+len) overlaps any poisoned granule. */
    bool isPoisoned(Addr addr, uint64_t len = 1) const;

    /** Number of pages carrying at least one poisoned granule. */
    size_t poisonedPages() const { return poison_.size(); }

  private:
    using Page = std::array<uint8_t, kPageSize>;

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;
    void checkRange(Addr addr, uint64_t len) const;

    uint64_t size_;
    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
    /** Page number -> bitmap of poisoned 64 B granules (64 per page). */
    std::unordered_map<uint64_t, uint64_t> poison_;

    /**
     * Direct-mapped cache of recently touched pages, skipping the
     * hash-map lookup on the (very hot) read/write paths. Only backed
     * pages are cached — a miss falls through to the map — and
     * releasePage() invalidates the matching slot, so cached pointers
     * cannot dangle.
     */
    struct PageSlot
    {
        uint64_t pn = ~0ULL;
        Page *page = nullptr;
    };
    static constexpr size_t kPageCacheSlots = 256; //!< power of two
    mutable std::array<PageSlot, kPageCacheSlots> pageCache_{};
};

} // namespace hpmp

#endif // HPMP_MEM_PHYS_MEM_H
