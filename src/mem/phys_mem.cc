#include "mem/phys_mem.h"

#include <cstring>

#include "base/logging.h"

namespace hpmp
{

void
PhysMem::checkRange(Addr addr, uint64_t len) const
{
    panic_if(addr + len > size_ || addr + len < addr,
             "physical access [%#lx, +%lu) out of range (size %#lx)",
             addr, (unsigned long)len, size_);
}

PhysMem::Page &
PhysMem::pageFor(Addr addr)
{
    const uint64_t pn = pageNumber(addr);
    PageSlot &cached = pageCache_[pn & (kPageCacheSlots - 1)];
    if (cached.pn == pn)
        return *cached.page;

    auto &slot = pages_[pn];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    cached = {pn, slot.get()};
    return *slot;
}

const PhysMem::Page *
PhysMem::pageForConst(Addr addr) const
{
    const uint64_t pn = pageNumber(addr);
    PageSlot &cached = pageCache_[pn & (kPageCacheSlots - 1)];
    if (cached.pn == pn)
        return cached.page;

    auto it = pages_.find(pn);
    if (it == pages_.end())
        return nullptr;
    cached = {pn, it->second.get()};
    return it->second.get();
}

uint64_t
PhysMem::read64(Addr addr) const
{
    checkRange(addr, 8);
    panic_if(addr & 7, "misaligned read64 at %#lx", addr);
    const Page *page = pageForConst(addr);
    if (!page)
        return 0;
    uint64_t v;
    std::memcpy(&v, page->data() + pageOffset(addr), 8);
    return v;
}

void
PhysMem::write64(Addr addr, uint64_t value)
{
    checkRange(addr, 8);
    panic_if(addr & 7, "misaligned write64 at %#lx", addr);
    std::memcpy(pageFor(addr).data() + pageOffset(addr), &value, 8);
}

uint8_t
PhysMem::read8(Addr addr) const
{
    checkRange(addr, 1);
    const Page *page = pageForConst(addr);
    return page ? (*page)[pageOffset(addr)] : 0;
}

void
PhysMem::write8(Addr addr, uint8_t value)
{
    checkRange(addr, 1);
    pageFor(addr)[pageOffset(addr)] = value;
}

void
PhysMem::readBytes(Addr addr, void *buf, uint64_t len) const
{
    checkRange(addr, len);
    auto *out = static_cast<uint8_t *>(buf);
    while (len > 0) {
        const uint64_t chunk =
            std::min<uint64_t>(len, kPageSize - pageOffset(addr));
        const Page *page = pageForConst(addr);
        if (page)
            std::memcpy(out, page->data() + pageOffset(addr), chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
PhysMem::writeBytes(Addr addr, const void *buf, uint64_t len)
{
    checkRange(addr, len);
    const auto *in = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        const uint64_t chunk =
            std::min<uint64_t>(len, kPageSize - pageOffset(addr));
        std::memcpy(pageFor(addr).data() + pageOffset(addr), in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
PhysMem::zeroPage(Addr page_base)
{
    checkRange(page_base, kPageSize);
    panic_if(pageOffset(page_base) != 0,
             "zeroPage on unaligned address %#lx", page_base);
    pageFor(page_base).fill(0);
}

void
PhysMem::releasePage(Addr page_base)
{
    checkRange(page_base, kPageSize);
    panic_if(pageOffset(page_base) != 0,
             "releasePage on unaligned address %#lx", page_base);
    const uint64_t pn = pageNumber(page_base);
    PageSlot &cached = pageCache_[pn & (kPageCacheSlots - 1)];
    if (cached.pn == pn)
        cached = PageSlot{};
    pages_.erase(pn);
}

void
PhysMem::poisonPage(Addr page_base)
{
    checkRange(page_base, kPageSize);
    panic_if(pageOffset(page_base) != 0,
             "poisonPage on unaligned address %#lx", page_base);
    poison_[pageNumber(page_base)] = ~0ULL;
}

void
PhysMem::poisonLine(Addr addr)
{
    checkRange(addr, 1);
    poison_[pageNumber(addr)] |=
        1ULL << (pageOffset(addr) / kPoisonGranule);
}

void
PhysMem::clearPoison(Addr page_base)
{
    checkRange(page_base, kPageSize);
    panic_if(pageOffset(page_base) != 0,
             "clearPoison on unaligned address %#lx", page_base);
    poison_.erase(pageNumber(page_base));
}

void
PhysMem::clearPoisonLine(Addr addr)
{
    checkRange(addr, 1);
    const auto it = poison_.find(pageNumber(addr));
    if (it == poison_.end())
        return;
    it->second &= ~(1ULL << (pageOffset(addr) / kPoisonGranule));
    if (it->second == 0)
        poison_.erase(it);
}

bool
PhysMem::isPoisoned(Addr addr, uint64_t len) const
{
    if (poison_.empty() || len == 0)
        return false;
    checkRange(addr, len);
    Addr granule = addr & ~(kPoisonGranule - 1);
    const Addr last = (addr + len - 1) & ~(kPoisonGranule - 1);
    while (true) {
        const auto it = poison_.find(pageNumber(granule));
        if (it != poison_.end() &&
            (it->second &
             (1ULL << (pageOffset(granule) / kPoisonGranule)))) {
            return true;
        }
        if (granule == last)
            return false;
        granule += kPoisonGranule;
    }
}

} // namespace hpmp
