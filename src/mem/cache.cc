#include "mem/cache.h"

#include "base/bitfield.h"
#include "base/logging.h"

namespace hpmp
{

Cache::Cache(const CacheParams &params)
    : params_(params),
      lineShift_(log2i(params.lineBytes))
{
    fatal_if(!isPowerOf2(params.lineBytes), "%s: line size must be 2^n",
             params.name.c_str());
    fatal_if(params.assoc == 0, "%s: zero associativity",
             params.name.c_str());
    const uint64_t num_lines = params.sizeBytes / params.lineBytes;
    fatal_if(num_lines % params.assoc != 0,
             "%s: size/assoc mismatch", params.name.c_str());
    numSets_ = num_lines / params.assoc;
    if (isPowerOf2(numSets_)) {
        setsPow2_ = true;
        setShift_ = log2i(numSets_);
        setMask_ = numSets_ - 1;
    }
    lines_.resize(num_lines);
}

void
Cache::fillVictim(Line *base, uint64_t tag, bool is_write)
{
    // Same victim choice as the historical single-pass scan: the last
    // invalid unlocked way if any, else the lowest-LRU unlocked way.
    Line *victim = nullptr;
    for (unsigned way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (line.locked)
            continue;
        if (!line.valid)
            victim = &line;
        else if (!victim || (victim->valid && line.lru < victim->lru))
            victim = &line;
    }
    panic_if(!victim, "all ways locked in set");

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lru = ++lruClock_;
}

bool
Cache::probe(Addr pa) const
{
    const uint64_t set = setIndex(pa);
    const uint64_t tag = tagOf(pa);
    const Line *base = &lines_[set * params_.assoc];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

void
Cache::touch(Addr pa)
{
    const uint64_t set = setIndex(pa);
    const uint64_t tag = tagOf(pa);
    Line *base = &lines_[set * params_.assoc];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lru = ++lruClock_;
            return;
        }
    }
    Line *victim = nullptr;
    for (unsigned way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (line.locked)
            continue;
        if (!line.valid)
            victim = &line;
        else if (!victim || (victim->valid && line.lru < victim->lru))
            victim = &line;
    }
    panic_if(!victim, "all ways locked in set");
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = false;
    victim->lru = ++lruClock_;
}

bool
Cache::lockLine(Addr pa)
{
    const uint64_t set = setIndex(pa);
    const uint64_t tag = tagOf(pa);
    Line *base = &lines_[set * params_.assoc];

    unsigned unlocked = 0;
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (!base[way].locked)
            ++unlocked;
    }
    if (unlocked <= 1)
        return false; // keep at least one evictable way per set

    // Bring the line in (warm) and pin it.
    touch(pa);
    for (unsigned way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag && !line.locked) {
            line.locked = true;
            ++lockedLines_;
            return true;
        }
    }
    return false;
}

void
Cache::unlockLine(Addr pa)
{
    const uint64_t set = setIndex(pa);
    const uint64_t tag = tagOf(pa);
    Line *base = &lines_[set * params_.assoc];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag && line.locked) {
            line.locked = false;
            --lockedLines_;
        }
    }
}

void
Cache::flushAll()
{
    for (auto &line : lines_) {
        if (line.locked) {
            // Locked lines survive flushes (the monitor's pinned
            // state); everything else goes.
            continue;
        }
        line = Line{};
    }
}

void
Cache::flushLine(Addr pa)
{
    const uint64_t set = setIndex(pa);
    const uint64_t tag = tagOf(pa);
    Line *base = &lines_[set * params_.assoc];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag &&
            !base[way].locked) {
            base[way] = Line{};
        }
    }
}

} // namespace hpmp
