/**
 * @file
 * RISC-V Physical Memory Protection (PMP) — segment-based isolation.
 *
 * Implements the pmpaddr/pmpcfg register pair semantics of the
 * privileged spec v1.12: OFF/TOR/NA4/NAPOT address matching, static
 * priority (lowest-numbered matching entry wins), the lock bit, and
 * the rule that S/U accesses with no matching entry are denied.
 *
 * Bit 5 of each config register is reserved in the base ISA; the HPMP
 * extension (src/hpmp) reuses it as the Table-mode bit, which is why
 * the accessors here expose it as `reservedT`.
 */

#ifndef HPMP_PMP_PMP_H
#define HPMP_PMP_PMP_H

#include <cstdint>
#include <optional>
#include <vector>

#include "base/access.h"
#include "base/addr.h"

namespace hpmp
{

/** pmpcfg address-matching field values. */
enum class PmpAddrMode : uint8_t { Off = 0, Tor = 1, Na4 = 2, Napot = 3 };

/** Decoded view of one pmpcfg byte. */
struct PmpCfg
{
    uint8_t raw = 0;

    bool r() const { return raw & 0x01; }
    bool w() const { return raw & 0x02; }
    bool x() const { return raw & 0x04; }
    PmpAddrMode a() const { return PmpAddrMode((raw >> 3) & 0x3); }
    bool reservedT() const { return raw & 0x20; } //!< HPMP T bit
    bool l() const { return raw & 0x80; }

    Perm perm() const { return Perm{r(), w(), x()}; }

    static uint8_t
    make(Perm perm, PmpAddrMode mode, bool lock = false, bool t = false)
    {
        uint8_t v = 0;
        v |= perm.r ? 0x01 : 0;
        v |= perm.w ? 0x02 : 0;
        v |= perm.x ? 0x04 : 0;
        v |= uint8_t(mode) << 3;
        v |= t ? 0x20 : 0;
        v |= lock ? 0x80 : 0;
        return v;
    }
};

/** A decoded PMP region: [base, base+size). */
struct PmpRegion
{
    Addr base = 0;
    uint64_t size = 0;
};

/**
 * The PMP register file and matcher. The base ISA provides 16 entries;
 * the ePMP/Smepmp direction raises this to 64, which the paper invokes
 * for large-memory configurations (§4.3), so the count is a parameter.
 */
class PmpUnit
{
  public:
    explicit PmpUnit(unsigned num_entries = 16);

    unsigned numEntries() const { return numEntries_; }

    /** Raw CSR writes; locked entries ignore writes (WARL). */
    void setAddr(unsigned idx, uint64_t value);
    void setCfg(unsigned idx, uint8_t value);

    uint64_t addr(unsigned idx) const { return addr_.at(idx); }
    PmpCfg cfg(unsigned idx) const { return PmpCfg{cfg_.at(idx)}; }

    /**
     * Decode the region matched by entry idx (nullopt when OFF).
     * TOR uses the previous entry's address register as the floor.
     */
    std::optional<PmpRegion> region(unsigned idx) const;

    /**
     * Find the highest-priority (lowest-numbered) enabled entry whose
     * region covers any byte of [pa, pa+size).
     * @return entry index, or -1 when no entry matches.
     */
    int findMatch(Addr pa, uint64_t size) const;

    /** True iff entry idx covers the whole access. */
    bool coversAll(unsigned idx, Addr pa, uint64_t size) const;

    /**
     * Plain-PMP check (no table extension): resolve the matching entry
     * and test its inline permission. M-mode accesses with no match
     * succeed; S/U accesses with no match fail.
     */
    Fault check(Addr pa, uint64_t size, AccessType type,
                PrivMode priv) const;

    /** Encode a NAPOT pmpaddr value for [base, base+size), size = 2^k >= 8. */
    static uint64_t encodeNapot(Addr base, uint64_t size);

    /** Convenience: program entry idx as a NAPOT segment region. */
    void
    programNapot(unsigned idx, Addr base, uint64_t size, Perm perm,
                 bool lock = false)
    {
        setAddr(idx, encodeNapot(base, size));
        setCfg(idx, PmpCfg::make(perm, PmpAddrMode::Napot, lock));
    }

    /** Convenience: disable entry idx. */
    void
    disable(unsigned idx)
    {
        setCfg(idx, PmpCfg::make(Perm::none(), PmpAddrMode::Off));
        setAddr(idx, 0);
    }

    /** Raw register-file snapshot for transactional rollback. */
    struct Snapshot
    {
        std::vector<uint64_t> addr;
        std::vector<uint8_t> cfg;
    };

    Snapshot snapshot() const { return {addr_, cfg_}; }

    /**
     * Restore a snapshot taken from this unit, bypassing WARL/lock
     * semantics (the monitor rolls back its own programming; this is
     * not a CSR write the S-mode software could issue).
     */
    void
    restore(const Snapshot &snap)
    {
        addr_ = snap.addr;
        cfg_ = snap.cfg;
        regionsStale_ = true;
    }

  private:
    /** Decode entry idx straight from the registers. */
    std::optional<PmpRegion> decodeRegion(unsigned idx) const;

    /** Re-decode every entry into the region cache. */
    void refreshRegions() const;

    unsigned numEntries_;
    std::vector<uint64_t> addr_;
    std::vector<uint8_t> cfg_;

    /**
     * Lazily decoded regions, one per entry: matching runs on every
     * simulated physical reference, so the NAPOT/TOR decode must not
     * be redone per call. Any CSR write invalidates the whole cache
     * (TOR entries read their neighbour's address register).
     */
    mutable std::vector<std::optional<PmpRegion>> regions_;
    mutable std::vector<unsigned> matchable_; //!< enabled, index order
    mutable bool regionsStale_ = true;
};

} // namespace hpmp

#endif // HPMP_PMP_PMP_H
