#include "pmp/pmp.h"

#include "base/bitfield.h"
#include "base/logging.h"

namespace hpmp
{

PmpUnit::PmpUnit(unsigned num_entries)
    : numEntries_(num_entries),
      addr_(num_entries, 0),
      cfg_(num_entries, 0)
{
    fatal_if(num_entries == 0 || num_entries > 64,
             "PMP supports 1..64 entries, got %u", num_entries);
}

void
PmpUnit::setAddr(unsigned idx, uint64_t value)
{
    panic_if(idx >= numEntries_, "pmpaddr index %u out of range", idx);
    // Writes to pmpaddr[i] are ignored when entry i is locked, or when
    // entry i+1 is a locked TOR entry (it uses addr[i] as its floor).
    if (cfg(idx).l())
        return;
    if (idx + 1 < numEntries_) {
        const PmpCfg next = cfg(idx + 1);
        if (next.l() && next.a() == PmpAddrMode::Tor)
            return;
    }
    // Base PMP defines addr[55:2] (bits 53:0) and keeps the top bits
    // WARL-zero; the HPMP extension redefines the full register as a
    // PmptBaseReg when the preceding config has T=1 (Fig. 6-b), so
    // the raw value is stored and interpretation happens at use.
    addr_[idx] = value;
    regionsStale_ = true;
}

void
PmpUnit::setCfg(unsigned idx, uint8_t value)
{
    panic_if(idx >= numEntries_, "pmpcfg index %u out of range", idx);
    if (cfg(idx).l())
        return; // locked until reset
    cfg_[idx] = value;
    regionsStale_ = true;
}

std::optional<PmpRegion>
PmpUnit::region(unsigned idx) const
{
    if (regionsStale_)
        refreshRegions();
    return regions_[idx];
}

void
PmpUnit::refreshRegions() const
{
    regions_.resize(numEntries_);
    matchable_.clear();
    for (unsigned i = 0; i < numEntries_; ++i) {
        regions_[i] = decodeRegion(i);
        if (regions_[i] && regions_[i]->size != 0)
            matchable_.push_back(i);
    }
    regionsStale_ = false;
}

std::optional<PmpRegion>
PmpUnit::decodeRegion(unsigned idx) const
{
    const PmpCfg c = cfg(idx);
    switch (c.a()) {
      case PmpAddrMode::Off:
        return std::nullopt;
      case PmpAddrMode::Tor: {
        const Addr floor = idx == 0 ? 0 : (addr_[idx - 1] << 2);
        const Addr top = addr_[idx] << 2;
        if (top <= floor)
            return PmpRegion{floor, 0}; // empty region matches nothing
        return PmpRegion{floor, top - floor};
      }
      case PmpAddrMode::Na4:
        return PmpRegion{addr_[idx] << 2, 4};
      case PmpAddrMode::Napot: {
        // Trailing ones of pmpaddr encode the size: k ones -> 2^(k+3).
        const uint64_t a = addr_[idx];
        unsigned ones = 0;
        while (ones < 54 && (a >> ones) & 1)
            ++ones;
        const uint64_t size = 1ULL << (ones + 3);
        const Addr base = (a & ~mask(ones)) << 2;
        return PmpRegion{base, size};
      }
    }
    return std::nullopt;
}

bool
PmpUnit::coversAll(unsigned idx, Addr pa, uint64_t size) const
{
    const auto reg = region(idx);
    if (!reg || reg->size == 0)
        return false;
    return reg->base <= pa && pa + size <= reg->base + reg->size;
}

int
PmpUnit::findMatch(Addr pa, uint64_t size) const
{
    if (regionsStale_)
        refreshRegions();
    // matchable_ holds the enabled entries in priority (index) order,
    // so skipping OFF/empty entries preserves the static priority.
    for (const unsigned i : matchable_) {
        const PmpRegion &reg = *regions_[i];
        if (reg.base < pa + size && pa < reg.base + reg.size)
            return static_cast<int>(i);
    }
    return -1;
}

Fault
PmpUnit::check(Addr pa, uint64_t size, AccessType type, PrivMode priv) const
{
    const int idx = findMatch(pa, size);
    if (idx < 0) {
        // No matching entry: M succeeds, S/U fail.
        return priv == PrivMode::Machine ? Fault::None
                                         : accessFaultFor(type);
    }
    // A partial match (access straddles the region boundary) fails
    // regardless of permission.
    if (!coversAll(idx, pa, size))
        return accessFaultFor(type);

    const PmpCfg c = cfg(idx);
    // M-mode is only constrained by locked entries.
    if (priv == PrivMode::Machine && !c.l())
        return Fault::None;
    return c.perm().allows(type) ? Fault::None : accessFaultFor(type);
}

uint64_t
PmpUnit::encodeNapot(Addr base, uint64_t size)
{
    fatal_if(!isPowerOf2(size) || size < 8,
             "NAPOT size must be a power of two >= 8, got %#lx", size);
    fatal_if(base % size != 0,
             "NAPOT base %#lx not aligned to size %#lx", base, size);
    const unsigned ones = log2i(size) - 3;
    return (base >> 2) | mask(ones);
}

} // namespace hpmp
