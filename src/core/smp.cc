#include "core/smp.h"

#include "base/fault_inject.h"
#include "base/logging.h"
#include "base/trace.h"
#include "core/virt_machine.h"

namespace hpmp
{

const char *
toString(IpiPhase phase)
{
    switch (phase) {
      case IpiPhase::WindowBegin: return "window-begin";
      case IpiPhase::Posted: return "posted";
      case IpiPhase::Delivered: return "delivered";
      case IpiPhase::Acked: return "acked";
      case IpiPhase::WindowEnd: return "window-end";
      case IpiPhase::SatpFence: return "satp-fence";
      case IpiPhase::HfenceFence: return "hfence-fence";
      case IpiPhase::CoalescedCommit: return "coalesced-commit";
    }
    return "?";
}

SmpSystem::SmpSystem(const MachineParams &mp, const SmpParams &sp)
    : params_(sp),
      mem_(std::make_unique<PhysMem>(mp.physMemBytes)),
      schedRng_(sp.schedSeed)
{
    fatal_if(sp.harts == 0, "an SmpSystem needs at least one hart");
    harts_.reserve(sp.harts);
    for (unsigned h = 0; h < sp.harts; ++h) {
        // Hart 0 keeps the standalone "machine" prefix so a one-hart
        // system dumps byte-identical stats to a plain Machine.
        const std::string prefix =
            h == 0 ? "machine" : "hart" + std::to_string(h) + ".machine";
        harts_.push_back(std::make_unique<Machine>(mp, *mem_, prefix, h));
        harts_.back()->setSatpFenceHook(
            [this](Machine &writer) { satpShootdown(writer); });
    }

    stats_.add("satp_shootdowns", &statSatpShootdowns_);
    stats_.add("satp_remote_fences", &statSatpRemoteFences_);
    stats_.add("satp_ipi_retries", &statSatpIpiRetries_);
    stats_.add("hfence_shootdowns", &statHfenceShootdowns_);
    stats_.add("hfence_remote_fences", &statHfenceRemoteFences_);
    stats_.add("hfence_ipi_retries", &statHfenceIpiRetries_);
    stats_.add("hfence_elided", &statHfenceElided_);
    stats_.add("lock_acquisitions", &statLockAcquisitions_);
    stats_.add("lock_contended", &statLockContended_);
    stats_.add("sched_picks", &statSchedPicks_);
    stats_.add("hook_steps", &statHookSteps_);
}

SmpSystem::~SmpSystem() = default;

void
SmpSystem::enableVirt()
{
    if (virtEnabled())
        return;
    virtHarts_.reserve(numHarts());
    for (unsigned h = 0; h < numHarts(); ++h) {
        // Hart 0 keeps the standalone "virt_machine" prefix, mirroring
        // the "machine" convention above.
        const std::string prefix =
            h == 0 ? "virt_machine"
                   : "hart" + std::to_string(h) + ".virt_machine";
        virtHarts_.push_back(
            std::make_unique<VirtMachine>(hart(h), prefix));
        virtHarts_.back()->setHfenceHook(
            [this](VirtMachine &writer, bool gstage) {
                hfenceShootdown(writer, gstage);
            });
    }
}

void
SmpSystem::setCurrentHart(unsigned h)
{
    fatal_if(h >= numHarts(), "hart %u out of range (%u harts)", h,
             numHarts());
    currentHart_ = h;
}

unsigned
SmpSystem::pickHart()
{
    ++statSchedPicks_;
    if (schedHook_) {
        const unsigned h = schedHook_(numHarts());
        fatal_if(h >= numHarts(),
                 "sched hook picked hart %u of %u", h, numHarts());
        return h;
    }
    if (params_.roundRobin) {
        const unsigned h = rrNext_;
        rrNext_ = (rrNext_ + 1) % numHarts();
        return h;
    }
    return unsigned(schedRng_.below(numHarts()));
}

void
SmpSystem::runInterleaved(std::vector<HartTask> tasks)
{
    fatal_if(tasks.size() != harts_.size(),
             "runInterleaved wants one task per hart (%zu vs %zu)",
             tasks.size(), harts_.size());
    std::vector<bool> alive(tasks.size(), true);
    unsigned remaining = unsigned(tasks.size());
    const unsigned saved = currentHart_;
    while (remaining > 0) {
        const unsigned h = pickHart();
        if (!alive[h])
            continue;
        currentHart_ = h;
        if (!tasks[h](*harts_[h])) {
            alive[h] = false;
            --remaining;
        }
    }
    currentHart_ = saved;
}

void
SmpSystem::notifyStep(const IpiEvent &event)
{
    TRACE_EVENT(Monitor, event.seq, 0, "ipi-step",
                (uint64_t(event.srcHart) << 32) | event.dstHart,
                uint64_t(event.phase));
    if (!hook_)
        return;
    ++statHookSteps_;
    hook_->onIpiStep(event);
}

bool
SmpSystem::tryAcquireMonitorLock(unsigned hart)
{
    if (lockHeld_) {
        ++statLockContended_;
        return false;
    }
    lockHeld_ = true;
    lockOwner_ = hart;
    ++statLockAcquisitions_;
    return true;
}

void
SmpSystem::releaseMonitorLock(unsigned hart)
{
    panic_if(!lockHeld_, "releasing a monitor lock nobody holds");
    panic_if(lockOwner_ != hart,
             "hart %u releasing the monitor lock held by hart %u", hart,
             lockOwner_);
    lockHeld_ = false;
}

void
SmpSystem::satpShootdown(Machine &writer)
{
    if (numHarts() == 1)
        return;
    ++statSatpShootdowns_;
    const uint64_t seq = nextIpiSeq();
    for (unsigned h = 0; h < numHarts(); ++h) {
        if (&hart(h) == &writer)
            continue;
        // A lost satp IPI is retried, never skipped: leaving a hart's
        // shared-PT cached state unfenced would be the exact bug this
        // path exists to prevent. Retries are counted so campaigns can
        // assert the fault actually fired; the bound keeps a
        // probability-1.0 plan from spinning.
        for (unsigned attempt = 0;
             attempt < 8 && FAULT_POINT("smp.satp_ipi"); ++attempt)
            ++statSatpIpiRetries_;
        hart(h).sfenceVma();
        ++statSatpRemoteFences_;
        notifyStep({IpiPhase::SatpFence, writer.hartId(), h, seq});
    }
}

void
SmpSystem::hfenceShootdown(VirtMachine &writer, bool gstage)
{
    if (numHarts() == 1)
        return;
    ++statHfenceShootdowns_;
    const uint64_t seq = nextIpiSeq();
    for (unsigned h = 0; h < numHarts(); ++h) {
        VirtMachine &vm = virtHart(h);
        if (&vm == &writer)
            continue;
        // Like the satp path: a lost hfence IPI is retried, never
        // skipped — a hart left holding combined/G-stage entries for a
        // switched table is exactly the stale-translation bug.
        for (unsigned attempt = 0;
             attempt < 8 && FAULT_POINT("smp.hfence_ipi"); ++attempt)
            ++statHfenceIpiRetries_;
        if (gstage)
            vm.hfenceGvma();
        else
            vm.hfenceVvma();
        ++statHfenceRemoteFences_;
        notifyStep({IpiPhase::HfenceFence, writer.hartId(), h, seq});
    }
}

HartContext
SmpSystem::extractHartContext(unsigned h) const
{
    const Machine &m = hart(h);
    HartContext ctx;
    ctx.translationOn = m.translationOn();
    ctx.satpRoot = m.satpRoot();
    ctx.pagingMode = m.pagingMode();
    ctx.priv = m.priv();
    if (virtEnabled()) {
        const VirtMachine &vm = *virtHarts_.at(h);
        ctx.virt = true;
        ctx.vsatpRoot = vm.vsatpRoot();
        ctx.hgatpRoot = vm.hgatpRoot();
        ctx.guestPriv = vm.guestPriv();
    }
    return ctx;
}

void
SmpSystem::applyHartContext(unsigned h, const HartContext &ctx)
{
    Machine &m = hart(h);
    m.setPriv(ctx.priv);
    if (ctx.translationOn)
        m.setSatp(ctx.satpRoot, ctx.pagingMode);
    else
        m.setBare();
    if (ctx.virt) {
        fatal_if(!virtEnabled(),
                 "applying a virt hart context to a system without "
                 "enableVirt()");
        VirtMachine &vm = virtHart(h);
        vm.setGuestPriv(ctx.guestPriv);
        // hgatp first, then vsatp: the gvma drops everything, the
        // vvma then drops only guest/combined state — the same order
        // a hypervisor uses when installing a migrated-in vCPU.
        vm.setHgatp(ctx.hgatpRoot);
        vm.setVsatp(ctx.vsatpRoot);
    }
}

void
SmpSystem::registerStats(StatRegistry &registry)
{
    registry.add(&stats_);
    for (auto &m : harts_)
        m->registerStats(registry);
    for (auto &vm : virtHarts_)
        vm->registerStats(registry);
}

} // namespace hpmp
