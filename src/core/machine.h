/**
 * @file
 * The end-to-end memory-access engine.
 *
 * Machine ties together the TLB, page-table walker, PWC, the HPMP
 * permission checker and the cache/DRAM hierarchy, reproducing the
 * reference streams of the paper's Figures 2 and 4:
 *
 *   - TLB hit: inlined permission, data reference only.
 *   - TLB miss: one reference per page-table level (modulo PWC hits),
 *     each preceded by a physical permission check; then the data
 *     reference with its own check. In table mode every check costs
 *     up to two pmpte references through the same cache hierarchy.
 *
 * The isolation *scheme* is not machine state — it is whatever the
 * secure monitor programmed into the HPMP entries. The machine simply
 * checks every actual physical reference.
 */

#ifndef HPMP_CORE_MACHINE_H
#define HPMP_CORE_MACHINE_H

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "base/attribution.h"
#include "base/stats.h"
#include "core/params.h"
#include "core/pwc.h"
#include "core/tlb.h"
#include "hpmp/hpmp_unit.h"
#include "hpmp/isolation.h"
#include "mem/hierarchy.h"
#include "mem/phys_mem.h"
#include "pt/walker.h"

namespace hpmp
{

/** Per-access outcome and reference breakdown. */
struct AccessOutcome
{
    Fault fault = Fault::None;
    uint64_t cycles = 0;
    bool tlbHit = false;
    unsigned ptRefs = 0;    //!< page-table page reads
    unsigned adRefs = 0;    //!< A/D-bit update writes
    unsigned pmptRefs = 0;  //!< permission-table entry references
    unsigned dataRefs = 0;  //!< the data/instruction reference itself
    unsigned pwcSkips = 0;  //!< PT references skipped by the PWC
    /** Meaningful when fault == MachineCheck: the poisoned physical
     *  address and what kind of reference consumed it. */
    Addr poisonAddr = 0;
    RefOrigin poisonOrigin = RefOrigin::Data;

    bool ok() const { return fault == Fault::None; }
    unsigned totalRefs() const
    {
        return ptRefs + adRefs + pmptRefs + dataRefs;
    }
};

/** Aggregate outcome of a batched replay (Machine::accessBatch). */
struct BatchOutcome
{
    uint64_t accesses = 0;
    uint64_t tlbHits = 0;
    uint64_t faults = 0;
    uint64_t cycles = 0;
    uint64_t ptRefs = 0;
    uint64_t adRefs = 0;
    uint64_t pmptRefs = 0;
    uint64_t dataRefs = 0;
    uint64_t pwcSkips = 0;
    /**
     * Requests consumed, including the faulting one when
     * `stop_on_fault` ended the batch early.
     */
    uint64_t completed = 0;
    Fault firstFault = Fault::None;

    uint64_t totalRefs() const
    {
        return ptRefs + adRefs + pmptRefs + dataRefs;
    }
};

class CoreModel;

/** One simulated hart plus its memory system. */
class Machine
{
  public:
    explicit Machine(const MachineParams &params);

    /**
     * SMP hart constructor: the machine shares `shared_mem` with its
     * sibling harts (per-hart TLB/PWC/HPMP/caches stay private) and
     * names its stat groups `<stat_prefix>`, `<stat_prefix>.tlb`, ...
     * Hart 0 of an SmpSystem uses the default "machine" prefix so a
     * single-hart system dumps byte-identical stats to a standalone
     * Machine.
     */
    Machine(const MachineParams &params, PhysMem &shared_mem,
            const std::string &stat_prefix, unsigned hart_id);

    const MachineParams &params() const { return params_; }

    PhysMem &mem() { return *mem_; }
    MemoryHierarchy &hier() { return *hier_; }
    HpmpUnit &hpmp() { return *hpmp_; }
    Tlb &tlb() { return *tlb_; }
    Pwc &pwc() { return *pwc_; }

    /**
     * Point the MMU at a page table. A satp write implies a local
     * sfence.vma; when a remote-fence hook is installed (SmpSystem)
     * the write is also routed through it so sibling harts' cached
     * shared-PT state is fenced and accounted, never silently stale.
     */
    void setSatp(Addr root_pa, PagingMode mode);

    /**
     * Hook invoked after the local fence of every setSatp, with this
     * machine as the writing hart. Installed by SmpSystem; standalone
     * machines have none and pay nothing.
     */
    using SatpFenceHook = std::function<void(Machine &)>;
    void setSatpFenceHook(SatpFenceHook hook)
    {
        satpFenceHook_ = std::move(hook);
    }

    /** Hart index within an SmpSystem (0 for standalone machines). */
    unsigned hartId() const { return hartId_; }

    /** Disable translation (bare / M-mode style direct physical). */
    void setBare() { translationOn_ = false; }

    void setPriv(PrivMode priv) { priv_ = priv; }
    PrivMode priv() const { return priv_; }

    /** Current translation CSR state (migration checkpointing). */
    bool translationOn() const { return translationOn_; }
    Addr satpRoot() const { return satpRoot_; }
    PagingMode pagingMode() const { return mode_; }

    /** Perform one load/store/fetch at virtual address va. */
    AccessOutcome access(Addr va, AccessType type);

    /**
     * Replay a span of requests in one dispatch, updating the
     * "machine.*" counters in bulk. Each access is optionally charged
     * to `model`; with `stop_on_fault` the batch ends at the first
     * faulting request (already counted in `completed`), so callers
     * can service the fault and resume with the remaining span.
     */
    BatchOutcome accessBatch(std::span<const AccessRequest> reqs,
                             CoreModel *model = nullptr,
                             bool stop_on_fault = false);

    /** sfence.vma rs1=x0: flush TLB and PWC. */
    void sfenceVma();

    /** Flush TLB/PWC/PMPTW and all caches; close DRAM rows. */
    void coldReset();

    /**
     * Check one physical reference against the programmed HPMP state,
     * charging pmpte references to `out`. Public so the virtualized
     * machine can reuse it.
     */
    Fault checkPhys(Addr pa, AccessType type, AccessOutcome &out);

    /**
     * Functional probe of the physical permission triple for a page
     * (used for TLB inlining; costs nothing).
     */
    Perm physPermProbe(Addr pa) const;

    /** Aggregate counters ("machine.*"): accesses, walks, faults... */
    StatGroup &stats() { return stats_; }

    /** Per-origin reference counts/latencies ("machine.ref.*"). */
    const RefAttribution &refAttr() const { return attr_; }
    RefAttribution &refAttr() { return attr_; }

    /**
     * Register every stat group of this machine and its components
     * ("machine", "machine.tlb", "machine.pwc", "machine.hpmp",
     * "machine.hpmp.pmptw_cache") with a registry for dumping.
     */
    void registerStats(StatRegistry &registry);

  private:
    Machine(const MachineParams &params, std::unique_ptr<PhysMem> owned,
            PhysMem *shared, const std::string &stat_prefix,
            unsigned hart_id);

    MachineParams params_;
    std::unique_ptr<PhysMem> ownedMem_; //!< null when DRAM is shared
    PhysMem *mem_;
    std::unique_ptr<MemoryHierarchy> hier_;
    std::unique_ptr<HpmpUnit> hpmp_;
    std::unique_ptr<Tlb> tlb_;
    std::unique_ptr<Pwc> pwc_;

    bool translationOn_ = false;
    Addr satpRoot_ = 0;
    PagingMode mode_ = PagingMode::Sv39;
    PrivMode priv_ = PrivMode::Supervisor;
    unsigned hartId_ = 0;
    SatpFenceHook satpFenceHook_;

    /** The access path proper (stats wrapper lives in access()). */
    AccessOutcome accessInner(Addr va, AccessType type);

    /**
     * Consume poison on [pa, pa+len): returns MachineCheck (and tags
     * `out` with the address + origin) when the range carries an
     * uncorrectable-error mark, None otherwise. Fail closed: the
     * faulting reference never returns data.
     */
    Fault consumePoison(Addr pa, uint64_t len, RefOrigin origin,
                        AccessOutcome &out);

    /** Data-reference poison check, including the ras.poison_on_fill
     *  injection site (fires only when armed by name). */
    Fault dataPoisonCheck(Addr pa, AccessOutcome &out);

    StatGroup stats_;
    StatGroup tlbStats_;
    StatGroup pwcStats_;
    StatGroup hpmpStats_;
    StatGroup pmptwStats_;
    Counter statAccesses_;
    Counter statWalks_;
    Counter statPtRefs_;
    Counter statPmptRefs_;
    Counter statPageFaults_;
    Counter statAccessFaults_;
    Counter statMachineChecks_;
    Distribution statWalkCycles_; //!< end-to-end cycles of TLB-miss accesses
    RefAttribution attr_{stats_};

    static constexpr unsigned kL2TlbPenalty = 2;
};

} // namespace hpmp

#endif // HPMP_CORE_MACHINE_H
