/**
 * @file
 * Machine configurations mirroring Table 1 of the paper.
 *
 * Two cores are modelled: RocketCore (5-stage in-order scalar, 1 GHz)
 * and SonicBOOM (4-way superscalar out-of-order, 3.2 GHz). Cache and
 * TLB geometry follows Table 1; latencies are calibrated so that the
 * relative shapes of the paper's figures reproduce (absolute cycle
 * counts necessarily differ from the FPGA prototype).
 */

#ifndef HPMP_CORE_PARAMS_H
#define HPMP_CORE_PARAMS_H

#include <string>

#include "mem/hierarchy.h"

namespace hpmp
{

/** Which core is being modelled. */
enum class CoreKind { Rocket, Boom };

/** Application-level timing knobs for the core model. */
struct CoreTimingParams
{
    double freqGHz = 1.0;
    double baseCpi = 1.0;   //!< CPI with all memory hitting L1
    /**
     * Fraction of each memory-stall cycle that is exposed (cannot be
     * hidden by out-of-order execution). 1.0 for the in-order Rocket;
     * BOOM hides a large part of data-miss latency but page walks are
     * a serial dependence chain, so walk cycles use walkOverlap.
     */
    double memOverlap = 1.0;
    double walkOverlap = 1.0;
};

/** Full machine configuration. */
struct MachineParams
{
    CoreKind kind = CoreKind::Rocket;
    std::string name = "rocket";

    uint64_t physMemBytes = 16_GiB; //!< Table 1: 16 GB DDR3

    HierarchyParams hier;

    unsigned l1TlbEntries = 32;     //!< fully associative
    unsigned l2TlbEntries = 1024;   //!< direct mapped
    unsigned pwcEntries = 8;        //!< "PTECache 8 entries"
    unsigned pmptwEntries = 0;      //!< PMPTW-Cache disabled by default
    unsigned hpmpEntries = 16;
    /**
     * Fixed issue cost per pmpte reference: the PMPT walker occupies
     * its port and serializes against the access even when the entry
     * hits in the L1 cache.
     */
    unsigned pmptwStepCycles = 4;

    CoreTimingParams timing;
};

/** RocketCore configuration (Table 1, 1 GHz SoC). */
MachineParams rocketParams();

/** BOOM configuration (Table 1, 3.2 GHz SoC). */
MachineParams boomParams();

/** Lookup by kind. */
MachineParams machineParams(CoreKind kind);

} // namespace hpmp

#endif // HPMP_CORE_PARAMS_H
