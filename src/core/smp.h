/**
 * @file
 * SMP machine model: N harts over one physical memory.
 *
 * SmpSystem owns N Machines that share a single PhysMem (and with it
 * the DRAM-resident page tables and PMP Tables) while keeping every
 * per-hart structure private: TLB, PWC, HPMP register file and
 * PMPTW-Cache, L1/L2 caches. That split is exactly what makes remote
 * fences a correctness problem — a monitor mutation reprograms the
 * *initiating* hart's view synchronously, but every other hart keeps
 * serving translations from its own cached state until an IPI reaches
 * it (the shootdown window, DESIGN.md §9).
 *
 * Everything here is deterministic: the interleaving scheduler is a
 * seeded xoshiro stream (or strict round-robin), so any concurrency
 * failure replays exactly from {seed, hart count, op count}.
 *
 * A single-hart SmpSystem is bit-identical to a standalone Machine:
 * hart 0 keeps the "machine" stat prefix, remote loops are empty, and
 * no IPI cost or stat moves.
 */

#ifndef HPMP_CORE_SMP_H
#define HPMP_CORE_SMP_H

#include <functional>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "base/stats.h"
#include "core/machine.h"

namespace hpmp
{

class VirtMachine;

/**
 * Steps of the modelled IPI/remote-fence protocol, published to the
 * interleave hook so checkers can inject victim-hart accesses at every
 * boundary of the shootdown window.
 */
enum class IpiPhase : uint8_t
{
    WindowBegin, //!< initiator committed new state; no IPI sent yet
    Posted,      //!< IPI posted to dstHart, not yet delivered
    Delivered,   //!< dstHart ran its fence handler (synced + flushed)
    Acked,       //!< dstHart's ack observed by the initiator
    WindowEnd,   //!< all harts fenced and acked; window closed
    SatpFence,   //!< remote fence from a satp write (no layout change)
    HfenceFence, //!< remote guest fence from a vsatp/hgatp write
    /**
     * A later layout commit joined an already-open coalesced shootdown
     * window (srcHart == dstHart == the committing hart). Checkers
     * must refresh their mid-window oracle here: the canonical state
     * the window will fence everyone to just moved forward.
     */
    CoalescedCommit,
};

const char *toString(IpiPhase phase);

/** One step of a shootdown, as seen by the interleave hook. */
struct IpiEvent
{
    IpiPhase phase = IpiPhase::WindowBegin;
    unsigned srcHart = 0; //!< initiating hart
    unsigned dstHart = 0; //!< target hart (== srcHart for window marks)
    uint64_t seq = 0;     //!< shootdown sequence number, monotonic
};

/**
 * Observer interleaved into every IPI protocol step. The monitor (and
 * the satp fence path) call this *mid-window*, which is the whole
 * point: implementations drive accesses on other harts while some of
 * them are still unfenced, to hunt stale-translation grants.
 */
class InterleaveHook
{
  public:
    virtual ~InterleaveHook() = default;
    virtual void onIpiStep(const IpiEvent &event) = 0;
};

struct SmpParams
{
    unsigned harts = 1;
    uint64_t schedSeed = 1;  //!< seed of the interleaving stream
    bool roundRobin = false; //!< strict RR instead of the seeded stream
};

/**
 * One hart's translation CSR state, as captured for a whole-domain
 * migration checkpoint (DESIGN.md §12). Pure architectural values — no
 * cached microarchitectural state travels with a migration, so the
 * destination hart starts cold and its first guest access pays the
 * full hgatp-switch + TLB-miss walk.
 */
struct HartContext
{
    bool translationOn = false;
    Addr satpRoot = 0;
    PagingMode pagingMode = PagingMode::Sv39;
    PrivMode priv = PrivMode::Supervisor;
    bool virt = false; //!< the three virt fields below are meaningful
    Addr vsatpRoot = 0;
    Addr hgatpRoot = 0;
    PrivMode guestPriv = PrivMode::Supervisor;
};

class SmpSystem
{
  public:
    SmpSystem(const MachineParams &mp, const SmpParams &sp);
    ~SmpSystem();

    unsigned numHarts() const { return unsigned(harts_.size()); }
    Machine &hart(unsigned h) { return *harts_.at(h); }
    const Machine &hart(unsigned h) const { return *harts_.at(h); }
    PhysMem &mem() { return *mem_; }
    const SmpParams &params() const { return params_; }

    /**
     * The hart executing now — monitor calls attribute their work (and
     * skip the self-IPI) to this hart. Pure bookkeeping: the caller
     * drives one hart at a time, this records which.
     */
    unsigned currentHart() const { return currentHart_; }
    void setCurrentHart(unsigned h);

    /** Scheduler: next hart in the deterministic interleaving. */
    unsigned pickHart();

    /**
     * External scheduler-decision controller (the model checker):
     * while installed, pickHart() asks the hook for the next hart
     * instead of the seeded stream or the round-robin cursor, so every
     * pickHart-level choice becomes a recordable, replayable decision
     * of an explicit-state enumeration. Clear with nullptr.
     */
    using SchedHook = std::function<unsigned(unsigned numHarts)>;
    void setSchedHook(SchedHook hook) { schedHook_ = std::move(hook); }
    bool hasSchedHook() const { return bool(schedHook_); }

    /** The scheduler's stream, for hooks that need more decisions. */
    Rng &schedRng() { return schedRng_; }

    /**
     * Run one closure per hart, interleaved by the scheduler until
     * every task has returned false ("done"). Each invocation runs one
     * *step* of the task on its hart; currentHart() tracks the choice.
     */
    using HartTask = std::function<bool(Machine &)>;
    void runInterleaved(std::vector<HartTask> tasks);

    /** Install (or clear, with nullptr) the interleave observer. */
    void setInterleaveHook(InterleaveHook *hook) { hook_ = hook; }
    InterleaveHook *interleaveHook() { return hook_; }

    /** Publish one protocol step to the hook (monitor/satp paths). */
    void notifyStep(const IpiEvent &event);

    /** Next shootdown sequence number (monotonic, shared). */
    uint64_t nextIpiSeq() { return ++ipiSeq_; }

    /**
     * The global monitor lock: one monitor call in flight at a time.
     * tryAcquire fails (and counts the contention) when another hart
     * holds it — the caller surfaces MonitorError::LockContended
     * without touching any state.
     */
    bool tryAcquireMonitorLock(unsigned hart);
    void releaseMonitorLock(unsigned hart);
    bool monitorLocked() const { return lockHeld_; }
    unsigned lockOwner() const { return lockOwner_; }

    /**
     * Attach a VirtMachine to every hart (idempotent). Guests share
     * the physical memory through their host harts; vsatp/hgatp writes
     * on any guest route through hfenceShootdown, so remote harts are
     * fenced with the same IPI accounting Machine::setSatp gets from
     * the satp shootdown.
     */
    void enableVirt();
    bool virtEnabled() const { return !virtHarts_.empty(); }
    VirtMachine &virtHart(unsigned h) { return *virtHarts_.at(h); }

    /**
     * Capture hart `h`'s translation CSRs for a migration checkpoint
     * (suspend/extract). Read-only: the source hart keeps running.
     */
    HartContext extractHartContext(unsigned h) const;

    /**
     * Install a captured context on hart `h`. satp goes through
     * setSatp (local sfence + satp shootdown) and the virt state
     * through setVsatp/setHgatp (hfence shootdowns), so siblings are
     * fenced with full IPI accounting and the hart arrives with cold
     * TLBs — exactly the state a freshly migrated-in vCPU must resume
     * from. Contexts with `virt` set require virtEnabled().
     */
    void applyHartContext(unsigned h, const HartContext &ctx);

    /**
     * Record one elided guest-fence shootdown: the monitor skipped the
     * hfence IPIs because the layout diff was empty (same-domain
     * re-switch fast path).
     */
    void noteHfenceElided() { ++statHfenceElided_; }

    /** "smp" group: satp shootdowns, lock traffic, hook steps. */
    StatGroup &stats() { return stats_; }

    /**
     * Register the "smp" group plus every hart's groups ("machine",
     * "hart<N>.machine", ...) with a registry for dumping.
     */
    void registerStats(StatRegistry &registry);

  private:
    /** Remote-fence handler for a satp write on hart `writer`. */
    void satpShootdown(Machine &writer);

    /** Remote-fence handler for a vsatp/hgatp write on `writer`. */
    void hfenceShootdown(VirtMachine &writer, bool gstage);

    SmpParams params_;
    std::unique_ptr<PhysMem> mem_;
    std::vector<std::unique_ptr<Machine>> harts_;
    std::vector<std::unique_ptr<VirtMachine>> virtHarts_;
    Rng schedRng_;
    SchedHook schedHook_;
    unsigned rrNext_ = 0;
    unsigned currentHart_ = 0;
    InterleaveHook *hook_ = nullptr;
    uint64_t ipiSeq_ = 0;

    bool lockHeld_ = false;
    unsigned lockOwner_ = 0;

    StatGroup stats_{"smp"};
    Counter statSatpShootdowns_;   //!< satp writes that fenced siblings
    Counter statSatpRemoteFences_; //!< per-hart remote fences performed
    Counter statSatpIpiRetries_;   //!< lost satp IPIs re-sent (never skipped)
    Counter statHfenceShootdowns_;   //!< vsatp/hgatp writes fencing siblings
    Counter statHfenceRemoteFences_; //!< per-hart remote guest fences
    Counter statHfenceIpiRetries_;   //!< lost hfence IPIs re-sent
    Counter statHfenceElided_;       //!< guest fences skipped on empty diffs
    Counter statLockAcquisitions_;
    Counter statLockContended_;
    Counter statSchedPicks_;
    Counter statHookSteps_;
};

} // namespace hpmp

#endif // HPMP_CORE_SMP_H
