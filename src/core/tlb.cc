#include "core/tlb.h"

#include "base/bitfield.h"
#include "base/fault_inject.h"
#include "base/trace.h"

namespace hpmp
{

Tlb::Tlb(unsigned l1_entries, unsigned l2_entries)
    : l1Entries_(l1_entries),
      l2Entries_(l2_entries),
      l1_(l1_entries),
      l1Index_(l1_entries),
      l2_(l2_entries)
{
    if (isPowerOf2(l2_entries)) {
        l2Pow2_ = true;
        l2Mask_ = l2_entries - 1;
    }
}

void
Tlb::fill(Addr va, Addr pa_base, Perm perm, Perm phys_perm, bool user,
          unsigned level, Perm g_perm)
{
    // A dropped fill is benign — the next access just misses again —
    // which is exactly why the fuzzer is allowed to drop them.
    if (FAULT_POINT("tlb.fill"))
        return;
    DPRINTF(Tlb, "fill va=%#lx pa=%#lx level=%u\n", va, pa_base, level);

    TlbEntry entry;
    entry.vpn = pageNumber(va) >> (9 * level);
    entry.ppn = pageNumber(pa_base);
    entry.level = uint8_t(level);
    entry.perm = perm;
    entry.physPerm = phys_perm;
    entry.gPerm = g_perm;
    entry.user = user;
    entry.valid = true;

    // An existing entry that already translates va is replaced in
    // place (a refill after the mapping changed under the TLB).
    bool installed = false;
    const uint64_t vpn = pageNumber(va);
    for (unsigned lvl = 0; lvl < kMaxLeafLevels && !installed; ++lvl) {
        if (levelCount_[lvl] == 0)
            continue;
        const uint32_t slot = l1Index_.find(keyFor(vpn >> (9 * lvl), lvl));
        if (slot == LruIndex::kNone)
            continue;
        if (lvl == level) {
            l1_[slot] = entry;
            l1Index_.touch(slot);
        } else {
            decLevel(lvl);
            l1_[slot].valid = false;
            l1Index_.erase(slot);
            installL1(entry);
        }
        installed = true;
    }
    if (!installed)
        installL1(entry);

    // The direct-mapped L2 only holds base pages.
    if (level == 0)
        l2_[l2SlotOf(pageNumber(va))] = entry;
}

void
Tlb::flushAll()
{
    DPRINTF(Tlb, "flushAll\n");
    for (auto &entry : l1_)
        entry.valid = false;
    l1Index_.clear();
    for (unsigned lvl = 0; lvl < kMaxLeafLevels; ++lvl)
        levelCount_[lvl] = 0;
    levelMask_ = 0;
    for (auto &entry : l2_)
        entry.valid = false;
}

void
Tlb::flushPage(Addr va)
{
    const uint64_t vpn = pageNumber(va);
    for (unsigned lvl = 0; lvl < kMaxLeafLevels; ++lvl) {
        if (levelCount_[lvl] == 0)
            continue;
        const uint32_t slot = l1Index_.find(keyFor(vpn >> (9 * lvl), lvl));
        if (slot != LruIndex::kNone) {
            decLevel(lvl);
            l1_[slot].valid = false;
            l1Index_.erase(slot);
        }
    }
    TlbEntry &slot = l2_[l2SlotOf(vpn)];
    if (slot.valid && slot.level == 0 && slot.vpn == vpn)
        slot.valid = false;
}

void
Tlb::resetStats()
{
    l1Hits_.reset();
    l2Hits_.reset();
    misses_.reset();
}

void
Tlb::registerStats(StatGroup &group)
{
    group.add("l1_hits", &l1Hits_);
    group.add("l2_hits", &l2Hits_);
    group.add("misses", &misses_);
    hitRate_ = Formula([this]() {
        const double total =
            double(l1Hits_.value() + l2Hits_.value() + misses_.value());
        return total ? double(l1Hits_.value() + l2Hits_.value()) / total
                     : 0.0;
    });
    group.add("hit_rate", &hitRate_);
}

} // namespace hpmp
