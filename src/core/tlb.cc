#include "core/tlb.h"

namespace hpmp
{

Tlb::Tlb(unsigned l1_entries, unsigned l2_entries)
    : l1Entries_(l1_entries),
      l2Entries_(l2_entries),
      l1_(l1_entries),
      l1Lru_(l1_entries, 0),
      l2_(l2_entries)
{
}

std::optional<TlbEntry>
Tlb::lookup(Addr va, TlbHitLevel *level)
{
    const uint64_t vpn = pageNumber(va);

    for (unsigned i = 0; i < l1Entries_; ++i) {
        if (l1_[i].matches(va)) {
            l1Lru_[i] = ++lruClock_;
            ++l1Hits_;
            if (level)
                *level = TlbHitLevel::L1;
            return l1_[i];
        }
    }

    TlbEntry &slot = l2_[vpn % l2Entries_];
    if (slot.valid && slot.level == 0 && slot.vpn == vpn) {
        ++l2Hits_;
        if (level)
            *level = TlbHitLevel::L2;
        // Promote into L1.
        unsigned victim = 0;
        for (unsigned i = 1; i < l1Entries_; ++i) {
            if (!l1_[i].valid) { victim = i; break; }
            if (l1Lru_[i] < l1Lru_[victim] && l1_[victim].valid)
                victim = i;
        }
        l1_[victim] = slot;
        l1Lru_[victim] = ++lruClock_;
        return slot;
    }

    ++misses_;
    if (level)
        *level = TlbHitLevel::Miss;
    return std::nullopt;
}

void
Tlb::fill(Addr va, Addr pa_base, Perm perm, Perm phys_perm, bool user,
          unsigned level)
{
    TlbEntry entry;
    entry.vpn = pageNumber(va) >> (9 * level);
    entry.ppn = pageNumber(pa_base);
    entry.level = uint8_t(level);
    entry.perm = perm;
    entry.physPerm = phys_perm;
    entry.user = user;
    entry.valid = true;

    unsigned victim = 0;
    for (unsigned i = 0; i < l1Entries_; ++i) {
        if (l1_[i].matches(va)) { victim = i; break; }
        if (!l1_[i].valid) { victim = i; break; }
        if (l1Lru_[i] < l1Lru_[victim])
            victim = i;
    }
    l1_[victim] = entry;
    l1Lru_[victim] = ++lruClock_;

    // The direct-mapped L2 only holds base pages.
    if (level == 0)
        l2_[pageNumber(va) % l2Entries_] = entry;
}

void
Tlb::flushAll()
{
    for (auto &entry : l1_)
        entry.valid = false;
    for (auto &entry : l2_)
        entry.valid = false;
}

void
Tlb::flushPage(Addr va)
{
    for (auto &entry : l1_) {
        if (entry.matches(va))
            entry.valid = false;
    }
    TlbEntry &slot = l2_[pageNumber(va) % l2Entries_];
    if (slot.valid && slot.level == 0 && slot.vpn == pageNumber(va))
        slot.valid = false;
}

void
Tlb::resetStats()
{
    l1Hits_.reset();
    l2Hits_.reset();
    misses_.reset();
}

} // namespace hpmp
