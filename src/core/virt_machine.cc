#include "core/virt_machine.h"

#include "base/trace.h"

namespace hpmp
{

VirtMachine::VirtMachine(const MachineParams &params)
    : VirtMachine(std::make_unique<Machine>(params), nullptr,
                  "virt_machine")
{
}

VirtMachine::VirtMachine(Machine &host, const std::string &stat_prefix)
    : VirtMachine(nullptr, &host, stat_prefix)
{
}

VirtMachine::VirtMachine(std::unique_ptr<Machine> owned, Machine *host,
                         const std::string &stat_prefix)
    : ownedMachine_(std::move(owned)),
      machine_(ownedMachine_ ? *ownedMachine_ : *host),
      combinedTlb_(machine_.params().l1TlbEntries,
                   machine_.params().l2TlbEntries),
      gStageTlb_(machine_.params().l1TlbEntries,
                 machine_.params().l2TlbEntries),
      vsPwc_(machine_.params().pwcEntries),
      stats_(stat_prefix),
      tlbStats_(stat_prefix + ".tlb"),
      gtlbStats_(stat_prefix + ".gtlb"),
      vsPwcStats_(stat_prefix + ".vs_pwc")
{
    // The host side runs bare; all translation happens here.
    machine_.setBare();

    stats_.add("accesses", &statAccesses_);
    stats_.add("tlb_hits", &statTlbHits_);
    stats_.add("walks", &statWalks_);
    stats_.add("npt_refs", &statNptRefs_);
    stats_.add("gpt_refs", &statGptRefs_);
    stats_.add("data_refs", &statDataRefs_);
    stats_.add("pmpt_refs", &statPmptRefs_);
    stats_.add("gtlb_hits", &statGTlbHits_);
    stats_.add("faults", &statFaults_);
    stats_.add("walk_cycles", &statWalkCycles_);
    combinedTlb_.registerStats(tlbStats_);
    gStageTlb_.registerStats(gtlbStats_);
    vsPwc_.registerStats(vsPwcStats_);

    gtlbHooks_.lookup =
        [this](Addr gpa_page, AccessType t) -> std::optional<GStageHit> {
        if (auto e = gStageTlb_.lookup(gpa_page)) {
            // Enforce the cached G-stage leaf permission: a miss here
            // routes the access to the full G-stage walk, which
            // raises the proper guest page fault.
            if (e->perm.allows(t))
                return GStageHit{pageAddr(e->ppn), e->perm};
        }
        return std::nullopt;
    };
    gtlbHooks_.fill = [this](Addr gpa_page, Addr spa_page, Perm perm) {
        gStageTlb_.fill(gpa_page, spa_page, perm, Perm::rwx(), true);
    };
    pwcHooks_.lookup = [this](unsigned level, Addr va) {
        return vsPwc_.lookup(level, va);
    };
    pwcHooks_.fill = [this](unsigned level, Addr va, Pte pte) {
        vsPwc_.fill(level, va, pte);
    };
}

void
VirtMachine::setVsatp(Addr root_pa)
{
    vsatpRoot_ = root_pa;
    hfenceVvma();
    if (hfenceHook_)
        hfenceHook_(*this, /*gstage=*/false);
}

void
VirtMachine::setHgatp(Addr root_pa)
{
    hgatpRoot_ = root_pa;
    hfenceGvma();
    if (hfenceHook_)
        hfenceHook_(*this, /*gstage=*/true);
}

void
VirtMachine::restoreVirtState(Addr vsatp_root, Addr hgatp_root,
                              PrivMode guest_priv)
{
    vsatpRoot_ = vsatp_root;
    hgatpRoot_ = hgatp_root;
    guestPriv_ = guest_priv;
    hfenceGvma();
}

void
VirtMachine::hfenceVvma()
{
    combinedTlb_.flushAll();
    vsPwc_.flush();
}

void
VirtMachine::hfenceGvma()
{
    gStageTlb_.flushAll();
    combinedTlb_.flushAll();
    vsPwc_.flush();
}

void
VirtMachine::coldReset()
{
    hfenceGvma();
    machine_.coldReset();
}

void
VirtMachine::registerStats(StatRegistry &registry)
{
    registry.add(&stats_);
    registry.add(&tlbStats_);
    registry.add(&gtlbStats_);
    registry.add(&vsPwcStats_);
    // A wrapped host hart's groups are registered by its owner (the
    // SmpSystem); adding them again here would collide in the registry.
    if (ownedMachine_)
        machine_.registerStats(registry);
}

void
VirtMachine::account(const VirtAccessOutcome &out)
{
    ++statAccesses_;
    if (out.tlbHit) {
        ++statTlbHits_;
    } else {
        ++statWalks_;
        statWalkCycles_.sample(out.cycles);
    }
    statNptRefs_ += out.nptRefs;
    statGptRefs_ += out.gptRefs;
    statDataRefs_ += out.dataRefs;
    statPmptRefs_ += out.pmptRefs;
    statGTlbHits_ += out.gTlbHits;
    if (!out.ok())
        ++statFaults_;
}

VirtAccessOutcome
VirtMachine::access(Addr gva, AccessType type)
{
    VirtAccessOutcome out = accessInner(gva, type);
    account(out);
    return out;
}

VirtBatchOutcome
VirtMachine::accessBatch(std::span<const AccessRequest> reqs)
{
    VirtBatchOutcome batch;
    for (const AccessRequest &req : reqs) {
        const VirtAccessOutcome out = accessInner(req.va, req.type);
        ++batch.accesses;
        if (out.tlbHit)
            ++batch.tlbHits;
        else
            statWalkCycles_.sample(out.cycles);
        if (!out.ok())
            ++batch.faults;
        batch.cycles += out.cycles;
        batch.nptRefs += out.nptRefs;
        batch.gptRefs += out.gptRefs;
        batch.dataRefs += out.dataRefs;
        batch.pmptRefs += out.pmptRefs;
        batch.gTlbHits += out.gTlbHits;
    }
    statAccesses_ += batch.accesses;
    statTlbHits_ += batch.tlbHits;
    statWalks_ += batch.accesses - batch.tlbHits;
    statNptRefs_ += batch.nptRefs;
    statGptRefs_ += batch.gptRefs;
    statDataRefs_ += batch.dataRefs;
    statPmptRefs_ += batch.pmptRefs;
    statGTlbHits_ += batch.gTlbHits;
    statFaults_ += batch.faults;
    return batch;
}

VirtAccessOutcome
VirtMachine::accessInner(Addr gva, AccessType type)
{
    VirtAccessOutcome out;
    const bool is_store = type == AccessType::Store;
    const bool is_fetch = type == AccessType::Fetch;

    // Combined-TLB hit: inlined permissions, data reference only. The
    // entry carries the real VS-stage U bit / permissions, the real
    // G-stage leaf permission and the inlined physical permission, so
    // the same checks fire as on the full-walk path.
    if (auto entry = combinedTlb_.lookup(gva)) {
        out.tlbHit = true;
        Pte shadow = Pte::leaf(0, entry->perm, entry->user, true, true);
        out.fault = checkLeafPerms(shadow, type, guestPriv_, true);
        if (out.fault == Fault::None && !entry->gPerm.allows(type))
            out.fault = guestPageFaultFor(type);
        if (out.fault == Fault::None && !entry->physPerm.allows(type))
            out.fault = accessFaultFor(type);
        if (out.fault != Fault::None)
            return out;
        const Addr spa = entry->translate(gva);
        if (machine_.mem().isPoisoned(spa, 8)) {
            out.fault = Fault::MachineCheck;
            out.poisonAddr = spa;
            out.poisonOrigin = RefOrigin::Data;
            return out;
        }
        const uint64_t data_cycles =
            machine_.hier().access(spa, is_store, is_fetch).cycles;
        out.cycles += data_cycles;
        attr_.record(RefOrigin::Data, data_cycles);
        out.dataRefs = 1;
        return out;
    }

    // Full two-stage walk with the G-stage TLB and guest PWC hooks.
    TwoStageConfig config;
    TwoStageResult walk =
        walkTwoStage(machine_.mem(), vsatpRoot_, hgatpRoot_, gva, type,
                     guestPriv_, config, &gtlbHooks_, &pwcHooks_);
    out.gTlbHits = walk.gstageTlbHits;

    // Replay the supervisor-physical references: protection check
    // first, then the memory reference itself.
    AccessOutcome check_out;
    for (const VirtRef &ref : walk.refs) {
        const AccessType ref_type =
            ref.kind == VirtRefKind::Data
                ? type
                : (ref.write ? AccessType::Store : AccessType::Load);
        out.fault = machine_.checkPhys(ref.spa, ref_type, check_out);
        out.cycles += check_out.cycles;
        out.pmptRefs += check_out.pmptRefs;
        if (out.fault == Fault::MachineCheck) {
            // Poisoned pmpte consumed inside the physical check.
            out.poisonAddr = check_out.poisonAddr;
            out.poisonOrigin = check_out.poisonOrigin;
        }
        check_out = AccessOutcome{};
        if (out.fault != Fault::None)
            return out;

        // Poisoned GPT/NPT page or guest data line: consumed by the
        // two-stage walker, before any TLB/PWC state is derived from
        // the poisoned bytes.
        if (machine_.mem().isPoisoned(ref.spa, 8)) {
            out.fault = Fault::MachineCheck;
            out.poisonAddr = ref.spa;
            switch (ref.kind) {
              case VirtRefKind::NptPage:
                out.poisonOrigin = nptOrigin(ref.level);
                break;
              case VirtRefKind::GptPage:
                out.poisonOrigin = gptOrigin(ref.level);
                break;
              case VirtRefKind::Data:
                out.poisonOrigin = RefOrigin::Data;
                break;
            }
            return out;
        }

        const uint64_t ref_cycles =
            machine_.hier().access(ref.spa, ref.write,
                                   ref.kind == VirtRefKind::Data &&
                                       is_fetch).cycles;
        out.cycles += ref_cycles;
        switch (ref.kind) {
          case VirtRefKind::NptPage:
            attr_.record(nptOrigin(ref.level), ref_cycles);
            ++out.nptRefs;
            break;
          case VirtRefKind::GptPage:
            attr_.record(gptOrigin(ref.level), ref_cycles);
            ++out.gptRefs;
            break;
          case VirtRefKind::Data:
            attr_.record(RefOrigin::Data, ref_cycles);
            ++out.dataRefs;
            break;
        }
    }

    if (!walk.ok()) {
        out.fault = walk.fault;
        return out;
    }

    DPRINTF(Walk,
            "3D gva=%#lx spa=%#lx npt=%u gpt=%u pmpt=%u cycles=%lu\n",
            gva, walk.spa, out.nptRefs, out.gptRefs, out.pmptRefs,
            (unsigned long)out.cycles);
    TRACE_EVENT(Walk, statAccesses_.value(), out.cycles, "3d_walk", gva,
                walk.spa);

    // Cache the combined translation at the largest size both stages
    // map contiguously, with the real leaf attributes.
    const unsigned level = walk.combinedLeafLevel();
    const uint64_t span = pageSizeAtLevel(level);
    combinedTlb_.fill(gva, walk.spa - (gva & (span - 1)), walk.perm,
                      machine_.physPermProbe(walk.spa), walk.user,
                      level, walk.gPerm);
    return out;
}

} // namespace hpmp
