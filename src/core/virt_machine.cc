#include "core/virt_machine.h"

namespace hpmp
{

VirtMachine::VirtMachine(const MachineParams &params)
    : machine_(params),
      combinedTlb_(params.l1TlbEntries, params.l2TlbEntries),
      gStageTlb_(params.l1TlbEntries, params.l2TlbEntries),
      vsPwc_(params.pwcEntries)
{
    // The host side runs bare; all translation happens here.
    machine_.setBare();
}

void
VirtMachine::hfenceVvma()
{
    combinedTlb_.flushAll();
    vsPwc_.flush();
}

void
VirtMachine::hfenceGvma()
{
    gStageTlb_.flushAll();
    combinedTlb_.flushAll();
    vsPwc_.flush();
}

void
VirtMachine::coldReset()
{
    hfenceGvma();
    machine_.coldReset();
}

VirtAccessOutcome
VirtMachine::access(Addr gva, AccessType type)
{
    VirtAccessOutcome out;
    const bool is_store = type == AccessType::Store;
    const bool is_fetch = type == AccessType::Fetch;

    // Combined-TLB hit: inlined permissions, data reference only.
    if (auto entry = combinedTlb_.lookup(gva)) {
        out.tlbHit = true;
        Pte shadow = Pte::leaf(0, entry->perm, entry->user, true, true);
        out.fault = checkLeafPerms(shadow, type, guestPriv_, true);
        if (out.fault == Fault::None && !entry->physPerm.allows(type))
            out.fault = accessFaultFor(type);
        if (out.fault != Fault::None)
            return out;
        const Addr spa = entry->translate(gva);
        out.cycles += machine_.hier().access(spa, is_store, is_fetch).cycles;
        out.dataRefs = 1;
        return out;
    }

    // Full two-stage walk with the G-stage TLB and guest PWC hooks.
    GStageTlbHooks gtlb_hooks;
    gtlb_hooks.lookup = [this](Addr gpa_page) -> std::optional<Addr> {
        if (auto e = gStageTlb_.lookup(gpa_page))
            return pageAddr(e->ppn);
        return std::nullopt;
    };
    gtlb_hooks.fill = [this](Addr gpa_page, Addr spa_page) {
        gStageTlb_.fill(gpa_page, spa_page, Perm::rwx(), Perm::rwx(),
                        true);
    };
    VsPwcHooks pwc_hooks;
    pwc_hooks.lookup = [this](unsigned level, Addr va) {
        return vsPwc_.lookup(level, va);
    };
    pwc_hooks.fill = [this](unsigned level, Addr va, Pte pte) {
        vsPwc_.fill(level, va, pte);
    };

    TwoStageConfig config;
    TwoStageResult walk =
        walkTwoStage(machine_.mem(), vsatpRoot_, hgatpRoot_, gva, type,
                     guestPriv_, config, &gtlb_hooks, &pwc_hooks);
    out.gTlbHits = walk.gstageTlbHits;

    // Replay the supervisor-physical references: protection check
    // first, then the memory reference itself.
    AccessOutcome check_out;
    for (const VirtRef &ref : walk.refs) {
        const AccessType ref_type =
            ref.kind == VirtRefKind::Data
                ? type
                : (ref.write ? AccessType::Store : AccessType::Load);
        out.fault = machine_.checkPhys(ref.spa, ref_type, check_out);
        out.cycles += check_out.cycles;
        out.pmptRefs += check_out.pmptRefs;
        check_out = AccessOutcome{};
        if (out.fault != Fault::None)
            return out;

        out.cycles +=
            machine_.hier().access(ref.spa, ref.write,
                                   ref.kind == VirtRefKind::Data &&
                                       is_fetch).cycles;
        switch (ref.kind) {
          case VirtRefKind::NptPage: ++out.nptRefs; break;
          case VirtRefKind::GptPage: ++out.gptRefs; break;
          case VirtRefKind::Data: ++out.dataRefs; break;
        }
    }

    if (!walk.ok()) {
        out.fault = walk.fault;
        return out;
    }

    combinedTlb_.fill(gva, alignDown(walk.spa, kPageSize), walk.perm,
                      machine_.physPermProbe(walk.spa), true);
    return out;
}

} // namespace hpmp
