/**
 * @file
 * Page-Walk Cache (the "PTECache" of Table 1).
 *
 * Fully-associative LRU cache of PTEs keyed by (level, va-prefix). A
 * hit at level L means the walker can skip the memory reference for
 * the level-L entry — including, in protected schemes, the permission
 * check that reference would have needed, which is the interaction
 * Fig. 17 studies.
 *
 * Lookups are O(1): the (level, tag) keys live in an LruIndex hash
 * rather than being scanned linearly, with unchanged hit/miss and
 * true-LRU eviction behaviour.
 */

#ifndef HPMP_CORE_PWC_H
#define HPMP_CORE_PWC_H

#include <cstdint>
#include <optional>
#include <vector>

#include "base/addr.h"
#include "base/indexed_lru.h"
#include "base/stats.h"
#include "pt/pte.h"

namespace hpmp
{

/** Fully-associative page-walk cache. */
class Pwc
{
  public:
    /** @param num_entries 0 disables the cache. */
    explicit Pwc(unsigned num_entries = 8);

    bool enabled() const { return numEntries_ > 0; }
    unsigned numEntries() const { return numEntries_; }

    /** Look up the PTE for `va` at walk level `level`. */
    std::optional<Pte> lookup(unsigned level, Addr va);

    /** Install the PTE read at `level` for `va`. */
    void fill(unsigned level, Addr va, Pte pte);

    /** Invalidate the entry covering va at level, if present. */
    void invalidate(unsigned level, Addr va);

    /** Drop everything (sfence.vma / domain switch). */
    void flush();

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }
    void resetStats() { hits_.reset(); misses_.reset(); }

    /** Register hits/misses and hit_rate into `group`. */
    void registerStats(StatGroup &group);

  private:
    static uint64_t
    keyFor(unsigned level, Addr va)
    {
        // All VA bits that select the level-`level` entry and above,
        // disambiguated by the level itself.
        return ((va >> (kPageShift + 9 * level)) << 3) | level;
    }

    unsigned numEntries_;
    LruIndex index_;
    std::vector<Pte> ptes_; //!< payloads, addressed by index_ slots

    Counter hits_;
    Counter misses_;
    Formula hitRate_;
};

} // namespace hpmp

#endif // HPMP_CORE_PWC_H
