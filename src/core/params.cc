#include "core/params.h"

namespace hpmp
{

MachineParams
rocketParams()
{
    MachineParams p;
    p.kind = CoreKind::Rocket;
    p.name = "rocket";

    // Table 1: 16 KiB L1 I/D, 512 KiB L2, 4 MiB LLC. Latencies in
    // 1 GHz core cycles.
    p.hier.l1i = {"l1i", 16_KiB, 4, 64, 1};
    p.hier.l1d = {"l1d", 16_KiB, 4, 64, 1};
    p.hier.l2 = {"l2", 512_KiB, 8, 64, 12};
    p.hier.llc = {"llc", 4_MiB, 8, 64, 24};
    p.hier.dram = {32, 8192, 36, 66};

    p.timing = {1.0, 1.4, 1.0, 1.0};
    p.pmptwStepCycles = 6;
    return p;
}

MachineParams
boomParams()
{
    MachineParams p;
    p.kind = CoreKind::Boom;
    p.name = "boom";

    // Table 1: 32 KiB 8-way L1 I/D, 512 KiB L2, 4 MiB LLC. Latencies
    // in 3.2 GHz core cycles: the same wall-clock DRAM costs ~3x more
    // cycles than on the 1 GHz Rocket.
    p.hier.l1i = {"l1i", 32_KiB, 8, 64, 2};
    p.hier.l1d = {"l1d", 32_KiB, 8, 64, 2};
    p.hier.l2 = {"l2", 512_KiB, 8, 64, 18};
    p.hier.llc = {"llc", 4_MiB, 8, 64, 40};
    p.hier.dram = {32, 8192, 110, 200};

    // 4-wide OoO: low base CPI, most data-miss latency hidden by the
    // 128-entry ROB, but walk references are serially dependent.
    p.timing = {3.2, 0.45, 0.35, 0.85};
    p.pmptwStepCycles = 8;
    return p;
}

MachineParams
machineParams(CoreKind kind)
{
    return kind == CoreKind::Rocket ? rocketParams() : boomParams();
}

} // namespace hpmp
