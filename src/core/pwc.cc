#include "core/pwc.h"

#include "base/fault_inject.h"
#include "base/trace.h"

namespace hpmp
{

Pwc::Pwc(unsigned num_entries)
    : numEntries_(num_entries),
      index_(num_entries),
      ptes_(num_entries)
{
}

std::optional<Pte>
Pwc::lookup(unsigned level, Addr va)
{
    if (!enabled())
        return std::nullopt;
    const uint32_t slot = index_.find(keyFor(level, va));
    if (slot != LruIndex::kNone) {
        index_.touch(slot);
        ++hits_;
        return ptes_[slot];
    }
    ++misses_;
    return std::nullopt;
}

void
Pwc::fill(unsigned level, Addr va, Pte pte)
{
    if (!enabled())
        return;
    // Benign to drop: the walker re-reads the PTE on the next miss.
    if (FAULT_POINT("pwc.fill"))
        return;
    DPRINTF(Tlb, "pwc fill level=%u va=%#lx\n", level, va);
    const uint64_t key = keyFor(level, va);
    uint32_t slot = index_.find(key);
    if (slot != LruIndex::kNone)
        index_.touch(slot);
    else
        slot = index_.insert(key);
    ptes_[slot] = pte;
}

void
Pwc::invalidate(unsigned level, Addr va)
{
    if (!enabled())
        return;
    const uint32_t slot = index_.find(keyFor(level, va));
    if (slot != LruIndex::kNone)
        index_.erase(slot);
}

void
Pwc::flush()
{
    index_.clear();
}

void
Pwc::registerStats(StatGroup &group)
{
    group.add("hits", &hits_);
    group.add("misses", &misses_);
    hitRate_ = Formula([this]() {
        const double total = double(hits_.value() + misses_.value());
        return total ? double(hits_.value()) / total : 0.0;
    });
    group.add("hit_rate", &hitRate_);
}

} // namespace hpmp
