#include "core/pwc.h"

namespace hpmp
{

Pwc::Pwc(unsigned num_entries)
    : numEntries_(num_entries),
      entries_(num_entries)
{
}

std::optional<Pte>
Pwc::lookup(unsigned level, Addr va)
{
    if (!enabled())
        return std::nullopt;
    const uint64_t tag = tagFor(level, va);
    for (auto &entry : entries_) {
        if (entry.valid && entry.level == level && entry.tag == tag) {
            entry.lru = ++lruClock_;
            ++hits_;
            return entry.pte;
        }
    }
    ++misses_;
    return std::nullopt;
}

void
Pwc::fill(unsigned level, Addr va, Pte pte)
{
    if (!enabled())
        return;
    const uint64_t tag = tagFor(level, va);
    Entry *victim = &entries_[0];
    for (auto &entry : entries_) {
        if (entry.valid && entry.level == level && entry.tag == tag) {
            entry.pte = pte;
            entry.lru = ++lruClock_;
            return;
        }
        if (!entry.valid || (victim->valid && entry.lru < victim->lru))
            victim = &entry;
    }
    *victim = Entry{true, level, tag, pte, ++lruClock_};
}

void
Pwc::invalidate(unsigned level, Addr va)
{
    const uint64_t tag = tagFor(level, va);
    for (auto &entry : entries_) {
        if (entry.valid && entry.level == level && entry.tag == tag)
            entry.valid = false;
    }
}

void
Pwc::flush()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

} // namespace hpmp
