#include "core/pwc.h"

namespace hpmp
{

Pwc::Pwc(unsigned num_entries)
    : numEntries_(num_entries),
      index_(num_entries),
      ptes_(num_entries)
{
}

std::optional<Pte>
Pwc::lookup(unsigned level, Addr va)
{
    if (!enabled())
        return std::nullopt;
    const uint32_t slot = index_.find(keyFor(level, va));
    if (slot != LruIndex::kNone) {
        index_.touch(slot);
        ++hits_;
        return ptes_[slot];
    }
    ++misses_;
    return std::nullopt;
}

void
Pwc::fill(unsigned level, Addr va, Pte pte)
{
    if (!enabled())
        return;
    const uint64_t key = keyFor(level, va);
    uint32_t slot = index_.find(key);
    if (slot != LruIndex::kNone)
        index_.touch(slot);
    else
        slot = index_.insert(key);
    ptes_[slot] = pte;
}

void
Pwc::invalidate(unsigned level, Addr va)
{
    if (!enabled())
        return;
    const uint32_t slot = index_.find(keyFor(level, va));
    if (slot != LruIndex::kNone)
        index_.erase(slot);
}

void
Pwc::flush()
{
    index_.clear();
}

} // namespace hpmp
