/**
 * @file
 * Virtualized-environment machine (paper §6, Figures 8 and 13).
 *
 * Wraps a Machine with the hypervisor-extension translation path:
 * guest accesses walk the guest page table (vsatp, Sv39) through the
 * nested page table (hgatp, Sv39x4), and every supervisor-physical
 * reference — NPT page, guest-PT page or data — goes through the same
 * HPMP permission check and cache hierarchy. Separate combined and
 * G-stage TLBs plus a guest PWC give hfence.vvma / hfence.gvma their
 * distinct costs.
 *
 * Combined-TLB entries carry the real VS-stage leaf U bit and level
 * and the real G-stage leaf permission, so a hit reproduces exactly
 * the faults the full two-stage walk plus physical check would have
 * raised (TLB inlining, §2.2/§7).
 */

#ifndef HPMP_CORE_VIRT_MACHINE_H
#define HPMP_CORE_VIRT_MACHINE_H

#include <memory>
#include <span>
#include <string>

#include "core/machine.h"
#include "pt/two_stage.h"

namespace hpmp
{

/** Outcome of one guest access with the 3D-walk breakdown. */
struct VirtAccessOutcome
{
    Fault fault = Fault::None;
    uint64_t cycles = 0;
    bool tlbHit = false;
    unsigned nptRefs = 0;   //!< nested-PT page references
    unsigned gptRefs = 0;   //!< guest-PT page references
    unsigned dataRefs = 0;
    unsigned pmptRefs = 0;  //!< permission-table references
    unsigned gTlbHits = 0;  //!< G-stage walks short-circuited
    /** Meaningful when fault == MachineCheck: the poisoned physical
     *  address and what kind of reference consumed it. */
    Addr poisonAddr = 0;
    RefOrigin poisonOrigin = RefOrigin::Data;

    bool ok() const { return fault == Fault::None; }
    unsigned totalRefs() const
    {
        return nptRefs + gptRefs + dataRefs + pmptRefs;
    }
};

/** Aggregate outcome of a batched guest replay. */
struct VirtBatchOutcome
{
    uint64_t accesses = 0;
    uint64_t tlbHits = 0;
    uint64_t faults = 0;
    uint64_t cycles = 0;
    uint64_t nptRefs = 0;
    uint64_t gptRefs = 0;
    uint64_t dataRefs = 0;
    uint64_t pmptRefs = 0;
    uint64_t gTlbHits = 0;

    uint64_t totalRefs() const
    {
        return nptRefs + gptRefs + dataRefs + pmptRefs;
    }
};

/** A guest hart running under the hypervisor extension. */
class VirtMachine
{
  public:
    explicit VirtMachine(const MachineParams &params);

    /**
     * Wrap an existing host hart (owned elsewhere, e.g. by an
     * SmpSystem). The host machine's stat groups stay registered by
     * its owner; this instance registers only the virt groups, named
     * `<stat_prefix>`, `<stat_prefix>.tlb`, and so on.
     */
    VirtMachine(Machine &host, const std::string &stat_prefix);

    Machine &machine() { return machine_; }
    PhysMem &mem() { return machine_.mem(); }
    HpmpUnit &hpmp() { return machine_.hpmp(); }
    MemoryHierarchy &hier() { return machine_.hier(); }
    unsigned hartId() const { return machine_.hartId(); }

    /**
     * Fired after a vsatp/hgatp write has applied its local fence
     * (`gstage` tells which kind), so an SMP owner can extend the
     * flush to sibling harts with IPI/remote-fence accounting, the way
     * Machine::setSatp routes through the satp shootdown.
     */
    using HfenceHook = std::function<void(VirtMachine &, bool gstage)>;
    void setHfenceHook(HfenceHook hook) { hfenceHook_ = std::move(hook); }

    /**
     * Guest-table switch: hfence.vvma semantics — guest and combined
     * translations drop, G-stage entries survive.
     */
    void setVsatp(Addr root_pa);
    /** Nested-table switch: hfence.gvma drops everything guest-held. */
    void setHgatp(Addr root_pa);
    void setGuestPriv(PrivMode priv) { guestPriv_ = priv; }

    Addr vsatpRoot() const { return vsatpRoot_; }
    Addr hgatpRoot() const { return hgatpRoot_; }
    PrivMode guestPriv() const { return guestPriv_; }

    /**
     * Restore the virt CSR state captured by a monitor transaction and
     * drop every cached translation (local hfence.gvma) without firing
     * the hfence hook: rollback fences each hart itself, and a nested
     * shootdown from inside the rollback would recurse.
     */
    void restoreVirtState(Addr vsatp_root, Addr hgatp_root,
                          PrivMode guest_priv);

    /** One guest load/store/fetch (the hlv.d path of §8.6). */
    VirtAccessOutcome access(Addr gva, AccessType type);

    /**
     * Batched guest replay: one dispatch for the whole request span,
     * with stats updated in bulk. Faulting accesses are counted and
     * skipped, as in trace replay.
     */
    VirtBatchOutcome accessBatch(std::span<const AccessRequest> reqs);

    /** hfence.vvma: drop guest translations, keep G-stage ones. */
    void hfenceVvma();

    /** hfence.gvma: drop G-stage and combined translations. */
    void hfenceGvma();

    /** Cold caches + all TLBs. */
    void coldReset();

    /** Aggregate counters ("virt_machine.*"). */
    StatGroup &stats() { return stats_; }

    /** TLB/PWC structures, exposed for flush-contract assertions. */
    Tlb &combinedTlb() { return combinedTlb_; }
    Tlb &gStageTlb() { return gStageTlb_; }
    Pwc &vsPwc() { return vsPwc_; }

    /** Per-origin guest reference counts/latencies ("virt_machine.ref.*"). */
    const RefAttribution &refAttr() const { return attr_; }

    /**
     * Register this machine's groups ("virt_machine", its TLB/PWC
     * children) plus the wrapped host machine's groups with a registry.
     */
    void registerStats(StatRegistry &registry);

  private:
    /** Common body of both public constructors. */
    VirtMachine(std::unique_ptr<Machine> owned, Machine *host,
                const std::string &stat_prefix);

    /** The access path proper (stats wrappers live in access()). */
    VirtAccessOutcome accessInner(Addr gva, AccessType type);

    /** Add one outcome to the "virt_machine.*" counters. */
    void account(const VirtAccessOutcome &out);

    std::unique_ptr<Machine> ownedMachine_; //!< set by the owning ctor
    Machine &machine_;                      //!< owned or wrapped host
    Tlb combinedTlb_;  //!< gva -> spa with inlined permissions
    Tlb gStageTlb_;    //!< gpa page -> spa page, with G-stage perms
    Pwc vsPwc_;        //!< guest-PTE cache

    Addr vsatpRoot_ = 0;
    Addr hgatpRoot_ = 0;
    PrivMode guestPriv_ = PrivMode::Supervisor;
    HfenceHook hfenceHook_;

    /** Walk hooks, built once (std::function setup is not free). */
    GStageTlbHooks gtlbHooks_;
    VsPwcHooks pwcHooks_;

    StatGroup stats_;
    StatGroup tlbStats_;
    StatGroup gtlbStats_;
    StatGroup vsPwcStats_;
    Counter statAccesses_;
    Counter statTlbHits_;
    Counter statWalks_;
    Counter statNptRefs_;
    Counter statGptRefs_;
    Counter statDataRefs_;
    Counter statPmptRefs_;
    Counter statGTlbHits_;
    Counter statFaults_;
    Distribution statWalkCycles_; //!< end-to-end cycles of 3D-walk accesses
    RefAttribution attr_{stats_};
};

} // namespace hpmp

#endif // HPMP_CORE_VIRT_MACHINE_H
