#include "core/machine.h"

#include "base/fault_inject.h"
#include "base/logging.h"
#include "base/trace.h"
#include "core/core_model.h"

namespace hpmp
{

Machine::Machine(const MachineParams &params)
    : Machine(params, std::make_unique<PhysMem>(params.physMemBytes),
              nullptr, "machine", 0)
{
}

Machine::Machine(const MachineParams &params, PhysMem &shared_mem,
                 const std::string &stat_prefix, unsigned hart_id)
    : Machine(params, nullptr, &shared_mem, stat_prefix, hart_id)
{
}

Machine::Machine(const MachineParams &params, std::unique_ptr<PhysMem> owned,
                 PhysMem *shared, const std::string &stat_prefix,
                 unsigned hart_id)
    : params_(params),
      ownedMem_(std::move(owned)),
      mem_(shared ? shared : ownedMem_.get()),
      hier_(std::make_unique<MemoryHierarchy>(params.hier)),
      hpmp_(std::make_unique<HpmpUnit>(*mem_, params.hpmpEntries,
                                       params.pmptwEntries)),
      tlb_(std::make_unique<Tlb>(params.l1TlbEntries, params.l2TlbEntries)),
      pwc_(std::make_unique<Pwc>(params.pwcEntries)),
      hartId_(hart_id),
      stats_(stat_prefix),
      tlbStats_(stat_prefix + ".tlb"),
      pwcStats_(stat_prefix + ".pwc"),
      hpmpStats_(stat_prefix + ".hpmp"),
      pmptwStats_(stat_prefix + ".hpmp.pmptw_cache")
{
    stats_.add("accesses", &statAccesses_);
    stats_.add("walks", &statWalks_);
    stats_.add("pt_refs", &statPtRefs_);
    stats_.add("pmpt_refs", &statPmptRefs_);
    stats_.add("page_faults", &statPageFaults_);
    stats_.add("access_faults", &statAccessFaults_);
    stats_.add("machine_checks", &statMachineChecks_);
    stats_.add("walk_cycles", &statWalkCycles_);
    tlb_->registerStats(tlbStats_);
    pwc_->registerStats(pwcStats_);
    hpmp_->registerStats(hpmpStats_);
    hpmp_->pmptwCache().registerStats(pmptwStats_);
}

void
Machine::registerStats(StatRegistry &registry)
{
    registry.add(&stats_);
    registry.add(&tlbStats_);
    registry.add(&pwcStats_);
    registry.add(&hpmpStats_);
    registry.add(&pmptwStats_);
}

namespace
{

/** Classify a fault for the machine-level counters. */
bool
isAccessFault(Fault fault)
{
    return fault == Fault::LoadAccessFault ||
           fault == Fault::StoreAccessFault ||
           fault == Fault::FetchAccessFault;
}

} // namespace

void
Machine::setSatp(Addr root_pa, PagingMode mode)
{
    translationOn_ = true;
    satpRoot_ = root_pa;
    mode_ = mode;
    sfenceVma();
    if (satpFenceHook_)
        satpFenceHook_(*this);
}

void
Machine::sfenceVma()
{
    tlb_->flushAll();
    pwc_->flush();
}

void
Machine::coldReset()
{
    sfenceVma();
    hpmp_->flushCache();
    hier_->flushAll();
}

Fault
Machine::consumePoison(Addr pa, uint64_t len, RefOrigin origin,
                       AccessOutcome &out)
{
    if (!mem_->isPoisoned(pa, len))
        return Fault::None;
    out.poisonAddr = pa;
    out.poisonOrigin = origin;
    return Fault::MachineCheck;
}

Fault
Machine::dataPoisonCheck(Addr pa, AccessOutcome &out)
{
    if (FAULT_POINT_NAMED("ras.poison_on_fill"))
        mem_->poisonLine(pa);
    return consumePoison(pa, 8, RefOrigin::Data, out);
}

Fault
Machine::checkPhys(Addr pa, AccessType type, AccessOutcome &out)
{
    HpmpCheckResult check = hpmp_->check(pa, 8, type, priv_);
    // The walker emits its references root-first, so the first ref's
    // level tells us how deep this table is (for root/mid/leaf
    // attribution). A PMPTW-Cache hit emits no references at all.
    const unsigned levels =
        check.pmptRefs.empty() ? 0 : check.pmptRefs[0].level + 1;
    for (const PmptRef &ref : check.pmptRefs) {
        const uint64_t ref_cycles =
            params_.pmptwStepCycles + hier_->access(ref.pa, false).cycles;
        out.cycles += ref_cycles;
        attr_.record(pmptOrigin(ref.level, levels), ref_cycles);
        ++out.pmptRefs;
        // A poisoned pmpte read is an uncorrectable error consumed by
        // the walker itself. The HPMP walk above already filled the
        // PMPTW cache from the poisoned bytes, so flush it — nothing
        // derived from poison may stay cached (fail closed).
        if (consumePoison(ref.pa, 8, pmptOrigin(ref.level, levels),
                          out) != Fault::None) {
            hpmp_->flushCache();
            return Fault::MachineCheck;
        }
    }
    if (check.viaCache)
        ++out.cycles; // PMPTW-Cache lookup
    return check.fault;
}

Perm
Machine::physPermProbe(Addr pa) const
{
    if (priv_ == PrivMode::Machine)
        return Perm::rwx();
    return hpmp_->probe(pa);
}

AccessOutcome
Machine::access(Addr va, AccessType type)
{
    AccessOutcome out = accessInner(va, type);
    ++statAccesses_;
    if (!out.tlbHit && translationOn_) {
        ++statWalks_;
        statWalkCycles_.sample(out.cycles);
    }
    statPtRefs_ += out.ptRefs + out.adRefs;
    statPmptRefs_ += out.pmptRefs;
    if (out.fault == Fault::MachineCheck)
        ++statMachineChecks_;
    else if (isAccessFault(out.fault))
        ++statAccessFaults_;
    else if (out.fault != Fault::None)
        ++statPageFaults_;
    return out;
}

BatchOutcome
Machine::accessBatch(std::span<const AccessRequest> reqs, CoreModel *model,
                     bool stop_on_fault)
{
    BatchOutcome b;
    for (const AccessRequest &req : reqs) {
        const AccessOutcome out = accessInner(req.va, req.type);
        ++b.completed;
        ++b.accesses;
        if (out.tlbHit)
            ++b.tlbHits;
        else if (translationOn_)
            statWalkCycles_.sample(out.cycles);
        b.cycles += out.cycles;
        b.ptRefs += out.ptRefs;
        b.adRefs += out.adRefs;
        b.pmptRefs += out.pmptRefs;
        b.dataRefs += out.dataRefs;
        b.pwcSkips += out.pwcSkips;
        if (model)
            model->addAccess(out);
        if (!out.ok()) {
            ++b.faults;
            if (b.firstFault == Fault::None)
                b.firstFault = out.fault;
            if (out.fault == Fault::MachineCheck)
                ++statMachineChecks_;
            else if (isAccessFault(out.fault))
                ++statAccessFaults_;
            else
                ++statPageFaults_;
            if (stop_on_fault)
                break;
        }
    }
    statAccesses_ += b.accesses;
    if (translationOn_)
        statWalks_ += b.accesses - b.tlbHits;
    statPtRefs_ += b.ptRefs + b.adRefs;
    statPmptRefs_ += b.pmptRefs;
    return b;
}

AccessOutcome
Machine::accessInner(Addr va, AccessType type)
{
    AccessOutcome out;
    const bool is_store = type == AccessType::Store;
    const bool is_fetch = type == AccessType::Fetch;

    if (!translationOn_) {
        // Bare mode: the physical check still applies (e.g. the host
        // OS running with PMP enabled but paging off).
        out.fault = checkPhys(va, type, out);
        if (out.fault == Fault::None)
            out.fault = dataPoisonCheck(va, out);
        if (out.fault != Fault::None)
            return out;
        const uint64_t data_cycles =
            hier_->access(va, is_store, is_fetch).cycles;
        out.cycles += data_cycles;
        attr_.record(RefOrigin::Data, data_cycles);
        out.dataRefs = 1;
        return out;
    }

    TlbHitLevel hit_level = TlbHitLevel::Miss;
    if (auto entry = tlb_->lookup(va, &hit_level)) {
        out.tlbHit = true;
        if (hit_level == TlbHitLevel::L2)
            out.cycles += kL2TlbPenalty;

        // Privilege/permission checks from the cached entry; the
        // inlined physical permission makes PMP/PMPT activity
        // unnecessary on hits (TLB inlining, §7).
        Pte shadow = Pte::leaf(0, entry->perm, entry->user, true, true);
        out.fault = checkLeafPerms(shadow, type, priv_, true);
        if (out.fault == Fault::None && !entry->physPerm.allows(type))
            out.fault = accessFaultFor(type);
        if (out.fault != Fault::None)
            return out;

        const Addr pa = entry->translate(va);
        out.fault = dataPoisonCheck(pa, out);
        if (out.fault != Fault::None)
            return out;
        const uint64_t data_cycles =
            hier_->access(pa, is_store, is_fetch).cycles;
        out.cycles += data_cycles;
        attr_.record(RefOrigin::Data, data_cycles);
        out.dataRefs = 1;
        return out;
    }

    // TLB miss: functional walk first, then replay its references
    // through the PWC, the protection checker and the hierarchy.
    WalkConfig config;
    config.mode = mode_;
    WalkResult walk = walkPageTable(*mem_, satpRoot_, va, type, priv_,
                                    config);

    for (const PtRef &ref : walk.refs) {
        if (!ref.write) {
            if (pwc_->lookup(ref.level, va)) {
                ++out.pwcSkips;
                continue;
            }
        }
        // The walker's reference must itself pass the physical check.
        const AccessType ref_type =
            ref.write ? AccessType::Store : AccessType::Load;
        out.fault = checkPhys(ref.pa, ref_type, out);
        // Poisoned PT page: the walker consumed the error. Checked
        // before the PWC fill below so poison-derived PTEs are never
        // cached.
        if (out.fault == Fault::None) {
            out.fault = consumePoison(ref.pa, 8,
                                      ref.write ? RefOrigin::AdUpdate
                                                : ptOrigin(ref.level),
                                      out);
        }
        if (out.fault != Fault::None)
            return out;

        const uint64_t ref_cycles = hier_->access(ref.pa, ref.write).cycles;
        out.cycles += ref_cycles;
        if (ref.write) {
            attr_.record(RefOrigin::AdUpdate, ref_cycles);
            ++out.adRefs;
        } else {
            attr_.record(ptOrigin(ref.level), ref_cycles);
            ++out.ptRefs;
            const Pte pte{mem_->read64(ref.pa)};
            if (pte.v())
                pwc_->fill(ref.level, va, pte);
        }
    }

    if (!walk.ok()) {
        out.fault = walk.fault;
        return out;
    }

    // Data reference with its own physical check.
    out.fault = checkPhys(walk.pa, type, out);
    if (out.fault == Fault::None)
        out.fault = dataPoisonCheck(walk.pa, out);
    if (out.fault != Fault::None)
        return out;
    const uint64_t data_cycles =
        hier_->access(walk.pa, is_store, is_fetch).cycles;
    out.cycles += data_cycles;
    attr_.record(RefOrigin::Data, data_cycles);
    out.dataRefs = 1;

    DPRINTF(Walk, "va=%#lx pa=%#lx pt=%u ad=%u pmpt=%u cycles=%lu\n",
            va, walk.pa, out.ptRefs, out.adRefs, out.pmptRefs,
            (unsigned long)out.cycles);
    TRACE_EVENT(Walk, statAccesses_.value(), out.cycles, "walk", va,
                walk.pa);

    const uint64_t span = pageSizeAtLevel(walk.leafLevel);
    tlb_->fill(va, walk.pa - (va & (span - 1)), walk.perm,
               physPermProbe(walk.pa), walk.user, walk.leafLevel);
    return out;
}

} // namespace hpmp
