/**
 * @file
 * Application-level core timing model.
 *
 * Aggregates instruction counts and memory-access outcomes into total
 * cycles. The in-order Rocket exposes every stall cycle; the BOOM
 * model hides part of data-miss latency behind out-of-order execution
 * but exposes most of the (serially dependent) page/permission-walk
 * latency — the asymmetry that makes extra-dimensional walks hurt
 * more on BOOM in relative terms (paper §8).
 */

#ifndef HPMP_CORE_CORE_MODEL_H
#define HPMP_CORE_CORE_MODEL_H

#include "core/machine.h"

namespace hpmp
{

/** Cycle aggregator for one simulated workload run. */
class CoreModel
{
  public:
    explicit CoreModel(const MachineParams &params);

    /** Account n non-memory instructions. */
    void addInstructions(uint64_t n) { instructions_ += n; }

    /** Account one memory access performed on the Machine. */
    void addAccess(const AccessOutcome &outcome);

    /** Account one guest access (virtualized runs). */
    void addStallCycles(uint64_t cycles, bool walk);

    uint64_t instructions() const { return instructions_; }
    uint64_t memAccesses() const { return memAccesses_; }

    /** Total cycles: base CPI work plus exposed stall cycles. */
    uint64_t cycles() const;

    /** Wall-clock seconds at the core's frequency. */
    double seconds() const;

    void reset();

  private:
    CoreTimingParams timing_;
    unsigned l1HitCycles_;
    uint64_t instructions_ = 0;
    uint64_t memAccesses_ = 0;
    double exposedStall_ = 0.0;
};

} // namespace hpmp

#endif // HPMP_CORE_CORE_MODEL_H
