#include "core/core_model.h"

namespace hpmp
{

CoreModel::CoreModel(const MachineParams &params)
    : timing_(params.timing),
      l1HitCycles_(params.hier.l1d.latency)
{
}

void
CoreModel::addAccess(const AccessOutcome &outcome)
{
    ++memAccesses_;
    // The L1-hit portion of the access is covered by the base CPI;
    // anything beyond it is stall, scaled by how much of it the core
    // can hide. Walk-induced stalls (TLB miss) are serially dependent
    // and harder to hide than plain data misses.
    const uint64_t stall =
        outcome.cycles > l1HitCycles_ ? outcome.cycles - l1HitCycles_ : 0;
    const double overlap =
        outcome.tlbHit ? timing_.memOverlap : timing_.walkOverlap;
    exposedStall_ += stall * overlap;
}

void
CoreModel::addStallCycles(uint64_t cycles, bool walk)
{
    ++memAccesses_;
    const uint64_t stall = cycles > l1HitCycles_ ? cycles - l1HitCycles_ : 0;
    exposedStall_ += stall * (walk ? timing_.walkOverlap
                                   : timing_.memOverlap);
}

uint64_t
CoreModel::cycles() const
{
    const double base =
        (instructions_ + memAccesses_) * timing_.baseCpi;
    return static_cast<uint64_t>(base + exposedStall_);
}

double
CoreModel::seconds() const
{
    return cycles() / (timing_.freqGHz * 1e9);
}

void
CoreModel::reset()
{
    instructions_ = 0;
    memAccesses_ = 0;
    exposedStall_ = 0.0;
}

} // namespace hpmp
