/**
 * @file
 * Two-level TLB model with permission inlining.
 *
 * L1 is fully associative (32 entries, Table 1) and L2 is
 * direct-mapped (1024 entries). Entries cache the combined result of
 * translation *and* physical-memory permission checking ("TLB
 * inlining", paper §2.2/§7): a hit therefore requires no PMP/PMPT
 * activity at all, which is why the permission table only costs on
 * TLB misses in all schemes.
 */

#ifndef HPMP_CORE_TLB_H
#define HPMP_CORE_TLB_H

#include <cstdint>
#include <optional>
#include <vector>

#include "base/access.h"
#include "base/addr.h"
#include "base/stats.h"
#include "pt/pte.h"

namespace hpmp
{

/**
 * One cached translation. Superpage leaves (level > 0) are cached at
 * their natural size in the fully-associative L1; the direct-mapped
 * L2 holds 4 KiB entries only (a common split in real designs).
 */
struct TlbEntry
{
    uint64_t vpn = 0;   //!< VPN of the mapping's base, >> 9*level
    uint64_t ppn = 0;   //!< PPN of the mapping's base page
    uint8_t level = 0;  //!< 0 = 4 KiB, 1 = 2 MiB, 2 = 1 GiB
    Perm perm;          //!< leaf PTE permission
    Perm physPerm;      //!< inlined physical (PMP/PMPT) permission
    bool user = false;
    bool valid = false;

    /** True iff this entry translates va. */
    bool
    matches(Addr va) const
    {
        return valid && (pageNumber(va) >> (9 * level)) == vpn;
    }

    /** Physical address for va (which must match). */
    Addr
    translate(Addr va) const
    {
        const uint64_t span_mask = pageSizeAtLevel(level) - 1;
        return pageAddr(ppn) + (va & span_mask);
    }
};

/** Where a TLB lookup hit. */
enum class TlbHitLevel { Miss, L1, L2 };

/** L1 fully-associative + L2 direct-mapped TLB pair. */
class Tlb
{
  public:
    Tlb(unsigned l1_entries, unsigned l2_entries);

    /** Look up va; promotes L2 hits into L1. */
    std::optional<TlbEntry> lookup(Addr va, TlbHitLevel *level = nullptr);

    /**
     * Install a translation. `pa_base` is the physical base of the
     * (possibly super-) page; level > 0 entries go to L1 only.
     */
    void fill(Addr va, Addr pa_base, Perm perm, Perm phys_perm,
              bool user, unsigned level = 0);

    /** sfence.vma with rs1=x0: drop everything. */
    void flushAll();

    /** sfence.vma with a specific page. */
    void flushPage(Addr va);

    uint64_t l1Hits() const { return l1Hits_.value(); }
    uint64_t l2Hits() const { return l2Hits_.value(); }
    uint64_t misses() const { return misses_.value(); }
    void resetStats();

  private:
    unsigned l1Entries_;
    unsigned l2Entries_;
    std::vector<TlbEntry> l1_;
    std::vector<uint64_t> l1Lru_;
    std::vector<TlbEntry> l2_; //!< direct mapped by vpn % l2Entries_
    uint64_t lruClock_ = 0;

    Counter l1Hits_;
    Counter l2Hits_;
    Counter misses_;
};

} // namespace hpmp

#endif // HPMP_CORE_TLB_H
