/**
 * @file
 * Two-level TLB model with permission inlining.
 *
 * L1 is fully associative (32 entries, Table 1) and L2 is
 * direct-mapped (1024 entries). Entries cache the combined result of
 * translation *and* physical-memory permission checking ("TLB
 * inlining", paper §2.2/§7): a hit therefore requires no PMP/PMPT
 * activity at all, which is why the permission table only costs on
 * TLB misses in all schemes.
 *
 * The L1's fully-associative *capacity* semantics (any VPN in any
 * slot, true-LRU victim) are modelled with an O(1) per-level VPN hash
 * index (LruIndex) instead of a linear scan, so the simulator's
 * per-access hot path does constant work regardless of TLB size.
 */

#ifndef HPMP_CORE_TLB_H
#define HPMP_CORE_TLB_H

#include <bit>
#include <cstdint>
#include <vector>

#include "base/access.h"
#include "base/addr.h"
#include "base/indexed_lru.h"
#include "base/stats.h"
#include "pt/pte.h"

namespace hpmp
{

/**
 * One cached translation. Superpage leaves (level > 0) are cached at
 * their natural size in the fully-associative L1; the direct-mapped
 * L2 holds 4 KiB entries only (a common split in real designs).
 */
struct TlbEntry
{
    uint64_t vpn = 0;   //!< VPN of the mapping's base, >> 9*level
    uint64_t ppn = 0;   //!< PPN of the mapping's base page
    uint8_t level = 0;  //!< 0 = 4 KiB, 1 = 2 MiB, 2 = 1 GiB
    Perm perm;          //!< leaf PTE permission
    Perm physPerm;      //!< inlined physical (PMP/PMPT) permission
    /**
     * G-stage leaf permission for combined (two-stage) entries; rwx
     * for single-stage translations, where no G-stage exists.
     */
    Perm gPerm = Perm::rwx();
    bool user = false;
    bool valid = false;

    /** True iff this entry translates va. */
    bool
    matches(Addr va) const
    {
        return valid && (pageNumber(va) >> (9 * level)) == vpn;
    }

    /** Physical address for va (which must match). */
    Addr
    translate(Addr va) const
    {
        const uint64_t span_mask = pageSizeAtLevel(level) - 1;
        return pageAddr(ppn) + (va & span_mask);
    }
};

/** Where a TLB lookup hit. */
enum class TlbHitLevel { Miss, L1, L2 };

/** L1 fully-associative + L2 direct-mapped TLB pair. */
class Tlb
{
  public:
    Tlb(unsigned l1_entries, unsigned l2_entries);

    /**
     * Look up va; promotes L2 hits into L1.
     * @return the hit entry (owned by the TLB, valid until the next
     *         fill/flush), or nullptr on a miss.
     */
    const TlbEntry *
    lookup(Addr va, TlbHitLevel *level = nullptr)
    {
        const uint64_t vpn = pageNumber(va);

        for (uint32_t mask = levelMask_; mask; mask &= mask - 1) {
            const unsigned lvl = unsigned(std::countr_zero(mask));
            const uint32_t slot =
                l1Index_.find(keyFor(vpn >> (9 * lvl), lvl));
            if (slot != LruIndex::kNone) {
                l1Index_.touch(slot);
                ++l1Hits_;
                if (level)
                    *level = TlbHitLevel::L1;
                return &l1_[slot];
            }
        }

        TlbEntry &slot = l2_[l2SlotOf(vpn)];
        if (slot.valid && slot.level == 0 && slot.vpn == vpn) {
            ++l2Hits_;
            if (level)
                *level = TlbHitLevel::L2;
            // Promote into L1 (evicting the true-LRU entry if full).
            const TlbEntry *promoted = installL1(slot);
            return promoted ? promoted : &slot;
        }

        ++misses_;
        if (level)
            *level = TlbHitLevel::Miss;
        return nullptr;
    }

    /**
     * Install a translation. `pa_base` is the physical base of the
     * (possibly super-) page; level > 0 entries go to L1 only.
     */
    void fill(Addr va, Addr pa_base, Perm perm, Perm phys_perm,
              bool user, unsigned level = 0, Perm g_perm = Perm::rwx());

    /** sfence.vma with rs1=x0: drop everything. */
    void flushAll();

    /** sfence.vma with a specific page. */
    void flushPage(Addr va);

    uint64_t l1Hits() const { return l1Hits_.value(); }
    uint64_t l2Hits() const { return l2Hits_.value(); }
    uint64_t misses() const { return misses_.value(); }
    void resetStats();

    /** Register l1_hits/l2_hits/misses and hit_rate into `group`. */
    void registerStats(StatGroup &group);

  private:
    /** Leaf levels a TLB entry can cache (Sv57 root leaf = level 4). */
    static constexpr unsigned kMaxLeafLevels = 5;

    static uint64_t
    keyFor(uint64_t vpn_at_level, unsigned level)
    {
        return (vpn_at_level << 3) | level;
    }

    uint64_t
    l2SlotOf(uint64_t vpn) const
    {
        return l2Pow2_ ? (vpn & l2Mask_) : vpn % l2Entries_;
    }

    /**
     * Claim an L1 slot (evicting true-LRU if full) and install.
     * @return the installed entry, or nullptr when the L1 has no slots.
     */
    const TlbEntry *
    installL1(const TlbEntry &entry)
    {
        if (l1Entries_ == 0)
            return nullptr;
        const uint32_t slot =
            l1Index_.insert(keyFor(entry.vpn, entry.level));
        if (l1_[slot].valid)
            decLevel(l1_[slot].level);
        l1_[slot] = entry;
        incLevel(entry.level);
        return &l1_[slot];
    }

    void
    incLevel(unsigned level)
    {
        ++levelCount_[level];
        levelMask_ |= 1u << level;
    }

    void
    decLevel(unsigned level)
    {
        if (--levelCount_[level] == 0)
            levelMask_ &= ~(1u << level);
    }

    unsigned l1Entries_;
    unsigned l2Entries_;
    std::vector<TlbEntry> l1_;
    LruIndex l1Index_;
    /** Entries currently cached per level, to skip empty-level probes. */
    unsigned levelCount_[kMaxLeafLevels] = {};
    uint32_t levelMask_ = 0; //!< bit l set iff levelCount_[l] > 0
    bool l2Pow2_ = false;
    uint64_t l2Mask_ = 0;
    std::vector<TlbEntry> l2_; //!< direct mapped by vpn % l2Entries_

    Counter l1Hits_;
    Counter l2Hits_;
    Counter misses_;
    Formula hitRate_;
};

} // namespace hpmp

#endif // HPMP_CORE_TLB_H
