#include "pmpt/pmptw_cache.h"

#include "base/fault_inject.h"

namespace hpmp
{

PmptwCache::PmptwCache(unsigned num_entries)
    : numEntries_(num_entries),
      index_(num_entries),
      leaves_(num_entries)
{
}

std::optional<Perm>
PmptwCache::lookup(Addr root_pa, uint64_t offset)
{
    if (const auto leaf = lookupLeaf(root_pa, offset))
        return leaf->perm(unsigned(pmpt_geom::pageIndex(offset)));
    return std::nullopt;
}

std::optional<LeafPmpte>
PmptwCache::lookupLeaf(Addr root_pa, uint64_t offset)
{
    if (!enabled())
        return std::nullopt;
    const uint32_t slot = index_.find(root_pa, offset >> 16);
    if (slot != LruIndex::kNone) {
        index_.touch(slot);
        ++hits_;
        return leaves_[slot];
    }
    ++misses_;
    return std::nullopt;
}

void
PmptwCache::fill(Addr root_pa, uint64_t offset, LeafPmpte leaf)
{
    if (!enabled())
        return;
    // Benign to drop: the next check walks the table again.
    if (FAULT_POINT("pmptw_cache.fill"))
        return;
    const uint64_t granule = offset >> 16;
    uint32_t slot = index_.find(root_pa, granule);
    if (slot != LruIndex::kNone)
        index_.touch(slot);
    else
        slot = index_.insert(root_pa, granule);
    leaves_[slot] = leaf;
}

void
PmptwCache::flush()
{
    index_.clear();
}

void
PmptwCache::registerStats(StatGroup &group)
{
    group.add("hits", &hits_);
    group.add("misses", &misses_);
    hitRate_ = Formula([this]() {
        const double total = double(hits_.value() + misses_.value());
        return total ? double(hits_.value()) / total : 0.0;
    });
    group.add("hit_rate", &hitRate_);
}

} // namespace hpmp
