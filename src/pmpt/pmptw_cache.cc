#include "pmpt/pmptw_cache.h"

namespace hpmp
{

PmptwCache::PmptwCache(unsigned num_entries)
    : numEntries_(num_entries),
      entries_(num_entries)
{
}

std::optional<Perm>
PmptwCache::lookup(Addr root_pa, uint64_t offset)
{
    if (!enabled())
        return std::nullopt;
    const uint64_t granule = offset >> 16;
    for (auto &entry : entries_) {
        if (entry.valid && entry.rootPa == root_pa &&
            entry.granule == granule) {
            entry.lru = ++lruClock_;
            ++hits_;
            return entry.leaf.perm(unsigned(pmpt_geom::pageIndex(offset)));
        }
    }
    ++misses_;
    return std::nullopt;
}

void
PmptwCache::fill(Addr root_pa, uint64_t offset, LeafPmpte leaf)
{
    if (!enabled())
        return;
    const uint64_t granule = offset >> 16;
    Entry *victim = &entries_[0];
    for (auto &entry : entries_) {
        if (entry.valid && entry.rootPa == root_pa &&
            entry.granule == granule) {
            entry.leaf = leaf;
            entry.lru = ++lruClock_;
            return;
        }
        if (!entry.valid ||
            (victim->valid && entry.lru < victim->lru)) {
            victim = &entry;
        }
    }
    victim->valid = true;
    victim->rootPa = root_pa;
    victim->granule = granule;
    victim->leaf = leaf;
    victim->lru = ++lruClock_;
}

void
PmptwCache::flush()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

} // namespace hpmp
