#include "pmpt/pmptw_cache.h"

namespace hpmp
{

PmptwCache::PmptwCache(unsigned num_entries)
    : numEntries_(num_entries),
      index_(num_entries),
      leaves_(num_entries)
{
}

std::optional<Perm>
PmptwCache::lookup(Addr root_pa, uint64_t offset)
{
    if (const auto leaf = lookupLeaf(root_pa, offset))
        return leaf->perm(unsigned(pmpt_geom::pageIndex(offset)));
    return std::nullopt;
}

std::optional<LeafPmpte>
PmptwCache::lookupLeaf(Addr root_pa, uint64_t offset)
{
    if (!enabled())
        return std::nullopt;
    const uint32_t slot = index_.find(root_pa, offset >> 16);
    if (slot != LruIndex::kNone) {
        index_.touch(slot);
        ++hits_;
        return leaves_[slot];
    }
    ++misses_;
    return std::nullopt;
}

void
PmptwCache::fill(Addr root_pa, uint64_t offset, LeafPmpte leaf)
{
    if (!enabled())
        return;
    const uint64_t granule = offset >> 16;
    uint32_t slot = index_.find(root_pa, granule);
    if (slot != LruIndex::kNone)
        index_.touch(slot);
    else
        slot = index_.insert(root_pa, granule);
    leaves_[slot] = leaf;
}

void
PmptwCache::flush()
{
    index_.clear();
}

} // namespace hpmp
