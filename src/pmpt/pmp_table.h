/**
 * @file
 * PMP Table builder/manager.
 *
 * Owns one multi-level permission table in simulated DRAM, mapping
 * offsets within the protected region to page permissions. The secure
 * monitor edits permissions through this class; the hardware walker
 * (pmpt_walker) reads the same bytes back. Entry-write counts are
 * tracked because the paper's TEE-operation latencies (Fig. 14) are
 * dominated by how many pmptes an update touches — including the
 * single-entry 32 MiB "huge" fast path.
 */

#ifndef HPMP_PMPT_PMP_TABLE_H
#define HPMP_PMPT_PMP_TABLE_H

#include <vector>

#include "base/frame_alloc.h"
#include "mem/phys_mem.h"
#include "pmpt/pmpte.h"

namespace hpmp
{

/** Builder/owner of one PMP Table rooted in simulated memory. */
class PmpTable
{
  public:
    /**
     * @param levels table depth; 2 (Mode 0, 16 GiB) by default, 3 via
     *        the reserved Mode extension (8 TiB).
     */
    PmpTable(PhysMem &mem, FrameAllocator alloc, unsigned levels = 2);

    Addr rootPa() const { return rootPa_; }
    unsigned levels() const { return levels_; }

    /** Bytes of region offset space this table can describe. */
    uint64_t coverage() const { return pmpt_geom::coverage(levels_); }

    /**
     * Set the permission for [offset, offset+len), page-granular.
     * With allow_huge, whole top-level-entry spans (32 MiB for 2-level
     * tables) that are aligned use a single huge pmpte — the paper's
     * single-write fast path for large allocations (Fig. 14-d); an
     * existing huge entry is split into a leaf table when a
     * finer-grained update lands inside it. Without allow_huge the
     * update always lands in leaf pmptes, which models the steady
     * state of page-interleaved ownership and keeps walks two-level.
     */
    void setPerm(uint64_t offset, uint64_t len, Perm perm,
                 bool allow_huge = false);

    /** Functional permission lookup (no timing). */
    Perm lookup(uint64_t offset) const;

    /** Whether the offset is described by a valid entry at all. */
    bool valid(uint64_t offset) const;

    /** Number of 64-bit pmpte stores performed since construction. */
    uint64_t entryWrites() const { return entryWrites_; }
    void resetEntryWrites() { entryWrites_ = 0; }

    /**
     * Mirror every pmpte store into an external running counter. The
     * monitor points all of its tables at one aggregate so per-call
     * write deltas are a scalar subtraction instead of a walk over
     * every domain's table (O(1) at fleet-scale domain counts). The
     * aggregate is not rewound by rollbackMeta(); the transactional
     * caller snapshots and restores it with its other scalars.
     */
    void setWriteAggregate(uint64_t *aggregate) { writeAggregate_ = aggregate; }

    /**
     * Corrupted pointer pmptes seen by lookup()/valid(): pointers whose
     * target is not a page this table ever allocated. Such entries are
     * reported (counted + warned) and treated as invalid rather than
     * chased into arbitrary memory.
     */
    uint64_t corruptPointers() const { return corruptPointers_; }

    /** Whether pa is a node page owned by this table. */
    bool isTablePage(Addr pa) const;

    /** Physical pages holding table nodes (root first). */
    const std::vector<Addr> &tablePages() const { return tablePages_; }

    /**
     * Undo journal for transactional monitor calls: while installed,
     * every pmpte store records (slot, previous value) so an aborted
     * call can restore the table bit-identically. The caller owns the
     * vector and replays it in reverse via undoWrite().
     */
    struct JournalEntry
    {
        Addr slot = 0;
        uint64_t oldValue = 0;
    };
    using Journal = std::vector<JournalEntry>;

    void setJournal(Journal *journal) { journal_ = journal; }

    /** Restore one journaled store (no entry-write accounting). */
    void undoWrite(const JournalEntry &e) { mem_.write64(e.slot, e.oldValue); }

    /**
     * Roll table-growth metadata back to a snapshot taken before a
     * failed transaction: drop node pages allocated since (their
     * contents have already been restored through the journal and the
     * frames themselves are reclaimed by the caller's frame allocator)
     * and restore the entry-write counter.
     */
    void rollbackMeta(size_t npages, uint64_t entry_writes);

  private:
    /** Write one pmpte and account for it. */
    void writeEntry(Addr slot, uint64_t value);

    /**
     * Recursive permission update of [offset, offset+len) within the
     * table node at node_pa spanning entries of `level`.
     */
    void setPermIn(Addr node_pa, unsigned level, uint64_t node_base,
                   uint64_t offset, uint64_t len, Perm perm,
                   bool allow_huge);

    /** Replace a huge/invalid entry with a pointer to a new node. */
    Addr expandEntry(Addr slot, unsigned child_level, Perm fill_perm,
                     bool fill_valid);

    PhysMem &mem_;
    FrameAllocator alloc_;
    unsigned levels_;
    Addr rootPa_;
    std::vector<Addr> tablePages_;
    uint64_t entryWrites_ = 0;
    uint64_t *writeAggregate_ = nullptr;
    // mutable: const read paths (lookup/valid) report corruption.
    mutable uint64_t corruptPointers_ = 0;
    Journal *journal_ = nullptr;
};

} // namespace hpmp

#endif // HPMP_PMPT_PMP_TABLE_H
