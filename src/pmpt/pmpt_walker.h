/**
 * @file
 * Hardware PMP-Table walker (PMPTW) — functional part.
 *
 * Given a table base and an offset within the protected region,
 * produces the permission plus the ordered list of pmpte references
 * the hardware makes (root first). The timing machine replays these
 * references through the cache hierarchy; with a 2-level table each
 * checked physical reference costs at most 2 extra references, which
 * is where the paper's "+8 for Sv39" comes from.
 */

#ifndef HPMP_PMPT_PMPT_WALKER_H
#define HPMP_PMPT_PMPT_WALKER_H

#include "base/small_vec.h"
#include "mem/phys_mem.h"
#include "pmpt/pmpte.h"

namespace hpmp
{

/** One pmpte reference of a PMP-Table walk. */
struct PmptRef
{
    Addr pa = 0;
    unsigned level = 0; //!< levels-1 = root, 0 = leaf
};

/** Result of one PMP-Table walk. */
struct PmptWalkResult
{
    bool valid = false;   //!< invalid entry encountered -> access fails
    Perm perm;            //!< permission for the page (none if !valid)
    bool hugeHit = false; //!< resolved by a huge (non-leaf) pmpte
    /**
     * The walk hit a malformed pmpte: reserved bits set, a pointer
     * outside physical memory, or an unsupported table depth. Table
     * contents are monitor-written but reachable by injected bit flips
     * (and, in a real deployment, by DRAM corruption), so malformed
     * encodings deny the access instead of killing the simulator;
     * valid is always false when this is set.
     */
    bool malformed = false;
    SmallVec<PmptRef, 4> refs;
};

/**
 * Walk the table rooted at root_pa (of `levels` levels) for the page
 * containing `offset` (offset is relative to the protected region's
 * base, per Fig. 6-e).
 */
PmptWalkResult walkPmpTable(const PhysMem &mem, Addr root_pa,
                            unsigned levels, uint64_t offset);

} // namespace hpmp

#endif // HPMP_PMPT_PMPT_WALKER_H
