/**
 * @file
 * PMPTW-Cache: a small fully-associative cache of leaf pmptes,
 * analogous to a page-walk cache (paper §8.9). A hit returns the
 * permission without any pmpte memory references. Disabled by default
 * in the paper's main experiments; Fig. 16 studies the benefit.
 *
 * Entries are indexed by (table root, 64 KiB granule) in an O(1)
 * LruIndex hash instead of a linear scan; hit/miss statistics and
 * true-LRU eviction order are unchanged.
 */

#ifndef HPMP_PMPT_PMPTW_CACHE_H
#define HPMP_PMPT_PMPTW_CACHE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "base/indexed_lru.h"
#include "base/stats.h"
#include "pmpt/pmpte.h"

namespace hpmp
{

/** Fully-associative LRU cache of 64 KiB permission granules. */
class PmptwCache
{
  public:
    /** @param num_entries 0 disables the cache entirely. */
    explicit PmptwCache(unsigned num_entries = 8);

    bool enabled() const { return numEntries_ > 0; }
    unsigned numEntries() const { return numEntries_; }

    /**
     * Look up the permission for `offset` under the table rooted at
     * root_pa. @return the page permission on hit.
     */
    std::optional<Perm> lookup(Addr root_pa, uint64_t offset);

    /**
     * Like lookup, but returns the whole cached leaf pmpte so the
     * checker can see reserved nibble bits: a malformed permission
     * must fault on a cache hit exactly as it does on a walk.
     */
    std::optional<LeafPmpte> lookupLeaf(Addr root_pa, uint64_t offset);

    /** Install the leaf pmpte covering offset after a walk. */
    void fill(Addr root_pa, uint64_t offset, LeafPmpte leaf);

    /** Drop everything (monitor updated a table / switched domains). */
    void flush();

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }
    void resetStats() { hits_.reset(); misses_.reset(); }

    /** Register hits/misses and hit_rate into `group`. */
    void registerStats(StatGroup &group);

  private:
    unsigned numEntries_;
    LruIndex index_; //!< keyed (root_pa, offset >> 16)
    std::vector<LeafPmpte> leaves_; //!< payloads, by index_ slot

    Counter hits_;
    Counter misses_;
    Formula hitRate_;
};

} // namespace hpmp

#endif // HPMP_PMPT_PMPTW_CACHE_H
