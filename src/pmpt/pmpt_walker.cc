#include "pmpt/pmpt_walker.h"

namespace hpmp
{

using namespace pmpt_geom;

PmptWalkResult
walkPmpTable(const PhysMem &mem, Addr root_pa, unsigned levels,
             uint64_t offset)
{
    PmptWalkResult result;

    Addr node = root_pa;
    for (unsigned level = levels - 1; level >= 1; --level) {
        const Addr slot = node + indexAt(offset, level) * 8;
        result.refs.push_back({slot, level});
        const RootPmpte e{mem.read64(slot)};
        if (!e.v())
            return result; // invalid: access fails (paper §4.3)
        if (e.isHuge()) {
            result.valid = true;
            result.perm = e.perm();
            result.hugeHit = true;
            return result;
        }
        node = e.tablePa();
    }

    const Addr slot = node + indexAt(offset, 0) * 8;
    result.refs.push_back({slot, 0});
    const LeafPmpte leaf{mem.read64(slot)};
    result.valid = true;
    result.perm = leaf.perm(unsigned(pageIndex(offset)));
    return result;
}

} // namespace hpmp
