#include "pmpt/pmpt_walker.h"

namespace hpmp
{

using namespace pmpt_geom;

PmptWalkResult
walkPmpTable(const PhysMem &mem, Addr root_pa, unsigned levels,
             uint64_t offset)
{
    PmptWalkResult result;

    // An unsupported depth can only come from a corrupted PmptBaseReg
    // (reserved Mode values): deny, don't interpret.
    if (levels < 2 || levels > 4) {
        result.malformed = true;
        return result;
    }

    // A pmpte reference outside physical memory is a malformed pointer
    // chain, not a simulator bug: the slot is derived from table
    // contents, which fault injection (or real-world corruption) can
    // reach. PhysMem panics on out-of-range reads, so bound-check
    // every slot before touching it.
    auto slot_ok = [&mem](Addr slot) {
        return slot + 8 > slot && slot + 8 <= mem.size();
    };

    Addr node = root_pa;
    for (unsigned level = levels - 1; level >= 1; --level) {
        const Addr slot = node + indexAt(offset, level) * 8;
        if (!slot_ok(slot)) {
            result.malformed = true;
            return result;
        }
        result.refs.push_back({slot, level});
        const RootPmpte e{mem.read64(slot)};
        if (!e.v())
            return result; // invalid: access fails (paper §4.3)
        if (e.reservedSet()) {
            result.malformed = true;
            return result;
        }
        if (e.isHuge()) {
            result.valid = true;
            result.perm = e.perm();
            result.hugeHit = true;
            return result;
        }
        node = e.tablePa();
    }

    const Addr slot = node + indexAt(offset, 0) * 8;
    if (!slot_ok(slot)) {
        result.malformed = true;
        return result;
    }
    result.refs.push_back({slot, 0});
    const LeafPmpte leaf{mem.read64(slot)};
    const unsigned page = unsigned(pageIndex(offset));
    if (leaf.reservedSet(page)) {
        // Only the offending page's nibble is malformed; accesses to
        // its 15 siblings through the same leaf still resolve.
        result.malformed = true;
        return result;
    }
    result.valid = true;
    result.perm = leaf.perm(page);
    return result;
}

} // namespace hpmp
