/**
 * @file
 * PMP Table entry encodings (paper Figure 6).
 *
 * A PMP Table is a multi-level radix tree mapping an *offset within
 * the protected region* to an R/W/X permission:
 *
 *  - Offset split (Fig. 6-e):  OFF[1] = bits 33:25 indexes the root
 *    table, OFF[0] = bits 24:16 indexes the leaf table, PageIndex =
 *    bits 15:12 selects one of 16 permission nibbles in the leaf
 *    pmpte, PageOffset = bits 11:0. A 3-level table (reserved Mode
 *    value, paper §4.3) adds OFF[2] = bits 42:34.
 *
 *  - Root pmpte (Fig. 6-c): V = bit 0, R/W/X = bits 1..3. R=W=X=0
 *    makes it a pointer to the next-level table; otherwise the entry
 *    is a "huge" leaf holding the permission for the whole 32 MiB it
 *    spans. The pointer PPN occupies bits 48:5 (4 KiB-aligned leaf
 *    table).
 *
 *  - Leaf pmpte (Fig. 6-d): 16 4-bit permission fields, perm0 in bits
 *    3:0 .. perm15 in bits 63:60; within a nibble R = bit 0, W = bit
 *    1, X = bit 2, bit 3 reserved. One leaf pmpte covers 16 * 4 KiB.
 *
 * Each root pmpte therefore manages 512 * 16 * 4 KiB = 32 MiB and one
 * 2-level table covers 512 * 32 MiB = 16 GiB, exactly the figures the
 * paper quotes.
 */

#ifndef HPMP_PMPT_PMPTE_H
#define HPMP_PMPT_PMPTE_H

#include <cstdint>

#include "base/access.h"
#include "base/addr.h"
#include "base/bitfield.h"

namespace hpmp
{

/** Offset-field geometry of the PMP Table. */
namespace pmpt_geom
{
/** Bits of offset consumed below the leaf-table index. */
constexpr unsigned kPageIndexLo = 12;
constexpr unsigned kPageIndexBits = 4;   //!< 16 pages per leaf pmpte
constexpr unsigned kLevelBits = 9;       //!< 512 entries per table page

/** Low bit of the table index for level (0 = leaf table). */
constexpr unsigned
indexLo(unsigned level)
{
    return kPageIndexLo + kPageIndexBits + kLevelBits * level;
}

/** Table index of `offset` at `level`. */
constexpr uint64_t
indexAt(uint64_t offset, unsigned level)
{
    return bits(offset, indexLo(level) + kLevelBits - 1, indexLo(level));
}

/** PageIndex field (which nibble of the leaf pmpte). */
constexpr uint64_t
pageIndex(uint64_t offset)
{
    return bits(offset, kPageIndexLo + kPageIndexBits - 1, kPageIndexLo);
}

/** Bytes spanned by one entry at `level` (level 0 = one leaf pmpte). */
constexpr uint64_t
entrySpan(unsigned level)
{
    return 1ULL << indexLo(level);
}

/** Bytes covered by a whole table of `levels` levels. */
constexpr uint64_t
coverage(unsigned levels)
{
    return 1ULL << (indexLo(levels - 1) + kLevelBits);
}

static_assert(entrySpan(1) == 32_MiB, "root pmpte must span 32 MiB");
static_assert(coverage(2) == 16_GiB, "2-level table must cover 16 GiB");
} // namespace pmpt_geom

/** Non-leaf-table entry (root pmpte and intermediate levels). */
struct RootPmpte
{
    uint64_t raw = 0;

    RootPmpte() = default;
    explicit RootPmpte(uint64_t bits_val) : raw(bits_val) {}

    bool v() const { return bits(raw, 0); }
    bool r() const { return bits(raw, 1); }
    bool w() const { return bits(raw, 2); }
    bool x() const { return bits(raw, 3); }

    Perm perm() const { return Perm{r(), w(), x()}; }

    /** R=W=X=0: pointer to the next-level table. */
    bool isPointer() const { return v() && !perm().any(); }
    /** Any permission bit set: huge-permission leaf. */
    bool isHuge() const { return v() && perm().any(); }

    Addr tablePa() const { return bits(raw, 48, 5) << kPageShift; }

    /**
     * Reserved bits that must be zero (Fig. 6-c): bit 4 and bits
     * 63:49 always; a huge leaf additionally has no pointer field, so
     * its PPN bits 48:5 must be zero too. A set reserved bit marks a
     * malformed pmpte — the walker raises an access fault on the
     * offending access rather than interpreting it.
     */
    bool
    reservedSet() const
    {
        if (bits(raw, 4) || bits(raw, 63, 49))
            return true;
        return isHuge() && bits(raw, 48, 5) != 0;
    }

    static RootPmpte
    pointer(Addr table_pa)
    {
        uint64_t v = 1;
        v = insertBits(v, 48, 5, table_pa >> kPageShift);
        return RootPmpte{v};
    }

    static RootPmpte
    huge(Perm perm)
    {
        uint64_t v = 1;
        v = insertBits(v, 1, perm.r);
        v = insertBits(v, 2, perm.w);
        v = insertBits(v, 3, perm.x);
        return RootPmpte{v};
    }
};

/** Leaf pmpte: 16 4-bit permission nibbles. */
struct LeafPmpte
{
    uint64_t raw = 0;

    LeafPmpte() = default;
    explicit LeafPmpte(uint64_t bits_val) : raw(bits_val) {}

    Perm
    perm(unsigned page_index) const
    {
        const uint64_t nib = bits(raw, page_index * 4 + 3, page_index * 4);
        return Perm{bool(nib & 1), bool(nib & 2), bool(nib & 4)};
    }

    /** Reserved bit 3 of the page's nibble (Fig. 6-d) is set. */
    bool
    reservedSet(unsigned page_index) const
    {
        return bits(raw, page_index * 4 + 3);
    }

    void
    setPerm(unsigned page_index, Perm perm)
    {
        uint64_t nib = 0;
        nib |= perm.r ? 1 : 0;
        nib |= perm.w ? 2 : 0;
        nib |= perm.x ? 4 : 0;
        raw = insertBits(raw, page_index * 4 + 3, page_index * 4, nib);
    }

    /** Leaf pmpte with the same permission for all 16 pages. */
    static LeafPmpte
    uniform(Perm perm)
    {
        LeafPmpte e;
        for (unsigned i = 0; i < 16; ++i)
            e.setPerm(i, perm);
        return e;
    }
};

/**
 * HPMP address-register format when the preceding config has T=1
 * (Fig. 6-b): Mode = bits 63:62 selects the table depth (0 = 2-level;
 * other values reserved — this implementation uses 1 = 3-level as the
 * paper's suggested extension), PPN = bits 43:0.
 */
struct PmptBaseReg
{
    uint64_t raw = 0;

    PmptBaseReg() = default;
    explicit PmptBaseReg(uint64_t bits_val) : raw(bits_val) {}

    unsigned mode() const { return unsigned(bits(raw, 63, 62)); }
    Addr tablePa() const { return bits(raw, 43, 0) << kPageShift; }

    /** Table levels for the mode field (mode 0 = 2 levels). */
    unsigned levels() const { return mode() + 2; }

    static PmptBaseReg
    make(Addr table_pa, unsigned levels = 2)
    {
        uint64_t v = 0;
        v = insertBits(v, 43, 0, table_pa >> kPageShift);
        v = insertBits(v, 63, 62, levels - 2);
        return PmptBaseReg{v};
    }
};

} // namespace hpmp

#endif // HPMP_PMPT_PMPTE_H
