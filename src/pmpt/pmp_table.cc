#include "pmpt/pmp_table.h"

#include <algorithm>

#include "base/fault_inject.h"
#include "base/logging.h"

namespace hpmp
{

using namespace pmpt_geom;

PmpTable::PmpTable(PhysMem &mem, FrameAllocator alloc, unsigned levels)
    : mem_(mem),
      alloc_(std::move(alloc)),
      levels_(levels)
{
    fatal_if(levels < 2 || levels > 4,
             "PMP Table supports 2..4 levels, got %u", levels);
    rootPa_ = alloc_(1);
    mem_.zeroPage(rootPa_);
    tablePages_.push_back(rootPa_);
}

void
PmpTable::writeEntry(Addr slot, uint64_t value)
{
    // Fires *before* the store so an aborted transaction never has a
    // half-visible pmpte; "pmpt.write_entry.flip" models a single-event
    // upset in the store itself (it commits, corrupted).
    if (FAULT_POINT("pmpt.write_entry"))
        throw InjectedFault{"pmpt.write_entry"};
    value = FaultInjector::instance().maybeFlipBit(
        "pmpt.write_entry.flip", value);
    if (journal_)
        journal_->push_back({slot, mem_.read64(slot)});
    mem_.write64(slot, value);
    ++entryWrites_;
    if (writeAggregate_)
        ++*writeAggregate_;
}

void
PmpTable::rollbackMeta(size_t npages, uint64_t entry_writes)
{
    panic_if(npages > tablePages_.size() || npages == 0,
             "rollback to an impossible table size");
    tablePages_.resize(npages);
    entryWrites_ = entry_writes;
}

Addr
PmpTable::expandEntry(Addr slot, unsigned child_level, Perm fill_perm,
                      bool fill_valid)
{
    const Addr node = alloc_(1);
    mem_.zeroPage(node);
    tablePages_.push_back(node);

    if (fill_valid) {
        // Preserve the previous huge permission for untouched ranges.
        if (child_level == 0) {
            const LeafPmpte fill = LeafPmpte::uniform(fill_perm);
            if (fill.raw != 0) {
                for (unsigned i = 0; i < 512; ++i)
                    writeEntry(node + i * 8, fill.raw);
            }
        } else {
            const RootPmpte fill = RootPmpte::huge(fill_perm);
            for (unsigned i = 0; i < 512; ++i)
                writeEntry(node + i * 8, fill.raw);
        }
    }
    writeEntry(slot, RootPmpte::pointer(node).raw);
    return node;
}

void
PmpTable::setPermIn(Addr node_pa, unsigned level, uint64_t node_base,
                    uint64_t offset, uint64_t len, Perm perm,
                    bool allow_huge)
{
    const uint64_t end = offset + len;

    if (level == 0) {
        // Leaf table: 4-bit nibbles, 16 pages per pmpte.
        const uint64_t first = indexAt(offset, 0);
        const uint64_t last = indexAt(end - 1, 0);
        for (uint64_t idx = first; idx <= last; ++idx) {
            const Addr slot = node_pa + idx * 8;
            const uint64_t entry_base = node_base + idx * entrySpan(0);
            LeafPmpte e{mem_.read64(slot)};
            const uint64_t lo = std::max(offset, entry_base);
            const uint64_t hi = std::min(end, entry_base + entrySpan(0));
            for (uint64_t page = lo; page < hi; page += kPageSize)
                e.setPerm(unsigned(pageIndex(page)), perm);
            writeEntry(slot, e.raw);
        }
        return;
    }

    const uint64_t span = entrySpan(level);
    const uint64_t first = indexAt(offset, level);
    const uint64_t last = indexAt(end - 1, level);
    for (uint64_t idx = first; idx <= last; ++idx) {
        const Addr slot = node_pa + idx * 8;
        const uint64_t entry_base = node_base + idx * span;
        const uint64_t lo = std::max(offset, entry_base);
        const uint64_t hi = std::min(end, entry_base + span);

        if (allow_huge && lo == entry_base && hi == entry_base + span) {
            // The whole span changes: one huge pmpte — the single-write
            // 32 MiB fast path the paper exploits in Fig. 14-d.
            writeEntry(slot, RootPmpte::huge(perm).raw);
            continue;
        }

        RootPmpte e{mem_.read64(slot)};
        Addr child;
        if (e.isPointer()) {
            child = e.tablePa();
        } else {
            child = expandEntry(slot, level - 1, e.perm(), e.isHuge());
        }
        setPermIn(child, level - 1, entry_base, lo, hi - lo, perm,
                  allow_huge);
    }
}

void
PmpTable::setPerm(uint64_t offset, uint64_t len, Perm perm,
                  bool allow_huge)
{
    fatal_if(offset % kPageSize || len % kPageSize,
             "setPerm must be page-granular: offset %#lx len %#lx",
             offset, len);
    fatal_if(offset + len > coverage(),
             "setPerm beyond table coverage: offset %#lx len %#lx",
             offset, len);
    if (len == 0)
        return;
    setPermIn(rootPa_, levels_ - 1, 0, offset, len, perm, allow_huge);
}

bool
PmpTable::isTablePage(Addr pa) const
{
    return std::find(tablePages_.begin(), tablePages_.end(), pa) !=
           tablePages_.end();
}

Perm
PmpTable::lookup(uint64_t offset) const
{
    Addr node = rootPa_;
    for (unsigned level = levels_ - 1; level >= 1; --level) {
        const Addr slot = node + indexAt(offset, level) * 8;
        const RootPmpte e{mem_.read64(slot)};
        if (!e.v())
            return Perm::none();
        if (e.isHuge())
            return e.perm();
        if (!isTablePage(e.tablePa())) {
            // A pointer into memory this table never allocated means
            // the pmpte was corrupted: report it, don't chase it.
            ++corruptPointers_;
            warn("corrupt pointer pmpte at %#lx -> %#lx (level %u)",
                 slot, e.tablePa(), level);
            return Perm::none();
        }
        node = e.tablePa();
    }
    const LeafPmpte leaf{mem_.read64(node + indexAt(offset, 0) * 8)};
    return leaf.perm(unsigned(pageIndex(offset)));
}

bool
PmpTable::valid(uint64_t offset) const
{
    Addr node = rootPa_;
    for (unsigned level = levels_ - 1; level >= 1; --level) {
        const Addr slot = node + indexAt(offset, level) * 8;
        const RootPmpte e{mem_.read64(slot)};
        if (!e.v())
            return false;
        if (e.isHuge())
            return true;
        if (!isTablePage(e.tablePa())) {
            ++corruptPointers_;
            warn("corrupt pointer pmpte at %#lx -> %#lx (level %u)",
                 slot, e.tablePa(), level);
            return false;
        }
        node = e.tablePa();
    }
    return true;
}

} // namespace hpmp
