/**
 * @file
 * RISC-V page-table entry encoding (privileged spec v1.12) and the
 * Sv39/Sv48/Sv57 paging-mode geometry.
 */

#ifndef HPMP_PT_PTE_H
#define HPMP_PT_PTE_H

#include <cstdint>

#include "base/access.h"
#include "base/addr.h"
#include "base/bitfield.h"

namespace hpmp
{

/** Supported paging modes (number of radix levels differs). */
enum class PagingMode : uint8_t { Sv39 = 0, Sv48 = 1, Sv57 = 2 };

/** Number of page-table levels for a mode (Sv39 = 3). */
constexpr unsigned
ptLevels(PagingMode mode)
{
    switch (mode) {
      case PagingMode::Sv39: return 3;
      case PagingMode::Sv48: return 4;
      case PagingMode::Sv57: return 5;
    }
    return 3;
}

/** Number of virtual-address bits for a mode (Sv39 = 39). */
constexpr unsigned
vaBits(PagingMode mode)
{
    return 12 + 9 * ptLevels(mode);
}

/**
 * VPN index for a level; level counts from the leaf (level 0 indexes
 * the last-level table, level = ptLevels-1 indexes the root).
 * Sv39x4 widens the root index by `rootExtraBits` (2 for hypervisor
 * G-stage tables, which are 4 pages wide).
 */
constexpr uint64_t
vpn(Addr va, unsigned level, unsigned levels, unsigned root_extra_bits = 0)
{
    const unsigned lo = kPageShift + 9 * level;
    unsigned width = 9;
    if (level == levels - 1)
        width += root_extra_bits;
    return bits(va, lo + width - 1, lo);
}

/** Bytes mapped by a leaf PTE at `level` (level 0 = 4 KiB). */
constexpr uint64_t
pageSizeAtLevel(unsigned level)
{
    return kPageSize << (9 * level);
}

/**
 * One 64-bit RISC-V PTE. Bit layout (RV64):
 *   V=0 R=1 W=2 X=3 U=4 G=5 A=6 D=7, PPN = bits 53:10.
 */
struct Pte
{
    uint64_t raw = 0;

    Pte() = default;
    explicit Pte(uint64_t bits_val) : raw(bits_val) {}

    bool v() const { return bits(raw, 0); }
    bool r() const { return bits(raw, 1); }
    bool w() const { return bits(raw, 2); }
    bool x() const { return bits(raw, 3); }
    bool u() const { return bits(raw, 4); }
    bool g() const { return bits(raw, 5); }
    bool a() const { return bits(raw, 6); }
    bool d() const { return bits(raw, 7); }

    uint64_t ppn() const { return bits(raw, 53, 10); }
    Addr physAddr() const { return ppn() << kPageShift; }

    /** Non-leaf pointer: valid with R=W=X=0. */
    bool isPointer() const { return v() && !r() && !w() && !x(); }
    /** Leaf entry: valid with any of R/W/X set. */
    bool isLeaf() const { return v() && (r() || w() || x()); }

    Perm perm() const { return Perm{r(), w(), x()}; }

    void setV(bool val) { raw = insertBits(raw, 0, val); }
    void setA(bool val) { raw = insertBits(raw, 6, val); }
    void setD(bool val) { raw = insertBits(raw, 7, val); }

    /** Build a leaf PTE. */
    static Pte
    leaf(Addr pa, Perm perm, bool user, bool accessed = false,
         bool dirty = false)
    {
        uint64_t v = 1; // V
        v = insertBits(v, 1, perm.r);
        v = insertBits(v, 2, perm.w);
        v = insertBits(v, 3, perm.x);
        v = insertBits(v, 4, user);
        v = insertBits(v, 6, accessed);
        v = insertBits(v, 7, dirty);
        v = insertBits(v, 53, 10, pa >> kPageShift);
        return Pte{v};
    }

    /** Build a non-leaf pointer PTE. */
    static Pte
    pointer(Addr next_table_pa)
    {
        uint64_t v = 1; // V only
        v = insertBits(v, 53, 10, next_table_pa >> kPageShift);
        return Pte{v};
    }
};

} // namespace hpmp

#endif // HPMP_PT_PTE_H
