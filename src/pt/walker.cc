#include "pt/walker.h"

#include "base/logging.h"

namespace hpmp
{

WalkResult
walkPageTable(PhysMem &mem, Addr root_pa, Addr va, AccessType type,
              PrivMode priv, const WalkConfig &config)
{
    WalkResult result;
    const unsigned levels = ptLevels(config.mode);

    Addr table = root_pa;
    for (unsigned lvl = levels; lvl-- > 0;) {
        const Addr slot =
            table + vpn(va, lvl, levels, config.rootExtraBits) * 8;
        result.refs.push_back({slot, false, lvl});
        Pte pte{mem.read64(slot)};

        if (!pte.v() || (!pte.r() && pte.w())) {
            result.fault = pageFaultFor(type);
            return result;
        }

        if (pte.isLeaf()) {
            // Misaligned superpage: low PPN bits must be zero.
            const uint64_t span_pages = pageSizeAtLevel(lvl) / kPageSize;
            if (pte.ppn() & (span_pages - 1)) {
                result.fault = pageFaultFor(type);
                return result;
            }
            result.fault = checkLeafPerms(pte, type, priv, config.sumSet);
            if (result.fault != Fault::None)
                return result;

            // Hardware A/D update: an extra store to the leaf PTE.
            const bool need_a = !pte.a();
            const bool need_d = type == AccessType::Store && !pte.d();
            if (need_a || need_d) {
                if (!config.hardwareAdUpdate) {
                    result.fault = pageFaultFor(type);
                    return result;
                }
                pte.setA(true);
                if (type == AccessType::Store)
                    pte.setD(true);
                mem.write64(slot, pte.raw);
                result.refs.push_back({slot, true, lvl});
            }

            const uint64_t span = pageSizeAtLevel(lvl);
            result.pa = pte.physAddr() + (va & (span - 1));
            result.perm = pte.perm();
            result.user = pte.u();
            result.leafLevel = lvl;
            result.leafPteAddr = slot;
            return result;
        }

        // Pointer PTE: A/D/U must be clear per the spec; treat any set
        // bit as a malformed table built by software (page fault).
        if (pte.a() || pte.d() || pte.u()) {
            result.fault = pageFaultFor(type);
            return result;
        }
        table = pte.physAddr();
    }

    result.fault = pageFaultFor(type);
    return result;
}

} // namespace hpmp
