/**
 * @file
 * Hardware page-table-walker model (functional part).
 *
 * Produces the ordered list of physical references a RISC-V PTW makes
 * for one translation, including hardware A/D-bit updates. The timing
 * machine replays these references through the protection checker and
 * the cache hierarchy, which is how the paper's 4-vs-12-vs-6 reference
 * counts arise naturally instead of being hard-coded.
 */

#ifndef HPMP_PT_WALKER_H
#define HPMP_PT_WALKER_H

#include "base/small_vec.h"
#include "mem/phys_mem.h"
#include "pt/pte.h"

namespace hpmp
{

/** One physical reference made during a walk. */
struct PtRef
{
    Addr pa = 0;
    bool write = false;   //!< A/D read-modify-write update
    unsigned level = 0;   //!< page-table level of the entry touched
};

/** Result of one full walk. */
struct WalkResult
{
    Fault fault = Fault::None;
    Addr pa = 0;              //!< translated physical address
    Perm perm;                //!< leaf permissions
    bool user = false;        //!< leaf U bit
    unsigned leafLevel = 0;   //!< 0 = 4 KiB leaf
    Addr leafPteAddr = 0;     //!< where the leaf PTE lives
    /** PT-page references in walk order (<= levels + A/D write). */
    SmallVec<PtRef, 8> refs;

    bool ok() const { return fault == Fault::None; }
};

/** Options mirroring the relevant satp/hstatus/sstatus state. */
struct WalkConfig
{
    PagingMode mode = PagingMode::Sv39;
    unsigned rootExtraBits = 0; //!< 2 for Sv39x4 G-stage
    bool sumSet = true;         //!< S-mode may touch U pages (Linux)
    bool hardwareAdUpdate = true; //!< Svadu-style A/D update vs. fault
};

/**
 * Walk `va` starting at root table `root_pa` for an access of `type`
 * in privilege `priv`. Purely functional on PhysMem except for A/D
 * updates (performed when hardwareAdUpdate is set).
 */
WalkResult walkPageTable(PhysMem &mem, Addr root_pa, Addr va,
                         AccessType type, PrivMode priv,
                         const WalkConfig &config);

/**
 * Permission check of a leaf PTE against access type and privilege;
 * shared between the walker and the TLB hit path (where it runs on
 * every hit, hence inline).
 */
inline Fault
checkLeafPerms(const Pte &pte, AccessType type, PrivMode priv,
               bool sum_set)
{
    if (!pte.perm().allows(type))
        return pageFaultFor(type);
    if (priv == PrivMode::User && !pte.u())
        return pageFaultFor(type);
    if (priv == PrivMode::Supervisor && pte.u()) {
        // S-mode fetches from U pages always fault; loads/stores fault
        // unless SUM is set.
        if (type == AccessType::Fetch || !sum_set)
            return pageFaultFor(type);
    }
    return Fault::None;
}

} // namespace hpmp

#endif // HPMP_PT_WALKER_H
