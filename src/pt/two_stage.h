/**
 * @file
 * Two-stage (VS-stage + G-stage) translation for the RISC-V hypervisor
 * extension: guest page table (vsatp, Sv39) walked through the nested
 * page table (hgatp, Sv39x4).
 *
 * Produces the 3D-walk reference stream of the paper's Figure 8: each
 * guest-PT access is a guest-physical address that itself requires a
 * G-stage walk (nL2/nL1/nL0), for 16 references total on Sv39/Sv39x4.
 * An optional G-stage TLB hook lets the timing machine model hfence
 * semantics (hfence.vvma keeps G-stage translations cached, hfence.gvma
 * drops them).
 */

#ifndef HPMP_PT_TWO_STAGE_H
#define HPMP_PT_TWO_STAGE_H

#include <functional>
#include <optional>
#include <vector>

#include "pt/walker.h"

namespace hpmp
{

/** Category of one supervisor-physical reference in a 3D walk. */
enum class VirtRefKind : uint8_t { NptPage, GptPage, Data };

/** One supervisor-physical reference of the two-stage walk. */
struct VirtRef
{
    Addr spa = 0;
    VirtRefKind kind = VirtRefKind::Data;
    bool write = false;
    unsigned level = 0;
};

/** Result of a two-stage walk. */
struct TwoStageResult
{
    Fault fault = Fault::None;
    Addr gpa = 0;  //!< final guest-physical address
    Addr spa = 0;  //!< final supervisor-physical address
    Perm perm;     //!< effective permission (VS-stage leaf)
    Perm gPerm = Perm::rwx(); //!< G-stage leaf permission of the data
                              //!< translation
    bool user = false;        //!< VS-stage leaf U bit
    unsigned vsLeafLevel = 0; //!< VS-stage leaf level (0 = 4 KiB)
    /**
     * G-stage leaf level of the data translation. 0 when served from
     * the G-stage TLB hook, which caches at 4 KiB granularity.
     */
    unsigned gLeafLevel = 0;
    SmallVec<VirtRef, 40> refs;
    unsigned gstageWalks = 0;    //!< G-stage walks actually performed
    unsigned gstageTlbHits = 0;  //!< walks short-circuited by the hook

    bool ok() const { return fault == Fault::None; }

    /**
     * Largest page size a combined (gva -> spa) TLB entry may cache:
     * both stages must map contiguously at that size.
     */
    unsigned
    combinedLeafLevel() const
    {
        return vsLeafLevel < gLeafLevel ? vsLeafLevel : gLeafLevel;
    }
};

/** One cached G-stage translation handed back by the lookup hook. */
struct GStageHit
{
    Addr spaPage = 0; //!< supervisor-physical page base
    Perm perm;        //!< G-stage leaf permission
};

/**
 * G-stage translation cache hooks (4 KiB granularity): lookup returns
 * the supervisor-physical page base and G-stage leaf permission for a
 * guest-physical page base, or nullopt — including when the cached
 * permission does not allow `type`, so the full (and correctly
 * faulting) G-stage walk runs instead; fill is invoked after each
 * performed G-stage walk with the real leaf permission.
 */
struct GStageTlbHooks
{
    std::function<std::optional<GStageHit>(Addr gpa_page,
                                           AccessType type)> lookup;
    std::function<void(Addr gpa_page, Addr spa_page, Perm perm)> fill;
};

/**
 * Guest-side page-walk-cache hooks: a hit for (level, gva) supplies
 * the guest PTE directly, skipping both the guest-PT reference and
 * the G-stage walk that locating it would have required.
 */
struct VsPwcHooks
{
    std::function<std::optional<Pte>(unsigned level, Addr gva)> lookup;
    std::function<void(unsigned level, Addr gva, Pte pte)> fill;
};

/** Configuration of both stages. */
struct TwoStageConfig
{
    WalkConfig vsStage{PagingMode::Sv39, 0, true, true};
    WalkConfig gStage{PagingMode::Sv39, 2, true, true}; //!< Sv39x4
};

/**
 * Stage of the two-stage access path a fault originated from. The
 * RISC-V fault codes already encode this (page fault = VS-stage,
 * guest-page fault = G-stage, access fault = physical PMP/pmpte); this
 * enum names the mapping so oracles can attribute stale translations
 * to the table that should have denied them.
 */
enum class VirtFaultOrigin : uint8_t
{
    None,       //!< no fault
    GuestStage, //!< VS-stage (guest page table) page fault
    GStage,     //!< G-stage (nested page table) guest-page fault
    Phys,       //!< physical access fault (PMP / pmpte / bounds)
};

/** Classify a fault code by the translation stage that raised it. */
VirtFaultOrigin virtFaultOrigin(Fault fault);

/** Human-readable origin name for diagnostics. */
const char *toString(VirtFaultOrigin origin);

/**
 * Walk guest virtual address `gva` for an access of `type` in guest
 * privilege `priv`, using the guest table rooted at `vsatp_root` and
 * the nested table rooted at `hgatp_root`.
 */
TwoStageResult walkTwoStage(PhysMem &mem, Addr vsatp_root, Addr hgatp_root,
                            Addr gva, AccessType type, PrivMode priv,
                            const TwoStageConfig &config,
                            const GStageTlbHooks *tlb = nullptr,
                            const VsPwcHooks *pwc = nullptr);

} // namespace hpmp

#endif // HPMP_PT_TWO_STAGE_H
