#include "pt/two_stage.h"

namespace hpmp
{

namespace
{

/**
 * G-stage translation of one guest-physical address. Appends the NPT
 * references performed and returns the supervisor-physical address,
 * or nullopt on a guest page fault. `leaf_perm`/`leaf_level` (when
 * non-null) receive the G-stage leaf permission and level — a hook
 * hit reports level 0, the hook's caching granularity.
 */
std::optional<Addr>
gStageTranslate(PhysMem &mem, Addr hgatp_root, Addr gpa, AccessType type,
                const TwoStageConfig &config, const GStageTlbHooks *tlb,
                TwoStageResult &out, Perm *leaf_perm = nullptr,
                unsigned *leaf_level = nullptr)
{
    const Addr gpa_page = alignDown(gpa, kPageSize);
    if (tlb && tlb->lookup) {
        if (auto hit = tlb->lookup(gpa_page, type)) {
            ++out.gstageTlbHits;
            if (leaf_perm)
                *leaf_perm = hit->perm;
            if (leaf_level)
                *leaf_level = 0;
            return hit->spaPage + pageOffset(gpa);
        }
    }

    // G-stage PTEs behave as user-accessible mappings (the spec
    // requires U=1 on G-stage leaves), so walk in user privilege.
    WalkResult walk = walkPageTable(mem, hgatp_root, gpa, type,
                                    PrivMode::User, config.gStage);
    ++out.gstageWalks;
    for (const PtRef &ref : walk.refs)
        out.refs.push_back({ref.pa, VirtRefKind::NptPage, ref.write,
                            ref.level});
    if (!walk.ok()) {
        out.fault = guestPageFaultFor(type);
        return std::nullopt;
    }
    if (leaf_perm)
        *leaf_perm = walk.perm;
    if (leaf_level)
        *leaf_level = walk.leafLevel;
    if (tlb && tlb->fill)
        tlb->fill(gpa_page, alignDown(walk.pa, kPageSize), walk.perm);
    return walk.pa;
}

} // namespace

TwoStageResult
walkTwoStage(PhysMem &mem, Addr vsatp_root, Addr hgatp_root, Addr gva,
             AccessType type, PrivMode priv, const TwoStageConfig &config,
             const GStageTlbHooks *tlb, const VsPwcHooks *pwc)
{
    TwoStageResult result;
    const unsigned levels = ptLevels(config.vsStage.mode);

    Addr table_gpa = vsatp_root;
    for (unsigned lvl = levels; lvl-- > 0;) {
        const Addr slot_gpa =
            table_gpa + vpn(gva, lvl, levels, config.vsStage.rootExtraBits) * 8;

        // A guest-PWC hit supplies the PTE without touching memory
        // (neither the guest-PT page nor its G-stage walk).
        Pte pte;
        bool from_pwc = false;
        std::optional<Addr> slot_spa;
        if (pwc && pwc->lookup) {
            if (auto cached = pwc->lookup(lvl, gva)) {
                pte = *cached;
                from_pwc = true;
            }
        }

        if (!from_pwc) {
            // The implicit guest-PT read goes through the G-stage first.
            slot_spa = gStageTranslate(mem, hgatp_root, slot_gpa,
                                       AccessType::Load, config, tlb,
                                       result);
            if (!slot_spa)
                return result;
            result.refs.push_back({*slot_spa, VirtRefKind::GptPage, false,
                                   lvl});
            pte = Pte{mem.read64(*slot_spa)};
            if (pwc && pwc->fill && pte.v())
                pwc->fill(lvl, gva, pte);
        }
        if (!pte.v() || (!pte.r() && pte.w())) {
            result.fault = pageFaultFor(type);
            return result;
        }

        if (pte.isLeaf()) {
            const uint64_t span_pages = pageSizeAtLevel(lvl) / kPageSize;
            if (pte.ppn() & (span_pages - 1)) {
                result.fault = pageFaultFor(type);
                return result;
            }
            result.fault = checkLeafPerms(pte, type, priv,
                                          config.vsStage.sumSet);
            if (result.fault != Fault::None)
                return result;

            const bool need_a = !pte.a();
            const bool need_d = type == AccessType::Store && !pte.d();
            if (need_a || need_d) {
                if (!config.vsStage.hardwareAdUpdate) {
                    result.fault = pageFaultFor(type);
                    return result;
                }
                // A PWC hit does not carry the PTE's location; the
                // update forces the G-stage walk it had skipped.
                if (!slot_spa) {
                    slot_spa = gStageTranslate(mem, hgatp_root, slot_gpa,
                                               AccessType::Store, config,
                                               tlb, result);
                    if (!slot_spa)
                        return result;
                }
                pte.setA(true);
                if (type == AccessType::Store)
                    pte.setD(true);
                mem.write64(*slot_spa, pte.raw);
                result.refs.push_back({*slot_spa, VirtRefKind::GptPage,
                                       true, lvl});
            }

            const uint64_t span = pageSizeAtLevel(lvl);
            result.gpa = pte.physAddr() + (gva & (span - 1));
            result.perm = pte.perm();
            result.user = pte.u();
            result.vsLeafLevel = lvl;

            // The final data access also translates through the G-stage.
            auto data_spa = gStageTranslate(mem, hgatp_root, result.gpa,
                                            type, config, tlb, result,
                                            &result.gPerm,
                                            &result.gLeafLevel);
            if (!data_spa)
                return result;
            result.spa = *data_spa;
            result.refs.push_back({*data_spa, VirtRefKind::Data,
                                   type == AccessType::Store, 0});
            return result;
        }

        if (pte.a() || pte.d() || pte.u()) {
            result.fault = pageFaultFor(type);
            return result;
        }
        table_gpa = pte.physAddr();
    }

    result.fault = pageFaultFor(type);
    return result;
}

VirtFaultOrigin
virtFaultOrigin(Fault fault)
{
    switch (fault) {
      case Fault::None:
        return VirtFaultOrigin::None;
      case Fault::LoadPageFault:
      case Fault::StorePageFault:
      case Fault::FetchPageFault:
        return VirtFaultOrigin::GuestStage;
      case Fault::GuestLoadPageFault:
      case Fault::GuestStorePageFault:
      case Fault::GuestFetchPageFault:
        return VirtFaultOrigin::GStage;
      case Fault::LoadAccessFault:
      case Fault::StoreAccessFault:
      case Fault::FetchAccessFault:
        return VirtFaultOrigin::Phys;
    }
    return VirtFaultOrigin::Phys;
}

const char *
toString(VirtFaultOrigin origin)
{
    switch (origin) {
      case VirtFaultOrigin::None:       return "none";
      case VirtFaultOrigin::GuestStage: return "guest-stage";
      case VirtFaultOrigin::GStage:     return "g-stage";
      case VirtFaultOrigin::Phys:       return "pmpte";
    }
    return "?";
}

} // namespace hpmp
