#include "pt/page_table.h"

#include "base/logging.h"

namespace hpmp
{

PageTable::PageTable(PhysMem &mem, FrameAllocator alloc, PagingMode mode,
                     unsigned root_extra_bits)
    : mem_(mem),
      alloc_(std::move(alloc)),
      mode_(mode),
      rootExtraBits_(root_extra_bits)
{
    const unsigned root_pages = 1u << root_extra_bits;
    rootPa_ = alloc_(root_pages);
    fatal_if(rootPa_ == kAllocFailed,
             "out of memory for the page-table root");
    panic_if(pageOffset(rootPa_) != 0, "unaligned root frame");
    for (unsigned i = 0; i < root_pages; ++i) {
        mem_.zeroPage(rootPa_ + i * kPageSize);
        ptPages_.push_back(rootPa_ + i * kPageSize);
    }
}

Addr
PageTable::pteAddr(Addr table, Addr va, unsigned level) const
{
    return table + vpn(va, level, levels(), rootExtraBits_) * 8;
}

bool
PageTable::map(Addr va, Addr pa, Perm perm, bool user, unsigned level,
               bool accessed, bool dirty)
{
    const uint64_t span = pageSizeAtLevel(level);
    fatal_if(level >= levels(), "map level %u out of range", level);
    fatal_if(va % span || pa % span,
             "map misaligned for level %u: va %#lx pa %#lx", level, va, pa);

    Addr table = rootPa_;
    for (unsigned lvl = levels() - 1; lvl > level; --lvl) {
        const Addr slot = pteAddr(table, va, lvl);
        Pte pte{mem_.read64(slot)};
        if (!pte.v()) {
            const Addr frame = alloc_(1);
            if (frame == kAllocFailed)
                return false; // no frame for the intermediate table
            mem_.zeroPage(frame);
            ptPages_.push_back(frame);
            pte = Pte::pointer(frame);
            mem_.write64(slot, pte.raw);
        } else if (pte.isLeaf()) {
            return false; // a superpage leaf already covers this range
        }
        table = pte.physAddr();
    }

    const Addr slot = pteAddr(table, va, level);
    Pte existing{mem_.read64(slot)};
    if (existing.v())
        return false;
    mem_.write64(slot, Pte::leaf(pa, perm, user, accessed, dirty).raw);
    return true;
}

bool
PageTable::unmap(Addr va)
{
    Addr table = rootPa_;
    for (unsigned lvl = levels(); lvl-- > 0;) {
        const Addr slot = pteAddr(table, va, lvl);
        Pte pte{mem_.read64(slot)};
        if (!pte.v())
            return false;
        if (pte.isLeaf()) {
            mem_.write64(slot, 0);
            return true;
        }
        table = pte.physAddr();
    }
    return false;
}

std::optional<Addr>
PageTable::translate(Addr va) const
{
    Addr table = rootPa_;
    for (unsigned lvl = levels(); lvl-- > 0;) {
        const Addr slot = pteAddr(table, va, lvl);
        Pte pte{mem_.read64(slot)};
        if (!pte.v())
            return std::nullopt;
        if (pte.isLeaf()) {
            const uint64_t span = pageSizeAtLevel(lvl);
            return pte.physAddr() + (va & (span - 1));
        }
        table = pte.physAddr();
    }
    return std::nullopt;
}

std::optional<Addr>
PageTable::leafPteAddr(Addr va) const
{
    Addr table = rootPa_;
    for (unsigned lvl = levels(); lvl-- > 0;) {
        const Addr slot = pteAddr(table, va, lvl);
        Pte pte{mem_.read64(slot)};
        if (!pte.v())
            return std::nullopt;
        if (pte.isLeaf())
            return slot;
        table = pte.physAddr();
    }
    return std::nullopt;
}

} // namespace hpmp
