/**
 * @file
 * Radix page-table builder.
 *
 * Builds real RISC-V page tables inside simulated physical memory so
 * the hardware walker model reads them back bit-exactly. The frame
 * allocator is supplied by the caller: the OS model passes either its
 * contiguous PT-page pool (the HPMP "fast GMS" policy) or a scattered
 * allocator (the baseline), which is exactly the software knob the
 * paper turns.
 */

#ifndef HPMP_PT_PAGE_TABLE_H
#define HPMP_PT_PAGE_TABLE_H

#include <optional>
#include <vector>

#include "base/frame_alloc.h"
#include "mem/phys_mem.h"
#include "pt/pte.h"

namespace hpmp
{

/** Builder/owner of one radix page table rooted in simulated memory. */
class PageTable
{
  public:
    /**
     * @param root_extra_bits widens the root index (2 for Sv39x4
     *        G-stage tables, whose root is four pages wide).
     */
    PageTable(PhysMem &mem, FrameAllocator alloc, PagingMode mode,
              unsigned root_extra_bits = 0);

    /** Physical address of the root table (satp/vsatp/hgatp PPN<<12). */
    Addr rootPa() const { return rootPa_; }

    PagingMode mode() const { return mode_; }
    unsigned rootExtraBits() const { return rootExtraBits_; }

    /**
     * Install a leaf mapping of `level` (0 = 4 KiB, 1 = 2 MiB, ...).
     * Both va and pa must be aligned to the level's page size.
     * By default leaves are created with A=D=1 so that hardware A/D
     * updates do not perturb reference counts; pass accessed=false to
     * exercise the update path.
     * @return false if the mapping would overwrite an existing leaf,
     *         or if the frame allocator failed (kAllocFailed) while
     *         growing an intermediate table level.
     */
    bool map(Addr va, Addr pa, Perm perm, bool user, unsigned level = 0,
             bool accessed = true, bool dirty = true);

    /** Remove the leaf covering va. @return false if not mapped. */
    bool unmap(Addr va);

    /** Functional translation (no timing, no A/D update). */
    std::optional<Addr> translate(Addr va) const;

    /** Physical addresses of every page-table page, root first. */
    const std::vector<Addr> &ptPages() const { return ptPages_; }

    /** Physical address of the leaf PTE covering va, for direct edits. */
    std::optional<Addr> leafPteAddr(Addr va) const;

  private:
    unsigned levels() const { return ptLevels(mode_); }
    Addr pteAddr(Addr table, Addr va, unsigned level) const;

    PhysMem &mem_;
    FrameAllocator alloc_;
    PagingMode mode_;
    unsigned rootExtraBits_;
    Addr rootPa_;
    std::vector<Addr> ptPages_;
};

} // namespace hpmp

#endif // HPMP_PT_PAGE_TABLE_H
