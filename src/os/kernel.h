/**
 * @file
 * OS-kernel model for one domain (host or enclave).
 *
 * The kernel owns the domain's physical memory (registered as GMSs
 * with the secure monitor), allocates frames for data and page-table
 * pages, and creates address spaces. Its HPMP support is the ~700-LoC
 * Linux change the paper describes: all page-table pages come from a
 * single contiguous pool, which the kernel registers as one GMS
 * labelled "fast" so the monitor can mirror it into a segment entry.
 */

#ifndef HPMP_OS_KERNEL_H
#define HPMP_OS_KERNEL_H

#include <memory>
#include <vector>

#include "monitor/secure_monitor.h"
#include "os/page_alloc.h"

namespace hpmp
{

class AddressSpace;

/** Kernel policy knobs. */
struct KernelConfig
{
    /**
     * Allocate all PT pages from one contiguous pool registered as a
     * fast GMS (the HPMP OS extension). When false, PT pages come
     * from the general allocator like any other page (baseline).
     */
    bool contiguousPtPool = true;
    uint64_t ptPoolBytes = 16_MiB;

    /** Fragment data-page placement (paper §8.8). */
    bool scatterData = false;
    uint64_t scatterSeed = 1;

    PagingMode pagingMode = PagingMode::Sv39;
};

/** The per-domain kernel. */
class Kernel
{
  public:
    /**
     * @param mem_base/mem_size the domain's physical memory; must be
     *        NAPOT when the monitor runs in plain-PMP mode.
     */
    Kernel(SecureMonitor &monitor, DomainId domain, Addr mem_base,
           uint64_t mem_size, const KernelConfig &config);
    ~Kernel();

    Machine &machine() { return monitor_.machine(); }
    SecureMonitor &monitor() { return monitor_; }
    DomainId domainId() const { return domain_; }
    const KernelConfig &config() const { return config_; }

    /** Allocate data frames (scatter-aware). */
    std::optional<Addr> allocData(unsigned npages);
    void freeData(Addr base, unsigned npages);

    /**
     * Allocate page-table frames: from the contiguous pool when
     * configured, falling back to the general allocator on pool
     * exhaustion (§6 — such PT pages are protected through the table
     * instead of the pool's fast segment).
     * @return frame base, or kAllocFailed when memory is exhausted.
     */
    Addr allocPtFrames(unsigned npages);

    /** Return one PT frame to whichever allocator owns it. */
    void freePtFrame(Addr frame);

    /** Create a new user address space. */
    std::unique_ptr<AddressSpace> createAddressSpace();

    /** Point the MMU at this address space and set privilege. */
    void activate(AddressSpace &as, PrivMode priv);

    /** Base of the PT pool (for tests), 0 when not configured. */
    Addr ptPoolBase() const { return ptPoolBase_; }

    PageAllocator &dataAllocator() { return *dataAlloc_; }

  private:
    SecureMonitor &monitor_;
    DomainId domain_;
    KernelConfig config_;
    Addr memBase_;
    uint64_t memSize_;

    Addr ptPoolBase_ = 0;
    std::unique_ptr<PageAllocator> ptAlloc_;   //!< pool allocator
    std::unique_ptr<PageAllocator> dataAlloc_; //!< everything else
};

} // namespace hpmp

#endif // HPMP_OS_KERNEL_H
