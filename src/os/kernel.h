/**
 * @file
 * OS-kernel model for one domain (host or enclave).
 *
 * The kernel owns the domain's physical memory (registered as GMSs
 * with the secure monitor), allocates frames for data and page-table
 * pages, and creates address spaces. Its HPMP support is the ~700-LoC
 * Linux change the paper describes: all page-table pages come from a
 * single contiguous pool, which the kernel registers as one GMS
 * labelled "fast" so the monitor can mirror it into a segment entry.
 */

#ifndef HPMP_OS_KERNEL_H
#define HPMP_OS_KERNEL_H

#include <memory>
#include <string>
#include <vector>

#include "base/stats.h"
#include "monitor/secure_monitor.h"
#include "os/page_alloc.h"

namespace hpmp
{

class AddressSpace;

/**
 * OS-layer event counters, aggregated per kernel across all of its
 * address spaces. Dumped as "<prefix>.*" (default "os.*") when the
 * kernel is registered with a StatRegistry — chaos campaigns use
 * per-hart prefixes ("hart1.os", ...) so SMP runs stay separable.
 */
struct KernelStats
{
    Counter dataAllocs;        //!< data-frame allocations served
    Counter dataAllocFails;    //!< data-frame allocator exhaustions
    Counter dataFrees;
    Counter ptPoolAllocs;      //!< PT frames served from the fast pool
    Counter ptFallbackAllocs;  //!< PT frames from the general allocator
    Counter ptAllocFails;      //!< PT-frame exhaustion (typed kAllocFailed)
    Counter ptFrees;
    Counter addressSpaces;     //!< address spaces created
    Counter activations;       //!< satp switches via Kernel::activate
    Counter mmaps;             //!< successful mmap/mapAt calls
    Counter munmaps;
    Counter pageFaultsHandled; //!< demand-paging faults populated
    Counter pagesPopulated;    //!< frames mapped (eager + demand)
    Counter mmapUnwinds;       //!< mid-population OOM rollbacks
};

/** Kernel policy knobs. */
struct KernelConfig
{
    /**
     * Allocate all PT pages from one contiguous pool registered as a
     * fast GMS (the HPMP OS extension). When false, PT pages come
     * from the general allocator like any other page (baseline).
     */
    bool contiguousPtPool = true;
    uint64_t ptPoolBytes = 16_MiB;

    /** Fragment data-page placement (paper §8.8). */
    bool scatterData = false;
    uint64_t scatterSeed = 1;

    PagingMode pagingMode = PagingMode::Sv39;
};

/** The per-domain kernel. */
class Kernel
{
  public:
    /**
     * @param mem_base/mem_size the domain's physical memory; must be
     *        NAPOT when the monitor runs in plain-PMP mode.
     */
    Kernel(SecureMonitor &monitor, DomainId domain, Addr mem_base,
           uint64_t mem_size, const KernelConfig &config);
    ~Kernel();

    Machine &machine() { return monitor_.machine(); }
    SecureMonitor &monitor() { return monitor_; }
    DomainId domainId() const { return domain_; }
    const KernelConfig &config() const { return config_; }

    /** Allocate data frames (scatter-aware). */
    std::optional<Addr> allocData(unsigned npages);
    void freeData(Addr base, unsigned npages);

    /**
     * Allocate page-table frames: from the contiguous pool when
     * configured, falling back to the general allocator on pool
     * exhaustion (§6 — such PT pages are protected through the table
     * instead of the pool's fast segment).
     * @return frame base, or kAllocFailed when memory is exhausted.
     */
    Addr allocPtFrames(unsigned npages);

    /** Return one PT frame to whichever allocator owns it. */
    void freePtFrame(Addr frame);

    /** Create a new user address space. */
    std::unique_ptr<AddressSpace> createAddressSpace();

    /** Point the MMU at this address space and set privilege. */
    void activate(AddressSpace &as, PrivMode priv);

    /** Base of the PT pool (for tests), 0 when not configured. */
    Addr ptPoolBase() const { return ptPoolBase_; }

    PageAllocator &dataAllocator() { return *dataAlloc_; }

    /** OS-layer counters (address spaces bump these too). */
    KernelStats &osStats() { return osStats_; }
    const KernelStats &osStats() const { return osStats_; }

    /**
     * Register the OS-layer counters as one "<prefix>" group. The
     * group is built on first call with that prefix; later calls
     * re-register the same group (the prefix must not change).
     */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix = "os");

  private:
    SecureMonitor &monitor_;
    DomainId domain_;
    KernelConfig config_;
    Addr memBase_;
    uint64_t memSize_;

    Addr ptPoolBase_ = 0;
    std::unique_ptr<PageAllocator> ptAlloc_;   //!< pool allocator
    std::unique_ptr<PageAllocator> dataAlloc_; //!< everything else

    KernelStats osStats_;
    std::unique_ptr<StatGroup> statGroup_; //!< built by registerStats
};

} // namespace hpmp

#endif // HPMP_OS_KERNEL_H
