#include "os/address_space.h"

#include "base/logging.h"
#include "os/kernel.h"

namespace hpmp
{

AddressSpace::AddressSpace(Kernel &kernel)
    : kernel_(kernel),
      pt_(kernel.machine().mem(),
          [&kernel](unsigned npages) {
              return kernel.allocPtFrames(npages);
          },
          kernel.config().pagingMode)
{
}

AddressSpace::~AddressSpace()
{
    // Release all populated frames; PT frames stay with the pool (the
    // pool is reclaimed wholesale when the domain is destroyed).
    while (!vmas_.empty()) {
        const auto &[base, vma] = *vmas_.begin();
        munmap(base, vma.len);
    }
}

Addr
AddressSpace::mmap(uint64_t len, Perm perm, bool user, bool populate)
{
    const Addr va = mmapNext_;
    mmapNext_ = alignUp(mmapNext_ + len + kPageSize, kPageSize);
    const bool ok = mapAt(va, len, perm, user, populate);
    panic_if(!ok, "mmap at fresh address failed");
    return va;
}

bool
AddressSpace::mapAt(Addr va, uint64_t len, Perm perm, bool user,
                    bool populate)
{
    fatal_if(va % kPageSize || len == 0, "mapAt requires page alignment");
    len = alignUp(len, kPageSize);

    for (const auto &[base, vma] : vmas_) {
        if (base < va + len && va < base + vma.len)
            return false;
    }
    Vma vma{va, len, perm, user};
    vmas_[va] = vma;
    if (populate) {
        for (Addr page = va; page < va + len; page += kPageSize)
            populatePage(vma, page);
    }
    if (va + len > mmapNext_)
        mmapNext_ = alignUp(va + len + kPageSize, kPageSize);
    return true;
}

void
AddressSpace::populatePage(const Vma &vma, Addr page_va)
{
    auto frame = kernel_.allocData(1);
    fatal_if(!frame, "out of memory populating %#lx", page_va);
    const bool ok = pt_.map(page_va, *frame, vma.perm, vma.user);
    panic_if(!ok, "double map at %#lx", page_va);
    present_.insert(pageNumber(page_va));
}

bool
AddressSpace::mapFrameAt(Addr va, Addr pa, Perm perm, bool user)
{
    fatal_if(va % kPageSize || pa % kPageSize,
             "mapFrameAt requires page alignment");
    return pt_.map(va, pa, perm, user);
}

bool
AddressSpace::munmap(Addr va, uint64_t len)
{
    auto it = vmas_.find(va);
    if (it == vmas_.end() || it->second.len != alignUp(len, kPageSize))
        return false;

    for (Addr page = va; page < va + it->second.len; page += kPageSize) {
        if (!present_.count(pageNumber(page)))
            continue;
        const auto pa = pt_.translate(page);
        panic_if(!pa, "present page %#lx not mapped", page);
        pt_.unmap(page);
        kernel_.freeData(alignDown(*pa, kPageSize), 1);
        present_.erase(pageNumber(page));
    }
    vmas_.erase(it);
    kernel_.machine().sfenceVma();
    return true;
}

bool
AddressSpace::handleFault(Addr va, AccessType type)
{
    (void)type;
    auto it = vmas_.upper_bound(va);
    if (it == vmas_.begin())
        return false;
    --it;
    const Vma &vma = it->second;
    if (va >= vma.base + vma.len)
        return false;
    const Addr page = alignDown(va, kPageSize);
    if (present_.count(pageNumber(page)))
        return false; // not a demand-paging fault
    populatePage(vma, page);
    ++faults_;
    return true;
}

bool
AddressSpace::populated(Addr va) const
{
    return present_.count(pageNumber(va)) != 0;
}

} // namespace hpmp
