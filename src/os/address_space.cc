#include "os/address_space.h"

#include "base/logging.h"
#include "os/kernel.h"

namespace hpmp
{

AddressSpace::AddressSpace(Kernel &kernel)
    : kernel_(kernel),
      pt_(kernel.machine().mem(),
          [&kernel](unsigned npages) {
              return kernel.allocPtFrames(npages);
          },
          kernel.config().pagingMode)
{
}

AddressSpace::~AddressSpace()
{
    // Release all populated frames; PT frames stay with the pool (the
    // pool is reclaimed wholesale when the domain is destroyed).
    while (!vmas_.empty()) {
        const auto &[base, vma] = *vmas_.begin();
        munmap(base, vma.len);
    }
}

Addr
AddressSpace::mmap(uint64_t len, Perm perm, bool user, bool populate)
{
    const auto va = tryMmap(len, perm, user, populate);
    fatal_if(!va, "mmap of %#lx bytes: out of memory", len);
    return *va;
}

std::optional<Addr>
AddressSpace::tryMmap(uint64_t len, Perm perm, bool user, bool populate)
{
    // A fresh address never overlaps, so mapAt can only fail on
    // allocator exhaustion — and it unwinds itself, so mmapNext_ is
    // the only thing left to (not) advance.
    const Addr va = mmapNext_;
    if (!mapAt(va, len, perm, user, populate))
        return std::nullopt;
    return va;
}

bool
AddressSpace::mapAt(Addr va, uint64_t len, Perm perm, bool user,
                    bool populate)
{
    fatal_if(va % kPageSize || len == 0, "mapAt requires page alignment");
    len = alignUp(len, kPageSize);

    for (const auto &[base, vma] : vmas_) {
        if (base < va + len && va < base + vma.len)
            return false;
    }
    Vma vma{va, len, perm, user};
    vmas_[va] = vma;
    if (populate) {
        for (Addr page = va; page < va + len; page += kPageSize) {
            if (populatePage(vma, page))
                continue;
            // Out of memory mid-population: unwind the pages already
            // populated and the VMA so the call has no effect.
            for (Addr undo = va; undo < page; undo += kPageSize) {
                const auto pa = pt_.translate(undo);
                panic_if(!pa, "populated page %#lx not mapped", undo);
                pt_.unmap(undo);
                kernel_.freeData(alignDown(*pa, kPageSize), 1);
                present_.erase(pageNumber(undo));
            }
            vmas_.erase(va);
            ++kernel_.osStats().mmapUnwinds;
            return false;
        }
    }
    if (va + len > mmapNext_)
        mmapNext_ = alignUp(va + len + kPageSize, kPageSize);
    ++kernel_.osStats().mmaps;
    return true;
}

bool
AddressSpace::populatePage(const Vma &vma, Addr page_va)
{
    auto frame = kernel_.allocData(1);
    if (!frame)
        return false; // data frames exhausted
    if (!pt_.map(page_va, *frame, vma.perm, vma.user)) {
        // map() fails either because a PT frame could not be
        // allocated (typed OOM — give the data frame back) or because
        // a leaf already exists, which present_ tracking rules out.
        panic_if(pt_.translate(page_va).has_value(),
                 "double map at %#lx", page_va);
        kernel_.freeData(*frame, 1);
        return false;
    }
    present_.insert(pageNumber(page_va));
    ++kernel_.osStats().pagesPopulated;
    return true;
}

bool
AddressSpace::mapFrameAt(Addr va, Addr pa, Perm perm, bool user)
{
    fatal_if(va % kPageSize || pa % kPageSize,
             "mapFrameAt requires page alignment");
    return pt_.map(va, pa, perm, user);
}

bool
AddressSpace::munmap(Addr va, uint64_t len)
{
    auto it = vmas_.find(va);
    if (it == vmas_.end() || it->second.len != alignUp(len, kPageSize))
        return false;

    for (Addr page = va; page < va + it->second.len; page += kPageSize) {
        if (!present_.count(pageNumber(page)))
            continue;
        const auto pa = pt_.translate(page);
        panic_if(!pa, "present page %#lx not mapped", page);
        pt_.unmap(page);
        kernel_.freeData(alignDown(*pa, kPageSize), 1);
        present_.erase(pageNumber(page));
    }
    vmas_.erase(it);
    kernel_.machine().sfenceVma();
    ++kernel_.osStats().munmaps;
    return true;
}

AddressSpace::FaultHandleStatus
AddressSpace::tryHandleFault(Addr va, AccessType type)
{
    (void)type;
    auto it = vmas_.upper_bound(va);
    if (it == vmas_.begin())
        return FaultHandleStatus::BadAddress;
    --it;
    const Vma &vma = it->second;
    if (va >= vma.base + vma.len)
        return FaultHandleStatus::BadAddress;
    const Addr page = alignDown(va, kPageSize);
    if (present_.count(pageNumber(page)))
        return FaultHandleStatus::BadAddress; // not demand paging
    if (!populatePage(vma, page))
        return FaultHandleStatus::OutOfMemory;
    ++faults_;
    ++kernel_.osStats().pageFaultsHandled;
    return FaultHandleStatus::Handled;
}

bool
AddressSpace::handleFault(Addr va, AccessType type)
{
    return tryHandleFault(va, type) == FaultHandleStatus::Handled;
}

bool
AddressSpace::populated(Addr va) const
{
    return present_.count(pageNumber(va)) != 0;
}

} // namespace hpmp
