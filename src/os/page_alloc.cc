#include "os/page_alloc.h"

#include "base/bitfield.h"
#include "base/fault_inject.h"
#include "base/logging.h"

namespace hpmp
{

PageAllocator::PageAllocator(Addr base, uint64_t size)
    : base_(base),
      size_(size)
{
    fatal_if(base % kPageSize || size % kPageSize,
             "allocator range must be page aligned");
    free_.insert(base, size);
}

std::optional<Addr>
PageAllocator::alloc(unsigned npages, uint64_t align)
{
    // Injected exhaustion: callers must treat it exactly like the
    // pool genuinely running dry.
    if (FAULT_POINT("os.page_alloc"))
        return std::nullopt;

    const uint64_t bytes = uint64_t(npages) * kPageSize;

    if (scatter_ && npages == 1 && align <= kPageSize) {
        // Pick a random free interval (weighted by trying a few times)
        // and a random page inside it.
        const auto &ivals = free_.intervals();
        if (ivals.empty())
            return std::nullopt;
        for (int attempt = 0; attempt < 8; ++attempt) {
            auto it = ivals.begin();
            std::advance(it, rng_.below(ivals.size()));
            const uint64_t pages = it->second / kPageSize;
            const Addr pick = it->first + pageAddr(rng_.below(pages));
            if (free_.erase(pick, kPageSize))
                return pick;
        }
        // Fall through to first-fit if the random picks raced away.
    }

    const auto fit = free_.findFit(bytes, align);
    if (!fit)
        return std::nullopt;
    const bool ok = free_.erase(*fit, bytes);
    panic_if(!ok, "findFit returned an unusable range");
    return *fit;
}

std::optional<Addr>
PageAllocator::allocTop(unsigned npages)
{
    if (FAULT_POINT("os.page_alloc"))
        return std::nullopt;

    const uint64_t bytes = uint64_t(npages) * kPageSize;
    const auto &ivals = free_.intervals();
    for (auto it = ivals.rbegin(); it != ivals.rend(); ++it) {
        if (it->second >= bytes) {
            const Addr base = it->first + it->second - bytes;
            const bool ok = free_.erase(base, bytes);
            panic_if(!ok, "allocTop erase failed");
            return base;
        }
    }
    return std::nullopt;
}

std::optional<Addr>
PageAllocator::allocNapot(uint64_t size)
{
    fatal_if(!isPowerOf2(size) || size < kPageSize,
             "NAPOT size must be a power of two >= 4 KiB");
    return alloc(unsigned(size / kPageSize), size);
}

void
PageAllocator::free(Addr addr, unsigned npages)
{
    const bool ok = free_.insert(addr, uint64_t(npages) * kPageSize);
    panic_if(!ok, "double free at %#lx", addr);
}

void
PageAllocator::setScatter(bool on, uint64_t seed)
{
    scatter_ = on;
    rng_.reseed(seed);
}

} // namespace hpmp
