/**
 * @file
 * Physical frame allocator for the OS model.
 *
 * First-fit over an interval set, with an optional *scatter* mode that
 * deliberately randomizes placement to create the fragmented-physical-
 * pages conditions of the paper's §8.8 (on-demand paging, co-location
 * and virtualization all fragment physical memory in practice).
 */

#ifndef HPMP_OS_PAGE_ALLOC_H
#define HPMP_OS_PAGE_ALLOC_H

#include <optional>

#include "base/interval_set.h"
#include "base/rng.h"

namespace hpmp
{

/** First-fit page allocator with optional randomized placement. */
class PageAllocator
{
  public:
    PageAllocator(Addr base, uint64_t size);

    /**
     * Allocate npages contiguous frames aligned to `align` bytes.
     * @return base address, or nullopt when exhausted.
     */
    std::optional<Addr> alloc(unsigned npages,
                              uint64_t align = kPageSize);

    /** Allocate a NAPOT region (power-of-two size, naturally aligned). */
    std::optional<Addr> allocNapot(uint64_t size);

    /**
     * Allocate from the top of the free space (last fit). Used for
     * kernel-internal allocations (PT pages) so they do not perturb
     * the placement of data pages across experiment configurations.
     */
    std::optional<Addr> allocTop(unsigned npages);

    /** Return frames to the pool. */
    void free(Addr base, unsigned npages);

    /**
     * Scatter mode: single-page allocations are placed at a random
     * offset in the free space instead of first-fit, fragmenting the
     * physical layout.
     */
    void setScatter(bool on, uint64_t seed = 1);

    uint64_t freeBytes() const { return free_.totalBytes(); }
    size_t fragments() const { return free_.intervalCount(); }
    Addr base() const { return base_; }
    uint64_t size() const { return size_; }

  private:
    Addr base_;
    uint64_t size_;
    IntervalSet free_;
    bool scatter_ = false;
    Rng rng_;
};

} // namespace hpmp

#endif // HPMP_OS_PAGE_ALLOC_H
