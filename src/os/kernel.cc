#include "os/kernel.h"

#include "base/bitfield.h"
#include "base/fault_inject.h"
#include "base/logging.h"
#include "os/address_space.h"

namespace hpmp
{

Kernel::Kernel(SecureMonitor &monitor, DomainId domain, Addr mem_base,
               uint64_t mem_size, const KernelConfig &config)
    : monitor_(monitor),
      domain_(domain),
      config_(config),
      memBase_(mem_base),
      memSize_(mem_size)
{
    // The data region starts past the PT-pool carve-out in *all*
    // configurations so that experiments comparing schemes see the
    // same physical data placement; the baseline simply does not use
    // the pool (its PT pages come from the data allocator).
    fatal_if(!isPowerOf2(config_.ptPoolBytes) ||
                 mem_base % config_.ptPoolBytes,
             "PT pool must be NAPOT within the domain region");
    const Addr data_base = mem_base + config_.ptPoolBytes;
    const uint64_t data_size = mem_size - config_.ptPoolBytes;

    if (config_.contiguousPtPool) {
        // Register the pool as one "fast" GMS — the monitor will
        // mirror it into a segment entry under the HPMP scheme.
        ptPoolBase_ = mem_base;
        ptAlloc_ = std::make_unique<PageAllocator>(ptPoolBase_,
                                                   config_.ptPoolBytes);
        auto res = monitor_.addGms(
            domain_, Gms{ptPoolBase_, config_.ptPoolBytes, Perm::rw(),
                         GmsLabel::Fast});
        fatal_if(!res.ok, "registering PT-pool GMS failed: %s",
                 res.error.c_str());
        res = monitor_.addGms(
            domain_, Gms{data_base, data_size, Perm::rwx(),
                         GmsLabel::Slow});
        fatal_if(!res.ok, "registering data GMS failed: %s",
                 res.error.c_str());
    } else {
        auto res = monitor_.addGms(
            domain_, Gms{mem_base, mem_size, Perm::rwx(),
                         GmsLabel::Slow});
        fatal_if(!res.ok, "registering domain GMS failed: %s",
                 res.error.c_str());
    }

    dataAlloc_ = std::make_unique<PageAllocator>(data_base, data_size);
    dataAlloc_->setScatter(config_.scatterData, config_.scatterSeed);
}

Kernel::~Kernel() = default;

std::optional<Addr>
Kernel::allocData(unsigned npages)
{
    auto frame = dataAlloc_->alloc(npages);
    if (frame)
        ++osStats_.dataAllocs;
    else
        ++osStats_.dataAllocFails;
    return frame;
}

void
Kernel::freeData(Addr addr, unsigned npages)
{
    ++osStats_.dataFrees;
    dataAlloc_->free(addr, npages);
}

Addr
Kernel::allocPtFrames(unsigned npages)
{
    // "os.pt_pool_miss" simulates pool exhaustion without filling the
    // pool first: the request takes the same fallback path a full pool
    // would (paper §6 — PT pages not in the contiguous pool are still
    // protected, via the table instead of the fast segment).
    const bool pool_miss = FAULT_POINT("os.pt_pool_miss");
    if (ptAlloc_ && !pool_miss) {
        if (auto frame = ptAlloc_->alloc(npages)) {
            ++osStats_.ptPoolAllocs;
            return *frame;
        }
        warn("PT pool exhausted; falling back to the data allocator");
    }
    // Baseline / fallback: PT pages come from the general allocator.
    // Allocate from the top so data placement matches the pool
    // configuration; under scatter mode they spread like everything
    // else.
    auto frame = config_.scatterData ? dataAlloc_->alloc(npages)
                                     : dataAlloc_->allocTop(npages);
    if (!frame) {
        ++osStats_.ptAllocFails;
        return kAllocFailed; // typed exhaustion, caller unwinds
    }
    ++osStats_.ptFallbackAllocs;
    return *frame;
}

void
Kernel::freePtFrame(Addr frame)
{
    ++osStats_.ptFrees;
    if (ptAlloc_ && frame >= ptPoolBase_ &&
        frame < ptPoolBase_ + config_.ptPoolBytes) {
        ptAlloc_->free(frame, 1);
    } else {
        dataAlloc_->free(frame, 1);
    }
}

std::unique_ptr<AddressSpace>
Kernel::createAddressSpace()
{
    ++osStats_.addressSpaces;
    return std::make_unique<AddressSpace>(*this);
}

void
Kernel::activate(AddressSpace &as, PrivMode priv)
{
    ++osStats_.activations;
    Machine &m = machine();
    m.setSatp(as.rootPa(), config_.pagingMode);
    m.setPriv(priv);
}

void
Kernel::registerStats(StatRegistry &registry, const std::string &prefix)
{
    if (!statGroup_) {
        statGroup_ = std::make_unique<StatGroup>(prefix);
        statGroup_->add("data_allocs", &osStats_.dataAllocs);
        statGroup_->add("data_alloc_fails", &osStats_.dataAllocFails);
        statGroup_->add("data_frees", &osStats_.dataFrees);
        statGroup_->add("pt_pool_allocs", &osStats_.ptPoolAllocs);
        statGroup_->add("pt_fallback_allocs",
                        &osStats_.ptFallbackAllocs);
        statGroup_->add("pt_alloc_fails", &osStats_.ptAllocFails);
        statGroup_->add("pt_frees", &osStats_.ptFrees);
        statGroup_->add("address_spaces", &osStats_.addressSpaces);
        statGroup_->add("activations", &osStats_.activations);
        statGroup_->add("mmaps", &osStats_.mmaps);
        statGroup_->add("munmaps", &osStats_.munmaps);
        statGroup_->add("page_faults_handled",
                        &osStats_.pageFaultsHandled);
        statGroup_->add("pages_populated", &osStats_.pagesPopulated);
        statGroup_->add("mmap_unwinds", &osStats_.mmapUnwinds);
    }
    fatal_if(statGroup_->name() != prefix,
             "kernel stats already registered as '%s', not '%s'",
             statGroup_->name().c_str(), prefix.c_str());
    registry.add(statGroup_.get());
}

} // namespace hpmp
