/**
 * @file
 * A user address space: VMAs + a real page table with demand paging.
 *
 * Workload models run on top of this: mmap regions, touch pages (the
 * touch drives page faults, PT growth and therefore PT-page checking
 * traffic), and issue loads/stores through the Machine.
 */

#ifndef HPMP_OS_ADDRESS_SPACE_H
#define HPMP_OS_ADDRESS_SPACE_H

#include <map>
#include <unordered_set>

#include "pt/page_table.h"

namespace hpmp
{

class Kernel;

/** One process address space. */
class AddressSpace
{
  public:
    explicit AddressSpace(Kernel &kernel);
    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    PageTable &pageTable() { return pt_; }
    Addr rootPa() const { return pt_.rootPa(); }

    /**
     * Map `len` bytes of anonymous memory at a kernel-chosen address.
     * With populate, frames are allocated and mapped eagerly;
     * otherwise pages fault in on first touch.
     * @return the chosen virtual base address; memory exhaustion is
     *         fatal (legacy workload API — use tryMmap for the typed
     *         failure).
     */
    Addr mmap(uint64_t len, Perm perm, bool user = true,
              bool populate = true);

    /**
     * Like mmap, but allocator exhaustion (data frames or PT frames)
     * is reported instead of fatal: returns nullopt and leaves the
     * address space exactly as it was — any pages populated before
     * the failure are unwound.
     */
    std::optional<Addr> tryMmap(uint64_t len, Perm perm,
                                bool user = true, bool populate = true);

    /**
     * Map at a fixed address. @return false if it overlaps a VMA or
     * if populating ran out of memory (partial work is unwound).
     */
    bool mapAt(Addr va, uint64_t len, Perm perm, bool user,
               bool populate);

    /** Unmap [va, va+len), freeing any populated frames. */
    bool munmap(Addr va, uint64_t len);

    /**
     * Map one specific physical frame at va (kernel windows onto
     * page-table pages, device memory, shared buffers). The frame is
     * not owned by this address space and is not freed on unmap.
     */
    bool mapFrameAt(Addr va, Addr pa, Perm perm, bool user);

    /** Why a demand-paging fault could not be handled. */
    enum class FaultHandleStatus
    {
        Handled,     //!< page populated, retry the access
        BadAddress,  //!< no VMA covers va (or already populated)
        OutOfMemory, //!< typed allocator exhaustion, nothing changed
    };

    /** Demand-paging entry point with a typed outcome. */
    FaultHandleStatus tryHandleFault(Addr va, AccessType type);

    /**
     * Legacy demand-paging entry point.
     * @return true iff the fault was handled (OOM reads as unhandled).
     */
    bool handleFault(Addr va, AccessType type);

    /** True iff the page containing va has a frame. */
    bool populated(Addr va) const;

    uint64_t pageFaults() const { return faults_; }
    uint64_t populatedPages() const { return present_.size(); }

  private:
    struct Vma
    {
        Addr base = 0;
        uint64_t len = 0;
        Perm perm;
        bool user = true;
    };

    /**
     * Allocate and map one page of the given VMA.
     * @return false on allocator exhaustion (data or PT frames), with
     *         any allocated frame returned to the pool.
     */
    bool populatePage(const Vma &vma, Addr page_va);

    Kernel &kernel_;
    PageTable pt_;
    std::map<Addr, Vma> vmas_;
    std::unordered_set<uint64_t> present_; //!< populated VPNs
    Addr mmapNext_ = 0x40000000;
    uint64_t faults_ = 0;
};

} // namespace hpmp

#endif // HPMP_OS_ADDRESS_SPACE_H
