#include "base/stats.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace hpmp
{

unsigned
Distribution::usedBuckets() const
{
    unsigned used = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (buckets_[i])
            used = i + 1;
    }
    return used;
}

double
Distribution::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p <= 0.0)
        return double(min());
    if (p >= 1.0)
        return double(max_);

    // Rank of the target sample (1-based), then walk the buckets to
    // the one holding it and interpolate by rank position inside.
    const double rank = p * double(count_);
    uint64_t below = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        const uint64_t in_bucket = buckets_[i];
        if (in_bucket == 0)
            continue;
        if (double(below + in_bucket) >= rank) {
            const double low = double(bucketLow(i));
            const double high = double(bucketHigh(i));
            const double frac = (rank - double(below)) / double(in_bucket);
            double v = low + (high - low) * frac;
            if (v < double(min()))
                v = double(min());
            if (v > double(max_))
                v = double(max_);
            return v;
        }
        below += in_bucket;
    }
    return double(max_);
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0;
    min_ = ~0ull;
    max_ = 0;
    for (uint64_t &b : buckets_)
        b = 0;
}

void
StatGroup::add(const std::string &stat_name, Counter *counter)
{
    counters_[stat_name] = counter;
}

void
StatGroup::add(const std::string &stat_name, Distribution *dist)
{
    dists_[stat_name] = dist;
}

void
StatGroup::add(const std::string &stat_name, Formula *formula)
{
    formulas_[stat_name] = formula;
}

uint64_t
StatGroup::get(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? 0 : it->second->value();
}

double
StatGroup::getFormula(const std::string &stat_name) const
{
    auto it = formulas_.find(stat_name);
    return it == formulas_.end() ? 0.0 : it->second->value();
}

const Distribution *
StatGroup::getDist(const std::string &stat_name) const
{
    auto it = dists_.find(stat_name);
    return it == dists_.end() ? nullptr : it->second;
}

void
StatGroup::resetAll()
{
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, dist] : dists_)
        dist->reset();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[name, counter] : counters_)
        os << name_ << '.' << name << ' ' << counter->value() << '\n';
    for (const auto &[name, dist] : dists_) {
        os << name_ << '.' << name << " count " << dist->count()
           << " min " << dist->min() << " max " << dist->max();
        char mean[32];
        std::snprintf(mean, sizeof(mean), "%.2f", dist->mean());
        os << " mean " << mean << '\n';
    }
    for (const auto &[name, formula] : formulas_) {
        char value[32];
        std::snprintf(value, sizeof(value), "%.4f", formula->value());
        os << name_ << '.' << name << ' ' << value << '\n';
    }
    return os.str();
}

namespace
{

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

} // namespace

void
StatGroup::dumpJson(std::string &out, const std::string &indent) const
{
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out += ",\n";
        first = false;
        out += indent;
    };

    out += "{\n";
    for (const auto &[name, counter] : counters_) {
        sep();
        appendJsonString(out, name);
        out += ": " + std::to_string(counter->value());
    }
    for (const auto &[name, dist] : dists_) {
        sep();
        appendJsonString(out, name);
        out += ": {\"count\": " + std::to_string(dist->count());
        out += ", \"sum\": " + std::to_string(dist->sum());
        out += ", \"min\": " + std::to_string(dist->min());
        out += ", \"max\": " + std::to_string(dist->max());
        out += ", \"mean\": ";
        appendDouble(out, dist->mean());
        out += ", \"p50\": ";
        appendDouble(out, dist->percentile(0.50));
        out += ", \"p99\": ";
        appendDouble(out, dist->percentile(0.99));
        out += ", \"p999\": ";
        appendDouble(out, dist->percentile(0.999));
        out += ", \"buckets\": [";
        const unsigned used = dist->usedBuckets();
        for (unsigned i = 0; i < used; ++i) {
            if (i)
                out += ", ";
            out += std::to_string(dist->bucket(i));
        }
        out += "]}";
    }
    for (const auto &[name, formula] : formulas_) {
        sep();
        appendJsonString(out, name);
        out += ": ";
        appendDouble(out, formula->value());
    }
    out += "\n" + indent.substr(0, indent.size() > 2 ? indent.size() - 2 : 0);
    out += "}";
}

void
StatRegistry::add(StatGroup *group)
{
    groups_.push_back(group);
}

StatGroup &
StatRegistry::makeGroup(const std::string &name)
{
    if (StatGroup *existing = find(name))
        return *existing;
    owned_.push_back(std::make_unique<StatGroup>(name));
    groups_.push_back(owned_.back().get());
    return *owned_.back();
}

StatGroup *
StatRegistry::find(const std::string &name) const
{
    for (StatGroup *group : groups_) {
        if (group->name() == name)
            return group;
    }
    return nullptr;
}

void
StatRegistry::resetAll()
{
    for (StatGroup *group : groups_)
        group->resetAll();
}

std::string
StatRegistry::dumpText() const
{
    std::string out;
    for (const StatGroup *group : groups_)
        out += group->dump();
    return out;
}

std::string
StatRegistry::dumpJson() const
{
    // Sort groups by name (stable, so same-named groups keep their
    // registration order): byte-identical dumps for identical state,
    // whatever order components registered in.
    std::vector<const StatGroup *> sorted(groups_.begin(), groups_.end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const StatGroup *a, const StatGroup *b) {
                         return a->name() < b->name();
                     });

    std::string out = "{\n  \"groups\": {\n";
    bool first = true;
    for (const StatGroup *group : sorted) {
        if (!first)
            out += ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, group->name());
        out += ": ";
        group->dumpJson(out, "      ");
    }
    out += "\n  }\n}\n";
    return out;
}

bool
StatRegistry::writeJsonFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string json = dumpJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                    json.size();
    return std::fclose(f) == 0 && ok;
}

namespace
{

/** Cursor over the JSON text for the flat parser below. */
struct JsonCursor
{
    const std::string &text;
    size_t pos = 0;

    void
    skipWs()
    {
        while (pos < text.size() && std::isspace((unsigned char)text[pos]))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        skipWs();
        return pos < text.size() && text[pos] == c;
    }
};

bool
parseString(JsonCursor &cur, std::string &out)
{
    if (!cur.consume('"'))
        return false;
    out.clear();
    while (cur.pos < cur.text.size()) {
        const char c = cur.text[cur.pos++];
        if (c == '"')
            return true;
        if (c == '\\') {
            if (cur.pos >= cur.text.size())
                return false;
            out += cur.text[cur.pos++];
        } else {
            out += c;
        }
    }
    return false;
}

bool
parseValue(JsonCursor &cur, const std::string &prefix,
           std::map<std::string, double> &out)
{
    cur.skipWs();
    if (cur.peek('{')) {
        cur.consume('{');
        if (cur.consume('}'))
            return true;
        do {
            std::string key;
            if (!parseString(cur, key) || !cur.consume(':'))
                return false;
            const std::string path =
                prefix.empty() ? key : prefix + "." + key;
            if (!parseValue(cur, path, out))
                return false;
        } while (cur.consume(','));
        return cur.consume('}');
    }
    if (cur.peek('[')) {
        cur.consume('[');
        if (cur.consume(']'))
            return true;
        unsigned idx = 0;
        do {
            if (!parseValue(cur, prefix + "." + std::to_string(idx++),
                            out)) {
                return false;
            }
        } while (cur.consume(','));
        return cur.consume(']');
    }
    if (cur.peek('"')) {
        std::string ignored;
        return parseString(cur, ignored); // strings are not flattened
    }
    // A number.
    cur.skipWs();
    size_t used = 0;
    double v = 0.0;
    try {
        v = std::stod(cur.text.substr(cur.pos), &used);
    } catch (...) {
        return false;
    }
    if (used == 0)
        return false;
    cur.pos += used;
    out[prefix] = v;
    return true;
}

} // namespace

bool
parseStatsJson(const std::string &text, std::map<std::string, double> &out)
{
    JsonCursor cur{text};
    if (!parseValue(cur, "", out))
        return false;
    cur.skipWs();
    return cur.pos == text.size();
}

StatSampler::StatSampler(const StatRegistry &registry,
                         uint64_t intervalCycles, size_t maxWindows)
    : registry_(registry),
      interval_(intervalCycles ? intervalCycles : 1),
      maxWindows_(maxWindows),
      nextTick_(interval_)
{
}

void
StatSampler::advanceTo(uint64_t nowCycles)
{
    while (nowCycles >= nextTick_) {
        sample(nextTick_);
        nextTick_ += interval_;
    }
}

void
StatSampler::sample(uint64_t nowCycles)
{
    if (ticks_.size() >= maxWindows_) {
        ++dropped_;
        return;
    }

    std::map<std::string, double> flat;
    parseStatsJson(registry_.dumpJson(), flat);

    const size_t window = ticks_.size();
    ticks_.push_back(nowCycles);
    for (const auto &[key, value] : flat) {
        auto &column = series_[key];
        column.resize(window, 0.0); // backfill a key appearing mid-run
        column.push_back(value);
    }
    // A key that vanished (can't happen with static registries, but
    // keep the columns rectangular regardless).
    for (auto &[key, column] : series_) {
        if (column.size() <= window)
            column.resize(window + 1, 0.0);
    }
}

const std::vector<double> &
StatSampler::series(const std::string &key) const
{
    static const std::vector<double> kEmpty;
    auto it = series_.find(key);
    return it == series_.end() ? kEmpty : it->second;
}

std::string
StatSampler::dumpJson() const
{
    std::string out = "{\n  \"interval\": " + std::to_string(interval_);
    out += ",\n  \"dropped_windows\": " + std::to_string(dropped_);
    out += ",\n  \"ticks\": [";
    for (size_t i = 0; i < ticks_.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(ticks_[i]);
    }
    out += "],\n  \"series\": {";
    bool first = true;
    for (const auto &[key, column] : series_) {
        if (!first)
            out += ",";
        first = false;
        out += "\n    ";
        appendJsonString(out, key);
        out += ": [";
        for (size_t i = 0; i < column.size(); ++i) {
            if (i)
                out += ", ";
            appendDouble(out, column[i]);
        }
        out += "]";
    }
    out += series_.empty() ? "}\n}\n" : "\n  }\n}\n";
    return out;
}

bool
StatSampler::writeJsonFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string json = dumpJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace hpmp
