#include "base/stats.h"

#include <sstream>

namespace hpmp
{

uint64_t
StatGroup::get(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? 0 : it->second->value();
}

void
StatGroup::resetAll()
{
    for (auto &[name, counter] : counters_)
        counter->reset();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[name, counter] : counters_)
        os << name_ << '.' << name << ' ' << counter->value() << '\n';
    return os.str();
}

} // namespace hpmp
