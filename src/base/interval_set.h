/**
 * @file
 * Set of disjoint half-open address intervals [base, base+size).
 *
 * Used by the physical page allocator (free lists, fragmentation
 * accounting) and by the secure monitor to validate that GMS regions
 * do not overlap.
 */

#ifndef HPMP_BASE_INTERVAL_SET_H
#define HPMP_BASE_INTERVAL_SET_H

#include <cstdint>
#include <map>
#include <optional>

#include "base/addr.h"

namespace hpmp
{

/** Disjoint interval set with coalescing insert and splitting erase. */
class IntervalSet
{
  public:
    /**
     * Insert [base, base+size), coalescing with neighbours.
     * @return false if the range overlaps an existing interval.
     */
    bool insert(Addr base, uint64_t size);

    /**
     * Remove [base, base+size). The range must be fully contained in
     * one existing interval (it may split it).
     * @return false if the range is not fully covered.
     */
    bool erase(Addr base, uint64_t size);

    /** True iff [base, base+size) is fully contained in one interval. */
    bool contains(Addr base, uint64_t size) const;

    /** True iff [base, base+size) overlaps any interval. */
    bool overlaps(Addr base, uint64_t size) const;

    /**
     * Find the lowest interval of at least `size` bytes whose base is
     * aligned to `align` (after rounding the base up).
     * @return the aligned base address, or nullopt.
     */
    std::optional<Addr> findFit(uint64_t size, uint64_t align = 1) const;

    /** Number of disjoint intervals (fragmentation proxy). */
    size_t intervalCount() const { return intervals_.size(); }

    /** Total bytes covered. */
    uint64_t totalBytes() const;

    /** All intervals as (base, size) pairs in address order. */
    const std::map<Addr, uint64_t> &intervals() const { return intervals_; }

  private:
    std::map<Addr, uint64_t> intervals_; // base -> size
};

} // namespace hpmp

#endif // HPMP_BASE_INTERVAL_SET_H
