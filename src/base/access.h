/**
 * @file
 * Shared access vocabulary: access types, privilege modes, permissions
 * and fault codes, following the RISC-V privileged specification.
 */

#ifndef HPMP_BASE_ACCESS_H
#define HPMP_BASE_ACCESS_H

#include <cstdint>

#include "base/addr.h"

namespace hpmp
{

/** Kind of memory operation. */
enum class AccessType : uint8_t { Load, Store, Fetch };

/**
 * One (address, type) access request: the unit of batched replay
 * (Machine::accessBatch) and of recorded traces.
 */
struct AccessRequest
{
    Addr va = 0;
    AccessType type = AccessType::Load;

    bool operator==(const AccessRequest &) const = default;
};

/** RISC-V privilege mode of the requester. */
enum class PrivMode : uint8_t { User, Supervisor, Machine };

/** R/W/X permission triple used by PTEs, PMP and PMP-table entries. */
struct Perm
{
    bool r = false;
    bool w = false;
    bool x = false;

    constexpr bool
    allows(AccessType type) const
    {
        switch (type) {
          case AccessType::Load: return r;
          case AccessType::Store: return w;
          case AccessType::Fetch: return x;
        }
        return false;
    }

    constexpr bool any() const { return r || w || x; }
    constexpr bool operator==(const Perm &) const = default;

    static constexpr Perm rw() { return {true, true, false}; }
    static constexpr Perm rwx() { return {true, true, true}; }
    static constexpr Perm ro() { return {true, false, false}; }
    static constexpr Perm rx() { return {true, false, true}; }
    static constexpr Perm xo() { return {false, false, true}; }
    static constexpr Perm none() { return {}; }
};

/** Translation / protection fault kinds (subset of mcause encodings). */
enum class Fault : uint8_t
{
    None,
    LoadPageFault,
    StorePageFault,
    FetchPageFault,
    LoadAccessFault,   //!< physical-memory protection (PMP/PMPT) denial
    StoreAccessFault,
    FetchAccessFault,
    GuestLoadPageFault,  //!< G-stage translation failure
    GuestStorePageFault,
    GuestFetchPageFault,
    MachineCheck,        //!< uncorrectable memory error (poison consumed)
};

/** The page-fault code matching an access type. */
constexpr Fault
pageFaultFor(AccessType type)
{
    switch (type) {
      case AccessType::Load: return Fault::LoadPageFault;
      case AccessType::Store: return Fault::StorePageFault;
      case AccessType::Fetch: return Fault::FetchPageFault;
    }
    return Fault::LoadPageFault;
}

/** The access-fault (PMP-style) code matching an access type. */
constexpr Fault
accessFaultFor(AccessType type)
{
    switch (type) {
      case AccessType::Load: return Fault::LoadAccessFault;
      case AccessType::Store: return Fault::StoreAccessFault;
      case AccessType::Fetch: return Fault::FetchAccessFault;
    }
    return Fault::LoadAccessFault;
}

/** The guest-page-fault code matching an access type. */
constexpr Fault
guestPageFaultFor(AccessType type)
{
    switch (type) {
      case AccessType::Load: return Fault::GuestLoadPageFault;
      case AccessType::Store: return Fault::GuestStorePageFault;
      case AccessType::Fetch: return Fault::GuestFetchPageFault;
    }
    return Fault::GuestLoadPageFault;
}

const char *toString(AccessType type);
const char *toString(Fault fault);

} // namespace hpmp

#endif // HPMP_BASE_ACCESS_H
