/**
 * @file
 * Fixed-capacity inline vector.
 *
 * The walkers return short reference lists (at most a handful of
 * entries) on every simulated access; a heap-backed std::vector there
 * dominates the simulator's hot path. SmallVec stores elements inline
 * with a fixed capacity and panics on overflow (capacities are sized
 * from architectural limits, so overflow is a simulator bug).
 */

#ifndef HPMP_BASE_SMALL_VEC_H
#define HPMP_BASE_SMALL_VEC_H

#include <array>
#include <cstddef>

#include "base/logging.h"

namespace hpmp
{

/** Inline vector of trivially copyable elements. */
template <typename T, size_t N>
class SmallVec
{
  public:
    using value_type = T;

    void
    push_back(const T &value)
    {
        panic_if(size_ >= N, "SmallVec overflow (capacity %zu)", N);
        data_[size_++] = value;
    }

    void clear() { size_ = 0; }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }

    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    T *begin() { return data_.data(); }
    T *end() { return data_.data() + size_; }
    const T *begin() const { return data_.data(); }
    const T *end() const { return data_.data() + size_; }

  private:
    std::array<T, N> data_;
    size_t size_ = 0;
};

} // namespace hpmp

#endif // HPMP_BASE_SMALL_VEC_H
