#include "base/interval_set.h"

#include "base/bitfield.h"
#include "base/logging.h"

namespace hpmp
{

bool
IntervalSet::insert(Addr base, uint64_t size)
{
    if (size == 0)
        return true;
    if (overlaps(base, size))
        return false;

    Addr new_base = base;
    uint64_t new_size = size;

    // Coalesce with the predecessor if it ends exactly at base.
    auto it = intervals_.lower_bound(base);
    if (it != intervals_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == base) {
            new_base = prev->first;
            new_size += prev->second;
            intervals_.erase(prev);
        }
    }
    // Coalesce with the successor if it begins exactly at the end.
    it = intervals_.lower_bound(new_base + new_size);
    if (it != intervals_.end() && it->first == new_base + new_size) {
        new_size += it->second;
        intervals_.erase(it);
    }
    intervals_[new_base] = new_size;
    return true;
}

bool
IntervalSet::erase(Addr base, uint64_t size)
{
    if (size == 0)
        return true;
    if (!contains(base, size))
        return false;

    auto it = intervals_.upper_bound(base);
    panic_if(it == intervals_.begin(), "contains() lied about coverage");
    --it;
    const Addr ival_base = it->first;
    const uint64_t ival_size = it->second;
    intervals_.erase(it);

    if (ival_base < base)
        intervals_[ival_base] = base - ival_base;
    const Addr end = base + size;
    const Addr ival_end = ival_base + ival_size;
    if (end < ival_end)
        intervals_[end] = ival_end - end;
    return true;
}

bool
IntervalSet::contains(Addr base, uint64_t size) const
{
    auto it = intervals_.upper_bound(base);
    if (it == intervals_.begin())
        return false;
    --it;
    return it->first <= base && base + size <= it->first + it->second;
}

bool
IntervalSet::overlaps(Addr base, uint64_t size) const
{
    if (size == 0)
        return false;
    auto it = intervals_.lower_bound(base);
    if (it != intervals_.end() && it->first < base + size)
        return true;
    if (it != intervals_.begin()) {
        --it;
        if (it->first + it->second > base)
            return true;
    }
    return false;
}

std::optional<Addr>
IntervalSet::findFit(uint64_t size, uint64_t align) const
{
    for (const auto &[base, len] : intervals_) {
        const Addr aligned = alignUp(base, align);
        if (aligned < base + len && base + len - aligned >= size)
            return aligned;
    }
    return std::nullopt;
}

uint64_t
IntervalSet::totalBytes() const
{
    uint64_t total = 0;
    for (const auto &[base, len] : intervals_)
        total += len;
    return total;
}

} // namespace hpmp
