/**
 * @file
 * Reference attribution: who issued each memory reference?
 *
 * The paper's evaluation is an attribution argument — Fig. 2/8 count
 * references per origin (data, PT level k, NPT level k, pmpte
 * root/leaf), Fig. 10 breaks down where walk latency goes. Instead of
 * each bench recomputing these from AccessOutcome fields, the access
 * engines tag every reference they replay with a RefOrigin and feed
 * one RefAttribution per machine: a per-origin count plus a per-origin
 * latency Distribution, registered under the machine's stat group as
 * "ref.<origin>.count" / "ref.<origin>.cycles". Figures then read
 * straight out of the registry (or its --stats-json dump).
 */

#ifndef HPMP_BASE_ATTRIBUTION_H
#define HPMP_BASE_ATTRIBUTION_H

#include <cstdint>
#include <string>

#include "base/stats.h"

namespace hpmp
{

/** Origin of one physical memory reference. */
enum class RefOrigin : uint8_t
{
    Data = 0,   //!< the data/instruction reference itself
    AdUpdate,   //!< hardware A/D-bit read-modify-write
    PtL0,       //!< single-stage page-table read, level 0 (leaf)
    PtL1,
    PtL2,
    PtL3,
    PtL4,
    GptL0,      //!< guest-PT page read (two-stage), level 0 (leaf)
    GptL1,
    GptL2,
    GptL3,
    NptL0,      //!< nested-PT page read (two-stage), level 0 (leaf)
    NptL1,
    NptL2,
    NptL3,
    PmpteRoot,  //!< permission-table root/upper-level pmpte read
    PmpteMid,   //!< intermediate pmpte read (3/4-level tables)
    PmpteLeaf,  //!< leaf pmpte read
    NumOrigins,
};

inline const char *
toString(RefOrigin origin)
{
    switch (origin) {
      case RefOrigin::Data: return "data";
      case RefOrigin::AdUpdate: return "ad";
      case RefOrigin::PtL0: return "pt_l0";
      case RefOrigin::PtL1: return "pt_l1";
      case RefOrigin::PtL2: return "pt_l2";
      case RefOrigin::PtL3: return "pt_l3";
      case RefOrigin::PtL4: return "pt_l4";
      case RefOrigin::GptL0: return "gpt_l0";
      case RefOrigin::GptL1: return "gpt_l1";
      case RefOrigin::GptL2: return "gpt_l2";
      case RefOrigin::GptL3: return "gpt_l3";
      case RefOrigin::NptL0: return "npt_l0";
      case RefOrigin::NptL1: return "npt_l1";
      case RefOrigin::NptL2: return "npt_l2";
      case RefOrigin::NptL3: return "npt_l3";
      case RefOrigin::PmpteRoot: return "pmpte_root";
      case RefOrigin::PmpteMid: return "pmpte_mid";
      case RefOrigin::PmpteLeaf: return "pmpte_leaf";
      case RefOrigin::NumOrigins: break;
    }
    return "?";
}

/** PT-page read at walk level `level` (clamped to the Sv57 root). */
inline RefOrigin
ptOrigin(unsigned level)
{
    return RefOrigin(unsigned(RefOrigin::PtL0) + (level > 4 ? 4 : level));
}

inline RefOrigin
gptOrigin(unsigned level)
{
    return RefOrigin(unsigned(RefOrigin::GptL0) + (level > 3 ? 3 : level));
}

inline RefOrigin
nptOrigin(unsigned level)
{
    return RefOrigin(unsigned(RefOrigin::NptL0) + (level > 3 ? 3 : level));
}

/**
 * pmpte read at PMPTW level `level` (levels-1 = root, 0 = leaf, per
 * PmptRef): root and leaf get their own origins, anything between is
 * "mid". A huge root pmpte resolving the walk is still a root read.
 */
inline RefOrigin
pmptOrigin(unsigned level, unsigned levels)
{
    if (level == 0)
        return RefOrigin::PmpteLeaf;
    if (level + 1 >= levels)
        return RefOrigin::PmpteRoot;
    return RefOrigin::PmpteMid;
}

/**
 * Per-origin reference accounting for one access engine. Constructed
 * against the engine's StatGroup; record() is on the per-reference
 * path, so it is one counter increment and one histogram sample.
 */
class RefAttribution
{
  public:
    explicit RefAttribution(StatGroup &group)
    {
        for (unsigned i = 0; i < kN; ++i) {
            const std::string base =
                std::string("ref.") + toString(RefOrigin(i));
            group.add(base + ".count", &counts_[i]);
            group.add(base + ".cycles", &cycles_[i]);
        }
    }

    void
    record(RefOrigin origin, uint64_t cycles)
    {
        const unsigned i = unsigned(origin);
        ++counts_[i];
        cycles_[i].sample(cycles);
    }

    uint64_t count(RefOrigin origin) const
    {
        return counts_[unsigned(origin)].value();
    }

    const Distribution &cycles(RefOrigin origin) const
    {
        return cycles_[unsigned(origin)];
    }

    /** References recorded across all origins. */
    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (const Counter &c : counts_)
            sum += c.value();
        return sum;
    }

  private:
    static constexpr unsigned kN = unsigned(RefOrigin::NumOrigins);

    Counter counts_[kN];
    Distribution cycles_[kN];
};

} // namespace hpmp

#endif // HPMP_BASE_ATTRIBUTION_H
