/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Workload generators must be reproducible run-to-run, so everything in
 * the simulator draws from this xoshiro256** generator with an explicit
 * seed rather than std::random_device.
 */

#ifndef HPMP_BASE_RNG_H
#define HPMP_BASE_RNG_H

#include <cstdint>

namespace hpmp
{

/** xoshiro256** by Blackman & Vigna — fast, high-quality, seedable. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed (splitmix64 expansion). */
    void
    reseed(uint64_t seed)
    {
        for (auto &w : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            w = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection-free mapping; bias is negligible for bound << 2^64.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * (1.0 / (1ULL << 53));
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return real() < p; }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace hpmp

#endif // HPMP_BASE_RNG_H
