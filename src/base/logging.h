/**
 * @file
 * Error-reporting helpers following the gem5 convention.
 *
 * panic()  — an internal simulator bug: something that should never
 *            happen regardless of user input. Aborts.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Exits with code 1.
 * warn()   — functionality is approximated; results may be affected.
 * inform() — status messages with no connotation of incorrectness.
 */

#ifndef HPMP_BASE_LOGGING_H
#define HPMP_BASE_LOGGING_H

#include <string>

namespace hpmp
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Format helper: tiny printf-style formatting into std::string. */
std::string logFormat(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace hpmp

#define panic(...) \
    ::hpmp::panicImpl(__FILE__, __LINE__, ::hpmp::logFormat(__VA_ARGS__))
#define fatal(...) \
    ::hpmp::fatalImpl(__FILE__, __LINE__, ::hpmp::logFormat(__VA_ARGS__))
#define warn(...) ::hpmp::warnImpl(::hpmp::logFormat(__VA_ARGS__))
#define inform(...) ::hpmp::informImpl(::hpmp::logFormat(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define panic_if(cond, ...)                      \
    do {                                         \
        if (cond)                                \
            panic(__VA_ARGS__);                  \
    } while (0)

#define fatal_if(cond, ...)                      \
    do {                                         \
        if (cond)                                \
            fatal(__VA_ARGS__);                  \
    } while (0)

#endif // HPMP_BASE_LOGGING_H
