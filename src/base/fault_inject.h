/**
 * @file
 * Deterministic fault-injection harness.
 *
 * Robustness code is only as good as the error paths that are actually
 * executed, so every recoverable failure in the stack (monitor call
 * aborts, HPMP programming faults, pmpte store failures, OS allocator
 * exhaustion, pmpte bit flips) is guarded by a named *fault site*:
 *
 *     if (FAULT_POINT("monitor.add_gms"))
 *         ... fail exactly as if the real fault had happened ...
 *
 * Sites fire only when the process-wide FaultInjector is enabled and
 * armed, from an explicit deterministic plan: the Nth hit of a site,
 * every hit with probability p (seeded RNG), an explicit hit schedule,
 * or the Nth hit of *any* site (so fuzzers sweep new sites without
 * being updated). With the injector disabled — the default, and the
 * only state benchmarks ever see — FAULT_POINT compiles to one load
 * and one branch on a bool, so the instrumented paths cost nothing.
 *
 * The injector is intentionally a process-wide singleton: the
 * simulator is single-threaded and sites live in layers (PMP tables,
 * allocators) that must stay ignorant of who is driving the test.
 */

#ifndef HPMP_BASE_FAULT_INJECT_H
#define HPMP_BASE_FAULT_INJECT_H

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/rng.h"

namespace hpmp
{

/**
 * Exception thrown by a fired fault site in a layer that cannot return
 * an error (register programming, pmpte stores). Transactional callers
 * (the secure monitor) catch it, roll back, and surface a typed error;
 * anything else propagating it is a test driving faults into an
 * unprotected path on purpose.
 */
struct InjectedFault
{
    const char *site;
};

/** Process-wide deterministic fault injector. */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Fast path: anything armed at all? Inlined into FAULT_POINT. */
    bool enabled() const { return enabled_ && suspend_ == 0; }

    /**
     * RAII suppression for instrumentation code (the stale-translation
     * checker's oracle probes, chaos interleaving probes): while any
     * guard lives, sites neither fire nor count hits, so observer
     * accesses cannot perturb armed plans meant for the workload.
     * Nests.
     */
    class SuspendGuard
    {
      public:
        SuspendGuard() { ++instance().suspend_; }
        ~SuspendGuard() { --instance().suspend_; }
        SuspendGuard(const SuspendGuard &) = delete;
        SuspendGuard &operator=(const SuspendGuard &) = delete;
    };

    /** Enable with a seed (governs probability plans and bit flips). */
    void enable(uint64_t seed);

    /** Disable and clear all plans, counters and the fired log. */
    void disable();

    /** Clear plans and counters but stay enabled with the same seed. */
    void clearPlans();

    /** Arm `site` to fire on its Nth hit from now (1-based). */
    void armNth(const std::string &site, uint64_t nth);

    /** Arm `site` to fire on each hit with probability p. */
    void armProb(const std::string &site, double p);

    /** Arm `site` to fire on an explicit list of hit numbers. */
    void armSchedule(const std::string &site, std::vector<uint64_t> hits);

    /**
     * Arm the Nth hit of *any* site (1-based, counted across sites).
     * This is how the chaos fuzzer reaches sites it does not know by
     * name; it composes with per-site plans.
     */
    void armAnyNth(uint64_t nth);

    /**
     * Decision-controller mode (the model checker, tools/model_check):
     * while a controller is installed it is consulted on every site
     * hit *instead of* the armed plans, turning each FAULT_POINT into
     * a binary branch point an explicit-state enumerator can force
     * either way and record as a replayable decision. Hits are still
     * counted, fired sites still logged, and SuspendGuard still
     * suppresses both the query and the count; the injector must be
     * enable()d for sites to reach the controller at all. Corruption
     * sites (maybeFlipBit) reach the controller too — a controller
     * that does not mean to corrupt must answer false for them. Clear
     * with nullptr.
     */
    using DecisionController = std::function<bool(const char *site)>;
    void setDecisionController(DecisionController controller)
    {
        controller_ = std::move(controller);
    }
    bool hasDecisionController() const { return bool(controller_); }

    /**
     * Should the fault at `site` fire now? Counts the hit either way.
     * Called through FAULT_POINT only when enabled.
     */
    bool shouldFire(const char *site);

    /**
     * Like shouldFire() but excluded from the any-site plan, the same
     * carve-out maybeFlipBit() has: the site fires only when armed by
     * name. Used through FAULT_POINT_NAMED for sites whose firing
     * *creates* damage (memory poisoning) rather than failing an
     * operation — fuzzers sweeping fail-stop sites with armAnyNth must
     * not poison memory they then audit.
     */
    bool shouldFireNamed(const char *site);

    /**
     * Bit-flip helper for data corruption sites: when the site fires,
     * returns `value` with one random bit flipped; otherwise returns
     * it unchanged. Used to model single-event upsets in pmpte stores.
     */
    uint64_t maybeFlipBit(const char *site, uint64_t value);

    /** Hits observed at a site since the last enable/clear. */
    uint64_t hits(const std::string &site) const;

    /** Total fault-site hits across all sites. */
    uint64_t totalHits() const { return totalHits_; }

    /** Sites that actually fired, in order (for fuzz diagnostics). */
    const std::vector<std::string> &firedLog() const { return fired_; }

    /** Every site name ever hit while enabled (coverage reporting). */
    std::vector<std::string> sitesSeen() const;

    /**
     * Sites hit at least once over the whole process lifetime,
     * sorted. Unlike sitesSeen(), this set survives clearPlans() and
     * disable(), so a fuzzer that re-arms per operation and runs many
     * campaigns back to back still reports the union of everything it
     * reached — the input to the CI coverage gate.
     */
    std::vector<std::string> sitesEverSeen() const;

    /** Reset the persistent coverage set (tests only). */
    void resetSiteCoverage() { everSeen_.clear(); }

    /**
     * The curated registry of every FAULT_POINT / maybeFlipBit site in
     * the tree, sorted. New sites must be added here; the registry
     * test asserts every site that fires is registered, and CI asserts
     * every registered site is exercised by at least one chaos
     * campaign.
     */
    static const std::vector<std::string> &knownSites();

  private:
    FaultInjector() = default;

    /** Shared hit accounting; allow_any gates the armAnyNth plan. */
    bool fireCheck(const char *site, bool allow_any);

    struct Plan
    {
        uint64_t nth = 0;             //!< fire on this hit count (0 = off)
        double prob = 0.0;            //!< fire with this probability
        std::vector<uint64_t> sched;  //!< explicit hit numbers, sorted
        uint64_t hitCount = 0;
    };

    Plan &plan(const std::string &site) { return plans_[site]; }

    bool enabled_ = false;
    unsigned suspend_ = 0; //!< nesting depth of live SuspendGuards
    DecisionController controller_; //!< overrides plans while set
    Rng rng_;
    std::map<std::string, Plan> plans_;
    uint64_t anyNth_ = 0;
    uint64_t totalHits_ = 0;
    std::vector<std::string> fired_;
    std::set<std::string> everSeen_; //!< survives disable/clearPlans
};

/**
 * True when the named fault site must fail now. One load + one branch
 * when the injector is disabled (the benchmark configuration).
 */
#define FAULT_POINT(site)                                        \
    (::hpmp::FaultInjector::instance().enabled() &&              \
     ::hpmp::FaultInjector::instance().shouldFire(site))

/**
 * A damage-creating fault site: fires only when armed by name, never
 * through armAnyNth (see shouldFireNamed).
 */
#define FAULT_POINT_NAMED(site)                                  \
    (::hpmp::FaultInjector::instance().enabled() &&              \
     ::hpmp::FaultInjector::instance().shouldFireNamed(site))

} // namespace hpmp

#endif // HPMP_BASE_FAULT_INJECT_H
