/**
 * @file
 * Statistics registry: counters, distributions, derived formulas.
 *
 * Components own named statistics grouped under a StatGroup; groups
 * can be dumped, reset between measurement phases (e.g. to discard
 * warm-up), and queried by name in tests. A StatRegistry collects
 * groups into one hierarchical namespace ("machine.tlb.l1_hits") and
 * renders the whole simulation's state as text or machine-readable
 * JSON, so benches and tools share one `--stats-json=FILE` pipeline
 * instead of re-plumbing counters by hand.
 */

#ifndef HPMP_BASE_STATS_H
#define HPMP_BASE_STATS_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hpmp
{

/** A monotonically increasing event counter, resettable between phases. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t v) { value_ += v; return *this; }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * A log2-bucketed histogram with exact count/sum/min/max (gem5's
 * Distribution, sized for cycle latencies). Bucket 0 holds the value
 * 0; bucket i >= 1 holds values in [2^(i-1), 2^i - 1]. Sampling is a
 * handful of ALU ops, cheap enough for per-memory-reference use.
 */
class Distribution
{
  public:
    /** Bucket 0 plus one bucket per possible bit width (1..64). */
    static constexpr unsigned kBuckets = 65;

    void
    sample(uint64_t v)
    {
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
        ++buckets_[bucketOf(v)];
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    /** Smallest/largest value sampled; 0 when empty. */
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / double(count_) : 0.0; }

    uint64_t bucket(unsigned i) const { return i < kBuckets ? buckets_[i] : 0; }

    /** Bucket index a value lands in. */
    static unsigned
    bucketOf(uint64_t v)
    {
        unsigned width = 0;
        while (v) {
            ++width;
            v >>= 1;
        }
        return width;
    }

    /** Inclusive value range [low, high] of bucket i. */
    static uint64_t bucketLow(unsigned i) { return i <= 1 ? 0 : 1ull << (i - 1); }
    static uint64_t
    bucketHigh(unsigned i)
    {
        if (i == 0)
            return 0;
        if (i >= 64)
            return ~0ull;
        return (1ull << i) - 1;
    }

    /** Highest non-empty bucket index + 1 (for compact dumps). */
    unsigned usedBuckets() const;

    /**
     * Estimated p-th percentile (p in [0,1]) from the log2 buckets:
     * linear interpolation inside the bucket holding the target rank,
     * clamped to the exact [min, max] envelope. 0 when empty. Good to
     * a factor of the bucket width, which is what the p50/p99/p99.9
     * summary keys in --stats-json report.
     */
    double percentile(double p) const;

    void reset();

  private:
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = ~0ull;
    uint64_t max_ = 0;
    uint64_t buckets_[kBuckets] = {};
};

/**
 * A derived statistic computed on demand from other statistics (gem5's
 * Formula): hit rates, per-access averages, shares. Formulas are never
 * accumulated and never reset — they read whatever their inputs hold
 * at dump time.
 */
class Formula
{
  public:
    using Fn = std::function<double()>;

    Formula() = default;
    explicit Formula(Fn fn) : fn_(std::move(fn)) {}

    /** num / den, 0 when den is 0 (the hit-rate shape). */
    static Formula
    ratio(const Counter &num, const Counter &den)
    {
        return Formula([&num, &den]() {
            return den.value() ? double(num.value()) / double(den.value())
                               : 0.0;
        });
    }

    double value() const { return fn_ ? fn_() : 0.0; }

  private:
    Fn fn_;
};

/**
 * A named collection of statistics. Components register their
 * counters, distributions and formulas at construction; tests and
 * benches read them back by name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a statistic under this group; the group does not own it. */
    void add(const std::string &stat_name, Counter *counter);
    void add(const std::string &stat_name, Distribution *dist);
    void add(const std::string &stat_name, Formula *formula);

    /** Value of a registered counter; 0 if the name is unknown. */
    uint64_t get(const std::string &stat_name) const;

    /** Value of a registered formula; 0.0 if the name is unknown. */
    double getFormula(const std::string &stat_name) const;

    /** A registered distribution, or nullptr. */
    const Distribution *getDist(const std::string &stat_name) const;

    /** Reset every registered counter/distribution (e.g. after warm-up). */
    void resetAll();

    /** Render "group.stat value" lines for all statistics. */
    std::string dump() const;

    /** Append this group's statistics as one JSON object member. */
    void dumpJson(std::string &out, const std::string &indent) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter *> counters_;
    std::map<std::string, Distribution *> dists_;
    std::map<std::string, Formula *> formulas_;
};

/**
 * A hierarchy of stat groups forming one dotted namespace. Groups are
 * either referenced (component-owned, e.g. Machine::stats()) or
 * created and owned here (makeGroup, for benches/tools). Text dump
 * order is registration order; JSON dumps sort groups by name (stats
 * within a group are already name-sorted) so two dumps of the same
 * state are byte-identical regardless of registration order — what
 * perfcheck baselines and golden tests diff against.
 */
class StatRegistry
{
  public:
    /** Register a component-owned group (not owned by the registry). */
    void add(StatGroup *group);

    /** Create (or return) a registry-owned group named `name`. */
    StatGroup &makeGroup(const std::string &name);

    /** The first registered group with this exact name, or nullptr. */
    StatGroup *find(const std::string &name) const;

    /** Reset every group (counters and distributions; formulas track). */
    void resetAll();

    /** Text dump: concatenated group dumps. */
    std::string dumpText() const;

    /**
     * JSON dump:
     *   { "groups": { "<group>": { "<stat>": N, ...,
     *                              "<dist>": {"count":..,"buckets":[..]},
     *                              "<formula>": X.Y } } }
     * Counter values are exact (emitted as integers); formulas and
     * distribution means are doubles.
     */
    std::string dumpJson() const;

    /** Write dumpJson() to a file. @return false on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

  private:
    std::vector<StatGroup *> groups_;
    std::vector<std::unique_ptr<StatGroup>> owned_;
};

/**
 * Windowed telemetry time-series: snapshots a StatRegistry every K
 * simulated cycles into per-metric value columns, so a run's stats
 * become a trajectory ("tlb hit rate over time") instead of a single
 * end-state dump. Drives `--stats-series=FILE` in the tools/benches.
 *
 * Windows are capped; once full, further samples are counted as
 * dropped rather than silently discarded, mirroring TraceRing.
 */
class StatSampler
{
  public:
    explicit StatSampler(const StatRegistry &registry,
                         uint64_t intervalCycles,
                         size_t maxWindows = 4096);

    /** Snapshot every interval boundary crossed up to `nowCycles`. */
    void advanceTo(uint64_t nowCycles);

    /** Unconditionally snapshot at `nowCycles` (e.g. final state). */
    void sample(uint64_t nowCycles);

    uint64_t interval() const { return interval_; }
    size_t windows() const { return ticks_.size(); }
    uint64_t droppedWindows() const { return dropped_; }

    /** Value column for one flattened metric key (empty if unknown). */
    const std::vector<double> &series(const std::string &key) const;

    /**
     * Columnar JSON:
     *   { "interval": K, "dropped_windows": D, "ticks": [...],
     *     "series": { "<flat.key>": [v0, v1, ...], ... } }
     * Keys are the parseStatsJson flattening of the registry dump,
     * sorted; a key appearing mid-run is backfilled with zeros.
     */
    std::string dumpJson() const;

    /** Write dumpJson() to a file. @return false on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

  private:
    const StatRegistry &registry_;
    uint64_t interval_;
    size_t maxWindows_;
    uint64_t nextTick_;
    uint64_t dropped_ = 0;
    std::vector<uint64_t> ticks_;
    std::map<std::string, std::vector<double>> series_;
};

/**
 * Minimal parser for the dumps produced by StatRegistry::dumpJson
 * (numbers, strings, objects, arrays — no escapes beyond \" and \\).
 * Flattens nested objects into dotted keys and arrays into ".N"
 * suffixes: {"groups":{"machine":{"walks":4}}} becomes
 * "groups.machine.walks" -> 4. Used by the round-trip tests and by
 * scripts that post-process --stats-json output.
 *
 * @return false on malformed input (out left partially filled).
 */
bool parseStatsJson(const std::string &text,
                    std::map<std::string, double> &out);

} // namespace hpmp

#endif // HPMP_BASE_STATS_H
