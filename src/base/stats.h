/**
 * @file
 * Lightweight statistics registry.
 *
 * Components own named Counter/Scalar statistics grouped under a
 * StatGroup; groups can be dumped, reset between measurement phases
 * (e.g. to discard warm-up), and queried by name in tests.
 */

#ifndef HPMP_BASE_STATS_H
#define HPMP_BASE_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hpmp
{

/** A monotonically increasing event counter, resettable between phases. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t v) { value_ += v; return *this; }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * A named collection of counters. Components register their counters
 * at construction; tests and benches read them back by name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under this group; the group does not own it. */
    void
    add(const std::string &stat_name, Counter *counter)
    {
        counters_[stat_name] = counter;
    }

    /** Value of a registered counter; 0 if the name is unknown. */
    uint64_t get(const std::string &stat_name) const;

    /** Reset every registered counter (e.g. after warm-up). */
    void resetAll();

    /** Render "group.stat value" lines for all counters. */
    std::string dump() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter *> counters_;
};

} // namespace hpmp

#endif // HPMP_BASE_STATS_H
