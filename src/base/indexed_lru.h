/**
 * @file
 * O(1) key -> slot index with true-LRU replacement.
 *
 * The fully-associative caches on the simulator's per-access hot path
 * (L1 TLB, PWC, PMPTW-Cache) were linear scans over every entry. This
 * helper keeps their fully-associative *capacity* semantics — any key
 * can live in any of the `capacity` slots, the victim is always the
 * true-LRU entry — but indexes the keys in a small chained hash table
 * so lookup, fill, touch and eviction are all O(1).
 *
 * The index owns only keys and recency; payloads live in a caller-side
 * vector addressed by the slot numbers this class hands out. Keys are
 * 128-bit (two uint64_t halves) so compound keys like
 * (table root, granule) need no lossy packing.
 */

#ifndef HPMP_BASE_INDEXED_LRU_H
#define HPMP_BASE_INDEXED_LRU_H

#include <cstdint>
#include <vector>

namespace hpmp
{

/** Hash index over `capacity` slots with an intrusive true-LRU list. */
class LruIndex
{
  public:
    static constexpr uint32_t kNone = UINT32_MAX;

    /** @param capacity 0 yields an always-empty index (cache off). */
    explicit LruIndex(unsigned capacity)
        : capacity_(capacity)
    {
        bucketMask_ = 0;
        if (capacity_ > 0) {
            unsigned buckets = 4;
            while (buckets < capacity_ * 2)
                buckets <<= 1;
            bucketMask_ = buckets - 1;
            buckets_.assign(buckets, kNone);
            slots_.resize(capacity_);
            clear();
        }
    }

    unsigned capacity() const { return capacity_; }
    unsigned size() const { return size_; }

    /** Slot holding (k1, k2), or kNone. Does not touch recency. */
    uint32_t
    find(uint64_t k1, uint64_t k2 = 0) const
    {
        if (capacity_ == 0)
            return kNone;
        for (uint32_t s = buckets_[bucketOf(k1, k2)]; s != kNone;
             s = slots_[s].chain) {
            if (slots_[s].k1 == k1 && slots_[s].k2 == k2)
                return s;
        }
        return kNone;
    }

    /** Mark slot most-recently used. */
    void
    touch(uint32_t slot)
    {
        lruUnlink(slot);
        lruPushMru(slot);
    }

    /**
     * Claim a slot for a new key: a free slot if any, otherwise the
     * true-LRU slot (its old key is evicted from the index). The
     * caller overwrites the payload at the returned slot.
     */
    uint32_t
    insert(uint64_t k1, uint64_t k2 = 0)
    {
        uint32_t slot;
        if (freeHead_ != kNone) {
            slot = freeHead_;
            freeHead_ = slots_[slot].chain;
        } else {
            slot = lruTail_;
            bucketUnlink(slot);
            lruUnlink(slot);
            --size_;
        }
        slots_[slot].k1 = k1;
        slots_[slot].k2 = k2;
        bucketLink(slot);
        lruPushMru(slot);
        ++size_;
        return slot;
    }

    /** Remove slot from the index; the slot becomes free. */
    void
    erase(uint32_t slot)
    {
        bucketUnlink(slot);
        lruUnlink(slot);
        slots_[slot].chain = freeHead_;
        freeHead_ = slot;
        --size_;
    }

    /** Drop every entry. */
    void
    clear()
    {
        if (capacity_ == 0)
            return;
        for (auto &head : buckets_)
            head = kNone;
        freeHead_ = kNone;
        for (unsigned s = capacity_; s-- > 0;) {
            slots_[s].chain = freeHead_;
            freeHead_ = s;
        }
        lruHead_ = lruTail_ = kNone;
        size_ = 0;
    }

  private:
    struct Slot
    {
        uint64_t k1 = 0;
        uint64_t k2 = 0;
        uint32_t chain = kNone;   //!< next in bucket chain / free list
        uint32_t bucket = 0;      //!< home bucket, saves a rehash on unlink
        uint32_t lruPrev = kNone;
        uint32_t lruNext = kNone;
    };

    uint32_t
    bucketOf(uint64_t k1, uint64_t k2) const
    {
        uint64_t h = k1 * 0x9E3779B97F4A7C15ULL;
        h ^= k2 + 0x9E3779B97F4A7C15ULL + (h >> 27);
        h ^= h >> 33;
        h *= 0xFF51AFD7ED558CCDULL;
        h ^= h >> 33;
        return uint32_t(h) & bucketMask_;
    }

    void
    bucketLink(uint32_t slot)
    {
        const uint32_t b = bucketOf(slots_[slot].k1, slots_[slot].k2);
        slots_[slot].bucket = b;
        slots_[slot].chain = buckets_[b];
        buckets_[b] = slot;
    }

    void
    bucketUnlink(uint32_t slot)
    {
        uint32_t *link = &buckets_[slots_[slot].bucket];
        while (*link != slot)
            link = &slots_[*link].chain;
        *link = slots_[slot].chain;
    }

    void
    lruPushMru(uint32_t slot)
    {
        slots_[slot].lruPrev = kNone;
        slots_[slot].lruNext = lruHead_;
        if (lruHead_ != kNone)
            slots_[lruHead_].lruPrev = slot;
        lruHead_ = slot;
        if (lruTail_ == kNone)
            lruTail_ = slot;
    }

    void
    lruUnlink(uint32_t slot)
    {
        const uint32_t prev = slots_[slot].lruPrev;
        const uint32_t next = slots_[slot].lruNext;
        if (prev != kNone)
            slots_[prev].lruNext = next;
        else
            lruHead_ = next;
        if (next != kNone)
            slots_[next].lruPrev = prev;
        else
            lruTail_ = prev;
    }

    unsigned capacity_;
    uint32_t bucketMask_;
    std::vector<uint32_t> buckets_;
    std::vector<Slot> slots_;
    uint32_t freeHead_ = kNone;
    uint32_t lruHead_ = kNone;
    uint32_t lruTail_ = kNone;
    unsigned size_ = 0;
};

} // namespace hpmp

#endif // HPMP_BASE_INDEXED_LRU_H
