/**
 * @file
 * Bit-manipulation helpers used throughout the simulator.
 *
 * These mirror the helpers found in hardware simulators (gem5's
 * base/bitfield.hh): extracting, inserting and masking bit ranges of
 * 64-bit values. All ranges are inclusive and little-endian bit order
 * (bit 0 is the LSB), matching the RISC-V ISA manual's figures.
 */

#ifndef HPMP_BASE_BITFIELD_H
#define HPMP_BASE_BITFIELD_H

#include <cstdint>

namespace hpmp
{

/** Return a value with bits [nbits-1:0] set; nbits == 64 yields all ones. */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~0ULL : (1ULL << nbits) - 1;
}

/** Extract the (inclusive) bit range [hi:lo] of val, right-aligned. */
constexpr uint64_t
bits(uint64_t val, unsigned hi, unsigned lo)
{
    return (val >> lo) & mask(hi - lo + 1);
}

/** Extract the single bit [bit] of val. */
constexpr uint64_t
bits(uint64_t val, unsigned bit)
{
    return (val >> bit) & 1ULL;
}

/** Return val with the (inclusive) bit range [hi:lo] replaced by field. */
constexpr uint64_t
insertBits(uint64_t val, unsigned hi, unsigned lo, uint64_t field)
{
    const uint64_t m = mask(hi - lo + 1) << lo;
    return (val & ~m) | ((field << lo) & m);
}

/** Return val with bit [bit] replaced by the LSB of field. */
constexpr uint64_t
insertBits(uint64_t val, unsigned bit, uint64_t field)
{
    return insertBits(val, bit, bit, field);
}

/** Sign-extend the low nbits of val to a signed 64-bit value. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    const unsigned shift = 64 - nbits;
    return static_cast<int64_t>(val << shift) >> shift;
}

/** True iff val is a power of two (and non-zero). */
constexpr bool
isPowerOf2(uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Round addr down to the nearest multiple of align (a power of two). */
constexpr uint64_t
alignDown(uint64_t addr, uint64_t align)
{
    return addr & ~(align - 1);
}

/** Round addr up to the nearest multiple of align (a power of two). */
constexpr uint64_t
alignUp(uint64_t addr, uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** Integer log2 for powers of two. */
constexpr unsigned
log2i(uint64_t val)
{
    unsigned n = 0;
    while (val > 1) {
        val >>= 1;
        ++n;
    }
    return n;
}

} // namespace hpmp

#endif // HPMP_BASE_BITFIELD_H
