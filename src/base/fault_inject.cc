#include "base/fault_inject.h"

#include <algorithm>

namespace hpmp
{

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::enable(uint64_t seed)
{
    disable();
    enabled_ = true;
    rng_.reseed(seed);
}

void
FaultInjector::disable()
{
    enabled_ = false;
    controller_ = nullptr;
    plans_.clear();
    anyNth_ = 0;
    totalHits_ = 0;
    fired_.clear();
}

void
FaultInjector::clearPlans()
{
    plans_.clear();
    anyNth_ = 0;
}

void
FaultInjector::armNth(const std::string &site, uint64_t nth)
{
    Plan &p = plan(site);
    p.nth = p.hitCount + nth;
}

void
FaultInjector::armProb(const std::string &site, double prob)
{
    plan(site).prob = prob;
}

void
FaultInjector::armSchedule(const std::string &site,
                           std::vector<uint64_t> hits)
{
    std::sort(hits.begin(), hits.end());
    plan(site).sched = std::move(hits);
}

void
FaultInjector::armAnyNth(uint64_t nth)
{
    anyNth_ = totalHits_ + nth;
}

bool
FaultInjector::shouldFire(const char *site)
{
    return fireCheck(site, /*allow_any=*/true);
}

bool
FaultInjector::shouldFireNamed(const char *site)
{
    return fireCheck(site, /*allow_any=*/false);
}

bool
FaultInjector::fireCheck(const char *site, bool allow_any)
{
    ++totalHits_;
    everSeen_.insert(site);
    Plan &p = plan(site);
    ++p.hitCount;

    // Decision-controller mode: the enumerator decides, plans are
    // bypassed entirely (hit accounting above still ran, so coverage
    // reporting and the fired log stay truthful).
    if (controller_) {
        const bool forced = controller_(site);
        if (forced)
            fired_.push_back(site);
        return forced;
    }

    // ">=", not "==": hits at sites excluded from the any-site plan
    // (corruption sites, allow_any = false) advance the hit count, and
    // the plan then fires at the first *eligible* site after the mark
    // instead of being silently consumed.
    bool fire = false;
    if (allow_any && anyNth_ != 0 && totalHits_ >= anyNth_) {
        fire = true;
        anyNth_ = 0; // one-shot
    }
    if (p.nth != 0 && p.hitCount == p.nth) {
        fire = true;
        p.nth = 0; // one-shot
    }
    if (!p.sched.empty() &&
        std::binary_search(p.sched.begin(), p.sched.end(), p.hitCount)) {
        fire = true;
    }
    if (!fire && p.prob > 0.0)
        fire = rng_.chance(p.prob);

    if (fire)
        fired_.push_back(site);
    return fire;
}

uint64_t
FaultInjector::maybeFlipBit(const char *site, uint64_t value)
{
    // Corruption sites never honor armAnyNth: a flipped bit is a
    // *silent* fault (the store succeeds, nothing rolls back), so only
    // a test that armed the site by name — and therefore expects the
    // corruption — may trigger it. Fuzzers sweeping fail-stop sites
    // with armAnyNth must not silently corrupt state they then audit.
    if (!enabled_ || !fireCheck(site, /*allow_any=*/false))
        return value;
    return value ^ (1ULL << rng_.below(64));
}

uint64_t
FaultInjector::hits(const std::string &site) const
{
    const auto it = plans_.find(site);
    return it == plans_.end() ? 0 : it->second.hitCount;
}

std::vector<std::string>
FaultInjector::sitesSeen() const
{
    std::vector<std::string> sites;
    for (const auto &[name, p] : plans_) {
        if (p.hitCount > 0)
            sites.push_back(name);
    }
    return sites;
}

std::vector<std::string>
FaultInjector::sitesEverSeen() const
{
    return {everSeen_.begin(), everSeen_.end()};
}

const std::vector<std::string> &
FaultInjector::knownSites()
{
    // Keep sorted. Grep anchor: every FAULT_POINT("x") / maybeFlipBit
    // site string in src/ must appear here exactly once.
    static const std::vector<std::string> sites = {
        "hpmp.disable",
        "hpmp.program_segment",
        "hpmp.program_table",
        "iopmp.check",
        "migrate.ack_lost",
        "migrate.checkpoint_torn",
        "migrate.commit_crash",
        "migrate.dest_attest",
        "migrate.frame_corrupt",
        "migrate.frame_drop",
        "migrate.frame_dup",
        "monitor.add_gms",
        "monitor.alloc_pmpte",
        "monitor.attest",
        "monitor.destroy_domain",
        "monitor.heal_table",
        "monitor.hint",
        "monitor.remove_gms",
        "monitor.resume",
        "monitor.set_label",
        "monitor.set_perm",
        "monitor.share_gms",
        "monitor.suspend",
        "monitor.switch",
        "os.page_alloc",
        "os.pt_pool_miss",
        "pmpt.write_entry",
        "pmpt.write_entry.flip",
        "pmptw_cache.fill",
        "pwc.fill",
        "ras.poison_migrate",
        "ras.poison_on_fill",
        "ras.poison_scrub",
        "smp.hfence_ack",
        "smp.hfence_deliver",
        "smp.hfence_ipi",
        "smp.ipi_ack",
        "smp.ipi_deliver",
        "smp.satp_ipi",
        "tlb.fill",
    };
    return sites;
}

} // namespace hpmp
