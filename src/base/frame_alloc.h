/**
 * @file
 * Frame-allocator callback type shared by the page-table and
 * PMP-table builders. The OS / secure-monitor models supply the
 * policy (contiguous pool vs. scattered), which is the software knob
 * HPMP turns.
 */

#ifndef HPMP_BASE_FRAME_ALLOC_H
#define HPMP_BASE_FRAME_ALLOC_H

#include <functional>
#include <memory>

#include "base/addr.h"

namespace hpmp
{

/**
 * Returned by a FrameAllocator that ran out of memory. Table builders
 * treat it as a typed failure (the mapping call returns false) instead
 * of aborting; infallible callers check for it explicitly.
 */
inline constexpr Addr kAllocFailed = ~Addr(0);

/**
 * Allocates `npages` contiguous zeroed 4 KiB frames and returns the
 * base physical address of the run, or kAllocFailed on exhaustion.
 */
using FrameAllocator = std::function<Addr(unsigned npages)>;

/** A trivial bump allocator for tests and examples. */
inline FrameAllocator
bumpAllocator(Addr start)
{
    auto next = std::make_shared<Addr>(start);
    return [next](unsigned npages) {
        const Addr base = *next;
        *next += npages * kPageSize;
        return base;
    };
}

} // namespace hpmp

#endif // HPMP_BASE_FRAME_ALLOC_H
