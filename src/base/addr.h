/**
 * @file
 * Address types and memory-size constants.
 *
 * The simulator distinguishes virtual, guest-physical and (supervisor)
 * physical addresses only by convention; all are 64-bit unsigned values
 * as in the RISC-V privileged specification.
 */

#ifndef HPMP_BASE_ADDR_H
#define HPMP_BASE_ADDR_H

#include <cstdint>

namespace hpmp
{

/** A physical or virtual address. */
using Addr = uint64_t;

/** Size and shift constants for the base 4 KiB page. */
constexpr unsigned kPageShift = 12;
constexpr uint64_t kPageSize = 1ULL << kPageShift;

constexpr uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

/** Page-number <-> address conversions. */
constexpr uint64_t pageNumber(Addr a) { return a >> kPageShift; }
constexpr Addr pageAddr(uint64_t pn) { return pn << kPageShift; }
constexpr uint64_t pageOffset(Addr a) { return a & (kPageSize - 1); }

} // namespace hpmp

#endif // HPMP_BASE_ADDR_H
