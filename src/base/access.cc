#include "base/access.h"

namespace hpmp
{

const char *
toString(AccessType type)
{
    switch (type) {
      case AccessType::Load: return "load";
      case AccessType::Store: return "store";
      case AccessType::Fetch: return "fetch";
    }
    return "?";
}

const char *
toString(Fault fault)
{
    switch (fault) {
      case Fault::None: return "none";
      case Fault::LoadPageFault: return "load-page-fault";
      case Fault::StorePageFault: return "store-page-fault";
      case Fault::FetchPageFault: return "fetch-page-fault";
      case Fault::LoadAccessFault: return "load-access-fault";
      case Fault::StoreAccessFault: return "store-access-fault";
      case Fault::FetchAccessFault: return "fetch-access-fault";
      case Fault::GuestLoadPageFault: return "guest-load-page-fault";
      case Fault::GuestStorePageFault: return "guest-store-page-fault";
      case Fault::GuestFetchPageFault: return "guest-fetch-page-fault";
      case Fault::MachineCheck: return "machine-check";
    }
    return "?";
}

} // namespace hpmp
