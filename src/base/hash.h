/**
 * @file
 * FNV-1a folding helpers shared by the digest plumbing.
 *
 * SecureMonitor::stateDigest, the chaos fuzzer and the model checker
 * all build 64-bit state summaries by folding words into an FNV-1a
 * accumulator; this header is the one place the constants and the
 * fold step live so every layer mixes identically.
 */

#ifndef HPMP_BASE_HASH_H
#define HPMP_BASE_HASH_H

#include <cstdint>

namespace hpmp
{

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/** Fold one 64-bit word into an FNV-1a accumulator, byte by byte. */
constexpr uint64_t
fnvFold(uint64_t hash, uint64_t word)
{
    for (unsigned i = 0; i < 8; ++i) {
        hash ^= (word >> (i * 8)) & 0xff;
        hash *= kFnvPrime;
    }
    return hash;
}

} // namespace hpmp

#endif // HPMP_BASE_HASH_H
