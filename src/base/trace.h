/**
 * @file
 * gem5-DPRINTF-style debug tracer with runtime-selectable flags and a
 * bounded in-memory event ring.
 *
 * Call sites name a debug flag and pay one load + one branch when the
 * flag is off:
 *
 *     DPRINTF(Walk, "walk va=%#lx refs=%u\n", va, refs);
 *     TRACE_EVENT(Monitor, tick, cycles, "addGms", id, base);
 *
 * Flags (Walk, Hpmp, Pmpt, Monitor, Fault, Tlb) are enabled at runtime
 * by name ("--trace=Walk,Tlb" in the tools, Tracer::enableByName in
 * tests). TRACE_EVENT additionally records into a bounded ring that
 * can be dumped as chrome://tracing JSON for a window of accesses —
 * the "why did this access cost what it did" view.
 *
 * Building with -DHPMP_TRACING=OFF (cmake) defines HPMP_TRACE_ENABLED=0:
 * both macros compile to nothing, trace.cc drops out of the build, and
 * the binaries contain no tracer symbols at all. The release CI job
 * asserts exactly that, so observability stays free when off.
 */

#ifndef HPMP_BASE_TRACE_H
#define HPMP_BASE_TRACE_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#ifndef HPMP_TRACE_ENABLED
#define HPMP_TRACE_ENABLED 1
#endif

namespace hpmp
{

/** Debug-trace categories, one bit each. */
enum class TraceFlag : uint8_t
{
    Walk = 0, //!< page-table / two-stage walks and their references
    Hpmp,     //!< HPMP register programming and checks
    Pmpt,     //!< PMP-table builds and PMPTW walks
    Monitor,  //!< monitor calls, layouts, rollbacks
    Fault,    //!< fault-injection sites firing
    Tlb,      //!< TLB/PWC/PMPTW-cache fills and flushes
    NumFlags,
};

/** Chrome-tracing phase of a recorded event. */
enum class TracePhase : uint8_t
{
    Complete = 0, //!< "X": standalone event with a duration
    Begin,        //!< "B": span opens
    End,          //!< "E": span closes
};

/**
 * One recorded event. TRACE_EVENT call sites aggregate-initialize the
 * first six members, so span fields must stay appended with defaults.
 */
struct TraceEvent
{
    uint64_t tick = 0;  //!< start, simulated cycles
    uint64_t dur = 0;   //!< duration, simulated cycles
    uint64_t a0 = 0;    //!< free-form args (address, id, count...)
    uint64_t a1 = 0;
    const char *name = ""; //!< must be a string literal
    TraceFlag flag = TraceFlag::Walk;
    TracePhase ph = TracePhase::Complete;
    uint32_t pid = 0;     //!< track (system) id: 0 = local/source
    uint64_t span = 0;    //!< span id (Begin/End events), 0 = none
    uint64_t parent = 0;  //!< parent span id, 0 = root
    uint64_t traceId = 0; //!< causal-tree id shared across systems
};

/** Identifies one span in a causal tree. 0 = no span. */
using SpanId = uint64_t;

/**
 * The causal position a span opens under: which trace tree, and which
 * open span is the parent. Serializable (two integers), so it can ride
 * a migration checkpoint to the destination system and keep the
 * destination's spans in the source's tree.
 */
struct TraceContext
{
    uint64_t traceId = 0; //!< 0 = no active trace
    SpanId span = 0;      //!< innermost open span, 0 = root
};

#if HPMP_TRACE_ENABLED

const char *toString(TraceFlag flag);

/**
 * Bounded ring of trace events: recording never allocates after
 * construction and overflow drops the oldest events, so it is safe to
 * leave recording on across a long run and dump only the final window.
 */
class TraceRing
{
  public:
    explicit TraceRing(size_t capacity = 4096);

    /** Resize (drops current contents). Capacity 0 disables recording. */
    void setCapacity(size_t capacity);
    size_t capacity() const { return capacity_; }

    void
    record(const TraceEvent &event)
    {
        if (capacity_ == 0)
            return;
        events_[head_] = event;
        head_ = (head_ + 1) % capacity_;
        if (size_ < capacity_)
            ++size_;
        ++recorded_;
    }

    /** Events currently held (<= capacity). */
    size_t size() const { return size_; }
    /** Events recorded since the last clear, including dropped ones. */
    uint64_t recorded() const { return recorded_; }
    /** Events lost to overflow. */
    uint64_t dropped() const { return recorded_ - size_; }

    /** The i-th oldest retained event (0 = oldest). */
    const TraceEvent &at(size_t i) const;

    void clear();

    /** Render the retained window as chrome://tracing JSON. */
    std::string dumpChromeJson() const;

    /** Write dumpChromeJson() to a file. @return false on I/O failure. */
    bool writeChromeJson(const std::string &path) const;

  private:
    std::vector<TraceEvent> events_;
    size_t capacity_;
    size_t head_ = 0; //!< next slot to write
    size_t size_ = 0;
    uint64_t recorded_ = 0;
};

/**
 * Causal span layer over the event ring: every monitor call, shootdown
 * window and migration phase can open a span, children nest under the
 * innermost open span, and Begin/End pairs land in the ring stamped
 * with {span, parent, traceId, pid} so one chrome://tracing dump shows
 * the whole causal tree — across systems when the TraceContext is
 * propagated (see DESIGN.md §13).
 *
 * Time is a process-wide logical clock (one tick per begin/end), which
 * both migration endpoints share, so source and destination spans of
 * one migration land on a single coherent timeline.
 */
class SpanTracker
{
  public:
    /** A fresh causal-tree id (never 0). */
    uint64_t newTraceId() { return ++lastTraceId_; }

    /** The context new lexical spans open under. */
    TraceContext context() const { return ctx_; }
    /** Adopt a (possibly remote) context; {} clears. */
    void setContext(const TraceContext &ctx) { ctx_ = ctx; }

    /** Track id stamped on subsequent span events (system id). */
    void setSystem(uint32_t system) { system_ = system; }
    uint32_t system() const { return system_; }

    /** Logical clock: increments once per span begin/end. */
    uint64_t now() const { return now_; }

    /**
     * Open a span as a child of the current context; it becomes the
     * current context until endSpan. New trace tree if none is active.
     * @return 0 (and no state change) when `flag` is disabled.
     */
    SpanId beginSpan(TraceFlag flag, const char *name, uint64_t a0 = 0,
                     uint64_t a1 = 0);

    /**
     * Open a span under an explicit parent context without making it
     * current — for windows held open across calls (coalesced
     * shootdown epochs) and for remote children of a migrated context.
     */
    SpanId beginSpanUnder(TraceFlag flag, const char *name,
                          const TraceContext &parent, uint64_t a0 = 0,
                          uint64_t a1 = 0);

    /** Close a span (0 = no-op); restores the parent context if the
     * span was the current lexical one. */
    void endSpan(SpanId id, uint64_t a0 = 0, uint64_t a1 = 0);

    /** Spans begun but not yet ended (tests assert 0 at rest). */
    size_t openSpans() const { return open_.size(); }

    /** Forget all open spans and the context (between campaigns). */
    void reset();

  private:
    struct OpenSpan
    {
        TraceContext prev;     //!< context to restore at end
        uint64_t traceId = 0;
        SpanId parent = 0;
        const char *name = "";
        TraceFlag flag = TraceFlag::Monitor;
        uint32_t pid = 0;      //!< track id captured at begin
        bool lexical = false;  //!< beginSpan (true) vs beginSpanUnder
    };

    TraceContext ctx_;
    uint64_t lastTraceId_ = 0;
    uint64_t lastSpanId_ = 0;
    uint64_t now_ = 0;
    uint32_t system_ = 0;
    std::map<SpanId, OpenSpan> open_;
};

/** Process-wide tracer: flag mask, sink, the event ring, and spans. */
class Tracer
{
  public:
    static Tracer &instance();

    bool
    enabled(TraceFlag flag) const
    {
        return mask_ & (1u << unsigned(flag));
    }

    /** Anything at all enabled? Gates tick bookkeeping in hot loops. */
    bool anyEnabled() const { return mask_ != 0; }

    void enable(TraceFlag flag) { mask_ |= 1u << unsigned(flag); }
    void disable(TraceFlag flag) { mask_ &= ~(1u << unsigned(flag)); }
    void disableAll() { mask_ = 0; }

    /**
     * Enable a comma-separated flag list ("Walk,Tlb"; "All" turns on
     * everything). @return false if any name is unknown.
     */
    bool enableByName(const std::string &names);

    /** printf to the trace sink, prefixed with the flag name. */
    void print(TraceFlag flag, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    /** Lines printed since construction (tests assert on this). */
    uint64_t printed() const { return printed_; }

    /**
     * Redirect output (default stderr); nullptr silences printing
     * while printed() keeps counting (for tests).
     */
    void setOutput(std::FILE *out) { out_ = out; silenced_ = !out; }

    TraceRing &ring() { return ring_; }

    SpanTracker &spans() { return spans_; }

  private:
    Tracer() = default;

    uint32_t mask_ = 0;
    uint64_t printed_ = 0;
    std::FILE *out_ = nullptr; //!< nullptr = stderr unless silenced
    bool silenced_ = false;
    TraceRing ring_;
    SpanTracker spans_;
};

/**
 * RAII lexical span: opens on construction, closes on scope exit —
 * including exception unwinds, which is what keeps aborted monitor
 * calls and fault-injected migration phases from leaking open spans.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceFlag flag, const char *name, uint64_t a0 = 0,
               uint64_t a1 = 0)
        : id_(Tracer::instance().spans().beginSpan(flag, name, a0, a1))
    {}

    ~ScopedSpan() { Tracer::instance().spans().endSpan(id_); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    SpanId id() const { return id_; }

  private:
    SpanId id_;
};

/** Debug print, compiled out entirely with HPMP_TRACING=OFF. */
#define DPRINTF(flag, ...)                                              \
    do {                                                                \
        if (::hpmp::Tracer::instance().enabled(                          \
                ::hpmp::TraceFlag::flag)) {                             \
            ::hpmp::Tracer::instance().print(::hpmp::TraceFlag::flag,    \
                                            __VA_ARGS__);               \
        }                                                               \
    } while (0)

/** Record one ring event when `flag` is enabled. */
#define TRACE_EVENT(flag, tick, dur, name, a0, a1)                      \
    do {                                                                \
        if (::hpmp::Tracer::instance().enabled(                          \
                ::hpmp::TraceFlag::flag)) {                             \
            ::hpmp::Tracer::instance().ring().record(                    \
                {(tick), (dur), (a0), (a1), (name),                     \
                 ::hpmp::TraceFlag::flag});                             \
        }                                                               \
    } while (0)

#else // !HPMP_TRACE_ENABLED

/**
 * Tracing compiled out: macros vanish and the classes collapse to
 * inline no-op stubs so tools keep compiling (their --trace options
 * simply report tracing as unavailable). trace.cc is not built, so no
 * tracer symbol reaches the binaries.
 */
inline const char *toString(TraceFlag) { return "?"; }

class TraceRing
{
  public:
    constexpr explicit TraceRing(size_t = 0) {}
    void setCapacity(size_t) {}
    size_t capacity() const { return 0; }
    void record(const TraceEvent &) {}
    size_t size() const { return 0; }
    uint64_t recorded() const { return 0; }
    uint64_t dropped() const { return 0; }
    void clear() {}
    std::string dumpChromeJson() const { return "{\"traceEvents\": []}\n"; }
    bool writeChromeJson(const std::string &) const { return false; }
};

class SpanTracker
{
  public:
    uint64_t newTraceId() { return 0; }
    TraceContext context() const { return {}; }
    void setContext(const TraceContext &) {}
    void setSystem(uint32_t) {}
    uint32_t system() const { return 0; }
    uint64_t now() const { return 0; }

    SpanId
    beginSpan(TraceFlag, const char *, uint64_t = 0, uint64_t = 0)
    {
        return 0;
    }

    SpanId
    beginSpanUnder(TraceFlag, const char *, const TraceContext &,
                   uint64_t = 0, uint64_t = 0)
    {
        return 0;
    }

    void endSpan(SpanId, uint64_t = 0, uint64_t = 0) {}
    size_t openSpans() const { return 0; }
    void reset() {}
};

class Tracer
{
  public:
    static Tracer &
    instance()
    {
        static Tracer tracer;
        return tracer;
    }

    bool enabled(TraceFlag) const { return false; }
    bool anyEnabled() const { return false; }
    void enable(TraceFlag) {}
    void disable(TraceFlag) {}
    void disableAll() {}
    bool enableByName(const std::string &) { return false; }
    uint64_t printed() const { return 0; }
    void setOutput(std::FILE *) {}
    TraceRing &ring() { return ring_; }
    SpanTracker &spans() { return spans_; }

  private:
    TraceRing ring_;
    SpanTracker spans_;
};

class ScopedSpan
{
  public:
    ScopedSpan(TraceFlag, const char *, uint64_t = 0, uint64_t = 0) {}
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;
    SpanId id() const { return 0; }
};

#define DPRINTF(flag, ...)                                              \
    do {                                                                \
    } while (0)
#define TRACE_EVENT(flag, tick, dur, name, a0, a1)                      \
    do {                                                                \
    } while (0)

#endif // HPMP_TRACE_ENABLED

} // namespace hpmp

#endif // HPMP_BASE_TRACE_H
