#include "base/perfcheck.h"

#include <cstdio>
#include <cstdlib>

namespace hpmp
{

namespace
{

std::vector<std::string>
splitDots(const std::string &s)
{
    std::vector<std::string> parts;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t dot = s.find('.', pos);
        if (dot == std::string::npos)
            dot = s.size();
        parts.push_back(s.substr(pos, dot - pos));
        pos = dot + 1;
    }
    return parts;
}

} // namespace

bool
parsePerfRule(const std::string &spec, PerfRule &rule, std::string *error)
{
    const size_t eq = spec.rfind('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        if (error)
            *error = "expected GLOB=[+|-]TOL[%]: " + spec;
        return false;
    }
    rule.pattern = spec.substr(0, eq);
    std::string tol = spec.substr(eq + 1);

    rule.bound = PerfRule::Bound::Both;
    if (tol[0] == '+') {
        rule.bound = PerfRule::Bound::UpperOnly;
        tol.erase(0, 1);
    } else if (tol[0] == '-') {
        rule.bound = PerfRule::Bound::LowerOnly;
        tol.erase(0, 1);
    }

    bool percent = false;
    if (!tol.empty() && tol.back() == '%') {
        percent = true;
        tol.pop_back();
    }

    char *end = nullptr;
    const double v = std::strtod(tol.c_str(), &end);
    if (tol.empty() || !end || *end != '\0' || v < 0) {
        if (error)
            *error = "bad tolerance in rule: " + spec;
        return false;
    }
    rule.tolerance = percent ? v / 100.0 : v;
    return true;
}

bool
matchMetricGlob(const std::string &pattern, const std::string &key)
{
    const std::vector<std::string> pat = splitDots(pattern);
    const std::vector<std::string> seg = splitDots(key);

    for (size_t i = 0; i < pat.size(); ++i) {
        if (pat[i] == "**" && i + 1 == pat.size())
            return seg.size() >= i; // any remaining tail (also empty)
        if (i >= seg.size())
            return false;
        if (pat[i] != "*" && pat[i] != seg[i])
            return false;
    }
    return pat.size() == seg.size();
}

PerfCheckReport
perfCheck(const std::map<std::string, double> &baseline,
          const std::map<std::string, double> &current,
          const std::vector<PerfRule> &rules)
{
    PerfCheckReport report;

    for (const PerfRule &rule : rules) {
        bool matched = false;
        for (const auto &[key, base] : baseline) {
            if (!matchMetricGlob(rule.pattern, key))
                continue;
            matched = true;

            PerfCheckLine line;
            line.key = key;
            line.baseline = base;
            line.tolerance = rule.tolerance;
            line.bound = rule.bound;

            auto it = current.find(key);
            if (it == current.end()) {
                line.missing = true;
                ++report.missing;
            } else {
                line.current = it->second;
                const double lo = base * (1.0 - rule.tolerance);
                const double hi = base * (1.0 + rule.tolerance);
                switch (rule.bound) {
                  case PerfRule::Bound::Both:
                    line.ok = line.current >= lo && line.current <= hi;
                    break;
                  case PerfRule::Bound::LowerOnly:
                    line.ok = line.current >= lo;
                    break;
                  case PerfRule::Bound::UpperOnly:
                    line.ok = line.current <= hi;
                    break;
                }
                if (!line.ok)
                    ++report.regressed;
            }
            ++report.checked;
            report.lines.push_back(line);
        }
        if (!matched)
            report.unmatchedRules.push_back(rule.pattern);
    }
    return report;
}

std::string
PerfCheckReport::render() const
{
    std::string out;
    char buf[256];
    for (const PerfCheckLine &line : lines) {
        const char *bound =
            line.bound == PerfRule::Bound::UpperOnly   ? "+"
            : line.bound == PerfRule::Bound::LowerOnly ? "-"
                                                       : "±";
        if (line.missing) {
            std::snprintf(buf, sizeof(buf),
                          "MISS %-48s baseline %.6g, absent from "
                          "current\n",
                          line.key.c_str(), line.baseline);
        } else {
            const double drift =
                line.baseline != 0.0
                    ? (line.current - line.baseline) / line.baseline * 100
                    : 0.0;
            std::snprintf(buf, sizeof(buf),
                          "%s %-48s base %.6g cur %.6g drift %+.2f%% "
                          "(band %s%.4g%%)\n",
                          line.ok ? "ok  " : "FAIL", line.key.c_str(),
                          line.baseline, line.current, drift, bound,
                          line.tolerance * 100);
        }
        out += buf;
    }
    for (const std::string &pattern : unmatchedRules)
        out += "FAIL rule matched no baseline metric: " + pattern + "\n";
    std::snprintf(buf, sizeof(buf),
                  "perfcheck: %u checked, %u regressed, %u missing, "
                  "%zu unmatched rules -> %s\n",
                  checked, regressed, missing, unmatchedRules.size(),
                  ok() ? "PASS" : "FAIL");
    out += buf;
    return out;
}

} // namespace hpmp
