#include "base/trace.h"

#include <cstdarg>

namespace hpmp
{

const char *
toString(TraceFlag flag)
{
    switch (flag) {
      case TraceFlag::Walk: return "Walk";
      case TraceFlag::Hpmp: return "Hpmp";
      case TraceFlag::Pmpt: return "Pmpt";
      case TraceFlag::Monitor: return "Monitor";
      case TraceFlag::Fault: return "Fault";
      case TraceFlag::Tlb: return "Tlb";
      case TraceFlag::NumFlags: break;
    }
    return "?";
}

TraceRing::TraceRing(size_t capacity)
    : events_(capacity),
      capacity_(capacity)
{
}

void
TraceRing::setCapacity(size_t capacity)
{
    capacity_ = capacity;
    events_.assign(capacity, TraceEvent{});
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
}

const TraceEvent &
TraceRing::at(size_t i) const
{
    // With a full ring head_ points at the oldest event; before that
    // the oldest is slot 0.
    const size_t oldest = size_ == capacity_ ? head_ : 0;
    return events_[(oldest + i) % capacity_];
}

void
TraceRing::clear()
{
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
}

std::string
TraceRing::dumpChromeJson() const
{
    std::string out = "{\"traceEvents\": [\n";
    for (size_t i = 0; i < size_; ++i) {
        const TraceEvent &e = at(i);
        if (i)
            out += ",\n";
        char buf[384];
        if (e.ph == TracePhase::Complete) {
            std::snprintf(
                buf, sizeof(buf),
                "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                "\"ts\": %llu, \"dur\": %llu, \"pid\": %u, \"tid\": 0, "
                "\"args\": {\"a0\": %llu, \"a1\": %llu}}",
                e.name, toString(e.flag), (unsigned long long)e.tick,
                (unsigned long long)e.dur, e.pid,
                (unsigned long long)e.a0, (unsigned long long)e.a1);
        } else {
            // Span begin/end pair: chrome nests B/E events by
            // pid/tid arrival order; the causal ids ride in args so
            // scripts can rebuild the tree exactly.
            std::snprintf(
                buf, sizeof(buf),
                "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", "
                "\"ts\": %llu, \"pid\": %u, \"tid\": 0, "
                "\"args\": {\"a0\": %llu, \"a1\": %llu, "
                "\"span\": %llu, \"parent\": %llu, \"trace\": %llu}}",
                e.name, toString(e.flag),
                e.ph == TracePhase::Begin ? "B" : "E",
                (unsigned long long)e.tick, e.pid,
                (unsigned long long)e.a0, (unsigned long long)e.a1,
                (unsigned long long)e.span,
                (unsigned long long)e.parent,
                (unsigned long long)e.traceId);
        }
        out += buf;
    }
    // Overflow visibility: a truncated failing-seed dump says so
    // instead of silently starting mid-story.
    char meta[128];
    std::snprintf(meta, sizeof(meta),
                  "\n], \"otherData\": {\"recorded\": %llu, "
                  "\"dropped\": %llu}}\n",
                  (unsigned long long)recorded(),
                  (unsigned long long)dropped());
    out += meta;
    return out;
}

bool
TraceRing::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string json = dumpChromeJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

SpanId
SpanTracker::beginSpan(TraceFlag flag, const char *name, uint64_t a0,
                       uint64_t a1)
{
    Tracer &tracer = Tracer::instance();
    if (!tracer.enabled(flag))
        return 0;

    const SpanId id = ++lastSpanId_;
    OpenSpan &span = open_[id];
    span.prev = ctx_;
    span.traceId = ctx_.traceId ? ctx_.traceId : newTraceId();
    span.parent = ctx_.span;
    span.name = name;
    span.flag = flag;
    span.pid = system_;
    span.lexical = true;

    TraceEvent event{++now_, 0, a0, a1, name, flag};
    event.ph = TracePhase::Begin;
    event.pid = span.pid;
    event.span = id;
    event.parent = span.parent;
    event.traceId = span.traceId;
    tracer.ring().record(event);

    ctx_ = TraceContext{span.traceId, id};
    return id;
}

SpanId
SpanTracker::beginSpanUnder(TraceFlag flag, const char *name,
                            const TraceContext &parent, uint64_t a0,
                            uint64_t a1)
{
    Tracer &tracer = Tracer::instance();
    if (!tracer.enabled(flag))
        return 0;

    const SpanId id = ++lastSpanId_;
    OpenSpan &span = open_[id];
    span.prev = ctx_;
    span.traceId = parent.traceId ? parent.traceId : newTraceId();
    span.parent = parent.span;
    span.name = name;
    span.flag = flag;
    span.pid = system_;
    span.lexical = false;

    TraceEvent event{++now_, 0, a0, a1, name, flag};
    event.ph = TracePhase::Begin;
    event.pid = span.pid;
    event.span = id;
    event.parent = span.parent;
    event.traceId = span.traceId;
    tracer.ring().record(event);
    return id;
}

void
SpanTracker::endSpan(SpanId id, uint64_t a0, uint64_t a1)
{
    if (id == 0)
        return;
    auto it = open_.find(id);
    if (it == open_.end())
        return;
    const OpenSpan span = it->second;
    open_.erase(it);

    TraceEvent event{++now_, 0, a0, a1, span.name, span.flag};
    event.ph = TracePhase::End;
    event.pid = span.pid;
    event.span = id;
    event.parent = span.parent;
    event.traceId = span.traceId;
    Tracer::instance().ring().record(event);

    if (span.lexical && ctx_.span == id)
        ctx_ = span.prev;
}

void
SpanTracker::reset()
{
    ctx_ = TraceContext{};
    open_.clear();
    system_ = 0;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

bool
Tracer::enableByName(const std::string &names)
{
    size_t pos = 0;
    while (pos < names.size()) {
        size_t comma = names.find(',', pos);
        if (comma == std::string::npos)
            comma = names.size();
        const std::string name = names.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "All" || name == "all") {
            for (unsigned i = 0; i < unsigned(TraceFlag::NumFlags); ++i)
                enable(TraceFlag(i));
            continue;
        }
        bool found = false;
        for (unsigned i = 0; i < unsigned(TraceFlag::NumFlags); ++i) {
            if (name == toString(TraceFlag(i))) {
                enable(TraceFlag(i));
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return true;
}

void
Tracer::print(TraceFlag flag, const char *fmt, ...)
{
    ++printed_;
    if (silenced_)
        return;
    std::FILE *out = out_ ? out_ : stderr;
    std::fprintf(out, "%s: ", toString(flag));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
}

} // namespace hpmp
