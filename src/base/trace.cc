#include "base/trace.h"

#include <cstdarg>

namespace hpmp
{

const char *
toString(TraceFlag flag)
{
    switch (flag) {
      case TraceFlag::Walk: return "Walk";
      case TraceFlag::Hpmp: return "Hpmp";
      case TraceFlag::Pmpt: return "Pmpt";
      case TraceFlag::Monitor: return "Monitor";
      case TraceFlag::Fault: return "Fault";
      case TraceFlag::Tlb: return "Tlb";
      case TraceFlag::NumFlags: break;
    }
    return "?";
}

TraceRing::TraceRing(size_t capacity)
    : events_(capacity),
      capacity_(capacity)
{
}

void
TraceRing::setCapacity(size_t capacity)
{
    capacity_ = capacity;
    events_.assign(capacity, TraceEvent{});
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
}

const TraceEvent &
TraceRing::at(size_t i) const
{
    // With a full ring head_ points at the oldest event; before that
    // the oldest is slot 0.
    const size_t oldest = size_ == capacity_ ? head_ : 0;
    return events_[(oldest + i) % capacity_];
}

void
TraceRing::clear()
{
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
}

std::string
TraceRing::dumpChromeJson() const
{
    std::string out = "{\"traceEvents\": [\n";
    for (size_t i = 0; i < size_; ++i) {
        const TraceEvent &e = at(i);
        if (i)
            out += ",\n";
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"ts\": %llu, \"dur\": %llu, \"pid\": 0, \"tid\": 0, "
            "\"args\": {\"a0\": %llu, \"a1\": %llu}}",
            e.name, toString(e.flag), (unsigned long long)e.tick,
            (unsigned long long)e.dur, (unsigned long long)e.a0,
            (unsigned long long)e.a1);
        out += buf;
    }
    out += "\n]}\n";
    return out;
}

bool
TraceRing::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string json = dumpChromeJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

bool
Tracer::enableByName(const std::string &names)
{
    size_t pos = 0;
    while (pos < names.size()) {
        size_t comma = names.find(',', pos);
        if (comma == std::string::npos)
            comma = names.size();
        const std::string name = names.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "All" || name == "all") {
            for (unsigned i = 0; i < unsigned(TraceFlag::NumFlags); ++i)
                enable(TraceFlag(i));
            continue;
        }
        bool found = false;
        for (unsigned i = 0; i < unsigned(TraceFlag::NumFlags); ++i) {
            if (name == toString(TraceFlag(i))) {
                enable(TraceFlag(i));
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return true;
}

void
Tracer::print(TraceFlag flag, const char *fmt, ...)
{
    ++printed_;
    if (silenced_)
        return;
    std::FILE *out = out_ ? out_ : stderr;
    std::fprintf(out, "%s: ", toString(flag));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
}

} // namespace hpmp
