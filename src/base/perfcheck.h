/**
 * @file
 * Perf-regression gate: diff a stats/bench JSON dump against a
 * checked-in baseline under per-metric tolerance bands.
 *
 * Both files are flattened with parseStatsJson into dotted keys
 * ("simperf.0.cycles_per_access"), rules select keys with a dotted
 * glob, and each selected baseline metric must hold its band in the
 * current dump:
 *
 *     simperf.*.cycles_per_access=+10%   upper bound (lower is better)
 *     simperf.*.tlb_hit_rate=-5%         lower bound (higher is better)
 *     fleet.*.p99_switch_cycles=25%      two-sided band
 *
 * A rule that matches nothing, or a baselined metric missing from the
 * current dump, is a failure — a renamed metric must rename its
 * baseline, not silently fall out of the gate. Only deterministic
 * simulated metrics (cycles, hit rates) belong in CI baselines;
 * wall-clock throughput is machine noise.
 *
 * The comparison lives here (not in the tool) so tests can assert the
 * gate itself: an injected 20% regression must trip it.
 */

#ifndef HPMP_BASE_PERFCHECK_H
#define HPMP_BASE_PERFCHECK_H

#include <map>
#include <string>
#include <vector>

namespace hpmp
{

/** One tolerance rule: which metrics, how much drift, which side. */
struct PerfRule
{
    enum class Bound
    {
        Both,      //!< "tol%": fail outside [base*(1-t), base*(1+t)]
        LowerOnly, //!< "-tol%": fail if current < base*(1-t)
        UpperOnly, //!< "+tol%": fail if current > base*(1+t)
    };

    std::string pattern;  //!< dotted glob: '*' = one segment,
                          //!< trailing "**" = any remaining segments
    double tolerance = 0; //!< fractional, 0.10 = 10%
    Bound bound = Bound::Both;
};

/**
 * Parse "glob=10%" / "glob=-10%" / "glob=+10%" (the '%' is optional;
 * "glob=0.1" means the same as "glob=10%").
 * @return false on a malformed spec, with *error explaining why.
 */
bool parsePerfRule(const std::string &spec, PerfRule &rule,
                   std::string *error = nullptr);

/** Does a dotted glob match a flattened metric key? */
bool matchMetricGlob(const std::string &pattern, const std::string &key);

/** Verdict for one (rule, baseline-metric) pair. */
struct PerfCheckLine
{
    std::string key;
    double baseline = 0;
    double current = 0;
    double tolerance = 0;
    PerfRule::Bound bound = PerfRule::Bound::Both;
    bool missing = false; //!< key absent from the current dump
    bool ok = false;
};

/** Full gate outcome; ok() is the process exit criterion. */
struct PerfCheckReport
{
    std::vector<PerfCheckLine> lines;
    std::vector<std::string> unmatchedRules; //!< globs hitting nothing

    unsigned checked = 0;
    unsigned regressed = 0;
    unsigned missing = 0;

    bool
    ok() const
    {
        return regressed == 0 && missing == 0 && unmatchedRules.empty();
    }

    /** Human-readable per-metric table plus a PASS/FAIL summary. */
    std::string render() const;
};

/**
 * Run every rule over the flattened baseline/current maps. Baseline
 * keys not selected by any rule are ignored (dumps may carry noisy
 * wall-clock metrics next to the gated ones).
 */
PerfCheckReport perfCheck(const std::map<std::string, double> &baseline,
                          const std::map<std::string, double> &current,
                          const std::vector<PerfRule> &rules);

} // namespace hpmp

#endif // HPMP_BASE_PERFCHECK_H
