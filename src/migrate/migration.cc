#include "migrate/migration.h"

#include <algorithm>

#include "base/fault_inject.h"
#include "base/logging.h"
#include "base/trace.h"
#include "mem/phys_mem.h"

namespace hpmp
{

const char *
toString(MigratePhase phase)
{
    switch (phase) {
      case MigratePhase::Idle: return "idle";
      case MigratePhase::Quiesce: return "quiesce";
      case MigratePhase::Checkpoint: return "checkpoint";
      case MigratePhase::Transfer: return "transfer";
      case MigratePhase::Stage: return "stage";
      case MigratePhase::Verify: return "verify";
      case MigratePhase::Ack: return "ack";
      case MigratePhase::Commit: return "commit";
      case MigratePhase::Resume: return "resume";
      case MigratePhase::Done: return "done";
    }
    return "?";
}

/** Per-migration working state. */
struct MigrationEngine::Attempt
{
    DomainId srcId = 0;
    uint64_t nonce = 0;
    MigrateResult res;
    bool srcSuspended = false; //!< suspendDomain committed on the source
    bool destStaged = false;   //!< createDomain ran on the destination
    uint64_t phaseCycles = 0;  //!< current phase's cycle accumulator
    // Channel counter baselines (the channel is engine-lifetime).
    uint64_t chSent = 0, chDropped = 0, chDuped = 0, chCorrupted = 0;

    // Causal-trace state (DESIGN.md §13): one root span per attempt,
    // one child span per phase, previous track id restored on exit.
    SpanId rootSpan = 0;
    SpanId phaseSpan = 0;
    TraceContext rootCtx;
    uint32_t prevPid = 0;

    void
    beginPhase(const char *name, uint64_t a0 = 0)
    {
        endPhase();
        phaseSpan = Tracer::instance().spans().beginSpan(
            TraceFlag::Monitor, name, a0);
    }

    void
    endPhase(uint64_t a0 = 0)
    {
        if (phaseSpan) {
            Tracer::instance().spans().endSpan(phaseSpan, a0);
            phaseSpan = 0;
        }
    }

    /** Close root + phase spans and restore the caller's track id. */
    void
    closeSpans(MigratePhase outcome)
    {
        endPhase();
        SpanTracker &spans = Tracer::instance().spans();
        spans.endSpan(rootSpan, uint64_t(outcome));
        rootSpan = 0;
        spans.setSystem(prevPid);
    }
};

MigrationEngine::MigrationEngine(SecureMonitor &src, SecureMonitor &dst,
                                 const MigrateConfig &config,
                                 const std::string &stat_prefix)
    : src_(src), dst_(dst), config_(config), stats_(stat_prefix)
{
    stats_.add("migrations", &statMigrations_);
    stats_.add("commits", &statCommits_);
    stats_.add("aborts", &statAborts_);
    stats_.add("stranded", &statStranded_);
    stats_.add("bytes", &statBytes_);
    stats_.add("frame_retries", &statFrameRetries_);
    stats_.add("acks_lost", &statAcksLost_);
    stats_.add("commit_retries", &statCommitRetries_);
    stats_.add("frames_sent", &statFramesSent_);
    stats_.add("frames_dropped", &statFramesDropped_);
    stats_.add("frames_duplicated", &statFramesDuplicated_);
    stats_.add("frames_corrupted", &statFramesCorrupted_);
    stats_.add("frames_beyond_window", &statFramesBeyondWindow_);
    stats_.add("phase_quiesce_cycles", &statQuiesceCycles_);
    stats_.add("phase_checkpoint_cycles", &statCheckpointCycles_);
    stats_.add("phase_transfer_cycles", &statTransferCycles_);
    stats_.add("phase_stage_cycles", &statStageCycles_);
    stats_.add("phase_verify_cycles", &statVerifyCycles_);
    stats_.add("phase_commit_cycles", &statCommitCycles_);
    stats_.add("total_cycles", &statTotalCycles_);
}

void
MigrationEngine::oracleStep(const char *where)
{
    if (oracle_)
        oracle_->step(where);
}

bool
MigrationEngine::transferImage(Attempt &at,
                               const std::vector<uint8_t> &image,
                               std::vector<uint8_t> &received)
{
    const uint64_t total =
        (image.size() + config_.frameBytes - 1) / config_.frameBytes;
    std::vector<std::vector<uint8_t>> got(static_cast<size_t>(total));
    // Receive-side dedup is a bounded sliding window, not a
    // remembers-everything bitmap: the dedup state stays
    // O(recvWindowFrames) no matter what totalFrames claims, and a
    // frame beyond the window is discarded unrecorded (fail closed —
    // the in-order sender never legitimately runs that far ahead).
    SeqWindow window(config_.recvWindowFrames);

    for (uint64_t i = 0; i < total; ++i) {
        MsgFrame frame;
        frame.seq = i;
        frame.totalFrames = total;
        const uint64_t off = i * config_.frameBytes;
        const uint64_t len =
            std::min<uint64_t>(config_.frameBytes, image.size() - off);
        frame.payload.assign(image.begin() + ptrdiff_t(off),
                             image.begin() + ptrdiff_t(off + len));

        bool landed = false;
        for (unsigned attempt = 0; attempt <= config_.maxRetries;
             ++attempt) {
            channel_.send(frame);
            at.phaseCycles += config_.cyclesPerFrame;
            // Drain the wire. Receivers dedup by seq and discard
            // frames failing the end-to-end checksum — a corrupted
            // frame is handled exactly like a dropped one: the
            // sender's bounded-retry loop re-sends it.
            MsgFrame rx;
            while (channel_.recv(rx)) {
                if (!MsgChannel::valid(rx))
                    continue;
                if (rx.seq >= total)
                    continue;
                switch (window.accept(rx.seq)) {
                  case SeqWindow::Verdict::Accept:
                    got[size_t(rx.seq)] = std::move(rx.payload);
                    break;
                  case SeqWindow::Verdict::Duplicate:
                    break;
                  case SeqWindow::Verdict::BeyondWindow:
                    ++statFramesBeyondWindow_;
                    break;
                }
            }
            if (window.seen(i)) {
                landed = true;
                break;
            }
            ++at.res.retries;
            ++statFrameRetries_;
            at.phaseCycles += config_.backoffCycles << attempt;
            if (at.phaseCycles > config_.phaseTimeoutCycles)
                return false;
        }
        if (!landed)
            return false;
        oracleStep("transfer");
    }

    received.clear();
    received.reserve(image.size());
    for (auto &chunk : got)
        received.insert(received.end(), chunk.begin(), chunk.end());
    return true;
}

bool
MigrationEngine::deliverControl(Attempt &at, const char *fault_site,
                                Counter &lost_counter)
{
    for (unsigned attempt = 0; attempt <= config_.maxRetries; ++attempt) {
        at.phaseCycles += config_.cyclesPerFrame;
        if (!FAULT_POINT(fault_site))
            return true;
        ++lost_counter;
        ++at.res.retries;
        at.phaseCycles += config_.backoffCycles << attempt;
        if (at.phaseCycles > config_.phaseTimeoutCycles)
            return false;
    }
    return false;
}

MigrateResult
MigrationEngine::abort(Attempt &at, MigratePhase phase, MonitorError code,
                       std::string why)
{
    panic_if(at.res.committed, "abort after the commit point");
    ++statAborts_;
    at.res.ok = false;
    at.res.failedPhase = phase;
    at.res.code = code;
    at.res.error = std::move(why);
    at.res.cycles += at.phaseCycles;
    at.phaseCycles = 0;
    at.endPhase();
    SpanTracker &spans = Tracer::instance().spans();

    // Tear the staged destination copy down first, then resume the
    // source: at no point in that order does a second host grant the
    // domain. Rollback calls are retried — a campaign's injected
    // fault can fail them once, never forever (plans are one-shot).
    if (at.destStaged) {
        spans.setSystem(config_.destSystemId);
        for (unsigned attempt = 0; attempt < 8; ++attempt) {
            if (dst_.destroyDomain(at.res.destId).ok)
                break;
        }
    }
    if (at.srcSuspended) {
        spans.setSystem(config_.sourceSystemId);
        for (unsigned attempt = 0; attempt < 8; ++attempt) {
            if (src_.resumeDomain(at.srcId).ok)
                break;
        }
    }
    at.res.sourcePostDigest = src_.stateDigest(config_.fullSourceDigest);
    oracleStep("abort");
    if (oracle_)
        oracle_->finishMigration();
    channel_.clearQueue();
    statFramesSent_ += channel_.framesSent() - at.chSent;
    statFramesDropped_ += channel_.framesDropped() - at.chDropped;
    statFramesDuplicated_ += channel_.framesDuplicated() - at.chDuped;
    statFramesCorrupted_ += channel_.framesCorrupted() - at.chCorrupted;
    statTotalCycles_.sample(at.res.cycles);
    at.closeSpans(at.res.failedPhase);
    return at.res;
}

MigrateResult
MigrationEngine::finish(Attempt &at)
{
    at.res.cycles += at.phaseCycles;
    at.phaseCycles = 0;
    if (oracle_)
        oracle_->finishMigration();
    channel_.clearQueue();
    statFramesSent_ += channel_.framesSent() - at.chSent;
    statFramesDropped_ += channel_.framesDropped() - at.chDropped;
    statFramesDuplicated_ += channel_.framesDuplicated() - at.chDuped;
    statFramesCorrupted_ += channel_.framesCorrupted() - at.chCorrupted;
    statTotalCycles_.sample(at.res.cycles);
    at.closeSpans(at.res.ok ? MigratePhase::Done : at.res.failedPhase);
    return at.res;
}

MigrateResult
MigrationEngine::migrate(DomainId id, uint64_t nonce)
{
    Attempt at;
    at.srcId = id;
    at.nonce = nonce;
    at.chSent = channel_.framesSent();
    at.chDropped = channel_.framesDropped();
    at.chDuped = channel_.framesDuplicated();
    at.chCorrupted = channel_.framesCorrupted();
    ++statMigrations_;

    // Root span for the whole attempt; its TraceContext is serialized
    // into the checkpoint so destination-side spans join this tree.
    SpanTracker &spans = Tracer::instance().spans();
    at.prevPid = spans.system();
    spans.setSystem(config_.sourceSystemId);
    at.rootSpan =
        spans.beginSpan(TraceFlag::Monitor, "migrate", id, nonce);
    at.rootCtx = spans.context();

    // ---- Quiesce: switch away, baseline digest, revoke -------------
    at.beginPhase("migrate.quiesce", id);
    // The rollback baseline is captured with the domain *not* running
    // on the source: switching away is part of quiesce, not something
    // an abort must undo.
    if (src_.currentDomain() == id) {
        const uint64_t before = src_.stateDigest(config_.fullSourceDigest);
        const MonitorResult sw = src_.switchTo(0);
        if (!sw.ok) {
            at.res.sourcePreDigest = before;
            return abort(at, MigratePhase::Quiesce, sw.code,
                         "quiesce switch failed: " + sw.error);
        }
        at.phaseCycles += sw.cycles;
    }
    at.res.sourcePreDigest = src_.stateDigest(config_.fullSourceDigest);
    const MonitorResult sus = src_.suspendDomain(id);
    if (!sus.ok) {
        return abort(at, MigratePhase::Quiesce, sus.code,
                     "suspend failed: " + sus.error);
    }
    at.srcSuspended = true;
    at.phaseCycles += sus.cycles;
    if (oracle_)
        oracle_->beginMigration(id, src_.gmsOf(id));
    oracleStep("quiesce");
    statQuiesceCycles_.sample(at.phaseCycles);
    at.res.cycles += at.phaseCycles;
    at.phaseCycles = 0;
    at.endPhase();

    // ---- Checkpoint -------------------------------------------------
    at.beginPhase("migrate.checkpoint", id);
    DomainCheckpoint cp;
    const std::string cap_err = captureCheckpoint(src_, id, nonce, cp);
    if (!cap_err.empty()) {
        return abort(at, MigratePhase::Checkpoint, MonitorError::None,
                     "checkpoint failed: " + cap_err);
    }
    at.phaseCycles += cp.memory.size() / 8; // modelled copy+measure cost
    // The trace context travels inside the image (literally over the
    // MsgChannel): the destination reads it back out after Transfer.
    cp.traceId = at.rootCtx.traceId;
    cp.traceSpan = at.rootCtx.span;
    oracleStep("checkpoint");
    statCheckpointCycles_.sample(at.phaseCycles);
    at.res.cycles += at.phaseCycles;
    at.phaseCycles = 0;
    at.endPhase();

    // ---- Transfer ---------------------------------------------------
    at.beginPhase("migrate.transfer", id);
    const std::vector<uint8_t> image = serializeCheckpoint(cp);
    at.res.bytes = image.size();
    statBytes_ += image.size();
    std::vector<uint8_t> received;
    if (!transferImage(at, image, received)) {
        return abort(at, MigratePhase::Transfer, MonitorError::None,
                     "transfer failed: frame retries/timeout exhausted");
    }
    statTransferCycles_.sample(at.phaseCycles);
    at.res.cycles += at.phaseCycles;
    at.phaseCycles = 0;
    at.endPhase(image.size());

    // ---- Stage: re-create the domain, suspended --------------------
    DomainCheckpoint rcp;
    if (!deserializeCheckpoint(received, rcp)) {
        return abort(at, MigratePhase::Stage, MonitorError::None,
                     "malformed checkpoint image on the destination");
    }
    // Destination side: adopt the context recovered from the image —
    // not the live one — so the stage/verify spans provably descend
    // from the trace id that crossed the wire, on the dest track.
    spans.setSystem(config_.destSystemId);
    spans.setContext(TraceContext{rcp.traceId, rcp.traceSpan});
    at.beginPhase("migrate.stage", rcp.sourceId);
    at.res.destId = dst_.createDomain();
    at.destStaged = true;
    for (const GmsImage &r : rcp.regions) {
        Gms gms;
        gms.base = r.base;
        gms.size = r.size;
        gms.perm = r.perm;
        gms.label = r.label;
        const MonitorResult ar = dst_.addGms(at.res.destId, gms);
        if (!ar.ok) {
            return abort(at, MigratePhase::Stage, ar.code,
                         "destination addGms failed: " + ar.error);
        }
        at.phaseCycles += ar.cycles;
    }
    // Identity placement: regions keep their physical addresses, so
    // the PT/GPT/NPT roots inside the image stay valid as-is.
    PhysMem &dmem = dst_.machine().mem();
    uint64_t moff = 0;
    for (const GmsImage &r : rcp.regions) {
        dmem.writeBytes(r.base, rcp.memory.data() + moff, r.size);
        moff += r.size;
    }
    at.phaseCycles += rcp.memory.size() / 8;
    // Staged, not grantable: the domain only becomes runnable on the
    // destination once COMMIT lands (resumeDomain below).
    const MonitorResult ss = dst_.suspendDomain(at.res.destId);
    if (!ss.ok) {
        return abort(at, MigratePhase::Stage, ss.code,
                     "destination stage-suspend failed: " + ss.error);
    }
    at.phaseCycles += ss.cycles;
    if (oracle_)
        oracle_->setDestDomain(at.res.destId);
    oracleStep("stage");
    statStageCycles_.sample(at.phaseCycles);
    at.res.cycles += at.phaseCycles;
    at.phaseCycles = 0;
    at.endPhase(at.res.destId);

    // ---- Verify: independent re-measure + re-attest ----------------
    at.beginPhase("migrate.verify", at.res.destId);
    if (FAULT_POINT("migrate.dest_attest")) {
        return abort(at, MigratePhase::Verify, MonitorError::InjectedFault,
                     "injected destination attestation failure");
    }
    if (rcp.report.measurement != rcp.measurement ||
        !src_.attestor().verify(rcp.report, nonce)) {
        return abort(at, MigratePhase::Verify, MonitorError::None,
                     "source attestation report failed verification");
    }
    const MonitorValue<MerkleHash> meas = dst_.measureDomain(at.res.destId);
    if (!meas.ok) {
        return abort(at, MigratePhase::Verify, meas.code,
                     "destination re-measure failed: " + meas.error);
    }
    if (meas.value != rcp.measurement) {
        return abort(at, MigratePhase::Verify, MonitorError::None,
                     "measurement mismatch after transfer");
    }
    const MonitorValue<AttestationReport> drep =
        dst_.attestDomain(at.res.destId, nonce);
    if (!drep.ok || !dst_.attestor().verify(drep.value, nonce)) {
        return abort(at, MigratePhase::Verify,
                     drep.ok ? MonitorError::None : drep.code,
                     "destination re-attestation failed" +
                         (drep.ok ? std::string()
                                  : ": " + drep.error));
    }
    at.phaseCycles += rcp.memory.size() / 8; // modelled re-measure cost
    oracleStep("verify");
    statVerifyCycles_.sample(at.phaseCycles);
    at.res.cycles += at.phaseCycles;
    at.phaseCycles = 0;
    at.endPhase();

    // ---- Ack: PREPARED dest -> source ------------------------------
    spans.setSystem(config_.sourceSystemId);
    at.beginPhase("migrate.ack", id);
    if (!deliverControl(at, "migrate.ack_lost", statAcksLost_)) {
        return abort(at, MigratePhase::Ack, MonitorError::None,
                     "PREPARED ack lost after retries; "
                     "destination never commits");
    }
    oracleStep("ack");
    at.endPhase();

    // ---- Commit: the point of no return ----------------------------
    at.beginPhase("migrate.commit", id);
    const MonitorResult dr = src_.destroyDomain(id);
    if (!dr.ok) {
        // The source copy is intact; this is still a clean abort.
        return abort(at, MigratePhase::Commit, dr.code,
                     "source destroy failed: " + dr.error);
    }
    at.srcSuspended = false; // gone, nothing left to resume
    at.res.committed = true;
    at.phaseCycles += dr.cycles;
    oracleStep("commit-destroy");

    if (!deliverControl(at, "migrate.commit_crash", statCommitRetries_)) {
        // Crash during commit: the source is gone and the destination
        // never heard COMMIT. The domain sits staged (suspended) on
        // the destination — granted nowhere, never granted twice —
        // until an operator resumes it. Failed, but crash-consistent.
        ++statStranded_;
        at.res.stranded = true;
        at.res.failedPhase = MigratePhase::Commit;
        at.res.error = "COMMIT lost after retries: "
                       "domain stranded staged on destination";
        oracleStep("stranded");
        return finish(at);
    }

    at.endPhase();

    // ---- Resume: destination activation ----------------------------
    spans.setSystem(config_.destSystemId);
    at.beginPhase("migrate.resume", at.res.destId);
    if (oracle_)
        oracle_->noteDestCommitted();
    bool activated = false;
    for (unsigned attempt = 0; attempt <= config_.maxRetries; ++attempt) {
        const MonitorResult rr = dst_.resumeDomain(at.res.destId);
        if (rr.ok) {
            at.phaseCycles += rr.cycles;
            activated = true;
            break;
        }
        ++at.res.retries;
    }
    if (!activated) {
        ++statStranded_;
        at.res.stranded = true;
        at.res.failedPhase = MigratePhase::Resume;
        at.res.error = "destination resume failed after retries: "
                       "domain stranded staged";
        oracleStep("stranded");
        return finish(at);
    }
    at.res.destActivated = true;
    oracleStep("resume");

    if (config_.resumeOnDest) {
        // Re-apply the captured vCPU contexts. satp goes through
        // setSatp and the virt state through setVsatp/setHgatp, so
        // every sibling is fenced and the harts arrive with cold
        // TLBs — the first guest access pays the full hgatp-switch
        // walk.
        if (SmpSystem *dsmp = dst_.smp()) {
            const unsigned n = std::min<unsigned>(
                dsmp->numHarts(), unsigned(rcp.harts.size()));
            for (unsigned h = 0; h < n; ++h) {
                HartContext ctx = rcp.harts[h];
                if (ctx.virt && !dsmp->virtEnabled())
                    ctx.virt = false;
                dsmp->applyHartContext(h, ctx);
            }
        }
        for (unsigned attempt = 0; attempt <= config_.maxRetries;
             ++attempt) {
            const MonitorResult sw = dst_.switchTo(at.res.destId);
            if (sw.ok) {
                at.phaseCycles += sw.cycles;
                at.res.destSwitched = true;
                break;
            }
            ++at.res.retries;
        }
    }
    oracleStep("post-resume");
    statCommitCycles_.sample(at.phaseCycles);
    ++statCommits_;
    at.res.ok = true;
    at.res.failedPhase = MigratePhase::Done;
    return finish(at);
}

} // namespace hpmp
