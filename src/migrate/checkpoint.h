/**
 * @file
 * Whole-domain migration checkpoint (DESIGN.md §12).
 *
 * A checkpoint is everything the destination host needs to re-create
 * a suspended domain bit-identically:
 *
 *  - the GMS list (base/size/perm/label) — this *is* the domain's
 *    pmpt state: the destination monitor rebuilds its PMP Table from
 *    it with addGms, because table frames live in each monitor's own
 *    private region and raw table words would not relocate;
 *  - the raw bytes of every GMS region. Guest PT/GPT/NPT pages live
 *    inside the domain's own memory, so page tables travel implicitly
 *    and stay valid: regions keep their physical addresses on the
 *    destination (identity placement);
 *  - per-hart vCPU translation context (satp/vsatp/hgatp + privilege)
 *    captured by SmpSystem::extractHartContext;
 *  - the source monitor's measurement and signed attestation report
 *    over it, which the destination re-derives independently after
 *    the stream lands (verify-digest before commit).
 *
 * Capture is all-or-nothing: the migrate.checkpoint_torn fault site
 * models a crash mid-capture, and any failure surfaces as a typed
 * error string so the engine aborts before the source gives anything
 * up.
 */

#ifndef HPMP_MIGRATE_CHECKPOINT_H
#define HPMP_MIGRATE_CHECKPOINT_H

#include <string>
#include <vector>

#include "core/smp.h"
#include "monitor/secure_monitor.h"

namespace hpmp
{

/** One GMS as it travels in a checkpoint. */
struct GmsImage
{
    Addr base = 0;
    uint64_t size = 0;
    Perm perm;
    GmsLabel label = GmsLabel::Slow;
};

/** A captured domain, ready for streaming. */
struct DomainCheckpoint
{
    DomainId sourceId = 0;
    uint64_t nonce = 0;
    MerkleHash measurement = 0;
    AttestationReport report;
    /**
     * Causal-trace context of the migration driving this checkpoint
     * (DESIGN.md §13): the trace id and root span travel inside the
     * image, so the destination's stage/verify spans join the
     * source's trace tree. Zero when tracing is off.
     */
    uint64_t traceId = 0;
    uint64_t traceSpan = 0;
    std::vector<GmsImage> regions;
    /** Concatenated raw bytes of every region, in list order. */
    std::vector<uint8_t> memory;
    /** Per-hart translation context (empty on single-machine hosts). */
    std::vector<HartContext> harts;
};

/**
 * Capture a suspended domain on the source host. The domain must
 * already be suspended (suspendDomain) and must not be running on any
 * hart — capture reads memory and registers without stopping anyone.
 * @return empty string on success, the failure reason otherwise.
 */
std::string captureCheckpoint(SecureMonitor &src, DomainId id,
                              uint64_t nonce, DomainCheckpoint &out);

/** Encode a checkpoint as one flat byte image. */
std::vector<uint8_t> serializeCheckpoint(const DomainCheckpoint &cp);

/**
 * Decode a received image. Fully bounds-checked: truncated, oversized
 * or internally inconsistent images fail cleanly.
 * @return true iff the image decoded completely.
 */
bool deserializeCheckpoint(const std::vector<uint8_t> &bytes,
                           DomainCheckpoint &out);

} // namespace hpmp

#endif // HPMP_MIGRATE_CHECKPOINT_H
