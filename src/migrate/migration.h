/**
 * @file
 * Whole-domain live migration engine (DESIGN.md §12).
 *
 * Moves a domain between two hosts (each a SecureMonitor over its own
 * SmpSystem) with a crash-consistent two-phase handoff:
 *
 *   Quiesce    — source switches away from the domain, captures the
 *                rollback baseline digest, then suspendDomain revokes
 *                every grant path (typed DomainMigrating from then on);
 *   Checkpoint — GMS list + raw memory + per-hart vCPU context +
 *                measurement + signed attestation report;
 *   Transfer   — the serialized image streams over a MsgChannel that
 *                can drop, duplicate or corrupt frames; every frame is
 *                retried with bounded backoff under a per-phase
 *                timeout, receivers dedup by seq and discard frames
 *                failing the end-to-end checksum;
 *   Stage      — destination re-creates the domain (same physical
 *                placement, its own PMP Table rebuilt from the GMS
 *                list) and immediately suspends it: staged, visible,
 *                not grantable;
 *   Verify     — destination independently re-measures the staged
 *                domain, requires digest equality with the checkpoint,
 *                and re-attests (its own report plus verification of
 *                the source's);
 *   Ack        — PREPARED travels dest -> source with bounded retry;
 *   Commit     — source destroyDomain is the point of no return, then
 *                COMMIT travels source -> dest (retried; a crash that
 *                loses every resend strands the domain staged on the
 *                destination — suspended, grantable nowhere, never
 *                granted twice);
 *   Resume     — destination resumeDomain activates the domain, hart
 *                contexts are re-applied (cold TLBs: satp/hgatp writes
 *                fence every sibling) and the domain is switched in.
 *
 * Any failure before Commit aborts: the staged destination copy is
 * destroyed and the source resumes, bit-identical to the pre-suspend
 * digest. The engine publishes every step to a CrossSystemOracle so
 * no interleaving can show both hosts granting at once.
 */

#ifndef HPMP_MIGRATE_MIGRATION_H
#define HPMP_MIGRATE_MIGRATION_H

#include <string>

#include "base/stats.h"
#include "migrate/checkpoint.h"
#include "migrate/msg_channel.h"
#include "monitor/secure_monitor.h"
#include "monitor/stale_checker.h"

namespace hpmp
{

/** Protocol phases, in order; MigrateResult names the failing one. */
enum class MigratePhase : uint8_t
{
    Idle,
    Quiesce,
    Checkpoint,
    Transfer,
    Stage,
    Verify,
    Ack,
    Commit,
    Resume,
    Done,
};

const char *toString(MigratePhase phase);

/** Engine knobs: retry bounds, backoff, frame size, timeouts. */
struct MigrateConfig
{
    unsigned maxRetries = 4;       //!< per message (frame, ack, commit)
    uint64_t backoffCycles = 400;  //!< first retry wait; doubles per retry
    uint64_t frameBytes = 4096;    //!< payload bytes per transfer frame
    uint64_t cyclesPerFrame = 200; //!< modelled wire cost per frame sent
    /** Per-phase cycle budget; an overrun aborts the migration. */
    uint64_t phaseTimeoutCycles = 4'000'000;
    /** After commit: re-apply hart contexts and switch the domain in. */
    bool resumeOnDest = true;
    /** Hash full PMP-table contents in the rollback baseline digest. */
    bool fullSourceDigest = true;
    /**
     * Receive-side sequence-dedup window (frames). Bounds the
     * receiver's dedup state independently of totalFrames; frames at
     * or beyond base+window are rejected, not remembered
     * (MsgChannel SeqWindow).
     */
    uint64_t recvWindowFrames = 64;
    /**
     * chrome://tracing track ids stamped on this engine's span events
     * (DESIGN.md §13): source-side phases land on sourceSystemId,
     * stage/verify/resume on destSystemId, so one dump shows both
     * hosts of a migration on a shared timeline.
     */
    uint32_t sourceSystemId = 0;
    uint32_t destSystemId = 1;
};

/** Outcome of one migration attempt. */
struct MigrateResult
{
    bool ok = false;
    MigratePhase failedPhase = MigratePhase::Idle;
    MonitorError code = MonitorError::None; //!< when a monitor call failed
    std::string error;
    DomainId destId = 0;     //!< destination id (valid once staged)
    bool committed = false;  //!< source destroyed (point of no return)
    bool destActivated = false; //!< destination resumed the domain
    bool destSwitched = false;  //!< contexts applied + switched in
    /** committed but COMMIT lost for good: the domain sits staged
     *  (suspended) on the destination, granted nowhere. */
    bool stranded = false;
    uint64_t bytes = 0;   //!< serialized checkpoint size
    uint64_t retries = 0; //!< message retries across all phases
    uint64_t cycles = 0;  //!< total modelled protocol cycles
    /** Source digest captured after quiesce, before suspend. An abort
     *  must restore the source to exactly this value. */
    uint64_t sourcePreDigest = 0;
    /** Source digest after an abort's rollback (equals pre on every
     *  abort path; meaningless when committed). */
    uint64_t sourcePostDigest = 0;
};

class MigrationEngine
{
  public:
    /**
     * @param stat_prefix name of this engine's StatGroup ("migrate"
     *        by default; campaigns running two engines give the
     *        reverse direction a distinct prefix).
     */
    MigrationEngine(SecureMonitor &src, SecureMonitor &dst,
                    const MigrateConfig &config = {},
                    const std::string &stat_prefix = "migrate");

    /** Install (or clear) the cross-system dual-grant oracle. */
    void setOracle(CrossSystemOracle *oracle) { oracle_ = oracle; }

    /**
     * Migrate domain `id` from the source to the destination host.
     * `nonce` freshens both attestation reports. On failure the
     * result names the phase and the source is rolled back (unless
     * `committed`, after which the source copy is gone by design).
     */
    MigrateResult migrate(DomainId id, uint64_t nonce);

    MsgChannel &channel() { return channel_; }
    const MigrateConfig &config() const { return config_; }

    /**
     * "migrate.*" stats: attempt/commit/abort counters, transport
     * hazard counters, per-phase latency distributions, bytes moved.
     */
    StatGroup &stats() { return stats_; }
    void registerStats(StatRegistry &registry) { registry.add(&stats_); }

  private:
    struct Attempt; //!< per-migration working state (defined in .cc)

    /** Stream the serialized image; false = retries/timeout exhausted. */
    bool transferImage(Attempt &at, const std::vector<uint8_t> &image,
                       std::vector<uint8_t> &received);

    /** Deliver a control message (ack/commit) with bounded retry. */
    bool deliverControl(Attempt &at, const char *fault_site,
                        Counter &lost_counter);

    MigrateResult abort(Attempt &at, MigratePhase phase,
                        MonitorError code, std::string why);
    MigrateResult finish(Attempt &at);

    void oracleStep(const char *where);

    SecureMonitor &src_;
    SecureMonitor &dst_;
    MigrateConfig config_;
    MsgChannel channel_;
    CrossSystemOracle *oracle_ = nullptr;

    StatGroup stats_;
    Counter statMigrations_;  //!< attempts started
    Counter statCommits_;     //!< migrations committed + activated
    Counter statAborts_;      //!< attempts rolled back pre-commit
    Counter statStranded_;    //!< committed, COMMIT lost for good
    Counter statBytes_;       //!< serialized checkpoint bytes moved
    Counter statFrameRetries_; //!< transfer frames re-sent
    Counter statAcksLost_;     //!< PREPARED acks lost (injected)
    Counter statCommitRetries_; //!< COMMIT messages re-sent
    Counter statFramesSent_;    //!< frames put on the wire (incl. resends)
    Counter statFramesDropped_;
    Counter statFramesDuplicated_;
    Counter statFramesCorrupted_;
    /** Frames discarded at or beyond the receive dedup window. */
    Counter statFramesBeyondWindow_;
    Distribution statQuiesceCycles_;
    Distribution statCheckpointCycles_;
    Distribution statTransferCycles_;
    Distribution statStageCycles_;
    Distribution statVerifyCycles_;
    Distribution statCommitCycles_;
    Distribution statTotalCycles_;
};

} // namespace hpmp

#endif // HPMP_MIGRATE_MIGRATION_H
