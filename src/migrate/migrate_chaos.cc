#include "migrate/migrate_chaos.h"

#include <memory>
#include <sstream>
#include <vector>

#include "base/fault_inject.h"
#include "base/logging.h"
#include "base/rng.h"
#include "base/stats.h"
#include "core/params.h"
#include "core/smp.h"
#include "mem/phys_mem.h"
#include "migrate/migration.h"
#include "monitor/secure_monitor.h"
#include "monitor/stale_checker.h"

namespace hpmp
{

namespace
{

// Same chaos-window geometry as the monitor fuzzer: domains live far
// above the monitor-private region, one 64 MiB window per slot, and
// both hosts share it so identity placement always lands in a free
// window on the other side.
constexpr Addr kWindowBase = 256_MiB;
constexpr uint64_t kWindowSize = 64_MiB;
constexpr unsigned kSlots = 4;
constexpr uint64_t kPatternBytes = 128;

Addr
windowOf(unsigned slot)
{
    return kWindowBase + slot * kWindowSize;
}

/** One migratable tenant: its current host, id and memory pattern. */
struct Slot
{
    DomainId id = 0;
    bool onDest = false; //!< currently lives on host B
    Addr base = 0;       //!< first region base (pattern check target)
    uint8_t pattern = 0;
};

} // namespace

ChaosStats
runMigrateChaos(const ChaosConfig &config)
{
    panic_if(!config.migrateLayer, "runMigrateChaos without migrateLayer");
    panic_if(config.osLayer || config.virtLayer || config.fleetLayer,
             "--migrate is mutually exclusive with the other layers");

    ChaosStats stats;
    stats.harts = config.harts;
    Rng rng(config.seed);

    // Two hosts. Distinct scheduler seeds: the interleavings are
    // independent machines, not mirrored ones.
    SmpParams spa;
    spa.harts = config.harts;
    spa.schedSeed = config.seed * 0x9E3779B97F4A7C15ULL + config.harts;
    SmpParams spb = spa;
    spb.schedSeed += 0x517cc1b727220a95ULL;
    // PMPTW-Cache on: cached leaf pmptes must stay coherent across
    // suspend/revoke/rollback on the source and activation on the
    // destination, and the oracle's probes audit the cached view.
    MachineParams mp = rocketParams();
    mp.pmptwEntries = 8;
    SmpSystem smpA(mp, spa);
    SmpSystem smpB(mp, spb);
    MonitorConfig mc;
    mc.scheme = config.scheme;
    SecureMonitor monA(smpA, mc);
    SecureMonitor monB(smpB, mc);
    for (unsigned h = 0; h < config.harts; ++h) {
        smpA.hart(h).setPriv(PrivMode::Supervisor);
        smpA.hart(h).setBare();
        smpB.hart(h).setPriv(PrivMode::Supervisor);
        smpB.hart(h).setBare();
    }

    MigrateConfig ec;
    ec.fullSourceDigest = config.fullDigest;
    // Trace tracks: host A = 0, host B = 1, whichever direction a
    // migration runs — a failing-seed dump shows both hosts' spans on
    // consistent timelines.
    MigrateConfig ecBack = ec;
    ecBack.sourceSystemId = 1;
    ecBack.destSystemId = 0;
    CrossSystemOracle oracleFwd(monA, monB);
    CrossSystemOracle oracleBack(monB, monA);
    MigrationEngine engFwd(monA, monB, ec, "migrate");
    MigrationEngine engBack(monB, monA, ecBack, "migrate_back");
    engFwd.setOracle(&oracleFwd);
    engBack.setOracle(&oracleBack);

    // ---- population: kSlots tenants on host A ----------------------
    std::vector<Slot> slots(kSlots);
    for (unsigned i = 0; i < kSlots; ++i) {
        Slot &slot = slots[i];
        slot.id = monA.createDomain();
        slot.base = windowOf(i);
        slot.pattern = uint8_t(0xA0 + 7 * i);
        Gms gms;
        gms.base = slot.base;
        gms.size = 2_MiB;
        gms.perm = Perm::rw();
        gms.label = i == 0 ? GmsLabel::Fast : GmsLabel::Slow;
        panic_if(!monA.addGms(slot.id, gms).ok, "chaos setup addGms");
        if (i == 0) {
            // A second region on one tenant: multi-region checkpoints
            // travel through the same stream.
            Gms extra;
            extra.base = slot.base + 32_MiB;
            extra.size = 1_MiB;
            extra.perm = Perm::ro();
            panic_if(!monA.addGms(slot.id, extra).ok,
                     "chaos setup addGms (extra)");
        }
        std::vector<uint8_t> pattern(kPatternBytes);
        for (uint64_t j = 0; j < kPatternBytes; ++j)
            pattern[j] = uint8_t(slot.pattern + j);
        smpA.mem().writeBytes(slot.base, pattern.data(), pattern.size());
    }

    FaultInjector &injector = FaultInjector::instance();
    injector.enable(config.seed);

    const char *op_name = "?";
    auto fail = [&](unsigned index, const std::string &why) {
        if (stats.failed)
            return;
        std::ostringstream os;
        os << "seed " << config.seed << " op #" << index << " ("
           << op_name << "): " << why;
        stats.failed = true;
        stats.failure = os.str();
    };

    // Windowed telemetry across both hosts, clocked by the sum of
    // both monitors' simulated call cycles (work on either host
    // advances the campaign clock).
    StatRegistry seriesRegistry;
    std::unique_ptr<StatSampler> sampler;
    auto campaign_cycles = [&]() -> uint64_t {
        const Distribution *a = monA.stats().getDist("call_cycles");
        const Distribution *b = monB.stats().getDist("call_cycles");
        return (a ? a->sum() : 0) + (b ? b->sum() : 0);
    };
    if (config.statsSeriesOut) {
        monA.registerStats(seriesRegistry);
        smpA.registerStats(seriesRegistry);
        engFwd.registerStats(seriesRegistry);
        engBack.registerStats(seriesRegistry);
        oracleFwd.registerStats(seriesRegistry);
        sampler = std::make_unique<StatSampler>(seriesRegistry,
                                                config.statsSeriesInterval);
    }

    for (unsigned i = 0; i < config.ops && !stats.failed; ++i) {
        if (sampler)
            sampler->advanceTo(campaign_cycles());
        ++stats.ops;
        if (rng.chance(config.faultProb)) {
            ++stats.injectedFaults;
            injector.armAnyNth(1 + rng.below(24));
        }

        const unsigned si = unsigned(rng.below(kSlots));
        Slot &slot = slots[si];
        SecureMonitor &here = slot.onDest ? monB : monA;
        SecureMonitor &there = slot.onDest ? monA : monB;
        SmpSystem &thereSmp = slot.onDest ? smpA : smpB;

        if (rng.below(100) < 25) {
            // Lifecycle noise on the tenant's current host: switches
            // in and out keep register layouts churning between
            // migrations (typed failures are expected under faults).
            op_name = "noise-switch";
            if (here.switchTo(slot.id).ok)
                ++stats.okOps;
            else
                ++stats.failedOps;
            (void)here.switchTo(0);
        } else {
            op_name = "migrate";
            MigrationEngine &eng = slot.onDest ? engBack : engFwd;
            const uint64_t nonce = rng.below(1ull << 62) + 1;
            const MigrateResult res = eng.migrate(slot.id, nonce);
            ++stats.migrations;
            stats.migrateRetries += res.retries;
            stats.migrateBytes += res.bytes;

            if (res.ok) {
                ++stats.migrateCommits;
                ++stats.okOps;
                FaultInjector::SuspendGuard guard;
                if (here.domainExists(slot.id)) {
                    fail(i, "domain still exists on the source "
                            "after a committed migration");
                }
                // The retired source id must stay a typed denial —
                // including once the slot index is recycled.
                const MonitorResult probe = here.switchTo(slot.id);
                ++stats.migrateStaleProbes;
                if (probe.ok ||
                    (probe.code != MonitorError::NoSuchDomain &&
                     probe.code != MonitorError::StaleHandle)) {
                    fail(i, "retired source id was not denied after "
                            "migration commit");
                }
                if (!there.domainGrantable(res.destId))
                    fail(i, "domain not grantable on the destination");
                std::vector<uint8_t> buf(kPatternBytes);
                thereSmp.mem().readBytes(slot.base, buf.data(),
                                         buf.size());
                for (uint64_t j = 0; j < kPatternBytes; ++j) {
                    if (buf[j] != uint8_t(slot.pattern + j)) {
                        fail(i, "memory pattern mismatch on the "
                                "destination after migration");
                        break;
                    }
                }
                slot.id = res.destId;
                slot.onDest = !slot.onDest;
            } else if (res.stranded) {
                ++stats.migrateStranded;
                ++stats.failedOps;
                FaultInjector::SuspendGuard guard;
                if (here.domainExists(slot.id)) {
                    fail(i, "source still holds the domain after a "
                            "stranded commit");
                }
                if (!there.domainMigrating(res.destId) &&
                    !there.domainGrantable(res.destId)) {
                    fail(i, "stranded domain is neither staged nor "
                            "active on the destination");
                }
                if (there.domainMigrating(res.destId) &&
                    !there.resumeDomain(res.destId).ok) {
                    // Operator recovery: resume the staged copy.
                    fail(i, "stranded-domain recovery resume failed");
                }
                slot.id = res.destId;
                slot.onDest = !slot.onDest;
            } else {
                ++stats.migrateAborts;
                ++stats.failedOps;
                ++stats.migrateDigestChecks;
                ++stats.rollbackChecks;
                if (res.sourcePostDigest != res.sourcePreDigest) {
                    std::ostringstream os;
                    os << "post-abort digest divergence in phase "
                       << toString(res.failedPhase) << " ("
                       << res.error << ")";
                    fail(i, os.str());
                }
                FaultInjector::SuspendGuard guard;
                if (!here.domainGrantable(slot.id)) {
                    fail(i, "domain not grantable on the source after "
                            "an aborted migration (" + res.error + ")");
                }
            }
        }

        injector.clearPlans();
        if (oracleFwd.failed())
            fail(i, oracleFwd.failure());
        if (oracleBack.failed())
            fail(i, oracleBack.failure());
    }

    injector.disable();

    stats.dualGrantChecks = oracleFwd.checks() + oracleBack.checks();
    stats.dualGrantViolations =
        oracleFwd.violations() + oracleBack.violations();

    if (sampler) {
        sampler->sample(campaign_cycles());
        *config.statsSeriesOut = sampler->dumpJson();
    }
    if (config.statsJsonOut) {
        StatRegistry registry;
        monA.registerStats(registry);
        smpA.registerStats(registry);
        engFwd.registerStats(registry);
        engBack.registerStats(registry);
        oracleFwd.registerStats(registry);
        *config.statsJsonOut = registry.dumpJson();
    }
    return stats;
}

} // namespace hpmp
