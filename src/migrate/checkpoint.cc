#include "migrate/checkpoint.h"

#include "base/fault_inject.h"
#include "mem/phys_mem.h"
#include "migrate/serialize.h"

namespace hpmp
{

namespace
{

constexpr uint64_t kMagic = 0x48504d504d494731ULL; // "HPMPMIG1"
constexpr uint64_t kVersion = 1;

/** Serialized size of one GmsImage record (base, size, perm, label). */
constexpr uint64_t kRegionRecordBytes = 8 + 8 + 1 + 1;

/** Serialized size of one HartContext record. */
constexpr uint64_t kHartRecordBytes = 1 + 8 + 1 + 1 + 1 + 8 + 8 + 1;

} // namespace

std::string
captureCheckpoint(SecureMonitor &src, DomainId id, uint64_t nonce,
                  DomainCheckpoint &out)
{
    if (!src.domainMigrating(id))
        return "domain is not suspended for migration";
    // A crash mid-capture leaves a torn image behind; the engine must
    // abort and resume the source rather than stream half a domain.
    if (FAULT_POINT("migrate.checkpoint_torn"))
        return "injected torn checkpoint";

    out = DomainCheckpoint{};
    out.sourceId = id;
    out.nonce = nonce;

    PhysMem &mem = src.machine().mem();
    for (const Gms &gms : src.gmsOf(id)) {
        // Shared regions belong to a peer domain too: their ownership
        // cannot move with this domain, so migration refuses them
        // (the OS must revoke sharing first).
        if (gms.shared)
            return "domain has shared GMS regions";
        GmsImage img;
        img.base = gms.base;
        img.size = gms.size;
        img.perm = gms.perm;
        img.label = gms.label;
        out.regions.push_back(img);

        // An uncorrectable error surfacing mid-stream (armed by name
        // only — it creates damage the source must then contain).
        if (FAULT_POINT_NAMED("ras.poison_migrate"))
            mem.poisonLine(gms.base + gms.size / 2);
        // The capture read consumes poison: streaming a poisoned
        // frame would launder the error into the destination's
        // attested image, so the checkpoint fails closed instead.
        if (mem.isPoisoned(gms.base, gms.size)) {
            return "machine check: poisoned page in GMS [" +
                   std::to_string(gms.base) + ", +" +
                   std::to_string(gms.size) + ")";
        }

        const uint64_t off = out.memory.size();
        out.memory.resize(off + gms.size);
        mem.readBytes(gms.base, out.memory.data() + off, gms.size);
    }

    const MonitorValue<MerkleHash> meas = src.measureDomain(id);
    if (!meas.ok)
        return "measurement failed: " + meas.error;
    out.measurement = meas.value;

    const MonitorValue<AttestationReport> report =
        src.attestDomain(id, nonce);
    if (!report.ok)
        return "source attestation failed: " + report.error;
    out.report = report.value;

    if (SmpSystem *smp = src.smp()) {
        for (unsigned h = 0; h < smp->numHarts(); ++h)
            out.harts.push_back(smp->extractHartContext(h));
    }
    return "";
}

std::vector<uint8_t>
serializeCheckpoint(const DomainCheckpoint &cp)
{
    ByteWriter w;
    w.u64(kMagic);
    w.u64(kVersion);
    w.u64(cp.sourceId);
    w.u64(cp.nonce);
    w.u64(cp.measurement);
    w.u64(cp.report.measurement);
    w.u64(cp.report.nonce);
    w.u64(cp.report.signature);
    w.u64(cp.traceId);
    w.u64(cp.traceSpan);

    w.u64(cp.regions.size());
    for (const GmsImage &r : cp.regions) {
        w.u64(r.base);
        w.u64(r.size);
        w.u8(uint8_t(r.perm.r) | uint8_t(r.perm.w) << 1 |
             uint8_t(r.perm.x) << 2);
        w.u8(uint8_t(r.label));
    }

    w.u64(cp.memory.size());
    if (!cp.memory.empty())
        w.bytes(cp.memory.data(), cp.memory.size());

    w.u64(cp.harts.size());
    for (const HartContext &ctx : cp.harts) {
        w.u8(ctx.translationOn);
        w.u64(ctx.satpRoot);
        w.u8(uint8_t(ctx.pagingMode));
        w.u8(uint8_t(ctx.priv));
        w.u8(ctx.virt);
        w.u64(ctx.vsatpRoot);
        w.u64(ctx.hgatpRoot);
        w.u8(uint8_t(ctx.guestPriv));
    }
    return w.take();
}

bool
deserializeCheckpoint(const std::vector<uint8_t> &bytes,
                      DomainCheckpoint &out)
{
    out = DomainCheckpoint{};
    ByteReader r(bytes);
    if (r.u64() != kMagic || r.u64() != kVersion)
        return false;
    out.sourceId = DomainId(r.u64());
    out.nonce = r.u64();
    out.measurement = r.u64();
    out.report.measurement = r.u64();
    out.report.nonce = r.u64();
    out.report.signature = r.u64();
    out.traceId = r.u64();
    out.traceSpan = r.u64();

    // Every length field is attacker-controlled input: bound it by
    // what the image could physically hold before allocating.
    const uint64_t nregions = r.u64();
    if (nregions > r.remaining() / kRegionRecordBytes)
        return false;
    uint64_t region_bytes = 0;
    for (uint64_t i = 0; i < nregions; ++i) {
        GmsImage img;
        img.base = r.u64();
        img.size = r.u64();
        const uint8_t perm = r.u8();
        img.perm = {bool(perm & 1), bool(perm & 2), bool(perm & 4)};
        img.label = GmsLabel(r.u8() & 1);
        region_bytes += img.size;
        out.regions.push_back(img);
    }

    const uint64_t memlen = r.u64();
    if (memlen > r.remaining() || memlen != region_bytes)
        return false;
    out.memory.resize(size_t(memlen));
    if (memlen)
        r.bytes(out.memory.data(), memlen);

    const uint64_t nharts = r.u64();
    if (nharts > r.remaining() / kHartRecordBytes)
        return false;
    for (uint64_t h = 0; h < nharts; ++h) {
        HartContext ctx;
        ctx.translationOn = r.u8();
        ctx.satpRoot = r.u64();
        ctx.pagingMode = PagingMode(r.u8() % 3);
        ctx.priv = PrivMode(r.u8() % 3);
        ctx.virt = r.u8();
        ctx.vsatpRoot = r.u64();
        ctx.hgatpRoot = r.u64();
        ctx.guestPriv = PrivMode(r.u8() % 3);
        out.harts.push_back(ctx);
    }
    return r.ok() && r.remaining() == 0;
}

} // namespace hpmp
