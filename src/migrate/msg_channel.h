/**
 * @file
 * Lossy, corruption- and duplication-capable message channel between
 * a migration source and destination (DESIGN.md §12).
 *
 * The channel models the unreliable transport a real live-migration
 * stream rides on: frames can be dropped, delivered twice, or arrive
 * bit-flipped. Every hazard is a named FAULT_POINT, so chaos
 * campaigns inject them under the same deterministic plans as the
 * monitor's fault sites:
 *
 *  - migrate.frame_drop    — the frame never enters the queue;
 *  - migrate.frame_dup     — the frame is enqueued twice;
 *  - migrate.frame_corrupt — one payload bit is flipped in flight.
 *
 * Integrity is end-to-end: each frame carries an FNV-1a checksum over
 * (seq, totalFrames, payload), and receivers must discard frames that
 * fail MsgChannel::valid() — a corrupted frame is indistinguishable
 * from a dropped one and gets retried by the sender's bounded-retry
 * loop, never re-assembled into the checkpoint image.
 */

#ifndef HPMP_MIGRATE_MSG_CHANNEL_H
#define HPMP_MIGRATE_MSG_CHANNEL_H

#include <cstdint>
#include <deque>
#include <vector>

namespace hpmp
{

/** One transport frame of a serialized checkpoint stream. */
struct MsgFrame
{
    uint64_t seq = 0;         //!< frame index within the stream
    uint64_t totalFrames = 0; //!< stream length (same in every frame)
    uint64_t checksum = 0;    //!< FNV-1a over (seq, totalFrames, payload)
    std::vector<uint8_t> payload;
};

class MsgChannel
{
  public:
    /**
     * Transmit one frame, applying the injected transport hazards.
     * The caller fills seq/totalFrames/payload; the channel stamps
     * the checksum *before* corruption, so a flipped bit is caught by
     * valid() on the receive side.
     */
    void send(const MsgFrame &frame);

    /** Pop the next delivered frame. @return false when idle. */
    bool recv(MsgFrame &out);

    /** Drop anything still queued (between migrations). */
    void clearQueue() { queue_.clear(); }

    /** End-to-end integrity check a receiver must apply. */
    static bool valid(const MsgFrame &frame);

    /** Checksum over (seq, totalFrames, payload). */
    static uint64_t checksumOf(const MsgFrame &frame);

    uint64_t framesSent() const { return framesSent_; }
    uint64_t framesDropped() const { return framesDropped_; }
    uint64_t framesDuplicated() const { return framesDuplicated_; }
    uint64_t framesCorrupted() const { return framesCorrupted_; }

  private:
    std::deque<MsgFrame> queue_;
    uint64_t framesSent_ = 0;
    uint64_t framesDropped_ = 0;
    uint64_t framesDuplicated_ = 0;
    uint64_t framesCorrupted_ = 0;
};

} // namespace hpmp

#endif // HPMP_MIGRATE_MSG_CHANNEL_H
