/**
 * @file
 * Lossy, corruption- and duplication-capable message channel between
 * a migration source and destination (DESIGN.md §12).
 *
 * The channel models the unreliable transport a real live-migration
 * stream rides on: frames can be dropped, delivered twice, or arrive
 * bit-flipped. Every hazard is a named FAULT_POINT, so chaos
 * campaigns inject them under the same deterministic plans as the
 * monitor's fault sites:
 *
 *  - migrate.frame_drop    — the frame never enters the queue;
 *  - migrate.frame_dup     — the frame is enqueued twice;
 *  - migrate.frame_corrupt — one payload bit is flipped in flight.
 *
 * Integrity is end-to-end: each frame carries an FNV-1a checksum over
 * (seq, totalFrames, payload), and receivers must discard frames that
 * fail MsgChannel::valid() — a corrupted frame is indistinguishable
 * from a dropped one and gets retried by the sender's bounded-retry
 * loop, never re-assembled into the checkpoint image.
 */

#ifndef HPMP_MIGRATE_MSG_CHANNEL_H
#define HPMP_MIGRATE_MSG_CHANNEL_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace hpmp
{

/** One transport frame of a serialized checkpoint stream. */
struct MsgFrame
{
    uint64_t seq = 0;         //!< frame index within the stream
    uint64_t totalFrames = 0; //!< stream length (same in every frame)
    uint64_t checksum = 0;    //!< FNV-1a over (seq, totalFrames, payload)
    std::vector<uint8_t> payload;
};

/**
 * Bounded-memory receive-side sequence dedup.
 *
 * A receiver that remembers every sequence number it ever saw needs
 * O(stream length) state — on a monitor-resident endpoint that is an
 * allocation an untrusted peer controls by inflating totalFrames.
 * SeqWindow caps the dedup state at a fixed sliding window: a ring of
 * `capacity` bits starting at the lowest not-yet-accepted sequence.
 * Frames below the window are duplicates by construction (the window
 * only slides over accepted frames); frames at or above base+capacity
 * are rejected outright — the sender's bounded-retry loop keeps the
 * in-flight span narrow, so a beyond-window frame is either hostile
 * or wildly reordered, and dropping it is the fail-closed answer.
 */
class SeqWindow
{
  public:
    enum class Verdict : uint8_t
    {
        Accept,       //!< first sight; recorded
        Duplicate,    //!< already accepted (in or below the window)
        BeyondWindow, //!< >= base+capacity; rejected, not recorded
    };

    explicit SeqWindow(uint64_t capacity = 64)
        : capacity_(capacity ? capacity : 1),
          bits_(size_t(capacity ? capacity : 1), false)
    {
    }

    /** Classify one arriving sequence number, recording an Accept. */
    Verdict
    accept(uint64_t seq)
    {
        if (seq < base_)
            return Verdict::Duplicate;
        if (seq >= base_ + capacity_)
            return Verdict::BeyondWindow;
        const size_t slot = size_t(seq % capacity_);
        if (bits_[slot])
            return Verdict::Duplicate;
        bits_[slot] = true;
        // Slide over the contiguous accepted prefix, freeing slots.
        while (bits_[size_t(base_ % capacity_)]) {
            bits_[size_t(base_ % capacity_)] = false;
            ++base_;
        }
        return Verdict::Accept;
    }

    /** Accepted already? (Below-window sequences count as seen.) */
    bool
    seen(uint64_t seq) const
    {
        if (seq < base_)
            return true;
        if (seq >= base_ + capacity_)
            return false;
        return bits_[size_t(seq % capacity_)];
    }

    /** Lowest sequence number not yet accepted. */
    uint64_t base() const { return base_; }
    uint64_t capacity() const { return capacity_; }

    void
    reset()
    {
        base_ = 0;
        bits_.assign(bits_.size(), false);
    }

  private:
    uint64_t base_ = 0;
    uint64_t capacity_;
    std::vector<bool> bits_; //!< ring over [base, base+capacity)
};

class MsgChannel
{
  public:
    /**
     * Transmit one frame, applying the injected transport hazards.
     * The caller fills seq/totalFrames/payload; the channel stamps
     * the checksum *before* corruption, so a flipped bit is caught by
     * valid() on the receive side.
     */
    void send(const MsgFrame &frame);

    /** Pop the next delivered frame. @return false when idle. */
    bool recv(MsgFrame &out);

    /** Drop anything still queued (between migrations). */
    void clearQueue() { queue_.clear(); }

    /** End-to-end integrity check a receiver must apply. */
    static bool valid(const MsgFrame &frame);

    /** Checksum over (seq, totalFrames, payload). */
    static uint64_t checksumOf(const MsgFrame &frame);

    uint64_t framesSent() const { return framesSent_; }
    uint64_t framesDropped() const { return framesDropped_; }
    uint64_t framesDuplicated() const { return framesDuplicated_; }
    uint64_t framesCorrupted() const { return framesCorrupted_; }

  private:
    std::deque<MsgFrame> queue_;
    uint64_t framesSent_ = 0;
    uint64_t framesDropped_ = 0;
    uint64_t framesDuplicated_ = 0;
    uint64_t framesCorrupted_ = 0;
};

} // namespace hpmp

#endif // HPMP_MIGRATE_MSG_CHANNEL_H
