/**
 * @file
 * Flat byte-stream serialization for migration checkpoints.
 *
 * A checkpoint travels between hosts as one length-prefixed byte
 * image chopped into MsgChannel frames, so the encoding must be
 * position-independent and fully bounds-checked on the way back in:
 * the receiving monitor treats the stream as untrusted input (frames
 * can be truncated, reordered or bit-flipped in flight) and a
 * malformed image must produce a typed decode failure, never an
 * out-of-bounds read.
 */

#ifndef HPMP_MIGRATE_SERIALIZE_H
#define HPMP_MIGRATE_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace hpmp
{

/** Append-only little-endian byte-stream builder. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u64(uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            buf_.push_back(uint8_t(v >> (8 * i)));
    }

    void
    bytes(const void *data, uint64_t len)
    {
        const uint8_t *p = static_cast<const uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

    const std::vector<uint8_t> &buffer() const { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }
    uint64_t size() const { return buf_.size(); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked reader over a received byte image. Any overrun sets
 * the sticky !ok() flag and yields zeros from then on, so decoders
 * can parse straight through and check ok() once at the end.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, uint64_t len) : data_(data), len_(len) {}

    explicit ByteReader(const std::vector<uint8_t> &buf)
        : data_(buf.data()), len_(buf.size())
    {}

    uint8_t
    u8()
    {
        if (off_ + 1 > len_) {
            ok_ = false;
            return 0;
        }
        return data_[off_++];
    }

    uint64_t
    u64()
    {
        if (off_ + 8 > len_) {
            ok_ = false;
            return 0;
        }
        uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= uint64_t(data_[off_ + i]) << (8 * i);
        off_ += 8;
        return v;
    }

    bool
    bytes(void *out, uint64_t len)
    {
        if (off_ + len > len_ || off_ + len < off_) {
            ok_ = false;
            std::memset(out, 0, size_t(len));
            return false;
        }
        std::memcpy(out, data_ + off_, size_t(len));
        off_ += len;
        return true;
    }

    bool ok() const { return ok_; }
    uint64_t remaining() const { return len_ - off_; }

  private:
    const uint8_t *data_;
    uint64_t len_;
    uint64_t off_ = 0;
    bool ok_ = true;
};

} // namespace hpmp

#endif // HPMP_MIGRATE_SERIALIZE_H
