#include "migrate/msg_channel.h"

#include "base/fault_inject.h"

namespace hpmp
{

namespace
{

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t
fnvFold(uint64_t h, uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

uint64_t
MsgChannel::checksumOf(const MsgFrame &frame)
{
    uint64_t h = kFnvOffset;
    h = fnvFold(h, frame.seq);
    h = fnvFold(h, frame.totalFrames);
    for (uint8_t b : frame.payload) {
        h ^= b;
        h *= kFnvPrime;
    }
    return h;
}

bool
MsgChannel::valid(const MsgFrame &frame)
{
    return frame.checksum == checksumOf(frame);
}

void
MsgChannel::send(const MsgFrame &frame)
{
    ++framesSent_;
    if (FAULT_POINT("migrate.frame_drop")) {
        ++framesDropped_;
        return;
    }

    MsgFrame f = frame;
    f.checksum = checksumOf(f);
    if (FAULT_POINT("migrate.frame_corrupt")) {
        ++framesCorrupted_;
        // Deterministic in-flight bit flip; the stamped checksum no
        // longer matches, so valid() rejects the frame on receive.
        if (!f.payload.empty())
            f.payload[size_t(f.seq % f.payload.size())] ^= 0x10;
        else
            f.checksum ^= 1;
    }
    queue_.push_back(f);
    if (FAULT_POINT("migrate.frame_dup")) {
        ++framesDuplicated_;
        queue_.push_back(f);
    }
}

bool
MsgChannel::recv(MsgFrame &out)
{
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

} // namespace hpmp
