/**
 * @file
 * Migration chaos campaign (chaos_fuzz --migrate).
 *
 * Two hosts, one migration engine per direction, and a seeded stream
 * of domain ping-pong migrations with faults armed at random sites —
 * including the migrate.* protocol sites (torn checkpoint, frame
 * drop/dup/corrupt, lost ack, destination attest failure, crash
 * during commit). Audited after every operation:
 *
 *  - aborted migrations leave the source stateDigest bit-identical
 *    to the pre-migration baseline and the domain grantable again;
 *  - committed migrations leave the domain on exactly one host, its
 *    memory pattern intact, and the retired source id a typed denial
 *    (NoSuchDomain/StaleHandle) on every monitor call;
 *  - stranded commits (COMMIT lost for good) leave the domain staged
 *    on the destination — suspended, grantable nowhere;
 *  - the cross-system oracle observed no dual-grant window at any
 *    protocol step.
 */

#ifndef HPMP_MIGRATE_MIGRATE_CHAOS_H
#define HPMP_MIGRATE_MIGRATE_CHAOS_H

#include "monitor/chaos_engine.h"

namespace hpmp
{

/**
 * Run one migration chaos campaign. Deterministic in (config.seed,
 * config.harts); requires config.migrateLayer and none of the other
 * layer flags.
 */
ChaosStats runMigrateChaos(const ChaosConfig &config);

} // namespace hpmp

#endif // HPMP_MIGRATE_MIGRATE_CHAOS_H
