/**
 * @file
 * O(1) sharded domain registry with generation-tagged id recycling.
 *
 * Fleet-scale serving churns thousands of domains through the monitor
 * (create/attest/switch/destroy under Zipf traffic), which breaks the
 * original std::map registry twice over: every lookup costs O(log N)
 * pointer chases, and a destroyed domain's id — handed back to the
 * untrusted OS — could be re-issued and silently alias a different
 * tenant's attestation and memory state.
 *
 * A DomainId is therefore split into a 20-bit slot index and a 12-bit
 * generation tag. Fresh allocations carry generation 0, so the ids the
 * OS sees (0, 1, 2, ...) are numerically identical to the sequential
 * scheme until recycling kicks in. Destroying a domain parks its index
 * on a per-shard free list; the next create pops it and bumps the
 * generation, so the *old* handle's tag no longer matches and every
 * lookup with it is denied (counted in registry_stale_denied) instead
 * of aliased. An index whose generation would wrap is retired rather
 * than reused — aliasing is never traded for capacity.
 *
 * Lookups are a single shard/position computation plus one generation
 * compare: exactly one probe per lookup, independent of the live-domain
 * count. The registry_probes / registry_lookups counters let tests
 * assert that claim at 10k domains instead of trusting it.
 */

#ifndef HPMP_MONITOR_DOMAIN_REGISTRY_H
#define HPMP_MONITOR_DOMAIN_REGISTRY_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "base/stats.h"

namespace hpmp
{

/** Identifier of an isolation domain (0 = the host). */
using DomainId = uint32_t;

namespace domain_id
{

constexpr unsigned kIndexBits = 20;
constexpr unsigned kGenerationBits = 12;
constexpr uint32_t kIndexMask = (1u << kIndexBits) - 1;
constexpr uint32_t kGenerationMask = (1u << kGenerationBits) - 1;

constexpr uint32_t index(DomainId id) { return id & kIndexMask; }
constexpr uint32_t generation(DomainId id) { return id >> kIndexBits; }

constexpr DomainId
make(uint32_t idx, uint32_t gen)
{
    return DomainId(idx | (gen << kIndexBits));
}

} // namespace domain_id

/**
 * Sharded slot-map keyed by DomainId. All operations are O(1) in the
 * number of live domains; iteration (forEach/ids) is O(slots) and
 * reserved for checkers, digests and stats paths.
 */
template <typename T>
class DomainRegistry
{
  public:
    static constexpr unsigned kShards = 16;

    /**
     * Allocate a slot and return its id. Prefers recycling a freed
     * index (bumping its generation); falls back to extending the
     * index space. The free-list scan is bounded by kShards, so this
     * is O(1) too.
     */
    DomainId
    create()
    {
        ++statCreates_;
        for (unsigned s = 0; s < kShards; ++s) {
            Shard &shard = shards_[s];
            if (shard.freeList.empty())
                continue;
            const uint32_t idx = shard.freeList.back();
            shard.freeList.pop_back();
            Slot &slot = shard.slots[idx / kShards];
            panic_if(slot.alive, "recycling a live domain slot %u", idx);
            ++slot.generation;
            slot.alive = true;
            slot.value = T{};
            ++liveCount_;
            ++statRecycles_;
            return domain_id::make(idx, slot.generation);
        }
        const uint32_t idx = nextIndex_++;
        panic_if(idx > domain_id::kIndexMask,
                 "domain index space exhausted");
        Shard &shard = shards_[idx % kShards];
        const size_t pos = idx / kShards;
        if (shard.slots.size() <= pos)
            shard.slots.resize(pos + 1);
        Slot &slot = shard.slots[pos];
        slot.generation = 0;
        slot.alive = true;
        slot.value = T{};
        ++liveCount_;
        return domain_id::make(idx, 0);
    }

    /**
     * The value for `id`, or nullptr when the id is unknown, destroyed
     * or stale (generation mismatch after the index was recycled).
     * Exactly one slot probe per call — the O(1) contract the
     * registry_probes counter certifies.
     */
    T *
    find(DomainId id)
    {
        return const_cast<T *>(
            const_cast<const DomainRegistry *>(this)->find(id));
    }

    const T *
    find(DomainId id) const
    {
        ++statLookups_;
        ++statProbes_;
        const Slot *slot = slotFor(domain_id::index(id));
        if (!slot || !slot->alive ||
            slot->generation != domain_id::generation(id)) {
            if (slot && domain_id::generation(id) < slot->generation)
                ++statStaleDenied_;
            return nullptr;
        }
        return &slot->value;
    }

    /**
     * True when `id` refers to an older incarnation of a recycled
     * index: the handle must be denied as *stale*, distinct from a
     * plain unknown/destroyed id. Does not count as a lookup.
     */
    bool
    stale(DomainId id) const
    {
        const Slot *slot = slotFor(domain_id::index(id));
        return slot && domain_id::generation(id) < slot->generation;
    }

    /**
     * Free the live slot behind `id` and return its value (the caller
     * stashes it for transactional rollback). The generation bump is
     * deferred to the recycling create() so a destroyed-but-never-
     * recycled id still reads as plain NoSuchDomain, not stale.
     */
    T
    erase(DomainId id)
    {
        Slot *slot = slotForMut(domain_id::index(id));
        panic_if(!slot || !slot->alive ||
                     slot->generation != domain_id::generation(id),
                 "erase of unknown domain %u", id);
        slot->alive = false;
        --liveCount_;
        // Retire the index once the tag space is spent: reusing it
        // would wrap the generation back onto a live historic handle.
        if (slot->generation < domain_id::kGenerationMask) {
            shards_[domain_id::index(id) % kShards].freeList.push_back(
                domain_id::index(id));
        }
        T out = std::move(slot->value);
        slot->value = T{};
        return out;
    }

    /** Undo an erase() from the same transaction (rollback path). */
    void
    restoreErased(DomainId id, T &&value)
    {
        const uint32_t idx = domain_id::index(id);
        Slot *slot = slotForMut(idx);
        panic_if(!slot || slot->alive ||
                     slot->generation != domain_id::generation(id),
                 "restoreErased of an unexpected slot %u", id);
        slot->alive = true;
        slot->value = std::move(value);
        ++liveCount_;
        auto &fl = shards_[idx % kShards].freeList;
        fl.erase(std::remove(fl.begin(), fl.end(), idx), fl.end());
    }

    size_t live() const { return liveCount_; }

    /** High-water index, the analogue of the old sequential counter. */
    uint32_t nextIndex() const { return nextIndex_; }

    /** Visit live slots in index order (deterministic across harts). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (uint32_t idx = 0; idx < nextIndex_; ++idx) {
            Slot &slot = shards_[idx % kShards].slots[idx / kShards];
            if (slot.alive)
                fn(domain_id::make(idx, slot.generation), slot.value);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (uint32_t idx = 0; idx < nextIndex_; ++idx) {
            const Slot &slot = shards_[idx % kShards].slots[idx / kShards];
            if (slot.alive)
                fn(domain_id::make(idx, slot.generation), slot.value);
        }
    }

    /** Ids of all live slots, ascending numerically. */
    std::vector<DomainId>
    ids() const
    {
        std::vector<DomainId> out;
        out.reserve(liveCount_);
        forEach([&out](DomainId id, const T &) { out.push_back(id); });
        std::sort(out.begin(), out.end());
        return out;
    }

    uint64_t lookups() const { return statLookups_.value(); }
    uint64_t probes() const { return statProbes_.value(); }
    uint64_t staleDenied() const { return statStaleDenied_.value(); }
    uint64_t recycles() const { return statRecycles_.value(); }

    /** Attach the registry_* counters to the owner's stat group. */
    void
    registerStats(StatGroup &group)
    {
        group.add("registry_lookups", &statLookups_);
        group.add("registry_probes", &statProbes_);
        group.add("registry_creates", &statCreates_);
        group.add("registry_recycles", &statRecycles_);
        group.add("registry_stale_denied", &statStaleDenied_);
    }

  private:
    struct Slot
    {
        uint32_t generation = 0;
        bool alive = false;
        T value{};
    };

    struct Shard
    {
        std::vector<Slot> slots;
        std::vector<uint32_t> freeList;
    };

    const Slot *
    slotFor(uint32_t idx) const
    {
        if (idx >= nextIndex_)
            return nullptr;
        return &shards_[idx % kShards].slots[idx / kShards];
    }

    Slot *
    slotForMut(uint32_t idx)
    {
        return const_cast<Slot *>(slotFor(idx));
    }

    Shard shards_[kShards];
    uint32_t nextIndex_ = 0;
    size_t liveCount_ = 0;

    mutable Counter statLookups_;
    mutable Counter statProbes_;
    mutable Counter statStaleDenied_;
    Counter statCreates_;
    Counter statRecycles_;
};

} // namespace hpmp

#endif // HPMP_MONITOR_DOMAIN_REGISTRY_H
