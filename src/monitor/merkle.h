/**
 * @file
 * Mountable Merkle Tree (MMT) — Penglai's scalable memory-integrity
 * structure (paper Fig. 7; Penglai OSDI'21 §5).
 *
 * A binary hash tree over the 4 KiB pages of a protected region. The
 * "mountable" property bounds the monitor's in-memory state: subtrees
 * can be *unmounted* (their interior nodes dropped, keeping only the
 * subtree root hash) and re-mounted later, re-verifying against the
 * retained root. The secure monitor uses it to measure enclave memory
 * at creation and to detect physical tampering.
 *
 * Hashing is FNV-1a-based (not cryptographically strong — this is a
 * simulator; the structure and update/verify costs are the point).
 */

#ifndef HPMP_MONITOR_MERKLE_H
#define HPMP_MONITOR_MERKLE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/phys_mem.h"

namespace hpmp
{

/** 64-bit node hash. */
using MerkleHash = uint64_t;

/** Hash a raw byte buffer (FNV-1a, seeded). */
MerkleHash merkleHashBytes(const void *data, size_t len,
                           MerkleHash seed = 0xcbf29ce484222325ULL);

/** Merkle tree over a contiguous physical region. */
class MerkleTree
{
  public:
    /**
     * Build the tree over [base, base+size) (page-aligned). Hashes
     * every page; the number of pages is rounded up to a power of
     * two with implicit zero leaves.
     */
    MerkleTree(const PhysMem &mem, Addr base, uint64_t size);

    MerkleHash rootHash() const { return node(1); }

    Addr base() const { return base_; }
    uint64_t size() const { return size_; }

    /**
     * Verify that the page containing pa still matches the tree.
     * @return false if the page content (or a needed interior node)
     * diverges, or if its subtree is unmounted.
     */
    bool verifyPage(Addr pa) const;

    /** Recompute the path for a legitimately modified page. */
    void updatePage(Addr pa);

    /**
     * Unmount the subtree of height `levels` above the page: interior
     * nodes below the retained ancestor are dropped. Verification
     * inside an unmounted subtree fails until remounted.
     */
    void unmountSubtree(Addr pa, unsigned levels);

    /**
     * Re-mount: rebuild the subtree from memory and check it against
     * the retained ancestor hash. @return false (and stays unmounted)
     * if the content was tampered with while unmounted.
     */
    bool remountSubtree(Addr pa, unsigned levels);

    /** Number of resident (mounted) nodes — the monitor's footprint. */
    size_t residentNodes() const { return nodes_.size(); }

    /** Pages covered (power-of-two padded). */
    uint64_t leafCount() const { return leaves_; }

  private:
    MerkleHash hashPage(uint64_t leaf_index) const;
    MerkleHash node(uint64_t index) const;
    bool mounted(uint64_t index) const { return nodes_.count(index); }
    uint64_t leafNode(Addr pa) const;

    const PhysMem &mem_;
    Addr base_;
    uint64_t size_;
    uint64_t leaves_; //!< power-of-two leaf count
    /** Heap-style node store: 1 = root, children of i at 2i, 2i+1. */
    std::unordered_map<uint64_t, MerkleHash> nodes_;
};

} // namespace hpmp

#endif // HPMP_MONITOR_MERKLE_H
