/**
 * @file
 * Enclave measurement and attestation (paper Fig. 7: "Enclave
 * Management"; Penglai's secure-boot / attestation chain).
 *
 * The monitor measures a domain's memory with Merkle-tree roots and
 * signs (measurement, nonce) with its device key. Symmetric
 * "signatures" stand in for the asymmetric crypto of a real chain —
 * the protocol shape and the measured-content semantics are what the
 * simulator reproduces.
 */

#ifndef HPMP_MONITOR_ATTESTATION_H
#define HPMP_MONITOR_ATTESTATION_H

#include "monitor/merkle.h"

namespace hpmp
{

/** A signed attestation statement. */
struct AttestationReport
{
    MerkleHash measurement = 0;
    uint64_t nonce = 0;
    uint64_t signature = 0;
};

/** Monitor-held signing identity. */
class Attestor
{
  public:
    explicit Attestor(uint64_t device_key) : key_(device_key) {}

    /** Measure a physical region (Merkle root of its pages). */
    static MerkleHash
    measure(const PhysMem &mem, Addr base, uint64_t size)
    {
        return MerkleTree(mem, base, size).rootHash();
    }

    /** Fold two measurements (multi-region domains). */
    static MerkleHash
    fold(MerkleHash a, MerkleHash b)
    {
        MerkleHash pair[2] = {a, b};
        return merkleHashBytes(pair, sizeof(pair));
    }

    /** Produce a signed report over (measurement, nonce). */
    AttestationReport
    sign(MerkleHash measurement, uint64_t nonce) const
    {
        AttestationReport report;
        report.measurement = measurement;
        report.nonce = nonce;
        report.signature = mac(measurement, nonce);
        return report;
    }

    /** Verify a report's signature and freshness. */
    bool
    verify(const AttestationReport &report, uint64_t expected_nonce) const
    {
        return report.nonce == expected_nonce &&
               report.signature == mac(report.measurement, report.nonce);
    }

  private:
    uint64_t
    mac(MerkleHash measurement, uint64_t nonce) const
    {
        uint64_t buf[3] = {key_, measurement, nonce};
        return merkleHashBytes(buf, sizeof(buf));
    }

    uint64_t key_;
};

} // namespace hpmp

#endif // HPMP_MONITOR_ATTESTATION_H
