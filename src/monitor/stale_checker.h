/**
 * @file
 * Interleaving-driven stale-translation checker (DESIGN.md §9).
 *
 * The bug class this hunts: after a monitor call changes the
 * permission layout, every hart that has not yet taken the
 * remote-fence IPI keeps serving translations from its own cached
 * state — its HPMP register file and, worse, permissions inlined into
 * TLB entries at fill time. Inside the shootdown window such stale
 * grants are an accepted, *bounded* architectural cost (the paper's
 * fence protocol closes the window); after a hart acked its IPI, or
 * after the window closed, a single stale grant is a security hole.
 *
 * StaleChecker plugs into SmpSystem's InterleaveHook so it runs at
 * every step of the IPI protocol — exactly the points where a real
 * scheduler could interleave victim-hart accesses. At each step it
 * drives the watched accesses on the other harts, at two levels:
 *
 *  - register level: HpmpUnit::probe on the hart's own register file
 *    (side-effect free) — catches unsynchronized registers;
 *  - access level: a real Machine::access through the hart's TLB —
 *    catches stale inlined permissions the register check cannot see.
 *
 * Verdicts against the canonical (monitor-programmed) state:
 *
 *  - unacked hart grants what the new state denies → counted as a
 *    pre-ack stale hit (bounded by probes × watches, never a failure);
 *  - acked hart (or any hart after WindowEnd / at quiescence) grants
 *    what the canonical state denies → hard failure;
 *  - fail-closed mismatches (spurious denials) never fail mid-window.
 *
 * At WindowEnd the oracle is *recomputed* from the canonical state
 * rather than replayed from the WindowBegin capture: a call that
 * aborted mid-shootdown rolls every hart back and re-fences it, so the
 * post-window contract is "all harts match canonical now", whatever
 * "now" is — committed or restored.
 *
 * All probes run under FaultInjector::SuspendGuard so the checker's
 * own instrumentation neither trips fault sites nor consumes hits from
 * the campaign's injection plan.
 */

#ifndef HPMP_MONITOR_STALE_CHECKER_H
#define HPMP_MONITOR_STALE_CHECKER_H

#include <string>
#include <vector>

#include "base/stats.h"
#include "core/smp.h"
#include "monitor/secure_monitor.h"

namespace hpmp
{

/**
 * One access the checker replays on a victim hart at every protocol
 * step. `va` is the address driven through Machine::access on that
 * hart (equal to `pa` for bare-mode harts); `pa` is the physical page
 * the canonical permission oracle is evaluated at.
 */
struct StaleWatch
{
    unsigned hart = 0;
    Addr va = 0;
    Addr pa = 0;
    AccessType type = AccessType::Load;
    /**
     * Also drive the access through the hart's TLB (catches stale
     * inlined permissions). Register-level probing always runs. Turn
     * off for watches whose access-path side effects (TLB/cache fills)
     * would perturb a measurement the campaign cares about.
     */
    bool accessPath = true;
};

class StaleChecker : public InterleaveHook
{
  public:
    StaleChecker(SmpSystem &smp, SecureMonitor &monitor);

    void addWatch(const StaleWatch &watch) { watches_.push_back(watch); }
    void clearWatches() { watches_.clear(); }
    size_t watchCount() const { return watches_.size(); }

    /** InterleaveHook: called at every IPI protocol step. */
    void onIpiStep(const IpiEvent &event) override;

    /**
     * Full-strictness check outside any shootdown window (call after
     * every campaign op): every hart must agree with the canonical
     * state on every watch, in both directions.
     * @return true iff no violation was found.
     */
    bool checkQuiescent();

    /** True once any hard violation was recorded (sticky). */
    bool failed() const { return failed_; }
    /** Human-readable description of the *first* violation. */
    const std::string &failure() const { return failure_; }

    uint64_t preAckStaleHits() const { return preAckStaleHits_.value(); }
    uint64_t postAckViolations() const
    {
        return postAckViolations_.value();
    }
    uint64_t probesRun() const { return statProbes_.value(); }
    uint64_t windowsSeen() const { return statWindows_.value(); }

    /** "stale_checker" group: probes, hits, violations, windows. */
    StatGroup &stats() { return stats_; }
    void registerStats(StatRegistry &registry) { registry.add(&stats_); }

  private:
    /** Access-level probe verdict. */
    enum class AccessVerdict : uint8_t
    {
        Grant,     //!< access completed fault-free
        Deny,      //!< HPMP/PMP access fault (fail closed)
        PageFault, //!< translation failure: watch unusable this probe
        Skipped,   //!< accessPath disabled for this watch
    };

    struct ProbeResult
    {
        bool regGrant = false;
        AccessVerdict access = AccessVerdict::Skipped;
    };

    /** What the monitor's canonical register file says right now. */
    bool canonicalAllows(const StaleWatch &watch) const;

    /** Drive one watch on its hart (fault injection suspended). */
    ProbeResult probeWatch(const StaleWatch &watch);

    /**
     * Probe every watch and judge it. `strict` additionally fails
     * fenced-hart mismatches in the deny direction (post-window and
     * quiescent checks); mid-window only stale *grants* can fail.
     */
    void sweep(bool strict, const char *where, uint64_t seq);

    /** True iff the hart is past its ack (or initiated the window). */
    bool fenced(unsigned hart) const;

    void recordViolation(const StaleWatch &watch, const char *level,
                         const char *direction, const char *where,
                         uint64_t seq);

    SmpSystem &smp_;
    SecureMonitor &monitor_;
    std::vector<StaleWatch> watches_;

    bool windowOpen_ = false;
    unsigned windowInitiator_ = 0;
    std::vector<bool> acked_;
    /** Canonical verdict per watch, captured at WindowBegin. */
    std::vector<bool> oracle_;

    bool failed_ = false;
    std::string failure_;

    StatGroup stats_{"stale_checker"};
    Counter statProbes_;       //!< watch probes driven (both levels)
    Counter statWindows_;      //!< shootdown windows observed
    Counter preAckStaleHits_;  //!< stale grants on not-yet-acked harts
    Counter postAckViolations_; //!< hard failures (acked / post-window)
    Counter statStaleDenies_;  //!< fail-closed mismatches (never fatal)
    Counter statPageFaultSkips_; //!< access probes voided by page faults
    Counter statQuiescentChecks_;
};

} // namespace hpmp

#endif // HPMP_MONITOR_STALE_CHECKER_H
