/**
 * @file
 * Interleaving-driven stale-translation checker (DESIGN.md §9).
 *
 * The bug class this hunts: after a monitor call changes the
 * permission layout, every hart that has not yet taken the
 * remote-fence IPI keeps serving translations from its own cached
 * state — its HPMP register file and, worse, permissions inlined into
 * TLB entries at fill time. Inside the shootdown window such stale
 * grants are an accepted, *bounded* architectural cost (the paper's
 * fence protocol closes the window); after a hart acked its IPI, or
 * after the window closed, a single stale grant is a security hole.
 *
 * StaleChecker plugs into SmpSystem's InterleaveHook so it runs at
 * every step of the IPI protocol — exactly the points where a real
 * scheduler could interleave victim-hart accesses. At each step it
 * drives the watched accesses on the other harts, at two levels:
 *
 *  - register level: HpmpUnit::probe on the hart's own register file
 *    (side-effect free) — catches unsynchronized registers;
 *  - access level: a real Machine::access through the hart's TLB —
 *    catches stale inlined permissions the register check cannot see.
 *
 * Verdicts against the canonical (monitor-programmed) state:
 *
 *  - unacked hart grants what the new state denies → counted as a
 *    pre-ack stale hit (bounded by probes × watches, never a failure);
 *  - acked hart (or any hart after WindowEnd / at quiescence) grants
 *    what the canonical state denies → hard failure;
 *  - fail-closed mismatches (spurious denials) never fail mid-window.
 *
 * At WindowEnd the oracle is *recomputed* from the canonical state
 * rather than replayed from the WindowBegin capture: a call that
 * aborted mid-shootdown rolls every hart back and re-fences it, so the
 * post-window contract is "all harts match canonical now", whatever
 * "now" is — committed or restored.
 *
 * All probes run under FaultInjector::SuspendGuard so the checker's
 * own instrumentation neither trips fault sites nor consumes hits from
 * the campaign's injection plan.
 */

#ifndef HPMP_MONITOR_STALE_CHECKER_H
#define HPMP_MONITOR_STALE_CHECKER_H

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/stats.h"
#include "core/smp.h"
#include "monitor/secure_monitor.h"
#include "pt/two_stage.h"

namespace hpmp
{

/**
 * One access the checker replays on a victim hart at every protocol
 * step. `va` is the address driven through Machine::access on that
 * hart (equal to `pa` for bare-mode harts); `pa` is the physical page
 * the canonical permission oracle is evaluated at.
 */
struct StaleWatch
{
    unsigned hart = 0;
    Addr va = 0;
    Addr pa = 0;
    AccessType type = AccessType::Load;
    /**
     * Also drive the access through the hart's TLB (catches stale
     * inlined permissions). Register-level probing always runs. Turn
     * off for watches whose access-path side effects (TLB/cache fills)
     * would perturb a measurement the campaign cares about.
     */
    bool accessPath = true;
};

/**
 * One guest access replayed on a victim hart's VirtMachine at every
 * protocol step (the two-stage oracle). The canonical expectation is
 * evaluated stage by stage: the committed VS-stage permission for
 * (hart, gva), the committed G-stage permission for (hart, gpa), and
 * the canonical physical permission probed at spa. A stale grant is
 * attributed to the first stage that should have denied it.
 */
struct VirtStaleWatch
{
    unsigned hart = 0;
    Addr gva = 0; //!< driven through VirtMachine::access on that hart
    Addr gpa = 0; //!< committed G-stage oracle page
    Addr spa = 0; //!< canonical physical oracle address
    AccessType type = AccessType::Load;
};

class StaleChecker : public InterleaveHook
{
  public:
    StaleChecker(SmpSystem &smp, SecureMonitor &monitor);

    void addWatch(const StaleWatch &watch) { watches_.push_back(watch); }
    void clearWatches() { watches_.clear(); }
    size_t watchCount() const { return watches_.size(); }

    /** Two-stage oracle watches (virt-enabled systems only). */
    void addVirtWatch(const VirtStaleWatch &watch)
    {
        virtWatches_.push_back(watch);
    }
    void clearVirtWatches() { virtWatches_.clear(); }
    size_t virtWatchCount() const { return virtWatches_.size(); }

    /**
     * Commit the expected VS-stage leaf permission for (hart, gva
     * page). Campaigns call this *before* the fencing vsatp write, the
     * same way the monitor commits canonical state before fencing.
     */
    void setGuestPerm(unsigned hart, Addr gva, Perm perm);

    /** Commit the expected G-stage leaf permission for (hart, gpa page). */
    void setGpaPerm(unsigned hart, Addr gpa, Perm perm);

    /** InterleaveHook: called at every IPI protocol step. */
    void onIpiStep(const IpiEvent &event) override;

    /**
     * Full-strictness check outside any shootdown window (call after
     * every campaign op): every hart must agree with the canonical
     * state on every watch, in both directions.
     * @return true iff no violation was found.
     */
    bool checkQuiescent();

    /** True once any hard violation was recorded (sticky). */
    bool failed() const { return failed_; }
    /** Human-readable description of the *first* violation. */
    const std::string &failure() const { return failure_; }

    uint64_t preAckStaleHits() const { return preAckStaleHits_.value(); }
    uint64_t postAckViolations() const
    {
        return postAckViolations_.value();
    }
    uint64_t probesRun() const { return statProbes_.value(); }
    uint64_t windowsSeen() const { return statWindows_.value(); }

    uint64_t virtProbesRun() const { return statVirtProbes_.value(); }
    uint64_t virtPreAckStaleHits() const
    {
        return virtPreAckStaleHits_.value();
    }
    uint64_t virtStaleDenies() const { return statVirtStaleDenies_.value(); }
    /** Stale grants by the canonical stage that should have denied. */
    uint64_t staleGuestStageOrigin() const
    {
        return statStaleGuestOrigin_.value();
    }
    uint64_t staleGStageOrigin() const
    {
        return statStaleGStageOrigin_.value();
    }
    uint64_t stalePmpteOrigin() const
    {
        return statStalePmpteOrigin_.value();
    }

    /**
     * Stale guest grants split by access class: instruction fetches
     * through X-only leaves are hunted and attributed separately from
     * load/store (RW) grants — a stale executable mapping is the
     * injectable-code bug, not just a data leak.
     */
    uint64_t staleExecGrants() const { return statStaleExecGrants_.value(); }
    uint64_t staleRwGrants() const { return statStaleRwGrants_.value(); }

    /** "stale_checker" group: probes, hits, violations, windows. */
    StatGroup &stats() { return stats_; }
    void registerStats(StatRegistry &registry) { registry.add(&stats_); }

  private:
    /** Access-level probe verdict. */
    enum class AccessVerdict : uint8_t
    {
        Grant,     //!< access completed fault-free
        Deny,      //!< HPMP/PMP access fault (fail closed)
        PageFault, //!< translation failure: watch unusable this probe
        Skipped,   //!< accessPath disabled for this watch
    };

    struct ProbeResult
    {
        bool regGrant = false;
        AccessVerdict access = AccessVerdict::Skipped;
    };

    /** What the monitor's canonical register file says right now. */
    bool canonicalAllows(const StaleWatch &watch) const;

    /** Drive one watch on its hart (fault injection suspended). */
    ProbeResult probeWatch(const StaleWatch &watch);

    /**
     * Probe every watch and judge it. `strict` additionally fails
     * fenced-hart mismatches in the deny direction (post-window and
     * quiescent checks); mid-window only stale *grants* can fail.
     */
    void sweep(bool strict, const char *where, uint64_t seq);

    /** Canonical verdict + deny origin for one virt watch. */
    struct VirtOracle
    {
        bool allow = false;
        VirtFaultOrigin denyOrigin = VirtFaultOrigin::None;
    };

    /** Evaluate the three-stage canonical expectation right now. */
    VirtOracle canonicalVirtAllows(const VirtStaleWatch &watch) const;

    /** Drive one guest watch through VirtMachine::access. */
    bool probeVirtWatch(const VirtStaleWatch &watch);

    /** The two-stage sweep twin of sweep(). */
    void sweepVirt(bool strict, const char *where, uint64_t seq);

    void recordVirtViolation(const VirtStaleWatch &watch,
                             VirtFaultOrigin origin, const char *where,
                             uint64_t seq);

    /** True iff the hart is past its ack (or initiated the window). */
    bool fenced(unsigned hart) const;

    void recordViolation(const StaleWatch &watch, const char *level,
                         const char *direction, const char *where,
                         uint64_t seq);

    SmpSystem &smp_;
    SecureMonitor &monitor_;
    std::vector<StaleWatch> watches_;
    std::vector<VirtStaleWatch> virtWatches_;

    /** Committed per-stage expectations, keyed by (hart, page base). */
    std::map<std::pair<unsigned, Addr>, Perm> guestPerm_;
    std::map<std::pair<unsigned, Addr>, Perm> gpaPerm_;

    bool windowOpen_ = false;
    unsigned windowInitiator_ = 0;
    std::vector<bool> acked_;
    /** Canonical verdict per watch, captured at WindowBegin. */
    std::vector<bool> oracle_;
    /** Same capture for the virt watches. */
    std::vector<VirtOracle> virtOracle_;

    bool failed_ = false;
    std::string failure_;

    StatGroup stats_{"stale_checker"};
    Counter statProbes_;       //!< watch probes driven (both levels)
    Counter statWindows_;      //!< shootdown windows observed
    Counter preAckStaleHits_;  //!< stale grants on not-yet-acked harts
    Counter postAckViolations_; //!< hard failures (acked / post-window)
    Counter statStaleDenies_;  //!< fail-closed mismatches (never fatal)
    Counter statPageFaultSkips_; //!< access probes voided by page faults
    Counter statQuiescentChecks_;
    Counter statVirtProbes_;         //!< guest-watch probes driven
    Counter virtPreAckStaleHits_;    //!< guest stale grants, unfenced harts
    Counter statVirtStaleDenies_;    //!< guest fail-closed mismatches
    Counter statStaleGuestOrigin_;   //!< stale grants a VS-stage perm denies
    Counter statStaleGStageOrigin_;  //!< stale grants a G-stage perm denies
    Counter statStalePmpteOrigin_;   //!< stale grants physical perms deny
    Counter statStaleExecGrants_;    //!< stale guest grants on fetches
    Counter statStaleRwGrants_;      //!< stale guest grants on loads/stores
};

/**
 * Cross-system migration oracle (DESIGN.md §12): the StaleChecker's
 * two-host sibling. During a live domain migration the two-phase
 * handoff must guarantee that at no interleaving point do *both*
 * hosts grant the migrating domain access to its memory — a
 * dual-grant window would let the domain run on two machines over
 * one logical memory image, the migration analogue of a stale
 * translation. The engine publishes every protocol step to step(),
 * and the oracle probes both monitors at two levels:
 *
 *  - monitor level: SecureMonitor::domainGrantable — would the
 *    monitor switch to / mutate the domain right now;
 *  - register level: HpmpUnit::probe on every hart of both hosts
 *    against the domain's watched pages — is any hart's live
 *    register file still granting the memory in flight.
 *
 * Verdicts (both sticky hard failures, like post-ack stale grants):
 *
 *  - both sides grant at the same step → dual-grant window;
 *  - the source still grants after the destination committed →
 *    the source's revoke leaked through the handoff.
 *
 * Probes run under FaultInjector::SuspendGuard, so the oracle never
 * consumes hits from a campaign's injection plan.
 */
class CrossSystemOracle
{
  public:
    CrossSystemOracle(SecureMonitor &src, SecureMonitor &dst);

    /** Arm the oracle for one migration of `src_id`; `regions` are
     *  the domain's GMSs (their first pages become register watches). */
    void beginMigration(DomainId src_id, const std::vector<Gms> &regions);

    /** The destination staged the domain under this id. */
    void setDestDomain(DomainId id)
    {
        dstId_ = id;
        haveDst_ = true;
    }

    /** The destination committed: source grants are now fatal. */
    void noteDestCommitted() { destCommitted_ = true; }

    /** Migration over (either way); disarm until the next begin. */
    void finishMigration();

    /** Probe both hosts and judge; called at every protocol step. */
    void step(const char *where);

    bool failed() const { return failed_; }
    const std::string &failure() const { return failure_; }

    uint64_t checks() const { return statChecks_.value(); }
    uint64_t violations() const { return statViolations_.value(); }
    uint64_t registerProbes() const { return statRegProbes_.value(); }

    /** "migrate_oracle" group: checks, violations, register probes. */
    StatGroup &stats() { return stats_; }
    void registerStats(StatRegistry &registry) { registry.add(&stats_); }

  private:
    /** Does `monitor` grant the domain its memory right now? */
    bool grants(SecureMonitor &monitor, DomainId id);

    void recordViolation(const char *what, const char *where);

    SecureMonitor &src_;
    SecureMonitor &dst_;
    DomainId srcId_ = 0;
    DomainId dstId_ = 0;
    bool active_ = false;
    bool haveDst_ = false;
    bool destCommitted_ = false;
    std::vector<Addr> pages_; //!< watched pages of the migrating domain

    bool failed_ = false;
    std::string failure_;

    StatGroup stats_{"migrate_oracle"};
    Counter statChecks_;     //!< protocol steps judged
    Counter statViolations_; //!< dual-grant / grant-after-commit hits
    Counter statRegProbes_;  //!< per-hart register probes driven
};

} // namespace hpmp

#endif // HPMP_MONITOR_STALE_CHECKER_H
