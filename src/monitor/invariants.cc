#include "monitor/invariants.h"

#include <set>
#include <sstream>
#include <vector>

#include "pmpt/pmpte.h"

namespace hpmp
{

namespace
{

struct Region
{
    DomainId dom;
    const Gms *gms;
};

bool
overlaps(Addr a_base, uint64_t a_size, Addr b_base, uint64_t b_size)
{
    return a_base < b_base + b_size && b_base < a_base + a_size;
}

std::string
hex(uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

std::string
permStr(Perm p)
{
    std::string s;
    s += p.r ? 'r' : '-';
    s += p.w ? 'w' : '-';
    s += p.x ? 'x' : '-';
    return s;
}

bool
napotOk(const Gms &gms)
{
    return isPowerOf2(gms.size) && gms.size >= 8 &&
           gms.base % gms.size == 0;
}

/** Representative page addresses of [base, base+size). */
std::vector<Addr>
samplePages(Addr base, uint64_t size)
{
    std::vector<Addr> pas{base};
    const Addr mid = alignDown(base + size / 2, kPageSize);
    const Addr last = base + size - kPageSize;
    if (mid != base)
        pas.push_back(mid);
    if (last != base && last != mid)
        pas.push_back(last);
    return pas;
}

} // namespace

std::string
checkIsolationInvariants(SecureMonitor &monitor)
{
    Machine &machine = monitor.machine();
    HpmpUnit &unit = machine.hpmp();
    const MonitorConfig &config = monitor.config();
    const uint64_t phys = machine.params().physMemBytes;
    const DomainId current = monitor.currentDomain();
    const std::vector<DomainId> ids = monitor.domainIds();

    std::ostringstream why;
    auto fail = [&why]() -> std::string { return why.str(); };

    // ---- 1. Ownership exclusivity ------------------------------------
    std::vector<Region> all;
    for (const DomainId id : ids) {
        for (const Gms &gms : monitor.gmsOf(id))
            all.push_back({id, &gms});
    }
    for (size_t i = 0; i < all.size(); ++i) {
        for (size_t j = i + 1; j < all.size(); ++j) {
            const Region &a = all[i];
            const Region &b = all[j];
            if (!overlaps(a.gms->base, a.gms->size, b.gms->base,
                          b.gms->size)) {
                continue;
            }
            if (a.dom == b.dom) {
                why << "domain " << a.dom << " has overlapping GMSs at "
                    << hex(a.gms->base) << " and " << hex(b.gms->base);
                return fail();
            }
            const bool legit_share =
                a.gms->shared && b.gms->shared &&
                a.gms->base == b.gms->base && a.gms->size == b.gms->size;
            if (!legit_share) {
                why << "domains " << a.dom << " and " << b.dom
                    << " own overlapping non-shared regions at "
                    << hex(a.gms->base) << "/" << hex(b.gms->base);
                return fail();
            }
        }
    }

    // ---- 2. Monitor privacy (bookkeeping side) -----------------------
    for (const Region &r : all) {
        if (overlaps(r.gms->base, r.gms->size, config.monitorBase,
                     config.monitorSize)) {
            why << "domain " << r.dom << " GMS at " << hex(r.gms->base)
                << " overlaps the monitor-private region";
            return fail();
        }
    }

    // Nothing is programmed under IsolationScheme::None; the remaining
    // invariants compare against the hardware state.
    if (config.scheme == IsolationScheme::None)
        return {};

    // ---- 3. Hardware agreement via the functional probe --------------
    // Expected S/U permission at pa, from the monitor's bookkeeping:
    // the covering GMS of the *current* domain, or nothing.
    auto expected = [&](Addr pa) -> Perm {
        for (const Gms &gms : monitor.gmsOf(current)) {
            if (pa >= gms.base && pa < gms.base + gms.size)
                return gms.perm;
        }
        return Perm::none();
    };

    std::set<Addr> points;
    auto add_point = [&](Addr pa) {
        if (pa < phys && pa % kPageSize == 0)
            points.insert(pa);
    };
    for (const Region &r : all) {
        for (const Addr pa : samplePages(r.gms->base, r.gms->size))
            add_point(pa);
        // Just outside each region: must not leak beyond the bounds.
        if (r.gms->base >= kPageSize)
            add_point(r.gms->base - kPageSize);
        add_point(r.gms->base + r.gms->size);
    }
    for (const Addr pa : samplePages(config.monitorBase,
                                     config.monitorSize)) {
        add_point(pa);
    }

    for (const Addr pa : points) {
        const Perm hw = unit.probe(pa);
        const bool monitor_private =
            pa >= config.monitorBase &&
            pa < config.monitorBase + config.monitorSize;
        const Perm want = monitor_private ? Perm::none() : expected(pa);
        if (hw != want) {
            why << "probe mismatch at " << hex(pa) << ": hardware grants "
                << permStr(hw) << ", monitor expects " << permStr(want)
                << " (current domain " << current << ")";
            return fail();
        }
    }

    // ---- 4. Segment mirrors match the current domain's GMSs ----------
    const PmpUnit &regs = unit.regs();
    const auto entry0 = regs.region(0);
    if (!entry0 || entry0->base != config.monitorBase ||
        entry0->size != config.monitorSize ||
        regs.cfg(0).perm() != Perm::none()) {
        why << "entry 0 no longer pins the monitor region";
        return fail();
    }

    const std::vector<Gms> &cur_gms = monitor.gmsOf(current);
    unsigned table_entries = 0;
    unsigned segment_entries = 0;
    for (unsigned i = 1; i < regs.numEntries(); ++i) {
        const PmpCfg cfg = regs.cfg(i);
        if (cfg.reservedT()) {
            // Table-mode entry: must cover all of physical memory and
            // point at the current domain's table.
            ++table_entries;
            const auto region = regs.region(i);
            if (!region || region->base != 0 || region->size < phys) {
                why << "table-mode entry " << i
                    << " does not cover physical memory";
                return fail();
            }
            const PmpTable *table = monitor.tablePeek(current);
            if (!table) {
                why << "table-mode entry " << i
                    << " programmed but domain " << current
                    << " has no PMP table";
                return fail();
            }
            const PmptBaseReg base_reg{regs.addr(i + 1)};
            if (base_reg.tablePa() != table->rootPa() ||
                base_reg.levels() != table->levels()) {
                why << "table-mode entry " << i
                    << " roots at " << hex(base_reg.tablePa())
                    << ", domain table is at " << hex(table->rootPa());
                return fail();
            }
            ++i; // the pair entry holds the base register
            continue;
        }
        if (cfg.a() == PmpAddrMode::Off)
            continue;
        ++segment_entries;
        const auto region = regs.region(i);
        const Gms *match = nullptr;
        for (const Gms &gms : cur_gms) {
            if (gms.base == region->base && gms.size == region->size) {
                match = &gms;
                break;
            }
        }
        if (!match) {
            why << "segment entry " << i << " maps " << hex(region->base)
                << "+" << hex(region->size)
                << " which is no GMS of current domain " << current;
            return fail();
        }
        if (match->perm != cfg.perm()) {
            why << "segment entry " << i << " grants "
                << permStr(cfg.perm()) << " but the GMS at "
                << hex(match->base) << " holds " << permStr(match->perm);
            return fail();
        }
        if (config.scheme == IsolationScheme::Hpmp &&
            match->label != GmsLabel::Fast) {
            why << "segment entry " << i << " mirrors a slow GMS at "
                << hex(match->base);
            return fail();
        }
    }

    unsigned expect_segments = 0;
    switch (config.scheme) {
      case IsolationScheme::None:
        break;
      case IsolationScheme::Pmp:
        expect_segments = unsigned(cur_gms.size());
        break;
      case IsolationScheme::PmpTable:
        expect_segments = 0;
        break;
      case IsolationScheme::Hpmp:
        for (const Gms &gms : cur_gms) {
            if (gms.label == GmsLabel::Fast && napotOk(gms))
                ++expect_segments;
        }
        break;
    }
    if (segment_entries != expect_segments) {
        why << "scheme " << toString(config.scheme) << " programs "
            << segment_entries << " segment entries but "
            << expect_segments << " GMSs should be mirrored";
        return fail();
    }
    const bool want_table =
        (config.scheme == IsolationScheme::PmpTable ||
         config.scheme == IsolationScheme::Hpmp) &&
        monitor.tablePeek(current) != nullptr;
    if (table_entries != (want_table ? 1u : 0u)) {
        why << table_entries << " table-mode entries programmed, want "
            << (want_table ? 1 : 0);
        return fail();
    }

    // ---- 5. Every domain's PMP table agrees with its GMS list --------
    for (const DomainId id : ids) {
        const PmpTable *table = monitor.tablePeek(id);
        if (!table)
            continue;
        auto expect_of = [&](Addr pa) -> Perm {
            for (const Gms &gms : monitor.gmsOf(id)) {
                if (pa >= gms.base && pa < gms.base + gms.size)
                    return gms.perm;
            }
            return Perm::none();
        };
        std::set<Addr> offsets;
        for (const Gms &gms : monitor.gmsOf(id)) {
            for (const Addr pa : samplePages(gms.base, gms.size)) {
                if (pa < table->coverage())
                    offsets.insert(pa);
            }
            if (gms.base >= kPageSize)
                offsets.insert(gms.base - kPageSize);
            if (gms.base + gms.size < table->coverage())
                offsets.insert(gms.base + gms.size);
        }
        offsets.insert(config.monitorBase);
        for (const Addr off : offsets) {
            const Perm got = table->lookup(off);
            const bool monitor_private =
                off >= config.monitorBase &&
                off < config.monitorBase + config.monitorSize;
            const Perm want =
                monitor_private ? Perm::none() : expect_of(off);
            if (got != want) {
                why << "domain " << id << " table holds "
                    << permStr(got) << " at offset " << hex(off)
                    << ", GMS list says " << permStr(want);
                return fail();
            }
        }
    }

    return {};
}

} // namespace hpmp
