#include "monitor/merkle.h"

#include <vector>

#include "base/bitfield.h"
#include "base/logging.h"

namespace hpmp
{

MerkleHash
merkleHashBytes(const void *data, size_t len, MerkleHash seed)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    MerkleHash h = seed;
    for (size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace
{

/** Combine two child hashes into a parent. */
MerkleHash
combine(MerkleHash left, MerkleHash right)
{
    MerkleHash pair[2] = {left, right};
    return merkleHashBytes(pair, sizeof(pair), 0x9e3779b97f4a7c15ULL);
}

} // namespace

MerkleTree::MerkleTree(const PhysMem &mem, Addr base, uint64_t size)
    : mem_(mem),
      base_(base),
      size_(size)
{
    fatal_if(base % kPageSize || size % kPageSize || size == 0,
             "merkle region must be page aligned and non-empty");
    const uint64_t pages = size / kPageSize;
    leaves_ = 1;
    while (leaves_ < pages)
        leaves_ <<= 1;

    // Leaves occupy heap indices [leaves_, 2*leaves_).
    for (uint64_t i = 0; i < leaves_; ++i)
        nodes_[leaves_ + i] = hashPage(i);
    for (uint64_t i = leaves_ - 1; i >= 1; --i)
        nodes_[i] = combine(nodes_[2 * i], nodes_[2 * i + 1]);
}

MerkleHash
MerkleTree::hashPage(uint64_t leaf_index) const
{
    if (leaf_index * kPageSize >= size_)
        return 0; // implicit zero padding
    std::vector<uint8_t> buf(kPageSize);
    mem_.readBytes(base_ + leaf_index * kPageSize, buf.data(),
                   kPageSize);
    return merkleHashBytes(buf.data(), buf.size());
}

MerkleHash
MerkleTree::node(uint64_t index) const
{
    auto it = nodes_.find(index);
    panic_if(it == nodes_.end(), "unmounted merkle node %lu", index);
    return it->second;
}

uint64_t
MerkleTree::leafNode(Addr pa) const
{
    panic_if(pa < base_ || pa >= base_ + size_,
             "address %#lx outside merkle region", pa);
    return leaves_ + (pa - base_) / kPageSize;
}

bool
MerkleTree::verifyPage(Addr pa) const
{
    const uint64_t leaf = leafNode(pa);
    if (!mounted(leaf))
        return false;
    // Leaf must match memory...
    if (node(leaf) != hashPage(leaf - leaves_))
        return false;
    // ...and the path to the root must be internally consistent.
    for (uint64_t i = leaf / 2; i >= 1; i /= 2) {
        if (!mounted(2 * i) || !mounted(2 * i + 1) || !mounted(i))
            return false;
        if (node(i) != combine(node(2 * i), node(2 * i + 1)))
            return false;
    }
    return true;
}

void
MerkleTree::updatePage(Addr pa)
{
    const uint64_t leaf = leafNode(pa);
    panic_if(!mounted(leaf), "updatePage in unmounted subtree");
    nodes_[leaf] = hashPage(leaf - leaves_);
    for (uint64_t i = leaf / 2; i >= 1; i /= 2)
        nodes_[i] = combine(node(2 * i), node(2 * i + 1));
}

void
MerkleTree::unmountSubtree(Addr pa, unsigned levels)
{
    uint64_t top = leafNode(pa);
    for (unsigned i = 0; i < levels && top > 1; ++i)
        top /= 2;
    // Drop everything strictly below `top` within its subtree.
    std::vector<uint64_t> stack{2 * top, 2 * top + 1};
    while (!stack.empty()) {
        const uint64_t idx = stack.back();
        stack.pop_back();
        if (idx >= 2 * leaves_ || !mounted(idx))
            continue;
        nodes_.erase(idx);
        stack.push_back(2 * idx);
        stack.push_back(2 * idx + 1);
    }
}

bool
MerkleTree::remountSubtree(Addr pa, unsigned levels)
{
    uint64_t top = leafNode(pa);
    for (unsigned i = 0; i < levels && top > 1; ++i)
        top /= 2;

    // Recompute the subtree bottom-up into a staging map.
    std::unordered_map<uint64_t, MerkleHash> staging;
    // Find the leaf range under `top`.
    uint64_t lo = top, hi = top;
    while (lo < leaves_) {
        lo = 2 * lo;
        hi = 2 * hi + 1;
    }
    for (uint64_t leaf = lo; leaf <= hi; ++leaf)
        staging[leaf] = hashPage(leaf - leaves_);
    // Combine level by level, staying inside the subtree (skipped
    // when the "subtree" is a single leaf).
    if (top < leaves_) {
        for (uint64_t level_lo = lo / 2, level_hi = hi / 2;;
             level_lo /= 2, level_hi /= 2) {
            for (uint64_t idx = level_lo; idx <= level_hi; ++idx)
                staging[idx] = combine(staging[2 * idx],
                                       staging[2 * idx + 1]);
            if (level_lo == top)
                break;
        }
    }

    // The recomputed subtree root must match the retained hash.
    if (staging[top] != node(top))
        return false;
    for (const auto &[idx, hash] : staging)
        nodes_[idx] = hash;
    return true;
}

} // namespace hpmp
