#include "monitor/secure_monitor.h"

#include <algorithm>

#include "base/bitfield.h"
#include "base/fault_inject.h"
#include "base/logging.h"
#include "base/trace.h"
#include "core/smp.h"
#include "core/virt_machine.h"

namespace hpmp
{

namespace
{

/**
 * Internal control-flow exception for monitor-call failures discovered
 * after mutation started. The transaction wrapper catches it, rolls
 * back to the pre-call state and surfaces the typed error. Never
 * escapes a monitor call.
 */
struct MonitorAbort
{
    MonitorError code;
    std::string msg;
};

uint64_t
digestFold(uint64_t h, uint64_t v)
{
    return (h ^ v) * 0x100000001b3ULL; // FNV-1a step
}

} // namespace

const char *
toString(MonitorError error)
{
    switch (error) {
      case MonitorError::None: return "none";
      case MonitorError::NoSuchDomain: return "no-such-domain";
      case MonitorError::NoSuchGms: return "no-such-gms";
      case MonitorError::BadArgument: return "bad-argument";
      case MonitorError::OverlapDomain: return "overlap-domain";
      case MonitorError::OverlapMonitor: return "overlap-monitor";
      case MonitorError::PermExceedsOwner: return "perm-exceeds-owner";
      case MonitorError::OutOfPmpEntries: return "out-of-pmp-entries";
      case MonitorError::OutOfTableFrames: return "out-of-table-frames";
      case MonitorError::InjectedFault: return "injected-fault";
      case MonitorError::LockContended: return "lock-contended";
      case MonitorError::StaleHandle: return "stale-handle";
      case MonitorError::DomainMigrating: return "domain-migrating";
      case MonitorError::RasFatal: return "ras-fatal";
      case MonitorError::QuarantinedPage: return "quarantined-page";
    }
    return "?";
}

const char *
toString(RasOutcome outcome)
{
    switch (outcome) {
      case RasOutcome::AlreadyQuarantined: return "already-quarantined";
      case RasOutcome::QuarantinedFree: return "quarantined-free";
      case RasOutcome::ContainedDomain: return "contained-domain";
      case RasOutcome::HealedTable: return "healed-table";
      case RasOutcome::HostFatal: return "host-fatal";
    }
    return "?";
}

/**
 * Transaction guard for one monitor call.
 *
 * On construction it snapshots every piece of state a call can touch:
 * the scalar cursors and the HPMP register file (+ CSR-write counter).
 * Per-domain GMS lists and PMP-table growth metadata are captured
 * *lazily* through touch(): a monitor call mutates at most two domains
 * (its target, plus the current domain via applyLayout), so
 * snapshotting every domain up front — the original design — would
 * make each call O(live domains), which fleet-scale registries cannot
 * afford. While the transaction is active every pmpte store of a
 * touched domain is journaled (old value per slot), including stores
 * into tables created mid-call. rollback() replays the journal in
 * reverse and restores the snapshots, leaving monitor + HPMP + table
 * state bit-identical to the pre-call state —
 * SecureMonitor::stateDigest() is the test oracle for that claim.
 */
struct SecureMonitor::Txn
{
    explicit Txn(SecureMonitor &m) : m_(m)
    {
        panic_if(m_.activeTxn_, "nested monitor transaction");
        m_.beginOp();
        current_ = m_.current_;
        tableFrameNext_ = m_.tableFrameNext_;
        tableWritesTotal_ = m_.tableWritesTotal_;
        tableWritesAgg_ = m_.tableWritesAgg_;
        heatClock_ = m_.heatClock_;
        coalescedOpen_ = m_.coalescedOpen_;
        coalescedCommits_ = m_.coalescedCommits_;
        lastCommitter_ = m_.lastCommitter_;
        hpmpSnap_ = m_.machine_.hpmp().takeSnapshot();
        // Multi-hart: a failing call may abort after partial
        // shootdowns, so rollback must be able to restore *every*
        // hart's register file, not just the canonical one.
        if (m_.smp_) {
            for (unsigned h = 1; h < m_.smp_->numHarts(); ++h) {
                remoteSnaps_.push_back(
                    m_.smp_->hart(h).hpmp().takeSnapshot());
            }
            // Virt-enabled: capture every hart's guest CSR state too
            // (hart 0 included), so a call aborting after a partial
            // guest shootdown restores the virt view as well.
            if (m_.smp_->virtEnabled()) {
                for (unsigned h = 0; h < m_.smp_->numHarts(); ++h) {
                    VirtMachine &vm = m_.smp_->virtHart(h);
                    virtSnaps_.push_back({vm.vsatpRoot(), vm.hgatpRoot(),
                                          vm.guestPriv()});
                }
            }
        }
        m_.activeTxn_ = this;
    }

    /**
     * Capture one domain the call is about to mutate: GMS list and
     * table-growth metadata, plus journaling of its pmpte stores.
     * Idempotent; the touched set stays <= 2 per call.
     */
    void
    touch(DomainId id)
    {
        for (const auto &snap : domSnaps_) {
            if (snap.id == id)
                return;
        }
        Domain *dom = m_.domains_.find(id);
        panic_if(!dom, "txn touch of unknown domain %u", id);
        domSnaps_.push_back(
            {id, dom->gmsList, dom->table != nullptr,
             dom->table ? dom->table->tablePages().size() : 0,
             dom->table ? dom->table->entryWrites() : 0,
             dom->migrating});
        if (dom->table)
            dom->table->setJournal(&journal_);
    }

    ~Txn()
    {
        // An exception escaping the call body (only injected faults in
        // layers below the monitor can cause this) still rolls back.
        if (!done_)
            rollback();
        for (const auto &snap : domSnaps_) {
            Domain *dom = m_.domains_.find(snap.id);
            if (dom && dom->table)
                dom->table->setJournal(nullptr);
        }
        m_.activeTxn_ = nullptr;
    }

    /** Keep an erased domain so rollback can reinsert it intact. */
    void
    stashErased(DomainId id, Domain &&dom)
    {
        stashed_.emplace_back(id, std::move(dom));
    }

    /**
     * Keep a PMP-table object the call swapped out wholesale
     * (self-heal): rollback re-points the domain at the original
     * before the metadata rollback runs, since touch() snapshotted
     * *that* object, not its replacement.
     */
    void
    stashTable(DomainId id, std::unique_ptr<PmpTable> table)
    {
        stashedTables_.emplace_back(id, std::move(table));
    }

    MonitorResult
    commit(bool flushed, bool degraded = false)
    {
        done_ = true;
        MonitorResult result;
        result.cycles = m_.opCycles(flushed);
        result.degraded = degraded;
        return result;
    }

    MonitorResult
    abort(MonitorError code, std::string msg)
    {
        rollback();
        done_ = true;
        return MonitorResult::fail(code, std::move(msg));
    }

    PmpTable::Journal journal_;

  private:
    struct DomainSnap
    {
        DomainId id;
        std::vector<Gms> gmsList;
        bool hadTable;
        size_t tablePages;
        uint64_t entryWrites;
        bool migrating;
    };

    void
    rollback()
    {
        // 1. Undo pmpte stores newest-first: restores surviving tables
        //    and returns pages allocated mid-call to all-zero bytes.
        for (auto it = journal_.rbegin(); it != journal_.rend(); ++it)
            m_.machine_.mem().write64(it->slot, it->oldValue);
        journal_.clear();

        // 2. Reinsert domains the call erased (registry slot revived
        //    with its pre-call generation — no tag was spent).
        for (auto &[id, dom] : stashed_)
            m_.domains_.restoreErased(id, std::move(dom));
        stashed_.clear();

        // 2b. Re-point domains whose table object was swapped out
        //     mid-call (self-heal) back at the original: step 3's
        //     metadata rollback must run against the object touch()
        //     snapshotted. The abandoned replacement is destroyed
        //     here; its frames were already zeroed by the journal
        //     replay and are reclaimed by the cursor restore in 4.
        for (auto &[id, table] : stashedTables_) {
            Domain *dom = m_.domains_.find(id);
            panic_if(!dom, "rollback lost healed domain %u", id);
            dom->table = std::move(table);
        }
        stashedTables_.clear();

        // 3. Restore per-domain state of the touched set; drop tables
        //    created mid-call (their frames are reclaimed by the
        //    cursor restore in 4).
        for (auto &snap : domSnaps_) {
            Domain *dom = m_.domains_.find(snap.id);
            panic_if(!dom, "rollback lost domain %u", snap.id);
            dom->gmsList = snap.gmsList;
            dom->migrating = snap.migrating;
            if (!snap.hadTable) {
                dom->table.reset();
            } else {
                dom->table->rollbackMeta(snap.tablePages,
                                         snap.entryWrites);
            }
        }

        // 4. Scalars, then the register file (flushes the PMPTW-Cache).
        m_.current_ = current_;
        m_.tableFrameNext_ = tableFrameNext_;
        m_.tableWritesTotal_ = tableWritesTotal_;
        m_.tableWritesAgg_ = tableWritesAgg_;
        m_.heatClock_ = heatClock_;
        m_.machine_.hpmp().restoreSnapshot(hpmpSnap_);
        if (m_.smp_) {
            for (unsigned h = 1; h < m_.smp_->numHarts(); ++h) {
                m_.smp_->hart(h).hpmp().restoreSnapshot(
                    remoteSnaps_[h - 1]);
            }
        }

        // 5. Nothing ran between the mid-call programming and this
        //    restore, but mirror the hardware contract anyway: any
        //    isolation-state change ends with TLB synchronization —
        //    on every hart, since partial shootdowns may have synced
        //    (and now un-synced) some of them.
        m_.machine_.sfenceVma();
        if (m_.smp_) {
            for (unsigned h = 1; h < m_.smp_->numHarts(); ++h)
                m_.smp_->hart(h).sfenceVma();
            // Guest view: put back the pre-call vsatp/hgatp roots and
            // drop every cached translation (combined, G-stage, guest
            // PWC) on each hart — restoreVirtState fences locally
            // without re-entering the shootdown path.
            for (unsigned h = 0; h < unsigned(virtSnaps_.size()); ++h) {
                m_.smp_->virtHart(h).restoreVirtState(
                    virtSnaps_[h].vsatp, virtSnaps_[h].hgatp,
                    virtSnaps_[h].priv);
            }
            if (m_.ipiWindowOpen_) {
                // The aborted shootdown's window closes here: every
                // hart is back on (and fenced to) the pre-call state,
                // which is what checkers verify at window-end.
                m_.ipiWindowOpen_ = false;
                m_.smp_->notifyStep({IpiPhase::WindowEnd,
                                     m_.smp_->currentHart(),
                                     m_.smp_->currentHart(),
                                     m_.ipiWindowSeq_});
            }
            if (m_.coalescedOpen_ && !coalescedOpen_) {
                // This call's deferred commit opened the coalesced
                // window and then aborted: nothing is pending, so the
                // window closes with every hart on the pre-call state.
                m_.coalescedOpen_ = false;
                m_.smp_->notifyStep({IpiPhase::WindowEnd,
                                     m_.smp_->currentHart(),
                                     m_.smp_->currentHart(),
                                     m_.coalescedSeq_});
            }
            // A window opened by *earlier* commits stays open: their
            // state is committed and still awaits the shared flush.
            m_.coalescedCommits_ = coalescedCommits_;
            m_.lastCommitter_ = lastCommitter_;
        }
    }

    SecureMonitor &m_;
    bool done_ = false;
    DomainId current_;
    Addr tableFrameNext_;
    uint64_t tableWritesTotal_;
    uint64_t tableWritesAgg_;
    uint64_t heatClock_;
    bool coalescedOpen_;
    uint64_t coalescedCommits_;
    unsigned lastCommitter_;
    struct VirtSnap
    {
        Addr vsatp;
        Addr hgatp;
        PrivMode priv;
    };

    HpmpUnit::Snapshot hpmpSnap_;
    std::vector<HpmpUnit::Snapshot> remoteSnaps_; //!< harts 1..N-1
    std::vector<VirtSnap> virtSnaps_; //!< all harts, virt-enabled only
    std::vector<DomainSnap> domSnaps_;
    std::vector<std::pair<DomainId, Domain>> stashed_;
    std::vector<std::pair<DomainId, std::unique_ptr<PmpTable>>>
        stashedTables_;
};

template <typename Fn>
MonitorResult
SecureMonitor::transact(const char *callName, Fn &&body)
{
    // Multi-hart: one monitor call in flight at a time. A hart whose
    // trap races another hart's transaction bounces with a typed
    // error before any snapshot or mutation.
    const unsigned initiator = smp_ ? smp_->currentHart() : 0;
    if (smp_ && !smp_->tryAcquireMonitorLock(initiator)) {
        return failCall(MonitorError::LockContended,
                        "monitor lock held by hart " +
                            std::to_string(smp_->lockOwner()));
    }
    // Root (or, during a migration phase, child) span for the whole
    // call: shootdown-window and per-sibling IPI spans open under it,
    // and an abort's unwind closes it via RAII.
    ScopedSpan span(TraceFlag::Monitor, callName, initiator);
    MonitorResult result;
    bool rolled_back = false;
    {
        Txn txn(*this);
        try {
            result = body(txn);
        } catch (const MonitorAbort &abort) {
            result = txn.abort(abort.code, abort.msg);
            rolled_back = true;
        } catch (const InjectedFault &fault) {
            result = txn.abort(MonitorError::InjectedFault,
                               std::string("injected fault at ") +
                                   fault.site);
            rolled_back = true;
        }
    }
    if (smp_)
        smp_->releaseMonitorLock(initiator);
    noteResult(result.ok, result.code, result.cycles, result.degraded,
               rolled_back);
    return result;
}

void
SecureMonitor::noteResult(bool ok, MonitorError code, uint64_t cycles,
                          bool degraded, bool rolled_back) const
{
    ++statCalls_;
    if (ok) {
        ++statOk_;
        statCallCycles_.sample(cycles);
    } else {
        ++statFailed_;
        ++statErrors_[unsigned(code) < kNumMonitorErrors ? unsigned(code)
                                                         : 0];
        DPRINTF(Monitor, "call failed: %s\n", toString(code));
    }
    if (rolled_back)
        ++statRollbacks_;
    if (degraded)
        ++statDegraded_;
    TRACE_EVENT(Monitor, statCalls_.value(), cycles, "monitor_call",
                uint64_t(code), uint64_t(degraded));
}

MonitorResult
SecureMonitor::failCall(MonitorError code, std::string why) const
{
    noteResult(false, code, 0, false, false);
    return MonitorResult::fail(code, std::move(why));
}

SecureMonitor::SecureMonitor(Machine &machine, const MonitorConfig &config)
    : machine_(machine),
      config_(config)
{
    fatal_if(!isPowerOf2(config.monitorSize) ||
                 config.monitorBase % config.monitorSize,
             "monitor region must be NAPOT");

    stats_.add("calls", &statCalls_);
    stats_.add("ok", &statOk_);
    stats_.add("failed", &statFailed_);
    stats_.add("rollbacks", &statRollbacks_);
    stats_.add("degraded", &statDegraded_);
    stats_.add("demotions", &statDemotions_);
    stats_.add("call_cycles", &statCallCycles_);
    stats_.add("csr_writes_per_call", &statCsrPerCall_);
    stats_.add("table_writes_per_call", &statTableWritesPerCall_);
    stats_.add("ipi_shootdowns", &statIpiShootdowns_);
    stats_.add("ipi_sent", &statIpiSent_);
    stats_.add("ipi_acked", &statIpiAcked_);
    stats_.add("ipi_lost", &statIpiLost_);
    stats_.add("ipi_cycles", &statIpiCycles_);
    stats_.add("hfence_shootdowns", &statHfenceShootdowns_);
    stats_.add("hfence_sent", &statHfenceSent_);
    stats_.add("hfence_acked", &statHfenceAcked_);
    stats_.add("hfence_lost", &statHfenceLost_);
    stats_.add("hfence_cycles", &statHfenceCycles_);
    stats_.add("coalesced_windows", &statCoalescedWindows_);
    stats_.add("commits_per_window", &statCommitsPerWindow_);
    stats_.add("ipi_post", &statIpiPost_);
    stats_.add("ipi_retries", &statIpiRetries_);
    stats_.add("ipi_elided", &statIpiElided_);
    stats_.add("ras.reports", &statRasReports_);
    stats_.add("ras.quarantines", &statRasQuarantines_);
    stats_.add("ras.contained_domains", &statRasContained_);
    stats_.add("ras.heals", &statRasHeals_);
    stats_.add("ras.fatal", &statRasFatal_);
    stats_.add("ras.scrubbed_pages", &statRasScrubbed_);
    domains_.registerStats(stats_);
    for (unsigned e = 1; e < kNumMonitorErrors; ++e) {
        stats_.add(std::string("errors.") + toString(MonitorError(e)),
                   &statErrors_[e]);
    }
    // PMP Table frames are carved from the top of the monitor region.
    tableFrameEnd_ = config.monitorBase + config.monitorSize;
    tableFrameNext_ = tableFrameEnd_ - config.monitorSize / 2;

    // Entry 0: the monitor's private memory. S/U get no access; the
    // monitor itself runs in M-mode and is unconstrained.
    machine_.hpmp().programSegment(0, config.monitorBase,
                                   config.monitorSize, Perm::none());

    // The host is domain 0.
    const DomainId host = createDomain();
    panic_if(host != 0, "host must be domain 0");
    current_ = 0;
}

SecureMonitor::SecureMonitor(SmpSystem &smp, const MonitorConfig &config)
    : SecureMonitor(smp.hart(0), config)
{
    smp_ = &smp;
    // Boot-time convergence: every hart starts with the canonical
    // register file (entry 0 = the monitor region), not just hart 0.
    // No IPI accounting — this is reset, not a runtime shootdown.
    for (unsigned h = 1; h < smp.numHarts(); ++h) {
        smp.hart(h).hpmp().syncRegsFrom(machine_.hpmp());
        smp.hart(h).sfenceVma();
        smp.hart(h).hpmp().flushCache();
    }
}

SecureMonitor::Domain &
SecureMonitor::domain(DomainId id)
{
    Domain *dom = domains_.find(id);
    panic_if(!dom, "no such domain %u", id);
    return *dom;
}

const SecureMonitor::Domain &
SecureMonitor::domain(DomainId id) const
{
    const Domain *dom = domains_.find(id);
    panic_if(!dom, "no such domain %u", id);
    return *dom;
}

SecureMonitor::Domain *
SecureMonitor::findDomain(DomainId id)
{
    return domains_.find(id);
}

MonitorError
SecureMonitor::lookupError(DomainId id) const
{
    return domains_.stale(id) ? MonitorError::StaleHandle
                              : MonitorError::NoSuchDomain;
}

MonitorResult
SecureMonitor::failNoDomain(DomainId id) const
{
    const MonitorError code = lookupError(id);
    return failCall(code,
                    code == MonitorError::StaleHandle
                        ? "stale domain handle: the id was recycled"
                        : "no such domain");
}

bool
SecureMonitor::domainExists(DomainId id) const
{
    return domains_.find(id) != nullptr;
}

std::vector<DomainId>
SecureMonitor::domainIds() const
{
    return domains_.ids();
}

const PmpTable *
SecureMonitor::tablePeek(DomainId id) const
{
    const Domain *dom = domains_.find(id);
    return dom ? dom->table.get() : nullptr;
}

Addr
SecureMonitor::allocTableFrame(unsigned npages)
{
    if (FAULT_POINT("monitor.alloc_pmpte")) {
        throw MonitorAbort{MonitorError::InjectedFault,
                           "injected fault at monitor.alloc_pmpte"};
    }
    const Addr base = tableFrameNext_;
    if (base + npages * kPageSize > tableFrameEnd_) {
        throw MonitorAbort{MonitorError::OutOfTableFrames,
                           "monitor out of PMP-table frames"};
    }
    tableFrameNext_ += npages * kPageSize;
    return base;
}

PmpTable &
SecureMonitor::tableOf(DomainId id)
{
    Domain &dom = domain(id);
    if (!dom.table) {
        dom.table = std::make_unique<PmpTable>(
            machine_.mem(),
            [this](unsigned npages) { return allocTableFrame(npages); },
            config_.pmptLevels);
        dom.table->setWriteAggregate(&tableWritesAgg_);
        // A table created mid-transaction journals its stores too, so
        // the replay below is rolled back along with everything else.
        if (activeTxn_)
            dom.table->setJournal(&activeTxn_->journal_);
        // Replay existing GMSs into the fresh table.
        for (const Gms &gms : dom.gmsList)
            writeGmsToTable(dom, gms);
    }
    return *dom.table;
}

void
SecureMonitor::writeGmsToTable(Domain &dom, const Gms &gms)
{
    panic_if(!dom.table, "writeGmsToTable without a table");
    dom.table->setPerm(gms.base, gms.size, gms.perm, config_.hugePmpte);
}

unsigned
SecureMonitor::segmentBudget() const
{
    const unsigned entries = machine_.hpmp().regs().numEntries();
    // Entry 0 is the monitor; table mode consumes two entries.
    switch (config_.scheme) {
      case IsolationScheme::Pmp:
      case IsolationScheme::None:
        return entries - 1;
      case IsolationScheme::PmpTable:
        return 0;
      case IsolationScheme::Hpmp:
        return entries - 3;
    }
    return 0;
}

void
SecureMonitor::beginOp()
{
    pendingIpiCycles_ = 0;
    pendingHfenceCycles_ = 0;
    csrSnapshot_ = machine_.hpmp().csrWrites();
    // The aggregate counts every pmpte store ever (live and destroyed
    // tables alike), so the per-call delta is one subtraction — the
    // old walk over every domain's table was O(N) per call.
    tableWriteSnapshot_ = tableWritesAgg_;
}

uint64_t
SecureMonitor::opCycles(bool flushed)
{
    const uint64_t csr_delta = machine_.hpmp().csrWrites() - csrSnapshot_;
    const uint64_t table_delta = tableWritesAgg_ - tableWriteSnapshot_;
    statCsrPerCall_.sample(csr_delta);
    statTableWritesPerCall_.sample(table_delta);

    uint64_t cycles = config_.costs.trapCycles;
    cycles += csr_delta * config_.costs.csrWriteCycles;
    cycles += table_delta * config_.costs.tableWriteCycles;
    if (flushed)
        cycles += config_.costs.flushCycles;
    if (pendingIpiCycles_ > 0) {
        cycles += pendingIpiCycles_;
        statIpiCycles_.sample(pendingIpiCycles_);
    }
    if (pendingHfenceCycles_ > 0) {
        cycles += pendingHfenceCycles_;
        statHfenceCycles_.sample(pendingHfenceCycles_);
    }
    return cycles;
}

DomainId
SecureMonitor::createDomain()
{
    return domains_.create();
}

MonitorResult
SecureMonitor::destroyDomain(DomainId id)
{
    if (rasFatal_)
        return failRasFatal();
    if (id == 0) {
        return failCall(MonitorError::BadArgument,
                                   "cannot destroy the host domain");
    }
    Domain *dom = domains_.find(id);
    if (!dom)
        return failNoDomain(id);
    // Captured before the erase: once the transaction commits the
    // domain object is gone, and the freed frames get scrubbed so the
    // next owner reads zeros (never the dead domain's data). The
    // table frames die with the domain too — bump-allocated monitor
    // frames are never reissued, so their backing can be dropped.
    const std::vector<Gms> freed = dom->gmsList;
    const std::vector<Addr> deadTableFrames =
        dom->table ? dom->table->tablePages() : std::vector<Addr>{};
    MonitorResult result = transact("destroyDomain", [&](Txn &txn) {
        if (FAULT_POINT("monitor.destroy_domain")) {
            throw MonitorAbort{MonitorError::InjectedFault,
                               "injected fault at monitor.destroy_domain"};
        }
        if (dom->table)
            tableWritesTotal_ += dom->table->entryWrites();
        Domain erased = domains_.erase(id);
        txn.stashErased(id, std::move(erased));
        bool flushed = false;
        bool degraded = false;
        if (current_ == id) {
            // Fall back to the host and reprogram immediately: the
            // destroyed domain's layout must not stay live in the
            // registers until the next explicit switch.
            current_ = 0;
            degraded = applyLayout();
            flushed = true;
        }
        return txn.commit(flushed, degraded);
    });
    if (result.ok) {
        scrubFreedGms(freed);
        for (const Addr frame : deadTableFrames) {
            if (!pageQuarantined(frame))
                machine_.mem().releasePage(frame);
        }
    }
    return result;
}

MonitorResult
SecureMonitor::addGms(DomainId id, const Gms &gms)
{
    if (rasFatal_)
        return failRasFatal();
    Domain *dom = findDomain(id);
    if (!dom)
        return failNoDomain(id);
    if (dom->migrating) {
        return failCall(MonitorError::DomainMigrating,
                        "domain is suspended for migration");
    }
    if (gms.size == 0 || gms.base % kPageSize || gms.size % kPageSize)
        return failCall(MonitorError::BadArgument,
                                   "GMS must be page-granular");
    if (gms.base + gms.size < gms.base ||
        gms.base + gms.size > machine_.params().physMemBytes) {
        return failCall(MonitorError::BadArgument,
                                   "GMS beyond physical memory");
    }

    // No overlap with any domain's existing GMSs: memory ownership is
    // exclusive (the host must release regions before granting them).
    bool overlaps = false;
    domains_.forEach([&](DomainId, const Domain &other) {
        for (const Gms &existing : other.gmsList) {
            if (existing.base < gms.base + gms.size &&
                gms.base < existing.base + existing.size) {
                overlaps = true;
                return;
            }
        }
    });
    if (overlaps) {
        return failCall(MonitorError::OverlapDomain,
                                   "GMS overlaps a domain region");
    }
    // The monitor region is never handed out.
    if (gms.base < config_.monitorBase + config_.monitorSize &&
        config_.monitorBase < gms.base + gms.size) {
        return failCall(MonitorError::OverlapMonitor,
                                   "GMS overlaps the monitor");
    }
    // Retired frames never re-enter circulation: a poisoned page
    // stays out of every future grant.
    if (!quarantine_.empty()) {
        for (Addr p = gms.base; p < gms.base + gms.size; p += kPageSize) {
            if (pageQuarantined(p)) {
                return failCall(MonitorError::QuarantinedPage,
                                "GMS overlaps a quarantined page");
            }
        }
    }

    return transact("addGms", [&](Txn &txn) {
        txn.touch(id);
        if (FAULT_POINT("monitor.add_gms")) {
            throw MonitorAbort{MonitorError::InjectedFault,
                               "injected fault at monitor.add_gms"};
        }
        dom->gmsList.push_back(gms);
        if (gms.label == GmsLabel::Fast)
            dom->gmsList.back().heat = ++heatClock_;

        // Cache-based management: every GMS always enters the table
        // (when the scheme has one); segments only mirror the fast
        // ones.
        if (config_.scheme == IsolationScheme::PmpTable ||
            config_.scheme == IsolationScheme::Hpmp) {
            tableOf(id);
            writeGmsToTable(*dom, dom->gmsList.back());
        }

        bool flushed = false;
        bool degraded = false;
        if (id == current_) {
            degraded = applyLayout();
            flushed = true;
        }
        return txn.commit(flushed, degraded);
    });
}

MonitorResult
SecureMonitor::removeGms(DomainId id, Addr base)
{
    if (rasFatal_)
        return failRasFatal();
    Domain *dom = findDomain(id);
    if (!dom)
        return failNoDomain(id);
    if (dom->migrating) {
        return failCall(MonitorError::DomainMigrating,
                        "domain is suspended for migration");
    }
    auto it = dom->gmsList.begin();
    for (; it != dom->gmsList.end(); ++it) {
        if (it->base == base)
            break;
    }
    if (it == dom->gmsList.end())
        return failCall(MonitorError::NoSuchGms,
                                   "no GMS at this base");

    return transact("removeGms", [&](Txn &txn) {
        txn.touch(id);
        if (FAULT_POINT("monitor.remove_gms")) {
            throw MonitorAbort{MonitorError::InjectedFault,
                               "injected fault at monitor.remove_gms"};
        }
        if (dom->table)
            dom->table->setPerm(it->base, it->size, Perm::none());
        dom->gmsList.erase(it);

        bool flushed = false;
        bool degraded = false;
        if (id == current_) {
            degraded = applyLayout();
            flushed = true;
        }
        return txn.commit(flushed, degraded);
    });
}

MonitorResult
SecureMonitor::setLabel(DomainId id, Addr base, GmsLabel label)
{
    if (rasFatal_)
        return failRasFatal();
    Domain *dom = findDomain(id);
    if (!dom)
        return failNoDomain(id);
    if (dom->migrating) {
        return failCall(MonitorError::DomainMigrating,
                        "domain is suspended for migration");
    }
    for (Gms &gms : dom->gmsList) {
        if (gms.base != base)
            continue;
        return transact("setLabel", [&](Txn &txn) {
            txn.touch(id);
            if (FAULT_POINT("monitor.set_label")) {
                throw MonitorAbort{MonitorError::InjectedFault,
                                   "injected fault at monitor.set_label"};
            }
            gms.label = label;
            if (label == GmsLabel::Fast)
                gms.heat = ++heatClock_;
            // Labels only affect which GMSs sit in segment entries:
            // registers change, tables do not (§5, cache-based mgmt).
            bool flushed = false;
            bool degraded = false;
            if (id == current_) {
                degraded = applyLayout();
                flushed = true;
            }
            return txn.commit(flushed, degraded);
        });
    }
    return failCall(MonitorError::NoSuchGms,
                               "no GMS at this base");
}

MonitorResult
SecureMonitor::setPerm(DomainId id, Addr base, Perm perm)
{
    if (rasFatal_)
        return failRasFatal();
    Domain *dom = findDomain(id);
    if (!dom)
        return failNoDomain(id);
    if (dom->migrating) {
        return failCall(MonitorError::DomainMigrating,
                        "domain is suspended for migration");
    }
    for (Gms &gms : dom->gmsList) {
        if (gms.base != base)
            continue;
        if (gms.shared) {
            // Narrowing the owner's copy would leave peers holding a
            // wider permission than the owner — revoke the share
            // first, then change the permission.
            return failCall(
                MonitorError::BadArgument,
                "cannot change the permission of a shared GMS");
        }
        return transact("setPerm", [&](Txn &txn) {
            txn.touch(id);
            if (FAULT_POINT("monitor.set_perm")) {
                throw MonitorAbort{MonitorError::InjectedFault,
                                   "injected fault at monitor.set_perm"};
            }
            gms.perm = perm;
            if (dom->table)
                writeGmsToTable(*dom, gms);
            bool flushed = false;
            bool degraded = false;
            if (id == current_) {
                degraded = applyLayout();
                flushed = true;
            }
            return txn.commit(flushed, degraded);
        });
    }
    return failCall(MonitorError::NoSuchGms,
                               "no GMS at this base");
}

MonitorResult
SecureMonitor::shareGms(DomainId owner, Addr base, DomainId peer,
                        Perm perm)
{
    if (rasFatal_)
        return failRasFatal();
    if (owner == peer)
        return failCall(MonitorError::BadArgument,
                                   "cannot share with self");
    Domain *own = findDomain(owner);
    Domain *dst = findDomain(peer);
    if (!own || !dst)
        return failNoDomain(own ? peer : owner);
    if (own->migrating || dst->migrating) {
        return failCall(MonitorError::DomainMigrating,
                        "domain is suspended for migration");
    }

    for (Gms &gms : own->gmsList) {
        if (gms.base != base)
            continue;
        if ((perm.r && !gms.perm.r) || (perm.w && !gms.perm.w) ||
            (perm.x && !gms.perm.x)) {
            return failCall(
                MonitorError::PermExceedsOwner,
                "shared permission exceeds the owner's");
        }
        for (const Gms &existing : dst->gmsList) {
            if (existing.base < gms.base + gms.size &&
                gms.base < existing.base + existing.size) {
                return failCall(
                    MonitorError::OverlapDomain,
                    "peer already maps an overlapping region");
            }
        }
        return transact("shareGms", [&](Txn &txn) {
            txn.touch(owner);
            txn.touch(peer);
            if (FAULT_POINT("monitor.share_gms")) {
                throw MonitorAbort{MonitorError::InjectedFault,
                                   "injected fault at monitor.share_gms"};
            }
            gms.shared = true;
            Gms shared_view = gms;
            shared_view.perm = perm;
            shared_view.label = GmsLabel::Slow;
            shared_view.heat = 0;
            dst->gmsList.push_back(shared_view);
            if (config_.scheme == IsolationScheme::PmpTable ||
                config_.scheme == IsolationScheme::Hpmp) {
                tableOf(peer);
                writeGmsToTable(*dst, dst->gmsList.back());
            }
            bool flushed = false;
            bool degraded = false;
            if (peer == current_ || owner == current_) {
                degraded = applyLayout();
                flushed = true;
            }
            return txn.commit(flushed, degraded);
        });
    }
    return failCall(MonitorError::NoSuchGms,
                               "no GMS at this base");
}

MonitorValue<MerkleHash>
SecureMonitor::measureDomain(DomainId id) const
{
    const Domain *dom = domains_.find(id);
    if (!dom) {
        const MonitorError code = lookupError(id);
        noteResult(false, code, 0, false, false);
        return MonitorValue<MerkleHash>::fail(
            code, code == MonitorError::StaleHandle
                      ? "stale domain handle: the id was recycled"
                      : "no such domain");
    }
    MonitorValue<MerkleHash> result;
    result.value = 0x4d4541535552u; // "MEASUR"
    for (const Gms &gms : dom->gmsList) {
        result.value = Attestor::fold(
            result.value,
            Attestor::measure(machine_.mem(), gms.base, gms.size));
    }
    noteResult(true, MonitorError::None, 0, false, false);
    return result;
}

MonitorValue<AttestationReport>
SecureMonitor::attestDomain(DomainId id, uint64_t nonce) const
{
    // Attestation is read-only: an injected fault fails the call
    // before any measurement leaks, with nothing to roll back.
    if (FAULT_POINT("monitor.attest")) {
        noteResult(false, MonitorError::InjectedFault, 0, false, false);
        return MonitorValue<AttestationReport>::fail(
            MonitorError::InjectedFault,
            "injected fault at monitor.attest");
    }
    const MonitorValue<MerkleHash> measure = measureDomain(id);
    if (!measure.ok) {
        return MonitorValue<AttestationReport>::fail(measure.code,
                                                     measure.error);
    }
    MonitorValue<AttestationReport> result;
    result.value = attestor_.sign(measure.value, nonce);
    return result;
}

MonitorResult
SecureMonitor::hintHotRegion(DomainId id, Addr base, uint64_t size)
{
    if (rasFatal_)
        return failRasFatal();
    if (!isPowerOf2(size) || size < kPageSize || base % size != 0)
        return failCall(MonitorError::BadArgument,
                                   "hot region must be NAPOT");

    Domain *dom = findDomain(id);
    if (!dom)
        return failNoDomain(id);
    if (dom->migrating) {
        return failCall(MonitorError::DomainMigrating,
                        "domain is suspended for migration");
    }
    for (size_t i = 0; i < dom->gmsList.size(); ++i) {
        Gms covering = dom->gmsList[i];
        if (!(covering.base <= base &&
              base + size <= covering.base + covering.size)) {
            continue;
        }
        if (covering.shared) {
            // Splitting would desynchronize the owner's view from the
            // peers' (they keep the unsplit region), breaking the
            // shared-region auditing invariant.
            return failCall(
                MonitorError::BadArgument,
                "cannot split a shared GMS");
        }
        if (covering.base == base && covering.size == size)
            return setLabel(id, base, GmsLabel::Fast);

        return transact("hintHotRegion", [&](Txn &txn) {
            txn.touch(id);
            if (FAULT_POINT("monitor.hint")) {
                throw MonitorAbort{MonitorError::InjectedFault,
                                   "injected fault at monitor.hint"};
            }
            // Split into [left][hot][right]; permissions unchanged, so
            // the table is untouched (registers only — the cheap path).
            dom->gmsList.erase(dom->gmsList.begin() + long(i));
            if (covering.base < base) {
                dom->gmsList.push_back(Gms{covering.base,
                                           base - covering.base,
                                           covering.perm, covering.label,
                                           covering.shared,
                                           covering.heat});
            }
            dom->gmsList.push_back(Gms{base, size, covering.perm,
                                       GmsLabel::Fast, covering.shared,
                                       ++heatClock_});
            const Addr end = base + size;
            const Addr cov_end = covering.base + covering.size;
            if (end < cov_end) {
                dom->gmsList.push_back(Gms{end, cov_end - end,
                                           covering.perm, covering.label,
                                           covering.shared,
                                           covering.heat});
            }

            bool flushed = false;
            bool degraded = false;
            if (id == current_) {
                degraded = applyLayout();
                flushed = true;
            }
            return txn.commit(flushed, degraded);
        });
    }
    return failCall(MonitorError::NoSuchGms,
                               "no GMS covers the hot region");
}

MonitorResult
SecureMonitor::switchTo(DomainId id)
{
    if (rasFatal_)
        return failRasFatal();
    Domain *dom = findDomain(id);
    if (!dom)
        return failNoDomain(id);
    if (dom->migrating) {
        // The revoke half of a migration suspend: the domain cannot be
        // scheduled onto this host while its memory is in flight.
        return failCall(MonitorError::DomainMigrating,
                        "domain is suspended for migration");
    }
    return transact("switchTo", [&](Txn &txn) {
        if (FAULT_POINT("monitor.switch")) {
            throw MonitorAbort{MonitorError::InjectedFault,
                               "injected fault at monitor.switch"};
        }
        current_ = id;
        DPRINTF(Monitor, "switchTo domain=%u\n", id);
        const bool degraded = applyLayout();
        return txn.commit(true, degraded);
    });
}

MonitorResult
SecureMonitor::suspendDomain(DomainId id)
{
    if (rasFatal_)
        return failRasFatal();
    if (id == 0) {
        return failCall(MonitorError::BadArgument,
                        "cannot migrate the host domain");
    }
    Domain *dom = findDomain(id);
    if (!dom)
        return failNoDomain(id);
    if (dom->migrating) {
        return failCall(MonitorError::DomainMigrating,
                        "domain is already migrating");
    }
    if (current_ == id) {
        // Quiesce order matters: the migration engine switches this
        // host to domain 0 *before* suspending, so the suspend itself
        // flips one flag — no register or pmpte write — and an abort's
        // resumeDomain() restores a bit-identical stateDigest.
        return failCall(MonitorError::BadArgument,
                        "suspending the running domain: switch away "
                        "first (quiesce before revoke)");
    }
    return transact("suspendDomain", [&](Txn &txn) {
        txn.touch(id);
        if (FAULT_POINT("monitor.suspend")) {
            throw MonitorAbort{MonitorError::InjectedFault,
                               "injected fault at monitor.suspend"};
        }
        dom->migrating = true;
        DPRINTF(Monitor, "suspend domain=%u for migration\n", id);
        return txn.commit(false);
    });
}

MonitorResult
SecureMonitor::resumeDomain(DomainId id)
{
    if (rasFatal_)
        return failRasFatal();
    Domain *dom = findDomain(id);
    if (!dom)
        return failNoDomain(id);
    if (!dom->migrating) {
        return failCall(MonitorError::BadArgument,
                        "domain is not suspended for migration");
    }
    return transact("resumeDomain", [&](Txn &txn) {
        txn.touch(id);
        if (FAULT_POINT("monitor.resume")) {
            throw MonitorAbort{MonitorError::InjectedFault,
                               "injected fault at monitor.resume"};
        }
        dom->migrating = false;
        DPRINTF(Monitor, "resume domain=%u after migration abort\n", id);
        return txn.commit(false);
    });
}

bool
SecureMonitor::domainMigrating(DomainId id) const
{
    const Domain *dom = domains_.find(id);
    return dom && dom->migrating;
}

bool
SecureMonitor::domainGrantable(DomainId id) const
{
    const Domain *dom = domains_.find(id);
    return dom && dom->alive && !dom->migrating;
}

bool
SecureMonitor::pageQuarantined(Addr pa) const
{
    return quarantine_.count(pa & ~Addr(kPageSize - 1)) != 0;
}

void
SecureMonitor::quarantinePage(Addr pa)
{
    const Addr page = pa & ~Addr(kPageSize - 1);
    if (!quarantine_.insert(page).second)
        return;
    ++statRasQuarantines_;
    // Retire the frame: backing dropped, poison bits kept, so later
    // touches keep machine-checking instead of reading fresh zeros
    // where the lost data used to be.
    machine_.mem().releasePage(page);
    DPRINTF(Monitor, "quarantine page %#lx\n", page);
}

void
SecureMonitor::enterRasFatal(Addr pa)
{
    rasFatal_ = true;
    ++statRasFatal_;
    DPRINTF(Monitor, "RAS-fatal: uncontainable poison at %#lx\n", pa);
}

MonitorResult
SecureMonitor::failRasFatal() const
{
    return failCall(MonitorError::RasFatal,
                    "host degraded by an uncontained memory error");
}

void
SecureMonitor::scrubFreedGms(const std::vector<Gms> &freed)
{
    PhysMem &mem = machine_.mem();
    for (const Gms &gms : freed) {
        // A shared region survives in a peer's address space: its
        // contents are still live and must not be wiped.
        if (gms.shared)
            continue;
        for (Addr p = gms.base; p < gms.base + gms.size;
             p += kPageSize) {
            if (pageQuarantined(p))
                continue;
            mem.releasePage(p);
            ++statRasScrubbed_;
        }
    }
}

MonitorResult
SecureMonitor::healTable(DomainId id)
{
    Domain *dom = findDomain(id);
    panic_if(!dom || !dom->table, "healTable without a table");
    return transact("healTable", [&](Txn &txn) {
        txn.touch(id);
        if (FAULT_POINT("monitor.heal_table")) {
            throw MonitorAbort{MonitorError::InjectedFault,
                               "injected fault at monitor.heal_table"};
        }
        // The dying table's stores keep counting, as on destroy.
        tableWritesTotal_ += dom->table->entryWrites();
        txn.stashTable(id, std::move(dom->table));
        // Rebuild from the monitor's authoritative layout into fresh
        // frames: the poisoned pmpte bytes are never read.
        dom->table = std::make_unique<PmpTable>(
            machine_.mem(),
            [this](unsigned npages) { return allocTableFrame(npages); },
            config_.pmptLevels);
        dom->table->setWriteAggregate(&tableWritesAgg_);
        dom->table->setJournal(&txn.journal_);
        for (const Gms &gms : dom->gmsList)
            writeGmsToTable(*dom, gms);

        bool degraded = false;
        if (id == current_) {
            // The running domain's root moved: reprogram the
            // registers and run the real shootdown (non-empty diff).
            degraded = applyLayout();
        } else {
            // No register points at the rebuilt table, but PMPTW
            // caches may hold pmptes of the old frames from when the
            // domain last ran: fence every hart anyway (fail closed
            // on lost IPIs).
            machine_.sfenceVma();
            machine_.hpmp().flushCache();
            remoteShootdown();
        }
        return txn.commit(true, degraded);
    });
}

MonitorValue<RasOutcome>
SecureMonitor::handleMachineCheck(Addr pa)
{
    ++statRasReports_;
    const Addr page = pa & ~Addr(kPageSize - 1);
    MonitorValue<RasOutcome> result;
    if (pageQuarantined(page)) {
        // The frame is already retired; nothing new to contain.
        result.value = RasOutcome::AlreadyQuarantined;
        noteResult(true, MonitorError::None, 0, false, false);
        return result;
    }
    if (rasFatal_) {
        noteResult(false, MonitorError::RasFatal, 0, false, false);
        return MonitorValue<RasOutcome>::fail(
            MonitorError::RasFatal,
            "host degraded by an uncontained memory error");
    }

    // Class 1 — a pmpte frame of a live domain's PMP Table: the
    // monitor holds the authoritative layout, so rebuild instead of
    // killing the domain.
    DomainId tableOwner = 0;
    bool ownsTable = false;
    domains_.forEach([&](DomainId id, const Domain &dom) {
        if (!ownsTable && dom.table && dom.table->isTablePage(page)) {
            tableOwner = id;
            ownsTable = true;
        }
    });
    if (ownsTable) {
        // Measurement oracle around the rebuild: self-heal must not
        // change what the domain attests to.
        const MonitorValue<MerkleHash> pre = measureDomain(tableOwner);
        const std::vector<Addr> oldFrames =
            domain(tableOwner).table->tablePages();
        const MonitorResult heal = healTable(tableOwner);
        if (!heal.ok) {
            if (heal.code == MonitorError::OutOfTableFrames) {
                // The monitor cannot rebuild: degrade the whole host
                // rather than keep checking against poisoned pmptes.
                enterRasFatal(pa);
                quarantinePage(page);
                result.value = RasOutcome::HostFatal;
                noteResult(true, MonitorError::None, 0, true, false);
                return result;
            }
            noteResult(false, heal.code, 0, false, false);
            return MonitorValue<RasOutcome>::fail(heal.code,
                                                  heal.error);
        }
        quarantinePage(page);
        // The other old frames hold only dead pmptes (bump-allocated
        // monitor frames are never reissued): drop their backing.
        for (const Addr frame : oldFrames) {
            if (!pageQuarantined(frame))
                machine_.mem().releasePage(frame);
        }
        const MonitorValue<MerkleHash> post = measureDomain(tableOwner);
        panic_if(pre.ok != post.ok ||
                     (pre.ok && pre.value != post.value),
                 "self-heal changed domain %u's measurement",
                 tableOwner);
        ++statRasHeals_;
        result.value = RasOutcome::HealedTable;
        noteResult(true, MonitorError::None, heal.cycles,
                   heal.degraded, false);
        return result;
    }

    // Class 2 — monitor-private state (or a table frame the registry
    // cannot attribute): no containment boundary is left below the
    // TCB. The host degrades; read paths stay up, grants stop.
    if (page >= config_.monitorBase &&
        page < config_.monitorBase + config_.monitorSize) {
        enterRasFatal(pa);
        quarantinePage(page);
        result.value = RasOutcome::HostFatal;
        noteResult(true, MonitorError::None, 0, true, false);
        return result;
    }

    // Class 3 — a live enclave's data page: retire the frame and
    // destroy only the owning domain. Siblings and the host keep
    // running (the blast-radius contract the chaos campaign audits).
    DomainId victim = 0;
    bool owned = false;
    domains_.forEach([&](DomainId id, const Domain &dom) {
        if (owned)
            return;
        for (const Gms &gms : dom.gmsList) {
            if (gms.base <= pa && pa < gms.base + gms.size) {
                victim = id;
                owned = true;
                return;
            }
        }
    });
    if (owned && victim != 0) {
        const MonitorResult destroy = destroyDomain(victim);
        if (!destroy.ok) {
            noteResult(false, destroy.code, 0, false, false);
            return MonitorValue<RasOutcome>::fail(destroy.code,
                                                  destroy.error);
        }
        quarantinePage(page);
        ++statRasContained_;
        DPRINTF(Monitor, "contained poison %#lx: domain %u destroyed\n",
                pa, victim);
        result.value = RasOutcome::ContainedDomain;
        noteResult(true, MonitorError::None, destroy.cycles,
                   destroy.degraded, false);
        return result;
    }

    // The host's own page (domain 0 cannot be destroyed) or an
    // unowned free frame: retire it in place.
    quarantinePage(page);
    result.value = RasOutcome::QuarantinedFree;
    noteResult(true, MonitorError::None, 0, false, false);
    return result;
}

const std::vector<Gms> &
SecureMonitor::gmsOf(DomainId id) const
{
    return domain(id).gmsList;
}

bool
SecureMonitor::applyLayout()
{
    HpmpUnit &unit = machine_.hpmp();
    const unsigned entries = unit.regs().numEntries();
    // The layout pass mutates the current domain (Hpmp demotions, lazy
    // table creation), so it joins the transaction's touched set.
    if (activeTxn_)
        activeTxn_->touch(current_);
    Domain &dom = domain(current_);
    bool degraded = false;

    // Build the complete desired register image, then diff it against
    // the live registers: only changed CSRs are written (the paper's
    // incremental path — a steady-state switch between domains with
    // mostly shared layout costs ~2 CSR writes, not all 32). Entries
    // not claimed below default to OFF, which subsumes the old
    // disable-stale-entries pass.
    LayoutImage img(entries);

    // Entry 0 stays on the monitor region; everything else is ours.
    img.segment(0, config_.monitorBase, config_.monitorSize, Perm::none());
    unsigned next_entry = 1;
    auto napot_ok = [](const Gms &gms) {
        return isPowerOf2(gms.size) && gms.size >= 8 &&
               gms.base % gms.size == 0;
    };
    auto image_segment = [&](const Gms &gms) {
        img.segment(next_entry++, gms.base, gms.size, gms.perm);
    };

    switch (config_.scheme) {
      case IsolationScheme::None:
        break;
      case IsolationScheme::Pmp:
        for (const Gms &gms : dom.gmsList) {
            if (!napot_ok(gms)) {
                throw MonitorAbort{
                    MonitorError::BadArgument,
                    "non-NAPOT GMS cannot use a segment entry"};
            }
            if (next_entry >= entries) {
                throw MonitorAbort{MonitorError::OutOfPmpEntries,
                                   "no available PMP entry"};
            }
            image_segment(gms);
        }
        break;
      case IsolationScheme::PmpTable: {
        if (next_entry + 1 >= entries) {
            throw MonitorAbort{MonitorError::OutOfPmpEntries,
                               "no entries left for the PMP table"};
        }
        PmpTable &table = tableOf(current_);
        img.table(next_entry, 0, machine_.params().physMemBytes,
                  table.rootPa(), table.levels());
        next_entry += 2;
        break;
      }
      case IsolationScheme::Hpmp: {
        // Fast GMSs first (higher priority = acts as a cache of the
        // table); then one table-mode pair covering everything. When
        // there are more fast GMSs than segment entries, demote the
        // coldest to table mode — the region stays protected (the
        // table always covers it), checks just get slower. This is
        // the documented degraded mode; callers see result.degraded.
        std::vector<size_t> fast;
        for (size_t i = 0; i < dom.gmsList.size(); ++i) {
            if (dom.gmsList[i].label == GmsLabel::Fast &&
                napot_ok(dom.gmsList[i])) {
                fast.push_back(i);
            }
        }
        const unsigned budget = segmentBudget();
        if (fast.size() > budget) {
            std::sort(fast.begin(), fast.end(),
                      [&dom](size_t a, size_t b) {
                          const Gms &ga = dom.gmsList[a];
                          const Gms &gb = dom.gmsList[b];
                          if (ga.heat != gb.heat)
                              return ga.heat > gb.heat;
                          return a < b;
                      });
            for (size_t k = budget; k < fast.size(); ++k) {
                dom.gmsList[fast[k]].label = GmsLabel::Slow;
                degraded = true;
                ++statDemotions_;
                DPRINTF(Monitor, "demote coldest GMS base=%#lx to table\n",
                        dom.gmsList[fast[k]].base);
            }
            fast.resize(budget);
            std::sort(fast.begin(), fast.end());
        }
        for (size_t idx : fast)
            image_segment(dom.gmsList[idx]);
        if (next_entry + 1 >= entries) {
            throw MonitorAbort{MonitorError::OutOfPmpEntries,
                               "no entries left for the PMP table"};
        }
        PmpTable &table = tableOf(current_);
        img.table(next_entry, 0, machine_.params().physMemBytes,
                  table.rootPa(), table.levels());
        next_entry += 2;
        break;
      }
    }

    unit.applyImage(img);

    // Any isolation-state change requires TLB + PMPTW synchronization
    // on the hart that executed it — even a zero-write diff, because
    // table *contents* may have changed under an unchanged root.
    if (!smp_) {
        machine_.sfenceVma();
        unit.flushCache();
        return degraded;
    }

    // Multi-hart: fence the initiating hart synchronously (its trap
    // returns to the new state), then shoot down everyone else.
    Machine &initiator = smp_->hart(smp_->currentHart());
    if (&initiator != &machine_) {
        initiator.hpmp().syncRegsFrom(machine_.hpmp());
        pendingIpiCycles_ += config_.costs.remoteFenceCycles;
    }
    initiator.sfenceVma();
    initiator.hpmp().flushCache();
    machine_.hpmp().flushCache();

    // Empty-diff fast path: a same-layout commit (e.g. re-switching to
    // the already-current domain) wrote no CSRs and no pmptes, so
    // sibling harts hold nothing stale — the remote shootdown *and*
    // the guest fences are elided. Single-hart SmpSystems skip this so
    // they stay bit-identical to a standalone Machine.
    const uint64_t csr_delta = machine_.hpmp().csrWrites() - csrSnapshot_;
    const uint64_t table_delta = tableWritesAgg_ - tableWriteSnapshot_;
    if (smp_->numHarts() > 1 && csr_delta == 0 && table_delta == 0) {
        ++statIpiElided_;
        if (smp_->virtEnabled())
            smp_->noteHfenceElided();
        return degraded;
    }

    // Virt-enabled: physical permissions are inlined into combined-TLB
    // entries, so the initiating hart's guest view must drop with its
    // sfence — the remote harts get theirs inside the shootdown.
    if (smp_->virtEnabled()) {
        smp_->virtHart(smp_->currentHart()).hfenceGvma();
        pendingHfenceCycles_ += config_.costs.hfenceCycles;
    }
    if (coalesceActive_ && smp_->numHarts() > 1)
        deferShootdown();
    else
        remoteShootdown();
    return degraded;
}

void
SecureMonitor::deferShootdown()
{
    const unsigned committer = smp_->currentHart();
    ++coalescedCommits_;
    lastCommitter_ = committer;
    if (!coalescedOpen_) {
        coalescedOpen_ = true;
        coalescedSeq_ = smp_->nextIpiSeq();
        smp_->notifyStep({IpiPhase::WindowBegin, committer, committer,
                          coalescedSeq_});
    } else {
        // Later commits move the canonical state the pending flush
        // will fence everyone to; checkers refresh their oracle here.
        smp_->notifyStep({IpiPhase::CoalescedCommit, committer,
                          committer, coalescedSeq_});
    }
}

void
SecureMonitor::beginCoalescedWindow()
{
    panic_if(coalesceActive_, "nested coalesced windows");
    panic_if(activeTxn_, "beginCoalescedWindow inside a monitor call");
    coalesceActive_ = true;
    coalescedCommits_ = 0;
    // Parent span for the whole epoch: it stays the current trace
    // context until endCoalescedWindow, so every deferred commit's
    // call span (and the shared flush round) nests under it.
    coalescedSpan_ = Tracer::instance().spans().beginSpan(
        TraceFlag::Monitor, "coalesced_epoch",
        smp_ ? smp_->currentHart() : 0);
}

uint64_t
SecureMonitor::endCoalescedWindow()
{
    panic_if(!coalesceActive_, "endCoalescedWindow without begin");
    panic_if(activeTxn_, "endCoalescedWindow inside a monitor call");
    coalesceActive_ = false;
    if (!coalescedOpen_) {
        // Every call in the epoch either failed or elided: no commit
        // is pending and no window ever opened.
        coalescedCommits_ = 0;
        Tracer::instance().spans().endSpan(coalescedSpan_);
        coalescedSpan_ = 0;
        return 0;
    }

    // One shared IPI/hfence round covering every deferred commit. The
    // flush runs on the last committer's hart and holds the monitor
    // lock: a sibling hart's trap racing the flush bounces with
    // LockContended exactly as it would against a regular call.
    const unsigned initiator = lastCommitter_;
    const uint64_t seq = coalescedSeq_;
    const bool virt = smp_->virtEnabled();
    panic_if(!smp_->tryAcquireMonitorLock(initiator),
             "coalesced flush raced a monitor call");

    ++statIpiShootdowns_;
    ++statCoalescedWindows_;
    statCommitsPerWindow_.sample(coalescedCommits_);
    if (virt)
        ++statHfenceShootdowns_;
    uint64_t cycles = config_.costs.ipiPostCycles;

    for (unsigned h = 0; h < smp_->numHarts(); ++h) {
        if (h == initiator)
            continue;
        // Exactly one post per sibling per window: a lost IPI inside
        // the still-open window is re-posted with bounded retries,
        // counted in ipi_retries only — never a second ipi_post (the
        // double-count would break ipi_post == windows x siblings).
        ++statIpiSent_;
        ++statIpiPost_;
        ScopedSpan hartSpan(TraceFlag::Monitor, "shootdown.hart", h, seq);
        smp_->notifyStep({IpiPhase::Posted, initiator, h, seq});
        for (unsigned attempt = 0;
             attempt < 8 && FAULT_POINT("smp.ipi_deliver"); ++attempt)
            ++statIpiRetries_;
        Machine &dst = smp_->hart(h);
        dst.hpmp().syncRegsFrom(machine_.hpmp());
        dst.sfenceVma();
        dst.hpmp().flushCache();
        if (virt) {
            ++statHfenceSent_;
            ScopedSpan hfenceSpan(TraceFlag::Monitor, "shootdown.hfence",
                                  h, seq);
            for (unsigned attempt = 0;
                 attempt < 8 && FAULT_POINT("smp.hfence_deliver");
                 ++attempt)
                ++statIpiRetries_;
            smp_->virtHart(h).hfenceGvma();
            cycles += config_.costs.hfenceCycles;
            for (unsigned attempt = 0;
                 attempt < 8 && FAULT_POINT("smp.hfence_ack"); ++attempt)
                ++statIpiRetries_;
            ++statHfenceAcked_;
        }
        smp_->notifyStep({IpiPhase::Delivered, initiator, h, seq});
        for (unsigned attempt = 0;
             attempt < 8 && FAULT_POINT("smp.ipi_ack"); ++attempt)
            ++statIpiRetries_;
        cycles += config_.costs.ipiAckCycles +
                  config_.costs.remoteFenceCycles;
        ++statIpiAcked_;
        smp_->notifyStep({IpiPhase::Acked, initiator, h, seq});
    }

    coalescedOpen_ = false;
    coalescedCommits_ = 0;
    smp_->notifyStep({IpiPhase::WindowEnd, initiator, initiator, seq});
    statIpiCycles_.sample(cycles);
    smp_->releaseMonitorLock(initiator);
    Tracer::instance().spans().endSpan(coalescedSpan_, coalescedCommits_,
                                       cycles);
    coalescedSpan_ = 0;
    return cycles;
}

void
SecureMonitor::remoteShootdown()
{
    if (!smp_ || smp_->numHarts() == 1)
        return;
    const unsigned initiator = smp_->currentHart();
    const uint64_t seq = smp_->nextIpiSeq();
    const bool virt = smp_->virtEnabled();
    // Mutation knob (testSkipFenceNth): sabotage exactly one shootdown
    // by acking siblings without fencing them.
    const bool skipFence =
        skipFenceNth_ != 0 && ++skipFenceSeen_ == skipFenceNth_;
    ++statIpiShootdowns_;
    if (virt)
        ++statHfenceShootdowns_;
    pendingIpiCycles_ += config_.costs.ipiPostCycles;
    ipiWindowOpen_ = true;
    ipiWindowSeq_ = seq;
    // Window and per-sibling spans close by RAII on both the normal
    // path (at WindowEnd below) and an abort's unwind, so a failed
    // shootdown's trace shows exactly which sibling's fence died.
    ScopedSpan windowSpan(TraceFlag::Monitor, "shootdown.window",
                          initiator, seq);
    smp_->notifyStep({IpiPhase::WindowBegin, initiator, initiator, seq});

    for (unsigned h = 0; h < smp_->numHarts(); ++h) {
        if (h == initiator)
            continue;
        ++statIpiSent_;
        ScopedSpan hartSpan(TraceFlag::Monitor, "shootdown.hart", h, seq);
        smp_->notifyStep({IpiPhase::Posted, initiator, h, seq});
        // A lost or glitched IPI can never leave hart h running on the
        // old state while the call commits the new one: the call fails
        // closed and the cross-hart rollback re-fences every hart back
        // to the pre-call state.
        if (FAULT_POINT("smp.ipi_deliver")) {
            ++statIpiLost_;
            throw MonitorAbort{
                MonitorError::InjectedFault,
                "lost IPI to hart " + std::to_string(h) +
                    " (smp.ipi_deliver): call fails closed"};
        }
        Machine &dst = smp_->hart(h);
        if (!skipFence) {
            dst.hpmp().syncRegsFrom(machine_.hpmp());
            dst.sfenceVma();
            dst.hpmp().flushCache();
        }
        // The guest fence rides the same IPI: the handler executes
        // hfence.gvma after the sfence, with its own delivery/ack
        // fault sites. A dropped guest fence can never leave hart h
        // serving combined/G-stage entries that inline the old layout
        // — the call fails closed and rollback re-fences every guest.
        if (virt) {
            ++statHfenceSent_;
            ScopedSpan hfenceSpan(TraceFlag::Monitor, "shootdown.hfence",
                                  h, seq);
            if (FAULT_POINT("smp.hfence_deliver")) {
                ++statHfenceLost_;
                throw MonitorAbort{
                    MonitorError::InjectedFault,
                    "lost guest fence on hart " + std::to_string(h) +
                        " (smp.hfence_deliver): call fails closed"};
            }
            smp_->virtHart(h).hfenceGvma();
            pendingHfenceCycles_ += config_.costs.hfenceCycles;
            if (FAULT_POINT("smp.hfence_ack")) {
                ++statHfenceLost_;
                throw MonitorAbort{
                    MonitorError::InjectedFault,
                    "lost guest-fence ack from hart " +
                        std::to_string(h) +
                        " (smp.hfence_ack): call fails closed"};
            }
            ++statHfenceAcked_;
        }
        smp_->notifyStep({IpiPhase::Delivered, initiator, h, seq});
        if (FAULT_POINT("smp.ipi_ack")) {
            ++statIpiLost_;
            throw MonitorAbort{
                MonitorError::InjectedFault,
                "lost IPI ack from hart " + std::to_string(h) +
                    " (smp.ipi_ack): call fails closed"};
        }
        pendingIpiCycles_ +=
            config_.costs.ipiAckCycles + config_.costs.remoteFenceCycles;
        ++statIpiAcked_;
        smp_->notifyStep({IpiPhase::Acked, initiator, h, seq});
    }

    ipiWindowOpen_ = false;
    smp_->notifyStep({IpiPhase::WindowEnd, initiator, initiator, seq});
}

uint64_t
SecureMonitor::stateDigest(bool include_table_contents) const
{
    return digestWith(machine_.hpmp(), include_table_contents);
}

uint64_t
SecureMonitor::hartStateDigest(unsigned hart, bool include_table_contents,
                               bool include_virt,
                               bool include_csr_counter) const
{
    if (!smp_) {
        panic_if(hart != 0,
                 "hartStateDigest(%u) on a single-machine monitor", hart);
        return digestWith(machine_.hpmp(), include_table_contents,
                          include_csr_counter);
    }
    uint64_t h = digestWith(smp_->hart(hart).hpmp(), include_table_contents,
                            include_csr_counter);
    if (include_virt && smp_->virtEnabled()) {
        const VirtMachine &vm = smp_->virtHart(hart);
        h = digestFold(h, vm.vsatpRoot());
        h = digestFold(h, vm.hgatpRoot());
        h = digestFold(h, uint64_t(vm.guestPriv()));
    }
    return h;
}

uint64_t
SecureMonitor::digestWith(const HpmpUnit &unit,
                          bool include_table_contents,
                          bool include_csr_counter) const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    h = digestFold(h, current_);
    h = digestFold(h, domains_.nextIndex());
    h = digestFold(h, tableFrameNext_);
    h = digestFold(h, tableWritesTotal_);
    h = digestFold(h, heatClock_);
    h = digestFold(h, rasFatal_);
    // Order-independent fold of the quarantine set: hash-set
    // iteration order is not stable across rehashes.
    uint64_t q = 0;
    for (const Addr page : quarantine_)
        q ^= (page ^ 0x9e3779b97f4a7c15ULL) * 0x100000001b3ULL;
    h = digestFold(h, q);
    h = digestFold(h, quarantine_.size());

    // Siblings fenced by a coalesced window apply one *net* register
    // diff where the committing hart paid per-commit diffs, so their
    // CSR-write counters legitimately trail the canonical hart's.
    // Convergence checks exclude the counter; rollback checks keep it.
    if (include_csr_counter)
        h = digestFold(h, unit.csrWrites());
    const PmpUnit &regs = unit.regs();
    for (unsigned i = 0; i < regs.numEntries(); ++i) {
        h = digestFold(h, regs.addr(i));
        h = digestFold(h, regs.cfg(i).raw);
    }

    domains_.forEach([&](DomainId id, const Domain &dom) {
        h = digestFold(h, id);
        h = digestFold(h, dom.alive);
        h = digestFold(h, dom.migrating);
        for (const Gms &gms : dom.gmsList) {
            h = digestFold(h, gms.base);
            h = digestFold(h, gms.size);
            h = digestFold(h, uint64_t(gms.perm.r) | uint64_t(gms.perm.w) << 1 |
                                  uint64_t(gms.perm.x) << 2);
            h = digestFold(h, uint64_t(gms.label));
            h = digestFold(h, gms.shared);
            h = digestFold(h, gms.heat);
        }
        if (dom.table) {
            h = digestFold(h, dom.table->rootPa());
            h = digestFold(h, dom.table->levels());
            h = digestFold(h, dom.table->entryWrites());
            h = digestFold(h, dom.table->tablePages().size());
            if (include_table_contents) {
                for (const Addr page : dom.table->tablePages()) {
                    for (unsigned i = 0; i < kPageSize / 8; ++i) {
                        h = digestFold(
                            h, machine_.mem().read64(page + i * 8));
                    }
                }
            }
        }
    });
    return h;
}

} // namespace hpmp
