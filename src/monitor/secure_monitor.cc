#include "monitor/secure_monitor.h"

#include "base/bitfield.h"
#include "base/logging.h"

namespace hpmp
{

SecureMonitor::SecureMonitor(Machine &machine, const MonitorConfig &config)
    : machine_(machine),
      config_(config)
{
    fatal_if(!isPowerOf2(config.monitorSize) ||
                 config.monitorBase % config.monitorSize,
             "monitor region must be NAPOT");
    // PMP Table frames are carved from the top of the monitor region.
    tableFrameEnd_ = config.monitorBase + config.monitorSize;
    tableFrameNext_ = tableFrameEnd_ - config.monitorSize / 2;

    // Entry 0: the monitor's private memory. S/U get no access; the
    // monitor itself runs in M-mode and is unconstrained.
    machine_.hpmp().programSegment(0, config.monitorBase,
                                   config.monitorSize, Perm::none());

    // The host is domain 0.
    const DomainId host = createDomain();
    panic_if(host != 0, "host must be domain 0");
    current_ = 0;
}

SecureMonitor::Domain &
SecureMonitor::domain(DomainId id)
{
    auto it = domains_.find(id);
    panic_if(it == domains_.end() || !it->second.alive,
             "no such domain %u", id);
    return it->second;
}

const SecureMonitor::Domain &
SecureMonitor::domain(DomainId id) const
{
    auto it = domains_.find(id);
    panic_if(it == domains_.end() || !it->second.alive,
             "no such domain %u", id);
    return it->second;
}

Addr
SecureMonitor::allocTableFrame(unsigned npages)
{
    const Addr base = tableFrameNext_;
    fatal_if(base + npages * kPageSize > tableFrameEnd_,
             "monitor out of PMP-table frames");
    tableFrameNext_ += npages * kPageSize;
    return base;
}

PmpTable &
SecureMonitor::tableOf(DomainId id)
{
    Domain &dom = domain(id);
    if (!dom.table) {
        dom.table = std::make_unique<PmpTable>(
            machine_.mem(),
            [this](unsigned npages) { return allocTableFrame(npages); },
            config_.pmptLevels);
        // Replay existing GMSs into the fresh table.
        for (const Gms &gms : dom.gmsList)
            writeGmsToTable(dom, gms);
    }
    return *dom.table;
}

void
SecureMonitor::writeGmsToTable(Domain &dom, const Gms &gms)
{
    panic_if(!dom.table, "writeGmsToTable without a table");
    dom.table->setPerm(gms.base, gms.size, gms.perm, config_.hugePmpte);
}

unsigned
SecureMonitor::segmentBudget() const
{
    const unsigned entries = machine_.hpmp().regs().numEntries();
    // Entry 0 is the monitor; table mode consumes two entries.
    switch (config_.scheme) {
      case IsolationScheme::Pmp:
      case IsolationScheme::None:
        return entries - 1;
      case IsolationScheme::PmpTable:
        return 0;
      case IsolationScheme::Hpmp:
        return entries - 3;
    }
    return 0;
}

void
SecureMonitor::beginOp()
{
    csrSnapshot_ = machine_.hpmp().csrWrites();
    uint64_t table_writes = tableWritesTotal_;
    for (const auto &[id, dom] : domains_) {
        if (dom.table)
            table_writes += dom.table->entryWrites();
    }
    tableWriteSnapshot_ = table_writes;
}

uint64_t
SecureMonitor::opCycles(bool flushed)
{
    const uint64_t csr_delta = machine_.hpmp().csrWrites() - csrSnapshot_;
    uint64_t table_writes = tableWritesTotal_;
    for (const auto &[id, dom] : domains_) {
        if (dom.table)
            table_writes += dom.table->entryWrites();
    }
    const uint64_t table_delta = table_writes - tableWriteSnapshot_;

    uint64_t cycles = config_.costs.trapCycles;
    cycles += csr_delta * config_.costs.csrWriteCycles;
    cycles += table_delta * config_.costs.tableWriteCycles;
    if (flushed)
        cycles += config_.costs.flushCycles;
    return cycles;
}

DomainId
SecureMonitor::createDomain()
{
    const DomainId id = next_++;
    domains_[id] = Domain{};
    return id;
}

MonitorResult
SecureMonitor::destroyDomain(DomainId id)
{
    if (id == 0)
        return MonitorResult::fail("cannot destroy the host domain");
    auto it = domains_.find(id);
    if (it == domains_.end() || !it->second.alive)
        return MonitorResult::fail("no such domain");
    beginOp();
    if (it->second.table)
        tableWritesTotal_ += it->second.table->entryWrites();
    domains_.erase(it);
    if (current_ == id)
        current_ = 0;
    MonitorResult result;
    result.cycles = opCycles(false);
    return result;
}

MonitorResult
SecureMonitor::addGms(DomainId id, const Gms &gms)
{
    Domain &dom = domain(id);
    if (gms.size == 0 || gms.base % kPageSize || gms.size % kPageSize)
        return MonitorResult::fail("GMS must be page-granular");

    // No overlap with any domain's existing GMSs: memory ownership is
    // exclusive (the host must release regions before granting them).
    for (const auto &[other_id, other] : domains_) {
        for (const Gms &existing : other.gmsList) {
            if (existing.base < gms.base + gms.size &&
                gms.base < existing.base + existing.size) {
                return MonitorResult::fail("GMS overlaps a domain region");
            }
        }
    }
    // The monitor region is never handed out.
    if (gms.base < config_.monitorBase + config_.monitorSize &&
        config_.monitorBase < gms.base + gms.size) {
        return MonitorResult::fail("GMS overlaps the monitor");
    }

    beginOp();
    dom.gmsList.push_back(gms);

    // Cache-based management: every GMS always enters the table (when
    // the scheme has one); segments only mirror the fast ones.
    if (config_.scheme == IsolationScheme::PmpTable ||
        config_.scheme == IsolationScheme::Hpmp) {
        tableOf(id);
        writeGmsToTable(dom, dom.gmsList.back());
    }

    bool flushed = false;
    std::string error;
    uint64_t layout_cycles = 0;
    if (id == current_) {
        if (!applyLayout(layout_cycles, error)) {
            dom.gmsList.pop_back();
            return MonitorResult::fail(error);
        }
        flushed = true;
    }
    MonitorResult result;
    result.cycles = opCycles(flushed);
    return result;
}

MonitorResult
SecureMonitor::removeGms(DomainId id, Addr base)
{
    Domain &dom = domain(id);
    auto it = dom.gmsList.begin();
    for (; it != dom.gmsList.end(); ++it) {
        if (it->base == base)
            break;
    }
    if (it == dom.gmsList.end())
        return MonitorResult::fail("no GMS at this base");

    beginOp();
    if (dom.table)
        dom.table->setPerm(it->base, it->size, Perm::none());
    dom.gmsList.erase(it);

    bool flushed = false;
    if (id == current_) {
        uint64_t layout_cycles = 0;
        std::string error;
        if (!applyLayout(layout_cycles, error))
            return MonitorResult::fail(error);
        flushed = true;
    }
    MonitorResult result;
    result.cycles = opCycles(flushed);
    return result;
}

MonitorResult
SecureMonitor::setLabel(DomainId id, Addr base, GmsLabel label)
{
    Domain &dom = domain(id);
    for (Gms &gms : dom.gmsList) {
        if (gms.base == base) {
            beginOp();
            gms.label = label;
            // Labels only affect which GMSs sit in segment entries:
            // registers change, tables do not (§5, cache-based mgmt).
            bool flushed = false;
            if (id == current_) {
                uint64_t layout_cycles = 0;
                std::string error;
                if (!applyLayout(layout_cycles, error))
                    return MonitorResult::fail(error);
                flushed = true;
            }
            MonitorResult result;
            result.cycles = opCycles(flushed);
            return result;
        }
    }
    return MonitorResult::fail("no GMS at this base");
}

MonitorResult
SecureMonitor::setPerm(DomainId id, Addr base, Perm perm)
{
    Domain &dom = domain(id);
    for (Gms &gms : dom.gmsList) {
        if (gms.base == base) {
            beginOp();
            gms.perm = perm;
            if (dom.table)
                writeGmsToTable(dom, gms);
            bool flushed = false;
            if (id == current_) {
                uint64_t layout_cycles = 0;
                std::string error;
                if (!applyLayout(layout_cycles, error))
                    return MonitorResult::fail(error);
                flushed = true;
            }
            MonitorResult result;
            result.cycles = opCycles(flushed);
            return result;
        }
    }
    return MonitorResult::fail("no GMS at this base");
}

MonitorResult
SecureMonitor::shareGms(DomainId owner, Addr base, DomainId peer,
                        Perm perm)
{
    if (owner == peer)
        return MonitorResult::fail("cannot share with self");
    Domain &own = domain(owner);
    Domain &dst = domain(peer);

    for (Gms &gms : own.gmsList) {
        if (gms.base != base)
            continue;
        if ((perm.r && !gms.perm.r) || (perm.w && !gms.perm.w) ||
            (perm.x && !gms.perm.x)) {
            return MonitorResult::fail(
                "shared permission exceeds the owner's");
        }
        for (const Gms &existing : dst.gmsList) {
            if (existing.base < gms.base + gms.size &&
                gms.base < existing.base + existing.size) {
                return MonitorResult::fail(
                    "peer already maps an overlapping region");
            }
        }
        beginOp();
        gms.shared = true;
        Gms shared_view = gms;
        shared_view.perm = perm;
        shared_view.label = GmsLabel::Slow;
        dst.gmsList.push_back(shared_view);
        if (config_.scheme == IsolationScheme::PmpTable ||
            config_.scheme == IsolationScheme::Hpmp) {
            tableOf(peer);
            writeGmsToTable(dst, dst.gmsList.back());
        }
        bool flushed = false;
        if (peer == current_ || owner == current_) {
            uint64_t layout_cycles = 0;
            std::string error;
            if (!applyLayout(layout_cycles, error))
                return MonitorResult::fail(error);
            flushed = true;
        }
        MonitorResult result;
        result.cycles = opCycles(flushed);
        return result;
    }
    return MonitorResult::fail("no GMS at this base");
}

MerkleHash
SecureMonitor::measureDomain(DomainId id) const
{
    const Domain &dom = domain(id);
    MerkleHash acc = 0x4d4541535552u; // "MEASUR"
    for (const Gms &gms : dom.gmsList) {
        acc = Attestor::fold(
            acc, Attestor::measure(machine_.mem(), gms.base, gms.size));
    }
    return acc;
}

AttestationReport
SecureMonitor::attestDomain(DomainId id, uint64_t nonce) const
{
    return attestor_.sign(measureDomain(id), nonce);
}

MonitorResult
SecureMonitor::hintHotRegion(DomainId id, Addr base, uint64_t size)
{
    if (!isPowerOf2(size) || size < kPageSize || base % size != 0)
        return MonitorResult::fail("hot region must be NAPOT");

    Domain &dom = domain(id);
    for (size_t i = 0; i < dom.gmsList.size(); ++i) {
        Gms covering = dom.gmsList[i];
        if (!(covering.base <= base &&
              base + size <= covering.base + covering.size)) {
            continue;
        }
        if (covering.base == base && covering.size == size)
            return setLabel(id, base, GmsLabel::Fast);

        beginOp();
        // Split into [left][hot][right]; permissions unchanged, so
        // the table is untouched (registers only — the cheap path).
        dom.gmsList.erase(dom.gmsList.begin() + long(i));
        if (covering.base < base) {
            dom.gmsList.push_back(Gms{covering.base,
                                      base - covering.base,
                                      covering.perm, covering.label});
        }
        dom.gmsList.push_back(Gms{base, size, covering.perm,
                                  GmsLabel::Fast});
        const Addr end = base + size;
        const Addr cov_end = covering.base + covering.size;
        if (end < cov_end) {
            dom.gmsList.push_back(Gms{end, cov_end - end,
                                      covering.perm, covering.label});
        }

        bool flushed = false;
        if (id == current_) {
            uint64_t layout_cycles = 0;
            std::string error;
            if (!applyLayout(layout_cycles, error))
                return MonitorResult::fail(error);
            flushed = true;
        }
        MonitorResult result;
        result.cycles = opCycles(flushed);
        return result;
    }
    return MonitorResult::fail("no GMS covers the hot region");
}

MonitorResult
SecureMonitor::switchTo(DomainId id)
{
    domain(id); // validates
    beginOp();
    current_ = id;
    uint64_t layout_cycles = 0;
    std::string error;
    if (!applyLayout(layout_cycles, error))
        return MonitorResult::fail(error);
    MonitorResult result;
    result.cycles = opCycles(true);
    return result;
}

const std::vector<Gms> &
SecureMonitor::gmsOf(DomainId id) const
{
    return domain(id).gmsList;
}

bool
SecureMonitor::applyLayout(uint64_t &cycles, std::string &error)
{
    HpmpUnit &unit = machine_.hpmp();
    const unsigned entries = unit.regs().numEntries();
    Domain &dom = domain(current_);

    // Entry 0 stays on the monitor region; everything else is ours.
    unsigned next_entry = 1;
    auto program_segment = [&](const Gms &gms) -> bool {
        if (next_entry >= entries)
            return false;
        if (!isPowerOf2(gms.size) || gms.size < 8 ||
            gms.base % gms.size != 0) {
            return false; // not NAPOT-representable
        }
        unit.programSegment(next_entry++, gms.base, gms.size, gms.perm);
        return true;
    };

    switch (config_.scheme) {
      case IsolationScheme::None:
        break;
      case IsolationScheme::Pmp:
        for (const Gms &gms : dom.gmsList) {
            if (!program_segment(gms)) {
                error = "no available PMP entry (or non-NAPOT GMS)";
                return false;
            }
        }
        break;
      case IsolationScheme::PmpTable: {
        if (next_entry + 1 >= entries) {
            error = "no entries left for the PMP table";
            return false;
        }
        PmpTable &table = tableOf(current_);
        unit.programTable(next_entry, 0, machine_.params().physMemBytes,
                          table.rootPa(), table.levels());
        next_entry += 2;
        break;
      }
      case IsolationScheme::Hpmp: {
        // Fast GMSs first (higher priority = acts as a cache of the
        // table); then one table-mode pair covering everything.
        for (const Gms &gms : dom.gmsList) {
            if (gms.label != GmsLabel::Fast)
                continue;
            if (next_entry + 2 >= entries)
                break; // out of fast slots: the table still covers it
            if (!program_segment(gms))
                continue; // non-NAPOT fast GMS: hint ignored
        }
        if (next_entry + 1 >= entries) {
            error = "no entries left for the PMP table";
            return false;
        }
        PmpTable &table = tableOf(current_);
        unit.programTable(next_entry, 0, machine_.params().physMemBytes,
                          table.rootPa(), table.levels());
        next_entry += 2;
        break;
      }
    }

    // Disable stale entries from the previous layout.
    for (unsigned i = next_entry; i < entries; ++i) {
        if (unit.regs().cfg(i).a() != PmpAddrMode::Off ||
            unit.regs().addr(i) != 0) {
            unit.disable(i);
        }
    }

    // Any isolation-state change requires TLB + PMPTW synchronization.
    machine_.sfenceVma();
    unit.flushCache();
    cycles = 0; // accounted via CSR/table write deltas by the caller
    return true;
}

} // namespace hpmp
