#include "monitor/chaos_engine.h"

#include <algorithm>
#include <array>
#include <iterator>
#include <memory>
#include <sstream>

#include "base/fault_inject.h"
#include "base/frame_alloc.h"
#include "base/rng.h"
#include "base/stats.h"
#include "core/params.h"
#include "core/smp.h"
#include "core/virt_machine.h"
#include "hpmp/iopmp.h"
#include "mem/scrubber.h"
#include "monitor/invariants.h"
#include "monitor/secure_monitor.h"
#include "monitor/stale_checker.h"
#include "os/address_space.h"
#include "os/kernel.h"
#include "pt/page_table.h"
#include "pt/pte.h"

namespace hpmp
{

namespace
{

/**
 * Each domain draws its regions from a 64 MiB window keyed by its id,
 * far above the monitor region. Windows bound PMP-table growth (a few
 * leaf pages per domain) and make same-window collisions — rejected
 * overlapping registrations — a regularly exercised path.
 */
constexpr Addr kWindowBase = 256_MiB;
constexpr uint64_t kWindowSize = 64_MiB;
constexpr unsigned kWindows = 10;
constexpr unsigned kMaxDomains = 6;
/**
 * High enough that a domain's fast-GMS count regularly exceeds the
 * Hpmp segment budget (numEntries - 3 = 13), so the demote-to-table
 * degraded mode is exercised, not just unit-tested.
 */
constexpr unsigned kMaxGmsPerDomain = 24;
constexpr DomainId kBogusDomain = 777777;

Addr
windowOf(DomainId id)
{
    return kWindowBase + (id % kWindows) * kWindowSize;
}

/**
 * Campaign machines run with the PMPTW-Cache enabled (the paper keeps
 * it off by default): the monitor must keep the cached leaf pmptes
 * coherent across every shootdown and rollback path, and the stale
 * probes audit exactly that. This is also what makes the benign
 * "pmptw_cache.fill" drop site reachable for the coverage gate.
 */
MachineParams
chaosMachineParams()
{
    MachineParams p = rocketParams();
    p.pmptwEntries = 8;
    return p;
}

Perm
randomPerm(Rng &rng)
{
    switch (rng.below(5)) {
      case 0: return Perm::rw();
      case 1: return Perm::ro();
      case 2: return Perm::rx();
      case 3: return Perm::none();
      default: return Perm::rwx();
    }
}

uint64_t
randomNapotSize(Rng &rng)
{
    // 4 KiB .. 4 MiB, biased small so many regions fit one window.
    static constexpr uint64_t sizes[] = {
        4_KiB, 4_KiB, 8_KiB, 16_KiB, 64_KiB, 256_KiB, 1_MiB, 4_MiB,
    };
    return sizes[rng.below(std::size(sizes))];
}

/**
 * Multi-hart campaign geometry: each hart's kernel (OS layer) owns a
 * NAPOT region far above the chaos windows, so domain-lifecycle chaos
 * and OS traffic collide only where the ops make them collide.
 */
constexpr Addr kKernelMemBase = 2_GiB;
constexpr uint64_t kKernelMemBytes = 32_MiB;
constexpr uint64_t kKernelMemStride = 64_MiB;
/** Watch mappings live above the mmap arena so they are never unmapped. */
constexpr Addr kWatchVaBase = 0x7f000000;

/**
 * Virt-campaign geometry (--virt): each hart's guest draws everything
 * — two nested tables, a guest table and its data pages — from a
 * 64 MiB arena far above the chaos windows and the kernel arenas. One
 * NAPOT GMS of the host domain covers all arenas, so domain switches
 * churn the guests' *physical* stage while the guest ops churn the
 * VS- and G-stages independently.
 */
constexpr Addr kVirtArenaBase = 4_GiB;
constexpr uint64_t kVirtArenaStride = 64_MiB;
constexpr uint64_t kVirtArenaSpan = 512_MiB; //!< covers up to 8 harts
constexpr Addr kVirtNptAOff = 0;
constexpr Addr kVirtNptBOff = 4_MiB;
constexpr Addr kVirtGptOff = 8_MiB;
constexpr uint64_t kVirtGptPoolBytes = 4_MiB;
constexpr Addr kVirtDataOff = 16_MiB;
constexpr unsigned kGuestPages = 8;
constexpr Addr kChaosGuestVaBase = 0x40000000;

/** Guest leaf perms never include none(): a V=1 RWX=0 PTE is a pointer. */
Perm
randomLeafPerm(Rng &rng)
{
    switch (rng.below(5)) {
      case 0: return Perm::rw();
      case 1: return Perm::ro();
      case 2: return Perm::rx();
      case 3: return Perm::xo();
      default: return Perm::rwx();
    }
}

/** One hart's guest: two switchable NPTs, a GPT, and tracked perms. */
struct HartGuest
{
    std::unique_ptr<PageTable> nptA, nptB, gpt;
    bool usingB = false;
    Addr dataBase = 0;
    std::array<Perm, kGuestPages> gptPerm;
    std::array<std::array<Perm, kGuestPages>, 2> nptPerm; //!< [A, B]

    PageTable &currentNpt() { return usingB ? *nptB : *nptA; }
    unsigned currentNptIndex() const { return usingB ? 1 : 0; }
};

/**
 * Interleave hook of the multi-hart campaign: runs the stale checker
 * at every IPI step and, from inside the shootdown window, fires
 * nested monitor calls from victim harts — every one of them must
 * bounce off the global monitor lock with LockContended and zero state
 * change.
 */
class ChaosIpiHook : public InterleaveHook
{
  public:
    ChaosIpiHook(SmpSystem &smp, SecureMonitor &monitor,
                 StaleChecker &checker, Rng &rng)
        : smp_(smp), monitor_(monitor), checker_(checker), rng_(rng)
    {
    }

    void
    onIpiStep(const IpiEvent &event) override
    {
        checker_.onIpiStep(event);
        if (failed_)
            return;
        // Posted/Delivered steps always run inside a monitor
        // transaction (the satp fence path does not take the lock, so
        // its SatpFence steps are not probed).
        if (event.phase != IpiPhase::Posted &&
            event.phase != IpiPhase::Delivered) {
            return;
        }
        if (!rng_.chance(0.12))
            return;
        const unsigned saved = smp_.currentHart();
        smp_.setCurrentHart(event.dstHart);
        const MonitorResult r =
            monitor_.switchTo(monitor_.currentDomain());
        smp_.setCurrentHart(saved);
        if (r.ok || r.code != MonitorError::LockContended) {
            failed_ = true;
            why_ = "nested monitor call from hart " +
                   std::to_string(event.dstHart) +
                   " inside the shootdown window did not bounce with "
                   "lock-contended (got " +
                   std::string(r.ok ? "ok" : toString(r.code)) + ")";
            return;
        }
        ++contended_;
    }

    bool failed() const { return failed_; }
    const std::string &failure() const { return why_; }
    uint64_t contended() const { return contended_; }

  private:
    SmpSystem &smp_;
    SecureMonitor &monitor_;
    StaleChecker &checker_;
    Rng &rng_;
    uint64_t contended_ = 0;
    bool failed_ = false;
    std::string why_;
};

ChaosStats runChaosSmp(const ChaosConfig &config);

} // namespace

ChaosStats
runChaos(const ChaosConfig &config)
{
    panic_if(config.migrateLayer,
             "--migrate campaigns run through runMigrateChaos "
             "(migrate/migrate_chaos.h), not runChaos");
    // RAS campaigns always run the SMP engine (it hosts the scrubber,
    // the DMA masters and the blast-radius audits), even single-hart.
    if (config.harts > 1 || config.rasLayer)
        return runChaosSmp(config);

    ChaosStats stats;
    Rng rng(config.seed);

    auto machine = std::make_unique<Machine>(chaosMachineParams());
    MonitorConfig mc;
    mc.scheme = config.scheme;
    SecureMonitor monitor(*machine, mc);
    machine->setPriv(PrivMode::Supervisor);

    FaultInjector &injector = FaultInjector::instance();
    injector.enable(config.seed);

    const char *op_name = "?";
    auto fail = [&](unsigned index, const std::string &why) {
        std::ostringstream os;
        os << "seed " << config.seed << " op #" << index << " ("
           << op_name << "): " << why;
        stats.failed = true;
        stats.failure = os.str();
    };

    // Helpers over the current population -----------------------------
    auto live = [&]() { return monitor.domainIds(); };
    auto pick_domain = [&](bool allow_bogus) -> DomainId {
        if (allow_bogus && rng.chance(0.08))
            return kBogusDomain;
        const auto ids = live();
        return ids[rng.below(ids.size())];
    };
    auto pick_gms_base = [&](DomainId id) -> Addr {
        if (!monitor.domainExists(id))
            return windowOf(id);
        const auto &list = monitor.gmsOf(id);
        if (list.empty() || rng.chance(0.1)) {
            // A base that (usually) names no GMS.
            return windowOf(id) + rng.below(16) * kPageSize;
        }
        return list[rng.below(list.size())].base;
    };
    auto random_gms = [&](DomainId id) -> Gms {
        Gms gms;
        gms.size = randomNapotSize(rng);
        const Addr window = windowOf(id);
        gms.base = window + rng.below(kWindowSize / gms.size) * gms.size;
        gms.perm = randomPerm(rng);
        gms.label = rng.chance(0.7) ? GmsLabel::Fast : GmsLabel::Slow;
        // A taste of hostile input: misaligned bases, zero sizes and
        // regions reaching into the monitor-private area. All must be
        // rejected with a typed error and zero state change.
        if (rng.chance(0.05))
            gms.base += 0x100;
        if (rng.chance(0.03))
            gms.size = 0;
        if (rng.chance(0.04))
            gms.base = monitor.config().monitorBase +
                       rng.below(monitor.config().monitorSize / kPageSize) *
                           kPageSize;
        return gms;
    };

    // Windowed telemetry: the campaign clock is the monitor's own
    // call_cycles sum, which advances exactly with simulated work.
    StatRegistry seriesRegistry;
    std::unique_ptr<StatSampler> sampler;
    auto campaign_cycles = [&]() -> uint64_t {
        const Distribution *d = monitor.stats().getDist("call_cycles");
        return d ? d->sum() : 0;
    };
    if (config.statsSeriesOut) {
        monitor.registerStats(seriesRegistry);
        machine->registerStats(seriesRegistry);
        sampler = std::make_unique<StatSampler>(seriesRegistry,
                                                config.statsSeriesInterval);
    }

    for (unsigned i = 0; i < config.ops && !stats.failed; ++i) {
        if (sampler)
            sampler->advanceTo(campaign_cycles());
        // Arm a fault for this op with the configured probability: the
        // Nth upcoming site hit, whatever site that turns out to be.
        const bool armed = rng.chance(config.faultProb);
        const bool digest_checked = armed || i % 8 == 0;
        uint64_t pre_digest = 0;
        if (digest_checked)
            pre_digest = monitor.stateDigest(config.fullDigest);
        if (armed)
            injector.armAnyNth(1 + rng.below(8));

        // ---- run one random operation -------------------------------
        MonitorResult result;
        const unsigned roll = unsigned(rng.below(100));
        if (roll < 8) {
            op_name = "createDomain";
            if (live().size() < kMaxDomains)
                monitor.createDomain();
        } else if (roll < 14) {
            op_name = "destroyDomain";
            result = monitor.destroyDomain(pick_domain(true));
        } else if (roll < 34) {
            op_name = "addGms";
            const DomainId id = pick_domain(true);
            if (!monitor.domainExists(id) ||
                monitor.gmsOf(id).size() < kMaxGmsPerDomain) {
                result = monitor.addGms(id, random_gms(id));
            }
        } else if (roll < 42) {
            op_name = "removeGms";
            const DomainId id = pick_domain(true);
            result = monitor.removeGms(id, pick_gms_base(id));
        } else if (roll < 50) {
            op_name = "setLabel";
            const DomainId id = pick_domain(true);
            result = monitor.setLabel(id, pick_gms_base(id),
                                      rng.chance(0.5) ? GmsLabel::Fast
                                                      : GmsLabel::Slow);
        } else if (roll < 56) {
            op_name = "setPerm";
            const DomainId id = pick_domain(true);
            result =
                monitor.setPerm(id, pick_gms_base(id), randomPerm(rng));
        } else if (roll < 62) {
            op_name = "shareGms";
            const DomainId owner = pick_domain(false);
            const DomainId peer = pick_domain(true);
            result = monitor.shareGms(owner, pick_gms_base(owner), peer,
                                      randomPerm(rng));
        } else if (roll < 72) {
            op_name = "hintHotRegion";
            const DomainId id = pick_domain(true);
            Addr base = pick_gms_base(id);
            uint64_t size = randomNapotSize(rng);
            if (monitor.domainExists(id) && !monitor.gmsOf(id).empty() &&
                rng.chance(0.8)) {
                // A NAPOT subrange of an existing GMS (usually valid).
                const auto &list = monitor.gmsOf(id);
                const Gms &gms = list[rng.below(list.size())];
                size = std::max<uint64_t>(gms.size >> rng.below(3),
                                          kPageSize);
                if (isPowerOf2(gms.size) && size <= gms.size) {
                    base = gms.base +
                           rng.below(gms.size / size) * size;
                }
            }
            result = monitor.hintHotRegion(id, base, size);
        } else if (roll < 86) {
            op_name = "switchTo";
            result = monitor.switchTo(pick_domain(true));
        } else {
            op_name = "attest";
            const DomainId id = pick_domain(false);
            const uint64_t nonce = rng.next();
            const auto report = monitor.attestDomain(id, nonce);
            if (report.ok) {
                if (!monitor.attestor().verify(report.value, nonce)) {
                    fail(i, "attestation report failed verification");
                    break;
                }
            } else {
                result = MonitorResult::fail(report.code, report.error);
            }
        }
        injector.clearPlans(); // disarm anything that did not fire

        // ---- audit the outcome --------------------------------------
        ++stats.ops;
        if (result.ok) {
            ++stats.okOps;
            if (result.degraded)
                ++stats.degradedOps;
        } else {
            ++stats.failedOps;
            if (result.code == MonitorError::InjectedFault)
                ++stats.injectedFaults;
            if (result.code == MonitorError::None) {
                fail(i, "failed without an error code: " + result.error);
                break;
            }
            if (digest_checked) {
                ++stats.rollbackChecks;
                const uint64_t post =
                    monitor.stateDigest(config.fullDigest);
                if (post != pre_digest) {
                    fail(i, std::string("state changed across a failed "
                                        "call (") +
                                toString(result.code) + ": " +
                                result.error + ")");
                    break;
                }
            }
        }

        ++stats.invariantChecks;
        const std::string violation = checkIsolationInvariants(monitor);
        if (!violation.empty()) {
            fail(i, "invariant violated: " + violation);
            break;
        }
    }

    injector.disable();

    if (sampler) {
        sampler->sample(campaign_cycles());
        *config.statsSeriesOut = sampler->dumpJson();
    }
    if (config.statsJsonOut) {
        StatRegistry registry;
        monitor.registerStats(registry);
        machine->registerStats(registry);
        *config.statsJsonOut = registry.dumpJson();
    }
    return stats;
}

namespace
{

/**
 * The multi-hart campaign. Same domain-lifecycle op mix as the
 * single-hart fuzzer, plus: every op initiates from a random hart,
 * IPI shootdowns run with the stale-translation checker and
 * nested-call lock probes interleaved into every protocol step,
 * rollback is verified per hart, hart register files are checked for
 * convergence outside windows, and (with osLayer) per-hart kernels
 * drive mmap/munmap/touch/demand-fault and DMA traffic under the same
 * injection plans.
 */
ChaosStats
runChaosSmp(const ChaosConfig &config)
{
    ChaosStats stats;
    stats.harts = config.harts;
    Rng rng(config.seed);
    panic_if(config.virtLayer && config.osLayer,
             "--virt and --os-layer are mutually exclusive");
    panic_if(config.fleetLayer && (config.osLayer || config.virtLayer),
             "--fleet is mutually exclusive with --os-layer and --virt");
    panic_if(config.rasLayer &&
                 (config.osLayer || config.virtLayer || config.fleetLayer),
             "--ras is mutually exclusive with --os-layer, --virt and "
             "--fleet");

    SmpParams sp;
    sp.harts = config.harts;
    sp.schedSeed = config.seed * 0x9E3779B97F4A7C15ULL + config.harts;
    SmpSystem smp(chaosMachineParams(), sp);
    MonitorConfig mc;
    mc.scheme = config.scheme;
    SecureMonitor monitor(smp, mc);
    for (unsigned h = 0; h < config.harts; ++h)
        smp.hart(h).setPriv(PrivMode::Supervisor);

    // ---- OS layer: one kernel + address space per hart -------------
    std::vector<DomainId> kernelDomain(config.harts, 0);
    std::vector<std::unique_ptr<Kernel>> kernels;
    std::vector<std::unique_ptr<AddressSpace>> spaces;
    // Per-hart [base, len) regions currently mmapped (touch targets).
    std::vector<std::vector<std::pair<Addr, uint64_t>>> mapped(
        config.harts);
    if (config.osLayer) {
        for (unsigned h = 0; h < config.harts; ++h) {
            kernelDomain[h] = monitor.createDomain();
            KernelConfig kc;
            kernels.push_back(std::make_unique<Kernel>(
                monitor, kernelDomain[h],
                kKernelMemBase + h * kKernelMemStride, kKernelMemBytes,
                kc));
            spaces.push_back(kernels.back()->createAddressSpace());
        }
    }

    // ---- stale-translation watches ---------------------------------
    // Two watched accesses per hart: a chaos-window page (permission
    // churns with GMS registration and domain switches) and either the
    // hart's kernel data page (flips on switches to/from its domain)
    // or a second window page in bare mode.
    StaleChecker checker(smp, monitor);
    std::vector<Addr> watchPas;
    unsigned wi = 0;
    for (unsigned h = 0; h < config.harts; ++h) {
        for (unsigned k = 0; k < 2; ++k) {
            StaleWatch w;
            w.hart = h;
            w.type = (wi % 2) ? AccessType::Store : AccessType::Load;
            if (k == 0) {
                w.pa = windowOf(h % kWindows) + (1 + h) * kPageSize;
            } else if (config.osLayer) {
                w.pa = kKernelMemBase + h * kKernelMemStride +
                       kernels[h]->config().ptPoolBytes;
            } else {
                w.pa = windowOf((h + 3) % kWindows) + (2 + h) * kPageSize;
            }
            if (config.osLayer) {
                w.va = kWatchVaBase + wi * kPageSize;
                const bool mapped_ok =
                    spaces[h]->mapFrameAt(w.va, w.pa, Perm::rwx(), false);
                panic_if(!mapped_ok, "watch mapping failed");
            } else {
                w.va = w.pa; // bare harts access physically
            }
            checker.addWatch(w);
            watchPas.push_back(w.pa & ~Addr(kPageSize - 1));
            ++wi;
        }
    }

    // Point every hart's MMU at its own address space. Runs through
    // Machine::setSatp, i.e. the remote-fence accounting path.
    if (config.osLayer) {
        for (unsigned h = 0; h < config.harts; ++h) {
            smp.setCurrentHart(h);
            smp.hart(h).setSatp(spaces[h]->rootPa(),
                                kernels[h]->config().pagingMode);
        }
        smp.setCurrentHart(0);
    }

    // ---- virt layer: one guest per hart ----------------------------
    std::vector<HartGuest> guests;
    if (config.virtLayer) {
        smp.enableVirt();
        // One slow NAPOT GMS of the host domain covers every guest
        // arena: the guests only reach memory while the host domain is
        // current, and every domain switch flips their physical stage.
        Gms arena;
        arena.base = kVirtArenaBase;
        arena.size = kVirtArenaSpan;
        arena.perm = Perm::rwx();
        arena.label = GmsLabel::Slow;
        const MonitorResult ar = monitor.addGms(monitor.currentDomain(),
                                                arena);
        panic_if(!ar.ok, "virt arena GMS rejected: %s", ar.error.c_str());

        guests.resize(config.harts);
        for (unsigned h = 0; h < config.harts; ++h) {
            HartGuest &hg = guests[h];
            const Addr base = kVirtArenaBase + h * kVirtArenaStride;
            hg.nptA = std::make_unique<PageTable>(
                smp.mem(), bumpAllocator(base + kVirtNptAOff),
                PagingMode::Sv39, 2);
            hg.nptB = std::make_unique<PageTable>(
                smp.mem(), bumpAllocator(base + kVirtNptBOff),
                PagingMode::Sv39, 2);
            hg.gpt = std::make_unique<PageTable>(
                smp.mem(), bumpAllocator(base + kVirtGptOff),
                PagingMode::Sv39, 0);
            hg.dataBase = base + kVirtDataOff;

            for (PageTable *npt : {hg.nptA.get(), hg.nptB.get()}) {
                // G-stage identity superpages over the GPT pool: the
                // two-stage walk translates every guest-PT frame.
                for (Addr off = 0; off < kVirtGptPoolBytes; off += 2_MiB) {
                    const Addr gpa = base + kVirtGptOff + off;
                    panic_if(!npt->map(gpa, gpa, Perm::rw(), true, 1),
                             "G-stage identity map failed");
                }
            }
            for (unsigned p = 0; p < kGuestPages; ++p) {
                const Addr gva = kChaosGuestVaBase + p * kPageSize;
                const Addr gpa = hg.dataBase + p * kPageSize;
                // Page 1 boots as an execute-only, supervisor-only
                // leaf (S-mode fetches from U pages always fault) so
                // the fetch watch below hunts stale X grants from the
                // start.
                hg.gptPerm[p] = p == 1 ? Perm::xo() : Perm::rwx();
                panic_if(!hg.gpt->map(gva, gpa, hg.gptPerm[p], p != 1),
                         "GPT map failed");
                // The B table boots with alternating narrower perms so
                // the very first hgatp switch changes the G-stage view.
                hg.nptPerm[0][p] = Perm::rwx();
                hg.nptPerm[1][p] = p % 2 ? Perm::rwx() : Perm::rw();
                panic_if(!hg.nptA->map(gpa, gpa, hg.nptPerm[0][p], true),
                         "NPT-A map failed");
                panic_if(!hg.nptB->map(gpa, gpa, hg.nptPerm[1][p], true),
                         "NPT-B map failed");
            }

            VirtMachine &vm = smp.virtHart(h);
            vm.setHgatp(hg.nptA->rootPa());
            vm.setVsatp(hg.gpt->rootPa());

            // Watch page 0 of each guest through the two-stage oracle
            // and commit the boot-time expectations for every page.
            VirtStaleWatch vw;
            vw.hart = h;
            vw.gva = kChaosGuestVaBase;
            vw.gpa = hg.dataBase;
            vw.spa = hg.dataBase;
            vw.type = h % 2 ? AccessType::Store : AccessType::Load;
            checker.addVirtWatch(vw);
            // A second watch fetches through the X-only page: stale
            // executable grants are attributed separately from RW ones
            // (an injectable-code window, not just a data leak).
            VirtStaleWatch xw;
            xw.hart = h;
            xw.gva = kChaosGuestVaBase + kPageSize;
            xw.gpa = hg.dataBase + kPageSize;
            xw.spa = hg.dataBase + kPageSize;
            xw.type = AccessType::Fetch;
            checker.addVirtWatch(xw);
            for (unsigned p = 0; p < kGuestPages; ++p) {
                checker.setGuestPerm(h, kChaosGuestVaBase + p * kPageSize,
                                     hg.gptPerm[p]);
                checker.setGpaPerm(h, hg.dataBase + p * kPageSize,
                                   hg.nptPerm[0][p]);
            }
        }
    }
    // Rewrite one already-mapped guest leaf in place (PageTable has no
    // protect(): campaigns remap by writing the PTE the walker reads).
    auto rewriteLeaf = [&](PageTable &pt, Addr va, Addr pa, Perm perm,
                           bool user = true) {
        const auto slot = pt.leafPteAddr(va);
        panic_if(!slot, "no guest leaf to rewrite");
        smp.mem().write64(*slot,
                          Pte::leaf(pa, perm, user, true, true).raw);
    };

    ChaosIpiHook hook(smp, monitor, checker, rng);
    smp.setInterleaveHook(&hook);

    // ---- DMA masters behind a two-master IOPMP ---------------------
    // Each master sits on its own hart's cache hierarchy (master 1
    // on hart 1 when the campaign has one) and both contend for one
    // shared channel, so a master's transfer cycles — including its
    // IOPMP table-reference latency — inflate under the other's load.
    IopmpUnit iopmp(smp.mem(), 2);
    iopmp.master(0).programSegment(0, windowOf(0), kWindowSize,
                                   Perm::rw());
    iopmp.master(1).programSegment(0, windowOf(1), kWindowSize,
                                   Perm::rw());
    SharedBus dmaBus(2);
    DmaEngine dma0(iopmp, smp.hart(0).hier(), 0);
    DmaEngine dma1(iopmp,
                   smp.hart(config.harts > 1 ? 1 : 0).hier(), 1);
    dma0.attachBus(&dmaBus);
    dma1.attachBus(&dmaBus);

    // ---- RAS layer: background patrol scrubber ---------------------
    // The patrol covers exactly the chaos windows: poison landing
    // under the patrol head (ras.poison_scrub) then hits enclave,
    // host or free frames — the classes whose containment is bounded.
    // Monitor-region poison is planted deliberately (and rarely) by
    // the ras.monitor sub-op instead, so a whole-host degrade is
    // always an *expected* event the audits can account for.
    std::unique_ptr<Scrubber> scrub;
    if (config.rasLayer) {
        scrub = std::make_unique<Scrubber>(
            smp.mem(), kWindowBase, kWindows * kWindowSize, 32);
        scrub->setSkip(
            [&](Addr page) { return monitor.pageQuarantined(page); });
    }
    bool rasFatalExpected = false;

    FaultInjector &injector = FaultInjector::instance();
    injector.enable(config.seed);

    const char *op_name = "?";
    auto fail = [&](unsigned index, const std::string &why) {
        std::ostringstream os;
        os << "seed " << config.seed << " harts " << config.harts
           << " op #" << index << " (" << op_name << "): " << why;
        stats.failed = true;
        stats.failure = os.str();
    };

    // Helpers over the current population (same shapes as the
    // single-hart campaign).
    auto live = [&]() { return monitor.domainIds(); };
    const size_t max_domains =
        kMaxDomains + 1 + (config.osLayer ? config.harts : 0);
    auto pick_domain = [&](bool allow_bogus) -> DomainId {
        if (allow_bogus && rng.chance(0.08))
            return kBogusDomain;
        const auto ids = live();
        return ids[rng.below(ids.size())];
    };
    auto pick_gms_base = [&](DomainId id) -> Addr {
        if (!monitor.domainExists(id))
            return windowOf(id);
        const auto &list = monitor.gmsOf(id);
        if (list.empty() || rng.chance(0.1))
            return windowOf(id) + rng.below(16) * kPageSize;
        return list[rng.below(list.size())].base;
    };
    auto random_gms = [&](DomainId id) -> Gms {
        Gms gms;
        gms.size = randomNapotSize(rng);
        const Addr window = windowOf(id);
        gms.base = window + rng.below(kWindowSize / gms.size) * gms.size;
        gms.perm = randomPerm(rng);
        gms.label = rng.chance(0.7) ? GmsLabel::Fast : GmsLabel::Slow;
        if (rng.chance(0.05))
            gms.base += 0x100;
        if (rng.chance(0.03))
            gms.size = 0;
        if (rng.chance(0.04))
            gms.base = monitor.config().monitorBase +
                       rng.below(monitor.config().monitorSize / kPageSize) *
                           kPageSize;
        return gms;
    };

    // Fleet campaigns: every destroyed tenant's id is remembered so
    // stale-handle probes can keep asserting the recycling contract —
    // a retired DomainId stays a typed denial forever, even after its
    // registry slot is handed to a new tenant under a new generation.
    std::vector<DomainId> retired;

    // ---- RAS helpers -----------------------------------------------
    // Poison never lands on a stale-watch page: the watch probes are
    // instrumentation, and a fail-closed machine-check denial there
    // would read as a spurious stale-translation diagnosis.
    auto isWatchPage = [&](Addr page) {
        return std::find(watchPas.begin(), watchPas.end(), page) !=
               watchPas.end();
    };
    // A poisonable page of one of `id`'s exclusive GMSs (0 = none):
    // shared regions are excluded so the blast-radius contract —
    // exactly one owner dies — stays well-defined.
    auto pickPoisonPage = [&](DomainId id) -> Addr {
        if (!monitor.domainExists(id))
            return 0;
        const auto &list = monitor.gmsOf(id);
        for (unsigned attempt = 0; attempt < 8 && !list.empty();
             ++attempt) {
            const Gms &gms = list[rng.below(list.size())];
            if (gms.shared || gms.size < kPageSize)
                continue;
            const Addr page =
                gms.base + rng.below(gms.size / kPageSize) * kPageSize;
            if (isWatchPage(page) || monitor.pageQuarantined(page))
                continue;
            return page;
        }
        return 0;
    };
    // The blast-radius contract: after any containment, every domain
    // that existed before — except the one the poison belonged to —
    // must still exist. Anything else is a cross-domain blast.
    auto auditBlast = [&](unsigned index,
                          const std::vector<DomainId> &before,
                          DomainId allowed_victim) {
        for (DomainId id : before) {
            if (id == allowed_victim || monitor.domainExists(id))
                continue;
            ++stats.rasBlastViolations;
            fail(index, "containment destroyed bystander domain " +
                            std::to_string(id));
            return false;
        }
        return true;
    };

    // Windowed telemetry over the full SMP registry, clocked by the
    // monitor's simulated call_cycles sum (see ChaosConfig).
    StatRegistry seriesRegistry;
    std::unique_ptr<StatSampler> sampler;
    auto campaign_cycles = [&]() -> uint64_t {
        const Distribution *d = monitor.stats().getDist("call_cycles");
        return d ? d->sum() : 0;
    };
    if (config.statsSeriesOut) {
        monitor.registerStats(seriesRegistry);
        smp.registerStats(seriesRegistry);
        checker.registerStats(seriesRegistry);
        iopmp.registerStats(seriesRegistry);
        seriesRegistry.add(&dmaBus.stats());
        if (scrub)
            scrub->registerStats(seriesRegistry);
        for (unsigned h = 0; h < unsigned(kernels.size()); ++h) {
            kernels[h]->registerStats(
                seriesRegistry, h == 0 ? "os"
                                       : "hart" + std::to_string(h) + ".os");
        }
        sampler = std::make_unique<StatSampler>(seriesRegistry,
                                                config.statsSeriesInterval);
    }

    std::vector<uint64_t> pre(config.harts, 0);
    for (unsigned i = 0; i < config.ops && !stats.failed; ++i) {
        if (sampler)
            sampler->advanceTo(campaign_cycles());
        // Every op initiates from a random hart: the monitor must
        // program the canonical unit and converge everyone else no
        // matter who trapped in.
        const unsigned initiator = unsigned(rng.below(config.harts));
        smp.setCurrentHart(initiator);

        const bool armed = rng.chance(config.faultProb);
        const bool digest_checked = armed || i % 8 == 0;
        if (digest_checked) {
            for (unsigned h = 0; h < config.harts; ++h)
                pre[h] = monitor.hartStateDigest(h, config.fullDigest);
        }
        if (armed)
            injector.armAnyNth(1 + rng.below(8));

        // ---- run one random operation -------------------------------
        MonitorResult result;
        const unsigned roll = unsigned(rng.below(100));
        if (roll < 6) {
            op_name = "createDomain";
            if (live().size() < max_domains)
                monitor.createDomain();
        } else if (roll < 12) {
            op_name = "destroyDomain";
            const DomainId id = pick_domain(true);
            // Destroy scrubs and releases the freed GMS pages, so a
            // hart's kernel domain — whose arena backs live page
            // tables the campaign keeps exercising — is never torn
            // down mid-flight.
            const bool backs_kernel = config.osLayer &&
                std::find(kernelDomain.begin(), kernelDomain.end(),
                          id) != kernelDomain.end();
            if (!backs_kernel)
                result = monitor.destroyDomain(id);
        } else if (roll < 28) {
            op_name = "addGms";
            const DomainId id = pick_domain(true);
            if (!monitor.domainExists(id) ||
                monitor.gmsOf(id).size() < kMaxGmsPerDomain) {
                result = monitor.addGms(id, random_gms(id));
            }
        } else if (roll < 35) {
            op_name = "removeGms";
            const DomainId id = pick_domain(true);
            result = monitor.removeGms(id, pick_gms_base(id));
        } else if (roll < 41) {
            op_name = "setLabel";
            const DomainId id = pick_domain(true);
            result = monitor.setLabel(id, pick_gms_base(id),
                                      rng.chance(0.5) ? GmsLabel::Fast
                                                      : GmsLabel::Slow);
        } else if (roll < 47) {
            op_name = "setPerm";
            const DomainId id = pick_domain(true);
            result =
                monitor.setPerm(id, pick_gms_base(id), randomPerm(rng));
        } else if (roll < 52) {
            op_name = "shareGms";
            const DomainId owner = pick_domain(false);
            const DomainId peer = pick_domain(true);
            result = monitor.shareGms(owner, pick_gms_base(owner), peer,
                                      randomPerm(rng));
        } else if (roll < 60) {
            op_name = "hintHotRegion";
            const DomainId id = pick_domain(true);
            Addr base = pick_gms_base(id);
            uint64_t size = randomNapotSize(rng);
            if (monitor.domainExists(id) && !monitor.gmsOf(id).empty() &&
                rng.chance(0.8)) {
                const auto &list = monitor.gmsOf(id);
                const Gms &gms = list[rng.below(list.size())];
                size = std::max<uint64_t>(gms.size >> rng.below(3),
                                          kPageSize);
                if (isPowerOf2(gms.size) && size <= gms.size)
                    base = gms.base + rng.below(gms.size / size) * size;
            }
            result = monitor.hintHotRegion(id, base, size);
        } else if (roll < 74) {
            op_name = "switchTo";
            result = monitor.switchTo(pick_domain(true));
        } else if (roll < 80) {
            op_name = "attest";
            const DomainId id = pick_domain(false);
            const uint64_t nonce = rng.next();
            const auto report = monitor.attestDomain(id, nonce);
            if (report.ok) {
                if (!monitor.attestor().verify(report.value, nonce)) {
                    fail(i, "attestation report failed verification");
                    break;
                }
            } else {
                result = MonitorResult::fail(report.code, report.error);
            }
        } else if (roll < 88 && config.osLayer) {
            ++stats.osOps;
            AddressSpace &as = *spaces[initiator];
            auto &regions = mapped[initiator];
            switch (rng.below(4)) {
              case 0: {
                op_name = "os.mmap";
                const uint64_t len = (1 + rng.below(8)) * kPageSize;
                const auto va = as.tryMmap(len, Perm::rw(), true,
                                           rng.chance(0.7));
                if (va)
                    regions.push_back({*va, len});
                break;
              }
              case 1: {
                op_name = "os.munmap";
                if (!regions.empty()) {
                    const size_t idx = rng.below(regions.size());
                    as.munmap(regions[idx].first, regions[idx].second);
                    // munmap fences through the canonical machine;
                    // fence the hart that actually ran it too.
                    smp.hart(initiator).sfenceVma();
                    regions.erase(regions.begin() + ptrdiff_t(idx));
                }
                break;
              }
              default: {
                op_name = "os.touch";
                if (monitor.currentDomain() != kernelDomain[initiator])
                    result = monitor.switchTo(kernelDomain[initiator]);
                if (result.ok && !regions.empty()) {
                    const auto &[base, len] =
                        regions[rng.below(regions.size())];
                    for (unsigned t = 0; t < 4; ++t) {
                        const Addr va =
                            base + rng.below(len / kPageSize) * kPageSize;
                        const AccessType type = rng.chance(0.5)
                                                    ? AccessType::Load
                                                    : AccessType::Store;
                        Machine &m = smp.hart(initiator);
                        const auto out = m.access(va, type);
                        if (out.fault == pageFaultFor(type) &&
                            as.handleFault(va, type)) {
                            m.access(va, type);
                        }
                    }
                }
                break;
              }
            }
        } else if (roll < 88 && config.virtLayer) {
            ++stats.virtOps;
            VirtMachine &vm = smp.virtHart(initiator);
            HartGuest &hg = guests[initiator];
            switch (rng.below(4)) {
              case 0: {
                op_name = "virt.touch";
                for (unsigned t = 0; t < 4; ++t) {
                    const Addr gva = kChaosGuestVaBase +
                                     rng.below(kGuestPages) * kPageSize;
                    vm.access(gva, rng.chance(0.5) ? AccessType::Load
                                                   : AccessType::Store);
                }
                break;
              }
              case 1: {
                op_name = "virt.hgatp";
                // Switch nested tables. Commit the new G-stage view to
                // the oracle first, then fence — the same
                // commit-before-shootdown order the monitor uses.
                hg.usingB = !hg.usingB;
                const unsigned next = hg.currentNptIndex();
                for (unsigned p = 0; p < kGuestPages; ++p) {
                    checker.setGpaPerm(initiator,
                                       hg.dataBase + p * kPageSize,
                                       hg.nptPerm[next][p]);
                }
                vm.setHgatp(hg.currentNpt().rootPa());
                break;
              }
              case 2: {
                op_name = "virt.gpt_remap";
                const unsigned p = unsigned(rng.below(kGuestPages));
                const Perm np = randomLeafPerm(rng);
                const Addr gva = kChaosGuestVaBase + p * kPageSize;
                // Page 1 keeps U clear so its fetch watch stays live.
                rewriteLeaf(*hg.gpt, gva, hg.dataBase + p * kPageSize,
                            np, p != 1);
                hg.gptPerm[p] = np;
                checker.setGuestPerm(initiator, gva, np);
                vm.setVsatp(hg.gpt->rootPa()); // hfence.vvma shootdown
                break;
              }
              default: {
                op_name = "virt.npt_remap";
                const unsigned p = unsigned(rng.below(kGuestPages));
                const Perm np = randomLeafPerm(rng);
                const Addr gpa = hg.dataBase + p * kPageSize;
                rewriteLeaf(hg.currentNpt(), gpa, gpa, np);
                hg.nptPerm[hg.currentNptIndex()][p] = np;
                checker.setGpaPerm(initiator, gpa, np);
                vm.setHgatp(hg.currentNpt().rootPa()); // hfence.gvma
                break;
              }
            }
        } else if (roll < 88 && config.fleetLayer) {
            ++stats.fleetOps;
            switch (rng.below(4)) {
              case 0: {
                // Coalesced epoch: a batch of switches from rotating
                // harts defers into one shared shootdown window; the
                // flush runs the single IPI round (with the checker
                // and nested-call probes interleaved into it).
                op_name = "fleet.epoch";
                ++stats.fleetEpochs;
                monitor.beginCoalescedWindow();
                const unsigned batch = 2 + unsigned(rng.below(4));
                for (unsigned b = 0; b < batch; ++b) {
                    smp.setCurrentHart(
                        unsigned(rng.below(config.harts)));
                    const MonitorResult r =
                        monitor.switchTo(pick_domain(true));
                    if (!r.ok &&
                        r.code == MonitorError::InjectedFault) {
                        ++stats.injectedFaults;
                    }
                }
                monitor.endCoalescedWindow();
                smp.setCurrentHart(initiator);
                break;
              }
              case 1: {
                // A retired id must stay a typed denial — honouring
                // one would hand a stale tenant handle whatever domain
                // recycled the slot.
                op_name = "fleet.stale";
                if (retired.empty())
                    break;
                const DomainId old =
                    retired[rng.below(retired.size())];
                const MonitorResult r = monitor.switchTo(old);
                if (r.ok) {
                    fail(i, "retired domain id " + std::to_string(old) +
                                " was honoured");
                    break;
                }
                if (r.code != MonitorError::StaleHandle &&
                    r.code != MonitorError::NoSuchDomain &&
                    r.code != MonitorError::InjectedFault) {
                    fail(i, std::string("retired id denied with the "
                                        "wrong error: ") +
                                toString(r.code));
                    break;
                }
                if (r.code != MonitorError::InjectedFault)
                    ++stats.fleetStaleProbes;
                result = r;
                break;
              }
              case 2: {
                op_name = "fleet.churn";
                const DomainId id = pick_domain(false);
                if (id == 0)
                    break; // never churn the host domain
                result = monitor.destroyDomain(id);
                if (result.ok) {
                    retired.push_back(id);
                    ++stats.fleetChurns;
                }
                break;
              }
              default: {
                // Same-domain re-switch: the empty layout diff must
                // elide the shootdown (monitor.ipi_elided), not fence
                // every sibling for nothing.
                op_name = "fleet.reswitch";
                result = monitor.switchTo(monitor.currentDomain());
                break;
              }
            }
        } else if (roll < 88 && config.rasLayer) {
            ++stats.rasOps;
            // Multi-call sub-ops re-snapshot the rollback oracle after
            // each *successful* mutating call, so a later injected
            // failure is judged against the state it actually aborted
            // from, not the op's entry state.
            auto resnap = [&]() {
                if (!digest_checked)
                    return;
                for (unsigned h = 0; h < config.harts; ++h)
                    pre[h] = monitor.hartStateDigest(h, config.fullDigest);
            };
            switch (rng.below(6)) {
              case 0: {
                // Poison a victim enclave's data page, consume it
                // through a real load when the region is readable, and
                // report: exactly the owning domain must die.
                op_name = "ras.data";
                if (monitor.rasFatal())
                    break;
                const DomainId victim = pick_domain(false);
                if (victim == 0)
                    break;
                const Addr page = pickPoisonPage(victim);
                if (!page)
                    break;
                const Addr line = page + rng.below(64) * 64;
                smp.mem().poisonLine(line);
                ++stats.rasPoisons;
                const auto before = live();
                Perm perm;
                for (const Gms &gms : monitor.gmsOf(victim)) {
                    if (gms.base <= page && page < gms.base + gms.size)
                        perm = gms.perm;
                }
                if (perm.allows(AccessType::Load) && rng.chance(0.6)) {
                    // Read it back the way a core would: switch to the
                    // owner and load — the fill must fail closed with
                    // a typed machine check, never a panic.
                    const MonitorResult sw = monitor.switchTo(victim);
                    if (!sw.ok) {
                        result = sw;
                        break;
                    }
                    resnap();
                    const auto out = smp.hart(initiator).access(
                        line, AccessType::Load);
                    if (out.fault == Fault::MachineCheck) {
                        ++stats.rasMachineChecks;
                        if ((out.poisonAddr & ~Addr(63)) != line) {
                            fail(i, "machine check attributed to the "
                                    "wrong line");
                            break;
                        }
                    }
                }
                ++stats.rasReports;
                const auto mc = monitor.handleMachineCheck(line);
                if (!mc.ok) {
                    result = MonitorResult::fail(mc.code, mc.error);
                    break;
                }
                if (mc.value != RasOutcome::ContainedDomain) {
                    fail(i, std::string("expected contained-domain, "
                                        "got ") +
                                toString(mc.value));
                    break;
                }
                if (monitor.domainExists(victim)) {
                    ++stats.rasBlastViolations;
                    fail(i, "poisoned domain survived containment");
                    break;
                }
                if (!monitor.pageQuarantined(page)) {
                    fail(i, "contained page was not quarantined");
                    break;
                }
                auditBlast(i, before, victim);
                break;
              }
              case 1: {
                // Poison a pmpte frame: the monitor must rebuild the
                // table from its authoritative layout — same
                // measurement, same grants, fresh frames, new root.
                op_name = "ras.pmpte";
                if (monitor.rasFatal())
                    break;
                const DomainId victim = pick_domain(false);
                const PmpTable *table = monitor.tablePeek(victim);
                if (!table || table->tablePages().empty())
                    break;
                const auto &frames = table->tablePages();
                const Addr frame = frames[rng.below(frames.size())];
                const Addr oldRoot = table->rootPa();
                smp.mem().poisonLine(frame + rng.below(64) * 64);
                ++stats.rasPoisons;
                const auto before = live();
                ++stats.rasReports;
                const auto mc = monitor.handleMachineCheck(frame);
                if (!mc.ok) {
                    // Typed heal failure (injected fault): the
                    // poisoned table must have been restored
                    // bit-identically — the generic rollback audit
                    // below verifies exactly that.
                    result = MonitorResult::fail(mc.code, mc.error);
                    break;
                }
                if (mc.value == RasOutcome::HostFatal) {
                    // Table-frame exhaustion mid-rebuild legitimately
                    // degrades the host late in a long campaign.
                    rasFatalExpected = true;
                    break;
                }
                if (mc.value != RasOutcome::HealedTable) {
                    fail(i, std::string("expected healed-table, got ") +
                                toString(mc.value));
                    break;
                }
                const PmpTable *healed = monitor.tablePeek(victim);
                if (!monitor.domainExists(victim) || !healed) {
                    ++stats.rasBlastViolations;
                    fail(i, "self-heal lost the healed domain");
                    break;
                }
                if (healed->rootPa() == oldRoot) {
                    fail(i, "healed table still points at the old root");
                    break;
                }
                if (!auditBlast(i, before, 0))
                    break;
                // Re-attest: the rebuilt table must produce the same
                // verifiable report a fresh enrolment would.
                if (!monitor.domainMigrating(victim)) {
                    const uint64_t nonce = rng.next();
                    const auto report =
                        monitor.attestDomain(victim, nonce);
                    if (report.ok &&
                        !monitor.attestor().verify(report.value,
                                                   nonce)) {
                        fail(i, "post-heal attestation failed "
                                "verification");
                        break;
                    }
                }
                break;
              }
              case 2: {
                // Poison a frame nobody owns: the quarantine must
                // touch no domain at all.
                op_name = "ras.free";
                if (monitor.rasFatal())
                    break;
                const Addr page =
                    windowOf(DomainId(rng.below(kWindows))) +
                    rng.below(kWindowSize / kPageSize) * kPageSize;
                bool owned = false;
                for (DomainId id : live()) {
                    for (const Gms &gms : monitor.gmsOf(id)) {
                        if (gms.base <= page &&
                            page < gms.base + gms.size) {
                            owned = true;
                        }
                    }
                }
                if (owned || isWatchPage(page) ||
                    monitor.pageQuarantined(page)) {
                    break;
                }
                smp.mem().poisonLine(page + rng.below(64) * 64);
                ++stats.rasPoisons;
                const auto before = live();
                ++stats.rasReports;
                const auto mc = monitor.handleMachineCheck(page);
                if (!mc.ok) {
                    result = MonitorResult::fail(mc.code, mc.error);
                    break;
                }
                if (mc.value != RasOutcome::QuarantinedFree) {
                    fail(i, std::string("expected quarantined-free, "
                                        "got ") +
                                toString(mc.value));
                    break;
                }
                auditBlast(i, before, 0);
                break;
              }
              case 3: {
                // Poison lands under the patrol head mid-scan
                // (ras.poison_scrub); the patrol itself must detect
                // and report it within a few batches.
                op_name = "ras.scrub";
                if (monitor.rasFatal())
                    break;
                if (rng.chance(0.5)) {
                    injector.armNth("ras.poison_scrub",
                                    1 + rng.below(64));
                }
                for (unsigned b = 0; b < 4 && !stats.failed; ++b) {
                    const auto hit = scrub->step();
                    if (!hit)
                        continue;
                    const auto before = live();
                    DomainId owner = 0;
                    for (DomainId id : before) {
                        for (const Gms &gms : monitor.gmsOf(id)) {
                            if (gms.base <= *hit &&
                                *hit < gms.base + gms.size) {
                                owner = id;
                            }
                        }
                    }
                    ++stats.rasReports;
                    const auto mc = monitor.handleMachineCheck(*hit);
                    if (!mc.ok) {
                        result = MonitorResult::fail(mc.code, mc.error);
                        break;
                    }
                    if (!auditBlast(i, before, owner))
                        break;
                    resnap();
                }
                break;
              }
              case 4: {
                // Rare, late: poison the monitor's private state. The
                // only sound containment is a whole-host degrade —
                // every later mutating call must be a typed RasFatal
                // denial while reads and audits stay up.
                op_name = "ras.monitor";
                if (monitor.rasFatal() || i < config.ops * 3 / 4 ||
                    !rng.chance(0.1)) {
                    break;
                }
                const MonitorConfig &mcfg = monitor.config();
                Addr page = 0;
                for (unsigned attempt = 0; attempt < 8 && !page;
                     ++attempt) {
                    const Addr cand =
                        mcfg.monitorBase +
                        rng.below(mcfg.monitorSize / kPageSize) *
                            kPageSize;
                    bool table_frame = false;
                    for (DomainId id : live()) {
                        const PmpTable *t = monitor.tablePeek(id);
                        if (t && t->isTablePage(cand))
                            table_frame = true;
                    }
                    if (!table_frame && !monitor.pageQuarantined(cand))
                        page = cand;
                }
                if (!page)
                    break;
                smp.mem().poisonPage(page);
                ++stats.rasPoisons;
                const auto before = live();
                ++stats.rasReports;
                const auto mc = monitor.handleMachineCheck(page);
                if (!mc.ok) {
                    result = MonitorResult::fail(mc.code, mc.error);
                    break;
                }
                if (mc.value != RasOutcome::HostFatal) {
                    fail(i, std::string("expected host-fatal, got ") +
                                toString(mc.value));
                    break;
                }
                rasFatalExpected = true;
                if (!monitor.rasFatal()) {
                    fail(i, "host-fatal outcome did not latch rasFatal");
                    break;
                }
                // Degrade, not crash: the registry is intact and every
                // mutating call is now a typed denial.
                if (!auditBlast(i, before, 0))
                    break;
                const MonitorResult denied =
                    monitor.switchTo(pick_domain(false));
                if (denied.ok ||
                    denied.code != MonitorError::RasFatal) {
                    fail(i, "mutating call after host degrade was not "
                            "a typed ras-fatal denial");
                }
                break;
              }
              default: {
                // Poison inside a suspended (mid-migration) domain:
                // containment must still work — the migration is dead
                // either way, and only the owner may go.
                op_name = "ras.suspended";
                if (monitor.rasFatal())
                    break;
                const DomainId victim = pick_domain(false);
                if (victim == 0)
                    break;
                const Addr page = pickPoisonPage(victim);
                if (!page)
                    break;
                const MonitorResult sus = monitor.suspendDomain(victim);
                if (!sus.ok) {
                    result = sus;
                    break;
                }
                resnap();
                smp.mem().poisonLine(page);
                ++stats.rasPoisons;
                const auto before = live();
                ++stats.rasReports;
                const auto mc = monitor.handleMachineCheck(page);
                if (!mc.ok) {
                    // Leave the domain suspended: the patrol scrubber
                    // will re-find the poison and finish containment.
                    result = MonitorResult::fail(mc.code, mc.error);
                    break;
                }
                if (mc.value != RasOutcome::ContainedDomain) {
                    fail(i, std::string("expected contained-domain, "
                                        "got ") +
                                toString(mc.value));
                    break;
                }
                if (monitor.domainExists(victim)) {
                    ++stats.rasBlastViolations;
                    fail(i, "suspended poisoned domain survived "
                            "containment");
                    break;
                }
                auditBlast(i, before, victim);
                break;
              }
            }
        } else if (roll < 94) {
            op_name = "dma";
            ++stats.dmaOps;
            const unsigned master = unsigned(rng.below(2));
            const Addr window = windowOf(master);
            const Addr src = window + rng.below(64) * kPageSize;
            const Addr dst =
                window + kWindowSize / 2 + rng.below(64) * kPageSize;
            DmaEngine &dma = master == 0 ? dma0 : dma1;
            const auto xfer =
                dma.transfer(src, dst, 256 + rng.below(4) * 256);
            if (xfer.busWaitCycles != 0) {
                ++stats.dmaBusWaits;
                stats.dmaBusWaitCycles += xfer.busWaitCycles;
            }
            if (xfer.machineCheck && config.rasLayer) {
                // A beat consumed poison: the engine failed closed;
                // route the machine check to the monitor like the
                // platform firmware would.
                ++stats.rasMachineChecks;
                ++stats.rasReports;
                const auto mc =
                    monitor.handleMachineCheck(xfer.faultAddr);
                if (!mc.ok)
                    result = MonitorResult::fail(mc.code, mc.error);
            }
            if (rng.chance(0.25))
                iopmp.flushCaches();
        } else if (config.osLayer) {
            // satp rewrite: the remote-fence path that is not a
            // monitor call (satellite of the shootdown protocol).
            op_name = "os.satp";
            ++stats.osOps;
            smp.hart(initiator).setSatp(
                spaces[initiator]->rootPa(),
                kernels[initiator]->config().pagingMode);
        } else if (config.virtLayer) {
            // vsatp rewrite with an unchanged root: the guest twin of
            // os.satp — drives the hfence shootdown outside any
            // monitor call.
            op_name = "virt.vsatp";
            ++stats.virtOps;
            smp.virtHart(initiator).setVsatp(
                guests[initiator].gpt->rootPa());
        } else {
            op_name = "switchTo";
            result = monitor.switchTo(pick_domain(true));
        }
        injector.clearPlans(); // disarm anything that did not fire

        // ---- audit the outcome --------------------------------------
        ++stats.ops;
        if (result.ok) {
            ++stats.okOps;
            if (result.degraded)
                ++stats.degradedOps;
        } else {
            ++stats.failedOps;
            if (result.code == MonitorError::InjectedFault)
                ++stats.injectedFaults;
            if (result.code == MonitorError::None) {
                fail(i, "failed without an error code: " + result.error);
                break;
            }
            if (digest_checked) {
                ++stats.rollbackChecks;
                bool mismatched = false;
                for (unsigned h = 0; h < config.harts && !mismatched;
                     ++h) {
                    const uint64_t post =
                        monitor.hartStateDigest(h, config.fullDigest);
                    if (post != pre[h]) {
                        fail(i, std::string("hart ") +
                                    std::to_string(h) +
                                    " state changed across a failed "
                                    "call (" +
                                    toString(result.code) + ": " +
                                    result.error + ")");
                        mismatched = true;
                    }
                }
                if (mismatched)
                    break;
            }
        }

        // Convergence: outside a shootdown window every hart's view —
        // its own register file over the shared tables — must be
        // identical, success or rollback.
        if (i % 4 == 0) {
            ++stats.convergenceChecks;
            // include_virt=false: per-hart guests legitimately run
            // their own tables — only the host view must converge.
            // include_csr_counter=false: coalesced windows fence
            // siblings with one net diff, so write counters diverge
            // legitimately; register *contents* must still agree.
            const uint64_t d0 = monitor.hartStateDigest(
                0, config.fullDigest, false, false);
            for (unsigned h = 1; h < config.harts; ++h) {
                if (monitor.hartStateDigest(h, config.fullDigest, false,
                                            false) != d0) {
                    fail(i, std::string("hart ") + std::to_string(h) +
                                " diverged from hart 0 outside a "
                                "shootdown window");
                    break;
                }
            }
            if (stats.failed)
                break;
        }

        // The stale checker may have tripped mid-window; either way a
        // quiescent sweep must be clean after every op.
        if (!checker.failed())
            checker.checkQuiescent();
        if (checker.failed()) {
            fail(i, checker.failure());
            break;
        }
        if (hook.failed()) {
            fail(i, hook.failure());
            break;
        }

        ++stats.invariantChecks;
        const std::string violation = checkIsolationInvariants(monitor);
        if (!violation.empty()) {
            fail(i, "invariant violated: " + violation);
            break;
        }

        // RAS campaigns: one patrol batch between every op — latent
        // poison the consumers have not tripped over (failed reports,
        // suspended victims) is found and contained within a lap. Runs
        // after the audits: its containments belong to the *next* op's
        // oracle snapshot.
        if (config.rasLayer && !stats.failed) {
            op_name = "ras.patrol";
            if (const auto hit = scrub->step()) {
                const auto before = live();
                DomainId owner = 0;
                for (DomainId id : before) {
                    for (const Gms &gms : monitor.gmsOf(id)) {
                        if (gms.base <= *hit &&
                            *hit < gms.base + gms.size) {
                            owner = id;
                        }
                    }
                }
                ++stats.rasReports;
                const auto mc = monitor.handleMachineCheck(*hit);
                if (mc.ok) {
                    auditBlast(i, before, owner);
                } else if (mc.code != MonitorError::RasFatal) {
                    fail(i, "patrol report failed: " + mc.error);
                }
            }
            if (stats.failed)
                break;
        }
    }

    injector.disable();
    smp.setInterleaveHook(nullptr);

    stats.ipiShootdowns = monitor.stats().get("ipi_shootdowns");
    stats.ipiLost = monitor.stats().get("ipi_lost");
    stats.lockContended = hook.contended();
    stats.staleProbes = checker.probesRun();
    stats.preAckStaleHits = checker.preAckStaleHits();
    stats.postAckViolations = checker.postAckViolations();
    if (config.fleetLayer)
        stats.coalescedWindows = monitor.stats().get("coalesced_windows");
    if (config.virtLayer) {
        // Monitor-call fences and direct vsatp/hgatp fences both count.
        stats.hfenceShootdowns = monitor.stats().get("hfence_shootdowns") +
                                 smp.stats().get("hfence_shootdowns");
        stats.virtStaleProbes = checker.virtProbesRun();
        stats.virtPreAckStaleHits = checker.virtPreAckStaleHits();
        stats.staleExecGrants = checker.staleExecGrants();
        stats.staleRwGrants = checker.staleRwGrants();
    }
    if (config.rasLayer) {
        stats.rasQuarantines = monitor.stats().get("ras.quarantines");
        stats.rasContained =
            monitor.stats().get("ras.contained_domains");
        stats.rasHeals = monitor.stats().get("ras.heals");
        stats.rasFatalEvents = monitor.stats().get("ras.fatal");
        stats.scrubPagesScanned = scrub->pagesScanned();
        stats.scrubDetections = scrub->detections();
        // A whole-host degrade is only legal when the campaign planted
        // monitor-region poison (or a rebuild ran out of frames) —
        // anything else means containment escalated past its class.
        if (monitor.rasFatal() && !rasFatalExpected && !stats.failed) {
            ++stats.rasBlastViolations;
            stats.failed = true;
            stats.failure =
                "seed " + std::to_string(config.seed) +
                ": host degraded without a monitor-region poison event";
        }
    }

    if (sampler) {
        sampler->sample(campaign_cycles());
        *config.statsSeriesOut = sampler->dumpJson();
    }
    if (config.statsJsonOut) {
        StatRegistry registry;
        monitor.registerStats(registry);
        smp.registerStats(registry);
        checker.registerStats(registry);
        iopmp.registerStats(registry);
        if (scrub)
            scrub->registerStats(registry);
        for (unsigned h = 0; h < unsigned(kernels.size()); ++h) {
            kernels[h]->registerStats(
                registry, h == 0 ? "os"
                                 : "hart" + std::to_string(h) + ".os");
        }
        *config.statsJsonOut = registry.dumpJson();
    }
    return stats;
}

} // namespace

} // namespace hpmp
