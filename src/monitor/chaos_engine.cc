#include "monitor/chaos_engine.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <sstream>

#include "base/fault_inject.h"
#include "base/rng.h"
#include "base/stats.h"
#include "core/params.h"
#include "monitor/invariants.h"
#include "monitor/secure_monitor.h"

namespace hpmp
{

namespace
{

/**
 * Each domain draws its regions from a 64 MiB window keyed by its id,
 * far above the monitor region. Windows bound PMP-table growth (a few
 * leaf pages per domain) and make same-window collisions — rejected
 * overlapping registrations — a regularly exercised path.
 */
constexpr Addr kWindowBase = 256_MiB;
constexpr uint64_t kWindowSize = 64_MiB;
constexpr unsigned kWindows = 10;
constexpr unsigned kMaxDomains = 6;
/**
 * High enough that a domain's fast-GMS count regularly exceeds the
 * Hpmp segment budget (numEntries - 3 = 13), so the demote-to-table
 * degraded mode is exercised, not just unit-tested.
 */
constexpr unsigned kMaxGmsPerDomain = 24;
constexpr DomainId kBogusDomain = 777777;

Addr
windowOf(DomainId id)
{
    return kWindowBase + (id % kWindows) * kWindowSize;
}

Perm
randomPerm(Rng &rng)
{
    switch (rng.below(5)) {
      case 0: return Perm::rw();
      case 1: return Perm::ro();
      case 2: return Perm::rx();
      case 3: return Perm::none();
      default: return Perm::rwx();
    }
}

uint64_t
randomNapotSize(Rng &rng)
{
    // 4 KiB .. 4 MiB, biased small so many regions fit one window.
    static constexpr uint64_t sizes[] = {
        4_KiB, 4_KiB, 8_KiB, 16_KiB, 64_KiB, 256_KiB, 1_MiB, 4_MiB,
    };
    return sizes[rng.below(std::size(sizes))];
}

} // namespace

ChaosStats
runChaos(const ChaosConfig &config)
{
    ChaosStats stats;
    Rng rng(config.seed);

    auto machine = std::make_unique<Machine>(rocketParams());
    MonitorConfig mc;
    mc.scheme = config.scheme;
    SecureMonitor monitor(*machine, mc);
    machine->setPriv(PrivMode::Supervisor);

    FaultInjector &injector = FaultInjector::instance();
    injector.enable(config.seed);

    const char *op_name = "?";
    auto fail = [&](unsigned index, const std::string &why) {
        std::ostringstream os;
        os << "seed " << config.seed << " op #" << index << " ("
           << op_name << "): " << why;
        stats.failed = true;
        stats.failure = os.str();
    };

    // Helpers over the current population -----------------------------
    auto live = [&]() { return monitor.domainIds(); };
    auto pick_domain = [&](bool allow_bogus) -> DomainId {
        if (allow_bogus && rng.chance(0.08))
            return kBogusDomain;
        const auto ids = live();
        return ids[rng.below(ids.size())];
    };
    auto pick_gms_base = [&](DomainId id) -> Addr {
        if (!monitor.domainExists(id))
            return windowOf(id);
        const auto &list = monitor.gmsOf(id);
        if (list.empty() || rng.chance(0.1)) {
            // A base that (usually) names no GMS.
            return windowOf(id) + rng.below(16) * kPageSize;
        }
        return list[rng.below(list.size())].base;
    };
    auto random_gms = [&](DomainId id) -> Gms {
        Gms gms;
        gms.size = randomNapotSize(rng);
        const Addr window = windowOf(id);
        gms.base = window + rng.below(kWindowSize / gms.size) * gms.size;
        gms.perm = randomPerm(rng);
        gms.label = rng.chance(0.7) ? GmsLabel::Fast : GmsLabel::Slow;
        // A taste of hostile input: misaligned bases, zero sizes and
        // regions reaching into the monitor-private area. All must be
        // rejected with a typed error and zero state change.
        if (rng.chance(0.05))
            gms.base += 0x100;
        if (rng.chance(0.03))
            gms.size = 0;
        if (rng.chance(0.04))
            gms.base = monitor.config().monitorBase +
                       rng.below(monitor.config().monitorSize / kPageSize) *
                           kPageSize;
        return gms;
    };

    for (unsigned i = 0; i < config.ops && !stats.failed; ++i) {
        // Arm a fault for this op with the configured probability: the
        // Nth upcoming site hit, whatever site that turns out to be.
        const bool armed = rng.chance(config.faultProb);
        const bool digest_checked = armed || i % 8 == 0;
        uint64_t pre_digest = 0;
        if (digest_checked)
            pre_digest = monitor.stateDigest(config.fullDigest);
        if (armed)
            injector.armAnyNth(1 + rng.below(8));

        // ---- run one random operation -------------------------------
        MonitorResult result;
        const unsigned roll = unsigned(rng.below(100));
        if (roll < 8) {
            op_name = "createDomain";
            if (live().size() < kMaxDomains)
                monitor.createDomain();
        } else if (roll < 14) {
            op_name = "destroyDomain";
            result = monitor.destroyDomain(pick_domain(true));
        } else if (roll < 34) {
            op_name = "addGms";
            const DomainId id = pick_domain(true);
            if (!monitor.domainExists(id) ||
                monitor.gmsOf(id).size() < kMaxGmsPerDomain) {
                result = monitor.addGms(id, random_gms(id));
            }
        } else if (roll < 42) {
            op_name = "removeGms";
            const DomainId id = pick_domain(true);
            result = monitor.removeGms(id, pick_gms_base(id));
        } else if (roll < 50) {
            op_name = "setLabel";
            const DomainId id = pick_domain(true);
            result = monitor.setLabel(id, pick_gms_base(id),
                                      rng.chance(0.5) ? GmsLabel::Fast
                                                      : GmsLabel::Slow);
        } else if (roll < 56) {
            op_name = "setPerm";
            const DomainId id = pick_domain(true);
            result =
                monitor.setPerm(id, pick_gms_base(id), randomPerm(rng));
        } else if (roll < 62) {
            op_name = "shareGms";
            const DomainId owner = pick_domain(false);
            const DomainId peer = pick_domain(true);
            result = monitor.shareGms(owner, pick_gms_base(owner), peer,
                                      randomPerm(rng));
        } else if (roll < 72) {
            op_name = "hintHotRegion";
            const DomainId id = pick_domain(true);
            Addr base = pick_gms_base(id);
            uint64_t size = randomNapotSize(rng);
            if (monitor.domainExists(id) && !monitor.gmsOf(id).empty() &&
                rng.chance(0.8)) {
                // A NAPOT subrange of an existing GMS (usually valid).
                const auto &list = monitor.gmsOf(id);
                const Gms &gms = list[rng.below(list.size())];
                size = std::max<uint64_t>(gms.size >> rng.below(3),
                                          kPageSize);
                if (isPowerOf2(gms.size) && size <= gms.size) {
                    base = gms.base +
                           rng.below(gms.size / size) * size;
                }
            }
            result = monitor.hintHotRegion(id, base, size);
        } else if (roll < 86) {
            op_name = "switchTo";
            result = monitor.switchTo(pick_domain(true));
        } else {
            op_name = "attest";
            const DomainId id = pick_domain(false);
            const uint64_t nonce = rng.next();
            const auto report = monitor.attestDomain(id, nonce);
            if (report.ok) {
                if (!monitor.attestor().verify(report.value, nonce)) {
                    fail(i, "attestation report failed verification");
                    break;
                }
            } else {
                result = MonitorResult::fail(report.code, report.error);
            }
        }
        injector.clearPlans(); // disarm anything that did not fire

        // ---- audit the outcome --------------------------------------
        ++stats.ops;
        if (result.ok) {
            ++stats.okOps;
            if (result.degraded)
                ++stats.degradedOps;
        } else {
            ++stats.failedOps;
            if (result.code == MonitorError::InjectedFault)
                ++stats.injectedFaults;
            if (result.code == MonitorError::None) {
                fail(i, "failed without an error code: " + result.error);
                break;
            }
            if (digest_checked) {
                ++stats.rollbackChecks;
                const uint64_t post =
                    monitor.stateDigest(config.fullDigest);
                if (post != pre_digest) {
                    fail(i, std::string("state changed across a failed "
                                        "call (") +
                                toString(result.code) + ": " +
                                result.error + ")");
                    break;
                }
            }
        }

        ++stats.invariantChecks;
        const std::string violation = checkIsolationInvariants(monitor);
        if (!violation.empty()) {
            fail(i, "invariant violated: " + violation);
            break;
        }
    }

    injector.disable();

    if (config.statsJsonOut) {
        StatRegistry registry;
        monitor.registerStats(registry);
        machine->registerStats(registry);
        *config.statsJsonOut = registry.dumpJson();
    }
    return stats;
}

} // namespace hpmp
