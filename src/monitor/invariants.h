/**
 * @file
 * Security-invariant checker for the Penglai-HPMP stack.
 *
 * The monitor's whole job is upholding a handful of isolation
 * properties no matter what sequence of (possibly hostile, possibly
 * fault-interrupted) calls the OS issues. This checker re-derives
 * those properties from first principles after the fact:
 *
 *  1. Ownership exclusivity — no two domains' accessible physical
 *     intervals overlap, except regions explicitly marked shared
 *     (which must be the *same* region in both lists).
 *  2. Monitor privacy — the monitor-private region is in no domain's
 *     GMS list and resolves to no permission for S/U accesses.
 *  3. Hardware agreement — what the HPMP unit would actually grant
 *     (via the functional probe, same priority rules as a real check)
 *     matches the monitor's GMS bookkeeping for the current domain,
 *     and denies everything the current domain does not own.
 *  4. Segment mirrors — every programmed segment entry corresponds to
 *     a current-domain GMS with the same base/size/permission, and
 *     (under Hpmp) the set of mirrored GMSs is exactly the fast ones.
 *  5. Table agreement — every domain's PMP Table contents agree with
 *     its GMS list, including after rollbacks and huge-pmpte splits.
 *
 * The checks use only functional probes (HpmpUnit::probe,
 * PmpTable::lookup), so running them perturbs no statistics, no
 * PMPTW-Cache state and no TLBs — the chaos fuzzer calls them after
 * every single operation.
 */

#ifndef HPMP_MONITOR_INVARIANTS_H
#define HPMP_MONITOR_INVARIANTS_H

#include <string>

#include "monitor/secure_monitor.h"

namespace hpmp
{

/**
 * Check every isolation invariant against the monitor's current state.
 * @return empty string when all invariants hold, otherwise a
 *         description of the first violation found.
 */
std::string checkIsolationInvariants(SecureMonitor &monitor);

} // namespace hpmp

#endif // HPMP_MONITOR_INVARIANTS_H
