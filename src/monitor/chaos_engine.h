/**
 * @file
 * Randomized domain-lifecycle fuzzer for the secure monitor.
 *
 * Drives thousands of random monitor calls — create/destroy domains,
 * register/remove/relabel/share GMSs, hot-region hints, domain
 * switches, attestation — through a monitor with fault injection
 * armed, and checks after every single operation that
 *
 *  - the isolation invariants hold (monitor/invariants.h), and
 *  - every failed call (validation failure or injected fault) left
 *    the monitor + HPMP + PMP-table state bit-identical
 *    (SecureMonitor::stateDigest), and
 *  - every success that degraded (Hpmp fast-GMS demotion) says so.
 *
 * Everything is derived from one 64-bit seed, so any failure the CI
 * chaos job finds is replayed exactly with `chaos_fuzz --seed N`.
 */

#ifndef HPMP_MONITOR_CHAOS_ENGINE_H
#define HPMP_MONITOR_CHAOS_ENGINE_H

#include <cstdint>
#include <string>

#include "hpmp/isolation.h"

namespace hpmp
{

/** One fuzz campaign's parameters. */
struct ChaosConfig
{
    uint64_t seed = 1;
    unsigned ops = 1000;
    IsolationScheme scheme = IsolationScheme::Hpmp;
    /** Probability that an op runs with a fault armed at a random site. */
    double faultProb = 0.25;
    /**
     * Hash the full PMP-table contents in the rollback oracle (the
     * strongest check). Disable only if a campaign is too slow under
     * sanitizers; metadata and entry-write counters are always hashed.
     */
    bool fullDigest = true;
    /**
     * Harts in the system. 1 (the default) runs the classic
     * single-machine campaign, byte-for-byte identical to before the
     * SMP model existed. >1 runs the multi-hart campaign: monitor
     * calls from random harts, IPI shootdowns with fault injection in
     * delivery/ack, a stale-translation checker interleaved into every
     * protocol step, nested-call lock-contention probes, and per-hart
     * rollback digests.
     */
    unsigned harts = 1;
    /**
     * Multi-hart only: drive an OS layer too — a per-hart kernel
     * (own domain, contiguous PT pool) with an address space per
     * hart, random mmap/munmap/touch/demand-fault traffic, and DMA
     * transfers checked by a two-master IOPMP. Exercises the
     * os.page_alloc / os.pt_pool_miss fault sites under the same
     * injection plans as the monitor calls.
     */
    bool osLayer = false;
    /**
     * Multi-hart only (and mutually exclusive with osLayer, whose
     * kernels page the host harts): attach a VirtMachine guest to
     * every hart. Guests run their own GPT/NPT pairs, switch hgatp
     * between nested tables, remap GPT/NPT leaves, and route every
     * vsatp/hgatp write through the hfence shootdown; the stale
     * checker's two-stage oracle audits each protocol step.
     */
    bool virtLayer = false;
    /**
     * Multi-hart only (mutually exclusive with osLayer and virtLayer):
     * fleet-serving chaos. Adds coalesced epochs (several domain
     * switches from rotating harts batched into one shootdown window),
     * tenant churn with retired-id tracking, stale-handle probes
     * (every retired DomainId must stay a typed denial after its slot
     * is recycled), and same-domain re-switches exercising the
     * empty-diff shootdown elision — all under the same fault plans
     * and stale-translation checker as the base campaign.
     */
    bool fleetLayer = false;
    /**
     * RAS chaos (mutually exclusive with osLayer/virtLayer/fleetLayer):
     * plant memory poison across the three blast-radius classes — a
     * victim enclave's data pages, pmpte frames of a live PMP Table,
     * free/host frames, and (rarely, late in the campaign) the
     * monitor-private region — then detect it through real consumers
     * (bare accesses, DMA beats, a background patrol scrubber) and
     * route every machine check into
     * SecureMonitor::handleMachineCheck. After every containment the
     * campaign audits the blast-radius contract: only the owning
     * domain dies, self-heals leave the measurement bit-identical and
     * the domain grantable, free-frame poison touches nobody, and
     * monitor poison degrades exactly the whole host (every mutating
     * call a typed RasFatal denial, reads still up). Runs the SMP
     * campaign even with harts == 1.
     */
    bool rasLayer = false;
    /**
     * Migration chaos (mutually exclusive with every other layer):
     * run *two* hosts — two SmpSystems with their own monitors — and
     * ping-pong domains between them through the live-migration
     * engine (src/migrate/) while faults hit the protocol's named
     * sites (torn checkpoints, dropped/duplicated/corrupted frames,
     * lost acks, destination attest failures, crashes during
     * commit). After every migration the campaign audits: aborts
     * leave the source digest bit-identical and the domain grantable
     * again; commits leave the domain on exactly one host with its
     * memory intact; the cross-system oracle saw no dual-grant
     * window. Implemented by runMigrateChaos (migrate/migrate_chaos.h)
     * — the chaos_fuzz tool dispatches on this flag.
     */
    bool migrateLayer = false;
    /**
     * When set, receives the campaign's full stats-registry JSON
     * (monitor + machine observability counters) captured just before
     * the campaign's machine is torn down.
     */
    std::string *statsJsonOut = nullptr;
    /**
     * When set, receives a windowed time-series of the same registry
     * (StatSampler::dumpJson): every counter snapshotted each
     * statsSeriesInterval simulated cycles of monitor work, so a
     * campaign's telemetry can be plotted over time instead of only
     * summed at the end. The campaign clock is the monitor's
     * call_cycles distribution sum (both monitors' sums added for
     * --migrate), which advances exactly with the simulated work.
     */
    std::string *statsSeriesOut = nullptr;
    /** Simulated cycles between stats-series samples. */
    uint64_t statsSeriesInterval = 10000;
};

/** Campaign outcome and coverage counters. */
struct ChaosStats
{
    unsigned ops = 0;            //!< operations attempted
    unsigned okOps = 0;          //!< operations that succeeded
    unsigned failedOps = 0;      //!< typed failures (any cause)
    unsigned injectedFaults = 0; //!< failures caused by the injector
    unsigned degradedOps = 0;    //!< successes in degraded mode
    unsigned rollbackChecks = 0; //!< digest-verified rollbacks
    unsigned invariantChecks = 0;

    // Multi-hart campaigns only (zero in single-hart runs):
    unsigned harts = 1;            //!< harts the campaign ran with
    uint64_t ipiShootdowns = 0;    //!< layout changes that IPI'd siblings
    uint64_t ipiLost = 0;          //!< injected IPI losses (failed closed)
    uint64_t lockContended = 0;    //!< nested calls bounced off the lock
    uint64_t staleProbes = 0;      //!< stale-checker accesses driven
    uint64_t preAckStaleHits = 0;  //!< stale grants inside the window
    uint64_t convergenceChecks = 0; //!< all-hart digest comparisons
    uint64_t osOps = 0;            //!< OS-layer operations performed
    uint64_t dmaOps = 0;           //!< DMA transfers attempted
    uint64_t dmaBusWaits = 0;      //!< transfers stalled by the bus
    uint64_t dmaBusWaitCycles = 0; //!< total shared-bus stall cycles

    // Virt campaigns only (--virt):
    uint64_t virtOps = 0;           //!< guest ops (touch/switch/remap)
    uint64_t hfenceShootdowns = 0;  //!< guest fences riding monitor IPIs
    uint64_t virtStaleProbes = 0;   //!< two-stage oracle probes driven
    uint64_t virtPreAckStaleHits = 0; //!< guest stale grants in-window
    uint64_t staleExecGrants = 0;   //!< stale grants on fetch watches
    uint64_t staleRwGrants = 0;     //!< stale grants on load/store watches

    // Fleet campaigns only (--fleet):
    uint64_t fleetOps = 0;          //!< fleet sub-ops performed
    uint64_t fleetEpochs = 0;       //!< coalesced switch epochs run
    uint64_t fleetChurns = 0;       //!< tenants destroyed (ids retired)
    uint64_t fleetStaleProbes = 0;  //!< retired-id probes (all denied)
    uint64_t coalescedWindows = 0;  //!< windows the monitor flushed
    uint64_t postAckViolations = 0; //!< checker hard failures (must be 0)

    // RAS campaigns only (--ras):
    uint64_t rasOps = 0;            //!< RAS sub-ops performed
    uint64_t rasPoisons = 0;        //!< poison events planted
    uint64_t rasMachineChecks = 0;  //!< poison consumed via access/DMA paths
    uint64_t rasReports = 0;        //!< handleMachineCheck invocations
    uint64_t rasQuarantines = 0;    //!< frames retired by the monitor
    uint64_t rasContained = 0;      //!< domains destroyed to contain poison
    uint64_t rasHeals = 0;          //!< PMP Tables rebuilt from clean frames
    uint64_t rasFatalEvents = 0;    //!< whole-host degrades (monitor poison)
    uint64_t scrubPagesScanned = 0; //!< patrol scrubber coverage
    uint64_t scrubDetections = 0;   //!< poisoned frames the patrol found
    uint64_t rasBlastViolations = 0; //!< containment crossed a boundary (must be 0)

    // Migration campaigns only (--migrate):
    uint64_t migrations = 0;     //!< migration attempts started
    uint64_t migrateCommits = 0; //!< committed + activated on the dest
    uint64_t migrateAborts = 0;  //!< rolled back pre-commit
    uint64_t migrateStranded = 0; //!< committed, COMMIT lost (staged)
    uint64_t migrateRetries = 0;  //!< message retries across phases
    uint64_t migrateBytes = 0;    //!< checkpoint bytes moved
    uint64_t migrateDigestChecks = 0;  //!< post-abort digest audits
    uint64_t dualGrantChecks = 0;      //!< oracle protocol-step probes
    uint64_t dualGrantViolations = 0;  //!< must be 0
    uint64_t migrateStaleProbes = 0;   //!< post-commit stale-id denials

    bool failed = false;   //!< an invariant or rollback check tripped
    std::string failure;   //!< description, mentions op index + seed
};

/**
 * Run one campaign. Deterministic in config.seed (and, for multi-hart
 * configs, config.harts — the interleaving derives from both).
 */
ChaosStats runChaos(const ChaosConfig &config);

} // namespace hpmp

#endif // HPMP_MONITOR_CHAOS_ENGINE_H
