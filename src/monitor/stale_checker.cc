#include "monitor/stale_checker.h"

#include <cstdio>

#include "base/fault_inject.h"
#include "base/logging.h"
#include "core/virt_machine.h"

namespace hpmp
{

namespace
{

const char *
typeName(AccessType type)
{
    switch (type) {
      case AccessType::Load: return "load";
      case AccessType::Store: return "store";
      case AccessType::Fetch: return "fetch";
    }
    return "?";
}

Addr
pageBase(Addr addr)
{
    return addr & ~Addr(kPageSize - 1);
}

} // namespace

StaleChecker::StaleChecker(SmpSystem &smp, SecureMonitor &monitor)
    : smp_(smp), monitor_(monitor), acked_(smp.numHarts(), false)
{
    stats_.add("probes", &statProbes_);
    stats_.add("windows", &statWindows_);
    stats_.add("pre_ack_stale_hits", &preAckStaleHits_);
    stats_.add("post_ack_violations", &postAckViolations_);
    stats_.add("stale_denies", &statStaleDenies_);
    stats_.add("page_fault_skips", &statPageFaultSkips_);
    stats_.add("quiescent_checks", &statQuiescentChecks_);
    stats_.add("virt_probes", &statVirtProbes_);
    stats_.add("virt_pre_ack_stale_hits", &virtPreAckStaleHits_);
    stats_.add("virt_stale_denies", &statVirtStaleDenies_);
    stats_.add("stale_origin_guest_stage", &statStaleGuestOrigin_);
    stats_.add("stale_origin_g_stage", &statStaleGStageOrigin_);
    stats_.add("stale_origin_pmpte", &statStalePmpteOrigin_);
    stats_.add("stale_exec_grants", &statStaleExecGrants_);
    stats_.add("stale_rw_grants", &statStaleRwGrants_);
}

void
StaleChecker::setGuestPerm(unsigned hart, Addr gva, Perm perm)
{
    guestPerm_[{hart, pageBase(gva)}] = perm;
}

void
StaleChecker::setGpaPerm(unsigned hart, Addr gpa, Perm perm)
{
    gpaPerm_[{hart, pageBase(gpa)}] = perm;
}

bool
StaleChecker::canonicalAllows(const StaleWatch &watch) const
{
    return monitor_.machine().hpmp().probe(watch.pa).allows(watch.type);
}

bool
StaleChecker::fenced(unsigned hart) const
{
    if (!windowOpen_)
        return true; // outside a window every hart must be converged
    return hart == windowInitiator_ || acked_[hart];
}

StaleChecker::ProbeResult
StaleChecker::probeWatch(const StaleWatch &watch)
{
    // The checker is instrumentation: its probes must neither trip
    // fault sites nor consume hits from the campaign's plan.
    FaultInjector::SuspendGuard guard;
    ++statProbes_;

    Machine &hart = smp_.hart(watch.hart);
    ProbeResult res;
    res.regGrant = hart.hpmp().probe(watch.pa).allows(watch.type);
    if (!watch.accessPath)
        return res;

    const AccessOutcome out = hart.access(watch.va, watch.type);
    switch (out.fault) {
      case Fault::None:
        res.access = AccessVerdict::Grant;
        break;
      case Fault::LoadAccessFault:
      case Fault::StoreAccessFault:
      case Fault::FetchAccessFault:
        res.access = AccessVerdict::Deny;
        break;
      default:
        // A page fault says nothing about physical permissions: the
        // watch's mapping is absent on this hart right now. Void the
        // access-level verdict (the register-level one still counts).
        res.access = AccessVerdict::PageFault;
        ++statPageFaultSkips_;
        break;
    }
    return res;
}

void
StaleChecker::recordViolation(const StaleWatch &watch, const char *level,
                              const char *direction, const char *where,
                              uint64_t seq)
{
    ++postAckViolations_;
    if (failed_)
        return; // keep the first, most proximate diagnosis
    failed_ = true;
    failure_ = std::string("stale-translation violation at ") + where +
               " (seq " + std::to_string(seq) + "): hart " +
               std::to_string(watch.hart) + " " + direction + " " +
               typeName(watch.type) + " at pa 0x";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(watch.pa));
    failure_ += buf;
    failure_ += std::string(" against the canonical state (") + level +
                " level)";
}

StaleChecker::VirtOracle
StaleChecker::canonicalVirtAllows(const VirtStaleWatch &watch) const
{
    // Deny origin = the first stage whose committed/canonical
    // permission refuses the access — exactly the stage whose stale
    // cached copy a granting hart must still be holding.
    VirtOracle oracle;
    const auto guest = guestPerm_.find({watch.hart, pageBase(watch.gva)});
    if (guest == guestPerm_.end() || !guest->second.allows(watch.type)) {
        oracle.denyOrigin = VirtFaultOrigin::GuestStage;
        return oracle;
    }
    const auto gpa = gpaPerm_.find({watch.hart, pageBase(watch.gpa)});
    if (gpa == gpaPerm_.end() || !gpa->second.allows(watch.type)) {
        oracle.denyOrigin = VirtFaultOrigin::GStage;
        return oracle;
    }
    if (!monitor_.machine().hpmp().probe(watch.spa).allows(watch.type)) {
        oracle.denyOrigin = VirtFaultOrigin::Phys;
        return oracle;
    }
    oracle.allow = true;
    return oracle;
}

bool
StaleChecker::probeVirtWatch(const VirtStaleWatch &watch)
{
    FaultInjector::SuspendGuard guard;
    ++statVirtProbes_;
    return smp_.virtHart(watch.hart).access(watch.gva, watch.type).ok();
}

void
StaleChecker::recordVirtViolation(const VirtStaleWatch &watch,
                                  VirtFaultOrigin origin,
                                  const char *where, uint64_t seq)
{
    ++postAckViolations_;
    if (failed_)
        return; // keep the first, most proximate diagnosis
    failed_ = true;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "gva 0x%llx (gpa 0x%llx, spa 0x%llx)",
                  static_cast<unsigned long long>(watch.gva),
                  static_cast<unsigned long long>(watch.gpa),
                  static_cast<unsigned long long>(watch.spa));
    failure_ = std::string("stale guest-translation violation at ") +
               where + " (seq " + std::to_string(seq) + "): hart " +
               std::to_string(watch.hart) + " granted stale " +
               typeName(watch.type) + " at " + buf + ", " +
               toString(origin) + " origin";
}

void
StaleChecker::sweepVirt(bool strict, const char *where, uint64_t seq)
{
    if (virtWatches_.empty() || !smp_.virtEnabled())
        return;
    for (size_t i = 0; i < virtWatches_.size(); ++i) {
        const VirtStaleWatch &w = virtWatches_[i];
        // Same oracle discipline as sweep(): mid-window judges against
        // the WindowBegin capture, strict sweeps re-ask the committed
        // maps and the canonical unit.
        const VirtOracle oracle = strict || virtOracle_.empty()
                                      ? canonicalVirtAllows(w)
                                      : virtOracle_[i];
        const bool hartFenced = fenced(w.hart);
        const bool grant = probeVirtWatch(w);

        if (grant && !oracle.allow) {
            switch (oracle.denyOrigin) {
              case VirtFaultOrigin::GuestStage:
                ++statStaleGuestOrigin_;
                break;
              case VirtFaultOrigin::GStage:
                ++statStaleGStageOrigin_;
                break;
              default:
                ++statStalePmpteOrigin_;
                break;
            }
            // Exec vs RW split: a stale instruction fetch through a
            // revoked X-only leaf is hunted under its own counter — a
            // hart still *executing* revoked memory is a different
            // severity class than one still reading it.
            if (w.type == AccessType::Fetch)
                ++statStaleExecGrants_;
            else
                ++statStaleRwGrants_;
            if (hartFenced)
                recordVirtViolation(w, oracle.denyOrigin, where, seq);
            else
                ++virtPreAckStaleHits_;
        }

        // Spurious guest denials stay non-fatal even in strict sweeps:
        // the two-stage path composes guest PT loads with physical
        // checks on the table frames themselves, so a denial can have
        // causes outside the watch's three oracle stages.
        if (!grant && oracle.allow)
            ++statVirtStaleDenies_;
    }
}

void
StaleChecker::sweep(bool strict, const char *where, uint64_t seq)
{
    for (size_t i = 0; i < watches_.size(); ++i) {
        const StaleWatch &w = watches_[i];
        // Mid-window the oracle is the WindowBegin capture (the state
        // the call committed before fencing); strict sweeps re-ask the
        // canonical unit so an aborted call is judged against the
        // *restored* state.
        const bool allow = strict || oracle_.empty()
                               ? canonicalAllows(w)
                               : oracle_[i];
        const bool hartFenced = fenced(w.hart);
        const ProbeResult res = probeWatch(w);

        // Stale *grants* are the security-relevant direction.
        const bool regStaleGrant = res.regGrant && !allow;
        const bool accStaleGrant =
            res.access == AccessVerdict::Grant && !allow;
        if (regStaleGrant || accStaleGrant) {
            const char *level = regStaleGrant ? "register" : "access";
            if (hartFenced)
                recordViolation(w, level, "granted stale", where, seq);
            else
                ++preAckStaleHits_;
        }

        // Fail-closed mismatches: spurious denials. Never fatal inside
        // the window. A strict sweep treats a fenced hart whose
        // *register file* still disagrees with canonical as out of
        // sync — the fence did not converge it. Access-level denials
        // stay non-fatal even then: the access path composes the walk
        // with checks on intermediate table frames, so a denial there
        // can have causes other than a stale translation.
        const bool regStaleDeny = !res.regGrant && allow;
        const bool accStaleDeny =
            res.access == AccessVerdict::Deny && allow;
        if (regStaleDeny || accStaleDeny) {
            ++statStaleDenies_;
            if (strict && hartFenced && regStaleDeny) {
                recordViolation(w, "register", "denied fresh", where,
                                seq);
            }
        }
    }
}

void
StaleChecker::onIpiStep(const IpiEvent &event)
{
    switch (event.phase) {
      case IpiPhase::WindowBegin:
        ++statWindows_;
        windowOpen_ = true;
        windowInitiator_ = event.srcHart;
        acked_.assign(smp_.numHarts(), false);
        // Capture the committed (new) state as the mid-window oracle.
        oracle_.resize(watches_.size());
        for (size_t i = 0; i < watches_.size(); ++i)
            oracle_[i] = canonicalAllows(watches_[i]);
        virtOracle_.resize(virtWatches_.size());
        for (size_t i = 0; i < virtWatches_.size(); ++i)
            virtOracle_[i] = canonicalVirtAllows(virtWatches_[i]);
        sweep(false, "window-begin", event.seq);
        sweepVirt(false, "window-begin", event.seq);
        break;

      case IpiPhase::Posted:
      case IpiPhase::Delivered:
        sweep(false, toString(event.phase), event.seq);
        sweepVirt(false, toString(event.phase), event.seq);
        break;

      case IpiPhase::Acked:
        if (event.dstHart < acked_.size())
            acked_[event.dstHart] = true;
        sweep(false, "acked", event.seq);
        sweepVirt(false, "acked", event.seq);
        break;

      case IpiPhase::CoalescedCommit:
        // A later call committed into the still-open coalesced window:
        // the canonical state everyone will be fenced to just moved
        // forward. Re-capture the mid-window oracle against it, and
        // move the initiator privilege to the new committer — it is
        // the only hart the monitor synced to this newest state; every
        // earlier ack (there are none pre-flush, but be explicit) or
        // earlier committer is stale again until the flush fences it.
        windowInitiator_ = event.srcHart;
        acked_.assign(smp_.numHarts(), false);
        oracle_.resize(watches_.size());
        for (size_t i = 0; i < watches_.size(); ++i)
            oracle_[i] = canonicalAllows(watches_[i]);
        virtOracle_.resize(virtWatches_.size());
        for (size_t i = 0; i < virtWatches_.size(); ++i)
            virtOracle_[i] = canonicalVirtAllows(virtWatches_[i]);
        sweep(false, "coalesced-commit", event.seq);
        sweepVirt(false, "coalesced-commit", event.seq);
        break;

      case IpiPhase::WindowEnd:
        // Emitted by both the commit path and the cross-hart rollback:
        // either way every hart has been fenced, so judge all of them
        // strictly against the canonical state as it stands *now*.
        windowOpen_ = false;
        sweep(true, "window-end", event.seq);
        sweepVirt(true, "window-end", event.seq);
        oracle_.clear();
        virtOracle_.clear();
        break;

      case IpiPhase::SatpFence:
      case IpiPhase::HfenceFence:
        // Not a permission change; nothing to re-judge. The satp and
        // hfence remote-fence paths have their own counters in "smp",
        // and both complete every hart synchronously before the write
        // returns — checkQuiescent judges the result after the op.
        break;
    }
}

bool
StaleChecker::checkQuiescent()
{
    panic_if(windowOpen_,
             "checkQuiescent inside an open shootdown window");
    ++statQuiescentChecks_;
    const uint64_t before = postAckViolations_.value();
    sweep(true, "quiescent", 0);
    sweepVirt(true, "quiescent", 0);
    return postAckViolations_.value() == before;
}

// ---- CrossSystemOracle -------------------------------------------------

CrossSystemOracle::CrossSystemOracle(SecureMonitor &src, SecureMonitor &dst)
    : src_(src), dst_(dst)
{
    stats_.add("checks", &statChecks_);
    stats_.add("violations", &statViolations_);
    stats_.add("register_probes", &statRegProbes_);
}

void
CrossSystemOracle::beginMigration(DomainId src_id,
                                  const std::vector<Gms> &regions)
{
    srcId_ = src_id;
    dstId_ = 0;
    active_ = true;
    haveDst_ = false;
    destCommitted_ = false;
    pages_.clear();
    // Watch the first and last page of every region: revoke bugs tend
    // to clip range edges, and two probes per region keep the per-step
    // cost linear in the GMS list, not the domain size.
    for (const Gms &gms : regions) {
        pages_.push_back(pageBase(gms.base));
        if (gms.size > kPageSize)
            pages_.push_back(pageBase(gms.base + gms.size - 1));
    }
}

void
CrossSystemOracle::finishMigration()
{
    active_ = false;
    haveDst_ = false;
    destCommitted_ = false;
    pages_.clear();
}

bool
CrossSystemOracle::grants(SecureMonitor &monitor, DomainId id)
{
    if (monitor.domainGrantable(id))
        return true;
    // Register level: the monitor may have revoked the domain, but a
    // hart's live HPMP file could still be granting the memory (the
    // layout leak this oracle exists to catch). Any grant of a
    // watched page counts — regions are exclusive, so no other domain
    // may legitimately hold them while the migration is in flight.
    auto probe_unit = [&](const HpmpUnit &unit) {
        for (Addr pa : pages_) {
            ++statRegProbes_;
            if (unit.probe(pa).any())
                return true;
        }
        return false;
    };
    if (SmpSystem *smp = monitor.smp()) {
        for (unsigned h = 0; h < smp->numHarts(); ++h) {
            if (probe_unit(smp->hart(h).hpmp()))
                return true;
        }
        return false;
    }
    return probe_unit(monitor.machine().hpmp());
}

void
CrossSystemOracle::recordViolation(const char *what, const char *where)
{
    ++statViolations_;
    if (!failed_) {
        failed_ = true;
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "migration oracle: %s at step %s (src domain %u, "
                      "dst domain %u)",
                      what, where, unsigned(srcId_), unsigned(dstId_));
        failure_ = buf;
    }
}

void
CrossSystemOracle::step(const char *where)
{
    if (!active_)
        return;
    // The oracle's own probes must not trip fault sites or consume
    // hits from the campaign's injection plan.
    FaultInjector::SuspendGuard guard;
    ++statChecks_;
    const bool src_grants = grants(src_, srcId_);
    const bool dst_grants = haveDst_ && grants(dst_, dstId_);
    if (src_grants && dst_grants)
        recordViolation("dual-grant window (both hosts grant)", where);
    if (destCommitted_ && src_grants) {
        recordViolation("source still grants after destination commit",
                        where);
    }
}

} // namespace hpmp
