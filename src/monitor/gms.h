/**
 * @file
 * General Memory Segment (GMS) — the unified isolation abstraction of
 * Penglai-HPMP (paper §5).
 *
 * A GMS is a contiguous physical region with one permission and a
 * software label. The OS may label a GMS "fast" (a hint: put it in a
 * segment-mode entry) or "slow", but only the secure monitor can set
 * the region range and permission. The monitor treats segment entries
 * as a cache of the permission tables: every GMS is always present in
 * the domain's PMP Table, and fast GMSs are additionally mirrored
 * into low-numbered (higher-priority) segment entries.
 */

#ifndef HPMP_MONITOR_GMS_H
#define HPMP_MONITOR_GMS_H

#include <cstdint>

#include "base/access.h"
#include "base/addr.h"

namespace hpmp
{

/** OS-provided placement hint. */
enum class GmsLabel : uint8_t { Fast, Slow };

/** One general memory segment. */
struct Gms
{
    Addr base = 0;
    uint64_t size = 0;
    Perm perm;
    GmsLabel label = GmsLabel::Slow;
    /**
     * Shared regions (inter-enclave communication, paper Fig. 7 and
     * Fig. 1's "H (shared)" pages) may appear in several domains'
     * GMS lists; exclusive ones may not overlap anything.
     */
    bool shared = false;
    /**
     * Monitor-maintained recency stamp, bumped whenever the OS labels
     * the GMS fast (add/setLabel/hint). When fast GMSs outnumber the
     * segment budget under Hpmp, the coldest stamp is the one demoted
     * to table mode (graceful degradation instead of a failed call).
     */
    uint64_t heat = 0;
};

} // namespace hpmp

#endif // HPMP_MONITOR_GMS_H
