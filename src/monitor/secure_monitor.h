/**
 * @file
 * The Penglai-HPMP secure monitor (paper §5).
 *
 * The monitor is the only software TCB: it owns the HPMP registers
 * and the per-domain PMP Tables, validates GMS registrations from the
 * untrusted OS, and reprograms the isolation state on domain
 * switches. Three policies are supported, matching the paper's
 * comparison systems:
 *
 *  - Penglai-PMP   (IsolationScheme::Pmp):      every GMS needs its
 *    own segment entry; runs out beyond ~a dozen regions/domains.
 *  - Penglai-PMPT  (IsolationScheme::PmpTable): one table-mode entry
 *    covers all memory; unlimited GMSs, slow checks.
 *  - Penglai-HPMP  (IsolationScheme::Hpmp):     cache-based
 *    management — all GMSs live in the table, "fast" GMSs are
 *    mirrored into higher-priority segment entries.
 *
 * Operation costs (cycles) are modelled from the work performed:
 * trap overhead + CSR writes + pmpte stores + TLB/PMPTW flushes,
 * which is what Fig. 14 measures.
 */

#ifndef HPMP_MONITOR_SECURE_MONITOR_H
#define HPMP_MONITOR_SECURE_MONITOR_H

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/interval_set.h"
#include "base/trace.h"
#include "core/machine.h"
#include "hpmp/isolation.h"
#include "monitor/attestation.h"
#include "monitor/domain_registry.h"
#include "monitor/gms.h"
#include "pmpt/pmp_table.h"

namespace hpmp
{

/** Per-operation cost knobs for the monitor's cycle model. */
struct MonitorCosts
{
    unsigned trapCycles = 380;      //!< ecall into M-mode and back
    unsigned csrWriteCycles = 4;    //!< one pmpaddr/pmpcfg write
    unsigned tableWriteCycles = 10; //!< one pmpte store (uncached)
    unsigned flushCycles = 24;      //!< sfence.vma + PMPTW flush
    // Remote-fence (IPI) protocol, multi-hart systems only (§9):
    unsigned ipiPostCycles = 80;     //!< software-interrupt post, per call
    unsigned ipiAckCycles = 120;     //!< delivery + ack round trip, per hart
    unsigned remoteFenceCycles = 24; //!< fence executed in the IPI handler
    unsigned hfenceCycles = 28;      //!< hfence.gvma in the IPI handler,
                                     //!< per hart (virt-enabled systems)
};

/**
 * Typed monitor-call failure causes. Every failing call returns one of
 * these alongside the human-readable message, and guarantees the
 * monitor + HPMP + PMP-table state is bit-identical to before the
 * call (transactional rollback; see DESIGN.md "Error-handling
 * contract").
 */
enum class MonitorError : uint8_t
{
    None = 0,
    NoSuchDomain,     //!< domain id unknown or already destroyed
    NoSuchGms,        //!< no GMS at the given base in that domain
    BadArgument,      //!< granularity/NAPOT/self-share violations
    OverlapDomain,    //!< region overlaps another domain's memory
    OverlapMonitor,   //!< region overlaps the monitor-private region
    PermExceedsOwner, //!< shared permission wider than the owner's
    OutOfPmpEntries,  //!< segment entries exhausted (Penglai-PMP)
    OutOfTableFrames, //!< monitor-private PMP-table frames exhausted
    InjectedFault,    //!< a fault-injection site fired mid-call
    LockContended,    //!< another hart holds the global monitor lock
    StaleHandle,      //!< DomainId from a destroyed, since-recycled domain
    DomainMigrating,  //!< domain is suspended for an in-flight migration
    RasFatal,         //!< host degraded by an uncontained memory error
    QuarantinedPage,  //!< region overlaps a retired (quarantined) frame
};

/** Number of MonitorError values (sizes the per-error counters). */
constexpr unsigned kNumMonitorErrors = 15;

const char *toString(MonitorError error);

/**
 * What handleMachineCheck() did with a reported poisoned address — the
 * three blast-radius classes of DESIGN.md §15 plus the no-op repeat.
 */
enum class RasOutcome : uint8_t
{
    AlreadyQuarantined, //!< repeat report of a retired frame: no-op
    QuarantinedFree,    //!< frame retired; no domain had to die
    ContainedDomain,    //!< owning domain destroyed, its frame retired
    HealedTable,        //!< pmpte subtree rebuilt into fresh frames
    HostFatal,          //!< monitor-private state hit: host degraded
};

const char *toString(RasOutcome outcome);

/** Result of a monitor call. */
struct MonitorResult
{
    bool ok = true;
    uint64_t cycles = 0;
    MonitorError code = MonitorError::None;
    std::string error;
    /**
     * The call succeeded in a documented degraded mode: under Hpmp,
     * segment-entry exhaustion demotes the coldest fast GMS to table
     * mode (it stays protected, only slower) instead of failing.
     */
    bool degraded = false;

    static MonitorResult
    fail(MonitorError code, std::string why)
    {
        MonitorResult r;
        r.ok = false;
        r.code = code;
        r.error = std::move(why);
        return r;
    }
};

/**
 * Result of a value-returning monitor call (measurement, attestation).
 * The value is only meaningful when ok — a bad domain id from the
 * untrusted OS is a typed error, not a monitor panic.
 */
template <typename T>
struct MonitorValue
{
    bool ok = true;
    MonitorError code = MonitorError::None;
    std::string error;
    T value{};

    static MonitorValue
    fail(MonitorError code, std::string why)
    {
        MonitorValue r;
        r.ok = false;
        r.code = code;
        r.error = std::move(why);
        return r;
    }
};

/** Monitor configuration. */
struct MonitorConfig
{
    IsolationScheme scheme = IsolationScheme::Hpmp;
    Addr monitorBase = 0;           //!< monitor-private region
    uint64_t monitorSize = 128_MiB; //!< holds monitor + PMP tables
    unsigned pmptLevels = 2;
    /**
     * Use huge (32 MiB) pmptes for aligned whole-span updates. Speeds
     * up large allocations (Fig. 14-d) at the cost of coarser table
     * contents; off by default to model page-interleaved ownership.
     */
    bool hugePmpte = false;
    MonitorCosts costs;
};

class SmpSystem;

/** The machine-mode secure monitor. */
class SecureMonitor
{
  public:
    SecureMonitor(Machine &machine, const MonitorConfig &config);

    /**
     * Multi-hart monitor: controls every hart of `smp`. Hart 0's HPMP
     * unit is the canonical register file the monitor programs
     * directly; sibling harts converge to it through the modelled
     * IPI/remote-fence protocol (shootdowns at the end of every
     * layout-changing call, costed into MonitorResult.cycles and the
     * monitor.ipi_* stats). Calls take the global monitor lock; a
     * second hart calling mid-transaction gets LockContended. With one
     * hart this is bit-identical to the Machine constructor.
     */
    SecureMonitor(SmpSystem &smp, const MonitorConfig &config);

    IsolationScheme scheme() const { return config_.scheme; }

    /** Create an empty domain; the host is domain 0. */
    DomainId createDomain();

    /** Destroy a domain and drop its GMSs. */
    MonitorResult destroyDomain(DomainId id);

    /**
     * Register a GMS for a domain (monitor validates that the region
     * does not overlap another domain's private memory; regions with
     * Perm::none() act as blocked holes and may overlap is not
     * allowed either).
     */
    MonitorResult addGms(DomainId id, const Gms &gms);

    /** Remove the GMS starting at base. */
    MonitorResult removeGms(DomainId id, Addr base);

    /** OS hint: relabel a GMS (fast <-> slow). Registers only. */
    MonitorResult setLabel(DomainId id, Addr base, GmsLabel label);

    /**
     * Change the permission of an existing GMS (e.g. granting a
     * region to an enclave). Touches table entries and registers.
     */
    MonitorResult setPerm(DomainId id, Addr base, Perm perm);

    /**
     * Inter-enclave communication: expose the GMS starting at `base`
     * in domain `owner` to `peer` as well (both see it with `perm`,
     * which must not exceed the owner's). The owner's copy is marked
     * shared; revoke with removeGms(peer, base).
     */
    MonitorResult shareGms(DomainId owner, Addr base, DomainId peer,
                           Perm perm);

    /**
     * Measure a domain: fold the Merkle roots of all its GMS regions
     * (enclave measurement for attestation). Fails with NoSuchDomain
     * on a bad id — the id is OS-controlled input.
     */
    MonitorValue<MerkleHash> measureDomain(DomainId id) const;

    /**
     * Produce a signed attestation report for a domain. Read-only:
     * fails (typed, nothing to roll back) on a bad id or when a fault
     * site fires mid-call.
     */
    MonitorValue<AttestationReport> attestDomain(DomainId id,
                                                 uint64_t nonce) const;

    /** The monitor's attestation identity (verification side). */
    const Attestor &attestor() const { return attestor_; }

    /**
     * Hot-region hint (paper §9, the ioctl extension): carve the
     * NAPOT range [base, base+size) out of the covering GMS into its
     * own "fast" GMS so it can be mirrored into a segment entry. The
     * permission is inherited, so the permission table needs no
     * update — only registers change.
     */
    MonitorResult hintHotRegion(DomainId id, Addr base, uint64_t size);

    /** Switch the active domain, reprogramming the isolation state. */
    MonitorResult switchTo(DomainId id);

    /**
     * Quiesce + revoke: mark a domain as migrating-out (DESIGN.md
     * §12). A suspended domain keeps its memory and tables but every
     * grant path is revoked — switchTo and all mutating calls on it
     * fail with DomainMigrating until resumeDomain() (abort path) or
     * destroyDomain() (migration commit). The domain must not be the
     * one currently running on this monitor: the migration engine
     * switches to the host first, so suspension itself touches no
     * register or table state and a later rollback is bit-exact.
     */
    MonitorResult suspendDomain(DomainId id);

    /** Abort path of a migration: make a suspended domain grantable
     *  again. Fails unless the domain is currently migrating. */
    MonitorResult resumeDomain(DomainId id);

    /** True iff the domain exists and is suspended for migration. */
    bool domainMigrating(DomainId id) const;

    /**
     * True iff this monitor would grant the domain access to its
     * memory right now: the domain exists, is alive and is not
     * suspended for migration. The cross-system migration oracle
     * probes this on both hosts at every protocol step — it must
     * never be true on both sides at once (the no-dual-grant
     * invariant).
     */
    bool domainGrantable(DomainId id) const;

    /**
     * Machine-check containment policy (DESIGN.md §15). The firmware
     * RAS handler reports the physical address whose poison was
     * consumed; the monitor classifies the blast radius and contains
     * it:
     *
     *  - pmpte frame of a live domain's PMP Table: self-heal — the
     *    subtree is rebuilt from the monitor's authoritative GMS
     *    layout into fresh frames (the poisoned bytes are never
     *    read), the root is re-pointed under a shootdown window and
     *    the domain's measurement is verified unchanged. Counted in
     *    ras.heals; the dead frame is retired.
     *  - monitor-private state (including a table frame the monitor
     *    cannot attribute): whole-host degrade — rasFatal() latches
     *    and every further mutating call fails with RasFatal.
     *  - a live enclave's data page: the frame is retired and only
     *    the owning domain is destroyed (its freed pages scrubbed);
     *    sibling domains and the host are untouched.
     *  - the host's own page, or an unowned free frame: the frame is
     *    retired in place (the host domain cannot be destroyed).
     *
     * Idempotent: re-reporting an already-retired frame is an ok
     * no-op. A containment step that fails mid-way (injected fault)
     * rolls back bit-identically and surfaces the typed error.
     */
    MonitorValue<RasOutcome> handleMachineCheck(Addr pa);

    /** True once an uncontainable error degraded the whole host. */
    bool rasFatal() const { return rasFatal_; }

    /** True iff the frame holding pa was retired by containment. */
    bool pageQuarantined(Addr pa) const;

    /** Number of retired frames. */
    size_t quarantinedPages() const { return quarantine_.size(); }

    /**
     * Open a coalesced shootdown window (multi-hart monitors only; a
     * no-op hint otherwise). While active, layout-committing calls
     * defer their per-call IPI/hfence shootdown into one shared fence
     * window: the first commit opens it, later commits join it, and
     * endCoalescedWindow() runs the single IPI round that fences every
     * sibling hart to the final state. This is the fleet-serving
     * batching path — N back-to-back domain switches inside one
     * monitor epoch pay one shootdown, not N.
     *
     * The stale-translation contract is unchanged: the window opens at
     * the *first* commit, so a sibling hart is never considered fenced
     * between the first commit and the flush, and post-ack grants of
     * pre-window state remain hard failures (StaleChecker enforces
     * this via IpiPhase::CoalescedCommit oracle refreshes).
     */
    void beginCoalescedWindow();

    /**
     * Flush and close the coalesced window: one IPI/hfence round over
     * all sibling harts covering every commit since begin. Lost IPIs
     * inside the window are re-posted with bounded retries (counted in
     * monitor.ipi_retries only — monitor.ipi_post stays equal to
     * windows × sibling harts). Returns the fence cycles spent, 0 if
     * no commit was deferred.
     */
    uint64_t endCoalescedWindow();

    /** True between beginCoalescedWindow() and endCoalescedWindow(). */
    bool coalescingActive() const { return coalesceActive_; }

    /** Commits deferred into the currently open coalesced window. */
    uint64_t pendingCoalescedCommits() const { return coalescedCommits_; }

    /**
     * Verification mutation knob (tools/model_check --mutate): during
     * the Nth remoteShootdown from now (1-based), skip every sibling
     * hart's fence work — register sync, sfence.vma, PMPTW flush —
     * while still walking the protocol and acking. This deliberately
     * plants the exact bug class the stale checker exists to catch (a
     * hart acked without being fenced), so CI can prove the model
     * checker actually fails on a broken protocol. 0 disarms. Never
     * call outside tests and verification tools.
     */
    void testSkipFenceNth(uint64_t nth)
    {
        skipFenceNth_ = nth;
        skipFenceSeen_ = 0;
    }

    DomainId currentDomain() const { return current_; }
    size_t domainCount() const { return domains_.live(); }

    /** GMSs of a domain (for tests and the OS view). */
    const std::vector<Gms> &gmsOf(DomainId id) const;

    /** Ids of all live domains, ascending (for the invariant checker). */
    std::vector<DomainId> domainIds() const;

    /** True iff the domain id exists and is alive. */
    bool domainExists(DomainId id) const;

    /** The domain's PMP Table, or nullptr if none was created yet. */
    const PmpTable *tablePeek(DomainId id) const;

    const MonitorConfig &config() const { return config_; }

    /** Number of segment entries available to fast GMSs. */
    unsigned segmentBudget() const;

    /**
     * Fold the monitor's complete security-relevant state — domain
     * map, GMS lists, HPMP registers, CSR-write counter, table-frame
     * cursor and every pmpte of every domain's PMP Table — into one
     * 64-bit digest. Two equal digests mean bit-identical state; the
     * chaos fuzzer uses this to prove that failed calls rolled back
     * completely.
     *
     * @param include_table_contents hash every pmpte word too. This is
     *        the strongest (and default) form; pass false for a cheap
     *        digest covering metadata only when hashing whole tables
     *        per operation is too slow (sanitizer fuzz runs).
     */
    uint64_t stateDigest(bool include_table_contents = true) const;

    /**
     * stateDigest as seen from one hart: the shared monitor metadata
     * and tables folded with *that hart's* HPMP register file. After a
     * successful layout-changing call all hart digests agree; after a
     * failed call each hart must equal its own pre-call digest (the
     * cross-hart rollback contract).
     *
     * With virt enabled, the hart's guest CSR state (vsatp/hgatp
     * roots, guest privilege) is folded in too, so rollback is also
     * judged on the virt view. Pass `include_virt = false` for
     * convergence checks: per-hart guests legitimately run different
     * tables, so only the host view must agree across harts.
     *
     * Pass `include_csr_counter = false` for convergence checks too:
     * a coalesced shootdown window fences siblings with one *net*
     * register diff covering every commit in the window, so a
     * sibling's CSR-write counter legitimately advances by less than
     * the canonical unit's per-commit sum — register contents must
     * agree across harts, per-hart write-cost counters need not.
     * Rollback checks keep the counter: a failed call must restore
     * each hart bit-identically, counter included.
     */
    uint64_t hartStateDigest(unsigned hart,
                             bool include_table_contents = true,
                             bool include_virt = true,
                             bool include_csr_counter = true) const;

    /** The machine this monitor controls. */
    Machine &machine() { return machine_; }

    /** The SMP system, or nullptr for a single-machine monitor. */
    SmpSystem *smp() { return smp_; }

    /**
     * Monitor-call counters ("monitor.*"): calls, ok/failed split,
     * rollbacks, degraded commits, demote-coldest events, per-call
     * cycle and CSR-write distributions.
     */
    StatGroup &stats() { return stats_; }

    /** Register the "monitor" group with a registry. */
    void registerStats(StatRegistry &registry) { registry.add(&stats_); }

  private:
    struct Domain
    {
        std::vector<Gms> gmsList;
        std::unique_ptr<PmpTable> table; //!< lazily created
        bool alive = true;
        bool migrating = false; //!< suspended for an in-flight migration
    };

    /**
     * Transaction guard: snapshots all mutable monitor + HPMP state on
     * entry, journals pmpte stores, and restores everything
     * bit-identically on rollback. Defined in the .cc.
     */
    struct Txn;
    friend struct Txn;

    /**
     * Run one monitor call transactionally: roll back on any abort.
     * `callName` labels the call's trace span (DESIGN.md §13).
     */
    template <typename Fn>
    MonitorResult transact(const char *callName, Fn &&body);

    Domain &domain(DomainId id);
    const Domain &domain(DomainId id) const;

    /** Like domain(), but returns nullptr instead of panicking: the
     *  domain id is OS-controlled input, not an internal invariant. */
    Domain *findDomain(DomainId id);

    /**
     * Typed failure cause for a lookup miss on `id`: StaleHandle when
     * the id belonged to a destroyed domain whose index was recycled
     * (generation mismatch), plain NoSuchDomain otherwise.
     */
    MonitorError lookupError(DomainId id) const;

    /** failCall() for a lookup miss, with the matching message. */
    MonitorResult failNoDomain(DomainId id) const;

    /** Frames for PMP tables come from the monitor-private region. */
    Addr allocTableFrame(unsigned npages);

    /** Ensure the domain's PMP Table exists and reflects its GMSs. */
    PmpTable &tableOf(DomainId id);

    /** Write one GMS's permission into the domain's table. */
    void writeGmsToTable(Domain &dom, const Gms &gms);

    /**
     * Reprogram the HPMP registers for the current domain according to
     * the configured scheme. Throws MonitorAbort when the scheme
     * cannot represent the domain (PMP out of entries).
     * @return true when the layout had to degrade (Hpmp demoted the
     *         coldest fast GMS to table mode).
     */
    bool applyLayout();

    /**
     * Fence the initiating hart and IPI-shootdown every other hart so
     * all of them converge to the canonical register file. Runs inside
     * the transaction: a lost IPI or ack (FAULT_POINT smp.ipi_deliver
     * / smp.ipi_ack) throws, the call fails closed and the cross-hart
     * rollback restores and re-fences every hart. No-op without an
     * SmpSystem or with one hart.
     */
    void remoteShootdown();

    /**
     * Join the open coalesced window (opening it on the first commit)
     * instead of running a per-call shootdown. Publishes WindowBegin /
     * CoalescedCommit to the interleave hook so checkers track the
     * moving canonical state.
     */
    void deferShootdown();

    /** stateDigest seen through a specific hart's register file. */
    uint64_t digestWith(const HpmpUnit &unit,
                        bool include_table_contents,
                        bool include_csr_counter = true) const;

    /** Account cycles for CSR/table writes since the last snapshot. */
    void beginOp();
    uint64_t opCycles(bool flushed);

    /**
     * Fold one finished call into the "monitor.*" counters. const (and
     * the counters mutable) because the read-only calls — measurement,
     * attestation — fail in const context too.
     */
    void noteResult(bool ok, MonitorError code, uint64_t cycles,
                    bool degraded, bool rolled_back) const;

    /** Fail before any mutation (validation): counted, nothing to
     *  roll back. */
    MonitorResult failCall(MonitorError code, std::string why) const;

    /** The typed failure every mutating call takes once rasFatal_. */
    MonitorResult failRasFatal() const;

    /** Latch the whole-host degrade (uncontainable error at pa). */
    void enterRasFatal(Addr pa);

    /**
     * Retire the frame holding pa: backing dropped (releasePage),
     * poison bits kept, so later touches keep machine-checking
     * instead of reading recycled bytes. Idempotent.
     */
    void quarantinePage(Addr pa);

    /**
     * Self-heal a domain's PMP Table after a pmpte frame took poison:
     * rebuild into fresh frames from the GMS list, re-point the root
     * and fence every hart. Transactional — an abort mid-rebuild
     * restores the original table object bit-identically.
     */
    MonitorResult healTable(DomainId id);

    /**
     * Scrub-on-free: drop the backing of a destroyed domain's
     * exclusively-owned pages so a later owner of the frame reads
     * zeros, never the dead domain's data. Runs after the destroy
     * committed; shared regions (still live in a peer) and retired
     * frames are skipped.
     */
    void scrubFreedGms(const std::vector<Gms> &freed);

    Machine &machine_;
    SmpSystem *smp_ = nullptr; //!< set by the SmpSystem constructor
    MonitorConfig config_;
    Attestor attestor_{0x5ec0de};
    DomainRegistry<Domain> domains_;
    DomainId current_ = 0;
    Addr tableFrameNext_;
    Addr tableFrameEnd_;
    Txn *activeTxn_ = nullptr;
    uint64_t heatClock_ = 0; //!< recency stamps for fast-GMS demotion

    uint64_t csrSnapshot_ = 0;
    uint64_t tableWriteSnapshot_ = 0;
    uint64_t tableWritesTotal_ = 0; //!< across destroyed tables
    /**
     * Every pmpte store of every table this monitor ever created, in
     * one scalar (fed by PmpTable::setWriteAggregate). Per-call write
     * deltas are two subtractions instead of an O(domains) walk.
     */
    uint64_t tableWritesAgg_ = 0;

    uint64_t pendingIpiCycles_ = 0; //!< IPI cost of the call in flight
    uint64_t pendingHfenceCycles_ = 0; //!< guest-fence cost, virt systems
    bool ipiWindowOpen_ = false;    //!< shootdown window in progress
    uint64_t ipiWindowSeq_ = 0;     //!< seq of the open window

    uint64_t skipFenceNth_ = 0;  //!< mutation: shootdown # to sabotage
    uint64_t skipFenceSeen_ = 0; //!< shootdowns since the knob was armed

    std::unordered_set<uint64_t> quarantine_; //!< retired page bases
    bool rasFatal_ = false; //!< whole-host degrade latch

    bool coalesceActive_ = false;   //!< begin..end coalesced epoch
    bool coalescedOpen_ = false;    //!< >=1 commit deferred, window open
    uint64_t coalescedSeq_ = 0;     //!< seq of the coalesced window
    SpanId coalescedSpan_ = 0;      //!< epoch parent span (§13)
    uint64_t coalescedCommits_ = 0; //!< commits in the open window
    unsigned lastCommitter_ = 0;    //!< hart of the latest deferred commit

    StatGroup stats_{"monitor"};
    mutable Counter statCalls_;
    mutable Counter statOk_;
    mutable Counter statFailed_;
    mutable Counter statRollbacks_;     //!< failed calls that rolled back
    mutable Counter statDegraded_;      //!< calls committed degraded
    Counter statDemotions_;             //!< fast GMSs demoted to table mode
    mutable Counter statErrors_[kNumMonitorErrors]; //!< per-error failures
    mutable Distribution statCallCycles_;    //!< cycles per committed call
    mutable Distribution statCsrPerCall_;    //!< CSR writes per committed call
    mutable Distribution statTableWritesPerCall_; //!< pmpte stores per call
    Counter statIpiShootdowns_; //!< layout changes that ran the protocol
    Counter statIpiSent_;       //!< IPIs posted to remote harts
    Counter statIpiAcked_;      //!< delivery + ack round trips completed
    Counter statIpiLost_;       //!< injected IPI losses (call failed closed)
    Distribution statIpiCycles_; //!< IPI cycles per shootdown-bearing call
    Counter statHfenceShootdowns_; //!< shootdowns that also fenced guests
    Counter statHfenceSent_;    //!< guest-fence requests piggybacked on IPIs
    Counter statHfenceAcked_;   //!< guest fences completed and acked
    Counter statHfenceLost_;    //!< injected hfence losses (failed closed)
    Distribution statHfenceCycles_; //!< guest-fence cycles per such call
    Counter statCoalescedWindows_;  //!< coalesced windows flushed
    Distribution statCommitsPerWindow_; //!< commits per coalesced window
    Counter statIpiPost_;    //!< sibling posts in coalesced flushes
    Counter statIpiRetries_; //!< lost-IPI re-posts inside coalesced windows
    Counter statIpiElided_;  //!< shootdowns skipped on empty layout diffs
    mutable Counter statRasReports_; //!< machine checks reported to the monitor
    Counter statRasQuarantines_;     //!< frames retired from circulation
    Counter statRasContained_;       //!< domains destroyed to contain poison
    Counter statRasHeals_;           //!< PMP tables rebuilt in place
    Counter statRasFatal_;           //!< uncontainable errors (host degrade)
    Counter statRasScrubbed_;        //!< freed pages scrubbed before reuse
};

} // namespace hpmp

#endif // HPMP_MONITOR_SECURE_MONITOR_H
