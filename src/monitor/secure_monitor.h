/**
 * @file
 * The Penglai-HPMP secure monitor (paper §5).
 *
 * The monitor is the only software TCB: it owns the HPMP registers
 * and the per-domain PMP Tables, validates GMS registrations from the
 * untrusted OS, and reprograms the isolation state on domain
 * switches. Three policies are supported, matching the paper's
 * comparison systems:
 *
 *  - Penglai-PMP   (IsolationScheme::Pmp):      every GMS needs its
 *    own segment entry; runs out beyond ~a dozen regions/domains.
 *  - Penglai-PMPT  (IsolationScheme::PmpTable): one table-mode entry
 *    covers all memory; unlimited GMSs, slow checks.
 *  - Penglai-HPMP  (IsolationScheme::Hpmp):     cache-based
 *    management — all GMSs live in the table, "fast" GMSs are
 *    mirrored into higher-priority segment entries.
 *
 * Operation costs (cycles) are modelled from the work performed:
 * trap overhead + CSR writes + pmpte stores + TLB/PMPTW flushes,
 * which is what Fig. 14 measures.
 */

#ifndef HPMP_MONITOR_SECURE_MONITOR_H
#define HPMP_MONITOR_SECURE_MONITOR_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/interval_set.h"
#include "core/machine.h"
#include "hpmp/isolation.h"
#include "monitor/attestation.h"
#include "monitor/gms.h"
#include "pmpt/pmp_table.h"

namespace hpmp
{

/** Identifier of an isolation domain (0 = the host). */
using DomainId = uint32_t;

/** Per-operation cost knobs for the monitor's cycle model. */
struct MonitorCosts
{
    unsigned trapCycles = 380;      //!< ecall into M-mode and back
    unsigned csrWriteCycles = 4;    //!< one pmpaddr/pmpcfg write
    unsigned tableWriteCycles = 10; //!< one pmpte store (uncached)
    unsigned flushCycles = 24;      //!< sfence.vma + PMPTW flush
};

/** Result of a monitor call. */
struct MonitorResult
{
    bool ok = true;
    uint64_t cycles = 0;
    std::string error;

    static MonitorResult
    fail(std::string why)
    {
        return {false, 0, std::move(why)};
    }
};

/** Monitor configuration. */
struct MonitorConfig
{
    IsolationScheme scheme = IsolationScheme::Hpmp;
    Addr monitorBase = 0;           //!< monitor-private region
    uint64_t monitorSize = 128_MiB; //!< holds monitor + PMP tables
    unsigned pmptLevels = 2;
    /**
     * Use huge (32 MiB) pmptes for aligned whole-span updates. Speeds
     * up large allocations (Fig. 14-d) at the cost of coarser table
     * contents; off by default to model page-interleaved ownership.
     */
    bool hugePmpte = false;
    MonitorCosts costs;
};

/** The machine-mode secure monitor. */
class SecureMonitor
{
  public:
    SecureMonitor(Machine &machine, const MonitorConfig &config);

    IsolationScheme scheme() const { return config_.scheme; }

    /** Create an empty domain; the host is domain 0. */
    DomainId createDomain();

    /** Destroy a domain and drop its GMSs. */
    MonitorResult destroyDomain(DomainId id);

    /**
     * Register a GMS for a domain (monitor validates that the region
     * does not overlap another domain's private memory; regions with
     * Perm::none() act as blocked holes and may overlap is not
     * allowed either).
     */
    MonitorResult addGms(DomainId id, const Gms &gms);

    /** Remove the GMS starting at base. */
    MonitorResult removeGms(DomainId id, Addr base);

    /** OS hint: relabel a GMS (fast <-> slow). Registers only. */
    MonitorResult setLabel(DomainId id, Addr base, GmsLabel label);

    /**
     * Change the permission of an existing GMS (e.g. granting a
     * region to an enclave). Touches table entries and registers.
     */
    MonitorResult setPerm(DomainId id, Addr base, Perm perm);

    /**
     * Inter-enclave communication: expose the GMS starting at `base`
     * in domain `owner` to `peer` as well (both see it with `perm`,
     * which must not exceed the owner's). The owner's copy is marked
     * shared; revoke with removeGms(peer, base).
     */
    MonitorResult shareGms(DomainId owner, Addr base, DomainId peer,
                           Perm perm);

    /**
     * Measure a domain: fold the Merkle roots of all its GMS regions
     * (enclave measurement for attestation).
     */
    MerkleHash measureDomain(DomainId id) const;

    /** Produce a signed attestation report for a domain. */
    AttestationReport attestDomain(DomainId id, uint64_t nonce) const;

    /** The monitor's attestation identity (verification side). */
    const Attestor &attestor() const { return attestor_; }

    /**
     * Hot-region hint (paper §9, the ioctl extension): carve the
     * NAPOT range [base, base+size) out of the covering GMS into its
     * own "fast" GMS so it can be mirrored into a segment entry. The
     * permission is inherited, so the permission table needs no
     * update — only registers change.
     */
    MonitorResult hintHotRegion(DomainId id, Addr base, uint64_t size);

    /** Switch the active domain, reprogramming the isolation state. */
    MonitorResult switchTo(DomainId id);

    DomainId currentDomain() const { return current_; }
    size_t domainCount() const { return domains_.size(); }

    /** GMSs of a domain (for tests and the OS view). */
    const std::vector<Gms> &gmsOf(DomainId id) const;

    /** Number of segment entries available to fast GMSs. */
    unsigned segmentBudget() const;

    /** The machine this monitor controls. */
    Machine &machine() { return machine_; }

  private:
    struct Domain
    {
        std::vector<Gms> gmsList;
        std::unique_ptr<PmpTable> table; //!< lazily created
        bool alive = true;
    };

    Domain &domain(DomainId id);
    const Domain &domain(DomainId id) const;

    /** Frames for PMP tables come from the monitor-private region. */
    Addr allocTableFrame(unsigned npages);

    /** Ensure the domain's PMP Table exists and reflects its GMSs. */
    PmpTable &tableOf(DomainId id);

    /** Write one GMS's permission into the domain's table. */
    void writeGmsToTable(Domain &dom, const Gms &gms);

    /**
     * Reprogram the HPMP registers for the current domain according
     * to the configured scheme. @return false if the scheme cannot
     * represent the domain (PMP out of entries).
     */
    bool applyLayout(uint64_t &cycles, std::string &error);

    /** Account cycles for CSR/table writes since the last snapshot. */
    void beginOp();
    uint64_t opCycles(bool flushed);

    Machine &machine_;
    MonitorConfig config_;
    Attestor attestor_{0x5ec0de};
    std::map<DomainId, Domain> domains_;
    DomainId next_ = 0;
    DomainId current_ = 0;
    Addr tableFrameNext_;
    Addr tableFrameEnd_;

    uint64_t csrSnapshot_ = 0;
    uint64_t tableWriteSnapshot_ = 0;
    uint64_t tableWritesTotal_ = 0; //!< across destroyed tables
};

} // namespace hpmp

#endif // HPMP_MONITOR_SECURE_MONITOR_H
