/**
 * @file
 * Serverless-enclave walkthrough: the full Penglai-HPMP software
 * stack. Creates a TEE environment per isolation scheme, launches a
 * FunctionBench-style function in a fresh enclave, and breaks the
 * end-to-end latency down. Also demonstrates the hot-region hint
 * extension (paper §9): labelling the enclave's data GMS "fast" pins
 * it into a spare segment entry and removes the remaining permission
 * table checks.
 *
 * Build & run:  ./build/examples/serverless_enclave
 */

#include <cstdio>

#include "workloads/serverless.h"

using namespace hpmp;

namespace
{

void
runScheme(IsolationScheme scheme)
{
    EnvConfig config;
    config.core = CoreKind::Rocket;
    config.scheme = scheme;
    TeeEnv env(config);

    const FunctionModel &fn = functionBenchApps()[0]; // Chameleon
    const double seconds = invokeFunction(env, fn, 30000);
    std::printf("  %-6s %-10s end-to-end %8.1f ms\n", toString(scheme),
                fn.name.c_str(), seconds * 1e3);
}

void
hotDataHintDemo()
{
    std::printf("\nHot-region hints (paper §9): pin the enclave's data "
                "GMS into a segment.\n");
    EnvConfig config;
    config.scheme = IsolationScheme::Hpmp;
    TeeEnv env(config);

    auto enclave = env.createEnclave(16_MiB);
    env.enterEnclave(*enclave, PrivMode::User);
    const Addr va = enclave->as->mmap(64_KiB, Perm::rw(), true, true);

    Machine &m = env.machine();
    m.coldReset();
    AccessOutcome before = m.access(va, AccessType::Load);

    // The enclave issues the ioctl-equivalent: carve a hot 64 KiB
    // NAPOT region around its buffer into a fast GMS. The monitor
    // mirrors it into a free segment entry; the permission table is
    // untouched because the permission did not change.
    const Addr hot_pa =
        alignDown(*enclave->as->pageTable().translate(va), 64_KiB);
    auto res = env.monitor().hintHotRegion(enclave->domain, hot_pa,
                                           64_KiB);
    if (!res.ok)
        std::printf("  hint rejected: %s\n", res.error.c_str());

    m.coldReset();
    AccessOutcome after = m.access(va, AccessType::Load);

    std::printf("  cold load before hint: %u refs (%u pmpte)\n",
                before.totalRefs(), before.pmptRefs);
    std::printf("  cold load after hint:  %u refs (%u pmpte) — back "
                "to the Fig. 2-a minimum\n",
                after.totalRefs(), after.pmptRefs);

    env.exitToHost();
    env.destroyEnclave(std::move(enclave));
}

} // namespace

int
main()
{
    std::printf("One serverless invocation (create enclave, cold "
                "start, run, destroy):\n");
    runScheme(IsolationScheme::Pmp);
    runScheme(IsolationScheme::PmpTable);
    runScheme(IsolationScheme::Hpmp);
    hotDataHintDemo();
    return 0;
}
