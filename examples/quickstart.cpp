/**
 * @file
 * Quickstart: build a machine, map one page, and watch what one load
 * costs under the three isolation schemes.
 *
 * This walks the library's core loop end to end: a real Sv39 page
 * table in simulated memory, HPMP registers programmed the way the
 * secure monitor would, and a timed access whose reference breakdown
 * reproduces the paper's Figure 2 / Figure 4 arithmetic (4 references
 * with PMP, 12 with a 2-level PMP Table, 6 with HPMP).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/machine.h"
#include "pmpt/pmp_table.h"
#include "pt/page_table.h"

using namespace hpmp;

namespace
{

constexpr Addr kPtPool = 256_MiB;   // contiguous PT-page region
constexpr Addr kData = 4_GiB;       // data region
constexpr Addr kVa = 0x40000000;    // the virtual page we touch

void
demo(IsolationScheme scheme)
{
    // 1. A machine: Table 1's RocketCore (cache hierarchy, TLB, PWC).
    Machine machine(rocketParams());

    // 2. A real page table in simulated DRAM, with its PT pages drawn
    //    from a contiguous pool (the HPMP OS policy).
    PageTable pt(machine.mem(), bumpAllocator(kPtPool), PagingMode::Sv39);
    pt.map(kVa, kData, Perm::rw(), /*user=*/true);

    // 3. Physical memory protection, as the secure monitor programs it.
    PmpTable table(machine.mem(), bumpAllocator(64_MiB), /*levels=*/2);
    table.setPerm(kPtPool, 16_MiB, Perm::rw());
    table.setPerm(kData, 1_GiB, Perm::rwx());

    HpmpUnit &unit = machine.hpmp();
    switch (scheme) {
      case IsolationScheme::Pmp:
        // Segment mode only: fast checks, <16 regions.
        unit.programSegment(0, kPtPool, 16_MiB, Perm::rw());
        unit.programSegment(1, kData, 4_GiB, Perm::rwx());
        break;
      case IsolationScheme::PmpTable:
        // Everything through the in-DRAM permission table.
        unit.programTable(0, 0, 16_GiB, table.rootPa());
        break;
      case IsolationScheme::Hpmp:
        // The paper's hybrid: PT pages behind a segment, data behind
        // the table. Lowest-numbered entry wins, so the segment acts
        // as a cache of the table.
        unit.programSegment(0, kPtPool, 16_MiB, Perm::rw());
        unit.programTable(1, 0, 16_GiB, table.rootPa());
        break;
      case IsolationScheme::None:
        break;
    }

    // 4. Point the MMU at the table and make one cold user load.
    machine.setSatp(pt.rootPa(), PagingMode::Sv39);
    machine.setPriv(PrivMode::User);
    machine.coldReset();

    const AccessOutcome cold = machine.access(kVa, AccessType::Load);
    const AccessOutcome warm = machine.access(kVa, AccessType::Load);

    std::printf("%-6s cold: %3u refs (%u PT + %u pmpte + %u data), "
                "%4lu cycles | TLB-hit: %lu cycles\n",
                toString(scheme), cold.totalRefs(), cold.ptRefs,
                cold.pmptRefs, cold.dataRefs,
                (unsigned long)cold.cycles, (unsigned long)warm.cycles);
}

} // namespace

int
main()
{
    std::printf("One TLB-missing load on RocketCore (Sv39):\n\n");
    demo(IsolationScheme::Pmp);
    demo(IsolationScheme::PmpTable);
    demo(IsolationScheme::Hpmp);
    std::printf("\nPMP is fast but supports <16 regions; the PMP Table "
                "scales but triples the\nreferences; HPMP keeps the "
                "table's scalability at half its walk cost.\n");
    return 0;
}
