/**
 * @file
 * In-enclave key-value store demo: runs the Redis model inside a
 * Penglai-HPMP enclave and contrasts a cache-friendly command (GET)
 * with a pointer-chasing one (LRANGE_300) across the isolation
 * schemes — the long-running memory-intensive case study of §8.5.
 *
 * Build & run:  ./build/examples/redis_kv
 */

#include <cstdio>

#include "workloads/redis.h"

using namespace hpmp;

int
main()
{
    std::printf("Redis-like store in an enclave (RocketCore), RPS:\n\n");
    std::printf("%-8s %12s %12s %14s\n", "scheme", "PING", "GET",
                "LRANGE_300");

    for (const IsolationScheme scheme :
         {IsolationScheme::Pmp, IsolationScheme::PmpTable,
          IsolationScheme::Hpmp}) {
        EnvConfig config;
        config.scheme = scheme;
        TeeEnv env(config);
        RedisBench bench(env, /*keyspace=*/2048);

        const double ping = bench.run("PING_INLINE", 800);
        const double get = bench.run("GET", 800);
        const double lrange = bench.run("LRANGE_300", 250);
        std::printf("%-8s %12.0f %12.0f %14.0f\n", toString(scheme),
                    ping, get, lrange);
    }

    std::printf("\nPointer-chasing LRANGE suffers most under the "
                "permission table: every node\nhop can miss the TLB "
                "and pay the extra-dimensional walk. HPMP recovers\n"
                "most of it by exempting page-table pages from table "
                "checks.\n");
    return 0;
}
