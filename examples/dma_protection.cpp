/**
 * @file
 * DMA / I-O protection demo (paper §9): IOPMP places the same
 * segment/table hybrid in front of bus masters. A NIC is given a
 * page-granular table window, a disk controller a plain segment
 * window, and a hostile device gets nothing — its transfer is cut
 * off at the first beat.
 *
 * Build & run:  ./build/examples/dma_protection
 */

#include <cstdio>

#include "base/frame_alloc.h"
#include "core/params.h"
#include "hpmp/iopmp.h"

using namespace hpmp;

int
main()
{
    PhysMem mem(16_GiB);
    MemoryHierarchy hier(rocketParams().hier);
    IopmpUnit iopmp(mem, /*masters=*/3);

    // Master 0 — disk controller: one segment window for its ring
    // buffers and data region.
    iopmp.master(0).programSegment(0, 4_GiB, 64_MiB, Perm::rw());

    // Master 1 — NIC: page-granular table window (rx ring read-write,
    // tx descriptors read-only).
    PmpTable table(mem, bumpAllocator(64_MiB), 2);
    table.setPerm(6_GiB, 2_MiB, Perm::rw());        // rx buffers
    table.setPerm(6_GiB + 2_MiB, 64_KiB, Perm::ro()); // tx descriptors
    iopmp.master(1).programTable(0, 0, 16_GiB, table.rootPa());

    // Master 2 — hostile device: no windows programmed.

    struct Case
    {
        const char *name;
        MasterId master;
        Addr src, dst;
        uint64_t bytes;
    } cases[] = {
        {"disk -> buffer ", 0, 4_GiB, 4_GiB + 1_MiB, 64_KiB},
        {"nic rx dma     ", 1, 6_GiB, 6_GiB + 1_MiB, 16_KiB},
        {"nic tx overwrite", 1, 6_GiB, 6_GiB + 2_MiB, 4_KiB},
        {"hostile read   ", 2, 4_GiB, 6_GiB, 4_KiB},
        {"disk escape    ", 0, 4_GiB, 8_GiB, 4_KiB},
    };

    std::printf("%-17s %8s %8s %10s  %s\n", "transfer", "beats",
                "pmpte", "cycles", "result");
    for (const Case &c : cases) {
        DmaEngine dma(iopmp, hier, c.master);
        const auto result = dma.transfer(c.src, c.dst, c.bytes);
        std::printf("%-17s %8u %8u %10lu  %s", c.name, result.beats,
                    result.pmptRefs, (unsigned long)result.cycles,
                    result.ok ? "ok" : "DENIED");
        if (!result.ok)
            std::printf(" at %#lx", (unsigned long)result.faultAddr);
        std::printf("\n");
    }
    std::printf("\nIOPMP denials recorded: %lu\n",
                (unsigned long)iopmp.denials());
    return 0;
}
