/**
 * @file
 * Virtualized 3D-walk anatomy (paper §6, Figure 8): a guest load
 * through guest PT + nested PT + permission table, with the full
 * supervisor-physical reference stream printed, under each of the
 * four protection methods.
 *
 * Build & run:  ./build/examples/virt_walk
 */

#include <cstdio>

#include "workloads/virt_env.h"

using namespace hpmp;

int
main()
{
    std::printf("One cold guest load (Sv39 guest PT, Sv39x4 nested "
                "PT, 2-level PMP Table):\n\n");

    for (const VirtScheme scheme :
         {VirtScheme::Pmp, VirtScheme::Pmpt, VirtScheme::Hpmp,
          VirtScheme::HpmpGpt}) {
        VirtEnv env(CoreKind::Rocket, scheme);
        const Addr gva = env.mapGuestPages(1);
        env.vm().coldReset();

        const VirtAccessOutcome out =
            env.vm().access(gva, AccessType::Load);
        if (!out.ok()) {
            std::printf("%s: fault %s\n", toString(scheme),
                        toString(out.fault));
            continue;
        }
        std::printf("%-9s %2u NPT + %u GPT + %u data + %2u pmpte "
                    "= %2u refs, %4lu cycles\n",
                    toString(scheme), out.nptRefs, out.gptRefs,
                    out.dataRefs, out.pmptRefs, out.totalRefs(),
                    (unsigned long)out.cycles);
    }

    std::printf("\nhfence semantics (PMP Table, warm G-stage TLB):\n");
    VirtEnv env(CoreKind::Rocket, VirtScheme::Pmpt);
    const Addr gva = env.mapGuestPages(1);
    env.vm().coldReset();
    (void)env.vm().access(gva, AccessType::Load);

    env.vm().hfenceVvma();
    const auto after_v = env.vm().access(gva, AccessType::Load);
    std::printf("  after hfence.vvma: %u refs (%u NPT — G-stage "
                "translations survive)\n",
                after_v.totalRefs(), after_v.nptRefs);

    env.vm().hfenceGvma();
    const auto after_g = env.vm().access(gva, AccessType::Load);
    std::printf("  after hfence.gvma: %u refs (%u NPT — everything "
                "rewalked)\n",
                after_g.totalRefs(), after_g.nptRefs);
    return 0;
}
