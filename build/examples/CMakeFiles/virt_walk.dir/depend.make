# Empty dependencies file for virt_walk.
# This may be replaced when dependencies are built.
