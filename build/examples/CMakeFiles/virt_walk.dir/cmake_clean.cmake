file(REMOVE_RECURSE
  "CMakeFiles/virt_walk.dir/virt_walk.cpp.o"
  "CMakeFiles/virt_walk.dir/virt_walk.cpp.o.d"
  "virt_walk"
  "virt_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virt_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
