file(REMOVE_RECURSE
  "CMakeFiles/serverless_enclave.dir/serverless_enclave.cpp.o"
  "CMakeFiles/serverless_enclave.dir/serverless_enclave.cpp.o.d"
  "serverless_enclave"
  "serverless_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
