# Empty dependencies file for serverless_enclave.
# This may be replaced when dependencies are built.
