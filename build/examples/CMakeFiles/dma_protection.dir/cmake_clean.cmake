file(REMOVE_RECURSE
  "CMakeFiles/dma_protection.dir/dma_protection.cpp.o"
  "CMakeFiles/dma_protection.dir/dma_protection.cpp.o.d"
  "dma_protection"
  "dma_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
