# Empty compiler generated dependencies file for dma_protection.
# This may be replaced when dependencies are built.
