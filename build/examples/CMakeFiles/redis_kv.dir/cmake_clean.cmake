file(REMOVE_RECURSE
  "CMakeFiles/redis_kv.dir/redis_kv.cpp.o"
  "CMakeFiles/redis_kv.dir/redis_kv.cpp.o.d"
  "redis_kv"
  "redis_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
