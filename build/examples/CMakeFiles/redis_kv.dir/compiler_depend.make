# Empty compiler generated dependencies file for redis_kv.
# This may be replaced when dependencies are built.
