# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(hpmp_sim_demo "/root/repo/build/tools/hpmp_sim" "--scheme" "hpmp" "--stats")
set_tests_properties(hpmp_sim_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
