file(REMOVE_RECURSE
  "CMakeFiles/hpmp_sim.dir/hpmp_sim.cc.o"
  "CMakeFiles/hpmp_sim.dir/hpmp_sim.cc.o.d"
  "hpmp_sim"
  "hpmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
