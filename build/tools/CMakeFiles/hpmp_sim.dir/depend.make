# Empty dependencies file for hpmp_sim.
# This may be replaced when dependencies are built.
