# Empty compiler generated dependencies file for hpmp_hpmp.
# This may be replaced when dependencies are built.
