file(REMOVE_RECURSE
  "libhpmp_hpmp.a"
)
