file(REMOVE_RECURSE
  "CMakeFiles/hpmp_hpmp.dir/hpmp_unit.cc.o"
  "CMakeFiles/hpmp_hpmp.dir/hpmp_unit.cc.o.d"
  "CMakeFiles/hpmp_hpmp.dir/iopmp.cc.o"
  "CMakeFiles/hpmp_hpmp.dir/iopmp.cc.o.d"
  "libhpmp_hpmp.a"
  "libhpmp_hpmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_hpmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
