# Empty dependencies file for hpmp_hpmp.
# This may be replaced when dependencies are built.
