file(REMOVE_RECURSE
  "CMakeFiles/hpmp_mem.dir/cache.cc.o"
  "CMakeFiles/hpmp_mem.dir/cache.cc.o.d"
  "CMakeFiles/hpmp_mem.dir/dram.cc.o"
  "CMakeFiles/hpmp_mem.dir/dram.cc.o.d"
  "CMakeFiles/hpmp_mem.dir/hierarchy.cc.o"
  "CMakeFiles/hpmp_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/hpmp_mem.dir/phys_mem.cc.o"
  "CMakeFiles/hpmp_mem.dir/phys_mem.cc.o.d"
  "libhpmp_mem.a"
  "libhpmp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
