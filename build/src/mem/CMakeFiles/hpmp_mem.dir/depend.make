# Empty dependencies file for hpmp_mem.
# This may be replaced when dependencies are built.
