file(REMOVE_RECURSE
  "libhpmp_mem.a"
)
