# Empty dependencies file for hpmp_core.
# This may be replaced when dependencies are built.
