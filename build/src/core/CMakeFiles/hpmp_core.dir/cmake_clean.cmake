file(REMOVE_RECURSE
  "CMakeFiles/hpmp_core.dir/core_model.cc.o"
  "CMakeFiles/hpmp_core.dir/core_model.cc.o.d"
  "CMakeFiles/hpmp_core.dir/machine.cc.o"
  "CMakeFiles/hpmp_core.dir/machine.cc.o.d"
  "CMakeFiles/hpmp_core.dir/params.cc.o"
  "CMakeFiles/hpmp_core.dir/params.cc.o.d"
  "CMakeFiles/hpmp_core.dir/pwc.cc.o"
  "CMakeFiles/hpmp_core.dir/pwc.cc.o.d"
  "CMakeFiles/hpmp_core.dir/tlb.cc.o"
  "CMakeFiles/hpmp_core.dir/tlb.cc.o.d"
  "CMakeFiles/hpmp_core.dir/virt_machine.cc.o"
  "CMakeFiles/hpmp_core.dir/virt_machine.cc.o.d"
  "libhpmp_core.a"
  "libhpmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
