
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/core_model.cc" "src/core/CMakeFiles/hpmp_core.dir/core_model.cc.o" "gcc" "src/core/CMakeFiles/hpmp_core.dir/core_model.cc.o.d"
  "/root/repo/src/core/machine.cc" "src/core/CMakeFiles/hpmp_core.dir/machine.cc.o" "gcc" "src/core/CMakeFiles/hpmp_core.dir/machine.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/hpmp_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/hpmp_core.dir/params.cc.o.d"
  "/root/repo/src/core/pwc.cc" "src/core/CMakeFiles/hpmp_core.dir/pwc.cc.o" "gcc" "src/core/CMakeFiles/hpmp_core.dir/pwc.cc.o.d"
  "/root/repo/src/core/tlb.cc" "src/core/CMakeFiles/hpmp_core.dir/tlb.cc.o" "gcc" "src/core/CMakeFiles/hpmp_core.dir/tlb.cc.o.d"
  "/root/repo/src/core/virt_machine.cc" "src/core/CMakeFiles/hpmp_core.dir/virt_machine.cc.o" "gcc" "src/core/CMakeFiles/hpmp_core.dir/virt_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpmp/CMakeFiles/hpmp_hpmp.dir/DependInfo.cmake"
  "/root/repo/build/src/pmpt/CMakeFiles/hpmp_pmpt.dir/DependInfo.cmake"
  "/root/repo/build/src/pmp/CMakeFiles/hpmp_pmp.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/hpmp_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hpmp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hpmp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
