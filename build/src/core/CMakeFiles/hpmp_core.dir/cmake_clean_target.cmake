file(REMOVE_RECURSE
  "libhpmp_core.a"
)
