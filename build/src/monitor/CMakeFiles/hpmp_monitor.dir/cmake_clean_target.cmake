file(REMOVE_RECURSE
  "libhpmp_monitor.a"
)
