# Empty dependencies file for hpmp_monitor.
# This may be replaced when dependencies are built.
