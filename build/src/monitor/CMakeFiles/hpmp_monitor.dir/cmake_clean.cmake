file(REMOVE_RECURSE
  "CMakeFiles/hpmp_monitor.dir/merkle.cc.o"
  "CMakeFiles/hpmp_monitor.dir/merkle.cc.o.d"
  "CMakeFiles/hpmp_monitor.dir/secure_monitor.cc.o"
  "CMakeFiles/hpmp_monitor.dir/secure_monitor.cc.o.d"
  "libhpmp_monitor.a"
  "libhpmp_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
