# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("mem")
subdirs("pt")
subdirs("pmp")
subdirs("pmpt")
subdirs("hpmp")
subdirs("core")
subdirs("monitor")
subdirs("os")
subdirs("workloads")
