# Empty dependencies file for hpmp_pmp.
# This may be replaced when dependencies are built.
