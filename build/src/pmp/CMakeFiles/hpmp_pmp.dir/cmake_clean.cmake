file(REMOVE_RECURSE
  "CMakeFiles/hpmp_pmp.dir/pmp.cc.o"
  "CMakeFiles/hpmp_pmp.dir/pmp.cc.o.d"
  "libhpmp_pmp.a"
  "libhpmp_pmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_pmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
