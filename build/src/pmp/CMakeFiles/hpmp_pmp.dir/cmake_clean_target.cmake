file(REMOVE_RECURSE
  "libhpmp_pmp.a"
)
