# Empty compiler generated dependencies file for hpmp_pmp.
# This may be replaced when dependencies are built.
