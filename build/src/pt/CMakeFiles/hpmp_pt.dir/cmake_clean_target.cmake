file(REMOVE_RECURSE
  "libhpmp_pt.a"
)
