# Empty compiler generated dependencies file for hpmp_pt.
# This may be replaced when dependencies are built.
