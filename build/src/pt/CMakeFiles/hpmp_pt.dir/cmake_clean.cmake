file(REMOVE_RECURSE
  "CMakeFiles/hpmp_pt.dir/page_table.cc.o"
  "CMakeFiles/hpmp_pt.dir/page_table.cc.o.d"
  "CMakeFiles/hpmp_pt.dir/two_stage.cc.o"
  "CMakeFiles/hpmp_pt.dir/two_stage.cc.o.d"
  "CMakeFiles/hpmp_pt.dir/walker.cc.o"
  "CMakeFiles/hpmp_pt.dir/walker.cc.o.d"
  "libhpmp_pt.a"
  "libhpmp_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
