# Empty compiler generated dependencies file for hpmp_pmpt.
# This may be replaced when dependencies are built.
