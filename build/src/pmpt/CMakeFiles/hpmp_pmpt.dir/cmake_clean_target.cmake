file(REMOVE_RECURSE
  "libhpmp_pmpt.a"
)
