file(REMOVE_RECURSE
  "CMakeFiles/hpmp_pmpt.dir/pmp_table.cc.o"
  "CMakeFiles/hpmp_pmpt.dir/pmp_table.cc.o.d"
  "CMakeFiles/hpmp_pmpt.dir/pmpt_walker.cc.o"
  "CMakeFiles/hpmp_pmpt.dir/pmpt_walker.cc.o.d"
  "CMakeFiles/hpmp_pmpt.dir/pmptw_cache.cc.o"
  "CMakeFiles/hpmp_pmpt.dir/pmptw_cache.cc.o.d"
  "libhpmp_pmpt.a"
  "libhpmp_pmpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_pmpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
