
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmpt/pmp_table.cc" "src/pmpt/CMakeFiles/hpmp_pmpt.dir/pmp_table.cc.o" "gcc" "src/pmpt/CMakeFiles/hpmp_pmpt.dir/pmp_table.cc.o.d"
  "/root/repo/src/pmpt/pmpt_walker.cc" "src/pmpt/CMakeFiles/hpmp_pmpt.dir/pmpt_walker.cc.o" "gcc" "src/pmpt/CMakeFiles/hpmp_pmpt.dir/pmpt_walker.cc.o.d"
  "/root/repo/src/pmpt/pmptw_cache.cc" "src/pmpt/CMakeFiles/hpmp_pmpt.dir/pmptw_cache.cc.o" "gcc" "src/pmpt/CMakeFiles/hpmp_pmpt.dir/pmptw_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/hpmp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hpmp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
