file(REMOVE_RECURSE
  "libhpmp_os.a"
)
