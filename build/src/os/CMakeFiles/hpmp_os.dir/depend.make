# Empty dependencies file for hpmp_os.
# This may be replaced when dependencies are built.
