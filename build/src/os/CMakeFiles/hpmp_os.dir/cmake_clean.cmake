file(REMOVE_RECURSE
  "CMakeFiles/hpmp_os.dir/address_space.cc.o"
  "CMakeFiles/hpmp_os.dir/address_space.cc.o.d"
  "CMakeFiles/hpmp_os.dir/kernel.cc.o"
  "CMakeFiles/hpmp_os.dir/kernel.cc.o.d"
  "CMakeFiles/hpmp_os.dir/page_alloc.cc.o"
  "CMakeFiles/hpmp_os.dir/page_alloc.cc.o.d"
  "libhpmp_os.a"
  "libhpmp_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
