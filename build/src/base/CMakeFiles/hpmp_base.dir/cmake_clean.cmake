file(REMOVE_RECURSE
  "CMakeFiles/hpmp_base.dir/access.cc.o"
  "CMakeFiles/hpmp_base.dir/access.cc.o.d"
  "CMakeFiles/hpmp_base.dir/interval_set.cc.o"
  "CMakeFiles/hpmp_base.dir/interval_set.cc.o.d"
  "CMakeFiles/hpmp_base.dir/logging.cc.o"
  "CMakeFiles/hpmp_base.dir/logging.cc.o.d"
  "CMakeFiles/hpmp_base.dir/stats.cc.o"
  "CMakeFiles/hpmp_base.dir/stats.cc.o.d"
  "libhpmp_base.a"
  "libhpmp_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
