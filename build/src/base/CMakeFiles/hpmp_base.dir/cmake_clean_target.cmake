file(REMOVE_RECURSE
  "libhpmp_base.a"
)
