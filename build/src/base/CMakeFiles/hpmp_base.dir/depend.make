# Empty dependencies file for hpmp_base.
# This may be replaced when dependencies are built.
