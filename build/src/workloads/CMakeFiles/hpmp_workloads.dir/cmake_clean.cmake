file(REMOVE_RECURSE
  "CMakeFiles/hpmp_workloads.dir/env.cc.o"
  "CMakeFiles/hpmp_workloads.dir/env.cc.o.d"
  "CMakeFiles/hpmp_workloads.dir/gap.cc.o"
  "CMakeFiles/hpmp_workloads.dir/gap.cc.o.d"
  "CMakeFiles/hpmp_workloads.dir/lmbench.cc.o"
  "CMakeFiles/hpmp_workloads.dir/lmbench.cc.o.d"
  "CMakeFiles/hpmp_workloads.dir/redis.cc.o"
  "CMakeFiles/hpmp_workloads.dir/redis.cc.o.d"
  "CMakeFiles/hpmp_workloads.dir/runner.cc.o"
  "CMakeFiles/hpmp_workloads.dir/runner.cc.o.d"
  "CMakeFiles/hpmp_workloads.dir/rv8.cc.o"
  "CMakeFiles/hpmp_workloads.dir/rv8.cc.o.d"
  "CMakeFiles/hpmp_workloads.dir/serverless.cc.o"
  "CMakeFiles/hpmp_workloads.dir/serverless.cc.o.d"
  "CMakeFiles/hpmp_workloads.dir/trace.cc.o"
  "CMakeFiles/hpmp_workloads.dir/trace.cc.o.d"
  "CMakeFiles/hpmp_workloads.dir/virt_env.cc.o"
  "CMakeFiles/hpmp_workloads.dir/virt_env.cc.o.d"
  "libhpmp_workloads.a"
  "libhpmp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
