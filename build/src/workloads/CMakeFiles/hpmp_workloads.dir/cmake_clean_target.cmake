file(REMOVE_RECURSE
  "libhpmp_workloads.a"
)
