# Empty dependencies file for hpmp_workloads.
# This may be replaced when dependencies are built.
