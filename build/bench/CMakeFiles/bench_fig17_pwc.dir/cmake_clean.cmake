file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_pwc.dir/fig17_pwc.cc.o"
  "CMakeFiles/bench_fig17_pwc.dir/fig17_pwc.cc.o.d"
  "bench_fig17_pwc"
  "bench_fig17_pwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_pwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
