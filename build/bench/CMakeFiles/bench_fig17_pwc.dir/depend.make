# Empty dependencies file for bench_fig17_pwc.
# This may be replaced when dependencies are built.
