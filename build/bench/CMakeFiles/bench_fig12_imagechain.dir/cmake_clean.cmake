file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_imagechain.dir/fig12_imagechain.cc.o"
  "CMakeFiles/bench_fig12_imagechain.dir/fig12_imagechain.cc.o.d"
  "bench_fig12_imagechain"
  "bench_fig12_imagechain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_imagechain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
