# Empty compiler generated dependencies file for bench_fig12_imagechain.
# This may be replaced when dependencies are built.
