file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_virt_refcounts.dir/fig08_virt_refcounts.cc.o"
  "CMakeFiles/bench_fig08_virt_refcounts.dir/fig08_virt_refcounts.cc.o.d"
  "bench_fig08_virt_refcounts"
  "bench_fig08_virt_refcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_virt_refcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
