# Empty dependencies file for bench_fig08_virt_refcounts.
# This may be replaced when dependencies are built.
