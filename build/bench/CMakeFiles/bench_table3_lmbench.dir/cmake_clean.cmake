file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_lmbench.dir/table3_lmbench.cc.o"
  "CMakeFiles/bench_table3_lmbench.dir/table3_lmbench.cc.o.d"
  "bench_table3_lmbench"
  "bench_table3_lmbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
