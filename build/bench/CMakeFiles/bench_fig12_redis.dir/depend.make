# Empty dependencies file for bench_fig12_redis.
# This may be replaced when dependencies are built.
