file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_redis.dir/fig12_redis.cc.o"
  "CMakeFiles/bench_fig12_redis.dir/fig12_redis.cc.o.d"
  "bench_fig12_redis"
  "bench_fig12_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
