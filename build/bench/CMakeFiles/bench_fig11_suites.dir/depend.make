# Empty dependencies file for bench_fig11_suites.
# This may be replaced when dependencies are built.
