file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_suites.dir/fig11_suites.cc.o"
  "CMakeFiles/bench_fig11_suites.dir/fig11_suites.cc.o.d"
  "bench_fig11_suites"
  "bench_fig11_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
