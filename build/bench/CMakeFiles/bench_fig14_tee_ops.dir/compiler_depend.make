# Empty compiler generated dependencies file for bench_fig14_tee_ops.
# This may be replaced when dependencies are built.
