file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_tee_ops.dir/fig14_tee_ops.cc.o"
  "CMakeFiles/bench_fig14_tee_ops.dir/fig14_tee_ops.cc.o.d"
  "bench_fig14_tee_ops"
  "bench_fig14_tee_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tee_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
