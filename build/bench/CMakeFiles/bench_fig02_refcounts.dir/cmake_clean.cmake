file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_refcounts.dir/fig02_refcounts.cc.o"
  "CMakeFiles/bench_fig02_refcounts.dir/fig02_refcounts.cc.o.d"
  "bench_fig02_refcounts"
  "bench_fig02_refcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_refcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
