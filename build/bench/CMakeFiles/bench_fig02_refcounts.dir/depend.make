# Empty dependencies file for bench_fig02_refcounts.
# This may be replaced when dependencies are built.
