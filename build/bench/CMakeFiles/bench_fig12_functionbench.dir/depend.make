# Empty dependencies file for bench_fig12_functionbench.
# This may be replaced when dependencies are built.
