file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_functionbench.dir/fig12_functionbench.cc.o"
  "CMakeFiles/bench_fig12_functionbench.dir/fig12_functionbench.cc.o.d"
  "bench_fig12_functionbench"
  "bench_fig12_functionbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_functionbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
