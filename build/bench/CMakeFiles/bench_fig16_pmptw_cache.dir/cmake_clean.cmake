file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_pmptw_cache.dir/fig16_pmptw_cache.cc.o"
  "CMakeFiles/bench_fig16_pmptw_cache.dir/fig16_pmptw_cache.cc.o.d"
  "bench_fig16_pmptw_cache"
  "bench_fig16_pmptw_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_pmptw_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
