# Empty compiler generated dependencies file for bench_fig16_pmptw_cache.
# This may be replaced when dependencies are built.
