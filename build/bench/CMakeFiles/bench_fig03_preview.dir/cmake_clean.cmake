file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_preview.dir/fig03_preview.cc.o"
  "CMakeFiles/bench_fig03_preview.dir/fig03_preview.cc.o.d"
  "bench_fig03_preview"
  "bench_fig03_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
