file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_virt.dir/fig13_virt.cc.o"
  "CMakeFiles/bench_fig13_virt.dir/fig13_virt.cc.o.d"
  "bench_fig13_virt"
  "bench_fig13_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
