# Empty dependencies file for bench_fig13_virt.
# This may be replaced when dependencies are built.
