# Empty dependencies file for bench_fig15_fragmentation.
# This may be replaced when dependencies are built.
