file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_fragmentation.dir/fig15_fragmentation.cc.o"
  "CMakeFiles/bench_fig15_fragmentation.dir/fig15_fragmentation.cc.o.d"
  "bench_fig15_fragmentation"
  "bench_fig15_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
