file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hwcost.dir/table4_hwcost.cc.o"
  "CMakeFiles/bench_table4_hwcost.dir/table4_hwcost.cc.o.d"
  "bench_table4_hwcost"
  "bench_table4_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
