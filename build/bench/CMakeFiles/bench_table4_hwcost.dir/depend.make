# Empty dependencies file for bench_table4_hwcost.
# This may be replaced when dependencies are built.
