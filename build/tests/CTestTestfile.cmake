# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(base_test "/root/repo/build/tests/base_test")
set_tests_properties(base_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_test "/root/repo/build/tests/mem_test")
set_tests_properties(mem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pt_test "/root/repo/build/tests/pt_test")
set_tests_properties(pt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pmp_test "/root/repo/build/tests/pmp_test")
set_tests_properties(pmp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;25;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pmpt_test "/root/repo/build/tests/pmpt_test")
set_tests_properties(pmpt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;26;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hpmp_unit_test "/root/repo/build/tests/hpmp_unit_test")
set_tests_properties(hpmp_unit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;27;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_machine_test "/root/repo/build/tests/core_machine_test")
set_tests_properties(core_machine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;28;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_model_test "/root/repo/build/tests/core_model_test")
set_tests_properties(core_model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;30;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_fuzz_test "/root/repo/build/tests/core_fuzz_test")
set_tests_properties(core_fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;31;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_tlb_pwc_test "/root/repo/build/tests/core_tlb_pwc_test")
set_tests_properties(core_tlb_pwc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;32;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_virt_test "/root/repo/build/tests/core_virt_test")
set_tests_properties(core_virt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;33;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(monitor_test "/root/repo/build/tests/monitor_test")
set_tests_properties(monitor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;34;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(os_test "/root/repo/build/tests/os_test")
set_tests_properties(os_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;36;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;37;hpmp_test;/root/repo/tests/CMakeLists.txt;0;")
