file(REMOVE_RECURSE
  "CMakeFiles/pmp_test.dir/pmp/pmp_test.cc.o"
  "CMakeFiles/pmp_test.dir/pmp/pmp_test.cc.o.d"
  "pmp_test"
  "pmp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
