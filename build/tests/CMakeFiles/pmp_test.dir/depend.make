# Empty dependencies file for pmp_test.
# This may be replaced when dependencies are built.
