# Empty compiler generated dependencies file for pmpt_test.
# This may be replaced when dependencies are built.
