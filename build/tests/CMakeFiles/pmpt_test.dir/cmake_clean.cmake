file(REMOVE_RECURSE
  "CMakeFiles/pmpt_test.dir/pmpt/pmpt_test.cc.o"
  "CMakeFiles/pmpt_test.dir/pmpt/pmpt_test.cc.o.d"
  "pmpt_test"
  "pmpt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
