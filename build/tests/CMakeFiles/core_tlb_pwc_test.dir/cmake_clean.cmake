file(REMOVE_RECURSE
  "CMakeFiles/core_tlb_pwc_test.dir/core/tlb_pwc_test.cc.o"
  "CMakeFiles/core_tlb_pwc_test.dir/core/tlb_pwc_test.cc.o.d"
  "core_tlb_pwc_test"
  "core_tlb_pwc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tlb_pwc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
