# Empty dependencies file for core_tlb_pwc_test.
# This may be replaced when dependencies are built.
