file(REMOVE_RECURSE
  "CMakeFiles/hpmp_unit_test.dir/hpmp/hpmp_unit_test.cc.o"
  "CMakeFiles/hpmp_unit_test.dir/hpmp/hpmp_unit_test.cc.o.d"
  "CMakeFiles/hpmp_unit_test.dir/hpmp/iopmp_test.cc.o"
  "CMakeFiles/hpmp_unit_test.dir/hpmp/iopmp_test.cc.o.d"
  "hpmp_unit_test"
  "hpmp_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmp_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
