# Empty compiler generated dependencies file for hpmp_unit_test.
# This may be replaced when dependencies are built.
