file(REMOVE_RECURSE
  "CMakeFiles/core_fuzz_test.dir/core/fuzz_test.cc.o"
  "CMakeFiles/core_fuzz_test.dir/core/fuzz_test.cc.o.d"
  "core_fuzz_test"
  "core_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
