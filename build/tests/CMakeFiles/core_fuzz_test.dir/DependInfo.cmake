
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/fuzz_test.cc" "tests/CMakeFiles/core_fuzz_test.dir/core/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/core_fuzz_test.dir/core/fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/hpmp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hpmp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/hpmp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpmp/CMakeFiles/hpmp_hpmp.dir/DependInfo.cmake"
  "/root/repo/build/src/pmpt/CMakeFiles/hpmp_pmpt.dir/DependInfo.cmake"
  "/root/repo/build/src/pmp/CMakeFiles/hpmp_pmp.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/hpmp_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hpmp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hpmp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
