file(REMOVE_RECURSE
  "CMakeFiles/core_virt_test.dir/core/virt_machine_test.cc.o"
  "CMakeFiles/core_virt_test.dir/core/virt_machine_test.cc.o.d"
  "core_virt_test"
  "core_virt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_virt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
