# Empty dependencies file for core_virt_test.
# This may be replaced when dependencies are built.
