file(REMOVE_RECURSE
  "CMakeFiles/pt_test.dir/pt/page_table_test.cc.o"
  "CMakeFiles/pt_test.dir/pt/page_table_test.cc.o.d"
  "CMakeFiles/pt_test.dir/pt/two_stage_test.cc.o"
  "CMakeFiles/pt_test.dir/pt/two_stage_test.cc.o.d"
  "CMakeFiles/pt_test.dir/pt/walker_test.cc.o"
  "CMakeFiles/pt_test.dir/pt/walker_test.cc.o.d"
  "pt_test"
  "pt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
