/**
 * @file
 * Malformed-pmpte hardening tests: reserved encodings, corrupt
 * pointer chains and injected bit flips must deny the access (access
 * fault) — never panic the simulator. Table contents are
 * monitor-written, but injected faults (and, in a real deployment,
 * DRAM corruption) can reach them.
 */

#include <gtest/gtest.h>

#include "base/fault_inject.h"
#include "base/frame_alloc.h"
#include "hpmp/hpmp_unit.h"
#include "pmpt/pmp_table.h"
#include "pmpt/pmpt_walker.h"

namespace hpmp
{
namespace
{

class MalformedPmpteTest : public ::testing::Test
{
  protected:
    MalformedPmpteTest() : mem(16_GiB), table(mem, bumpAllocator(64_MiB))
    {
        table.setPerm(1_GiB, 1_MiB, Perm::rw());
    }

    ~MalformedPmpteTest() override
    {
        FaultInjector::instance().disable();
    }

    Addr
    rootSlot(uint64_t offset) const
    {
        return table.rootPa() + pmpt_geom::indexAt(offset, 1) * 8;
    }

    Addr
    leafSlot(uint64_t offset) const
    {
        const RootPmpte root{mem.read64(rootSlot(offset))};
        return root.tablePa() + pmpt_geom::indexAt(offset, 0) * 8;
    }

    PmptWalkResult
    walk(uint64_t offset) const
    {
        return walkPmpTable(mem, table.rootPa(), table.levels(), offset);
    }

    PhysMem mem;
    PmpTable table;
};

TEST_F(MalformedPmpteTest, ReservedRootBitDeniesAccess)
{
    const Addr slot = rootSlot(1_GiB);
    mem.write64(slot, mem.read64(slot) | (1ULL << 4)); // Fig. 6-c rsvd
    const PmptWalkResult result = walk(1_GiB);
    EXPECT_TRUE(result.malformed);
    EXPECT_FALSE(result.valid);
    EXPECT_EQ(result.perm, Perm::none());
}

TEST_F(MalformedPmpteTest, ReservedHighRootBitsDenyAccess)
{
    const Addr slot = rootSlot(1_GiB);
    mem.write64(slot, mem.read64(slot) | (1ULL << 60)); // bits 63:49
    EXPECT_TRUE(walk(1_GiB).malformed);
}

TEST_F(MalformedPmpteTest, HugeLeafWithPointerBitsDeniesAccess)
{
    // A huge leaf has no pointer field; stray PPN bits mark it
    // malformed rather than being silently ignored.
    uint64_t raw = RootPmpte::huge(Perm::rw()).raw;
    raw = insertBits(raw, 48, 5, 0x123);
    mem.write64(rootSlot(1_GiB), raw);
    EXPECT_TRUE(walk(1_GiB).malformed);

    // The clean encoding resolves as a huge hit.
    mem.write64(rootSlot(1_GiB), RootPmpte::huge(Perm::rw()).raw);
    const PmptWalkResult clean = walk(1_GiB);
    EXPECT_TRUE(clean.valid);
    EXPECT_TRUE(clean.hugeHit);
    EXPECT_EQ(clean.perm, Perm::rw());
}

TEST_F(MalformedPmpteTest, ReservedLeafNibbleFaultsOnlyThatPage)
{
    const Addr slot = leafSlot(1_GiB);
    // Set the reserved bit (bit 3) of page 2's nibble.
    mem.write64(slot, mem.read64(slot) | (1ULL << (2 * 4 + 3)));

    const PmptWalkResult bad = walk(1_GiB + 2 * kPageSize);
    EXPECT_TRUE(bad.malformed);
    EXPECT_FALSE(bad.valid);
    // Sibling pages of the same leaf pmpte still resolve.
    const PmptWalkResult good = walk(1_GiB + 3 * kPageSize);
    EXPECT_TRUE(good.valid);
    EXPECT_EQ(good.perm, Perm::rw());
}

TEST_F(MalformedPmpteTest, PointerOutsidePhysMemDeniesAccess)
{
    // A pointer chain leading out of physical memory is denied, not
    // followed into a simulator panic.
    mem.write64(rootSlot(1_GiB), RootPmpte::pointer(32_GiB).raw);
    const PmptWalkResult result = walk(1_GiB);
    EXPECT_TRUE(result.malformed);
    EXPECT_FALSE(result.valid);
}

TEST_F(MalformedPmpteTest, BuilderLookupReportsCorruptPointerChain)
{
    // The builder's functional lookup()/valid() bounds-check pointer
    // pmptes against the node pages the table actually owns: a
    // corrupted pointer — even one aimed at valid, non-table memory —
    // is reported and treated as invalid, never chased.
    const Addr slot = rootSlot(1_GiB);
    mem.write64(slot, RootPmpte::pointer(2_GiB).raw);
    EXPECT_EQ(table.lookup(1_GiB), Perm::none());
    EXPECT_FALSE(table.valid(1_GiB));
    EXPECT_EQ(table.corruptPointers(), 2u);

    // A chain leading out of physical memory entirely must also be
    // caught here, before the read would fault the simulator.
    mem.write64(slot, RootPmpte::pointer(32_GiB).raw);
    EXPECT_EQ(table.lookup(1_GiB), Perm::none());
    EXPECT_FALSE(table.valid(1_GiB));
    EXPECT_EQ(table.corruptPointers(), 4u);

    // Untouched offsets (other root slots) are unaffected.
    table.setPerm(2_GiB, 64_KiB, Perm::ro());
    EXPECT_EQ(table.lookup(2_GiB), Perm::ro());
    EXPECT_TRUE(table.valid(2_GiB));
    EXPECT_EQ(table.corruptPointers(), 4u);
}

TEST_F(MalformedPmpteTest, UnsupportedTableDepthDeniesAccess)
{
    // A corrupted PmptBaseReg Mode field can claim depths the walker
    // does not implement.
    EXPECT_TRUE(walkPmpTable(mem, table.rootPa(), 5, 1_GiB).malformed);
    EXPECT_TRUE(walkPmpTable(mem, table.rootPa(), 1, 1_GiB).malformed);
}

TEST_F(MalformedPmpteTest, HpmpCheckRaisesAccessFaultOnMalformed)
{
    HpmpUnit unit(mem);
    unit.programTable(0, 0, 16_GiB, table.rootPa(), table.levels());

    ASSERT_TRUE(
        unit.check(1_GiB, 8, AccessType::Load, PrivMode::Supervisor)
            .ok());
    const Addr slot = rootSlot(1_GiB);
    mem.write64(slot, mem.read64(slot) | (1ULL << 4));
    const HpmpCheckResult result =
        unit.check(1_GiB, 8, AccessType::Load, PrivMode::Supervisor);
    EXPECT_EQ(result.fault, Fault::LoadAccessFault);
    EXPECT_TRUE(result.viaTable);
    // The functional probe view agrees: no permission.
    EXPECT_EQ(unit.probe(1_GiB), Perm::none());
}

TEST_F(MalformedPmpteTest, CachedReservedNibbleStillFaults)
{
    HpmpUnit unit(mem, 16, /*pmptw_entries=*/8);
    unit.programTable(0, 0, 16_GiB, table.rootPa(), table.levels());

    // Warm the PMPTW-Cache with the leaf, then corrupt one nibble and
    // refill: the cache-hit path must deny exactly like the walker.
    ASSERT_TRUE(
        unit.check(1_GiB, 8, AccessType::Load, PrivMode::Supervisor)
            .ok());
    const Addr slot = leafSlot(1_GiB);
    mem.write64(slot, mem.read64(slot) | (1ULL << (5 * 4 + 3)));
    unit.flushCache();
    // First check walks and faults; re-check the sibling to cache the
    // corrupt leaf, then hit the reserved nibble through the cache.
    const Addr bad_pa = 1_GiB + 5 * kPageSize;
    EXPECT_EQ(unit.check(bad_pa, 8, AccessType::Load,
                         PrivMode::Supervisor).fault,
              Fault::LoadAccessFault);
    ASSERT_TRUE(
        unit.check(1_GiB, 8, AccessType::Load, PrivMode::Supervisor)
            .ok());
    const HpmpCheckResult hit =
        unit.check(bad_pa, 8, AccessType::Load, PrivMode::Supervisor);
    EXPECT_TRUE(hit.viaCache);
    EXPECT_EQ(hit.fault, Fault::LoadAccessFault);
}

TEST_F(MalformedPmpteTest, InjectedWriteFaultThrowsOutsideTransactions)
{
    // Raw table users (no monitor transaction) see the injected store
    // failure as the InjectedFault exception itself.
    FaultInjector &injector = FaultInjector::instance();
    injector.enable(3);
    injector.armNth("pmpt.write_entry", 1);
    EXPECT_THROW(table.setPerm(2_GiB, kPageSize, Perm::rw()),
                 InjectedFault);
    injector.disable();
}

TEST_F(MalformedPmpteTest, InjectedBitFlipNeverPanics)
{
    FaultInjector &injector = FaultInjector::instance();
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        // Fresh table per round: the flip lands in a different store
        // (and a different bit) each seed.
        PmpTable t(mem, bumpAllocator(8_GiB + 64_MiB * seed));
        injector.enable(seed);
        injector.armNth("pmpt.write_entry.flip", 1 + (seed % 2));
        t.setPerm(3_GiB, 64_KiB, Perm::rwx());
        injector.disable();
        // Whatever bit flipped, every walk over the span (and its
        // neighborhood) must resolve or deny — never crash.
        for (Addr off = 3_GiB - 32_MiB; off <= 3_GiB + 32_MiB;
             off += kPageSize) {
            const PmptWalkResult r =
                walkPmpTable(mem, t.rootPa(), t.levels(), off);
            if (r.malformed)
                EXPECT_FALSE(r.valid);
        }
    }
}

} // namespace
} // namespace hpmp
