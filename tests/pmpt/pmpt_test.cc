/**
 * @file
 * PMP Table tests: Fig. 6 encodings and geometry, builder semantics
 * (huge entries, splitting), walker reference counts and the
 * PMPTW-Cache.
 */

#include <gtest/gtest.h>

#include "base/frame_alloc.h"
#include "base/rng.h"
#include "pmpt/pmp_table.h"
#include "pmpt/pmpt_walker.h"
#include "pmpt/pmptw_cache.h"

namespace hpmp
{
namespace
{

TEST(PmptGeometry, PaperConstants)
{
    using namespace pmpt_geom;
    // Fig. 6-e: PageIndex = bits 15:12, OFF[0] = 24:16, OFF[1] = 33:25.
    EXPECT_EQ(indexLo(0), 16u);
    EXPECT_EQ(indexLo(1), 25u);
    EXPECT_EQ(pageIndex(0xffff), 0xfu);
    EXPECT_EQ(indexAt(1ULL << 16, 0), 1u);
    EXPECT_EQ(indexAt(1ULL << 25, 1), 1u);
    // §4.3: one root pmpte manages 32 MiB; one 2-level table 16 GiB.
    EXPECT_EQ(entrySpan(1), 32_MiB);
    EXPECT_EQ(coverage(2), 16_GiB);
    EXPECT_EQ(coverage(3), 8192_GiB); // 3-level extension
}

TEST(RootPmpte, PointerAndHuge)
{
    const RootPmpte ptr = RootPmpte::pointer(0x123000);
    EXPECT_TRUE(ptr.v());
    EXPECT_TRUE(ptr.isPointer());
    EXPECT_FALSE(ptr.isHuge());
    EXPECT_EQ(ptr.tablePa(), 0x123000u);

    const RootPmpte huge = RootPmpte::huge(Perm::rw());
    EXPECT_TRUE(huge.isHuge());
    EXPECT_FALSE(huge.isPointer());
    EXPECT_EQ(huge.perm(), Perm::rw());

    const RootPmpte invalid{0};
    EXPECT_FALSE(invalid.v());
}

TEST(LeafPmpte, SixteenNibbles)
{
    LeafPmpte leaf;
    for (unsigned i = 0; i < 16; ++i)
        leaf.setPerm(i, i % 2 ? Perm::rw() : Perm::rx());
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(leaf.perm(i), i % 2 ? Perm::rw() : Perm::rx()) << i;

    const LeafPmpte uniform = LeafPmpte::uniform(Perm::rwx());
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(uniform.perm(i), Perm::rwx());
}

TEST(PmptBaseReg, ModeAndPpn)
{
    const PmptBaseReg reg = PmptBaseReg::make(0x40000000, 3);
    EXPECT_EQ(reg.tablePa(), 0x40000000u);
    EXPECT_EQ(reg.mode(), 1u);
    EXPECT_EQ(reg.levels(), 3u);
    EXPECT_EQ(PmptBaseReg::make(0x1000).levels(), 2u);
}

class PmpTableTest : public ::testing::Test
{
  protected:
    PmpTableTest()
        : mem(16_GiB),
          table(mem, bumpAllocator(64_MiB), 2)
    {
    }

    PhysMem mem;
    PmpTable table;
};

TEST_F(PmpTableTest, DefaultInvalid)
{
    EXPECT_FALSE(table.valid(0x100000));
    EXPECT_EQ(table.lookup(0x100000), Perm::none());
}

TEST_F(PmpTableTest, PageGranularPerms)
{
    table.setPerm(1_GiB, 16 * kPageSize, Perm::rw());
    EXPECT_EQ(table.lookup(1_GiB), Perm::rw());
    EXPECT_EQ(table.lookup(1_GiB + 15 * kPageSize), Perm::rw());
    EXPECT_EQ(table.lookup(1_GiB + 16 * kPageSize), Perm::none());
    EXPECT_EQ(table.lookup(1_GiB - kPageSize), Perm::none());
}

TEST_F(PmpTableTest, SinglePageUpdateLeavesNeighbors)
{
    table.setPerm(2_GiB, 64_KiB, Perm::rwx());
    table.setPerm(2_GiB + kPageSize, kPageSize, Perm::ro());
    EXPECT_EQ(table.lookup(2_GiB), Perm::rwx());
    EXPECT_EQ(table.lookup(2_GiB + kPageSize), Perm::ro());
    EXPECT_EQ(table.lookup(2_GiB + 2 * kPageSize), Perm::rwx());
}

TEST_F(PmpTableTest, HugeEntrySingleWrite)
{
    table.resetEntryWrites();
    table.setPerm(0, 32_MiB, Perm::rw(), /*allow_huge=*/true);
    EXPECT_EQ(table.entryWrites(), 1u); // Fig. 14-d's fast path
    EXPECT_EQ(table.lookup(0), Perm::rw());
    EXPECT_EQ(table.lookup(32_MiB - kPageSize), Perm::rw());
}

TEST_F(PmpTableTest, HugeSplitPreservesSurroundings)
{
    table.setPerm(0, 32_MiB, Perm::rw(), true);
    table.setPerm(1_MiB, kPageSize, Perm::none());
    EXPECT_EQ(table.lookup(0), Perm::rw());
    EXPECT_EQ(table.lookup(1_MiB), Perm::none());
    EXPECT_EQ(table.lookup(1_MiB + kPageSize), Perm::rw());
    EXPECT_EQ(table.lookup(31_MiB), Perm::rw());
}

TEST_F(PmpTableTest, LeafGranularCostsMoreWrites)
{
    table.resetEntryWrites();
    table.setPerm(0, 32_MiB, Perm::rw(), /*allow_huge=*/false);
    // 512 leaf pmptes + 1 pointer.
    EXPECT_EQ(table.entryWrites(), 513u);
}

TEST(PmpTable3Level, CoversBeyond16GiB)
{
    PhysMem mem(16_GiB);
    PmpTable table(mem, bumpAllocator(64_MiB), 3);
    EXPECT_EQ(table.coverage(), 8192_GiB);
    table.setPerm(20_GiB, 64_KiB, Perm::rw());
    EXPECT_EQ(table.lookup(20_GiB), Perm::rw());
    EXPECT_EQ(table.lookup(20_GiB - kPageSize), Perm::none());

    PmptWalkResult walk = walkPmpTable(mem, table.rootPa(), 3, 20_GiB);
    EXPECT_TRUE(walk.valid);
    EXPECT_EQ(walk.refs.size(), 3u); // one ref per level
}

TEST_F(PmpTableTest, WalkerTwoRefsOnLeafPath)
{
    table.setPerm(1_GiB, 64_KiB, Perm::rw());
    const PmptWalkResult walk =
        walkPmpTable(mem, table.rootPa(), 2, 1_GiB + kPageSize);
    EXPECT_TRUE(walk.valid);
    EXPECT_FALSE(walk.hugeHit);
    EXPECT_EQ(walk.perm, Perm::rw());
    ASSERT_EQ(walk.refs.size(), 2u);
    EXPECT_EQ(walk.refs[0].level, 1u);
    EXPECT_EQ(walk.refs[1].level, 0u);
    EXPECT_EQ(walk.refs[0].pa & ~0xfffULL, table.rootPa());
}

TEST_F(PmpTableTest, WalkerOneRefOnHugeHit)
{
    table.setPerm(0, 32_MiB, Perm::rwx(), true);
    const PmptWalkResult walk = walkPmpTable(mem, table.rootPa(), 2,
                                             5_MiB);
    EXPECT_TRUE(walk.valid);
    EXPECT_TRUE(walk.hugeHit);
    EXPECT_EQ(walk.refs.size(), 1u);
}

TEST_F(PmpTableTest, WalkerInvalidStopsAtRoot)
{
    const PmptWalkResult walk = walkPmpTable(mem, table.rootPa(), 2,
                                             8_GiB);
    EXPECT_FALSE(walk.valid);
    EXPECT_EQ(walk.refs.size(), 1u);
}

TEST(PmptwCache, HitSkipsWalk)
{
    PmptwCache cache(4);
    EXPECT_FALSE(cache.lookup(0x1000, 0x40000).has_value());
    cache.fill(0x1000, 0x40000, LeafPmpte::uniform(Perm::rw()));
    const auto hit = cache.lookup(0x1000, 0x4a000);
    ASSERT_TRUE(hit.has_value()); // same 64 KiB granule
    EXPECT_EQ(*hit, Perm::rw());
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(PmptwCache, DistinguishesTablesAndGranules)
{
    PmptwCache cache(4);
    cache.fill(0x1000, 0x40000, LeafPmpte::uniform(Perm::rw()));
    EXPECT_FALSE(cache.lookup(0x2000, 0x40000).has_value());
    EXPECT_FALSE(cache.lookup(0x1000, 0x50000).has_value());
}

TEST(PmptwCache, LruReplacement)
{
    PmptwCache cache(2);
    cache.fill(0x1000, 0x00000, LeafPmpte::uniform(Perm::ro()));
    cache.fill(0x1000, 0x10000, LeafPmpte::uniform(Perm::rw()));
    ASSERT_TRUE(cache.lookup(0x1000, 0x00000).has_value()); // touch A
    cache.fill(0x1000, 0x20000, LeafPmpte::uniform(Perm::rwx()));
    EXPECT_TRUE(cache.lookup(0x1000, 0x00000).has_value());
    EXPECT_FALSE(cache.lookup(0x1000, 0x10000).has_value()); // evicted
}

TEST(PmptwCache, DisabledNeverHits)
{
    PmptwCache cache(0);
    EXPECT_FALSE(cache.enabled());
    cache.fill(0x1000, 0, LeafPmpte::uniform(Perm::rw()));
    EXPECT_FALSE(cache.lookup(0x1000, 0).has_value());
}

TEST(PmptwCache, FlushDropsEverything)
{
    PmptwCache cache(4);
    cache.fill(0x1000, 0, LeafPmpte::uniform(Perm::rw()));
    cache.flush();
    EXPECT_FALSE(cache.lookup(0x1000, 0).has_value());
}

/**
 * Property: after a random sequence of (possibly overlapping,
 * huge/leaf-mixed) permission updates, the table agrees with a flat
 * per-page oracle at every probed offset.
 */
TEST(PmpTableProperty, RandomUpdatesMatchFlatOracle)
{
    PhysMem mem(16_GiB);
    PmpTable table(mem, bumpAllocator(64_MiB), 2);

    constexpr uint64_t kSpanPages = 64 * 1024; // 256 MiB arena
    std::vector<Perm> oracle(kSpanPages, Perm::none());

    Rng rng(31337);
    for (int update = 0; update < 120; ++update) {
        const uint64_t start_page = rng.below(kSpanPages - 1);
        const uint64_t len_pages =
            1 + rng.below(std::min<uint64_t>(kSpanPages - start_page,
                                             12288));
        const Perm perm{rng.chance(0.9), rng.chance(0.5),
                        rng.chance(0.3)};
        const bool huge = rng.chance(0.3);
        table.setPerm(start_page * kPageSize, len_pages * kPageSize,
                      perm, huge);
        for (uint64_t page = start_page;
             page < start_page + len_pages; ++page) {
            oracle[page] = perm;
        }
    }

    for (int probe = 0; probe < 3000; ++probe) {
        const uint64_t page = rng.below(kSpanPages);
        const uint64_t offset = page * kPageSize;
        const Perm expect = oracle[page];
        if (table.valid(offset)) {
            EXPECT_EQ(table.lookup(offset), expect)
                << "page " << page;
        } else {
            EXPECT_EQ(expect, Perm::none()) << "page " << page;
        }
        // The hardware walker must agree too.
        const PmptWalkResult walk =
            walkPmpTable(mem, table.rootPa(), 2, offset);
        if (walk.valid)
            EXPECT_EQ(walk.perm, expect) << "page " << page;
        else
            EXPECT_EQ(expect, Perm::none()) << "page " << page;
    }
}

/** Property: lookup() agrees with the walker for random offsets. */
TEST(PmpTableProperty, LookupMatchesWalker)
{
    PhysMem mem(16_GiB);
    PmpTable table(mem, bumpAllocator(64_MiB), 2);
    table.setPerm(1_GiB, 2_MiB, Perm::rw());
    table.setPerm(1_GiB + 2_MiB, 2_MiB, Perm::ro());
    table.setPerm(3_GiB, 32_MiB, Perm::rwx(), true);

    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        const uint64_t offset = pageAddr(rng.below(16_GiB / kPageSize));
        const PmptWalkResult walk =
            walkPmpTable(mem, table.rootPa(), 2, offset);
        const Perm expect = table.lookup(offset);
        if (walk.valid)
            EXPECT_EQ(walk.perm, expect) << std::hex << offset;
        else
            EXPECT_EQ(expect, Perm::none()) << std::hex << offset;
    }
}

} // namespace
} // namespace hpmp
