/**
 * @file
 * HPMP unit tests: T-bit mode switching, entry pairing, priority
 * between segment and table entries (cache-based management), the
 * last-entry rule and PMPTW-Cache integration.
 */

#include <gtest/gtest.h>

#include "base/frame_alloc.h"
#include "hpmp/hpmp_unit.h"

namespace hpmp
{
namespace
{

class HpmpUnitTest : public ::testing::Test
{
  protected:
    HpmpUnitTest()
        : mem(16_GiB),
          unit(mem, 16, 0),
          table(mem, bumpAllocator(64_MiB), 2)
    {
    }

    PhysMem mem;
    HpmpUnit unit;
    PmpTable table;
};

TEST_F(HpmpUnitTest, SegmentModeInlinePermission)
{
    unit.programSegment(0, 1_GiB, 1_GiB, Perm::rw());
    auto res = unit.check(1_GiB + 123, 8, AccessType::Load,
                          PrivMode::User);
    EXPECT_TRUE(res.ok());
    EXPECT_FALSE(res.viaTable);
    EXPECT_TRUE(res.pmptRefs.empty());

    res = unit.check(1_GiB, 8, AccessType::Fetch, PrivMode::User);
    EXPECT_EQ(res.fault, Fault::FetchAccessFault);
}

TEST_F(HpmpUnitTest, TableModeFetchesFromMemory)
{
    table.setPerm(2_GiB, 64_KiB, Perm::rw());
    unit.programTable(0, 0, 16_GiB, table.rootPa());

    auto res = unit.check(2_GiB, 8, AccessType::Load, PrivMode::User);
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.viaTable);
    EXPECT_EQ(res.pmptRefs.size(), 2u);

    res = unit.check(2_GiB + 64_KiB, 8, AccessType::Load,
                     PrivMode::User);
    EXPECT_EQ(res.fault, Fault::LoadAccessFault);
}

TEST_F(HpmpUnitTest, TableModeIgnoresInlinePermBits)
{
    // Even though the config register's permission field would deny,
    // table mode takes the permission from the table.
    table.setPerm(2_GiB, 64_KiB, Perm::rw());
    unit.programTable(0, 0, 16_GiB, table.rootPa());
    // programTable writes Perm::none() into the config; loads must
    // still succeed through the table.
    EXPECT_TRUE(unit.check(2_GiB, 8, AccessType::Load,
                           PrivMode::User).ok());
}

TEST_F(HpmpUnitTest, SegmentCachesTableByPriority)
{
    // Penglai-HPMP's cache-based management: the low-numbered segment
    // overrides the table for the region it covers.
    table.setPerm(1_GiB, 16_MiB, Perm::ro());
    unit.programSegment(0, 1_GiB, 16_MiB, Perm::rw());
    unit.programTable(1, 0, 16_GiB, table.rootPa());

    // Covered by the segment: write allowed, no table refs.
    auto res = unit.check(1_GiB, 8, AccessType::Store, PrivMode::User);
    EXPECT_TRUE(res.ok());
    EXPECT_FALSE(res.viaTable);

    // Outside the segment: table decides.
    table.setPerm(4_GiB, 64_KiB, Perm::rw());
    res = unit.check(4_GiB, 8, AccessType::Store, PrivMode::User);
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.viaTable);
}

TEST_F(HpmpUnitTest, PairedEntryConfigIsOff)
{
    unit.programTable(3, 0, 16_GiB, table.rootPa());
    EXPECT_EQ(unit.regs().cfg(4).a(), PmpAddrMode::Off);
    const PmptBaseReg base{unit.regs().addr(4)};
    EXPECT_EQ(base.tablePa(), table.rootPa());
    EXPECT_EQ(base.levels(), 2u);
}

TEST_F(HpmpUnitTest, LastEntryCannotBeTableMode)
{
    EXPECT_DEATH(unit.programTable(15, 0, 16_GiB, table.rootPa()),
                 "last HPMP entry");
}

TEST_F(HpmpUnitTest, TBitOnLastEntryReadsAsSegment)
{
    // WARL legalization: set T on the last entry manually; the checker
    // must treat it as segment mode.
    unit.regs().setAddr(15, PmpUnit::encodeNapot(1_GiB, 1_GiB));
    unit.regs().setCfg(15, PmpCfg::make(Perm::rw(), PmpAddrMode::Napot,
                                        false, /*t=*/true));
    auto res = unit.check(1_GiB, 8, AccessType::Load, PrivMode::User);
    EXPECT_TRUE(res.ok());
    EXPECT_FALSE(res.viaTable);
}

TEST_F(HpmpUnitTest, ReprogramFlushesPmptwCache)
{
    // Regression: programSegment/programTable used to leave the
    // PMPTW-Cache intact, so a permission revoked in the table kept
    // hitting the stale cached leaf.
    HpmpUnit cached(mem, 16, /*pmptw_entries=*/16);
    table.setPerm(2_GiB, 64_KiB, Perm::rw());
    cached.programTable(0, 0, 16_GiB, table.rootPa());

    ASSERT_TRUE(cached.check(2_GiB, 8, AccessType::Load,
                             PrivMode::User).ok());
    auto res = cached.check(2_GiB, 8, AccessType::Load, PrivMode::User);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.viaCache);

    // Revoke in the (same-root) table and reprogram the entry: the
    // next check must walk the table again and fault, not hit the
    // stale cached leaf.
    table.setPerm(2_GiB, 64_KiB, Perm::none());
    cached.programTable(0, 0, 16_GiB, table.rootPa());
    res = cached.check(2_GiB, 8, AccessType::Load, PrivMode::User);
    EXPECT_FALSE(res.viaCache);
    EXPECT_EQ(res.fault, Fault::LoadAccessFault);
}

TEST_F(HpmpUnitTest, MachineModeBypasses)
{
    // No entries cover this address; M-mode must still succeed.
    auto res = unit.check(8_GiB, 8, AccessType::Store,
                          PrivMode::Machine);
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.pmptRefs.empty());
}

TEST_F(HpmpUnitTest, NoMatchDeniesSU)
{
    EXPECT_EQ(unit.check(8_GiB, 8, AccessType::Load,
                         PrivMode::User).fault,
              Fault::LoadAccessFault);
    EXPECT_EQ(unit.check(8_GiB, 8, AccessType::Store,
                         PrivMode::Supervisor).fault,
              Fault::StoreAccessFault);
}

TEST_F(HpmpUnitTest, PmptwCacheShortCircuitsSecondCheck)
{
    PhysMem mem2(16_GiB);
    HpmpUnit cached(mem2, 16, 8);
    PmpTable table2(mem2, bumpAllocator(64_MiB), 2);
    table2.setPerm(2_GiB, 64_KiB, Perm::rw());
    cached.programTable(0, 0, 16_GiB, table2.rootPa());

    auto first = cached.check(2_GiB, 8, AccessType::Load,
                              PrivMode::User);
    EXPECT_FALSE(first.viaCache);
    EXPECT_EQ(first.pmptRefs.size(), 2u);

    auto second = cached.check(2_GiB + kPageSize, 8, AccessType::Load,
                               PrivMode::User);
    EXPECT_TRUE(second.viaCache);
    EXPECT_TRUE(second.pmptRefs.empty());

    cached.flushCache();
    auto third = cached.check(2_GiB, 8, AccessType::Load,
                              PrivMode::User);
    EXPECT_FALSE(third.viaCache);
}

TEST_F(HpmpUnitTest, DynamicModeSwitching)
{
    // The same entry flips between segment and table mode at runtime
    // (the flexibility contribution of §4.2).
    table.setPerm(1_GiB, 1_MiB, Perm::ro());
    unit.programSegment(0, 1_GiB, 1_MiB, Perm::rw());
    EXPECT_TRUE(unit.check(1_GiB, 8, AccessType::Store,
                           PrivMode::User).ok());

    unit.programTable(0, 1_GiB, 1_MiB, table.rootPa());
    // Offsets are region-relative: rebuild the table accordingly.
    PmpTable rel(mem, bumpAllocator(65_MiB), 2);
    rel.setPerm(0, 1_MiB, Perm::ro());
    unit.programTable(0, 1_GiB, 1_MiB, rel.rootPa());
    EXPECT_EQ(unit.check(1_GiB, 8, AccessType::Store,
                         PrivMode::User).fault,
              Fault::StoreAccessFault);
    EXPECT_TRUE(unit.check(1_GiB, 8, AccessType::Load,
                           PrivMode::User).ok());

    unit.programSegment(0, 1_GiB, 1_MiB, Perm::rw());
    EXPECT_TRUE(unit.check(1_GiB, 8, AccessType::Store,
                           PrivMode::User).ok());
}

TEST_F(HpmpUnitTest, CsrWriteAccounting)
{
    unit.resetCsrWrites();
    unit.programSegment(0, 1_GiB, 1_MiB, Perm::rw());
    EXPECT_EQ(unit.csrWrites(), 2u);
    unit.programTable(1, 0, 16_GiB, table.rootPa());
    EXPECT_EQ(unit.csrWrites(), 6u);
    unit.disable(0);
    EXPECT_EQ(unit.csrWrites(), 8u);
}

} // namespace
} // namespace hpmp
