/**
 * @file
 * IOPMP / DMA-protection tests (paper §9): per-master windows,
 * hybrid segment+table checking in front of the bus, and timed DMA
 * transfers with fault injection.
 */

#include <gtest/gtest.h>

#include "base/fault_inject.h"
#include "base/frame_alloc.h"
#include "core/params.h"
#include "hpmp/iopmp.h"

namespace hpmp
{
namespace
{

class IopmpTest : public ::testing::Test
{
  protected:
    IopmpTest()
        : mem(16_GiB),
          hier(rocketParams().hier),
          iopmp(mem, 3)
    {
        // Master 0: plain segment window [4 GiB, +64 MiB).
        iopmp.master(0).programSegment(0, 4_GiB, 64_MiB, Perm::rw());

        // Master 1: table-mode window with page-granular permissions.
        table = std::make_unique<PmpTable>(mem, bumpAllocator(64_MiB),
                                           2);
        table->setPerm(6_GiB, 1_MiB, Perm::ro());
        table->setPerm(6_GiB + 1_MiB, 1_MiB, Perm::rw());
        iopmp.master(1).programTable(0, 0, 16_GiB, table->rootPa());

        // Master 2: nothing programmed (a hostile device).
    }

    PhysMem mem;
    MemoryHierarchy hier;
    IopmpUnit iopmp;
    std::unique_ptr<PmpTable> table;
};

TEST_F(IopmpTest, SegmentWindowBoundsMaster)
{
    EXPECT_TRUE(iopmp.check(0, 4_GiB, 64, AccessType::Load).ok());
    EXPECT_TRUE(iopmp.check(0, 4_GiB, 64, AccessType::Store).ok());
    EXPECT_FALSE(iopmp.check(0, 8_GiB, 64, AccessType::Load).ok());
    EXPECT_FALSE(iopmp.check(0, 2_GiB, 64, AccessType::Load).ok());
    EXPECT_EQ(iopmp.denials(), 2u);
}

TEST_F(IopmpTest, TableWindowIsPageGranular)
{
    EXPECT_TRUE(iopmp.check(1, 6_GiB, 64, AccessType::Load).ok());
    EXPECT_FALSE(iopmp.check(1, 6_GiB, 64, AccessType::Store).ok());
    EXPECT_TRUE(iopmp.check(1, 6_GiB + 1_MiB, 64,
                            AccessType::Store).ok());
    EXPECT_FALSE(iopmp.check(1, 6_GiB + 2_MiB, 64,
                             AccessType::Load).ok());
}

TEST_F(IopmpTest, MastersAreIsolatedFromEachOther)
{
    // Master 1 cannot use master 0's window and vice versa.
    EXPECT_FALSE(iopmp.check(1, 4_GiB, 64, AccessType::Load).ok());
    EXPECT_FALSE(iopmp.check(0, 6_GiB, 64, AccessType::Load).ok());
    // The unprogrammed master can reach nothing.
    EXPECT_FALSE(iopmp.check(2, 4_GiB, 64, AccessType::Load).ok());
    EXPECT_FALSE(iopmp.check(2, 6_GiB, 64, AccessType::Load).ok());
}

TEST_F(IopmpTest, DmaTransferWithinWindowSucceeds)
{
    DmaEngine dma(iopmp, hier, 0);
    const auto result = dma.transfer(4_GiB, 4_GiB + 1_MiB, 4096);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.beats, 64u);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_EQ(result.pmptRefs, 0u); // segment window: no table refs
}

TEST_F(IopmpTest, DmaTransferStopsAtFault)
{
    DmaEngine dma(iopmp, hier, 0);
    // Destination runs off the end of the window.
    const auto result =
        dma.transfer(4_GiB, 4_GiB + 64_MiB - 2048, 4096);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.faultAddr, 4_GiB + 64_MiB);
    EXPECT_EQ(result.beats, 32u); // half the beats landed
}

TEST_F(IopmpTest, TableWindowDmaPaysPmptRefs)
{
    DmaEngine dma(iopmp, hier, 1);
    const auto result =
        dma.transfer(6_GiB, 6_GiB + 1_MiB, 1024);
    EXPECT_TRUE(result.ok);
    EXPECT_GT(result.pmptRefs, 0u); // checks walk the PMP Table
}

TEST_F(IopmpTest, WriteToReadOnlyDmaWindowDenied)
{
    DmaEngine dma(iopmp, hier, 1);
    // dst inside the read-only first MiB.
    const auto result = dma.transfer(6_GiB + 1_MiB, 6_GiB, 256);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.faultAddr, 6_GiB);
}

TEST_F(IopmpTest, InjectedCheckFaultFailsClosed)
{
    // A glitched IOPMP lookup denies the beat even though the window
    // would have allowed it — the check fails closed, never open.
    FaultInjector &injector = FaultInjector::instance();
    injector.enable(7);
    injector.armNth("iopmp.check", 1);
    const uint64_t denials_before = iopmp.denials();
    const HpmpCheckResult denied =
        iopmp.check(0, 4_GiB, 64, AccessType::Store);
    EXPECT_EQ(denied.fault, Fault::StoreAccessFault);
    EXPECT_EQ(iopmp.denials(), denials_before + 1);
    injector.disable();

    // With the injector disarmed the same beat passes again.
    EXPECT_TRUE(iopmp.check(0, 4_GiB, 64, AccessType::Store).ok());
}

TEST_F(IopmpTest, UncontendedBusAddsNoWait)
{
    // A lone master on the shared channel never stalls: timing is
    // identical to the bus-less engine, cycle for cycle. Separate
    // (cold) hierarchies — the caches are stateful.
    MemoryHierarchy hierA(rocketParams().hier);
    MemoryHierarchy hierB(rocketParams().hier);
    DmaEngine plain(iopmp, hierA, 0);
    const auto base = plain.transfer(4_GiB, 4_GiB + 1_MiB, 4096);

    SharedBus bus(2);
    DmaEngine onBus(iopmp, hierB, 0);
    onBus.attachBus(&bus);
    const auto timed = onBus.transfer(4_GiB, 4_GiB + 1_MiB, 4096);

    EXPECT_TRUE(timed.ok);
    EXPECT_EQ(timed.busWaitCycles, 0u);
    EXPECT_EQ(timed.cycles, base.cycles);
    EXPECT_EQ(bus.waitCycles(), 0u);
    EXPECT_GT(bus.grants(), 0u);
}

TEST_F(IopmpTest, ContendedBusInflatesTransferCycles)
{
    // Master 0 loads the channel first; master 1, starting at local
    // time zero, must wait out master 0's occupancy — its transfer
    // cycles inflate by exactly the attributed stall.
    SharedBus bus(2);
    MemoryHierarchy hier0(rocketParams().hier);
    MemoryHierarchy hier1(rocketParams().hier);
    MemoryHierarchy hierSolo(rocketParams().hier);
    DmaEngine dma0(iopmp, hier0, 0);
    DmaEngine dma1(iopmp, hier1, 1);
    dma0.attachBus(&bus);
    dma1.attachBus(&bus);

    const auto first = dma0.transfer(4_GiB, 4_GiB + 1_MiB, 4096);
    ASSERT_TRUE(first.ok);
    EXPECT_EQ(first.busWaitCycles, 0u);

    DmaEngine solo(iopmp, hierSolo, 1);
    const auto unloaded = solo.transfer(6_GiB, 6_GiB + 1_MiB, 1024);

    const auto contended = dma1.transfer(6_GiB, 6_GiB + 1_MiB, 1024);
    ASSERT_TRUE(contended.ok);
    EXPECT_GT(contended.busWaitCycles, 0u);
    EXPECT_EQ(contended.cycles,
              unloaded.cycles + contended.busWaitCycles);
    EXPECT_EQ(bus.masterWaitCycles(1), contended.busWaitCycles);
    EXPECT_EQ(bus.masterWaitCycles(0), 0u);
}

TEST_F(IopmpTest, CheckLatencyOccupiesTheSharedChannel)
{
    // Table-mode windows pay PMPT references per beat; those refs
    // ride the master's bus grant, so a table-checked master holds
    // the channel longer than a segment-checked one moving the same
    // bytes — and the *other* master's wait grows accordingly.
    SharedBus segBus(2), tblBus(2);

    DmaEngine seg(iopmp, hier, 0);
    seg.attachBus(&segBus);
    ASSERT_TRUE(seg.transfer(4_GiB, 4_GiB + 1_MiB, 1024).ok);

    DmaEngine tbl(iopmp, hier, 1);
    tbl.attachBus(&tblBus);
    const auto tblXfer = tbl.transfer(6_GiB, 6_GiB + 1_MiB, 1024);
    ASSERT_TRUE(tblXfer.ok);
    EXPECT_GT(tblXfer.pmptRefs, 0u);
    EXPECT_GT(tblBus.freeAt(), segBus.freeAt());

    DmaEngine behindSeg(iopmp, hier, 0);
    behindSeg.attachBus(&segBus);
    DmaEngine behindTbl(iopmp, hier, 0);
    behindTbl.attachBus(&tblBus);
    const auto waitSeg =
        behindSeg.transfer(4_GiB, 4_GiB + 1_MiB, 256);
    const auto waitTbl =
        behindTbl.transfer(4_GiB, 4_GiB + 1_MiB, 256);
    EXPECT_GT(waitTbl.busWaitCycles, waitSeg.busWaitCycles);
}

TEST_F(IopmpTest, PerMasterStatGroupsAttributeChecks)
{
    const uint64_t before = iopmp.checks();
    EXPECT_TRUE(iopmp.check(0, 4_GiB, 64, AccessType::Load).ok());
    EXPECT_FALSE(iopmp.check(2, 4_GiB, 64, AccessType::Load).ok());
    EXPECT_EQ(iopmp.checks(), before + 2);
    EXPECT_EQ(iopmp.stats().get("checks"), iopmp.checks());
    EXPECT_EQ(iopmp.stats().get("denials"), iopmp.denials());

    // Each DMA source ID gets its own group (plus its PMPTW-cache) so
    // --stats-json dumps attribute traffic per master.
    StatRegistry registry;
    iopmp.registerStats(registry);
    EXPECT_NE(registry.find("iopmp"), nullptr);
    for (unsigned m = 0; m < 3; ++m) {
        const std::string prefix = "iopmp.master" + std::to_string(m);
        ASSERT_NE(registry.find(prefix), nullptr) << prefix;
        EXPECT_NE(registry.find(prefix + ".pmptw_cache"), nullptr);
    }
    // Master 0's checks land in master 0's group, not master 1's.
    const uint64_t m0 = registry.find("iopmp.master0")->get("checks");
    EXPECT_TRUE(iopmp.check(0, 4_GiB, 64, AccessType::Load).ok());
    EXPECT_EQ(registry.find("iopmp.master0")->get("checks"), m0 + 1);
}

} // namespace
} // namespace hpmp
