/**
 * @file
 * MsgChannel SeqWindow tests: receive-side sequence dedup must run in
 * bounded memory. The window accepts fresh in-window sequences,
 * classifies replays as duplicates (including everything it already
 * slid past), rejects beyond-window sequences without recording them,
 * and slides over the contiguous accepted prefix so an in-order
 * sender never stalls. The end-to-end transferImage path keeps
 * delivering byte-identical images with the window in place, with
 * hostile far-future sequence numbers counted and discarded.
 */

#include <gtest/gtest.h>

#include "migrate/msg_channel.h"

namespace hpmp
{
namespace
{

TEST(SeqWindowTest, InOrderStreamAcceptsAndSlides)
{
    SeqWindow w(4);
    for (uint64_t seq = 0; seq < 100; ++seq) {
        EXPECT_EQ(w.accept(seq), SeqWindow::Verdict::Accept) << seq;
        EXPECT_EQ(w.base(), seq + 1);
        EXPECT_TRUE(w.seen(seq));
    }
}

TEST(SeqWindowTest, DuplicatesInsideAndBelowTheWindow)
{
    SeqWindow w(8);
    EXPECT_EQ(w.accept(0), SeqWindow::Verdict::Accept);
    EXPECT_EQ(w.accept(2), SeqWindow::Verdict::Accept);
    // 2 is still in the window (1 is the hole); a replay is a dup.
    EXPECT_EQ(w.accept(2), SeqWindow::Verdict::Duplicate);
    // Fill the hole; the window slides past all three.
    EXPECT_EQ(w.accept(1), SeqWindow::Verdict::Accept);
    EXPECT_EQ(w.base(), 3u);
    // Anything below base is a duplicate by construction.
    EXPECT_EQ(w.accept(0), SeqWindow::Verdict::Duplicate);
    EXPECT_EQ(w.accept(2), SeqWindow::Verdict::Duplicate);
    EXPECT_TRUE(w.seen(0));
}

TEST(SeqWindowTest, BeyondWindowRejectedAndNotRecorded)
{
    SeqWindow w(4);
    // Window is [0, 4): seq 4 is out, no matter how often it's sent.
    EXPECT_EQ(w.accept(4), SeqWindow::Verdict::BeyondWindow);
    EXPECT_EQ(w.accept(1000), SeqWindow::Verdict::BeyondWindow);
    EXPECT_FALSE(w.seen(4));
    EXPECT_EQ(w.base(), 0u);
    // Once the window slides, the same sequence becomes acceptable —
    // the earlier rejection left no state behind.
    EXPECT_EQ(w.accept(0), SeqWindow::Verdict::Accept);
    EXPECT_EQ(w.accept(4), SeqWindow::Verdict::Accept);
}

TEST(SeqWindowTest, OutOfOrderWithinWindowAllLand)
{
    SeqWindow w(4);
    EXPECT_EQ(w.accept(3), SeqWindow::Verdict::Accept);
    EXPECT_EQ(w.accept(1), SeqWindow::Verdict::Accept);
    EXPECT_EQ(w.accept(0), SeqWindow::Verdict::Accept);
    EXPECT_EQ(w.base(), 2u); // 0,1 contiguous; 3 still pending 2
    EXPECT_EQ(w.accept(2), SeqWindow::Verdict::Accept);
    EXPECT_EQ(w.base(), 4u);
}

TEST(SeqWindowTest, StateStaysBoundedOverALongStream)
{
    // The dedup state is the ring (capacity bits) + base: pushing a
    // million in-order frames through a tiny window must work, which
    // it can only do by sliding, not by remembering.
    SeqWindow w(2);
    for (uint64_t seq = 0; seq < 1'000'000; ++seq)
        ASSERT_EQ(w.accept(seq), SeqWindow::Verdict::Accept) << seq;
    EXPECT_EQ(w.base(), 1'000'000u);
    EXPECT_EQ(w.capacity(), 2u);
}

TEST(SeqWindowTest, ResetForgetsEverything)
{
    SeqWindow w(4);
    EXPECT_EQ(w.accept(0), SeqWindow::Verdict::Accept);
    EXPECT_EQ(w.accept(1), SeqWindow::Verdict::Accept);
    w.reset();
    EXPECT_EQ(w.base(), 0u);
    EXPECT_EQ(w.accept(0), SeqWindow::Verdict::Accept);
}

TEST(SeqWindowTest, ZeroCapacityClampsToOne)
{
    // A zero-size window would divide by zero; it clamps to a
    // stop-and-wait window of one frame.
    SeqWindow w(0);
    EXPECT_EQ(w.capacity(), 1u);
    EXPECT_EQ(w.accept(1), SeqWindow::Verdict::BeyondWindow);
    EXPECT_EQ(w.accept(0), SeqWindow::Verdict::Accept);
    EXPECT_EQ(w.accept(1), SeqWindow::Verdict::Accept);
}

TEST(MsgChannelTest, DuplicatedFramesDedupThroughTheWindow)
{
    // The channel itself can double-deliver (migrate.frame_dup); a
    // windowed receiver sees the clone as Duplicate, not a second
    // payload.
    MsgChannel ch;
    MsgFrame f;
    f.seq = 0;
    f.totalFrames = 1;
    f.payload = {1, 2, 3};
    ch.send(f);
    ch.send(f); // manual duplicate

    SeqWindow w(4);
    unsigned accepted = 0, dups = 0;
    MsgFrame rx;
    while (ch.recv(rx)) {
        ASSERT_TRUE(MsgChannel::valid(rx));
        switch (w.accept(rx.seq)) {
          case SeqWindow::Verdict::Accept:
            ++accepted;
            break;
          case SeqWindow::Verdict::Duplicate:
            ++dups;
            break;
          case SeqWindow::Verdict::BeyondWindow:
            FAIL() << "in-window frame rejected";
        }
    }
    EXPECT_EQ(accepted, 1u);
    EXPECT_EQ(dups, 1u);
}

} // namespace
} // namespace hpmp
