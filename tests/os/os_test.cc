/**
 * @file
 * OS-model tests: page allocator (first-fit, NAPOT, scatter), kernel
 * PT pool policy and address spaces (mmap, demand paging, munmap).
 */

#include <gtest/gtest.h>

#include "monitor/secure_monitor.h"
#include "os/address_space.h"
#include "os/kernel.h"
#include "os/page_alloc.h"

namespace hpmp
{
namespace
{

TEST(PageAllocator, FirstFitAndFree)
{
    PageAllocator alloc(1_GiB, 1_MiB);
    auto a = alloc.alloc(4);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, 1_GiB);
    auto b = alloc.alloc(4);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, 1_GiB + 4 * kPageSize);

    alloc.free(*a, 4);
    auto c = alloc.alloc(2);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, 1_GiB); // reuses the freed hole
}

TEST(PageAllocator, ExhaustionReturnsNullopt)
{
    PageAllocator alloc(1_GiB, 4 * kPageSize);
    EXPECT_TRUE(alloc.alloc(4).has_value());
    EXPECT_FALSE(alloc.alloc(1).has_value());
}

TEST(PageAllocator, NapotAlignment)
{
    PageAllocator alloc(1_GiB, 64_MiB);
    ASSERT_TRUE(alloc.alloc(1).has_value()); // misalign the cursor
    auto region = alloc.allocNapot(1_MiB);
    ASSERT_TRUE(region.has_value());
    EXPECT_EQ(*region % 1_MiB, 0u);
}

TEST(PageAllocator, AllocTopTakesFromTheEnd)
{
    PageAllocator alloc(1_GiB, 1_MiB);
    auto top = alloc.allocTop(2);
    ASSERT_TRUE(top.has_value());
    EXPECT_EQ(*top, 1_GiB + 1_MiB - 2 * kPageSize);
    auto bottom = alloc.alloc(1);
    ASSERT_TRUE(bottom.has_value());
    EXPECT_EQ(*bottom, 1_GiB); // front unaffected
    alloc.free(*top, 2);
    EXPECT_EQ(alloc.freeBytes(), 1_MiB - kPageSize);
}

TEST(PageAllocator, ScatterFragmentsPlacement)
{
    PageAllocator contig(1_GiB, 64_MiB);
    PageAllocator scatter(1_GiB, 64_MiB);
    scatter.setScatter(true, 7);

    bool adjacent_contig = true, adjacent_scatter = true;
    Addr prev_c = 0, prev_s = 0;
    for (int i = 0; i < 64; ++i) {
        const Addr c = *contig.alloc(1);
        const Addr s = *scatter.alloc(1);
        if (i > 0) {
            adjacent_contig &= (c == prev_c + kPageSize);
            adjacent_scatter &= (s == prev_s + kPageSize);
        }
        prev_c = c;
        prev_s = s;
    }
    EXPECT_TRUE(adjacent_contig);
    EXPECT_FALSE(adjacent_scatter);
    EXPECT_GT(scatter.fragments(), 4u);
}

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest()
    {
        machine = std::make_unique<Machine>(rocketParams());
        MonitorConfig mc;
        mc.scheme = IsolationScheme::Hpmp;
        monitor = std::make_unique<SecureMonitor>(*machine, mc);
    }

    std::unique_ptr<Machine> machine;
    std::unique_ptr<SecureMonitor> monitor;
};

TEST_F(KernelTest, PtPoolKeepsPtPagesContiguous)
{
    KernelConfig config;
    config.contiguousPtPool = true;
    Kernel kernel(*monitor, 0, 2_GiB, 1_GiB, config);
    ASSERT_TRUE(monitor->switchTo(0).ok);

    auto as = kernel.createAddressSpace();
    as->mmap(8_MiB, Perm::rw(), true, true);
    for (Addr page : as->pageTable().ptPages()) {
        EXPECT_GE(page, kernel.ptPoolBase());
        EXPECT_LT(page, kernel.ptPoolBase() + config.ptPoolBytes);
    }
    // The PT pool is registered as a fast GMS.
    bool found_fast = false;
    for (const Gms &gms : monitor->gmsOf(0)) {
        if (gms.base == kernel.ptPoolBase() &&
            gms.label == GmsLabel::Fast) {
            found_fast = true;
        }
    }
    EXPECT_TRUE(found_fast);
}

TEST_F(KernelTest, BaselineScattersPtPages)
{
    KernelConfig config;
    config.contiguousPtPool = false;
    config.scatterData = true;
    Kernel kernel(*monitor, 0, 2_GiB, 1_GiB, config);
    ASSERT_TRUE(monitor->switchTo(0).ok);
    EXPECT_EQ(kernel.ptPoolBase(), 0u);

    auto as = kernel.createAddressSpace();
    // Map many spread-out regions to force several PT pages.
    for (int i = 0; i < 8; ++i) {
        as->mapAt(0x40000000 + (Addr(i) << 30), kPageSize, Perm::rw(),
                  true, true);
    }
    const auto &pages = as->pageTable().ptPages();
    ASSERT_GT(pages.size(), 4u);
    bool contiguous = true;
    for (size_t i = 1; i < pages.size(); ++i)
        contiguous &= pages[i] == pages[i - 1] + kPageSize;
    EXPECT_FALSE(contiguous);
}

TEST_F(KernelTest, AddressSpaceDemandPaging)
{
    KernelConfig config;
    Kernel kernel(*monitor, 0, 2_GiB, 1_GiB, config);
    ASSERT_TRUE(monitor->switchTo(0).ok);

    auto as = kernel.createAddressSpace();
    const Addr va = as->mmap(4 * kPageSize, Perm::rw(), true, false);
    EXPECT_FALSE(as->populated(va));
    EXPECT_FALSE(as->pageTable().translate(va).has_value());

    EXPECT_TRUE(as->handleFault(va, AccessType::Store));
    EXPECT_TRUE(as->populated(va));
    EXPECT_TRUE(as->pageTable().translate(va).has_value());
    EXPECT_EQ(as->pageFaults(), 1u);

    // Re-faulting a populated page is rejected (it is a real fault).
    EXPECT_FALSE(as->handleFault(va, AccessType::Store));
    // Outside any VMA: unhandled.
    EXPECT_FALSE(as->handleFault(0x9990000000, AccessType::Load));
}

TEST_F(KernelTest, MunmapFreesFrames)
{
    KernelConfig config;
    Kernel kernel(*monitor, 0, 2_GiB, 1_GiB, config);
    ASSERT_TRUE(monitor->switchTo(0).ok);

    auto as = kernel.createAddressSpace();
    const uint64_t before = kernel.dataAllocator().freeBytes();
    const Addr va = as->mmap(16 * kPageSize, Perm::rw(), true, true);
    EXPECT_EQ(kernel.dataAllocator().freeBytes(),
              before - 16 * kPageSize);
    EXPECT_TRUE(as->munmap(va, 16 * kPageSize));
    EXPECT_EQ(kernel.dataAllocator().freeBytes(), before);
    EXPECT_FALSE(as->munmap(va, 16 * kPageSize));
}

TEST_F(KernelTest, MapAtRejectsOverlap)
{
    KernelConfig config;
    Kernel kernel(*monitor, 0, 2_GiB, 1_GiB, config);
    auto as = kernel.createAddressSpace();
    ASSERT_TRUE(as->mapAt(0x50000000, 4 * kPageSize, Perm::rw(), true,
                          false));
    EXPECT_FALSE(as->mapAt(0x50002000, 4 * kPageSize, Perm::rw(), true,
                           false));
}

TEST_F(KernelTest, EndToEndAccessThroughMachine)
{
    KernelConfig config;
    Kernel kernel(*monitor, 0, 2_GiB, 1_GiB, config);
    ASSERT_TRUE(monitor->switchTo(0).ok);

    auto as = kernel.createAddressSpace();
    const Addr va = as->mmap(kPageSize, Perm::rw(), true, true);
    kernel.activate(*as, PrivMode::User);

    const AccessOutcome out = machine->access(va, AccessType::Load);
    ASSERT_TRUE(out.ok()) << toString(out.fault);
    // HPMP scheme: PT refs free, data checked via the table -> 6 refs.
    EXPECT_EQ(out.totalRefs(), 6u);
}

TEST_F(KernelTest, OsStatsCountAllocationAndPagingTraffic)
{
    KernelConfig config;
    config.contiguousPtPool = true;
    Kernel kernel(*monitor, 0, 2_GiB, 1_GiB, config);
    ASSERT_TRUE(monitor->switchTo(0).ok);

    auto as = kernel.createAddressSpace();
    EXPECT_EQ(kernel.osStats().addressSpaces.value(), 1u);

    // Populated mmap: data allocs, PT-pool allocs and populated pages.
    const Addr va = as->mmap(4 * kPageSize, Perm::rw(), true, true);
    EXPECT_EQ(kernel.osStats().mmaps.value(), 1u);
    EXPECT_EQ(kernel.osStats().pagesPopulated.value(), 4u);
    EXPECT_GE(kernel.osStats().dataAllocs.value(), 4u);
    EXPECT_GT(kernel.osStats().ptPoolAllocs.value(), 0u);
    EXPECT_EQ(kernel.osStats().ptFallbackAllocs.value(), 0u);

    // Demand paging: an unpopulated page is faulted in and counted.
    const Addr lazy = as->mmap(kPageSize, Perm::rw(), true, false);
    kernel.activate(*as, PrivMode::User);
    ASSERT_TRUE(as->handleFault(lazy, AccessType::Load));
    EXPECT_EQ(kernel.osStats().pageFaultsHandled.value(), 1u);

    ASSERT_TRUE(as->munmap(va, 4 * kPageSize));
    EXPECT_EQ(kernel.osStats().munmaps.value(), 1u);
    EXPECT_GE(kernel.osStats().dataFrees.value(), 4u);

    // registerStats exposes the group (prefix-named) for --stats-json.
    StatRegistry registry;
    kernel.registerStats(registry, "os");
    ASSERT_NE(registry.find("os"), nullptr);
    EXPECT_EQ(registry.find("os")->get("mmaps"),
              kernel.osStats().mmaps.value());
    EXPECT_EQ(registry.find("os")->get("page_faults_handled"), 1u);
}

} // namespace
} // namespace hpmp
