/**
 * @file
 * OS allocator-exhaustion tests: typed OOM failures (tryMmap /
 * tryHandleFault), partial-population unwinding, and the §6 PT-pool
 * fallback path — a PT page that does not fit the contiguous pool
 * comes from the general allocator and is protected through the PMP
 * Table instead of the pool's fast segment.
 */

#include <gtest/gtest.h>

#include "base/fault_inject.h"
#include "monitor/secure_monitor.h"
#include "os/address_space.h"
#include "os/kernel.h"
#include "os/page_alloc.h"

namespace hpmp
{
namespace
{

class OsFaultTest : public ::testing::Test
{
  protected:
    OsFaultTest()
    {
        machine = std::make_unique<Machine>(rocketParams());
        MonitorConfig mc;
        mc.scheme = IsolationScheme::Hpmp;
        monitor = std::make_unique<SecureMonitor>(*machine, mc);
    }

    ~OsFaultTest() override { FaultInjector::instance().disable(); }

    std::unique_ptr<Machine> machine;
    std::unique_ptr<SecureMonitor> monitor;
};

TEST_F(OsFaultTest, TryMmapReportsExhaustionAndUnwinds)
{
    KernelConfig config;
    // 32 MiB domain: 16 MiB PT pool + 16 MiB of data frames.
    Kernel kernel(*monitor, 0, 2_GiB, 32_MiB, config);
    ASSERT_TRUE(monitor->switchTo(0).ok);
    auto as = kernel.createAddressSpace();

    const uint64_t free_before = kernel.dataAllocator().freeBytes();
    // More than the data region holds: typed failure, not fatal().
    EXPECT_FALSE(as->tryMmap(64_MiB, Perm::rw()).has_value());
    // The partial population was unwound completely.
    EXPECT_EQ(as->populatedPages(), 0u);
    EXPECT_EQ(kernel.dataAllocator().freeBytes(), free_before);

    // The address space still works after the failure.
    const auto va = as->tryMmap(1_MiB, Perm::rw());
    ASSERT_TRUE(va.has_value());
    EXPECT_TRUE(as->pageTable().translate(*va).has_value());
}

TEST_F(OsFaultTest, MapAtUnwindsPartialPopulation)
{
    KernelConfig config;
    config.ptPoolBytes = 1_MiB;
    // 2 MiB domain: 1 MiB pool + 1 MiB (256 frames) of data.
    Kernel kernel(*monitor, 0, 2_GiB, 2_MiB, config);
    auto as = kernel.createAddressSpace();

    const uint64_t free_before = kernel.dataAllocator().freeBytes();
    // 2 MiB of data cannot fit: population fails partway through.
    EXPECT_FALSE(as->mapAt(0x50000000, 2_MiB, Perm::rw(), true, true));
    EXPECT_EQ(as->populatedPages(), 0u);
    EXPECT_EQ(kernel.dataAllocator().freeBytes(), free_before);
    EXPECT_FALSE(as->pageTable().translate(0x50000000).has_value());

    // A request that fits succeeds afterwards.
    EXPECT_TRUE(as->mapAt(0x50000000, 256_KiB, Perm::rw(), true, true));
}

TEST_F(OsFaultTest, PageAllocFaultSiteGivesTypedOom)
{
    KernelConfig config;
    Kernel kernel(*monitor, 0, 2_GiB, 1_GiB, config);
    auto as = kernel.createAddressSpace();
    const Addr va = as->mmap(4 * kPageSize, Perm::rw(), true, false);

    FaultInjector &injector = FaultInjector::instance();
    injector.enable(11);
    injector.armProb("os.page_alloc", 1.0);

    // Every allocation path reports typed exhaustion while armed.
    EXPECT_FALSE(kernel.allocData(1).has_value());
    EXPECT_EQ(as->tryHandleFault(va, AccessType::Store),
              AddressSpace::FaultHandleStatus::OutOfMemory);
    EXPECT_FALSE(as->populated(va));
    EXPECT_EQ(as->pageFaults(), 0u);
    EXPECT_FALSE(as->tryMmap(kPageSize, Perm::rw()).has_value());
    // The legacy entry point reads OOM as "unhandled", never aborts.
    EXPECT_FALSE(as->handleFault(va, AccessType::Store));

    injector.disable();
    // The same fault handles fine once the "exhaustion" clears.
    EXPECT_EQ(as->tryHandleFault(va, AccessType::Store),
              AddressSpace::FaultHandleStatus::Handled);
    EXPECT_TRUE(as->populated(va));
}

TEST_F(OsFaultTest, PtPoolMissFallsBackToTableProtectedFrame)
{
    KernelConfig config;
    config.contiguousPtPool = true;
    Kernel kernel(*monitor, 0, 2_GiB, 1_GiB, config);
    ASSERT_TRUE(monitor->switchTo(0).ok);
    auto as = kernel.createAddressSpace();
    // Warm mapping: all PT pages so far come from the pool.
    ASSERT_TRUE(as->mapAt(0x40000000, kPageSize, Perm::rw(), true, true));
    const Addr pool_end = kernel.ptPoolBase() + config.ptPoolBytes;
    for (Addr page : as->pageTable().ptPages())
        ASSERT_LT(page, pool_end);

    // One simulated pool miss: the next PT page takes the §6 fallback
    // into the general allocator.
    FaultInjector &injector = FaultInjector::instance();
    injector.enable(11);
    injector.armNth("os.pt_pool_miss", 1);
    // A far-away GiB needs two fresh PT nodes: the first allocation
    // takes the fallback, the second comes from the pool again.
    ASSERT_TRUE(as->mapAt(0x40000000 + (8ULL << 30), kPageSize,
                          Perm::rw(), true, true));
    injector.disable();

    std::vector<Addr> outside;
    for (Addr page : as->pageTable().ptPages()) {
        if (page >= pool_end)
            outside.push_back(page);
    }
    ASSERT_EQ(outside.size(), 1u);

    // The fallback PT page is still protected — through the PMP Table
    // (it lives in the slow data GMS), while pool PT pages resolve via
    // the pool's fast segment entry.
    const HpmpCheckResult via_table = machine->hpmp().check(
        outside[0], 8, AccessType::Load, PrivMode::Supervisor);
    EXPECT_TRUE(via_table.ok());
    EXPECT_TRUE(via_table.viaTable);
    const HpmpCheckResult via_segment = machine->hpmp().check(
        kernel.ptPoolBase(), 8, AccessType::Load, PrivMode::Supervisor);
    EXPECT_TRUE(via_segment.ok());
    EXPECT_FALSE(via_segment.viaTable);

    // Both address-space halves work: translation still resolves.
    EXPECT_TRUE(as->pageTable()
                    .translate(0x40000000 + (8ULL << 30))
                    .has_value());
}

} // namespace
} // namespace hpmp
