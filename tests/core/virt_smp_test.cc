/**
 * @file
 * Multi-hart virtualization tests: per-hart VirtMachines over one
 * shared PhysMem, the hfence shootdown protocol (vsatp/hgatp writes
 * IPI every sibling), the vvma/gvma flush contract observed from a
 * *victim* hart's TLB counters, and the bounded lost-IPI retry path.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/fault_inject.h"
#include "base/frame_alloc.h"
#include "core/smp.h"
#include "core/virt_machine.h"
#include "pt/page_table.h"

namespace hpmp
{
namespace
{

constexpr Addr kArenaBase = 1_GiB;
constexpr uint64_t kArenaStride = 32_MiB;
constexpr Addr kGuestVa = 0x40000000;

SmpParams
smpParams(unsigned harts, uint64_t seed = 42)
{
    SmpParams sp;
    sp.harts = harts;
    sp.schedSeed = seed;
    return sp;
}

/** One hart's guest: an NPT, a GPT, one data page, open physical perms. */
struct TestGuest
{
    std::unique_ptr<PageTable> npt, gpt;
    Addr data = 0;
};

TestGuest
buildGuest(SmpSystem &smp, unsigned hart)
{
    TestGuest g;
    const Addr base = kArenaBase + hart * kArenaStride;
    g.npt = std::make_unique<PageTable>(smp.mem(), bumpAllocator(base),
                                        PagingMode::Sv39, 2);
    g.gpt = std::make_unique<PageTable>(
        smp.mem(), bumpAllocator(base + 4_MiB), PagingMode::Sv39, 0);
    g.data = base + 8_MiB;

    // G-stage identity maps over the GPT pool and the data page.
    for (Addr off = 0; off < 64_KiB; off += kPageSize) {
        const Addr gpa = base + 4_MiB + off;
        EXPECT_TRUE(g.npt->map(gpa, gpa, Perm::rw(), true));
    }
    EXPECT_TRUE(g.npt->map(g.data, g.data, Perm::rwx(), true));
    EXPECT_TRUE(g.gpt->map(kGuestVa, g.data, Perm::rwx(), true));

    // The hart reaches its arena without a monitor in the loop.
    smp.hart(hart).hpmp().programSegment(0, base, kArenaStride,
                                         Perm::rwx());
    smp.hart(hart).setPriv(PrivMode::Supervisor);

    VirtMachine &vm = smp.virtHart(hart);
    vm.setHgatp(g.npt->rootPa());
    vm.setVsatp(g.gpt->rootPa());
    return g;
}

TEST(VirtSmp, EnableVirtIsIdempotentAndPerHart)
{
    SmpSystem smp(rocketParams(), smpParams(4));
    EXPECT_FALSE(smp.virtEnabled());

    smp.enableVirt();
    ASSERT_TRUE(smp.virtEnabled());
    smp.enableVirt(); // second call is a no-op, not a re-create
    ASSERT_TRUE(smp.virtEnabled());

    for (unsigned h = 0; h < 4; ++h)
        EXPECT_EQ(smp.virtHart(h).hartId(), h);
    EXPECT_NE(&smp.virtHart(0), &smp.virtHart(1));
    EXPECT_NE(&smp.virtHart(0).combinedTlb(),
              &smp.virtHart(1).combinedTlb());
}

TEST(VirtSmp, VsatpAndHgatpWritesShootDownSiblings)
{
    SmpSystem smp(rocketParams(), smpParams(4));
    smp.enableVirt();

    const uint64_t shootdowns = smp.stats().get("hfence_shootdowns");
    const uint64_t fences = smp.stats().get("hfence_remote_fences");

    smp.virtHart(0).setHgatp(0x1000);
    EXPECT_EQ(smp.stats().get("hfence_shootdowns"), shootdowns + 1);
    EXPECT_EQ(smp.stats().get("hfence_remote_fences"), fences + 3);

    smp.virtHart(2).setVsatp(0x2000);
    EXPECT_EQ(smp.stats().get("hfence_shootdowns"), shootdowns + 2);
    EXPECT_EQ(smp.stats().get("hfence_remote_fences"), fences + 6);
}

TEST(VirtSmp, SingleHartWritesNeedNoShootdown)
{
    SmpSystem smp(rocketParams(), smpParams(1));
    smp.enableVirt();
    smp.virtHart(0).setHgatp(0x1000);
    smp.virtHart(0).setVsatp(0x2000);
    EXPECT_EQ(smp.stats().get("hfence_shootdowns"), 0u);
    EXPECT_EQ(smp.stats().get("hfence_remote_fences"), 0u);
}

TEST(VirtSmp, VvmaShootdownKeepsSiblingGStage)
{
    SmpSystem smp(rocketParams(), smpParams(2));
    smp.enableVirt();
    const TestGuest g0 = buildGuest(smp, 0);
    const TestGuest g1 = buildGuest(smp, 1);
    (void)g0;

    VirtMachine &victim = smp.virtHart(1);
    ASSERT_TRUE(victim.access(kGuestVa, AccessType::Load).ok());

    Tlb &combined = victim.combinedTlb();
    Tlb &gtlb = victim.gStageTlb();
    const uint64_t comb_misses = combined.misses();
    const uint64_t g_hits = gtlb.l1Hits() + gtlb.l2Hits();
    const uint64_t g_misses = gtlb.misses();

    // A vsatp write on hart 0 is an hfence.vvma on hart 1: the victim
    // re-walks its guest table (combined-TLB miss) but every G-stage
    // lookup of that re-walk still hits.
    smp.virtHart(0).setVsatp(g0.gpt->rootPa());
    ASSERT_TRUE(victim.access(kGuestVa, AccessType::Load).ok());
    EXPECT_EQ(combined.misses(), comb_misses + 1);
    EXPECT_EQ(gtlb.l1Hits() + gtlb.l2Hits(), g_hits + 4);
    EXPECT_EQ(gtlb.misses(), g_misses);
}

TEST(VirtSmp, GvmaShootdownDropsSiblingGStage)
{
    SmpSystem smp(rocketParams(), smpParams(2));
    smp.enableVirt();
    const TestGuest g0 = buildGuest(smp, 0);
    const TestGuest g1 = buildGuest(smp, 1);
    (void)g1;

    VirtMachine &victim = smp.virtHart(1);
    ASSERT_TRUE(victim.access(kGuestVa, AccessType::Load).ok());

    Tlb &gtlb = victim.gStageTlb();
    const uint64_t g_hits = gtlb.l1Hits() + gtlb.l2Hits();
    const uint64_t g_misses = gtlb.misses();

    // An hgatp write on hart 0 is an hfence.gvma on hart 1: the same
    // re-walk now misses the G-stage TLB on all four lookups.
    smp.virtHart(0).setHgatp(g0.npt->rootPa());
    ASSERT_TRUE(victim.access(kGuestVa, AccessType::Load).ok());
    EXPECT_EQ(gtlb.l1Hits() + gtlb.l2Hits(), g_hits);
    EXPECT_EQ(gtlb.misses(), g_misses + 4);
}

TEST(VirtSmp, LostHfenceIpisRetryBoundedAndStillFence)
{
    SmpSystem smp(rocketParams(), smpParams(4));
    smp.enableVirt();

    FaultInjector &injector = FaultInjector::instance();
    injector.enable(7);
    injector.armProb("smp.hfence_ipi", 1.0);

    const uint64_t retries = smp.stats().get("hfence_ipi_retries");
    const uint64_t fences = smp.stats().get("hfence_remote_fences");
    smp.virtHart(0).setVsatp(0x3000);

    // Every post attempt to each of the 3 siblings is dropped: the
    // bounded resend loop retries 8 times per hart, then the fence is
    // performed anyway — the protocol degrades, it never loses fences.
    EXPECT_EQ(smp.stats().get("hfence_ipi_retries"), retries + 24);
    EXPECT_EQ(smp.stats().get("hfence_remote_fences"), fences + 3);

    injector.clearPlans();
    injector.disable();
}

} // namespace
} // namespace hpmp
