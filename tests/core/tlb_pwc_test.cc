/**
 * @file
 * TLB and PWC unit tests.
 */

#include <gtest/gtest.h>

#include "core/pwc.h"
#include "core/tlb.h"

namespace hpmp
{
namespace
{

TEST(Tlb, MissThenL1Hit)
{
    Tlb tlb(4, 64);
    TlbHitLevel level;
    EXPECT_EQ(tlb.lookup(0x1000, &level), nullptr);
    EXPECT_EQ(level, TlbHitLevel::Miss);

    tlb.fill(0x1000, 0x80001000, Perm::rw(), Perm::rwx(), true);
    const TlbEntry *entry = tlb.lookup(0x1234, &level);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(level, TlbHitLevel::L1);
    EXPECT_EQ(entry->ppn, 0x80001000u >> kPageShift);
    EXPECT_EQ(entry->perm, Perm::rw());
    EXPECT_EQ(entry->physPerm, Perm::rwx());
    EXPECT_TRUE(entry->user);
}

TEST(Tlb, L2BackstopsL1Eviction)
{
    Tlb tlb(2, 64);
    tlb.fill(0x1000, 0x80001000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(0x2000, 0x80002000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(0x3000, 0x80003000, Perm::rw(), Perm::rwx(), true);

    TlbHitLevel level;
    const TlbEntry *entry = tlb.lookup(0x1000, &level);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(level, TlbHitLevel::L2); // evicted from L1, caught by L2
    // Promotion: the next lookup hits L1.
    tlb.lookup(0x1000, &level);
    EXPECT_EQ(level, TlbHitLevel::L1);
}

TEST(Tlb, DirectMappedL2Conflicts)
{
    Tlb tlb(1, 16);
    // Two VPNs that collide in a 16-entry direct-mapped L2.
    tlb.fill(pageAddr(3), 0x80001000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(pageAddr(3 + 16), 0x80002000, Perm::rw(), Perm::rwx(),
             true);
    tlb.fill(pageAddr(5), 0x80003000, Perm::rw(), Perm::rwx(), true);
    // First fill was evicted from both L1 (size 1) and its L2 slot.
    EXPECT_EQ(tlb.lookup(pageAddr(3)), nullptr);
    EXPECT_NE(tlb.lookup(pageAddr(3 + 16)), nullptr);
}

TEST(Tlb, FlushPageIsSelective)
{
    Tlb tlb(4, 64);
    tlb.fill(0x1000, 0x80001000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(0x2000, 0x80002000, Perm::rw(), Perm::rwx(), true);
    tlb.flushPage(0x1000);
    EXPECT_EQ(tlb.lookup(0x1000), nullptr);
    EXPECT_NE(tlb.lookup(0x2000), nullptr);
    tlb.flushAll();
    EXPECT_EQ(tlb.lookup(0x2000), nullptr);
}

TEST(Tlb, SuperpageEntryCoversWholeRange)
{
    Tlb tlb(4, 64);
    // 2 MiB leaf: one entry serves every 4 KiB page inside it.
    tlb.fill(0x40000000, 0x80000000, Perm::rw(), Perm::rwx(), true,
             /*level=*/1);
    const TlbEntry *a = tlb.lookup(0x40000000 + 0x1234);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->translate(0x40000000 + 0x1234), 0x80001234u);
    const TlbEntry *b = tlb.lookup(0x40000000 + 0x1ff000 + 0x10);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->translate(0x40000000 + 0x1ff010), 0x801ff010u);
    // Outside the superpage: miss.
    EXPECT_EQ(tlb.lookup(0x40200000), nullptr);
    // flushPage with any covered address drops the whole entry.
    tlb.flushPage(0x40001000);
    EXPECT_EQ(tlb.lookup(0x40000000), nullptr);
}

TEST(Tlb, GigapageEntryTranslatesAndFlushes)
{
    Tlb tlb(4, 64);
    // 1 GiB leaf at level 2.
    tlb.fill(0x80000000, 0x100000000, Perm::rwx(), Perm::rwx(), false,
             /*level=*/2);
    const TlbEntry *e = tlb.lookup(0x80000000 + 0x12345678);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->level, 2);
    EXPECT_FALSE(e->user);
    EXPECT_EQ(e->translate(0x80000000 + 0x12345678),
              0x100000000u + 0x12345678u);
    // 1 GiB entries never live in the 4 KiB-only L2: after flushPage
    // of any covered address nothing backstops the entry.
    tlb.flushPage(0x80000000 + 0x3f000000);
    EXPECT_EQ(tlb.lookup(0x80000000), nullptr);
}

TEST(Tlb, PromotionEvictsTrueLruVictim)
{
    Tlb tlb(2, 64);
    const Addr a = pageAddr(1), b = pageAddr(2), c = pageAddr(3);
    tlb.fill(a, 0x80001000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(b, 0x80002000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(c, 0x80003000, Perm::rw(), Perm::rwx(), true);
    // L1 (2 entries) now holds {b, c}; a was evicted to the L2.

    TlbHitLevel level;
    tlb.lookup(b, &level);
    EXPECT_EQ(level, TlbHitLevel::L1); // b is now MRU, c is LRU

    // Promoting a from the L2 must evict the true-LRU entry c, not b.
    tlb.lookup(a, &level);
    EXPECT_EQ(level, TlbHitLevel::L2);
    tlb.lookup(b, &level);
    EXPECT_EQ(level, TlbHitLevel::L1);
    tlb.lookup(a, &level);
    EXPECT_EQ(level, TlbHitLevel::L1);
    tlb.lookup(c, &level);
    EXPECT_EQ(level, TlbHitLevel::L2); // only c fell back to the L2
}

TEST(Tlb, StatsCount)
{
    Tlb tlb(4, 64);
    tlb.lookup(0x1000);
    tlb.fill(0x1000, 0x80001000, Perm::rw(), Perm::rwx(), true);
    tlb.lookup(0x1000);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.l1Hits(), 1u);
}

TEST(Pwc, FillLookupByLevel)
{
    Pwc pwc(8);
    const Pte pte = Pte::pointer(0x123000);
    pwc.fill(1, 0x40000000, pte);
    auto hit = pwc.lookup(1, 0x40000000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->raw, pte.raw);
    // Same address, different level: miss.
    EXPECT_FALSE(pwc.lookup(2, 0x40000000).has_value());
    // Different 2 MiB region at level 0... level 0 tags 4 KiB regions.
    EXPECT_FALSE(pwc.lookup(1, 0x40200000).has_value());
    // Within the same level-1 region (2 MiB): hit.
    EXPECT_TRUE(pwc.lookup(1, 0x40001000).has_value());
}

TEST(Pwc, LruEviction)
{
    Pwc pwc(2);
    pwc.fill(0, 0x1000, Pte::pointer(0x1000));
    pwc.fill(0, 0x2000, Pte::pointer(0x2000));
    pwc.lookup(0, 0x1000); // touch
    pwc.fill(0, 0x3000, Pte::pointer(0x3000));
    EXPECT_TRUE(pwc.lookup(0, 0x1000).has_value());
    EXPECT_FALSE(pwc.lookup(0, 0x2000).has_value());
}

TEST(Pwc, DisabledNeverCaches)
{
    Pwc pwc(0);
    EXPECT_FALSE(pwc.enabled());
    pwc.fill(0, 0x1000, Pte::pointer(0x1000));
    EXPECT_FALSE(pwc.lookup(0, 0x1000).has_value());
}

TEST(Pwc, InvalidateAndFlush)
{
    Pwc pwc(8);
    pwc.fill(0, 0x1000, Pte::pointer(0x1000));
    pwc.fill(1, 0x1000, Pte::pointer(0x2000));
    pwc.invalidate(0, 0x1000);
    EXPECT_FALSE(pwc.lookup(0, 0x1000).has_value());
    EXPECT_TRUE(pwc.lookup(1, 0x1000).has_value());
    pwc.flush();
    EXPECT_FALSE(pwc.lookup(1, 0x1000).has_value());
}

} // namespace
} // namespace hpmp
