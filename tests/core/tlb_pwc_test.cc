/**
 * @file
 * TLB and PWC unit tests.
 */

#include <gtest/gtest.h>

#include "core/pwc.h"
#include "core/tlb.h"

namespace hpmp
{
namespace
{

TEST(Tlb, MissThenL1Hit)
{
    Tlb tlb(4, 64);
    TlbHitLevel level;
    EXPECT_FALSE(tlb.lookup(0x1000, &level).has_value());
    EXPECT_EQ(level, TlbHitLevel::Miss);

    tlb.fill(0x1000, 0x80001000, Perm::rw(), Perm::rwx(), true);
    auto entry = tlb.lookup(0x1234, &level);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(level, TlbHitLevel::L1);
    EXPECT_EQ(entry->ppn, 0x80001000u >> kPageShift);
    EXPECT_EQ(entry->perm, Perm::rw());
    EXPECT_EQ(entry->physPerm, Perm::rwx());
    EXPECT_TRUE(entry->user);
}

TEST(Tlb, L2BackstopsL1Eviction)
{
    Tlb tlb(2, 64);
    tlb.fill(0x1000, 0x80001000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(0x2000, 0x80002000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(0x3000, 0x80003000, Perm::rw(), Perm::rwx(), true);

    TlbHitLevel level;
    auto entry = tlb.lookup(0x1000, &level);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(level, TlbHitLevel::L2); // evicted from L1, caught by L2
    // Promotion: the next lookup hits L1.
    tlb.lookup(0x1000, &level);
    EXPECT_EQ(level, TlbHitLevel::L1);
}

TEST(Tlb, DirectMappedL2Conflicts)
{
    Tlb tlb(1, 16);
    // Two VPNs that collide in a 16-entry direct-mapped L2.
    tlb.fill(pageAddr(3), 0x80001000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(pageAddr(3 + 16), 0x80002000, Perm::rw(), Perm::rwx(),
             true);
    tlb.fill(pageAddr(5), 0x80003000, Perm::rw(), Perm::rwx(), true);
    // First fill was evicted from both L1 (size 1) and its L2 slot.
    EXPECT_FALSE(tlb.lookup(pageAddr(3)).has_value());
    EXPECT_TRUE(tlb.lookup(pageAddr(3 + 16)).has_value());
}

TEST(Tlb, FlushPageIsSelective)
{
    Tlb tlb(4, 64);
    tlb.fill(0x1000, 0x80001000, Perm::rw(), Perm::rwx(), true);
    tlb.fill(0x2000, 0x80002000, Perm::rw(), Perm::rwx(), true);
    tlb.flushPage(0x1000);
    EXPECT_FALSE(tlb.lookup(0x1000).has_value());
    EXPECT_TRUE(tlb.lookup(0x2000).has_value());
    tlb.flushAll();
    EXPECT_FALSE(tlb.lookup(0x2000).has_value());
}

TEST(Tlb, SuperpageEntryCoversWholeRange)
{
    Tlb tlb(4, 64);
    // 2 MiB leaf: one entry serves every 4 KiB page inside it.
    tlb.fill(0x40000000, 0x80000000, Perm::rw(), Perm::rwx(), true,
             /*level=*/1);
    auto a = tlb.lookup(0x40000000 + 0x1234);
    auto b = tlb.lookup(0x40000000 + 0x1ff000 + 0x10);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->translate(0x40000000 + 0x1234), 0x80001234u);
    EXPECT_EQ(b->translate(0x40000000 + 0x1ff010), 0x801ff010u);
    // Outside the superpage: miss.
    EXPECT_FALSE(tlb.lookup(0x40200000).has_value());
    // flushPage with any covered address drops the whole entry.
    tlb.flushPage(0x40001000);
    EXPECT_FALSE(tlb.lookup(0x40000000).has_value());
}

TEST(Tlb, StatsCount)
{
    Tlb tlb(4, 64);
    tlb.lookup(0x1000);
    tlb.fill(0x1000, 0x80001000, Perm::rw(), Perm::rwx(), true);
    tlb.lookup(0x1000);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.l1Hits(), 1u);
}

TEST(Pwc, FillLookupByLevel)
{
    Pwc pwc(8);
    const Pte pte = Pte::pointer(0x123000);
    pwc.fill(1, 0x40000000, pte);
    auto hit = pwc.lookup(1, 0x40000000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->raw, pte.raw);
    // Same address, different level: miss.
    EXPECT_FALSE(pwc.lookup(2, 0x40000000).has_value());
    // Different 2 MiB region at level 0... level 0 tags 4 KiB regions.
    EXPECT_FALSE(pwc.lookup(1, 0x40200000).has_value());
    // Within the same level-1 region (2 MiB): hit.
    EXPECT_TRUE(pwc.lookup(1, 0x40001000).has_value());
}

TEST(Pwc, LruEviction)
{
    Pwc pwc(2);
    pwc.fill(0, 0x1000, Pte::pointer(0x1000));
    pwc.fill(0, 0x2000, Pte::pointer(0x2000));
    pwc.lookup(0, 0x1000); // touch
    pwc.fill(0, 0x3000, Pte::pointer(0x3000));
    EXPECT_TRUE(pwc.lookup(0, 0x1000).has_value());
    EXPECT_FALSE(pwc.lookup(0, 0x2000).has_value());
}

TEST(Pwc, DisabledNeverCaches)
{
    Pwc pwc(0);
    EXPECT_FALSE(pwc.enabled());
    pwc.fill(0, 0x1000, Pte::pointer(0x1000));
    EXPECT_FALSE(pwc.lookup(0, 0x1000).has_value());
}

TEST(Pwc, InvalidateAndFlush)
{
    Pwc pwc(8);
    pwc.fill(0, 0x1000, Pte::pointer(0x1000));
    pwc.fill(1, 0x1000, Pte::pointer(0x2000));
    pwc.invalidate(0, 0x1000);
    EXPECT_FALSE(pwc.lookup(0, 0x1000).has_value());
    EXPECT_TRUE(pwc.lookup(1, 0x1000).has_value());
    pwc.flush();
    EXPECT_FALSE(pwc.lookup(1, 0x1000).has_value());
}

} // namespace
} // namespace hpmp
