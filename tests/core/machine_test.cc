/**
 * @file
 * End-to-end Machine tests: the reference-count invariants of the
 * paper's Figures 2 and 4 (4 refs bare, 12 refs with a 2-level
 * permission table, 6 refs with HPMP on Sv39), TLB/PWC interactions,
 * fault behaviour and permission inlining.
 */

#include <gtest/gtest.h>

#include "core/machine.h"
#include "hpmp/isolation.h"
#include "pmpt/pmp_table.h"
#include "pt/page_table.h"

namespace hpmp
{
namespace
{

constexpr Addr kPtPool = 256_MiB;       // contiguous PT-page region
constexpr uint64_t kPtPoolSize = 16_MiB;
constexpr Addr kDataBase = 1_GiB;
constexpr Addr kVa = 0x40000000;

/** Fixture building one mapped page under a selectable scheme. */
class MachineRefTest : public ::testing::TestWithParam<IsolationScheme>
{
  protected:
    void
    SetUp() override
    {
        machine = std::make_unique<Machine>(rocketParams());
        pt = std::make_unique<PageTable>(machine->mem(),
                                         bumpAllocator(kPtPool),
                                         PagingMode::Sv39);
        pt->map(kVa, kDataBase, Perm::rw(), true);
        program(GetParam());
        machine->setSatp(pt->rootPa(), PagingMode::Sv39);
        machine->setPriv(PrivMode::User);
        machine->coldReset();
    }

    void
    program(IsolationScheme scheme)
    {
        HpmpUnit &unit = machine->hpmp();
        switch (scheme) {
          case IsolationScheme::None:
            // No entries: run in M-mode conceptually; here we just
            // allow everything through one big segment.
            unit.programSegment(0, 0, 16_GiB, Perm::rwx());
            break;
          case IsolationScheme::Pmp:
            unit.programSegment(0, kPtPool, kPtPoolSize, Perm::rw());
            unit.programSegment(1, kDataBase, 1_GiB, Perm::rwx());
            break;
          case IsolationScheme::PmpTable:
            makeTable();
            unit.programTable(0, 0, 16_GiB, table->rootPa());
            break;
          case IsolationScheme::Hpmp:
            unit.programSegment(0, kPtPool, kPtPoolSize, Perm::rw());
            makeTable();
            unit.programTable(1, 0, 16_GiB, table->rootPa());
            break;
        }
    }

    void
    makeTable()
    {
        table = std::make_unique<PmpTable>(machine->mem(),
                                           bumpAllocator(64_MiB), 2);
        table->setPerm(kPtPool, kPtPoolSize, Perm::rw());
        table->setPerm(kDataBase, 1_GiB, Perm::rwx());
    }

    std::unique_ptr<Machine> machine;
    std::unique_ptr<PageTable> pt;
    std::unique_ptr<PmpTable> table;
};

TEST_P(MachineRefTest, ColdLoadReferenceCounts)
{
    const AccessOutcome out = machine->access(kVa, AccessType::Load);
    ASSERT_TRUE(out.ok()) << toString(out.fault);
    EXPECT_FALSE(out.tlbHit);
    EXPECT_EQ(out.ptRefs, 3u);  // Sv39: three PT levels
    EXPECT_EQ(out.dataRefs, 1u);
    EXPECT_EQ(out.adRefs, 0u);  // leaves are pre-accessed/dirty

    switch (GetParam()) {
      case IsolationScheme::None:
      case IsolationScheme::Pmp:
        // Fig. 2-a/b: segment checks add no memory references.
        EXPECT_EQ(out.pmptRefs, 0u);
        EXPECT_EQ(out.totalRefs(), 4u);
        break;
      case IsolationScheme::PmpTable:
        // Fig. 2-c: +2 per reference -> 12 total.
        EXPECT_EQ(out.pmptRefs, 8u);
        EXPECT_EQ(out.totalRefs(), 12u);
        break;
      case IsolationScheme::Hpmp:
        // Fig. 4: PT pages covered by the segment -> 6 total.
        EXPECT_EQ(out.pmptRefs, 2u);
        EXPECT_EQ(out.totalRefs(), 6u);
        break;
    }
}

TEST_P(MachineRefTest, TlbHitHasOnlyDataRef)
{
    ASSERT_TRUE(machine->access(kVa, AccessType::Load).ok());
    const AccessOutcome out = machine->access(kVa, AccessType::Load);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out.tlbHit);
    EXPECT_EQ(out.totalRefs(), 1u); // permission inlined in the TLB
    EXPECT_EQ(out.pmptRefs, 0u);
}

TEST_P(MachineRefTest, SfenceForcesRewalkButPwcWasFlushedToo)
{
    ASSERT_TRUE(machine->access(kVa, AccessType::Load).ok());
    machine->sfenceVma();
    const AccessOutcome out = machine->access(kVa, AccessType::Load);
    ASSERT_TRUE(out.ok());
    EXPECT_FALSE(out.tlbHit);
    EXPECT_EQ(out.ptRefs, 3u);
}

TEST_P(MachineRefTest, PwcSkipsUpperLevelsForNeighborPage)
{
    pt->map(kVa + kPageSize, kDataBase + kPageSize, Perm::rw(), true);
    machine->sfenceVma();
    ASSERT_TRUE(machine->access(kVa, AccessType::Load).ok());
    // Neighbouring page: same L2/L1 entries (PWC hits), fresh L0.
    const AccessOutcome out =
        machine->access(kVa + kPageSize, AccessType::Load);
    ASSERT_TRUE(out.ok());
    EXPECT_FALSE(out.tlbHit);
    EXPECT_EQ(out.pwcSkips, 2u);
    EXPECT_EQ(out.ptRefs, 1u);
    if (GetParam() == IsolationScheme::PmpTable)
        EXPECT_EQ(out.pmptRefs, 4u); // L0 PTE + data
    if (GetParam() == IsolationScheme::Hpmp)
        EXPECT_EQ(out.pmptRefs, 2u); // data only
}

TEST_P(MachineRefTest, StoreWithCleanPageAddsAdUpdate)
{
    // Remap with D=0 so the first store performs the update.
    pt->unmap(kVa);
    pt->map(kVa, kDataBase, Perm::rw(), true, 0, true, false);
    machine->coldReset();
    const AccessOutcome out = machine->access(kVa, AccessType::Store);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.adRefs, 1u);
    if (GetParam() == IsolationScheme::PmpTable) {
        // The A/D write is itself table-checked: +2 more.
        EXPECT_EQ(out.pmptRefs, 10u);
    }
}

TEST_P(MachineRefTest, UnmappedVaFaults)
{
    const AccessOutcome out =
        machine->access(0x7700000000, AccessType::Load);
    EXPECT_EQ(out.fault, Fault::LoadPageFault);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, MachineRefTest,
    ::testing::Values(IsolationScheme::None, IsolationScheme::Pmp,
                      IsolationScheme::PmpTable, IsolationScheme::Hpmp),
    [](const ::testing::TestParamInfo<IsolationScheme> &info) {
        switch (info.param) {
          case IsolationScheme::None: return "none";
          case IsolationScheme::Pmp: return "pmp";
          case IsolationScheme::PmpTable: return "pmpt";
          case IsolationScheme::Hpmp: return "hpmp";
        }
        return "unknown";
    });

TEST(MachineLatency, ColdSlowerThanWarm)
{
    Machine machine(rocketParams());
    PageTable pt(machine.mem(), bumpAllocator(kPtPool), PagingMode::Sv39);
    pt.map(kVa, kDataBase, Perm::rw(), true);
    machine.hpmp().programSegment(0, 0, 16_GiB, Perm::rwx());
    machine.setSatp(pt.rootPa(), PagingMode::Sv39);
    machine.setPriv(PrivMode::User);
    machine.coldReset();

    const auto cold = machine.access(kVa, AccessType::Load);
    const auto warm = machine.access(kVa, AccessType::Load);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(warm.ok());
    EXPECT_GT(cold.cycles, 4 * warm.cycles);
}

TEST(MachineFaults, PhysicalDenialIsAccessFault)
{
    Machine machine(rocketParams());
    PageTable pt(machine.mem(), bumpAllocator(kPtPool), PagingMode::Sv39);
    pt.map(kVa, kDataBase, Perm::rw(), true);
    // PT pool readable, but the data page is not covered at all.
    machine.hpmp().programSegment(0, kPtPool, kPtPoolSize, Perm::rw());
    machine.setSatp(pt.rootPa(), PagingMode::Sv39);
    machine.setPriv(PrivMode::User);

    const auto out = machine.access(kVa, AccessType::Load);
    EXPECT_EQ(out.fault, Fault::LoadAccessFault);
}

} // namespace
} // namespace hpmp
