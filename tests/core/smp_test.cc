/**
 * @file
 * SMP machine-model tests: shared DRAM with private per-hart
 * structures, deterministic interleaving scheduling, the satp
 * remote-fence path, the global monitor lock, and the N=1 zero-cost
 * guarantee (a single-hart SmpSystem behaves bit-identically to a
 * standalone Machine).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/smp.h"

namespace hpmp
{
namespace
{

SmpParams
smpParams(unsigned harts, uint64_t seed = 42)
{
    SmpParams sp;
    sp.harts = harts;
    sp.schedSeed = seed;
    return sp;
}

TEST(SmpSystem, SharedDramPrivateHarts)
{
    SmpSystem smp(rocketParams(), smpParams(4));
    ASSERT_EQ(smp.numHarts(), 4u);
    for (unsigned h = 0; h < 4; ++h) {
        EXPECT_EQ(&smp.hart(h).mem(), &smp.mem());
        EXPECT_EQ(smp.hart(h).hartId(), h);
    }
    // Per-hart structures are distinct objects.
    EXPECT_NE(&smp.hart(0).tlb(), &smp.hart(1).tlb());
    EXPECT_NE(&smp.hart(0).hpmp(), &smp.hart(1).hpmp());

    // A store through one hart's DRAM is visible to every other hart:
    // there is exactly one PhysMem.
    smp.hart(2).mem().write64(1_GiB, 0xdeadbeefcafef00dull);
    EXPECT_EQ(smp.hart(3).mem().read64(1_GiB), 0xdeadbeefcafef00dull);

    // Hart 0 keeps the standalone "machine" prefix; siblings get
    // "hart<N>." so stat dumps never collide.
    EXPECT_EQ(smp.hart(0).stats().name(), "machine");
    EXPECT_EQ(smp.hart(1).stats().name(), "hart1.machine");
    EXPECT_EQ(smp.hart(3).stats().name(), "hart3.machine");
}

TEST(SmpSystem, SchedulerIsDeterministicInTheSeed)
{
    SmpSystem a(rocketParams(), smpParams(4, 7));
    SmpSystem b(rocketParams(), smpParams(4, 7));
    SmpSystem c(rocketParams(), smpParams(4, 8));

    std::vector<unsigned> pa, pb, pc;
    for (int i = 0; i < 256; ++i) {
        pa.push_back(a.pickHart());
        pb.push_back(b.pickHart());
        pc.push_back(c.pickHart());
    }
    EXPECT_EQ(pa, pb);
    EXPECT_NE(pa, pc); // different seed, different interleaving
}

TEST(SmpSystem, RoundRobinSchedulerCycles)
{
    SmpParams sp = smpParams(3);
    sp.roundRobin = true;
    SmpSystem smp(rocketParams(), sp);
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(smp.pickHart(), unsigned(i % 3));
}

TEST(SmpSystem, RunInterleavedDrivesEveryHartToCompletion)
{
    SmpSystem smp(rocketParams(), smpParams(4, 11));
    std::vector<unsigned> steps(4, 0);
    std::vector<SmpSystem::HartTask> tasks;
    for (unsigned h = 0; h < 4; ++h) {
        tasks.push_back([&, h](Machine &m) {
            EXPECT_EQ(&m, &smp.hart(h));           // task h runs hart h
            EXPECT_EQ(smp.currentHart(), h);       // bookkeeping tracks
            return ++steps[h] < 5 + h;             // h needs 5+h steps
        });
    }
    smp.setCurrentHart(2);
    smp.runInterleaved(std::move(tasks));
    for (unsigned h = 0; h < 4; ++h)
        EXPECT_EQ(steps[h], 5 + h);
    EXPECT_EQ(smp.currentHart(), 2u); // restored after the run
}

/** Records every IPI protocol step published to the hook. */
class RecordingHook : public InterleaveHook
{
  public:
    void onIpiStep(const IpiEvent &event) override
    {
        events.push_back(event);
    }
    std::vector<IpiEvent> events;
};

TEST(SmpSystem, SatpWriteFencesEverySibling)
{
    SmpSystem smp(rocketParams(), smpParams(4, 3));
    RecordingHook hook;
    smp.setInterleaveHook(&hook);

    smp.hart(1).setSatp(1_GiB, PagingMode::Sv39);

    EXPECT_EQ(smp.stats().get("satp_shootdowns"), 1u);
    EXPECT_EQ(smp.stats().get("satp_remote_fences"), 3u);
    ASSERT_EQ(hook.events.size(), 3u);
    std::vector<unsigned> fenced;
    for (const IpiEvent &e : hook.events) {
        EXPECT_EQ(e.phase, IpiPhase::SatpFence);
        EXPECT_EQ(e.srcHart, 1u);
        fenced.push_back(e.dstHart);
    }
    EXPECT_EQ(fenced, (std::vector<unsigned>{0, 2, 3}));
    smp.setInterleaveHook(nullptr);
}

TEST(SmpSystem, SingleHartSatpWriteCostsNothing)
{
    SmpSystem smp(rocketParams(), smpParams(1));
    RecordingHook hook;
    smp.setInterleaveHook(&hook);
    smp.hart(0).setSatp(1_GiB, PagingMode::Sv39);
    EXPECT_EQ(smp.stats().get("satp_shootdowns"), 0u);
    EXPECT_EQ(smp.stats().get("satp_remote_fences"), 0u);
    EXPECT_TRUE(hook.events.empty());
    smp.setInterleaveHook(nullptr);
}

TEST(SmpSystem, SingleHartMatchesStandaloneMachine)
{
    // The N=1 system must be bit-identical to a plain Machine: same
    // access outcomes, same stat values, same group names.
    SmpSystem smp(rocketParams(), smpParams(1));
    Machine solo(rocketParams());
    Machine &hart0 = smp.hart(0);

    for (Machine *m : {&hart0, &solo}) {
        m->setPriv(PrivMode::Supervisor);
        m->setBare();
        m->hpmp().programSegment(0, 2_GiB, 4_MiB, Perm::rw());
    }
    const Addr pas[] = {2_GiB, 2_GiB + 64_KiB, 3_GiB, 2_GiB + 4_MiB};
    for (const Addr pa : pas) {
        for (const AccessType t :
             {AccessType::Load, AccessType::Store}) {
            const AccessOutcome a = hart0.access(pa, t);
            const AccessOutcome b = solo.access(pa, t);
            EXPECT_EQ(a.fault, b.fault) << "pa=" << pa;
            EXPECT_EQ(a.cycles, b.cycles) << "pa=" << pa;
            EXPECT_EQ(a.totalRefs(), b.totalRefs()) << "pa=" << pa;
        }
    }
    EXPECT_EQ(hart0.stats().get("accesses"),
              solo.stats().get("accesses"));
    EXPECT_EQ(hart0.stats().name(), solo.stats().name());
}

TEST(SmpSystem, MonitorLockIsExclusiveAndCounted)
{
    SmpSystem smp(rocketParams(), smpParams(4));
    EXPECT_FALSE(smp.monitorLocked());

    EXPECT_TRUE(smp.tryAcquireMonitorLock(2));
    EXPECT_TRUE(smp.monitorLocked());
    EXPECT_EQ(smp.lockOwner(), 2u);

    EXPECT_FALSE(smp.tryAcquireMonitorLock(3)); // held by hart 2
    EXPECT_FALSE(smp.tryAcquireMonitorLock(2)); // not reentrant either
    EXPECT_EQ(smp.stats().get("lock_contended"), 2u);

    smp.releaseMonitorLock(2);
    EXPECT_FALSE(smp.monitorLocked());
    EXPECT_TRUE(smp.tryAcquireMonitorLock(3));
    smp.releaseMonitorLock(3);
    EXPECT_EQ(smp.stats().get("lock_acquisitions"), 2u);
}

TEST(SmpSystem, RegisterStatsCoversEveryHart)
{
    SmpSystem smp(rocketParams(), smpParams(2));
    StatRegistry registry;
    smp.registerStats(registry);
    EXPECT_NE(registry.find("smp"), nullptr);
    EXPECT_NE(registry.find("machine"), nullptr);
    EXPECT_NE(registry.find("hart1.machine"), nullptr);
    EXPECT_NE(registry.find("hart1.machine.tlb"), nullptr);
}

} // namespace
} // namespace hpmp
