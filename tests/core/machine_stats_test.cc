/**
 * @file
 * Machine statistics tests: the "machine.*" counters must agree with
 * the per-access outcomes they aggregate.
 */

#include <gtest/gtest.h>

#include "core/machine.h"
#include "pmpt/pmp_table.h"
#include "pt/page_table.h"

namespace hpmp
{
namespace
{

TEST(MachineStats, CountersTrackOutcomes)
{
    Machine machine(rocketParams());
    PmpTable table(machine.mem(), bumpAllocator(64_MiB), 2);
    table.setPerm(256_MiB, 16_MiB, Perm::rw());
    table.setPerm(4_GiB, 64_MiB, Perm::rwx());
    machine.hpmp().programTable(0, 0, 16_GiB, table.rootPa());

    PageTable pt(machine.mem(), bumpAllocator(256_MiB),
                 PagingMode::Sv39);
    pt.map(0x40000000, 4_GiB, Perm::rw(), true);
    machine.setSatp(pt.rootPa(), PagingMode::Sv39);
    machine.setPriv(PrivMode::User);
    machine.coldReset();

    StatGroup &stats = machine.stats();
    stats.resetAll();

    // One walk + one TLB hit.
    ASSERT_TRUE(machine.access(0x40000000, AccessType::Load).ok());
    ASSERT_TRUE(machine.access(0x40000000, AccessType::Load).ok());
    EXPECT_EQ(stats.get("accesses"), 2u);
    EXPECT_EQ(stats.get("walks"), 1u);
    EXPECT_EQ(stats.get("pt_refs"), 3u);
    EXPECT_EQ(stats.get("pmpt_refs"), 8u);
    EXPECT_EQ(stats.get("page_faults"), 0u);
    EXPECT_EQ(stats.get("access_faults"), 0u);

    // A page fault and an access fault.
    (void)machine.access(0x50000000, AccessType::Load);
    EXPECT_EQ(stats.get("page_faults"), 1u);
    pt.map(0x60000000, 8_GiB, Perm::rw(), true); // outside the table
    machine.sfenceVma();
    (void)machine.access(0x60000000, AccessType::Load);
    EXPECT_EQ(stats.get("access_faults"), 1u);

    const std::string dump = stats.dump();
    EXPECT_NE(dump.find("machine.accesses"), std::string::npos);
}

} // namespace
} // namespace hpmp
