/**
 * @file
 * Core timing-model tests: base CPI accounting, stall exposure,
 * overlap asymmetry between Rocket and BOOM, and the Table-1
 * parameter factories.
 */

#include <gtest/gtest.h>

#include "core/core_model.h"

namespace hpmp
{
namespace
{

AccessOutcome
outcomeWith(uint64_t cycles, bool tlb_hit)
{
    AccessOutcome out;
    out.cycles = cycles;
    out.tlbHit = tlb_hit;
    out.dataRefs = 1;
    return out;
}

TEST(CoreModel, BaseCpiOnly)
{
    CoreModel model(rocketParams());
    model.addInstructions(1000);
    // Rocket base CPI = 1.4.
    EXPECT_EQ(model.cycles(), 1400u);
}

TEST(CoreModel, L1HitAddsNoStall)
{
    MachineParams p = rocketParams();
    CoreModel model(p);
    model.addAccess(outcomeWith(p.hier.l1d.latency, true));
    // Just the access's base-CPI share.
    EXPECT_EQ(model.cycles(), uint64_t(p.timing.baseCpi));
}

TEST(CoreModel, StallCyclesExposedFully_InOrder)
{
    MachineParams p = rocketParams();
    CoreModel model(p);
    model.addAccess(outcomeWith(p.hier.l1d.latency + 100, true));
    EXPECT_EQ(model.cycles(), uint64_t(p.timing.baseCpi) + 100);
}

TEST(CoreModel, BoomHidesDataMissesMoreThanWalks)
{
    MachineParams p = boomParams();
    CoreModel hit_model(p);
    CoreModel walk_model(p);
    hit_model.addAccess(outcomeWith(p.hier.l1d.latency + 200, true));
    walk_model.addAccess(outcomeWith(p.hier.l1d.latency + 200, false));
    // Walk stalls (TLB miss) are exposed more than data stalls.
    EXPECT_GT(walk_model.cycles(), hit_model.cycles());
}

TEST(CoreModel, SecondsUseFrequency)
{
    MachineParams rocket = rocketParams();
    MachineParams boom = boomParams();
    CoreModel a(rocket), b(boom);
    a.addInstructions(1000000);
    b.addInstructions(1000000);
    // Same instruction count: the 3.2 GHz core finishes sooner even
    // with its different CPI.
    EXPECT_LT(b.seconds(), a.seconds());
}

TEST(CoreModel, ResetClearsEverything)
{
    CoreModel model(rocketParams());
    model.addInstructions(50);
    model.addAccess(outcomeWith(500, false));
    model.reset();
    EXPECT_EQ(model.cycles(), 0u);
    EXPECT_EQ(model.instructions(), 0u);
    EXPECT_EQ(model.memAccesses(), 0u);
}

TEST(Params, Table1Geometry)
{
    const MachineParams rocket = rocketParams();
    EXPECT_EQ(rocket.hier.l1d.sizeBytes, 16_KiB);
    EXPECT_EQ(rocket.hier.l2.sizeBytes, 512_KiB);
    EXPECT_EQ(rocket.hier.llc.sizeBytes, 4_MiB);
    EXPECT_EQ(rocket.l1TlbEntries, 32u);
    EXPECT_EQ(rocket.l2TlbEntries, 1024u);
    EXPECT_EQ(rocket.pwcEntries, 8u);
    EXPECT_EQ(rocket.physMemBytes, 16_GiB);

    const MachineParams boom = boomParams();
    EXPECT_EQ(boom.hier.l1d.sizeBytes, 32_KiB);
    EXPECT_EQ(boom.hier.l1d.assoc, 8u);
    EXPECT_DOUBLE_EQ(boom.timing.freqGHz, 3.2);
    EXPECT_LT(boom.timing.baseCpi, rocketParams().timing.baseCpi);

    EXPECT_EQ(machineParams(CoreKind::Rocket).name, "rocket");
    EXPECT_EQ(machineParams(CoreKind::Boom).name, "boom");
}

} // namespace
} // namespace hpmp
